(** Directive kinds and the decoded clause view.

    The parser stores clauses in the AST's [extra_data] array (list
    clauses as index slices, scalar clauses as the packed words of
    {!Packed}); this module defines the fixed layout of that clause
    block and a decoded, preprocessor-friendly view of it.

    Clause block layout in [extra_data], all 32-bit words:
    {v
      +0  packed flags            (Packed.flags)
      +1  packed schedule         (Packed.encode_schedule)
      +2  num_threads expr node   (0 = no clause)
      +3  private slice begin     -- slices index identifier nodes
      +4  private slice end          stored contiguously in extra_data
      +5  firstprivate slice begin
      +6  firstprivate slice end
      +7  shared slice begin
      +8  shared slice end
      +9  reduction slice begin   -- entries are (op code, ident node)
      +10 reduction slice end        pairs, so end-begin is even
      +11 critical name token     (0 = unnamed)
      +12 packed transform        (Packed.encode_transform)
      +13 tile slice begin        -- entries are literal tile sizes,
      +14 tile slice end             not node indices
      +15 grainsize literal       (0 = no clause; taskloop)
      +16 copyprivate slice begin -- identifier nodes, like private
      +17 copyprivate slice end
    v} *)

type kind =
  | Parallel
  | For             (** worksharing loop, applied to a [while] *)
  | Parallel_for    (** combined construct *)
  | Barrier
  | Critical
  | Master
  | Single
  | Atomic
  | Threadprivate  (** top-level: named globals become per-thread *)
  | Task           (** deferred explicit task over the governed stmt *)
  | Taskwait       (** standalone: wait for the current task's children *)
  | Taskloop       (** loop whose chunks become deferred tasks *)
  | Sections       (** worksharing over the [section] blocks inside *)
  | Section        (** one unit of a [sections] construct *)

let kind_to_string = function
  | Parallel -> "parallel"
  | For -> "for"
  | Parallel_for -> "parallel for"
  | Barrier -> "barrier"
  | Critical -> "critical"
  | Master -> "master"
  | Single -> "single"
  | Atomic -> "atomic"
  | Threadprivate -> "threadprivate"
  | Task -> "task"
  | Taskwait -> "taskwait"
  | Taskloop -> "taskloop"
  | Sections -> "sections"
  | Section -> "section"

(** Reduction operators accepted in [reduction(op: list)] clauses. *)
type red_op = Radd | Rsub | Rmul | Rmin | Rmax

let red_op_code = function
  | Radd -> 1 | Rsub -> 2 | Rmul -> 3 | Rmin -> 4 | Rmax -> 5

let red_op_of_code = function
  | 1 -> Some Radd | 2 -> Some Rsub | 3 -> Some Rmul
  | 4 -> Some Rmin | 5 -> Some Rmax | _ -> None

let red_op_to_string = function
  | Radd -> "+" | Rsub -> "-" | Rmul -> "*" | Rmin -> "min" | Rmax -> "max"

(** Identity element source text for a reduction's thread-local
    accumulator (OpenMP requires initialisation with the operator's
    identity; the paper's III-B1). *)
let red_op_identity = function
  | Radd | Rsub -> "0.0"
  | Rmul -> "1.0"
  | Rmin -> "__omp_huge()"
  | Rmax -> "-__omp_huge()"

let clause_block_size = 18

(** Identity of a clause occurrence on a directive, used to attach
    source spans to individual clauses (diagnostics point at the
    offending clause, not the whole pragma line). *)
type clause_id =
  | Cprivate
  | Cfirstprivate
  | Cshared
  | Creduction
  | Cschedule
  | Cnum_threads
  | Cdefault
  | Cnowait
  | Ccollapse
  | Ctile
  | Cunroll
  | Cinterchange
  | Cname          (** the [(name)] of a critical directive *)
  | Cgrainsize
  | Ccopyprivate

let clause_id_to_string = function
  | Cprivate -> "private"
  | Cfirstprivate -> "firstprivate"
  | Cshared -> "shared"
  | Creduction -> "reduction"
  | Cschedule -> "schedule"
  | Cnum_threads -> "num_threads"
  | Cdefault -> "default"
  | Cnowait -> "nowait"
  | Ccollapse -> "collapse"
  | Ctile -> "tile"
  | Cunroll -> "unroll"
  | Cinterchange -> "interchange"
  | Cname -> "name"
  | Cgrainsize -> "grainsize"
  | Ccopyprivate -> "copyprivate"

(** Source extent of one clause occurrence as recorded by the parser:
    the token range from the clause keyword to its closing parenthesis
    (or the keyword itself for bare clauses like [nowait]). *)
type clause_span = {
  cid : clause_id;
  ctok_first : int;  (** token index of the clause keyword *)
  ctok_last : int;   (** token index of the last token of the clause *)
}

(** Decoded clause view.  List clauses carry AST node indices of the
    identifiers named in the clause. *)
type clauses = {
  flags : Packed.flags;
  schedule : Omp_model.Sched.t option;
  num_threads : int;        (** expr node index, 0 if absent *)
  private_ : int list;
  firstprivate : int list;
  shared : int list;
  reductions : (red_op * int) list;
  critical_name : int;      (** token index, 0 if unnamed *)
  transform : Packed.transform;
  tile : int list;          (** literal tile sizes, outermost first *)
  grainsize : int;          (** literal chunk size, 0 if absent *)
  copyprivate : int list;   (** identifier nodes to broadcast from single *)
}

let empty_clauses = {
  flags = Packed.no_flags;
  schedule = None;
  num_threads = 0;
  private_ = [];
  firstprivate = [];
  shared = [];
  reductions = [];
  critical_name = 0;
  transform = Packed.no_transform;
  tile = [];
  grainsize = 0;
  copyprivate = [];
}

(** [decode extra base] — read a clause block at index [base] of the
    [extra_data] array. *)
let decode (extra : int array) base : clauses =
  let slice b e = Array.to_list (Array.sub extra b (e - b)) in
  let flags = Packed.decode_flags extra.(base) in
  let schedule = Packed.schedule_to_sched extra.(base + 1) in
  let reductions =
    let b = extra.(base + 9) and e = extra.(base + 10) in
    let rec pairs i acc =
      if i >= e then List.rev acc
      else
        match red_op_of_code extra.(i) with
        | Some op -> pairs (i + 2) ((op, extra.(i + 1)) :: acc)
        | None -> invalid_arg "Directive.decode: bad reduction op code"
    in
    pairs b []
  in
  { flags;
    schedule;
    num_threads = extra.(base + 2);
    private_ = slice extra.(base + 3) extra.(base + 4);
    firstprivate = slice extra.(base + 5) extra.(base + 6);
    shared = slice extra.(base + 7) extra.(base + 8);
    reductions;
    critical_name = extra.(base + 11);
    transform = Packed.decode_transform extra.(base + 12);
    tile = slice extra.(base + 13) extra.(base + 14);
    grainsize = extra.(base + 15);
    copyprivate = slice extra.(base + 16) extra.(base + 17);
  }

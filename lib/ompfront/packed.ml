(** Packed 32-bit clause encodings (paper section III-A2).

    The Zig compiler's [extra_data] array only holds 32-bit integers, so
    every scalar clause must be representable in (a fraction of) one
    word.  The paper's layout, reproduced bit for bit:

    - the loop schedule is one word: a 3-bit enumeration of the schedule
      kind followed by a 29-bit chunk size, allowing chunks up to
      536870912; because a chunk must be positive, 0 encodes "no chunk
      specified";
    - the remaining small clauses share a second packed word: the
      [default] clause as a 2-bit enumeration, [nowait] as a 1-bit
      boolean, and [collapse] as 4 bits (nobody collapses more than 16
      loops).

    All values are kept in OCaml ints but masked to 32 bits; encode and
    decode are exact inverses on the representable domain, which the
    property tests check. *)

(* ---------------------------- schedule ---------------------------- *)

type sched_kind = Sched_none | Sched_static | Sched_dynamic | Sched_guided
                | Sched_runtime | Sched_auto

let sched_kind_code = function
  | Sched_none -> 0
  | Sched_static -> 1
  | Sched_dynamic -> 2
  | Sched_guided -> 3
  | Sched_runtime -> 4
  | Sched_auto -> 5

let sched_kind_of_code = function
  | 0 -> Some Sched_none
  | 1 -> Some Sched_static
  | 2 -> Some Sched_dynamic
  | 3 -> Some Sched_guided
  | 4 -> Some Sched_runtime
  | 5 -> Some Sched_auto
  | _ -> None

let max_chunk = (1 lsl 29) - 1  (* 29-bit chunk field *)

(** [encode_schedule kind chunk] — 3-bit kind in the low bits, 29-bit
    chunk above it.  [chunk = 0] means the clause had no chunk. *)
let encode_schedule kind chunk =
  if chunk < 0 || chunk > max_chunk then
    invalid_arg "Packed.encode_schedule: chunk out of the 29-bit range";
  (chunk lsl 3) lor sched_kind_code kind

let decode_schedule word =
  let kind = sched_kind_of_code (word land 0x7) in
  let chunk = (word lsr 3) land ((1 lsl 29) - 1) in
  match kind with
  | Some k -> (k, chunk)
  | None -> invalid_arg "Packed.decode_schedule: bad kind bits"

(** Conversion to the runtime's schedule type; [None] when the pragma
    had no [schedule] clause. *)
let schedule_to_sched word : Omp_model.Sched.t option =
  match decode_schedule word with
  | Sched_none, _ -> None
  | Sched_static, 0 -> Some (Omp_model.Sched.Static None)
  | Sched_static, c -> Some (Omp_model.Sched.Static (Some c))
  | Sched_dynamic, c -> Some (Omp_model.Sched.Dynamic (max 1 c))
  | Sched_guided, c -> Some (Omp_model.Sched.Guided (max 1 c))
  | Sched_runtime, _ -> Some Omp_model.Sched.Runtime
  | Sched_auto, _ -> Some Omp_model.Sched.Auto

(* ----------------------------- flags ------------------------------ *)

type default_kind = Default_unspecified | Default_shared | Default_none

let default_code = function
  | Default_unspecified -> 0
  | Default_shared -> 1
  | Default_none -> 2

let default_of_code = function
  | 0 -> Some Default_unspecified
  | 1 -> Some Default_shared
  | 2 -> Some Default_none
  | _ -> None

type flags = {
  default : default_kind;  (* 2 bits *)
  nowait : bool;           (* 1 bit *)
  collapse : int;          (* 4 bits; 0 = unspecified (means 1 loop) *)
}

let no_flags = { default = Default_unspecified; nowait = false; collapse = 0 }

let max_collapse = 15

let encode_flags f =
  if f.collapse < 0 || f.collapse > max_collapse then
    invalid_arg "Packed.encode_flags: collapse out of the 4-bit range";
  default_code f.default
  lor (if f.nowait then 1 lsl 2 else 0)
  lor (f.collapse lsl 3)

let decode_flags word =
  match default_of_code (word land 0x3) with
  | None -> invalid_arg "Packed.decode_flags: bad default bits"
  | Some default ->
      { default;
        nowait = (word lsr 2) land 1 = 1;
        collapse = (word lsr 3) land 0xf }

(* --------------------------- transform ---------------------------- *)

(** Packed loop-transformation word (the third scalar word of the
    clause block).  [unroll] is the requested replication factor
    (0 = no clause); [interchange] requests the two outermost loops be
    swapped.  Tile sizes are list data and live in an extra_data slice,
    not here.  The [*_malformed] bits record that the clause was
    present but its argument was rejected at parse time (non-literal,
    zero, negative, out of range) — the transform stage warns once and
    ignores the clause, matching the ICV env-var treatment, instead of
    hard-failing the parse. *)
type transform = {
  unroll : int;              (* 8 bits; 0 = no clause *)
  interchange : bool;        (* 1 bit *)
  unroll_malformed : bool;   (* 1 bit *)
  tile_malformed : bool;     (* 1 bit *)
}

let no_transform =
  { unroll = 0; interchange = false;
    unroll_malformed = false; tile_malformed = false }

let max_unroll = 255

let encode_transform t =
  if t.unroll < 0 || t.unroll > max_unroll then
    invalid_arg "Packed.encode_transform: unroll out of the 8-bit range";
  (if t.interchange then 1 else 0)
  lor (t.unroll lsl 1)
  lor (if t.unroll_malformed then 1 lsl 9 else 0)
  lor (if t.tile_malformed then 1 lsl 10 else 0)

let decode_transform word =
  { interchange = word land 1 = 1;
    unroll = (word lsr 1) land 0xff;
    unroll_malformed = (word lsr 9) land 1 = 1;
    tile_malformed = (word lsr 10) land 1 = 1 }

(** Largest accepted tile size: tile sizes share the 29-bit positive
    range of schedule chunks (they are loop-trip quantities too). *)
let max_tile = max_chunk

(* 32-bit sanity: both packed words must fit the extra_data element. *)
let fits_u32 w = w >= 0 && w < 1 lsl 32

(** Dynamic partial-order reduction for the cooperative checker.

    See the implementation header for the algorithm; DESIGN.md for the
    happens-before model and the soundness caveats. *)

(** Dependence class of a visible operation. *)
type kind =
  | Kread      (** data read — happens-before-filtered *)
  | Kwrite     (** data write — happens-before-filtered *)
  | Kacquire   (** lock-style acquisition: critical, atomic statement
                   lock, [single] claim, shared dispatch claim *)
  | Kcombine   (** commuting atomic reduction update *)
  | Kload      (** atomic load — conflicts with combines *)

(** Object identity of a visible operation; data locations are
    physical, matching what the tracer hands the race detector. *)
type obj =
  | Ocell of Interp.Value.t ref
  | Ofelem of float array * int
  | Oielem of int array * int
  | Olock of string
  | Oatomf of Omprt.Atomics.Float.t
  | Oatomi of Omprt.Atomics.Int.t
  | Odispatch of Omprt.Ws.Dispatch.t
  | Osingle of int * int  (** team uid, single epoch *)

type exec
(** One controlled execution: the forced decision prefix, the decision
    log, the per-object last-access state and the backtrack candidates
    harvested so far. *)

val new_exec : prefix:int array -> exec

val decide : exec -> enabled:int list -> int
(** The controlled scheduler's decision function: replays the forced
    prefix, then stays on the current thread when runnable, else the
    lowest runnable id.  Logs every decision.  [enabled] must be the
    sorted non-empty runnable set. *)

val record :
  exec -> gid:int -> vc:Vc.t -> obj:obj -> kind:kind -> unit
(** Record a visible operation of the current thread and derive
    backtrack candidates from dependent, reorderable prior operations
    on the same object. *)

val diverged : exec -> bool
(** A forced prefix failed to replay — a determinism violation. *)

val candidate_prefixes : exec -> (int array * int) list
(** The next prefixes this execution justifies, each with its
    preemption count; sorted for deterministic frontier insertion. *)

type verdict =
  | Complete
  | Bounded of { within_bound_left : bool }

type stats = {
  executions : int;
  racy_execs : int;
  diverged_execs : int;
  verdict : verdict;
}

val explore :
  max_execs:int ->
  preempt_bound:int ->
  run_one:(exec -> Report.finding list) ->
  Report.finding list * stats
(** Drain the reduced interleaving space, lowest-preemption prefixes
    first, running at most [max_execs] executions. *)

(** The vector-clock race detector proper.

    Per traced location the detector keeps the last write epoch and the
    most recent read per thread (a read "vector", FastTrack-style).  An
    access races with a recorded prior access when the prior belongs to
    a different thread and the current thread's vector clock does not
    cover the prior's epoch — i.e. no fork/join/barrier/lock edge
    ordered them.

    Locations are identified physically: variable cells by the [ref]
    they live in, array elements by the array object and index.  That is
    exactly the identity the interpreter's tracer hands us, so aliasing
    through pointers and captures is resolved for free. *)

module Rt = Interp.Rt

type evt = {
  tid : int;
  clk : int;
  off : int;               (* byte offset in the preprocessed source *)
  op : string option;      (* compound-assignment operator, writes only *)
  rw : [ `R | `W ];
}

type entry = {
  mutable w : evt option;
  mutable reads : evt list;  (* latest read per thread since last write *)
}

type t = {
  src : Zr.Source.t;  (* preprocessed source, for positions/snippets *)
  mutable cells : (Interp.Value.t ref * entry) list;
  mutable fa : (float array * (int, entry) Hashtbl.t) list;
  mutable ia : (int array * (int, entry) Hashtbl.t) list;
  dedup : (string, unit) Hashtbl.t;
  mutable findings : Report.finding list;
}

let create ~src =
  { src; cells = []; fa = []; ia = [];
    dedup = Hashtbl.create 16; findings = [] }

let fresh_entry () = { w = None; reads = [] }

let elem_entry h i =
  match Hashtbl.find_opt h i with
  | Some e -> e
  | None ->
      let e = fresh_entry () in
      Hashtbl.add h i e;
      e

let entry_of t (acc : Rt.access) : entry =
  match acc with
  | Rt.Acell r ->
      (match List.find_opt (fun (x, _) -> x == r) t.cells with
       | Some (_, e) -> e
       | None ->
           let e = fresh_entry () in
           t.cells <- (r, e) :: t.cells;
           e)
  | Rt.Afelem (a, i) ->
      let h =
        match List.find_opt (fun (x, _) -> x == a) t.fa with
        | Some (_, h) -> h
        | None ->
            let h = Hashtbl.create 64 in
            t.fa <- (a, h) :: t.fa;
            h
      in
      elem_entry h i
  | Rt.Aielem (a, i) ->
      let h =
        match List.find_opt (fun (x, _) -> x == a) t.ia with
        | Some (_, h) -> h
        | None ->
            let h = Hashtbl.create 64 in
            t.ia <- (a, h) :: t.ia;
            h
      in
      elem_entry h i

(* ---------------------------- rendering --------------------------- *)

(* Shared captures reach the outlined function through a synthesised
   [<name>__ptr] parameter; report the user's name. *)
let clean_var v =
  if String.length v > 5 && Filename.check_suffix v "__ptr" then
    String.sub v 0 (String.length v - 5)
  else v

let pos t off =
  let line, col = Zr.Source.position t.src off in
  Printf.sprintf "%d:%d" line col

let rw_s = function `R -> "read" | `W -> "write"

let render_evt t e =
  Printf.sprintf "%s@%s%s" (rw_s e.rw) (pos t e.off)
    (match e.op with Some o -> "[" ^ o ^ "]" | None -> "")

(* The source line of an offset, whitespace-trimmed. *)
let snippet t off =
  let text = t.src.Zr.Source.text in
  let n = String.length text in
  let b = ref off and e = ref off in
  while !b > 0 && text.[!b - 1] <> '\n' do decr b done;
  while !e < n && text.[!e] <> '\n' do incr e done;
  String.trim (String.sub text !b (!e - !b))

let suggestion ~var a b =
  let var = if var = "" then "<expr>" else var in
  match a.op, b.op with
  | (Some o, _ | _, Some o) when a.off = b.off && a.rw = `W && b.rw = `W ->
      Printf.sprintf "reduction(%s: %s)" o var
  | _ ->
      Printf.sprintf
        "atomic/critical around the conflicting accesses, or private(%s)" var

let report t ~var ~(prior : evt) ~(cur : evt) =
  (* Normalise the pair so the rendered line does not depend on which
     schedule surfaced the race first. *)
  let a, b =
    if (prior.off, prior.rw) <= (cur.off, cur.rw) then (prior, cur)
    else (cur, prior)
  in
  let var = clean_var var in
  let key =
    Printf.sprintf "%s|%s%d|%s%d" var (rw_s a.rw) a.off (rw_s b.rw) b.off
  in
  if not (Hashtbl.mem t.dedup key) then begin
    Hashtbl.add t.dedup key ();
    let line =
      Printf.sprintf "race %s: %s vs %s :: `%s` :: suggest %s"
        (if var = "" then "<expr>" else var)
        (render_evt t a) (render_evt t b) (snippet t b.off)
        (suggestion ~var a b)
    in
    t.findings <- Report.race ~var line :: t.findings
  end

(* --------------------------- the check ---------------------------- *)

let access t ~rw (acc : Rt.access) ~off ~hint ~gid ~(vc : Vc.t)
    ~(op : string option) =
  let e = entry_of t acc in
  let cur =
    { tid = gid; clk = Vc.get vc gid; off;
      op = (if rw = `W then op else None); rw }
  in
  let conflicts (prior : evt) =
    prior.tid <> gid && not (Vc.covers vc ~tid:prior.tid ~clk:prior.clk)
  in
  (match e.w with
   | Some w when conflicts w -> report t ~var:hint ~prior:w ~cur
   | _ -> ());
  match rw with
  | `R -> e.reads <- cur :: List.filter (fun r -> r.tid <> gid) e.reads
  | `W ->
      List.iter
        (fun r -> if conflicts r then report t ~var:hint ~prior:r ~cur)
        e.reads;
      e.w <- Some cur;
      e.reads <- []

let findings t = t.findings

(** Checker findings and the machine-readable report.

    Every finding renders to exactly one stable line; the report is the
    deduplicated, sorted list of those lines under a one-line summary.
    Golden tests and the CI determinism check compare reports textually,
    so rendering must not depend on schedule timing beyond what the
    fixed seed already pins down.

    The type is shared by the dynamic checker ([zrc check]) and the
    static analyser ([zrc analyze]).  Findings carry a stable
    content-derived [id] (the same race proved statically and observed
    dynamically gets the same id, which is what lets {!merge} suppress
    the double report), an optional source [span] rendered as a caret
    under the offending clause or expression, and an optional
    {!verdict} for static findings. *)

type kind = Race | Dep | Scope | Lint | Divergence | Error

(** Static confidence: [Proven] findings are certain (and must be
    dynamically observable); [May] findings are conservative
    over-approximations. *)
type verdict = Proven | May

type finding = {
  kind : kind;
  id : string;    (** stable content-derived identity, e.g. ["race|s"] *)
  line : string;  (** rendered, single line, stable across runs *)
  span : (int * int) option;
      (** byte range in the analysed source, for caret rendering *)
  verdict : verdict option;  (** set by the static analyser only *)
}

(** How the dynamic interleaving space was explored.  [Sampled] is the
    legacy fixed-schedule mode: a clean verdict is evidence, not proof.
    [Complete] means DPOR drained the reduced interleaving space —
    clean is a proof (relative to the happens-before model, DESIGN.md).
    [Bounded] means the execution budget was hit after the
    lowest-preemption prefixes were preferred; [within_bound_left]
    records whether schedules within the preemption bound were still
    pending when the budget ran out. *)
type exploration =
  | Sampled
  | Complete of { executions : int }
  | Bounded of {
      executions : int;
      preempt_bound : int;
      within_bound_left : bool;
    }

type t = {
  name : string;       (** program name, as reported in the summary *)
  backend : string;    (** ["check"] (dynamic) or ["analyze"] (static) *)
  schedules : int;     (** schedules/executions explored dynamically *)
  findings : finding list;  (** deduplicated, sorted by rendered line *)
  source : Zr.Source.t option;
      (** the analysed source, when spans should render with carets *)
  exploration : exploration option;
      (** dynamic checker only; [None] for the static analyser *)
}

let verdict_to_string = function Proven -> "PROVEN" | May -> "MAY"

let kind_to_string = function
  | Race -> "race"
  | Dep -> "dep"
  | Scope -> "scope"
  | Lint -> "lint"
  | Divergence -> "divergence"
  | Error -> "error"

(* Shared captures reach outlined functions through a synthesised
   [<name>__ptr] parameter; ids must use the user's name so the static
   and dynamic spellings of the same race coincide. *)
let clean_var v =
  if String.length v > 5 && Filename.check_suffix v "__ptr" then
    String.sub v 0 (String.length v - 5)
  else v

(** Races (and statically proven loop-carried dependences, which are
    races) on the same variable share one id: the id names the
    equivalence class the cross-backend dedup works on. *)
let race_id var = "race|" ^ clean_var var

let race ?span ?verdict ~var line =
  { kind = Race; id = race_id var; line; span; verdict }

let dep ?span ?verdict ~var line =
  { kind = Dep; id = race_id var; line; span; verdict }

let scope ?span ?verdict ~id line = { kind = Scope; id; line; span; verdict }

let lint ?span ?id ~rule ~detail () =
  let line = Printf.sprintf "lint %s :: %s" rule detail in
  let id = match id with Some i -> i | None -> "lint|" ^ rule ^ "|" ^ detail in
  { kind = Lint; id; line; span; verdict = None }

let divergence ~detail =
  { kind = Divergence; id = "divergence|" ^ detail;
    line = "divergence :: " ^ detail; span = None; verdict = None }

let error ~detail =
  { kind = Error; id = "error|" ^ detail; line = "error :: " ^ detail;
    span = None; verdict = None }

let exploration_verdict = function
  | Sampled -> "SAMPLED"
  | Complete _ -> "COMPLETE"
  | Bounded _ -> "BOUNDED"

(** Assemble a report: drop exact-duplicate lines (the same race found
    under several schedules), then sort for output stability. *)
let make ?(backend = "check") ?source ?exploration ~name ~schedules findings =
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun f ->
        if Hashtbl.mem seen f.line then false
        else begin
          Hashtbl.add seen f.line ();
          true
        end)
      findings
  in
  { name; backend; schedules; findings = List.sort compare uniq; source;
    exploration }

(** Cross-backend dedup: keep every static finding, and only the
    dynamic findings whose id the static pass did not already prove.
    The result renders under the dynamic report's name/schedules but
    keeps the static report's source for caret rendering. *)
let merge ~(static : t) ~(dynamic : t) : t =
  let proved = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace proved f.id ()) static.findings;
  let kept =
    List.filter (fun f -> not (Hashtbl.mem proved f.id)) dynamic.findings
  in
  { name = dynamic.name;
    backend = dynamic.backend;
    schedules = dynamic.schedules;
    findings = List.sort compare (static.findings @ kept);
    source = static.source;
    exploration = dynamic.exploration }

let races t = List.filter (fun f -> f.kind = Race || f.kind = Dep) t.findings
let lints t = List.filter (fun f -> f.kind = Lint) t.findings
let errors t = List.filter (fun f -> f.kind = Error) t.findings

let clean t = t.findings = []

(** Exit code discipline shared by [zrc analyze] and [zrc check]:
    0 clean with a complete (or merely sampled — the historical
    behaviour) exploration, 2 findings, and 1 for a clean report whose
    DPOR exploration was budget-bounded — a truncated search must not
    read as a proof, so CI can tell 0 ("proven clean") from 1 ("no
    finding yet, search incomplete"). *)
let exit_code t =
  if not (clean t) then 2
  else
    match t.exploration with
    | Some (Bounded _) -> 1
    | Some (Complete _) | Some Sampled | None -> 0

let summary t =
  Printf.sprintf "%s: %s: %d finding(s)%s" t.backend t.name
    (List.length t.findings)
    (match t.exploration with
     | Some Sampled ->
         Printf.sprintf ", %d schedule(s) explored [SAMPLED]" t.schedules
     | Some (Complete { executions }) ->
         Printf.sprintf ", %d execution(s) explored [COMPLETE]" executions
     | Some (Bounded { executions; preempt_bound; within_bound_left }) ->
         Printf.sprintf
           ", %d execution(s) explored [BOUNDED preempt<=%d%s]" executions
           preempt_bound
           (if within_bound_left then ", truncated" else "")
     | None ->
         if t.backend = "check" then
           Printf.sprintf ", %d schedule(s) explored" t.schedules
         else "")

(* Caret rendering: the source line under the finding with ^^^ under
   the span.  Only findings that carry a span (static ones) get it. *)
let render_caret src (b, e) =
  let text = src.Zr.Source.text in
  let n = String.length text in
  let b = max 0 (min b (max 0 (n - 1))) in
  let ls = ref b in
  while !ls > 0 && text.[!ls - 1] <> '\n' do decr ls done;
  let le = ref b in
  while !le < n && text.[!le] <> '\n' do incr le done;
  let line_text = String.sub text !ls (!le - !ls) in
  let lineno, col = Zr.Source.position src b in
  let width = max 1 (min e !le - b) in
  let gutter = Printf.sprintf "  %4d | " lineno in
  let pad = String.make (String.length gutter - 2) ' ' ^ "| " in
  Printf.sprintf "%s%s\n%s%s%s" gutter line_text pad
    (String.make (col - 1) ' ')
    (String.make width '^')

let render_finding t f =
  match f.span, t.source with
  | Some span, Some src -> f.line ^ "\n" ^ render_caret src span
  | _ -> f.line

let to_string t =
  String.concat "\n" (summary t :: List.map (render_finding t) t.findings)

(* ------------------------------ JSON ------------------------------ *)

(* The project deliberately has no JSON dependency; the schema is flat
   enough to print by hand.  Shared by `zrc analyze --json` and
   `zrc check --json`. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json t f =
  let pos =
    match f.span, t.source with
    | Some (b, _), Some src ->
        let line, col = Zr.Source.position src b in
        Printf.sprintf ", \"position\": {\"line\": %d, \"col\": %d}" line col
    | _ -> ""
  in
  let verdict =
    match f.verdict with
    | Some v -> Printf.sprintf ", \"verdict\": \"%s\"" (verdict_to_string v)
    | None -> ""
  in
  Printf.sprintf "{\"kind\": \"%s\", \"id\": \"%s\"%s%s, \"line\": \"%s\"}"
    (kind_to_string f.kind) (json_escape f.id) verdict pos
    (json_escape f.line)

(** [to_json ?may t] — the shared report schema.  [may] carries the
    static analyser's advisory (non-verdict-affecting) findings; the
    dynamic checker has none. *)
let exploration_to_json = function
  | Sampled -> "{\"verdict\": \"SAMPLED\"}"
  | Complete { executions } ->
      Printf.sprintf "{\"verdict\": \"COMPLETE\", \"executions\": %d}"
        executions
  | Bounded { executions; preempt_bound; within_bound_left } ->
      Printf.sprintf
        "{\"verdict\": \"BOUNDED\", \"executions\": %d, \
         \"preempt_bound\": %d, \"within_bound_left\": %b}"
        executions preempt_bound within_bound_left

let to_json ?(may = []) t =
  let arr fs =
    "[" ^ String.concat ", " (List.map (finding_to_json t) fs) ^ "]"
  in
  String.concat ""
    [ "{\"schema\": \"zigomp-report/1\"";
      Printf.sprintf ", \"backend\": \"%s\"" (json_escape t.backend);
      Printf.sprintf ", \"name\": \"%s\"" (json_escape t.name);
      Printf.sprintf ", \"clean\": %b" (clean t);
      Printf.sprintf ", \"exit\": %d" (exit_code t);
      Printf.sprintf ", \"schedules\": %d" t.schedules;
      (match t.exploration with
       | None -> ""
       | Some e ->
           Printf.sprintf ", \"exploration\": %s" (exploration_to_json e));
      ", \"findings\": "; arr t.findings;
      ", \"may\": "; arr may;
      "}" ]

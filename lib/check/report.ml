(** Checker findings and the machine-readable report.

    Every finding renders to exactly one stable line; the report is the
    deduplicated, sorted list of those lines under a one-line summary.
    Golden tests and the CI determinism check compare reports textually,
    so rendering must not depend on schedule timing beyond what the
    fixed seed already pins down. *)

type kind = Race | Lint | Divergence | Error

type finding = {
  kind : kind;
  line : string;  (** rendered, single line, stable across runs *)
}

type t = {
  name : string;       (** program name, as reported in the summary *)
  schedules : int;     (** schedules explored by the dynamic detector *)
  findings : finding list;  (** deduplicated, sorted by rendered line *)
}

let race line = { kind = Race; line }

let lint ~rule ~detail =
  { kind = Lint; line = Printf.sprintf "lint %s :: %s" rule detail }

let divergence ~detail = { kind = Divergence; line = "divergence :: " ^ detail }

let error ~detail = { kind = Error; line = "error :: " ^ detail }

(** Assemble a report: drop exact-duplicate lines (the same race found
    under several schedules), then sort for output stability. *)
let make ~name ~schedules findings =
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun f ->
        if Hashtbl.mem seen f.line then false
        else begin
          Hashtbl.add seen f.line ();
          true
        end)
      findings
  in
  { name; schedules; findings = List.sort compare uniq }

let races t = List.filter (fun f -> f.kind = Race) t.findings
let lints t = List.filter (fun f -> f.kind = Lint) t.findings
let errors t = List.filter (fun f -> f.kind = Error) t.findings

let clean t = t.findings = []

let summary t =
  Printf.sprintf "check: %s: %d finding(s), %d schedule(s) explored"
    t.name (List.length t.findings) t.schedules

let to_string t =
  String.concat "\n" (summary t :: List.map (fun f -> f.line) t.findings)

(** Vector clocks for the happens-before race detector.

    One clock entry per checker-global thread id (the virtual-thread id
    from {!Sim.Des}, so ids are dense but unbounded across a schedule —
    the array grows on demand and absent entries read as 0, exactly the
    FastTrack convention for "never synchronised with"). *)

type t = { mutable c : int array }

let create ?(hint = 8) () = { c = Array.make (max 1 hint) 0 }

let get v i = if i < Array.length v.c then v.c.(i) else 0

let ensure v n =
  if n > Array.length v.c then begin
    let c' = Array.make (max n (2 * Array.length v.c)) 0 in
    Array.blit v.c 0 c' 0 (Array.length v.c);
    v.c <- c'
  end

let set v i x =
  ensure v (i + 1);
  v.c.(i) <- x

let tick v i = set v i (get v i + 1)

(** [join dst src] — pointwise maximum, into [dst]. *)
let join dst src =
  ensure dst (Array.length src.c);
  Array.iteri (fun i x -> if x > dst.c.(i) then dst.c.(i) <- x) src.c

let copy v = { c = Array.copy v.c }

(** [covers v ~tid ~clk] — does [v] happen-after the event stamped
    [(tid, clk)]?  The core FastTrack test: an epoch is ordered before
    everything whose clock for its thread has reached it. *)
let covers v ~tid ~clk = clk <= get v tid

(** Cooperative checker runtime: the third execution backend.

    Runs a preprocessed Zr program on deterministic virtual threads
    ({!Sim.Des}) instead of real domains, intercepting the whole
    [.omp.internal] surface ({!Interp.Builtins.interceptor}) and every
    shared-reachable memory access ({!Interp.Rt.tracer}).  Each virtual
    thread carries a vector clock; forks, joins, barriers, criticals,
    atomics and reduction merges establish the happens-before edges
    documented in DESIGN.md, and every traced access is fed to the
    {!Race} detector under that ordering.

    Schedule exploration works by charging simulated time to accesses:
    the DES scheduler always runs the runnable thread with the smallest
    clock, so varying the per-access cost varies the interleaving while
    keeping every run fully deterministic.  [Uniform] advances every
    thread in lockstep (maximal fine-grained interleaving); [Skewed k]
    gives team members rotated relative speeds so each sync point is
    reached in a different order; [Seeded s] draws costs from a seeded
    PRNG. *)

module Des = Sim.Des
module V = Interp.Value
module Rt = Interp.Rt
module B = Interp.Builtins

type mode = Uniform | Skewed of int | Seeded of int

let mode_name = function
  | Uniform -> "uniform"
  | Skewed k -> Printf.sprintf "skewed:%d" k
  | Seeded s -> Printf.sprintf "seeded:%d" s

(* ----------------------------- state ------------------------------ *)

type team = {
  uid : int;                    (* stable creation-order id, for DPOR *)
  size : int;
  mutable bar_vc : Vc.t;        (* join of clocks of barrier arrivals *)
  mutable bar_blocked : (tstate * Des.wake) list;
  mutable bar_max : float;      (* latest arrival time this episode *)
  mutable done_members : int;   (* members that left the region *)
  mutable diverged : bool;      (* divergence already reported *)
  dispatchers : (int, Omprt.Ws.Dispatch.t) Hashtbl.t;  (* by loop epoch *)
  single_claims : (int, unit) Hashtbl.t;               (* by single epoch *)
  (* deferred explicit tasks: barriers and the region end gate on
     [task_live] reaching zero; the final clock of every completed task
     is kept so those gates establish the task-body → completion-point
     happens-before edges *)
  mutable task_live : int;
  mutable task_finals : Vc.t list;
  mutable task_waiters : Des.wake list;
}

and frame = {
  team : team;
  tid : int;
  icvs : Omprt.Icv.t;           (* this implicit task's data environment *)
  mutable single_seen : int;    (* singles this thread has met *)
  mutable loop_epoch : int;     (* dispatch loops this thread has met *)
  mutable task_children : Vc.t option ref list;
      (* direct child tasks: the cell fills with the child's final
         clock on completion; [taskwait] drains and joins them *)
}

and tstate = {
  gid : int;                    (* virtual-thread id = clock index *)
  vc : Vc.t;
  base_icvs : Omprt.Icv.t;      (* the frame outside any region *)
  mutable frames : frame list;  (* innermost region first *)
}

type session = {
  des : Des.t;
  nthreads : int;               (* configured default team size *)
  initial_icvs : Omprt.Icv.t;   (* virtual thread 0's starting frame *)
  mode : mode;
  ctl : Dpor.exec option;       (* DPOR-controlled run, else sampled *)
  mutable nteams : int;         (* teams forked so far, for team uids *)
  rng : Random.State.t option;
  race : Race.t;
  mutable findings : Report.finding list;
  threads : (int, tstate) Hashtbl.t;         (* vthread id -> state *)
  locks : (string, Des.Smutex.t * Vc.t) Hashtbl.t;  (* criticals *)
  atomic_lock : Des.Smutex.t * Vc.t;         (* __kmpc_atomic_begin/end *)
  mutable af : (Omprt.Atomics.Float.t * Vc.t) list;
  mutable ai : (Omprt.Atomics.Int.t * Vc.t) list;
  cp_slots : (int * int, V.t * Vc.t) Hashtbl.t;
      (* copyprivate broadcasts by (team uid, single epoch): value and
         the claimer's clock at the put *)
  mutable orphan_cp : V.t option;  (* copyprivate outside any region *)
  output : Buffer.t;            (* captured [print] output *)
}

let cur_tstate sess =
  match sess.des.Des.current with
  | Some vt -> Hashtbl.find_opt sess.threads vt.Des.id
  | None -> None

(* (team size, tid, frame) for the current thread; a thread outside any
   region is an orphan team of one. *)
let ctx ts =
  match ts.frames with
  | f :: _ -> (f.team.size, f.tid, Some f)
  | [] -> (1, 0, None)

(* The current task's ICV frame — mirrors {!Omprt.Team.icvs}, so the
   checker's serialisation/capping decisions agree with execution. *)
let icvs_of ts =
  match ts.frames with f :: _ -> f.icvs | [] -> ts.base_icvs

(* Enclosing active regions (teams of more than one thread) — the value
   [max_active_levels] is checked against, as in {!Omprt.Team.fork}. *)
let active_levels ts =
  List.length (List.filter (fun f -> f.team.size > 1) ts.frames)

(* Threads this contention-group chain has committed so far: 1 for the
   initial thread plus (size - 1) per enclosing team. *)
let group_threads ts =
  List.fold_left (fun acc f -> acc + (f.team.size - 1)) 1 ts.frames

(* ------------------------ schedule perturbation ------------------- *)

(* Charge simulated time to the current access; the DES min-clock rule
   turns the cost profile into an interleaving. *)
let pause sess ts =
  if ts.frames <> [] then
    let dt =
      match sess.mode with
      | Uniform -> 1.0
      | Skewed k ->
          let tid = match ts.frames with f :: _ -> f.tid | [] -> 0 in
          1.0 +. float_of_int ((tid + k) mod 5)
      | Seeded _ ->
          (match sess.rng with
           | Some st -> 0.5 +. Random.State.float st 2.0
           | None -> 1.0)
    in
    Des.advance sess.des dt

(* Report a visible operation to the DPOR engine (controlled runs
   only); must run after the [pause] of the same operation, so the
   event lands on the decision that resumed this thread. *)
let note sess ts ~obj ~kind =
  match sess.ctl with
  | Some ex -> Dpor.record ex ~gid:ts.gid ~vc:ts.vc ~obj ~kind
  | None -> ()

let controlled sess = sess.ctl <> None

(* --------------------------- the tracer --------------------------- *)

let on_trace sess ~rw acc ~off ~hint =
  (* Consume the compound-assignment note before any reschedule, so it
     cannot leak to another thread's access. *)
  let op = !Rt.pending_op in
  Rt.pending_op := None;
  match cur_tstate sess with
  | None -> ()
  | Some ts ->
      pause sess ts;
      (let obj =
         match acc with
         | Rt.Acell r -> Dpor.Ocell r
         | Rt.Afelem (a, i) -> Dpor.Ofelem (a, i)
         | Rt.Aielem (a, i) -> Dpor.Oielem (a, i)
       in
       note sess ts ~obj
         ~kind:(match rw with `R -> Dpor.Kread | `W -> Dpor.Kwrite));
      Race.access sess.race ~rw acc ~off ~hint ~gid:ts.gid ~vc:ts.vc ~op

(* --------------------------- barriers ----------------------------- *)

(* Task-completion happens-before: every gate that waits out the team's
   outstanding explicit tasks joins their final clocks. *)
let join_task_finals team vc =
  List.iter (fun fvc -> Vc.join vc fvc) team.task_finals

let rec wait_team_tasks sess team =
  if team.task_live > 0 then begin
    Des.suspend sess.des (fun wake ->
        team.task_waiters <- wake :: team.task_waiters);
    wait_team_tasks sess team
  end

let release_barrier sess team =
  join_task_finals team team.bar_vc;
  let blocked = List.rev team.bar_blocked in
  let bvc = team.bar_vc in
  let at = team.bar_max in
  team.bar_blocked <- [];
  team.bar_vc <- Vc.create ();
  team.bar_max <- 0.;
  List.iter
    (fun (ts, wake) ->
      Vc.join ts.vc bvc;
      Vc.tick ts.vc ts.gid;
      wake ~at)
    blocked;
  ignore sess

let note_divergence sess team =
  if not team.diverged then begin
    team.diverged <- true;
    sess.findings <-
      Report.divergence
        ~detail:
          (Printf.sprintf
             "%d of %d team members left the parallel region while the \
              rest wait at a barrier (unmatched barrier counts)"
             team.done_members team.size)
      :: sess.findings
  end

let barrier sess ts =
  match ts.frames with
  | [] -> Vc.tick ts.vc ts.gid
  | { team; _ } :: _ ->
      if team.size <= 1 then Vc.tick ts.vc ts.gid
      else begin
        Vc.join team.bar_vc ts.vc;
        let now = Des.now sess.des in
        if now > team.bar_max then team.bar_max <- now;
        let arrived = List.length team.bar_blocked + 1 in
        if arrived + team.done_members >= team.size && team.task_live = 0
        then begin
          if team.done_members > 0 then note_divergence sess team;
          (* self: adopt the rendezvous clock before the state resets *)
          join_task_finals team team.bar_vc;
          Vc.join ts.vc team.bar_vc;
          Vc.tick ts.vc ts.gid;
          release_barrier sess team
        end
        else
          (* not full yet — or full but outstanding explicit tasks keep
             the barrier closed; the last task completion releases it *)
          Des.suspend sess.des (fun wake ->
              team.bar_blocked <- (ts, wake) :: team.bar_blocked)
      end

(* A member returning from the region body can strand teammates at a
   barrier that now can never fill: report the divergence and release
   them rather than deadlocking the whole check. *)
let member_done sess (fr : frame) =
  let team = fr.team in
  team.done_members <- team.done_members + 1;
  if team.bar_blocked <> []
     && List.length team.bar_blocked + team.done_members >= team.size
  then begin
    note_divergence sess team;
    release_barrier sess team
  end

(* --------------------------- fork/join ---------------------------- *)

(* [requested] is the resolved team-size request (clause value or the
   encountering task's [nthreads-var]); the encountering task's frame is
   then enforced exactly as {!Omprt.Team.fork} does — serialisation
   beyond [max_active_levels], then the [thread_limit] contention-group
   cap — so the checker explores the same team shapes execution uses. *)
let fork sess parent ~call ~f ~fp ~sh ~red ~requested =
  Vc.tick parent.vc parent.gid;
  let pframe = icvs_of parent in
  let serialised =
    requested > 1 && active_levels parent >= pframe.Omprt.Icv.max_active_levels
  in
  let nth =
    if serialised then 1
    else
      min requested
        (max 1 (pframe.Omprt.Icv.thread_limit - group_threads parent + 1))
  in
  let team =
    { uid = sess.nteams;
      size = nth; bar_vc = Vc.create (); bar_blocked = []; bar_max = 0.;
      done_members = 0; diverged = false;
      dispatchers = Hashtbl.create 8; single_claims = Hashtbl.create 8;
      task_live = 0; task_finals = []; task_waiters = [] }
  in
  sess.nteams <- sess.nteams + 1;
  let remaining = ref (nth - 1) in
  let parent_wake : Des.wake option ref = ref None in
  let child_finals : Vc.t list ref = ref [] in
  for tid = 1 to nth - 1 do
    let cvc = Vc.copy parent.vc in
    Des.spawn sess.des (fun () ->
        let vt = Des.self sess.des in
        let child =
          { gid = vt.Des.id; vc = cvc;
            base_icvs = Omprt.Icv.copy pframe; frames = [] }
        in
        Vc.tick child.vc child.gid;
        Hashtbl.replace sess.threads child.gid child;
        let fr =
          { team; tid; icvs = Omprt.Icv.copy pframe;
            single_seen = 0; loop_epoch = 0; task_children = [] }
        in
        child.frames <- fr :: child.frames;
        ignore (call f [ fp; sh; red ]);
        child.frames <- List.tl child.frames;
        member_done sess fr;
        child_finals := child.vc :: !child_finals;
        decr remaining;
        if !remaining = 0 then
          match !parent_wake with
          | Some wake -> wake ~at:vt.Des.clock
          | None -> ())
  done;
  (* the children received a copy of the parent's clock: tick so the
     parent's own region-body events are distinguishable from the fork
     point (else a child's start would wrongly cover them) *)
  Vc.tick parent.vc parent.gid;
  (* the encountering thread is thread 0 of the team, run in place so
     threadprivate state persists across regions as OpenMP requires *)
  let fr0 =
    { team; tid = 0; icvs = Omprt.Icv.copy pframe;
      single_seen = 0; loop_epoch = 0; task_children = [] }
  in
  parent.frames <- fr0 :: parent.frames;
  ignore (call f [ fp; sh; red ]);
  parent.frames <- List.tl parent.frames;
  member_done sess fr0;
  if !remaining > 0 then
    Des.suspend sess.des (fun wake -> parent_wake := Some wake);
  (* region end: outstanding explicit tasks complete before the region
     is left (the runtime has every member drain its deque; here the
     encountering thread stands in for the team) *)
  wait_team_tasks sess team;
  join_task_finals team parent.vc;
  (* join: the parent happens-after every child's last event *)
  List.iter (fun cvc -> Vc.join parent.vc cvc) !child_finals;
  Vc.tick parent.vc parent.gid

(* --------------------------- locks -------------------------------- *)

let lock_of sess name =
  match Hashtbl.find_opt sess.locks name with
  | Some lv -> lv
  | None ->
      let lv = (Des.Smutex.create sess.des, Vc.create ()) in
      Hashtbl.add sess.locks name lv;
      lv

let acquire sess ts ~lname (m, lvc) =
  pause sess ts;
  note sess ts ~obj:(Dpor.Olock lname) ~kind:Dpor.Kacquire;
  Des.Smutex.lock m;
  Vc.join ts.vc lvc

let release _sess ts (m, lvc) =
  Vc.join lvc ts.vc;
  Vc.tick ts.vc ts.gid;
  Des.Smutex.unlock m

(* Atomic reduction cells synchronise like a per-cell lock: loads
   acquire, combines acquire and release. *)
let af_vc sess a =
  match List.find_opt (fun (x, _) -> x == a) sess.af with
  | Some (_, v) -> v
  | None ->
      let v = Vc.create () in
      sess.af <- (a, v) :: sess.af;
      v

let ai_vc sess a =
  match List.find_opt (fun (x, _) -> x == a) sess.ai with
  | Some (_, v) -> v
  | None ->
      let v = Vc.create () in
      sess.ai <- (a, v) :: sess.ai;
      v

let atomic_sync _sess ts cvc ~combine =
  Vc.join ts.vc cvc;
  if combine then begin
    Vc.join cvc ts.vc;
    Vc.tick ts.vc ts.gid
  end

(* ------------------------ builtin interception -------------------- *)

let is_combine fname =
  String.length fname > 21
  && String.sub fname 0 21 = "__omp_atomic_combine_"

let inclusive_hi ~step ~incl ub = if incl = 1 then
    (if step > 0 then ub + 1 else ub - 1)
  else ub

let on_builtin sess ~call fname args : V.t option =
  match cur_tstate sess with
  | None -> None
  | Some ts ->
      let it = V.to_int in
      (match fname, args with
       | "__kmpc_fork_call", [ V.VFun f; fp; sh; red; nt ] ->
           let requested =
             match it nt with
             | 0 -> (icvs_of ts).Omprt.Icv.nthreads
             | n -> max 1 n
           in
           fork sess ts ~call ~f ~fp ~sh ~red ~requested;
           Some V.VUnit
       | "__kmpc_barrier", [] ->
           barrier sess ts;
           Some V.VUnit
       | "__kmpc_for_static_init", [ lb; ub; step; incl ] ->
           let lo = it lb and step = it step in
           let hi = inclusive_hi ~step ~incl:(it incl) (it ub) in
           let nth, tid, _ = ctx ts in
           let trips = Omprt.Ws.trip_count ~lo ~hi ~step () in
           (match Omprt.Ws.static_block ~tid ~nthreads:nth ~trips with
            | Some (b, e) ->
                Some
                  (V.VStruct
                     [ ("has", V.VBool true);
                       ("lower", V.VInt (lo + (b * step)));
                       ("upper", V.VInt (lo + ((e - 1) * step))) ])
            | None ->
                Some
                  (V.VStruct
                     [ ("has", V.VBool false); ("lower", V.VInt 0);
                       ("upper", V.VInt 0) ]))
       | "__kmpc_for_static_fini", [] -> Some V.VUnit
       | "__kmpc_static_chunked_init", [ lb; ub; step; chunk; incl ] ->
           let lo = it lb and step = it step and chunk = max 1 (it chunk) in
           let hi = inclusive_hi ~step ~incl:(it incl) (it ub) in
           let nth, tid, _ = ctx ts in
           let trips = Omprt.Ws.trip_count ~lo ~hi ~step () in
           let chunks =
             List.map
               (fun (b, e) -> (lo + (b * step), lo + ((e - 1) * step)))
               (Omprt.Ws.static_chunks ~tid ~nthreads:nth ~trips ~chunk)
           in
           Some (V.VDispatch (V.Chunked (ref chunks)))
       | ( ("__kmpc_dispatch_init_dynamic" | "__kmpc_dispatch_init_guided"
           | "__kmpc_dispatch_init_runtime"),
           [ lb; ub; step; chunk; incl ] ) ->
           let lo = it lb and step = it step and chunk = max 1 (it chunk) in
           let hi = inclusive_hi ~step ~incl:(it incl) (it ub) in
           let sched =
             match fname with
             | "__kmpc_dispatch_init_dynamic" -> Omp_model.Sched.Dynamic chunk
             | "__kmpc_dispatch_init_guided" -> Omp_model.Sched.Guided chunk
             | _ -> Omp_model.Sched.Runtime
           in
           let nth, _, fro = ctx ts in
           let trips = Omprt.Ws.trip_count ~lo ~hi ~step () in
           let d =
             match fro with
             | None ->
                 let kind, chunk = Omprt.Kmpc.dispatch_kind trips 1 sched in
                 Omprt.Ws.Dispatch.create ~kind ~trips ~chunk ~nthreads:1
             | Some fr ->
                 let epoch = fr.loop_epoch in
                 fr.loop_epoch <- epoch + 1;
                 (match Hashtbl.find_opt fr.team.dispatchers epoch with
                  | Some d -> d
                  | None ->
                      let kind, chunk =
                        Omprt.Kmpc.dispatch_kind trips nth sched
                      in
                      let d =
                        Omprt.Ws.Dispatch.create ~kind ~trips ~chunk
                          ~nthreads:nth
                      in
                      Hashtbl.add fr.team.dispatchers epoch d;
                      d)
           in
           Some
             (V.VDispatch
                (V.Shared
                   { Omprt.Kmpc.d; lo; step; home = None; drained = false }))
       | "__kmpc_dispatch_next", [ V.VDispatch disp ] ->
           (* perturb the claim order, then use the shared engine *)
           pause sess ts;
           (match disp with
            | V.Shared { Omprt.Kmpc.d; _ } ->
                note sess ts ~obj:(Dpor.Odispatch d) ~kind:Dpor.Kacquire
            | _ -> ());
           None
       | "__kmpc_critical", [ V.VStr name ] ->
           acquire sess ts ~lname:name (lock_of sess name);
           Some V.VUnit
       | "__kmpc_end_critical", [ V.VStr name ] ->
           release sess ts (lock_of sess name);
           Some V.VUnit
       | "__kmpc_atomic_begin", [] ->
           acquire sess ts ~lname:"<atomic>" sess.atomic_lock;
           Some V.VUnit
       | "__kmpc_atomic_end", [] ->
           release sess ts sess.atomic_lock;
           Some V.VUnit
       | "__kmpc_single", [] ->
           (match ts.frames with
            | [] -> Some (V.VBool true)
            | fr :: _ ->
                let e = fr.single_seen in
                fr.single_seen <- e + 1;
                (* which thread claims a single is schedule-sensitive:
                   under DPOR the claim is a visible contended op *)
                if controlled sess then begin
                  pause sess ts;
                  note sess ts ~obj:(Dpor.Osingle (fr.team.uid, e))
                    ~kind:Dpor.Kacquire
                end;
                if Hashtbl.mem fr.team.single_claims e then
                  Some (V.VBool false)
                else begin
                  Hashtbl.add fr.team.single_claims e ();
                  Some (V.VBool true)
                end)
       | "__kmpc_end_single", [] -> Some V.VUnit
       | "__kmpc_omp_task", [ V.VFun f; fp; sh ] ->
           (match ts.frames with
            | fr :: _ when fr.team.size > 1 ->
                let team = fr.team in
                (* creation is a visible scheduling point, and the task
                   body happens-after it: the child vthread starts from
                   a copy of the creator's clock *)
                pause sess ts;
                Vc.tick ts.vc ts.gid;
                let cvc = Vc.copy ts.vc in
                let cell = ref None in
                fr.task_children <- cell :: fr.task_children;
                team.task_live <- team.task_live + 1;
                let ticvs = Omprt.Icv.copy fr.icvs in
                Des.spawn sess.des (fun () ->
                    let vt = Des.self sess.des in
                    let child =
                      { gid = vt.Des.id; vc = cvc; base_icvs = ticvs;
                        frames = [] }
                    in
                    Vc.tick child.vc child.gid;
                    Hashtbl.replace sess.threads child.gid child;
                    let cfr =
                      { team; tid = fr.tid; icvs = ticvs;
                        single_seen = 0; loop_epoch = 0;
                        task_children = [] }
                    in
                    child.frames <- [ cfr ];
                    ignore (call f [ fp; sh ]);
                    (* completion: fill the creator's child cell,
                       publish the final clock, and reopen any gate
                       this was the last outstanding task of *)
                    let final = Vc.copy child.vc in
                    cell := Some final;
                    team.task_live <- team.task_live - 1;
                    team.task_finals <- final :: team.task_finals;
                    let at = Des.now sess.des in
                    if at > team.bar_max then team.bar_max <- at;
                    let ws = team.task_waiters in
                    team.task_waiters <- [];
                    List.iter (fun wake -> wake ~at) ws;
                    if team.task_live = 0
                       && team.bar_blocked <> []
                       && List.length team.bar_blocked + team.done_members
                          >= team.size
                    then release_barrier sess team);
                (* separate the creator's later events from the spawn *)
                Vc.tick ts.vc ts.gid
            | fr :: _ ->
                (* serialised team: undeferred, in its own ICV frame *)
                let cfr =
                  { team = fr.team; tid = fr.tid;
                    icvs = Omprt.Icv.copy fr.icvs;
                    single_seen = fr.single_seen;
                    loop_epoch = fr.loop_epoch; task_children = [] }
                in
                ts.frames <- cfr :: ts.frames;
                Fun.protect
                  ~finally:(fun () -> ts.frames <- List.tl ts.frames)
                  (fun () -> ignore (call f [ fp; sh ]))
            | [] -> ignore (call f [ fp; sh ]));
           Some V.VUnit
       | "__kmpc_omp_taskwait", [] ->
           (match ts.frames with
            | fr :: _ ->
                pause sess ts;
                let rec wait () =
                  if List.for_all (fun c -> !c <> None) fr.task_children
                  then begin
                    (* child bodies happen-before taskwait return *)
                    List.iter
                      (fun c ->
                        match !c with
                        | Some fvc -> Vc.join ts.vc fvc
                        | None -> ())
                      fr.task_children;
                    fr.task_children <- [];
                    Vc.tick ts.vc ts.gid
                  end
                  else begin
                    Des.suspend sess.des (fun wake ->
                        fr.team.task_waiters <-
                          wake :: fr.team.task_waiters);
                    wait ()
                  end
                in
                wait ()
            | [] -> Vc.tick ts.vc ts.gid);
           Some V.VUnit
       | "__kmpc_copyprivate_put", [ v ] ->
           (match ts.frames with
            | fr :: _ ->
                Hashtbl.replace sess.cp_slots
                  (fr.team.uid, fr.single_seen - 1)
                  (v, Vc.copy ts.vc)
            | [] -> sess.orphan_cp <- Some v);
           Some V.VUnit
       | "__kmpc_copyprivate_get", [] ->
           let missing () =
             raise
               (V.Runtime_error
                  "__kmpc_copyprivate_get: no pending broadcast")
           in
           (match ts.frames with
            | fr :: _ ->
                (match
                   Hashtbl.find_opt sess.cp_slots
                     (fr.team.uid, fr.single_seen - 1)
                 with
                 | Some (v, pvc) ->
                     (* broadcast → consumers happens-before edge *)
                     Vc.join ts.vc pvc;
                     Some v
                 | None -> missing ())
            | [] ->
                (match sess.orphan_cp with
                 | Some v -> Some v
                 | None -> missing ()))
       | "__omp_get_thread_num", [] ->
           let _, tid, _ = ctx ts in
           Some (V.VInt tid)
       | "__omp_atomic_load", [ V.VAtomicF a ] ->
           if controlled sess then begin
             pause sess ts;
             note sess ts ~obj:(Dpor.Oatomf a) ~kind:Dpor.Kload
           end;
           atomic_sync sess ts (af_vc sess a) ~combine:false;
           None
       | "__omp_atomic_load", [ V.VAtomicI a ] ->
           if controlled sess then begin
             pause sess ts;
             note sess ts ~obj:(Dpor.Oatomi a) ~kind:Dpor.Kload
           end;
           atomic_sync sess ts (ai_vc sess a) ~combine:false;
           None
       | _, (V.VAtomicF a :: _) when is_combine fname ->
           pause sess ts;
           note sess ts ~obj:(Dpor.Oatomf a) ~kind:Dpor.Kcombine;
           atomic_sync sess ts (af_vc sess a) ~combine:true;
           None
       | _, (V.VAtomicI a :: _) when is_combine fname ->
           pause sess ts;
           note sess ts ~obj:(Dpor.Oatomi a) ~kind:Dpor.Kcombine;
           atomic_sync sess ts (ai_vc sess a) ~combine:true;
           None
       | "print", [ v ] ->
           Buffer.add_string sess.output (V.to_string v);
           Buffer.add_char sess.output '\n';
           Some V.VUnit
       | _ -> None)

let on_omp sess meth args : V.t option =
  match cur_tstate sess with
  | None -> None
  | Some ts ->
      let nth, tid, _ = ctx ts in
      (match meth, args with
       | "get_thread_num", [] -> Some (V.VInt tid)
       | "get_num_threads", [] -> Some (V.VInt nth)
       | "get_max_threads", [] ->
           Some (V.VInt (icvs_of ts).Omprt.Icv.nthreads)
       | "set_num_threads", [ v ] ->
           (* the calling task's frame only — never the session *)
           let n = V.to_int v in
           if n > 0 then (icvs_of ts).Omprt.Icv.nthreads <- n;
           Some V.VUnit
       | "get_num_procs", [] -> Some (V.VInt sess.nthreads)
       | "in_parallel", [] ->
           Some
             (V.VBool (List.exists (fun f -> f.team.size > 1) ts.frames))
       | "get_level", [] -> Some (V.VInt (List.length ts.frames))
       | "get_active_level", [] -> Some (V.VInt (active_levels ts))
       | "get_ancestor_thread_num", [ v ] ->
           let depth = List.length ts.frames in
           let lvl = V.to_int v in
           Some
             (V.VInt
                (if lvl < 0 || lvl > depth then -1
                 else if lvl = 0 then 0
                 else (List.nth ts.frames (depth - lvl)).tid))
       | "get_team_size", [ v ] ->
           let depth = List.length ts.frames in
           let lvl = V.to_int v in
           Some
             (V.VInt
                (if lvl < 0 || lvl > depth then -1
                 else if lvl = 0 then 1
                 else (List.nth ts.frames (depth - lvl)).team.size))
       | "get_thread_limit", [] ->
           Some (V.VInt (icvs_of ts).Omprt.Icv.thread_limit)
       | "get_max_active_levels", [] ->
           Some (V.VInt (icvs_of ts).Omprt.Icv.max_active_levels)
       | "set_max_active_levels", [ v ] ->
           let n = V.to_int v in
           if n >= 0 then
             (icvs_of ts).Omprt.Icv.max_active_levels <-
               min n Omprt.Icv.supported_active_levels;
           Some V.VUnit
       | "get_supported_active_levels", [] ->
           Some (V.VInt Omprt.Icv.supported_active_levels)
       | "get_dynamic", [] ->
           Some (V.VBool (icvs_of ts).Omprt.Icv.dynamic)
       | "set_dynamic", [ v ] ->
           (icvs_of ts).Omprt.Icv.dynamic <- V.to_bool v;
           Some V.VUnit
       | "get_wtime", [] -> Some (V.VFloat (Des.now sess.des *. 1e-9))
       | "get_wtick", [] -> Some (V.VFloat 1e-9)
       | _ -> None)

(* --------------------------- driving ------------------------------ *)

(* Run one execution: load the program with the hooks uninstalled (so
   global initialisation is untraced), install tracer + interceptor +
   virtual-thread TLS keying, execute [run prog] on virtual thread 0,
   and collect findings.  Hook installation is globally exclusive —
   the checker is single-domain by construction.  With [ctl] the DES
   runs in controlled mode: the DPOR execution decides every
   scheduling point instead of the min-clock rule. *)
let run_session ~name ~(load : unit -> Interp.program)
    ~(run : Interp.program -> unit) ~mode ~nthreads ~ctl () :
    Report.finding list * string =
  let prog = load () in
  let des = Des.create () in
  let src = Zr.Source.of_string ~name prog.Interp.preprocessed in
  (* The virtual initial task inherits the real process ICVs (so the
     checker agrees with execution on max_active_levels, thread_limit,
     schedule...), with the configured team size as its nthreads-var. *)
  let initial_icvs = Omprt.Icv.copy Omprt.Icv.global in
  initial_icvs.Omprt.Icv.nthreads <- nthreads;
  let sess =
    { des; nthreads; initial_icvs; mode; ctl; nteams = 0;
      rng =
        (match mode with
         | Seeded s -> Some (Random.State.make [| s; 0x5eed |])
         | _ -> None);
      race = Race.create ~src;
      findings = []; threads = Hashtbl.create 16;
      locks = Hashtbl.create 8;
      atomic_lock = (Des.Smutex.create des, Vc.create ());
      af = []; ai = []; cp_slots = Hashtbl.create 8; orphan_cp = None;
      output = Buffer.create 256 }
  in
  let label =
    match ctl with Some _ -> "dpor" | None -> mode_name mode
  in
  (match ctl with
   | Some ex -> Des.set_decide des (fun ids -> Dpor.decide ex ~enabled:ids)
   | None -> ());
  Rt.tracer := Some { Rt.trace = on_trace sess };
  Rt.escaped := [];
  B.interceptor :=
    Some { B.on_builtin = on_builtin sess; on_omp = on_omp sess };
  Rt.tls_key :=
    (fun () ->
      match sess.des.Des.current with
      | Some vt -> vt.Des.id
      | None -> 0);
  Fun.protect
    ~finally:(fun () ->
      Rt.tracer := None;
      Rt.escaped := [];
      B.interceptor := None;
      Rt.pending_op := None;
      Rt.tls_key := (fun () -> (Domain.self () :> int)))
    (fun () ->
      Des.spawn des (fun () ->
          let vt = Des.self des in
          let ts =
            { gid = vt.Des.id; vc = Vc.create ();
              base_icvs = sess.initial_icvs; frames = [] }
          in
          Vc.tick ts.vc ts.gid;
          Hashtbl.replace sess.threads ts.gid ts;
          run prog);
      (try ignore (Des.run des) with
       | Des.Deadlock msg ->
           sess.findings <-
             Report.error ~detail:(label ^ ": " ^ msg) :: sess.findings
       | V.Runtime_error msg ->
           sess.findings <-
             Report.error ~detail:(label ^ ": " ^ msg) :: sess.findings
       | Zr.Source.Error msg ->
           sess.findings <-
             Report.error ~detail:(label ^ ": " ^ msg) :: sess.findings));
  (Race.findings sess.race @ sess.findings, Buffer.contents sess.output)

(** Run one sampled schedule (the legacy 7-schedule mode). *)
let run_schedule ~name ~load ~run ~mode ~nthreads () =
  run_session ~name ~load ~run ~mode ~nthreads ~ctl:None ()

(** Run one DPOR-controlled execution: [ex]'s forced prefix decides the
    first scheduling points, then the default continuation; the events
    and backtrack candidates land in [ex]. *)
let run_controlled ~name ~load ~run ~nthreads ~ex () =
  run_session ~name ~load ~run ~mode:Uniform ~nthreads ~ctl:(Some ex) ()

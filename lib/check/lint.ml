(** Execution-free lints over the original (un-preprocessed) AST.

    Two rules run here; the third documented lint — [default(none)]
    with unlisted captures — is enforced by the preprocessor itself
    and surfaced by {!Check.check_source} as a finding when
    preprocessing fails with that diagnostic.

    - [nowait-dependent-read]: inside a parallel region, a variable
      written under a [for nowait] loop is referenced — by redundantly
      executed plain statements, or by [single]/[master]/[critical]
      bodies — before any construct that implies a barrier.  References
      inside *subsequent worksharing loops* are deliberately not
      flagged: reading your own partition's results there is the legal
      same-partition idiom (NPB CG uses it), and cross-partition use is
      left to the dynamic detector.

    - [divergent-barrier]: a construct implying a barrier ([barrier],
      [for]/[single] without [nowait]) nested where only some of the
      team executes it — under [master], under a [single] body, or
      under an [if] whose condition mentions the thread id.  Barrier
      counts then diverge across the team, which deadlocks (or, under
      the checker, reports divergence). *)

open Zr
module D = Ompfront.Directive
module P = Ompfront.Packed
module Names = Preproc.Names
module Sset = Names.Sset

let node_pos ast src i =
  let n = Ast.node ast i in
  let off = (Ast.token ast n.Ast.main_token).Token.start in
  let line, col = Source.position src off in
  Printf.sprintf "%d:%d" line col

let clause_name ast id = Ast.token_text ast (Ast.node ast id).Ast.main_token

(* All names privatised by a directive's clauses. *)
let privatised ast (cl : D.clauses) =
  List.fold_left
    (fun acc id -> Sset.add (clause_name ast id) acc)
    Sset.empty
    (cl.D.private_ @ cl.D.firstprivate
     @ List.map snd cl.D.reductions)

let threadprivate_names ast =
  List.fold_left
    (fun acc d ->
      let n = Ast.node ast d in
      if n.Ast.tag = Ast.Omp_threadprivate then
        List.fold_left
          (fun acc id -> Sset.add (clause_name ast id) acc)
          acc (Ast.clauses ast d).D.private_
      else acc)
    Sset.empty (Ast.top_decls ast)

let rec base_ident ast i =
  let n = Ast.node ast i in
  match n.Ast.tag with
  | Ast.Ident -> Some (Ast.token_text ast n.main_token)
  | Ast.Index | Ast.Field | Ast.Deref -> base_ident ast n.lhs
  | _ -> None

(* Base names of every assignment target under [i]. *)
let assign_targets ast i =
  let acc = ref Sset.empty in
  Names.walk ast i (fun j ->
      let n = Ast.node ast j in
      if n.Ast.tag = Ast.Assign then
        match base_ident ast n.Ast.lhs with
        | Some v -> acc := Sset.add v !acc
        | None -> ());
  !acc

(* ------------------- rule: nowait-dependent-read ------------------- *)

let nowait_rule ast src findings =
  let tp = threadprivate_names ast in
  let regions = Names.omp_nodes ast (fun t -> t = Ast.Omp_parallel) in
  List.iter
    (fun region ->
      let rn = Ast.node ast region in
      let body = rn.Ast.rhs in
      let region_cl = Ast.clauses ast region in
      let region_locals = Names.declared_under ast body in
      let excl_base =
        Sset.union tp (Sset.union region_locals (privatised ast region_cl))
      in
      (* shared names written under a nowait worksharing loop *)
      let nowait_writes s =
        let n = Ast.node ast s in
        let cl = Ast.clauses ast s in
        let loop = n.Ast.rhs in
        let ln = Ast.node ast loop in
        let cont, lbody =
          if ln.Ast.tag = Ast.While then
            (Ast.extra ast ln.Ast.rhs, Ast.extra ast (ln.Ast.rhs + 1))
          else (0, loop)
        in
        let induction =
          if cont <> 0 then assign_targets ast cont else Sset.empty
        in
        let excl =
          List.fold_left Sset.union excl_base
            [ privatised ast cl; Names.declared_under ast lbody; induction ]
        in
        Sset.diff (assign_targets ast lbody) excl
      in
      (* report pending vars referenced under [reader] *)
      let check_reads pending reader =
        if pending <> [] then begin
          let refs = Names.referenced_under ast reader in
          List.iter
            (fun (v, wpos) ->
              if Sset.mem v refs then
                findings :=
                  Report.lint () ~rule:"nowait-dependent-read"
                    ~detail:
                      (Printf.sprintf
                         "%s@%s :: written under `for nowait` at %s, \
                          used before the next barrier" v
                         (node_pos ast src reader) wpos)
                  :: !findings)
            pending
        end
      in
      (* sequential scan; [pending] maps var -> position of its nowait
         loop, cleared by anything that implies a barrier *)
      let rec scan_stmts pending stmts =
        List.fold_left scan_stmt pending stmts
      and scan_stmt pending s =
        let n = Ast.node ast s in
        match n.Ast.tag with
        | Ast.Omp_barrier -> []
        | Ast.Omp_for ->
            let cl = Ast.clauses ast s in
            if cl.D.flags.P.nowait then
              pending
              @ List.map
                  (fun v -> (v, node_pos ast src s))
                  (Sset.elements (nowait_writes s))
            else []  (* implied barrier orders everything before it *)
        | Ast.Omp_single ->
            let cl = Ast.clauses ast s in
            check_reads pending n.Ast.rhs;
            if cl.D.flags.P.nowait then pending else []
        | Ast.Omp_master | Ast.Omp_critical | Ast.Omp_atomic ->
            check_reads pending n.Ast.rhs;
            pending
        | Ast.Omp_parallel | Ast.Omp_parallel_for ->
            pending  (* nested team: out of this rule's scope *)
        | Ast.Block -> scan_stmts pending (Ast.block_stmts ast s)
        | Ast.While ->
            check_reads pending n.Ast.lhs;
            let cont = Ast.extra ast n.Ast.rhs in
            let body = Ast.extra ast (n.Ast.rhs + 1) in
            let pending' = scan_stmt pending body in
            if cont <> 0 then check_reads pending' cont;
            pending'
        | Ast.If ->
            check_reads pending n.Ast.lhs;
            let then_ = Ast.extra ast n.Ast.rhs in
            let else_ = Ast.extra ast (n.Ast.rhs + 1) in
            let p1 = scan_stmt pending then_ in
            let p2 = if else_ <> 0 then scan_stmt pending else_ else [] in
            List.sort_uniq compare (p1 @ p2)
        | _ ->
            check_reads pending s;
            pending
      in
      ignore (scan_stmt [] body))
    regions

(* -------------------- rule: divergent-barrier ---------------------- *)

let mentions_thread_id ast i =
  let found = ref false in
  Names.walk ast i (fun j ->
      let n = Ast.node ast j in
      match n.Ast.tag with
      | Ast.Field when Ast.token_text ast n.Ast.main_token = "get_thread_num"
        ->
          found := true
      | Ast.Ident
        when Ast.token_text ast n.Ast.main_token = "__omp_get_thread_num" ->
          found := true
      | _ -> ());
  !found

let divergent_rule ast src findings =
  let report i where what =
    findings :=
      Report.lint () ~rule:"divergent-barrier"
        ~detail:
          (Printf.sprintf "%s at %s :: only part of the team reaches it (%s)"
             what (node_pos ast src i) where)
      :: !findings
  in
  let regions = Names.omp_nodes ast (fun t -> t = Ast.Omp_parallel) in
  List.iter
    (fun region ->
      let rec go ctx i =
        let n = Ast.node ast i in
        match n.Ast.tag with
        | Ast.Omp_parallel | Ast.Omp_parallel_for -> ()  (* nested team *)
        | Ast.Omp_master ->
            let ctx' =
              Some ("under master at " ^ node_pos ast src i)
            in
            List.iter (go ctx') (Names.children ast i)
        | Ast.Omp_single ->
            let cl = Ast.clauses ast i in
            (match ctx with
             | Some where when not cl.D.flags.P.nowait ->
                 report i where "single (implied barrier)"
             | _ -> ());
            let ctx' =
              Some ("under single at " ^ node_pos ast src i)
            in
            List.iter (go ctx') (Names.children ast i)
        | Ast.Omp_barrier ->
            (match ctx with
             | Some where -> report i where "barrier"
             | None -> ())
        | Ast.Omp_for ->
            let cl = Ast.clauses ast i in
            (match ctx with
             | Some where when not cl.D.flags.P.nowait ->
                 report i where "for (implied barrier)"
             | _ -> ());
            List.iter (go ctx) (Names.children ast i)
        | Ast.If ->
            let ctx' =
              match ctx with
              | Some _ -> ctx
              | None ->
                  if mentions_thread_id ast n.Ast.lhs then
                    Some ("under thread-id conditional at "
                          ^ node_pos ast src i)
                  else None
            in
            List.iter (go ctx') (Names.children ast i)
        | _ -> List.iter (go ctx) (Names.children ast i)
      in
      go None (Ast.node ast region).Ast.rhs)
    regions

(* ------------------------------ entry ------------------------------ *)

(** Run every lint; raises {!Zr.Source.Error} if the program does not
    parse. *)
let run ~name (src_text : string) : Report.finding list =
  let ast, _spans = Parser.parse_string ~name src_text in
  let src = Source.of_string ~name src_text in
  let findings = ref [] in
  nowait_rule ast src findings;
  divergent_rule ast src findings;
  !findings

(** Dynamic partial-order reduction over the cooperative checker.

    The 7-schedule sampler (PR 3) perturbs access costs and hopes; this
    module makes the exploration systematic.  An execution is driven by
    a {e decision sequence}: at every scheduling point the controlled
    {!Sim.Des} scheduler asks {!decide} which runnable virtual thread
    to resume.  Because the interpreter, the cooperative runtime and
    the virtual-thread ids are all deterministic functions of that
    sequence, replaying a recorded prefix of decisions reproduces the
    execution exactly — re-execution seeding instead of state
    snapshotting.

    During a run the checker reports every visible operation to
    {!record}: data reads and writes (identified physically, exactly as
    the {!Race} detector sees them), lock-style acquisitions (critical
    sections, the atomic statement lock, [single] claims, shared
    dynamic-dispatch claims) and atomic reduction-cell operations.
    From the trace the engine computes {e backtrack candidates} —
    (decision index, thread) pairs at which running a different thread
    could reorder two dependent operations:

    - two data accesses to the same location by different threads, at
      least one a write, {e not} ordered by happens-before (the same
      [Vc.covers] test the race detector applies — pairs ordered by
      fork/join/barrier/lock edges cannot be reordered by scheduling,
      so they generate no candidates);
    - two acquisitions of the same lock object by different threads
      (always reorderable, whatever the clocks say: the lock itself is
      the only order between them);
    - an atomic combine against an atomic load of the same cell.
      Combine/combine pairs commute (the cells are only ever updated
      through associative-commutative reductions), so they are treated
      as independent — the observability optimisation that keeps
      atomic-counter programs from exploding.

    Each candidate becomes a new prefix: the trace's decisions up to
    the earlier event, then the other thread.  {!explore} drains the
    frontier lowest-preemption-count first, so when the execution
    budget bites, every interleaving within the preemption bound has
    been tried before any wilder one — a principled bounded search
    rather than luck.  An empty frontier is a {e complete} verdict for
    the reduced interleaving space; a spent budget is {e bounded}.

    Soundness caveats (see DESIGN.md): completeness is relative to the
    checker's happens-before model and to the cooperative runtime's
    determinism — FIFO lock hand-off fixes the order of already-blocked
    waiters (contention order is still explored at the
    pause-before-acquire point), and values read are those of the Zr
    interpreter, not a weak-memory semantics (Du et al.'s formal C/OpenMP
    semantics is the reference for which executions are candidates;
    everything explored here is sequentially consistent). *)

(* ------------------------- growable vectors ----------------------- *)

module Vec = struct
  type 'a t = { mutable a : 'a array; mutable n : int }

  let create () = { a = [||]; n = 0 }
  let length v = v.n

  let push v x =
    if v.n = Array.length v.a then begin
      let c = Array.make (max 8 (2 * v.n)) x in
      Array.blit v.a 0 c 0 v.n;
      v.a <- c
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i =
    if i < 0 || i >= v.n then invalid_arg "Dpor.Vec.get";
    v.a.(i)
end

(* ----------------------------- events ----------------------------- *)

(** Kinds of visible operations, by dependence behaviour:
    [Kread]/[Kwrite] are happens-before-filtered data accesses;
    [Kacquire] is a lock-style acquisition (conflicts with the previous
    acquisition of the same object regardless of clocks); [Kcombine] is
    a commuting atomic reduction update (conflicts with loads only);
    [Kload] is an atomic read (conflicts with combines). *)
type kind = Kread | Kwrite | Kacquire | Kcombine | Kload

(** Visible-operation object identity.  Data locations are physical —
    the same cells the tracer hands the race detector — so aliasing is
    resolved for free; locks and [single] claims are named. *)
type obj =
  | Ocell of Interp.Value.t ref
  | Ofelem of float array * int
  | Oielem of int array * int
  | Olock of string                       (* criticals, the atomic lock *)
  | Oatomf of Omprt.Atomics.Float.t
  | Oatomi of Omprt.Atomics.Int.t
  | Odispatch of Omprt.Ws.Dispatch.t
  | Osingle of int * int                  (* team uid, single epoch *)

type evt = { e_gid : int; e_clk : int; e_step : int }

type objstate = {
  mutable ow : evt option;   (* last write / acquire / combine *)
  mutable oreads : evt list; (* latest read per thread since [ow] *)
}

(* --------------------------- executions --------------------------- *)

type exec = {
  prefix : int array;            (* forced decisions, then free running *)
  choices : int Vec.t;           (* decision log: chosen thread per step *)
  enabled : int list Vec.t;      (* runnable set offered at each step *)
  switches : bool Vec.t;         (* step was a preemption of a runnable
                                    previous thread *)
  mutable last : int;            (* previously chosen thread, -1 at start *)
  mutable diverged : bool;       (* prefix replay failed — determinism bug *)
  (* per-object tables, mirroring Race's physical-identity scheme *)
  mutable cells : (Interp.Value.t ref * objstate) list;
  mutable fas : (float array * (int, objstate) Hashtbl.t) list;
  mutable ias : (int array * (int, objstate) Hashtbl.t) list;
  named : (string, objstate) Hashtbl.t;
  mutable atf : (Omprt.Atomics.Float.t * objstate) list;
  mutable ati : (Omprt.Atomics.Int.t * objstate) list;
  mutable disp : (Omprt.Ws.Dispatch.t * objstate) list;
  cands : (int * int, unit) Hashtbl.t;  (* decision index, thread to force *)
}

let new_exec ~prefix =
  { prefix;
    choices = Vec.create ();
    enabled = Vec.create ();
    switches = Vec.create ();
    last = -1;
    diverged = false;
    cells = []; fas = []; ias = [];
    named = Hashtbl.create 16;
    atf = []; ati = []; disp = [];
    cands = Hashtbl.create 32 }

(** The scheduling decision: replay the forced prefix while it lasts,
    then default to staying on the current thread (minimising
    preemptions, which keeps the first execution of every prefix inside
    the preemption-bound frontier), falling back to the lowest runnable
    id.  [enabled] arrives sorted from {!Sim.Des}. *)
let decide ex ~enabled =
  let n = Vec.length ex.choices in
  let chosen =
    if n < Array.length ex.prefix && List.mem ex.prefix.(n) enabled then
      ex.prefix.(n)
    else begin
      if n < Array.length ex.prefix then ex.diverged <- true;
      if ex.last >= 0 && List.mem ex.last enabled then ex.last
      else List.hd enabled
    end
  in
  Vec.push ex.choices chosen;
  Vec.push ex.enabled enabled;
  Vec.push ex.switches
    (ex.last >= 0 && chosen <> ex.last && List.mem ex.last enabled);
  ex.last <- chosen;
  chosen

let diverged ex = ex.diverged

(* ------------------------ object-state lookup --------------------- *)

let fresh_state () = { ow = None; oreads = [] }

let elem_state h i =
  match Hashtbl.find_opt h i with
  | Some s -> s
  | None ->
      let s = fresh_state () in
      Hashtbl.add h i s;
      s

let state_of ex (o : obj) : objstate =
  match o with
  | Ocell r ->
      (match List.find_opt (fun (x, _) -> x == r) ex.cells with
       | Some (_, s) -> s
       | None ->
           let s = fresh_state () in
           ex.cells <- (r, s) :: ex.cells;
           s)
  | Ofelem (a, i) ->
      let h =
        match List.find_opt (fun (x, _) -> x == a) ex.fas with
        | Some (_, h) -> h
        | None ->
            let h = Hashtbl.create 64 in
            ex.fas <- (a, h) :: ex.fas;
            h
      in
      elem_state h i
  | Oielem (a, i) ->
      let h =
        match List.find_opt (fun (x, _) -> x == a) ex.ias with
        | Some (_, h) -> h
        | None ->
            let h = Hashtbl.create 64 in
            ex.ias <- (a, h) :: ex.ias;
            h
      in
      elem_state h i
  | Olock name ->
      let key = "lock:" ^ name in
      (match Hashtbl.find_opt ex.named key with
       | Some s -> s
       | None ->
           let s = fresh_state () in
           Hashtbl.add ex.named key s;
           s)
  | Osingle (team, epoch) ->
      let key = Printf.sprintf "single:%d:%d" team epoch in
      (match Hashtbl.find_opt ex.named key with
       | Some s -> s
       | None ->
           let s = fresh_state () in
           Hashtbl.add ex.named key s;
           s)
  | Oatomf a ->
      (match List.find_opt (fun (x, _) -> x == a) ex.atf with
       | Some (_, s) -> s
       | None ->
           let s = fresh_state () in
           ex.atf <- (a, s) :: ex.atf;
           s)
  | Oatomi a ->
      (match List.find_opt (fun (x, _) -> x == a) ex.ati with
       | Some (_, s) -> s
       | None ->
           let s = fresh_state () in
           ex.ati <- (a, s) :: ex.ati;
           s)
  | Odispatch d ->
      (match List.find_opt (fun (x, _) -> x == d) ex.disp with
       | Some (_, s) -> s
       | None ->
           let s = fresh_state () in
           ex.disp <- (d, s) :: ex.disp;
           s)

(* ------------------------ backtrack candidates -------------------- *)

(* A candidate at decision [s]: force [gid] there if it was runnable —
   the replayed prefix is identical up to [s], so the enabled set at
   [s] is too.  When [gid] was not yet runnable (e.g. not yet spawned),
   fall back to every other thread runnable at [s]: conservative, as in
   the original Flanagan–Godefroid formulation. *)
let add_candidate ex (prior : evt) ~gid =
  let s = prior.e_step in
  if s >= 0 && s < Vec.length ex.enabled then begin
    let there = Vec.get ex.enabled s in
    let chosen_there = Vec.get ex.choices s in
    let tids =
      if List.mem gid there then [ gid ]
      else List.filter (fun t -> t <> chosen_there) there
    in
    List.iter
      (fun q ->
        if q <> chosen_there then Hashtbl.replace ex.cands (s, q) ())
      tids
  end

(** Record a visible operation by thread [gid] whose vector clock is
    [vc], at the decision index that resumed it (the latest one).
    Updates the object's last-access state and adds backtrack
    candidates for every dependent, reorderable prior operation. *)
let debug = Sys.getenv_opt "ZIGOMP_DPOR_DEBUG" <> None

let kind_s = function
  | Kread -> "r" | Kwrite -> "w" | Kacquire -> "a" | Kcombine -> "c"
  | Kload -> "l"

let record ex ~gid ~(vc : Vc.t) ~(obj : obj) ~(kind : kind) =
  if debug then
    Printf.eprintf "[dpor] step=%d gid=%d clk=%d %s\n%!"
      (Vec.length ex.choices - 1) gid (Vc.get vc gid) (kind_s kind);
  let st = state_of ex obj in
  let e = { e_gid = gid; e_clk = Vc.get vc gid; e_step = Vec.length ex.choices - 1 } in
  let racing (prior : evt) =
    prior.e_gid <> gid
    && not (Vc.covers vc ~tid:prior.e_gid ~clk:prior.e_clk)
  in
  let other (prior : evt) = prior.e_gid <> gid in
  (match kind with
   | Kread ->
       (match st.ow with
        | Some w when racing w -> add_candidate ex w ~gid
        | _ -> ());
       st.oreads <- e :: List.filter (fun r -> r.e_gid <> gid) st.oreads
   | Kwrite ->
       (match st.ow with
        | Some w when racing w -> add_candidate ex w ~gid
        | _ -> ());
       List.iter (fun r -> if racing r then add_candidate ex r ~gid) st.oreads;
       st.ow <- Some e;
       st.oreads <- []
   | Kacquire ->
       (* lock-ordered: the happens-before edge comes from the lock
          itself, so never filter by clocks *)
       (match st.ow with
        | Some w when other w -> add_candidate ex w ~gid
        | _ -> ());
       List.iter (fun r -> if other r then add_candidate ex r ~gid) st.oreads;
       st.ow <- Some e;
       st.oreads <- []
   | Kcombine ->
       (* commutes with other combines; conflicts with loads *)
       List.iter (fun r -> if other r then add_candidate ex r ~gid) st.oreads;
       st.ow <- Some e;
       st.oreads <- []
   | Kload ->
       (match st.ow with
        | Some w when other w -> add_candidate ex w ~gid
        | _ -> ());
       st.oreads <- e :: List.filter (fun r -> r.e_gid <> gid) st.oreads)

(* ----------------------- prefixes and preemptions ------------------ *)

(* A queued prefix: the parent execution's decision array is shared
   (never copied per candidate — traces run to hundreds of thousands
   of decisions) and the forced alternative is applied only when the
   prefix is actually popped for execution. *)
type pending = {
  p_choices : int array;  (* the parent trace's decisions, shared *)
  p_s : int;              (* backtrack index; -1 for the root prefix *)
  p_q : int;              (* thread forced at [p_s] *)
}

let root_pending = { p_choices = [||]; p_s = -1; p_q = -1 }

let materialize pd : int array =
  Array.init (pd.p_s + 1) (fun i ->
      if i = pd.p_s then pd.p_q else pd.p_choices.(i))

(* Deterministic rolling hash over decision prefixes, for the
   seen-prefix dedup: key of [choices[0..s-1] @ [q]] in O(1) from the
   per-execution prefix-hash array.  A collision silently drops one
   interleaving class — vanishingly unlikely with 63-bit mixing, and
   deterministic, so repeated runs still agree. *)
let mix h v = (h * 0x01000193 + v + 1) land max_int

(* Candidates from a finished execution: (pending, preemption count,
   dedup key), sorted for deterministic frontier insertion.  The
   preemption count of a prefix is the switches recorded along the
   reused decisions plus one when the forced decision itself preempts
   a still-runnable previous thread. *)
let harvest ex : (pending * int * int) list =
  if Hashtbl.length ex.cands = 0 then []
  else begin
    let n = Vec.length ex.choices in
    (* pre.(i) = switches among steps < i; hs.(i) = hash of choices < i *)
    let pre = Array.make (n + 1) 0 in
    let hs = Array.make (n + 1) 0x811c9dc5 in
    for i = 0 to n - 1 do
      pre.(i + 1) <- pre.(i) + (if Vec.get ex.switches i then 1 else 0);
      hs.(i + 1) <- mix hs.(i) (Vec.get ex.choices i)
    done;
    let choices = Array.init n (Vec.get ex.choices) in
    Hashtbl.fold
      (fun (s, q) () acc ->
        let forced_preempt =
          s > 0
          && q <> Vec.get ex.choices (s - 1)
          && List.mem (Vec.get ex.choices (s - 1)) (Vec.get ex.enabled s)
        in
        ( { p_choices = choices; p_s = s; p_q = q },
          pre.(s) + (if forced_preempt then 1 else 0),
          mix hs.(s) q )
        :: acc)
      ex.cands []
    (* deterministic frontier order whatever the hash order *)
    |> List.sort (fun (a, _, _) (b, _, _) ->
           compare (a.p_s, a.p_q) (b.p_s, b.p_q))
  end

(** The next prefixes this execution justifies, with their preemption
    counts, materialized — the unit-test window onto {!harvest}. *)
let candidate_prefixes ex : (int array * int) list =
  List.map (fun (pd, preempts, _) -> (materialize pd, preempts)) (harvest ex)

(* ---------------------------- exploration -------------------------- *)

type verdict =
  | Complete
      (** the frontier drained: every interleaving class of the reduced
          space was executed *)
  | Bounded of { within_bound_left : bool }
      (** the execution budget was hit; [within_bound_left] reports
          whether prefixes at or under the preemption bound were still
          pending (if not, the bound itself was searched exhaustively) *)

type stats = {
  executions : int;      (** executions actually run *)
  racy_execs : int;      (** executions with at least one race finding *)
  diverged_execs : int;  (** prefix replays that failed — must be 0 *)
  verdict : verdict;
}

(** [explore ~max_execs ~preempt_bound ~run_one] — drive the DPOR
    search.  [run_one ex] must execute the program once under [ex]'s
    control (install {!decide} via [Sim.Des.set_decide], report visible
    operations via {!record}) and return that execution's findings.
    Returns the union of findings and the exploration statistics.

    The frontier is ordered by preemption count (FIFO among equals), so
    a spent budget still means every schedule within [preempt_bound]
    preemptions was preferred first; [Bounded { within_bound_left }]
    says whether any were left unexplored. *)
let explore ~max_execs ~preempt_bound
    ~(run_one : exec -> Report.finding list) :
    Report.finding list * stats =
  let frontier : pending Sim.Heap.t = Sim.Heap.create () in
  Sim.Heap.push frontier 0.0 root_pending;
  let seen = Hashtbl.create 64 in
  let findings = ref [] in
  let execs = ref 0 and racy = ref 0 and diverged = ref 0 in
  let verdict = ref Complete in
  let rec loop () =
    if !execs >= max_execs then
      verdict :=
        Bounded
          { within_bound_left =
              (match Sim.Heap.peek_key frontier with
               | Some k -> k <= float_of_int preempt_bound
               | None -> false) }
    else
      match Sim.Heap.pop frontier with
      | None -> verdict := Complete
      | Some (_, pd) ->
          let ex = new_exec ~prefix:(materialize pd) in
          let fs = run_one ex in
          incr execs;
          if debug then
            Printf.eprintf
              "[dpor] exec=%d prefix=%d steps=%d cands=%d findings=%d\n%!"
              !execs (Array.length ex.prefix) (Vec.length ex.choices)
              (Hashtbl.length ex.cands) (List.length fs);
          if List.exists (fun (f : Report.finding) -> f.Report.kind = Report.Race) fs
          then incr racy;
          if ex.diverged then incr diverged;
          findings := fs @ !findings;
          List.iter
            (fun (pd, preempts, key) ->
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                Sim.Heap.push frontier (float_of_int preempts) pd
              end)
            (harvest ex);
          loop ()
  in
  loop ();
  let fs = List.rev !findings in
  let fs =
    if !diverged = 0 then fs
    else
      Report.error
        ~detail:
          (Printf.sprintf
             "dpor: %d of %d replayed prefixes diverged (nondeterministic \
              execution — exploration is unsound for this program)"
             !diverged !execs)
      :: fs
  in
  ( fs,
    { executions = !execs; racy_execs = !racy; diverged_execs = !diverged;
      verdict = !verdict } )

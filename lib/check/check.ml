(** [zrc --check]: vector-clock race detection and schedule exploration
    for Zr OpenMP programs.

    This is the library's entry point (and root module).  A check runs
    three passes over a program:

    + execution-free lints on the original AST ({!Lint});
    + the preprocessor, whose [default(none)] diagnostic is converted
      into a lint finding;
    + the dynamic pass: the program runs repeatedly on the cooperative
      vector-clocked runtime ({!Sched}), once per schedule, and every
      happens-before violation observed by the {!Race} detector — plus
      barrier divergences and runtime errors — becomes a finding.

    Everything is deterministic for a fixed configuration: schedules
    are derived from the seed, virtual threads are scheduled by the
    discrete-event rule, and the report is deduplicated and sorted.
    The happens-before model and its limits are documented in
    DESIGN.md. *)

module Report = Report
module Vc = Vc
module Race = Race
module Sched = Sched
module Dpor = Dpor
module Lint = Lint

(** How the dynamic pass explores interleavings.  [Dpor] is the
    default: exhaust the reduced interleaving space (up to
    [max_execs] executions, lowest-preemption-count prefixes first)
    and report COMPLETE or BOUNDED.  [Sampled] is the legacy
    fixed-schedule mode (uniform + skewed sweep + seeded draws). *)
type exploration_cfg =
  | Sampled
  | Dpor of { max_execs : int; preempt_bound : int }

type config = {
  nthreads : int;    (** team size for the checked runs *)
  schedules : int;   (** number of seeded random schedules (sampled) *)
  seed : int;        (** base seed for the random schedules *)
  sync_sweep : bool; (** also run the systematic skewed schedules *)
  lint : bool;       (** run the execution-free lints *)
  exploration : exploration_cfg;
}

let default_config =
  { nthreads = 4; schedules = 3; seed = 42; sync_sweep = true; lint = true;
    exploration = Dpor { max_execs = 256; preempt_bound = 2 } }

(** CLI flag cross-check: a [--preempt-bound] given alongside
    [--sampled] is dead weight — the bound orders DPOR exploration, and
    sampled schedules are never preemption-bounded.  Returns the
    diagnostic to print, [None] when the combination is fine. *)
let no_effect_warning ~sampled ~preempt_bound =
  match (sampled, preempt_bound) with
  | true, Some n ->
      Some
        (Printf.sprintf
           "warning: --preempt-bound %d has no effect with --sampled \
            (the bound orders DPOR exploration; sampled schedules are \
            never preemption-bounded)"
           n)
  | _ -> None

(* The schedule set: lockstep interleaving, then systematic relative
   skews (each team member fastest in turn), then the seeded draws. *)
let modes config =
  (Sched.Uniform
   :: (if config.sync_sweep then
         List.init 3 (fun k -> Sched.Skewed (k + 1))
       else []))
  @ List.init (max 0 config.schedules) (fun i ->
        Sched.Seeded (config.seed + i))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let substr_index s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* The id of a default(none) finding names the offending variables, so
   the preprocessor-raised lint and the static analyser's per-directive
   scope finding coincide and merge cleanly. *)
let default_none_id msg =
  let fallback = "lint|default-none" in
  match substr_index msg "variables " with
  | None -> fallback
  | Some i -> (
      let rest = String.sub msg (i + 10) (String.length msg - i - 10) in
      match substr_index rest " are referenced" with
      | None -> fallback
      | Some j ->
          let vars =
            String.sub rest 0 j |> String.split_on_char ','
            |> List.map String.trim |> List.sort compare
          in
          "lint|default-none|" ^ String.concat "," vars)

(* The dynamic pass: findings, number of executions, and how the
   interleaving space was explored (for the report's verdict). *)
let dynamic ~name ~config ~load ~run =
  match config.exploration with
  | Sampled ->
      let ms = modes config in
      ( List.concat_map
          (fun mode ->
            fst
              (Sched.run_schedule ~name ~load ~run ~mode
                 ~nthreads:config.nthreads ()))
          ms,
        List.length ms,
        Report.Sampled )
  | Dpor { max_execs; preempt_bound } ->
      let run_one ex =
        fst
          (Sched.run_controlled ~name ~load ~run
             ~nthreads:config.nthreads ~ex ())
      in
      let findings, stats = Dpor.explore ~max_execs ~preempt_bound ~run_one in
      let executions = stats.Dpor.executions in
      ( findings,
        executions,
        match stats.Dpor.verdict with
        | Dpor.Complete -> Report.Complete { executions }
        | Dpor.Bounded { within_bound_left } ->
            Report.Bounded { executions; preempt_bound; within_bound_left } )

(** Check a whole program (its [main] drives the dynamic pass; a
    program without [main] gets the static passes only). *)
let check_source ?(name = "<input>") ?(config = default_config) src :
    Report.t =
  match (if config.lint then Lint.run ~name src else []) with
  | exception Zr.Source.Error msg ->
      Report.make ~name ~schedules:0 [ Report.error ~detail:msg ]
  | lints -> (
      match Preproc.Preprocess.run ~name src with
      | exception Zr.Source.Error msg ->
          let f =
            if contains msg "default(none)" then
              Report.lint ~id:(default_none_id msg) ()
                ~rule:"default-none" ~detail:msg
            else Report.error ~detail:msg
          in
          Report.make ~name ~schedules:0 (f :: lints)
      | pre ->
          let load () = Interp.load ~name ~preprocess:false pre in
          if not (Hashtbl.mem (load ()).Interp.fns "main") then
            Report.make ~name ~schedules:0 lints
          else
            let run prog = ignore (Interp.run_main prog) in
            let dyn, k, expl = dynamic ~name ~config ~load ~run in
            Report.make ~name ~schedules:k ~exploration:expl (lints @ dyn))

(** Check a program driven by a host entry point instead of [main] —
    how the NPB Zr kernels are checked: the caller registers its host
    functions, then [entry] receives the loaded program and performs
    the calls. *)
let check_run ?(name = "<zr>") ?(config = default_config) ~source
    ~(entry : Interp.program -> unit) () : Report.t =
  let lints =
    if config.lint then
      try Lint.run ~name source with Zr.Source.Error _ -> []
    else []
  in
  match Preproc.Preprocess.run ~name source with
  | exception Zr.Source.Error msg ->
      Report.make ~name ~schedules:0 [ Report.error ~detail:msg ]
  | pre ->
      let load () = Interp.load ~name ~preprocess:false pre in
      let dyn, k, expl = dynamic ~name ~config ~load ~run:entry in
      Report.make ~name ~schedules:k ~exploration:expl (lints @ dyn)

(** NPB EP with the batch loop in Zr.

    The same host/accelerated split as {!Zr_cg}: the random-number
    batch kernel stays in OCaml ({!Npb.Ep.process_batch}, registered as
    the host function [ep_batch]), while the OpenMP structure — the
    parallel region, the [nowait] worksharing loop over batches, and
    the named critical section that merges per-thread partials — is
    pragma-annotated Zr executing through the interpreter pipeline.

    Verification uses the official NPB sums ([sx_verify]/[sy_verify]
    from {!Npb.Classes.Ep}), so a class-W run through either backend
    must land within [sum_epsilon] of the reference values. *)

module V = Interp.Value

(* The merge buffer layout: part.(0) = sx, part.(1) = sy,
   part.(2..11) = q.(0..9). *)
let part_len = 2 + Npb.Ep.nq

let src = {|
fn ep_main(nn: i64, xlen: i64, sums: []f64, q: []f64) f64 {
    //$omp parallel shared(sums, q) firstprivate(nn, xlen)
    {
        var x = alloc_f64(xlen);
        var part = alloc_f64(12);
        var k: i64 = 0;
        //$omp for nowait
        while (k < nn) : (k += 1) {
            ep_batch(k, x, part);
        }
        //$omp critical(ep_merge)
        {
            sums[0] += part[0];
            sums[1] += part[1];
            var l: i64 = 0;
            while (l < 10) : (l += 1) {
                q[l] += part[2 + l];
            }
        }
    }
    return sums[0];
}
|}

(* Host side of the split: process one batch into the thread's private
   accumulation buffer. *)
let ep_batch = function
  | [ V.VInt k; V.VFloatArr x; V.VFloatArr part ] ->
      let mine = Npb.Ep.fresh_partial () in
      Npb.Ep.process_batch x mine k;
      part.(0) <- part.(0) +. mine.Npb.Ep.sx;
      part.(1) <- part.(1) +. mine.Npb.Ep.sy;
      for l = 0 to Npb.Ep.nq - 1 do
        part.(2 + l) <- part.(2 + l) +. mine.Npb.Ep.q.(l)
      done;
      V.VUnit
  | _ -> failwith "ep_batch: expected (k: i64, x: []f64, part: []f64)"

let with_hosts f =
  Interp.register_host "ep_batch" ep_batch;
  Fun.protect
    ~finally:(fun () -> Interp.unregister_host "ep_batch")
    f

type backend = [ `Compiled | `Ast | `Bytecode ]

let load (backend : backend) : V.t list -> V.t =
  let prog = Interp.load ~name:"ep_main.zr" src in
  match backend with
  | `Compiled ->
      let cc = Interp.Compile.compile prog in
      fun args -> Interp.Compile.call cc "ep_main" args
  | `Bytecode ->
      let cc = Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } prog in
      fun args -> Interp.Compile.call cc "ep_main" args
  | `Ast -> fun args -> Interp.call prog "ep_main" args

(** Number of batches for a class. *)
let batches (p : Npb.Classes.Ep.t) =
  1 lsl (p.Npb.Classes.Ep.m - Npb.Ep.batch_log2)

let args ~nn sums q =
  [ V.VInt nn; V.VInt (2 * Npb.Ep.nk); V.VFloatArr sums; V.VFloatArr q ]

let verify (p : Npb.Classes.Ep.t) sums =
  let rel err v = Float.abs (err /. v) in
  let sx = sums.(0) and sy = sums.(1) in
  if rel (sx -. p.Npb.Classes.Ep.sx_verify) p.Npb.Classes.Ep.sx_verify
     <= Npb.Ep.sum_epsilon
     && rel (sy -. p.Npb.Classes.Ep.sy_verify) p.Npb.Classes.Ep.sy_verify
        <= Npb.Ep.sum_epsilon
  then Npb.Result.Verified
  else
    Npb.Result.Failed
      (Printf.sprintf "sx = %.15e (want %.15e), sy = %.15e (want %.15e)" sx
         p.Npb.Classes.Ep.sx_verify sy p.Npb.Classes.Ep.sy_verify)

(** Run the verified NPB EP benchmark with the batch loop in Zr. *)
let run ?(backend : backend = `Compiled) ~cls ~nthreads () : Npb.Result.t =
  Omprt.Api.set_num_threads nthreads;
  let p = Npb.Classes.Ep.params cls in
  let nn = batches p in
  with_hosts (fun () ->
      let call = load backend in
      let sums = Array.make 2 0. in
      let q = Array.make Npb.Ep.nq 0. in
      let t0 = Unix.gettimeofday () in
      ignore (call (args ~nn sums q));
      let time = Unix.gettimeofday () -. t0 in
      let gc = Array.fold_left ( +. ) 0. q in
      { Npb.Result.kernel =
          (match backend with
           | `Compiled -> "EP[zr/compiled]"
           | `Bytecode -> "EP[zr/bytecode]"
           | `Ast -> "EP[zr/ast]");
        cls; nthreads; time;
        mops = (2. ** float_of_int p.Npb.Classes.Ep.m) /. time /. 1e6;
        verification = verify p sums;
        detail = [ ("sx", sums.(0)); ("sy", sums.(1)); ("gc", gc) ] })

(** NPB IS with the ranking skeleton in Zr.

    The bucketised OpenMP ranking of {!Npb.Is} restructured the same
    way as {!Zr_cg}/{!Zr_ep}: the per-phase inner loops (histogram,
    cursor computation, distribution, per-bucket ranking) stay in OCaml
    as registered host functions, while the synchronisation skeleton
    the paper's port gets wrong most easily — the [single] probes, the
    explicit barriers between manually-partitioned phases, and the
    [schedule(dynamic, 1)] bucket loop — is pragma-annotated Zr.

    The per-thread bucket tables are flattened to [t * nb + b] index
    arithmetic because Zr slices are one-dimensional.  Phases 1 and 3
    must use the same static partition (each thread's phase-2 cursors
    cover exactly its own keys); both host functions derive it from
    {!Omprt.Ws.static_block}.

    Verification reuses {!Npb.Is.full_verify} on the resulting ranks,
    i.e. the official NPB criterion: the rebuilt sequence must be
    sorted and a permutation of the keys. *)

module V = Interp.Value

let src = {|
fn is_rank(itlo: i64, ithi: i64, nkeys: i64, nb: i64, shift: i64,
           maxit: i64, maxkey: i64, keys: []i64, kb1: []i64, kb2: []i64,
           bc: []i64, bp: []i64, bstart: []i64) i64 {
    //$omp parallel shared(keys, kb1, kb2, bc, bp, bstart) firstprivate(itlo, ithi, nkeys, nb, shift, maxit, maxkey)
    {
        var tid: i64 = 0;
        var nt: i64 = 0;
        tid = omp.get_thread_num();
        nt = omp.get_num_threads();
        var it: i64 = itlo;
        while (it <= ithi) : (it += 1) {
            //$omp single
            {
                keys[it] = it;
                keys[it + maxit] = maxkey - it;
            }
            is_count(tid, nt, nkeys, nb, shift, keys, bc);
            //$omp barrier
            is_cursors(tid, nt, nb, bc, bp);
            //$omp barrier
            is_distribute(tid, nt, nkeys, nb, shift, keys, kb2, bp);
            //$omp single
            {
                is_bucket_start(nt, nb, bc, bstart);
            }
            var b: i64 = 0;
            //$omp for schedule(dynamic, 1)
            while (b < nb) : (b += 1) {
                is_bucket_rank(b, shift, kb1, kb2, bstart);
            }
        }
    }
    return kb1[maxkey - 1];
}
|}

(* ---- host side ---------------------------------------------------- *)

let ii = function V.VInt n -> n | v -> failwith ("expected int, got " ^ V.to_string v)
let ia = function V.VIntArr a -> a | v -> failwith ("expected []i64, got " ^ V.to_string v)

(* The static partition shared by phases 1 and 3. *)
let slice ~tid ~nt ~n =
  match Omprt.Ws.static_block ~tid ~nthreads:nt ~trips:n with
  | Some (lo, hi) -> (lo, hi)  (* half-open [lo, hi) *)
  | None -> (0, 0)

(* Phase 1: zero the thread's bucket-count row, histogram its slice. *)
let is_count = function
  | [ tid; nt; nkeys; nb; shift; keys; bc ] ->
      let tid = ii tid and nt = ii nt and nkeys = ii nkeys in
      let nb = ii nb and shift = ii shift in
      let keys = ia keys and bc = ia bc in
      Array.fill bc (tid * nb) nb 0;
      let lo, hi = slice ~tid ~nt ~n:nkeys in
      for i = lo to hi - 1 do
        let b = keys.(i) lsr shift in
        bc.((tid * nb) + b) <- bc.((tid * nb) + b) + 1
      done;
      V.VUnit
  | _ -> failwith "is_count: bad args"

(* Phase 2: the thread's write cursors — after every earlier bucket
   entirely, and after bucket b's share of earlier threads. *)
let is_cursors = function
  | [ tid; nt; nb; bc; bp ] ->
      let tid = ii tid and nt = ii nt and nb = ii nb in
      let bc = ia bc and bp = ia bp in
      let run = ref 0 in
      for b = 0 to nb - 1 do
        let before_me = ref !run in
        for t = 0 to nt - 1 do
          if t < tid then before_me := !before_me + bc.((t * nb) + b);
          run := !run + bc.((t * nb) + b)
        done;
        bp.((tid * nb) + b) <- !before_me
      done;
      V.VUnit
  | _ -> failwith "is_cursors: bad args"

(* Phase 3: distribute the thread's slice into bucket-grouped order. *)
let is_distribute = function
  | [ tid; nt; nkeys; nb; shift; keys; kb2; bp ] ->
      let tid = ii tid and nt = ii nt and nkeys = ii nkeys in
      let nb = ii nb and shift = ii shift in
      let keys = ia keys and kb2 = ia kb2 and bp = ia bp in
      let lo, hi = slice ~tid ~nt ~n:nkeys in
      for i = lo to hi - 1 do
        let k = keys.(i) in
        let b = k lsr shift in
        kb2.(bp.((tid * nb) + b)) <- k;
        bp.((tid * nb) + b) <- bp.((tid * nb) + b) + 1
      done;
      V.VUnit
  | _ -> failwith "is_distribute: bad args"

(* Global bucket offsets (one thread, under single). *)
let is_bucket_start = function
  | [ nt; nb; bc; bstart ] ->
      let nt = ii nt and nb = ii nb in
      let bc = ia bc and bstart = ia bstart in
      let run = ref 0 in
      for b = 0 to nb - 1 do
        bstart.(b) <- !run;
        for t = 0 to nt - 1 do
          run := !run + bc.((t * nb) + b)
        done
      done;
      bstart.(nb) <- !run;
      V.VUnit
  | _ -> failwith "is_bucket_start: bad args"

(* Phase 4: rank one bucket — count within its key subrange, then
   prefix-sum so kb1.(k) = number of keys <= k overall. *)
let is_bucket_rank = function
  | [ b; shift; kb1; kb2; bstart ] ->
      let b = ii b and shift = ii shift in
      let kb1 = ia kb1 and kb2 = ia kb2 and bstart = ia bstart in
      let kmin = b lsl shift in
      let kmax = (b + 1) lsl shift in
      for k = kmin to kmax - 1 do
        kb1.(k) <- 0
      done;
      for i = bstart.(b) to bstart.(b + 1) - 1 do
        let k = kb2.(i) in
        kb1.(k) <- kb1.(k) + 1
      done;
      let run = ref bstart.(b) in
      for k = kmin to kmax - 1 do
        run := !run + kb1.(k);
        kb1.(k) <- !run
      done;
      V.VUnit
  | _ -> failwith "is_bucket_rank: bad args"

let hosts =
  [ ("is_count", is_count); ("is_cursors", is_cursors);
    ("is_distribute", is_distribute); ("is_bucket_start", is_bucket_start);
    ("is_bucket_rank", is_bucket_rank) ]

let with_hosts f =
  List.iter (fun (n, h) -> Interp.register_host n h) hosts;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (n, _) -> Interp.unregister_host n) hosts)
    f

(* ---- driver ------------------------------------------------------- *)

type backend = [ `Compiled | `Ast | `Bytecode ]

let load (backend : backend) : V.t list -> V.t =
  let prog = Interp.load ~name:"is_rank.zr" src in
  match backend with
  | `Compiled ->
      let cc = Interp.Compile.compile prog in
      fun args -> Interp.Compile.call cc "is_rank" args
  | `Bytecode ->
      let cc = Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } prog in
      fun args -> Interp.Compile.call cc "is_rank" args
  | `Ast -> fun args -> Interp.call prog "is_rank" args

(** The shared arrays for one IS run of problem [p] on [nthreads]. *)
type data = {
  p : Npb.Classes.Is.t;
  keys : int array;
  kb1 : int array;
  kb2 : int array;
  bc : int array;      (* flattened nthreads x nb bucket counts *)
  bp : int array;      (* flattened nthreads x nb write cursors *)
  bstart : int array;  (* nb + 1 global bucket offsets *)
}

let make_data (p : Npb.Classes.Is.t) ~nthreads =
  let nkeys = Npb.Classes.Is.num_keys p in
  let nb = Npb.Classes.Is.num_buckets p in
  { p;
    keys = Npb.Is.create_seq p;
    kb1 = Array.make (Npb.Classes.Is.max_key p) 0;
    kb2 = Array.make nkeys 0;
    bc = Array.make (nthreads * nb) 0;
    bp = Array.make (nthreads * nb) 0;
    bstart = Array.make (nb + 1) 0 }

let rank_args d ~itlo ~ithi =
  let p = d.p in
  [ V.VInt itlo; V.VInt ithi;
    V.VInt (Npb.Classes.Is.num_keys p);
    V.VInt (Npb.Classes.Is.num_buckets p);
    V.VInt (p.Npb.Classes.Is.max_key_log2 - p.Npb.Classes.Is.num_buckets_log2);
    V.VInt p.Npb.Classes.Is.max_iterations;
    V.VInt (Npb.Classes.Is.max_key p);
    V.VIntArr d.keys; V.VIntArr d.kb1; V.VIntArr d.kb2;
    V.VIntArr d.bc; V.VIntArr d.bp; V.VIntArr d.bstart ]

(** Official NPB verification on the run's results: the sequence
    rebuilt from the ranks must be sorted and a permutation. *)
let verify d : bool =
  Npb.Is.full_verify
    { Npb.Is.p = d.p; keys = d.keys; key_buff1 = d.kb1; key_buff2 = d.kb2;
      bucket_count = [| [| 0 |] |]; bucket_ptrs = [| [| 0 |] |];
      bucket_start = d.bstart;
      cm = { Npb.Is.factor = 1.0; avg_bucket = 1.0 } }

(** Run the verified NPB IS benchmark with the ranking skeleton in Zr:
    untimed warm-up iteration, then the timed iteration sequence, as
    the reference performs. *)
let run ?(backend : backend = `Compiled) ~cls ~nthreads () : Npb.Result.t =
  Omprt.Api.set_num_threads nthreads;
  let p = Npb.Classes.Is.params cls in
  with_hosts (fun () ->
      let call = load backend in
      let d = make_data p ~nthreads in
      ignore (call (rank_args d ~itlo:1 ~ithi:1));
      let t0 = Unix.gettimeofday () in
      ignore
        (call (rank_args d ~itlo:1 ~ithi:p.Npb.Classes.Is.max_iterations));
      let time = Unix.gettimeofday () -. t0 in
      let nkeys = float_of_int (Npb.Classes.Is.num_keys p) in
      { Npb.Result.kernel =
          (match backend with
           | `Compiled -> "IS[zr/compiled]"
           | `Bytecode -> "IS[zr/bytecode]"
           | `Ast -> "IS[zr/ast]");
        cls; nthreads; time;
        mops =
          float_of_int p.Npb.Classes.Is.max_iterations *. nkeys /. time
          /. 1e6;
        verification =
          (if verify d then Npb.Result.Verified
           else
             Npb.Result.Failed
               "full_verify: sequence not sorted or not a permutation");
        detail = [] })

(** NPB CG with the conj_grad subroutine in Zr.

    The paper's interop experiment (section IV) ports only [conj_grad]
    (~95% of CG's runtime) to the pragma-annotated language and keeps
    the driver in the host language.  This module is that split wired
    into the real NPB verification harness: matrix generation, the
    outer iteration and the zeta update run in OCaml ({!Npb.Cg}), while
    conj_grad executes from Zr source through the interpreter pipeline
    — preprocessed pragmas, [__kmpc_*] calls into {!Omprt}, and either
    the staged-closure backend ({!Interp.Compile}) or the tree walker.

    Because both backends run the very same preprocessed program
    against the very same runtime, verification (zeta against the
    class's reference value) must agree bit-for-bit between them; the
    [npb_run --engine zr] path exercises exactly that. *)

(* Same worksharing structure as examples/interop_cg.ml, minus the
   host-callback demonstration: static loops, nowait between the SpMV
   and the dot that consumes it on the same partition, reductions. *)
let conj_grad_src = {|
fn conj_grad(n: i64, rowstr: []i64, colidx: []i64, a: []f64,
             x: []f64, z: []f64, p: []f64, q: []f64, r: []f64) f64 {
    var rho: f64 = 0.0;
    var d: f64 = 0.0;
    var rnorm: f64 = 0.0;
    //$omp parallel shared(rowstr, colidx, a, x, z, p, q, r, rho, d, rnorm) firstprivate(n)
    {
        var j: i64 = 0;
        //$omp for
        while (j < n) : (j += 1) {
            q[j] = 0.0;
            z[j] = 0.0;
            r[j] = x[j];
            p[j] = x[j];
        }
        var j0: i64 = 0;
        //$omp for reduction(+: rho)
        while (j0 < n) : (j0 += 1) {
            rho += r[j0] * r[j0];
        }
        var cgit: i64 = 0;
        while (cgit < 25) : (cgit += 1) {
            var j1: i64 = 0;
            //$omp for nowait
            while (j1 < n) : (j1 += 1) {
                var s: f64 = 0.0;
                var k: i64 = 0;
                k = rowstr[j1];
                while (k < rowstr[j1 + 1]) : (k += 1) {
                    s += a[k] * p[colidx[k]];
                }
                q[j1] = s;
            }
            //$omp single
            { d = 0.0; }
            var j2: i64 = 0;
            //$omp for reduction(+: d)
            while (j2 < n) : (j2 += 1) {
                d += p[j2] * q[j2];
            }
            var alpha: f64 = 0.0;
            alpha = rho / d;
            var rho0: f64 = 0.0;
            rho0 = rho;
            var j3: i64 = 0;
            //$omp for
            while (j3 < n) : (j3 += 1) {
                z[j3] = z[j3] + alpha * p[j3];
                r[j3] = r[j3] - alpha * q[j3];
            }
            //$omp single
            { rho = 0.0; }
            var j4: i64 = 0;
            //$omp for reduction(+: rho)
            while (j4 < n) : (j4 += 1) {
                rho += r[j4] * r[j4];
            }
            var beta: f64 = 0.0;
            beta = rho / rho0;
            var j5: i64 = 0;
            //$omp for
            while (j5 < n) : (j5 += 1) {
                p[j5] = r[j5] + beta * p[j5];
            }
        }
        var j6: i64 = 0;
        //$omp for nowait
        while (j6 < n) : (j6 += 1) {
            var s: f64 = 0.0;
            var k: i64 = 0;
            k = rowstr[j6];
            while (k < rowstr[j6 + 1]) : (k += 1) {
                s += a[k] * z[colidx[k]];
            }
            r[j6] = s;
        }
        //$omp single
        { rnorm = 0.0; }
        var j7: i64 = 0;
        //$omp for reduction(+: rnorm)
        while (j7 < n) : (j7 += 1) {
            var dd: f64 = 0.0;
            dd = x[j7] - r[j7];
            rnorm += dd * dd;
        }
    }
    return sqrt(rnorm);
}
|}

type backend = [ `Compiled | `Ast | `Bytecode ]

module V = Interp.Value

(** Load and stage conj_grad once for the given backend; returns a
    closure invoking it. *)
let load_conj_grad (backend : backend) : V.t list -> V.t =
  let prog = Interp.load ~name:"conj_grad.zr" conj_grad_src in
  match backend with
  | `Compiled ->
      let cc = Interp.Compile.compile prog in
      fun args -> Interp.Compile.call cc "conj_grad" args
  | `Bytecode ->
      let cc = Interp.Compile.compile ~bc:{ Interp.Bcgen.elide = true } prog in
      fun args -> Interp.Compile.call cc "conj_grad" args
  | `Ast -> fun args -> Interp.call prog "conj_grad" args

(** Run the full verified NPB CG benchmark with conj_grad in Zr.
    Matrix build, normalisation and the zeta update follow the
    reference driver exactly ({!Npb.Cg.run}), so the class's official
    [zeta_verify] value applies unchanged. *)
let run ?(backend : backend = `Compiled) ~cls ~nthreads () : Npb.Result.t =
  Omprt.Api.set_num_threads nthreads;
  let p = Npb.Classes.Cg.params cls in
  let n = p.Npb.Classes.Cg.na in
  let rng = Npb.Randlc.create 314159265.0 in
  let _zeta0 = Npb.Randlc.draw rng in
  let m = Npb.Cg.make_matrix p rng in
  let call_zr = load_conj_grad backend in
  let x = Array.make n 1.0 in
  let alloc () = Array.make n 0. in
  let z = alloc () and pv = alloc () and q = alloc () and r = alloc () in
  let conj_grad () =
    match
      call_zr
        [ V.VInt n; V.VIntArr m.Npb.Cg.rowstr; V.VIntArr m.Npb.Cg.colidx;
          V.VFloatArr m.Npb.Cg.a; V.VFloatArr x; V.VFloatArr z;
          V.VFloatArr pv; V.VFloatArr q; V.VFloatArr r ]
    with
    | V.VFloat rnorm -> rnorm
    | v -> failwith ("Zr conj_grad returned " ^ V.to_string v)
  in
  let normalise () =
    let n1 = ref 0. and n2 = ref 0. in
    for j = 0 to n - 1 do
      n1 := !n1 +. (x.(j) *. z.(j));
      n2 := !n2 +. (z.(j) *. z.(j))
    done;
    let scale = 1.0 /. sqrt !n2 in
    for j = 0 to n - 1 do x.(j) <- scale *. z.(j) done;
    !n1
  in
  (* Untimed warm-up iteration, as in the reference code. *)
  ignore (conj_grad ());
  ignore (normalise ());
  Array.fill x 0 n 1.0;
  let zeta = ref 0. in
  let t0 = Unix.gettimeofday () in
  for _it = 1 to p.Npb.Classes.Cg.niter do
    ignore (conj_grad ());
    let n1 = normalise () in
    zeta := p.Npb.Classes.Cg.shift +. (1.0 /. n1)
  done;
  let time = Unix.gettimeofday () -. t0 in
  let verification =
    if Float.abs (!zeta -. p.Npb.Classes.Cg.zeta_verify)
       <= Npb.Cg.zeta_epsilon
    then Npb.Result.Verified
    else
      Npb.Result.Failed
        (Printf.sprintf "zeta = %.13f, expected %.13f" !zeta
           p.Npb.Classes.Cg.zeta_verify)
  in
  { Npb.Result.kernel =
      (match backend with
       | `Compiled -> "CG[zr/compiled]"
       | `Bytecode -> "CG[zr/bytecode]"
       | `Ast -> "CG[zr/ast]");
    cls; nthreads; time; mops = 0.;
    verification;
    detail = [ ("zeta", !zeta); ("nnz", float_of_int m.Npb.Cg.nnz) ] }

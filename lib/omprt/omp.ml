(** The real execution engine: {!Omp_intf.S} on OCaml domains.

    This is a thin veneer over the [__kmpc_*] layer ({!module:Kmpc}), so
    that code written against the portable signature exercises exactly
    the entry points the preprocessor-generated code uses.  All model
    costs are ignored; closures execute for real. *)

open Omp_model

let is_simulated = false

let parallel ?num_threads body =
  Kmpc.fork_call ?num_threads (fun () -> body ()) ()

let thread_num = Api.get_thread_num
let num_threads = Api.get_num_threads
let barrier () = Kmpc.barrier ()
let wtime = Api.get_wtime
let master f = Kmpc.master f
let single ?nowait f = Kmpc.single ?nowait f
let task f = Kmpc.omp_task f
let taskwait () = Kmpc.omp_taskwait ()
let critical ?name ?cost:_ f = Kmpc.critical ?name f
let atomic ?cost:_ f = Lock.critical ~name:".omp.atomic" f
let work ?cost:_ f = f ()

let ws_for ?(sched = Sched.Static None) ?nowait ?working_set:_ ?chunk_cost:_
    ~lo ~hi body =
  match sched with
  | Sched.Static None ->
      (match Kmpc.for_static_init ~lo ~hi ~step:1 () with
       | None -> ()
       | Some { lower; upper; _ } -> body lower (upper + 1));
      Kmpc.for_static_fini ();
      if not (Option.value nowait ~default:false) then barrier ()
  | Sched.Static (Some c) ->
      (* chunked static: walk this thread's round-robin chunks *)
      let nth = num_threads () and tid = thread_num () in
      let trips = max 0 (hi - lo) in
      Ws.static_chunks_iter ~tid ~nthreads:nth ~trips ~chunk:c
        (fun b e -> body (lo + b) (lo + e));
      Kmpc.for_static_fini ();
      if not (Option.value nowait ~default:false) then barrier ()
  | Sched.Dynamic _ | Sched.Guided _ | Sched.Runtime | Sched.Auto ->
      let h = Kmpc.dispatch_init ~sched ~lo ~hi ~step:1 () in
      let rec drain () =
        match Kmpc.dispatch_next h with
        | None -> ()
        | Some (lower, upper) ->
            body lower (upper + 1);
            drain ()
      in
      drain ();
      Kmpc.dispatch_fini h;
      if not (Option.value nowait ~default:false) then barrier ()

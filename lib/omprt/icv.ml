(** Internal control variables (ICVs), per OpenMP 5.2 section 2.

    The subset the paper's runtime needs, held as *per-data-environment
    frames*: every task (the implicit initial task, and each implicit
    task of a parallel region) owns a frame snapshotted from its
    parent's at fork, exactly as OpenMP's ICV-inheritance table
    specifies.  [omp_set_*] therefore mutates only the calling task's
    frame — a value set inside a parallel region is visible to that
    thread's nested forks but never to sibling threads or to concurrent
    top-level regions.  {!global} is the initial task's frame,
    initialised from the standard environment variables.

    [wait_policy] and [blocktime] are device-scope knobs (libomp keeps
    them per device, not per task): the pool and the hybrid barrier
    always consult {!global} for them, whatever frame is current. *)

(** How parked pool workers wait for work, libomp's [OMP_WAIT_POLICY]:
    [Active] spins aggressively before blocking (low dispatch latency,
    burns a core), [Passive] yields to the OS almost immediately (the
    right default on an oversubscribed host like this container). *)
type wait_policy = Active | Passive

type t = {
  mutable nthreads : int;       (** team size for parallel regions *)
  mutable dynamic : bool;       (** omp_set_dynamic *)
  mutable run_sched : Omp_model.Sched.t;  (** OMP_SCHEDULE / omp_set_schedule *)
  mutable max_active_levels : int;
  (** nesting budget: forks beyond this many *active* enclosing regions
      are serialised to a team of one ([OMP_MAX_ACTIVE_LEVELS]; 1 =
      nesting disabled, the libomp default) *)
  mutable thread_limit : int;
  (** contention-group thread cap ([OMP_THREAD_LIMIT]); {!Team.fork}
      clamps team sizes so the chain never exceeds it *)
  mutable wait_policy : wait_policy;  (** OMP_WAIT_POLICY *)
  mutable blocktime : int;
  (** Spin iterations a parked pool worker burns before blocking on its
      condition variable — the analogue of libomp's [KMP_BLOCKTIME],
      which we express in spin rounds rather than milliseconds so the
      knob is meaningful on any clock.  Overridden by
      [ZIGOMP_BLOCKTIME]; defaulted from the wait policy. *)
}

(** The largest value [max_active_levels] can take
    ([omp_get_supported_active_levels]); context chains are heap
    structures, so any level the integer can express is supported. *)
let supported_active_levels = max_int

(* ------------------------------------------------------------------ *)
(* Environment parsing.  Each variable has a pure [parse_*] function
   (unit-tested directly) plus a defaulting reader that warns — once
   per variable, to stderr, unless ZIGOMP_WARNINGS disables it — when a
   set-but-malformed value is being ignored, mirroring libomp's
   KMP_WARNINGS behaviour.  An empty value counts as unset (tests use
   [Unix.putenv VAR ""] as the only portable way to "unset"). *)

let warnings_enabled () =
  match Sys.getenv_opt "ZIGOMP_WARNINGS" with
  | Some s ->
      (match String.lowercase_ascii (String.trim s) with
       | "0" | "false" | "off" | "no" -> false
       | _ -> true)
  | None -> true

let warned : (string, unit) Hashtbl.t = Hashtbl.create 8
let warnings = ref 0

let warning_count () = !warnings

(* For tests only: lets the warn-once latch be exercised repeatedly. *)
let forget_warnings () = Hashtbl.reset warned

let warn_malformed ~var ~value ~expected ~used =
  if not (Hashtbl.mem warned var) then begin
    Hashtbl.add warned var ();
    incr warnings;
    if warnings_enabled () then
      Printf.eprintf
        "zigomp: warning: ignoring malformed %s value %S (expected %s); \
         using %s\n%!"
        var value expected used
  end

let parse_pos_int s =
  match int_of_string_opt (String.trim s) with
  | Some n when n > 0 -> Some n
  | _ -> None

let parse_nthreads = parse_pos_int
let parse_thread_limit = parse_pos_int
let parse_max_active_levels s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Some n
  | _ -> None

let parse_dynamic s =
  match String.lowercase_ascii (String.trim s) with
  | "true" | "1" | "yes" -> Some true
  | "false" | "0" | "no" -> Some false
  | _ -> None

let parse_schedule = Omp_model.Sched.of_string

let parse_wait_policy s =
  match String.lowercase_ascii (String.trim s) with
  | "active" -> Some Active
  | "passive" -> Some Passive
  | _ -> None

let parse_blocktime s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Some n
  | _ -> None

(* [env_or var parse ~expected ~default ~show]: read [var], parse it,
   warn once if a non-empty value fails to parse, fall back to the
   (lazily computed) default either way. *)
let env_or var parse ~expected ~(default : unit -> 'a) ~(show : 'a -> string)
    : 'a =
  match Sys.getenv_opt var with
  | None -> default ()
  | Some s when String.trim s = "" -> default ()
  | Some s ->
      (match parse s with
       | Some v -> v
       | None ->
           let d = default () in
           warn_malformed ~var ~value:s ~expected ~used:(show d);
           d)

let default_nthreads () =
  env_or "OMP_NUM_THREADS" parse_nthreads
    ~expected:"a positive integer"
    ~default:(fun () -> Domain.recommended_domain_count ())
    ~show:string_of_int

let default_sched () =
  env_or "OMP_SCHEDULE" parse_schedule
    ~expected:"static|dynamic|guided|auto[,chunk]"
    ~default:(fun () -> Omp_model.Sched.Static None)
    ~show:Omp_model.Sched.to_string

let default_dynamic () =
  env_or "OMP_DYNAMIC" parse_dynamic
    ~expected:"true|false"
    ~default:(fun () -> false)
    ~show:string_of_bool

let default_max_active_levels () =
  env_or "OMP_MAX_ACTIVE_LEVELS" parse_max_active_levels
    ~expected:"a non-negative integer"
    ~default:(fun () -> 1)  (* nesting disabled, as libomp defaults *)
    ~show:string_of_int

let default_thread_limit () =
  env_or "OMP_THREAD_LIMIT" parse_thread_limit
    ~expected:"a positive integer"
    ~default:(fun () -> 128)  (* OCaml's maximum domain count *)
    ~show:string_of_int

let show_wait_policy = function Active -> "active" | Passive -> "passive"

let default_wait_policy () =
  env_or "OMP_WAIT_POLICY" parse_wait_policy
    ~expected:"active|passive"
    ~default:(fun () -> Passive)
    ~show:show_wait_policy

(* Spin budgets behind each policy: active waiting spins long enough to
   catch back-to-back regions without ever reaching the futex; passive
   waiting probes just a few hundred times — microseconds — before
   parking, which is what an oversubscribed single-core host needs. *)
let blocktime_of_policy = function
  | Active -> 100_000
  | Passive -> 200

let default_blocktime policy =
  env_or "ZIGOMP_BLOCKTIME" parse_blocktime
    ~expected:"a non-negative integer"
    ~default:(fun () -> blocktime_of_policy policy)
    ~show:string_of_int

let create () =
  let wait_policy = default_wait_policy () in
  {
    nthreads = default_nthreads ();
    dynamic = default_dynamic ();
    run_sched = default_sched ();
    max_active_levels = default_max_active_levels ();
    thread_limit = default_thread_limit ();
    wait_policy;
    blocktime = default_blocktime wait_policy;
  }

(** An independent copy: the per-task snapshot taken at fork. *)
let copy t =
  { nthreads = t.nthreads;
    dynamic = t.dynamic;
    run_sched = t.run_sched;
    max_active_levels = t.max_active_levels;
    thread_limit = t.thread_limit;
    wait_policy = t.wait_policy;
    blocktime = t.blocktime }

(* The initial task's ICV frame.  libomp keeps device-scope ICVs
   globally and task-scope ones per data environment; this frame plays
   both roles for code running outside any parallel region. *)
let global = create ()

let reset () =
  let fresh = create () in
  global.nthreads <- fresh.nthreads;
  global.dynamic <- fresh.dynamic;
  global.run_sched <- fresh.run_sched;
  global.max_active_levels <- fresh.max_active_levels;
  global.thread_limit <- fresh.thread_limit;
  global.wait_policy <- fresh.wait_policy;
  global.blocktime <- fresh.blocktime

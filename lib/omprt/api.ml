(** The user-facing [omp_*] API (paper section III-C).

    The paper re-exports libomp's user entry points in an [omp] namespace
    with the redundant [omp_] prefix stripped —
    [omp.get_thread_num()] instead of [omp_get_thread_num()].  This
    module is that namespace.

    Every ICV accessor reads or writes the *calling task's* data
    environment ({!Team.icvs}): the innermost context's frame inside a
    parallel region, the initial task's frame ({!Icv.global}) outside.
    Setting a value inside a region therefore affects only the calling
    thread's subsequent forks — never sibling threads, never concurrent
    top-level regions — per the OpenMP 5.2 data-environment rules. *)

let get_thread_num () = Team.thread_num ()

let get_num_threads () = Team.num_threads ()

let get_max_threads () = (Team.icvs ()).Icv.nthreads

let set_num_threads n =
  if n > 0 then (Team.icvs ()).Icv.nthreads <- n

let get_num_procs () = Domain.recommended_domain_count ()

let in_parallel () = Team.in_parallel ()

let get_level () = Team.level ()

let get_active_level () = Team.active_level ()

let get_ancestor_thread_num lvl = Team.ancestor_thread_num lvl

let get_team_size lvl = Team.team_size lvl

let get_dynamic () = (Team.icvs ()).Icv.dynamic

let set_dynamic b = (Team.icvs ()).Icv.dynamic <- b

let get_schedule () = (Team.icvs ()).Icv.run_sched

let set_schedule s = (Team.icvs ()).Icv.run_sched <- s

let get_thread_limit () = (Team.icvs ()).Icv.thread_limit

let get_max_active_levels () = (Team.icvs ()).Icv.max_active_levels

let set_max_active_levels n =
  if n >= 0 then
    (Team.icvs ()).Icv.max_active_levels <-
      min n Icv.supported_active_levels

let get_supported_active_levels () = Icv.supported_active_levels

(* Hot-team waiting knobs (OMP_WAIT_POLICY / ZIGOMP_BLOCKTIME): device
   scope, not task scope — the wait policy is read-only at runtime as
   in libomp, the blocktime is adjustable like kmp_set_blocktime and
   takes effect pool-wide. *)

let get_wait_policy () = Icv.global.wait_policy

let get_blocktime () = Icv.global.blocktime

let set_blocktime n = if n >= 0 then Icv.global.blocktime <- n

let get_wtime () = Unix.gettimeofday ()

(** Timer resolution, measured the way libomp documents it. *)
let get_wtick () = 1e-6

(* Locks, re-exported under their omp names. *)

type lock_t = Lock.t
type nest_lock_t = Lock.Nest.t

let init_lock = Lock.create
let set_lock = Lock.acquire
let unset_lock = Lock.release
let test_lock = Lock.try_acquire
let destroy_lock (_ : lock_t) = ()

let init_nest_lock = Lock.Nest.create
let set_nest_lock = Lock.Nest.acquire
let unset_nest_lock = Lock.Nest.release
let destroy_nest_lock (_ : nest_lock_t) = ()

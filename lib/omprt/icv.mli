(** Internal control variables (ICVs), per OpenMP 5.2 section 2.

    ICVs live in *per-data-environment frames*: {!global} is the
    initial task's frame (initialised from [OMP_NUM_THREADS],
    [OMP_SCHEDULE], [OMP_DYNAMIC], [OMP_MAX_ACTIVE_LEVELS],
    [OMP_THREAD_LIMIT], [OMP_WAIT_POLICY] and [ZIGOMP_BLOCKTIME]), and
    every task created by {!Team.fork} carries a {!copy} of its
    parent's frame.  The [omp_set_*] API (see {!module:Api}) mutates
    the calling task's frame only. *)

(** How parked hot-team workers wait for the next region: [Active]
    spins aggressively before blocking, [Passive] parks almost
    immediately (the default, and the right choice on an
    oversubscribed host). *)
type wait_policy = Active | Passive

type t = {
  mutable nthreads : int;       (** team size for parallel regions *)
  mutable dynamic : bool;
  mutable run_sched : Omp_model.Sched.t;
  mutable max_active_levels : int;
  (** forks beyond this many active enclosing regions serialise
      (1 = nesting disabled, the libomp default) *)
  mutable thread_limit : int;
  (** contention-group thread cap enforced by {!Team.fork} *)
  mutable wait_policy : wait_policy;  (** [OMP_WAIT_POLICY] *)
  mutable blocktime : int;
  (** Spin rounds before a parked worker blocks (libomp's
      [KMP_BLOCKTIME] analogue); [ZIGOMP_BLOCKTIME] overrides, else
      defaulted from the wait policy. *)
}

val supported_active_levels : int
(** Largest accepted [max_active_levels]
    ([omp_get_supported_active_levels]). *)

val create : unit -> t
(** A fresh ICV frame from the environment. *)

val copy : t -> t
(** An independent snapshot — what each task inherits at fork. *)

val global : t
(** The initial task's frame (and the device-scope knobs: the pool and
    barrier read [wait_policy]/[blocktime] from here always). *)

val reset : unit -> unit
(** Re-read {!global} from the environment. *)

(** {2 Environment parsing}

    Pure parsers for the ICV environment variables; [None] means the
    value is malformed and the documented default applies.  The
    defaulting readers used by {!create} additionally warn once per
    variable on stderr when ignoring a set-but-malformed value
    (disable with [ZIGOMP_WARNINGS=0], libomp's [KMP_WARNINGS]
    analogue).  Empty values count as unset and never warn. *)

val parse_nthreads : string -> int option
(** [OMP_NUM_THREADS]: positive integer. *)

val parse_schedule : string -> Omp_model.Sched.t option
(** [OMP_SCHEDULE]: [static|dynamic|guided|auto[,chunk]]. *)

val parse_dynamic : string -> bool option
(** [OMP_DYNAMIC]: [true|1|yes] / [false|0|no]. *)

val parse_max_active_levels : string -> int option
(** [OMP_MAX_ACTIVE_LEVELS]: non-negative integer. *)

val parse_thread_limit : string -> int option
(** [OMP_THREAD_LIMIT]: positive integer. *)

val parse_blocktime : string -> int option
(** [ZIGOMP_BLOCKTIME]: non-negative integer. *)

val parse_wait_policy : string -> wait_policy option
(** [OMP_WAIT_POLICY]: [active|passive], case-insensitive. *)

val warnings_enabled : unit -> bool
(** Whether diagnostics gated by [ZIGOMP_WARNINGS] should print (true
    unless the variable is set to [0|false|off|no]).  Exposed so other
    warn-once emitters (the preprocessor's transform refusals) honour
    the same switch. *)

val warn_malformed :
  var:string -> value:string -> expected:string -> used:string -> unit
(** Report a set-but-malformed environment value being ignored: once
    per variable, to stderr unless [ZIGOMP_WARNINGS=0].  Exposed so
    non-[OMP_*] environment switches ([ZIGOMP_BACKEND], ...) share the
    warn-once path. *)

val warning_count : unit -> int
(** Malformed-environment warnings emitted so far (each variable warns
    at most once per process). *)

val forget_warnings : unit -> unit
(** Reset the warn-once latch — test hook only. *)

(** Worksharing partition arithmetic.

    Pure functions shared by the real runtime, the simulator and the
    tests.  Loops are normalised to the half-open integer range
    [\[lo, hi)] with a positive or negative [step]; this matches how the
    paper extracts bounds from a Zig [while] loop (section III-B2: lower
    bound from the counter's initial value, upper bound from the
    right-hand side of the comparison, increment from the continuation
    expression). *)

(** Number of iterations of the normalised loop [for i = lo; i cmp hi; i += step].
    [inclusive] corresponds to [<=]/[>=] comparisons.

    The inclusive case is computed as [(hi - lo) / step + 1] rather than
    by widening [hi] one step: [hi + 1] overflows at [max_int] (and
    [hi - 1] at [min_int] for downward loops), silently turning a full
    range into zero trips. *)
let trip_count ?(inclusive = false) ~lo ~hi ~step () =
  if step = 0 then invalid_arg "Ws.trip_count: zero step";
  if inclusive then
    if step > 0 then
      if lo > hi then 0 else ((hi - lo) / step) + 1
    else
      if lo < hi then 0 else ((lo - hi) / (-step)) + 1
  else
    if step > 0 then
      if lo >= hi then 0 else (hi - lo + step - 1) / step
    else
      if lo <= hi then 0 else (lo - hi + (-step) - 1) / (-step)

(** [static_block ~tid ~nthreads ~trips] is the contiguous block of the
    iteration space [\[0, trips)] owned by thread [tid] under the
    unchunked static schedule, as libomp's [__kmp_for_static_init]
    computes it: the first [trips mod nthreads] threads get
    [ceil(trips/nthreads)] iterations, the rest get the floor.  Returns
    [None] when the thread has no work. *)
let static_block ~tid ~nthreads ~trips =
  if nthreads <= 0 then invalid_arg "Ws.static_block: nthreads <= 0";
  if tid < 0 || tid >= nthreads then invalid_arg "Ws.static_block: bad tid";
  if trips <= 0 then None
  else begin
    let small = trips / nthreads in
    let extra = trips mod nthreads in
    let size = if tid < extra then small + 1 else small in
    if size = 0 then None
    else begin
      let start =
        if tid < extra then tid * (small + 1)
        else (extra * (small + 1)) + ((tid - extra) * small)
      in
      Some (start, start + size)
    end
  end

(** Apply [f start stop] to every chunk of thread [tid] under
    [static,chunk] — round-robin blocks of [chunk] iterations starting
    with thread 0, in execution order over [\[0, trips)].  This is the
    hot-path form: no intermediate list, so a chunked static loop entry
    allocates nothing. *)
let static_chunks_iter ~tid ~nthreads ~trips ~chunk f =
  if chunk <= 0 then invalid_arg "Ws.static_chunks: chunk <= 0";
  if nthreads <= 0 then invalid_arg "Ws.static_chunks: nthreads <= 0";
  let stride = chunk * nthreads in
  let start = ref (tid * chunk) in
  while !start < trips do
    f !start (min trips (!start + chunk));
    start := !start + stride
  done

(** The chunks as a list, for tests and callers that need to hold
    them. *)
let static_chunks ~tid ~nthreads ~trips ~chunk =
  let acc = ref [] in
  static_chunks_iter ~tid ~nthreads ~trips ~chunk (fun b e ->
      acc := (b, e) :: !acc);
  List.rev !acc

(** Convert a block over the canonical space [\[0, trips)] back to the
    user's iteration values: iteration [k] corresponds to [lo + k*step],
    for either sign of [step] (the bounds come out decreasing when
    [step < 0], mirroring the user's downward loop). *)
let denormalise ~lo ~step (start, stop) =
  (lo + (start * step), lo + (stop * step))

(** Guided-schedule chunk for a loop with [remaining] iterations on a team
    of [nthreads], with minimum chunk [chunk].  libomp's iterative guided
    rule: half the per-thread share of what remains, never below the
    requested minimum (except for the final chunk). *)
let guided_next_chunk ~nthreads ~chunk ~remaining =
  if remaining <= 0 then 0
  else
    let proposal = (remaining + (2 * nthreads) - 1) / (2 * nthreads) in
    min remaining (max chunk proposal)

(* ------------------------------------------------------------------ *)
(** Shared dispatcher state for [dynamic]/[guided]/[runtime] loops — the
    engine behind [__kmpc_dispatch_next].  One instance is shared by the
    whole team; [next] is safe to call concurrently. *)
module Dispatch = struct
  type kind = Dyn | Gui

  type t = {
    kind : kind;
    trips : int;           (** normalised trip count *)
    chunk : int;           (** chunk parameter from the schedule clause *)
    nthreads : int;
    cursor : int Atomic.t; (** first unclaimed iteration *)
    finished : int Atomic.t;
    (** threads that have observed exhaustion; when it reaches
        [nthreads] the dispatcher can be retired from the team table *)
  }

  let create ~kind ~trips ~chunk ~nthreads =
    if chunk <= 0 then invalid_arg "Dispatch.create: chunk <= 0";
    { kind; trips; chunk; nthreads; cursor = Atomic.make 0;
      finished = Atomic.make 0 }

  (** Claim the next chunk; [None] once the iteration space is exhausted.
      Both kinds advance the cursor with a CAS loop that clamps at
      [trips]: a bare fetch-and-add would keep growing the cursor on
      every post-exhaustion poll (each trailing [dispatch_next] adds
      [chunk]), making {!remaining} drift and, with a large enough
      chunk, eventually wrapping the cursor past [max_int] back into
      range.  Guided additionally sizes each claim from the remaining
      work. *)
  let next t =
    match t.kind with
    | Dyn ->
        let rec attempt () =
          let start = Atomic.get t.cursor in
          if start >= t.trips then None
          else
            let stop = min t.trips (start + t.chunk) in
            if Atomic.compare_and_set t.cursor start stop then
              Some (start, stop)
            else attempt ()
        in
        attempt ()
    | Gui ->
        let rec attempt () =
          let start = Atomic.get t.cursor in
          if start >= t.trips then None
          else
            let size =
              guided_next_chunk ~nthreads:t.nthreads ~chunk:t.chunk
                ~remaining:(t.trips - start)
            in
            let stop = min t.trips (start + size) in
            if Atomic.compare_and_set t.cursor start stop then
              Some (start, stop)
            else attempt ()
        in
        attempt ()

  let remaining t = max 0 (t.trips - Atomic.get t.cursor)
end

(** Runtime profiling — the paper's "further work" delivered.

    The paper's section VI proposes instrumenting applications with
    profiler calls from inside the compiler, "providing functionality
    similar to that of gprof".  This module is that facility for our
    runtime: when enabled, every OpenMP construct the generated code
    executes is timed and aggregated per construct kind — parallel
    regions, barrier waits, critical-section waits, dispatch claims and
    single claims — and {!report} renders the gprof-style summary.

    Profiling is off by default and costs one atomic load per construct
    when disabled.  Aggregation uses the runtime's own atomics, so
    enabling it inside parallel regions is safe. *)

type construct =
  | Region          (** a whole [__kmpc_fork_call] *)
  | Barrier_wait
  | Critical_wait
  | Single_claim
  | Dispatch_claim  (** one [__kmpc_dispatch_next] *)
  | Static_loop     (** one [__kmpc_for_static_init] *)

let all_constructs =
  [ Region; Barrier_wait; Critical_wait; Single_claim; Dispatch_claim;
    Static_loop ]

let construct_name = function
  | Region -> "parallel region"
  | Barrier_wait -> "barrier wait"
  | Critical_wait -> "critical wait"
  | Single_claim -> "single claim"
  | Dispatch_claim -> "dispatch_next claim"
  | Static_loop -> "static loop init"

type agg = {
  count : Atomics.Int.t;
  total : Atomics.Float.t;  (* seconds *)
  slowest : Atomics.Float.t;
}

let fresh_agg () = {
  count = Atomics.Int.make 0;
  total = Atomics.Float.make 0.;
  slowest = Atomics.Float.make 0.;
}

let enabled = Atomic.make false

let aggs = List.map (fun c -> (c, fresh_agg ())) all_constructs

let agg_of c = List.assq c aggs

(* ------------------------------------------------------------------ *)
(* Hot-team pool statistics.  Unlike construct timings these are
   always-on counters: one fetch-and-add per fork is noise next to the
   fork itself, and the pool's health (did the workers persist? did the
   team get reused?) must be observable without enabling timing. *)

let pool_counters =
  let z () = Atomics.Int.make 0 in
  (z (), z (), z (), z (), z (), z (), z ())

(* Hybrid-barrier statistics: how each barrier passage was satisfied —
   during the bounded spin, or by blocking on the condition variable.
   Always-on for the same reason as the pool counters. *)
let barrier_counters = (Atomics.Int.make 0, Atomics.Int.make 0)

(* Bytecode-tier statistics: drain executions entering the register
   bytecode, drain executions bailing to the closure tier, and chunks
   that ran the guard-elided code variant.  Always-on: tier selection
   must be observable (and testable) without enabling timing. *)
let bc_counters = (Atomics.Int.make 0, Atomics.Int.make 0, Atomics.Int.make 0)

(* Tasking statistics: tasks created, tasks run undeferred at the
   creation point (serialised/1-thread teams), LIFO pops from the
   owner's own deque, and FIFO steals from a teammate's.  Always-on so
   load balance (did work actually migrate?) is observable — and
   testable — without enabling timing. *)
let task_counters =
  (Atomics.Int.make 0, Atomics.Int.make 0, Atomics.Int.make 0,
   Atomics.Int.make 0)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let reset () =
  List.iter
    (fun (_, a) ->
      Atomics.Int.set a.count 0;
      Atomics.Float.set a.total 0.;
      Atomics.Float.set a.slowest 0.)
    aggs;
  let a, b, c, d, e, f, g = pool_counters in
  List.iter (fun cnt -> Atomics.Int.set cnt 0) [ a; b; c; d; e; f; g ];
  let s, bl = barrier_counters in
  Atomics.Int.set s 0;
  Atomics.Int.set bl 0;
  let be, bb, bg = bc_counters in
  Atomics.Int.set be 0;
  Atomics.Int.set bb 0;
  Atomics.Int.set bg 0;
  let ts, tu, tp, tt = task_counters in
  Atomics.Int.set ts 0;
  Atomics.Int.set tu 0;
  Atomics.Int.set tp 0;
  Atomics.Int.set tt 0

(** Record one completed construct of duration [dt] seconds. *)
let record c dt =
  let a = agg_of c in
  Atomics.Int.add a.count 1;
  Atomics.Float.add a.total dt;
  Atomics.Float.max a.slowest dt

(** [timed c f] — run [f], attributing its duration to [c] when
    profiling is on. *)
let timed c f =
  if Atomic.get enabled then begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record c (Unix.gettimeofday () -. t0))
      f
  end
  else f ()

(** Count-only event (used where timing each claim would distort the
    measurement more than it is worth). *)
let tick c = if Atomic.get enabled then Atomics.Int.add (agg_of c).count 1

type pool_event =
  | Pool_fork_served     (** a fork dispatched through the hot team *)
  | Pool_worker_spawned  (** a persistent worker domain created *)
  | Pool_reuse_hit       (** a team structure recycled across regions *)
  | Pool_spin_park       (** a worker picked up work while spinning *)
  | Pool_block_park      (** a worker had to block on its condvar *)
  | Pool_fallback_fork   (** a fork served by spawn-per-fork instead *)
  | Pool_serialised_fork (** a fork serialised by [max_active_levels] *)

type pool_stats = {
  forks_served : int;
  workers_spawned : int;
  reuse_hits : int;
  spin_parks : int;
  block_parks : int;
  fallback_forks : int;
  serialised_forks : int;
}

let pool_counter = function
  | Pool_fork_served -> (let c, _, _, _, _, _, _ = pool_counters in c)
  | Pool_worker_spawned -> (let _, c, _, _, _, _, _ = pool_counters in c)
  | Pool_reuse_hit -> (let _, _, c, _, _, _, _ = pool_counters in c)
  | Pool_spin_park -> (let _, _, _, c, _, _, _ = pool_counters in c)
  | Pool_block_park -> (let _, _, _, _, c, _, _ = pool_counters in c)
  | Pool_fallback_fork -> (let _, _, _, _, _, c, _ = pool_counters in c)
  | Pool_serialised_fork -> (let _, _, _, _, _, _, c = pool_counters in c)

let pool_tick e = Atomics.Int.add (pool_counter e) 1

let pool_stats () =
  { forks_served = Atomics.Int.get (pool_counter Pool_fork_served);
    workers_spawned = Atomics.Int.get (pool_counter Pool_worker_spawned);
    reuse_hits = Atomics.Int.get (pool_counter Pool_reuse_hit);
    spin_parks = Atomics.Int.get (pool_counter Pool_spin_park);
    block_parks = Atomics.Int.get (pool_counter Pool_block_park);
    fallback_forks = Atomics.Int.get (pool_counter Pool_fallback_fork);
    serialised_forks = Atomics.Int.get (pool_counter Pool_serialised_fork) }

let pool_report () =
  let s = pool_stats () in
  Printf.sprintf
    "hot-team pool: %d forks served, %d workers spawned, %d team reuse \
     hits,\n               %d spin parks, %d block parks, %d fallback \
     (spawn-per-fork) forks,\n               %d forks serialised by \
     max_active_levels\n"
    s.forks_served s.workers_spawned s.reuse_hits s.spin_parks
    s.block_parks s.fallback_forks s.serialised_forks

type barrier_event =
  | Barrier_spin_wait   (** passage completed within the spin budget *)
  | Barrier_block_wait  (** the waiter had to block on the condvar *)

type barrier_stats = {
  spin_waits : int;
  block_waits : int;
}

let barrier_counter = function
  | Barrier_spin_wait -> fst barrier_counters
  | Barrier_block_wait -> snd barrier_counters

let barrier_tick e = Atomics.Int.add (barrier_counter e) 1

let barrier_stats () =
  { spin_waits = Atomics.Int.get (fst barrier_counters);
    block_waits = Atomics.Int.get (snd barrier_counters) }

let barrier_report () =
  let s = barrier_stats () in
  Printf.sprintf
    "hybrid barrier: %d spin waits, %d block waits\n"
    s.spin_waits s.block_waits

type bc_event =
  | Bc_entered       (** a drain execution ran on the bytecode tier *)
  | Bc_bailout       (** a drain execution fell back to closures *)
  | Bc_guard_elided  (** a chunk ran the guard-elided code variant *)

type bc_stats = {
  bc_entered : int;
  bc_bailouts : int;
  bc_guard_elided : int;
}

let bc_counter = function
  | Bc_entered -> (let c, _, _ = bc_counters in c)
  | Bc_bailout -> (let _, c, _ = bc_counters in c)
  | Bc_guard_elided -> (let _, _, c = bc_counters in c)

let bc_tick e = Atomics.Int.add (bc_counter e) 1

let bc_entered_tick () = bc_tick Bc_entered
let bc_bailout_tick () = bc_tick Bc_bailout
let bc_elided_tick () = bc_tick Bc_guard_elided

let bc_stats () =
  { bc_entered = Atomics.Int.get (bc_counter Bc_entered);
    bc_bailouts = Atomics.Int.get (bc_counter Bc_bailout);
    bc_guard_elided = Atomics.Int.get (bc_counter Bc_guard_elided) }

let bc_report () =
  let s = bc_stats () in
  Printf.sprintf
    "bytecode tier: %d drains entered, %d bailouts to closures, %d \
     guard-elided chunks\n"
    s.bc_entered s.bc_bailouts s.bc_guard_elided

type task_event =
  | Task_spawned    (** a task created ([__kmpc_omp_task]) *)
  | Task_undeferred (** …and executed immediately at the creation point *)
  | Task_local_pop  (** a task claimed LIFO from the owner's deque *)
  | Task_steal      (** a task claimed FIFO from a teammate's deque *)

type task_stats = {
  tasks_spawned : int;
  tasks_undeferred : int;
  task_local_pops : int;
  task_steals : int;
}

let task_counter = function
  | Task_spawned -> (let c, _, _, _ = task_counters in c)
  | Task_undeferred -> (let _, c, _, _ = task_counters in c)
  | Task_local_pop -> (let _, _, c, _ = task_counters in c)
  | Task_steal -> (let _, _, _, c = task_counters in c)

let task_tick e = Atomics.Int.add (task_counter e) 1

let task_stats () =
  { tasks_spawned = Atomics.Int.get (task_counter Task_spawned);
    tasks_undeferred = Atomics.Int.get (task_counter Task_undeferred);
    task_local_pops = Atomics.Int.get (task_counter Task_local_pop);
    task_steals = Atomics.Int.get (task_counter Task_steal) }

let task_report () =
  let s = task_stats () in
  Printf.sprintf
    "tasking: %d tasks spawned, %d undeferred, %d local pops, %d steals\n"
    s.tasks_spawned s.tasks_undeferred s.task_local_pops s.task_steals

type snapshot = {
  construct : construct;
  count : int;
  total : float;
  mean : float;
  slowest : float;
}

let snapshot () =
  List.filter_map
    (fun ((c : construct), (a : agg)) ->
      let count = Atomics.Int.get a.count in
      if count = 0 then None
      else
        let total = Atomics.Float.get a.total in
        Some
          { construct = c; count; total;
            mean = total /. float_of_int count;
            slowest = Atomics.Float.get a.slowest })
    aggs

(** The gprof-style table, followed by the pool counters when the pool
    has seen any traffic. *)
let report () =
  let rows = snapshot () in
  let table =
    if rows = [] then "profile: no OpenMP constructs recorded\n"
    else begin
      let b = Buffer.create 512 in
      Buffer.add_string b
        (Printf.sprintf "%-20s %10s %12s %12s %12s\n" "construct" "count"
           "total (s)" "mean (us)" "max (us)");
      List.iter
        (fun r ->
          Buffer.add_string b
            (Printf.sprintf "%-20s %10d %12.6f %12.2f %12.2f\n"
               (construct_name r.construct)
               r.count r.total (1e6 *. r.mean) (1e6 *. r.slowest)))
        (List.sort (fun a b -> compare b.total a.total) rows);
      Buffer.contents b
    end
  in
  let s = pool_stats () in
  let table =
    if s.forks_served + s.workers_spawned + s.fallback_forks
       + s.serialised_forks = 0 then table
    else table ^ pool_report ()
  in
  let bs = barrier_stats () in
  let table =
    if bs.spin_waits + bs.block_waits = 0 then table
    else table ^ barrier_report ()
  in
  let bc = bc_stats () in
  let table =
    if bc.bc_entered + bc.bc_bailouts + bc.bc_guard_elided = 0 then table
    else table ^ bc_report ()
  in
  let ts = task_stats () in
  if ts.tasks_spawned = 0 then table else table ^ task_report ()

(** The hot-team worker pool behind [__kmpc_fork_call].

    libomp parks a persistent team of workers between parallel regions
    so that only the first fork pays for thread creation; this module
    reproduces that design on OCaml domains.  [OMP_NUM_THREADS - 1]
    workers are spawned lazily on the first pooled fork and parked with
    a bounded spin-then-block wait governed by {!Icv.t.wait_policy} /
    {!Icv.t.blocktime} ([OMP_WAIT_POLICY] / [ZIGOMP_BLOCKTIME]).

    One lease is outstanding at a time; {!Team.fork} acquires it for
    top-level regions — after applying the encountering task's
    [thread_limit] / [max_active_levels] ICVs to the team size — and
    falls back to spawn-per-fork for nested teams (counted in
    {!Profile.pool_stats}). *)

(** {2 Deferred tasks}

    The task representation and the per-worker work-stealing deques.
    The types live here, next to the workers that own the deques; the
    scheduling protocol (creation, claiming, drains at scheduling
    points) is in {!Team} and {!Kmpc}. *)

type tasknode = { live_children : int Atomic.t }
(** Per-task completion accounting: outstanding direct children.
    [taskwait] drains the current task's node to zero. *)

val fresh_tasknode : unit -> tasknode

type task = {
  t_run : unit -> unit;      (** the outlined task body *)
  t_icvs : Icv.t;            (** data-environment frame, copied at creation *)
  t_node : tasknode;         (** this task's own node (for its children) *)
  t_parent : tasknode;       (** decremented when this task completes *)
}

(** A Chase–Lev-style work-stealing deque of {!task}s: LIFO push/pop at
    the bottom for the single owner, FIFO CAS-arbitrated steals at the
    top for everyone else. *)
module Taskdeque : sig
  type t

  val create : unit -> t

  val push : t -> task -> unit
  (** Owner only. *)

  val pop : t -> task option
  (** Owner only; LIFO. *)

  val steal : t -> task option
  (** Any thread; FIFO. *)

  val clear : t -> unit
  (** Reset to empty.  Only legal while no other thread can touch the
      deque (lease time / teardown). *)
end

type lease
(** Exclusive use of the pool's workers for one parallel region. *)

val task_deques : lease -> Taskdeque.t array
(** The member-indexed (tid 0 = the encountering thread) deque array
    for a pooled team: the master's persistent deque plus each leased
    worker's own, all cleared.  Like the workers themselves, the
    deques persist across leases — the hot-deque analogue of the hot
    team. *)

val acquire : nthreads:int -> lease option
(** Lease [nthreads - 1] hot workers, growing the pool as needed.
    [None] — the caller must spawn-per-fork — when the pool is
    disabled, busy, or domain creation fails. *)

val dispatch : lease -> (int -> unit) -> unit
(** Start the closure on every leased worker (thread ids
    [1 .. nthreads-1]) and return immediately; the caller runs thread
    0 itself.  Exceptions inside the closure are captured per worker
    and surfaced by {!await}. *)

val await : lease -> (int * exn) option
(** Wait for every dispatched closure to finish; the lowest-tid
    failure, if any.  Never raises. *)

val release : lease -> unit
(** Return the workers to the pool (they stay parked, hot). *)

val set_enabled : bool -> unit
(** Globally enable/disable pooled forking (used by the spawn-vs-pool
    ablation in the benchmark harness).  Disabling does not terminate
    already-parked workers. *)

val is_enabled : unit -> bool

val size : unit -> int
(** Number of persistent workers currently parked or leased. *)

val shutdown : unit -> unit
(** Terminate and join every worker.  Installed via [at_exit] on first
    spawn; safe to call more than once. *)

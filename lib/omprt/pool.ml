(** The hot-team worker pool behind [__kmpc_fork_call].

    libomp amortises thread startup by parking a persistent team of
    workers between parallel regions ("hot teams"): the first fork pays
    for thread creation, every later fork is a mailbox write and a
    wake-up.  Our {!Team.fork} used to pay [Domain.spawn]/[Domain.join]
    for every region, so fork/join cost scaled with domain creation.
    This module is the libomp-shaped fix: [OMP_NUM_THREADS - 1] domains
    spawned lazily on first fork, each parked on a private mailbox with
    a bounded spin-then-block wait (the [KMP_BLOCKTIME] analogue, see
    {!Icv.t.blocktime}), leased wholesale to one top-level region at a
    time.

    The pool serves only top-level regions; nested regions fall back to
    spawn-per-fork in {!Team.fork} (and are counted as such in
    {!Profile.pool_stats}).  Team sizing — including the
    [thread-limit-var] cap and serialisation beyond
    [max-active-levels-var] — happens in {!Team.fork} before the pool
    is consulted, so [acquire] sees only final sizes.  A single lease
    is outstanding at any
    moment — concurrent encountering threads race on one CAS and the
    losers fall back, which keeps every mailbox single-producer.

    Memory-safety of the mailboxes: the [slot] and [finished] fields
    are [Atomic.t], so a job published by the master happens-before the
    worker's read, and a result written by the worker happens-before
    the master's collection.  The condition variables only ever
    re-check those atomics, never carry data themselves. *)

type cmd =
  | Idle                  (** mailbox empty — park *)
  | Run of (unit -> unit) (** one region's work for this worker *)
  | Quit                  (** process exit: drain and terminate *)

type worker = {
  slot : cmd Atomic.t;
  m : Mutex.t;
  cv : Condition.t;            (* master -> worker: mailbox filled *)
  finished : bool Atomic.t;
  done_m : Mutex.t;
  done_cv : Condition.t;       (* worker -> master: job complete *)
  mutable failure : exn option;
  (* written by the worker before [finished := true]; the atomic store
     publishes it to the master *)
  mutable domain : unit Domain.t option;
}

type lease = { nworkers : int }

(* ------------------------------------------------------------------ *)
(* Pool state.  [busy] serialises leases; [lock] guards growth and
   shutdown of the worker array.                                       *)

let enabled = Atomic.make true
let busy = Atomic.make false
let lock = Mutex.create ()
let workers : worker array ref = ref [||]
let shutdown_installed = ref false

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let size () = Array.length !workers

(* ------------------------------------------------------------------ *)
(* Worker side.                                                        *)

(** Spin-then-block wait for the next mailbox command.  The spin budget
    is re-read from the ICVs on every park so [ZIGOMP_BLOCKTIME] /
    [omp_set_*] style adjustments take effect immediately. *)
let next_cmd w =
  let rec spin n =
    match Atomic.get w.slot with
    | Idle ->
        if n > 0 then begin
          Domain.cpu_relax ();
          spin (n - 1)
        end
        else begin
          Profile.pool_tick Profile.Pool_block_park;
          Mutex.lock w.m;
          let rec block () =
            match Atomic.get w.slot with
            | Idle -> Condition.wait w.cv w.m; block ()
            | c -> c
          in
          let c = block () in
          Mutex.unlock w.m;
          c
        end
    | c ->
        Profile.pool_tick Profile.Pool_spin_park;
        c
  in
  spin Icv.global.blocktime

let rec worker_loop w =
  match next_cmd w with
  | Quit -> ()
  | Idle -> worker_loop w
  | Run f ->
      Atomic.set w.slot Idle;
      (match f () with
       | () -> w.failure <- None
       | exception e -> w.failure <- Some e);
      Atomic.set w.finished true;
      Mutex.lock w.done_m;
      Condition.signal w.done_cv;
      Mutex.unlock w.done_m;
      worker_loop w

let make_worker () =
  { slot = Atomic.make Idle;
    m = Mutex.create ();
    cv = Condition.create ();
    finished = Atomic.make true;
    done_m = Mutex.create ();
    done_cv = Condition.create ();
    failure = None;
    domain = None }

(* ------------------------------------------------------------------ *)
(* Master side.                                                        *)

let shutdown () =
  Mutex.lock lock;
  let ws = !workers in
  workers := [||];
  Mutex.unlock lock;
  Array.iter
    (fun w ->
      Atomic.set w.slot Quit;
      Mutex.lock w.m;
      Condition.signal w.cv;
      Mutex.unlock w.m)
    ws;
  Array.iter
    (fun w -> match w.domain with Some d -> Domain.join d | None -> ())
    ws

(* Grow the pool to [n] workers.  Only called with the lease held, so
   the array cannot change under a dispatching master; the mutex is for
   the (at-exit) shutdown path. *)
let ensure n =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  let cur = Array.length !workers in
  if n > cur then begin
    if not !shutdown_installed then begin
      shutdown_installed := true;
      at_exit shutdown
    end;
    workers :=
      Array.init n (fun i ->
          if i < cur then !workers.(i)
          else begin
            let w = make_worker () in
            w.domain <- Some (Domain.spawn (fun () -> worker_loop w));
            Profile.pool_tick Profile.Pool_worker_spawned;
            w
          end)
  end

(** [acquire ~nthreads] — lease [nthreads - 1] hot workers, spawning
    any that do not exist yet.  [None] when the pool is disabled,
    another lease is outstanding, or domain creation fails — all of
    which the caller answers with spawn-per-fork.  [nthreads] is the
    final team size: {!Team.fork} has already applied the encountering
    task's [thread_limit] and [max_active_levels] ICVs. *)
let acquire ~nthreads =
  let nw = nthreads - 1 in
  if nw <= 0 || not (Atomic.get enabled) then None
  else if not (Atomic.compare_and_set busy false true) then None
  else
    match ensure nw with
    | () ->
        Profile.pool_tick Profile.Pool_fork_served;
        Some { nworkers = nw }
    | exception _ ->
        Atomic.set busy false;
        None

(** [dispatch lease f] — start [f tid] on the leased workers, thread
    ids [1 .. nworkers]; returns immediately (the caller runs tid 0
    itself, then {!await}s). *)
let dispatch { nworkers } f =
  let ws = !workers in
  for i = 0 to nworkers - 1 do
    let w = ws.(i) in
    let tid = i + 1 in
    Atomic.set w.finished false;
    Atomic.set w.slot (Run (fun () -> f tid));
    Mutex.lock w.m;
    Condition.signal w.cv;
    Mutex.unlock w.m
  done

(** [await lease] — wait (spin-then-block, same budget as the workers)
    for every dispatched job to finish; the lowest-tid failure, if
    any.  Never raises. *)
let await { nworkers } =
  let ws = !workers in
  let failure = ref None in
  for i = 0 to nworkers - 1 do
    let w = ws.(i) in
    let rec spin n =
      if Atomic.get w.finished then ()
      else if n > 0 then begin
        Domain.cpu_relax ();
        spin (n - 1)
      end
      else begin
        Mutex.lock w.done_m;
        while not (Atomic.get w.finished) do
          Condition.wait w.done_cv w.done_m
        done;
        Mutex.unlock w.done_m
      end
    in
    spin Icv.global.blocktime;
    (match w.failure with
     | Some e when !failure = None -> failure := Some (i + 1, e)
     | _ -> ())
  done;
  !failure

let release (_ : lease) = Atomic.set busy false

(** The hot-team worker pool behind [__kmpc_fork_call].

    libomp amortises thread startup by parking a persistent team of
    workers between parallel regions ("hot teams"): the first fork pays
    for thread creation, every later fork is a mailbox write and a
    wake-up.  Our {!Team.fork} used to pay [Domain.spawn]/[Domain.join]
    for every region, so fork/join cost scaled with domain creation.
    This module is the libomp-shaped fix: [OMP_NUM_THREADS - 1] domains
    spawned lazily on first fork, each parked on a private mailbox with
    a bounded spin-then-block wait (the [KMP_BLOCKTIME] analogue, see
    {!Icv.t.blocktime}), leased wholesale to one top-level region at a
    time.

    The pool serves only top-level regions; nested regions fall back to
    spawn-per-fork in {!Team.fork} (and are counted as such in
    {!Profile.pool_stats}).  Team sizing — including the
    [thread-limit-var] cap and serialisation beyond
    [max-active-levels-var] — happens in {!Team.fork} before the pool
    is consulted, so [acquire] sees only final sizes.  A single lease
    is outstanding at any
    moment — concurrent encountering threads race on one CAS and the
    losers fall back, which keeps every mailbox single-producer.

    Memory-safety of the mailboxes: the [slot] and [finished] fields
    are [Atomic.t], so a job published by the master happens-before the
    worker's read, and a result written by the worker happens-before
    the master's collection.  The condition variables only ever
    re-check those atomics, never carry data themselves. *)

(* ------------------------------------------------------------------ *)
(* Deferred tasks.  A task packages an outlined body with its data
   environment: the ICV frame snapshotted from the generating task at
   creation (the OpenMP inheritance rule, identical to what
   {!Team.fork} does for implicit tasks) and the parent/child links
   [taskwait] needs.  The types live here — next to the workers that
   will run them — so the per-worker deques below can be monomorphic
   and the {!Team}/{!Kmpc} layers above can share them without a
   dependency cycle.                                                   *)

(** Per-task completion accounting: one node per task (and per implicit
    task), counting its outstanding direct children.  [taskwait] spins
    this to zero; completion of a child decrements its parent's node. *)
type tasknode = { live_children : int Atomic.t }

let fresh_tasknode () = { live_children = Atomic.make 0 }

type task = {
  t_run : unit -> unit;      (** the outlined task body *)
  t_icvs : Icv.t;            (** data-environment frame, copied at creation *)
  t_node : tasknode;         (** this task's own node (for its children) *)
  t_parent : tasknode;       (** decremented when this task completes *)
}

(** A Chase–Lev-style work-stealing deque of {!task}s: the owning
    worker pushes and pops at the bottom (LIFO — depth-first on its own
    spawn tree, the cache-friendly order), thieves claim from the top
    (FIFO — the oldest, typically largest subtree).  Single owner, many
    thieves; the only synchronisation is the CAS on [top] that resolves
    steal/steal and steal/last-element-pop races.  The circular buffer
    grows by publishing a bigger copy through an [Atomic.t]: a thief
    holding the old buffer still reads valid cells, because live
    entries are copied at the same logical index and the owner never
    overwrites an unstolen slot (it would need [bottom - top > mask],
    which growth just excluded). *)
module Taskdeque = struct
  type buf = { arr : task option array; mask : int }

  type t = {
    top : int Atomic.t;     (* next index to steal *)
    bottom : int Atomic.t;  (* next index to push; owner-written *)
    buf : buf Atomic.t;
  }

  let create () =
    { top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make { arr = Array.make 64 None; mask = 63 } }

  (* Owner only. *)
  let push q tk =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    let bf = Atomic.get q.buf in
    let bf =
      if b - t > bf.mask then begin
        let n = 2 * (bf.mask + 1) in
        let arr = Array.make n None in
        for i = t to b - 1 do
          arr.(i land (n - 1)) <- bf.arr.(i land bf.mask)
        done;
        let nbf = { arr; mask = n - 1 } in
        Atomic.set q.buf nbf;
        nbf
      end
      else bf
    in
    bf.arr.(b land bf.mask) <- Some tk;
    Atomic.set q.bottom (b + 1)

  (* Owner only: LIFO pop from the bottom.  The reservation store of
     [bottom] before re-reading [top] is the classic Chase–Lev dance;
     the CAS on [top] arbitrates the final element against thieves. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if t > b then begin
      Atomic.set q.bottom t;
      None
    end
    else begin
      let bf = Atomic.get q.buf in
      let x = bf.arr.(b land bf.mask) in
      if t = b then begin
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin bf.arr.(b land bf.mask) <- None; x end
        else None
      end
      else begin
        bf.arr.(b land bf.mask) <- None;
        x
      end
    end

  (* Any thread: FIFO steal from the top.  A failed CAS means another
     thief (or the owner's last-element pop) got there first. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else begin
      let bf = Atomic.get q.buf in
      let x = bf.arr.(t land bf.mask) in
      if Atomic.compare_and_set q.top t (t + 1) then x else None
    end

  (* Lease-time reset: only called while the deque's owner is parked
     and no region is live, so plain stores suffice. *)
  let clear q =
    let bf = Atomic.get q.buf in
    Array.fill bf.arr 0 (Array.length bf.arr) None;
    Atomic.set q.top 0;
    Atomic.set q.bottom 0
end

type cmd =
  | Idle                  (** mailbox empty — park *)
  | Run of (unit -> unit) (** one region's work for this worker *)
  | Quit                  (** process exit: drain and terminate *)

type worker = {
  slot : cmd Atomic.t;
  m : Mutex.t;
  cv : Condition.t;            (* master -> worker: mailbox filled *)
  finished : bool Atomic.t;
  done_m : Mutex.t;
  done_cv : Condition.t;       (* worker -> master: job complete *)
  mutable failure : exn option;
  (* written by the worker before [finished := true]; the atomic store
     publishes it to the master *)
  mutable domain : unit Domain.t option;
  deque : Taskdeque.t;
  (* this worker's task deque, persistent across leases like the
     worker itself (the hot-deque analogue of the hot team: the grown
     buffer stays warm between regions) *)
}

type lease = { nworkers : int }

(* ------------------------------------------------------------------ *)
(* Pool state.  [busy] serialises leases; [lock] guards growth and
   shutdown of the worker array.                                       *)

let enabled = Atomic.make true
let busy = Atomic.make false
let lock = Mutex.create ()
let workers : worker array ref = ref [||]
let shutdown_installed = ref false

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let size () = Array.length !workers

(* ------------------------------------------------------------------ *)
(* Worker side.                                                        *)

(** Spin-then-block wait for the next mailbox command.  The spin budget
    is re-read from the ICVs on every park so [ZIGOMP_BLOCKTIME] /
    [omp_set_*] style adjustments take effect immediately. *)
let next_cmd w =
  let rec spin n =
    match Atomic.get w.slot with
    | Idle ->
        if n > 0 then begin
          Domain.cpu_relax ();
          spin (n - 1)
        end
        else begin
          Profile.pool_tick Profile.Pool_block_park;
          Mutex.lock w.m;
          let rec block () =
            match Atomic.get w.slot with
            | Idle -> Condition.wait w.cv w.m; block ()
            | c -> c
          in
          let c = block () in
          Mutex.unlock w.m;
          c
        end
    | c ->
        Profile.pool_tick Profile.Pool_spin_park;
        c
  in
  spin Icv.global.blocktime

let rec worker_loop w =
  match next_cmd w with
  | Quit -> ()
  | Idle -> worker_loop w
  | Run f ->
      Atomic.set w.slot Idle;
      (match f () with
       | () -> w.failure <- None
       | exception e -> w.failure <- Some e);
      Atomic.set w.finished true;
      Mutex.lock w.done_m;
      Condition.signal w.done_cv;
      Mutex.unlock w.done_m;
      worker_loop w

let make_worker () =
  { slot = Atomic.make Idle;
    m = Mutex.create ();
    cv = Condition.create ();
    finished = Atomic.make true;
    done_m = Mutex.create ();
    done_cv = Condition.create ();
    failure = None;
    domain = None;
    deque = Taskdeque.create () }

(* The encountering thread is tid 0 of every pooled team; its deque is
   as persistent as the lease discipline (one outstanding lease) makes
   the master unique. *)
let master_deque = Taskdeque.create ()

(** The member-indexed deque array for a pooled team: tid 0 is the
    master's persistent deque, tids 1.. are the leased workers' own.
    Cleared here — the owners are parked or (for the master) calling
    us, so no region is concurrently touching them. *)
let task_deques { nworkers } =
  Array.init (nworkers + 1) (fun i ->
      let dq = if i = 0 then master_deque else !workers.(i - 1).deque in
      Taskdeque.clear dq;
      dq)

(* ------------------------------------------------------------------ *)
(* Master side.                                                        *)

let shutdown () =
  Mutex.lock lock;
  let ws = !workers in
  workers := [||];
  Mutex.unlock lock;
  Array.iter
    (fun w ->
      Atomic.set w.slot Quit;
      Mutex.lock w.m;
      Condition.signal w.cv;
      Mutex.unlock w.m)
    ws;
  Array.iter
    (fun w -> match w.domain with Some d -> Domain.join d | None -> ())
    ws

(* Grow the pool to [n] workers.  Only called with the lease held, so
   the array cannot change under a dispatching master; the mutex is for
   the (at-exit) shutdown path. *)
let ensure n =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  let cur = Array.length !workers in
  if n > cur then begin
    if not !shutdown_installed then begin
      shutdown_installed := true;
      at_exit shutdown
    end;
    workers :=
      Array.init n (fun i ->
          if i < cur then !workers.(i)
          else begin
            let w = make_worker () in
            w.domain <- Some (Domain.spawn (fun () -> worker_loop w));
            Profile.pool_tick Profile.Pool_worker_spawned;
            w
          end)
  end

(** [acquire ~nthreads] — lease [nthreads - 1] hot workers, spawning
    any that do not exist yet.  [None] when the pool is disabled,
    another lease is outstanding, or domain creation fails — all of
    which the caller answers with spawn-per-fork.  [nthreads] is the
    final team size: {!Team.fork} has already applied the encountering
    task's [thread_limit] and [max_active_levels] ICVs. *)
let acquire ~nthreads =
  let nw = nthreads - 1 in
  if nw <= 0 || not (Atomic.get enabled) then None
  else if not (Atomic.compare_and_set busy false true) then None
  else
    match ensure nw with
    | () ->
        Profile.pool_tick Profile.Pool_fork_served;
        Some { nworkers = nw }
    | exception _ ->
        Atomic.set busy false;
        None

(** [dispatch lease f] — start [f tid] on the leased workers, thread
    ids [1 .. nworkers]; returns immediately (the caller runs tid 0
    itself, then {!await}s). *)
let dispatch { nworkers } f =
  let ws = !workers in
  for i = 0 to nworkers - 1 do
    let w = ws.(i) in
    let tid = i + 1 in
    Atomic.set w.finished false;
    Atomic.set w.slot (Run (fun () -> f tid));
    Mutex.lock w.m;
    Condition.signal w.cv;
    Mutex.unlock w.m
  done

(** [await lease] — wait (spin-then-block, same budget as the workers)
    for every dispatched job to finish; the lowest-tid failure, if
    any.  Never raises. *)
let await { nworkers } =
  let ws = !workers in
  let failure = ref None in
  for i = 0 to nworkers - 1 do
    let w = ws.(i) in
    let rec spin n =
      if Atomic.get w.finished then ()
      else if n > 0 then begin
        Domain.cpu_relax ();
        spin (n - 1)
      end
      else begin
        Mutex.lock w.done_m;
        while not (Atomic.get w.finished) do
          Condition.wait w.done_cv w.done_m
        done;
        Mutex.unlock w.done_m
      end
    in
    spin Icv.global.blocktime;
    (match w.failure with
     | Some e when !failure = None -> failure := Some (i + 1, e)
     | _ -> ())
  done;
  !failure

let release (_ : lease) = Atomic.set busy false

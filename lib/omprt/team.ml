(** Thread teams and the per-thread execution context.

    A team is created by each [__kmpc_fork_call] (the lowering target for
    a [parallel] pragma) and lives for the duration of the region.  Worker
    threads are OCaml domains — persistent hot-team workers leased from
    {!module:Pool} for top-level regions, freshly spawned domains for
    nested or oversized ones; the encountering thread becomes thread 0 of
    the new team, as the OpenMP execution model requires.  The current
    context is carried in domain-local storage so that [omp_get_thread_num]
    and friends work from arbitrary call depth, and contexts form a chain
    through [parent] to support nested regions.

    Every context also carries its task's ICV frame ({!Icv.t}),
    snapshotted from the encountering task's frame at fork: this is the
    OpenMP data-environment model, under which [omp_set_num_threads]
    inside a region affects only the calling thread's later forks —
    never its siblings, and never a concurrent top-level region.
    {!fork} enforces two of those ICVs itself: [thread_limit] caps the
    contention group (the chain of teams grown from one initial task),
    and regions nested beyond [max_active_levels] are serialised to a
    team of one, running inline with no domain spawned at all. *)

type t = {
  team_id : int;
  nthreads : int;
  barrier : Barrier.t;
  (* Dispatchers for dynamic/guided loops, keyed by loop epoch: the N-th
     dispatch loop a thread enters uses the dispatcher at key N.  Keeping
     a table rather than a single slot lets [nowait] loops overlap — a
     fast thread may initialise loop N+1 while slow ones still drain
     loop N, which is what libomp's dispatch buffers are for. *)
  dispatchers : (int, Ws.Dispatch.t) Hashtbl.t;
  dispatch_mutex : Mutex.t;
  (* The most recently created dispatcher, published as (epoch, d) so
     that the other team members joining the same loop can find it with
     one atomic load instead of taking [dispatch_mutex] — the
     double-checked fast path of {!Kmpc.dispatch_init}.  Lagging
     threads (overlapping [nowait] loops) miss here and fall back to
     the locked table lookup. *)
  latest_dispatch : (int * Ws.Dispatch.t) option Atomic.t;
  (* Monotone counter of [single] constructs already claimed (see
     {!Kmpc.single}). *)
  single_epoch : int Atomic.t;
  (* Per-construct reduction scratch: index -> boxed accumulator.  Used by
     the generated code path; the high-level API keeps its own state. *)
  reduce_mutex : Mutex.t;
  (* Deferred tasking: one work-stealing deque per member (tid-indexed;
     pooled teams alias the persistent per-worker deques in {!Pool}),
     and the count of tasks created but not yet finished — the quantity
     barriers and region ends drain to zero, making them task
     scheduling points. *)
  deques : Pool.Taskdeque.t array;
  task_live : int Atomic.t;
  (* copyprivate broadcast slots, keyed by the single epoch that filled
     them: the claiming thread of [single copyprivate(...)] publishes
     its packed values here before the construct's implied barrier, and
     every teammate reads them after it. *)
  cp_slots : (int, Obj.t) Hashtbl.t;
  cp_mutex : Mutex.t;
}

and ctx = {
  team : t;
  tid : int;
  parent : ctx option;
  mutable icvs : Icv.t;
  (** the *current* task's ICV frame on this thread: the implicit
      task's (inherited from the encountering task at fork) except
      while an explicit task runs, when {!run_task} swaps the task's
      own frame in; [Api.set_*] mutates this and nothing else *)
  mutable task_node : Pool.tasknode;
  (** the current task's completion node — children spawned here hang
      off it, and [taskwait] drains it to zero; swapped alongside
      [icvs] during explicit-task execution *)
  active_levels : int;
  (** enclosing *active* regions, self included (teams of > 1 thread) —
      the value [max_active_levels] is checked against at the next fork *)
  group_threads : int;
  (** threads this contention-group chain has committed so far (the
      path through the enclosing teams); [fork] caps new teams so this
      never exceeds [thread_limit] *)
  mutable loop_epoch : int;   (** this thread's count of dispatch loops entered *)
  mutable single_seen : int;  (** this thread's count of single constructs *)
}

let next_team_id = Atomic.make 0

let create_team ?deques nthreads =
  let deques =
    match deques with
    | Some d -> d
    | None -> Array.init nthreads (fun _ -> Pool.Taskdeque.create ())
  in
  { team_id = Atomic.fetch_and_add next_team_id 1;
    nthreads;
    barrier = Barrier.create nthreads;
    dispatchers = Hashtbl.create 8;
    dispatch_mutex = Mutex.create ();
    latest_dispatch = Atomic.make None;
    single_epoch = Atomic.make 0;
    reduce_mutex = Mutex.create ();
    deques;
    task_live = Atomic.make 0;
    cp_slots = Hashtbl.create 8;
    cp_mutex = Mutex.create () }

(* ------------------------------------------------------------------ *)
(* Current context, in domain-local storage.                           *)

let key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

let set_current c = Domain.DLS.set key c

(** The current task's ICV frame: the innermost context's, or the
    initial task's ({!Icv.global}) outside any region. *)
let icvs () =
  match current () with None -> Icv.global | Some c -> c.icvs

(** Thread id within the innermost enclosing parallel region (0 outside
    any region, matching [omp_get_thread_num]). *)
let thread_num () =
  match current () with None -> 0 | Some c -> c.tid

(** Team size of the innermost region (1 outside). *)
let num_threads () =
  match current () with None -> 1 | Some c -> c.team.nthreads

(** [true] iff any enclosing region is active (a team of more than one
    thread) — a serialised nested region inside an active one still
    reports [true], as [omp_in_parallel] specifies. *)
let in_parallel () =
  let rec walk = function
    | None -> false
    | Some c -> c.team.nthreads > 1 || walk c.parent
  in
  walk (current ())

let level () =
  let rec depth acc = function
    | None -> acc
    | Some c -> depth (acc + 1) c.parent
  in
  depth 0 (current ())

(** Number of enclosing *active* regions ([omp_get_active_level]). *)
let active_level () =
  match current () with None -> 0 | Some c -> c.active_levels

(* The context [lvl] nesting levels deep (1 = outermost region), from
   the innermost context at depth [depth]. *)
let rec ctx_at_level ~depth lvl c =
  if depth = lvl then Some c
  else
    match c.parent with
    | None -> None
    | Some p -> ctx_at_level ~depth:(depth - 1) lvl p

(** [omp_get_ancestor_thread_num level]: the thread number of this
    thread's ancestor at [level] (0 = the initial task, always thread
    0; the current level returns the current thread id); [-1] when
    [level] is negative or beyond the current nesting depth. *)
let ancestor_thread_num lvl =
  let depth = level () in
  if lvl < 0 || lvl > depth then -1
  else if lvl = 0 then 0
  else
    match current () with
    | None -> -1
    | Some c ->
        (match ctx_at_level ~depth lvl c with
         | Some a -> a.tid
         | None -> -1)

(** [omp_get_team_size level]: the size of the team at [level] (level 0
    — the initial implicit team — has size 1); [-1] out of range. *)
let team_size lvl =
  let depth = level () in
  if lvl < 0 || lvl > depth then -1
  else if lvl = 0 then 1
  else
    match current () with
    | None -> -1
    | Some c ->
        (match ctx_at_level ~depth lvl c with
         | Some a -> a.team.nthreads
         | None -> -1)

(* ------------------------------------------------------------------ *)
(* Deferred tasks: creation, claiming, and the scheduling points.      *)

(** Claim a task for [c]'s thread: LIFO from its own deque first (the
    depth-first order that keeps a spawn tree hot in cache), then FIFO
    steals round-robin from its teammates. *)
let try_get_task (c : ctx) =
  let dq = c.team.deques in
  let n = Array.length dq in
  match Pool.Taskdeque.pop dq.(c.tid) with
  | Some _ as t ->
      Profile.task_tick Profile.Task_local_pop;
      t
  | None ->
      let rec go k =
        if k >= n then None
        else
          match Pool.Taskdeque.steal dq.((c.tid + k) mod n) with
          | Some _ as t ->
              Profile.task_tick Profile.Task_steal;
              t
          | None -> go (k + 1)
      in
      go 1

(** Execute [tk] on [c]'s thread: swap in the task's data environment
    (ICV frame and completion node), run the body, and — even on a
    raise — restore the thread's own environment and retire the task
    from its parent's and the team's live counts, so waiting teammates
    can never hang on a failed task. *)
let run_task (c : ctx) (tk : Pool.task) =
  let saved_icvs = c.icvs and saved_node = c.task_node in
  c.icvs <- tk.Pool.t_icvs;
  c.task_node <- tk.Pool.t_node;
  Fun.protect
    ~finally:(fun () ->
      c.icvs <- saved_icvs;
      c.task_node <- saved_node;
      ignore (Atomic.fetch_and_add tk.Pool.t_parent.Pool.live_children (-1));
      ignore (Atomic.fetch_and_add c.team.task_live (-1)))
    tk.Pool.t_run

(** [spawn_task c f] — create a task whose data environment snapshots
    [c]'s current frame.  Deferred onto this thread's deque on real
    teams; undeferred (executed immediately, still through the full
    task protocol so ICV isolation and completion accounting hold) on
    serialised/1-thread teams, where deferral could never add
    parallelism. *)
let spawn_task (c : ctx) (f : unit -> unit) =
  Profile.task_tick Profile.Task_spawned;
  let tk =
    { Pool.t_run = f;
      t_icvs = Icv.copy c.icvs;
      t_node = Pool.fresh_tasknode ();
      t_parent = c.task_node }
  in
  ignore (Atomic.fetch_and_add c.task_node.Pool.live_children 1);
  ignore (Atomic.fetch_and_add c.team.task_live 1);
  if c.team.nthreads = 1 then begin
    Profile.task_tick Profile.Task_undeferred;
    run_task c tk
  end
  else Pool.Taskdeque.push c.team.deques.(c.tid) tk

(** Task scheduling point: execute/steal team tasks until none are
    live.  A task body that raises is noted (first failure wins) but
    the drain continues, so the team always quiesces; the caller
    re-raises after its synchronisation completes. *)
let task_drain (c : ctx) =
  if Atomic.get c.team.task_live = 0 then None
  else begin
    let failure = ref None in
    while Atomic.get c.team.task_live > 0 do
      match try_get_task c with
      | Some tk ->
          (try run_task c tk
           with e ->
             if !failure = None then
               failure := Some (e, Printexc.get_raw_backtrace ()))
      | None -> Domain.cpu_relax ()
    done;
    !failure
  end

(** [taskwait ()] — wait for the current task's direct children,
    executing any available team task while waiting (the taskwait
    scheduling point). *)
let taskwait () =
  match current () with
  | None -> ()
  | Some c ->
      let node = c.task_node in
      while Atomic.get node.Pool.live_children > 0 do
        match try_get_task c with
        | Some tk -> run_task c tk
        | None -> Domain.cpu_relax ()
      done

(* ------------------------------------------------------------------ *)
(* Fork/join.                                                          *)

exception Worker_failure of int * exn

(* The hot team: the team structure of the previous pooled region, kept
   so that back-to-back same-size regions recycle the barrier and clear
   (rather than reallocate) the dispatcher table — libomp's hot-team
   reuse.  Only touched while holding the pool lease, which serialises
   all pooled forks, so no extra lock is needed. *)
let hot_team : t option ref = ref None

let lease_team lease nt =
  match !hot_team with
  | Some team when team.nthreads = nt ->
      Hashtbl.reset team.dispatchers;
      (* a stale (epoch, d) would falsely match epoch 0 of the new
         region's first dispatch loop *)
      Atomic.set team.latest_dispatch None;
      Atomic.set team.single_epoch 0;
      (* tasks/broadcasts left behind by a region that failed mid-drain
         must not leak into this one *)
      Atomic.set team.task_live 0;
      Array.iter Pool.Taskdeque.clear team.deques;
      Hashtbl.reset team.cp_slots;
      Profile.pool_tick Profile.Pool_reuse_hit;
      team
  | _ ->
      let team = create_team ~deques:(Pool.task_deques lease) nt in
      hot_team := Some team;
      team

(* The cold path: one fresh domain per worker, joined at region end.
   Serves nested regions, oversized teams, and any fork the pool
   declined. *)
let spawn_fork nt (run : int -> unit -> unit) =
  let workers =
    Array.init (nt - 1) (fun i -> Domain.spawn (run (i + 1)))
  in
  let master_result =
    match run 0 () with
    | () -> Ok ()
    | exception e -> Error (0, e)
  in
  let failure = ref None in
  Array.iteri
    (fun i d ->
      match Domain.join d with
      | () -> ()
      | exception e -> if !failure = None then failure := Some (i + 1, e))
    workers;
  (match master_result with
   | Error (tid, e) -> raise (Worker_failure (tid, e))
   | Ok () -> ());
  match !failure with
  | Some (tid, e) -> raise (Worker_failure (tid, e))
  | None -> ()

(* The hot path: dispatch to the leased pool workers, run tid 0
   ourselves, collect.  Workers are always awaited — even when the
   master's own body raised — so the team structure is quiescent before
   the lease is released and the exception surfaces. *)
let pooled_fork lease (run : int -> unit -> unit) =
  Fun.protect ~finally:(fun () -> Pool.release lease) @@ fun () ->
  Pool.dispatch lease (fun tid -> run tid ());
  let master_result =
    match run 0 () with
    | () -> Ok ()
    | exception e -> Error (0, e)
  in
  let worker_failure = Pool.await lease in
  (match master_result with
   | Error (tid, e) -> raise (Worker_failure (tid, e))
   | Ok () -> ());
  match worker_failure with
  | Some (tid, e) -> raise (Worker_failure (tid, e))
  | None -> ()

(** [fork ?num_threads body] implements [__kmpc_fork_call]: create (or
    reuse) a team, run [body ~tid] on every member (thread 0 is the
    encountering thread), and join.

    The team size starts from the [num_threads] clause value or the
    encountering task's [nthreads-var], then the encountering task's
    ICV frame is enforced: a fork already inside [max_active_levels]
    active regions is *serialised* — the body runs inline on a team of
    one, no domain spawned (with [max_active_levels = 1], the default,
    nested regions run with 1 thread exactly as libomp) — and
    [thread_limit] caps the team so the contention group (this chain of
    nested teams) never exceeds it.

    Each team member's context carries a fresh copy of the
    encountering task's ICV frame (the OpenMP inheritance rule).

    Top-level regions are served by the persistent hot-team pool
    ({!module:Pool}); nested-and-active or pool-contended forks fall
    back to one [Domain.spawn] per worker.  An exception in any member
    — including the inline body of a serialised or 1-thread region —
    is re-raised in the encountering thread after all members have
    finished, wrapped in {!Worker_failure} with the failing thread id
    (the master's failure wins, then the lowest worker tid). *)
let fork ?num_threads (body : tid:int -> unit) =
  let parent = current () in
  let pframe = match parent with None -> Icv.global | Some c -> c.icvs in
  let requested =
    match num_threads with
    | Some n when n > 0 -> n
    | Some _ -> invalid_arg "Team.fork: num_threads must be positive"
    | None -> pframe.Icv.nthreads
  in
  let active = match parent with None -> 0 | Some c -> c.active_levels in
  let group = match parent with None -> 1 | Some c -> c.group_threads in
  let serialised = requested > 1 && active >= pframe.Icv.max_active_levels in
  let nt =
    if serialised then 1
    else min requested (max 1 (pframe.Icv.thread_limit - group + 1))
  in
  if serialised then Profile.pool_tick Profile.Pool_serialised_fork;
  let run team tid () =
    let ctx =
      { team; tid; parent;
        icvs = Icv.copy pframe;
        task_node = Pool.fresh_tasknode ();
        active_levels = active + (if nt > 1 then 1 else 0);
        group_threads = group + (nt - 1);
        loop_epoch = 0; single_seen = 0 }
    in
    set_current (Some ctx);
    Fun.protect ~finally:(fun () -> set_current parent)
      (fun () ->
        body ~tid;
        (* region-end task scheduling point: every member helps drain
           outstanding tasks before leaving, so the join implies all
           tasks of the region completed (the implicit-barrier rule) *)
        match task_drain ctx with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
  in
  if nt = 1 then
    (* the serial path presents the same error surface as the parallel
       ones: the inline body is "thread 0" of a team of one *)
    match run (create_team 1) 0 () with
    | () -> ()
    | exception e -> raise (Worker_failure (0, e))
  else
    match (if parent = None then Pool.acquire ~nthreads:nt else None) with
    | Some lease ->
        let team = lease_team lease nt in
        pooled_fork lease (run team)
    | None ->
        Profile.pool_tick Profile.Pool_fallback_fork;
        spawn_fork nt (run (create_team nt))

(** The team barrier for the current context; a no-op outside a region.
    A barrier is a task scheduling point: outstanding team tasks are
    drained before arrival, so no member passes while tasks are live —
    and a task failure is re-raised only after the barrier completes,
    so teammates are never stranded waiting for this member. *)
let barrier () =
  match current () with
  | None -> ()
  | Some c ->
      let fl = task_drain c in
      ignore (Barrier.wait c.team.barrier);
      (match fl with
       | Some (e, bt) -> Printexc.raise_with_backtrace e bt
       | None -> ())

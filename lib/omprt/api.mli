(** The user-facing [omp_*] API (paper section III-C).

    The paper re-exports libomp's user entry points in an [omp]
    namespace with the redundant [omp_] prefix stripped; this module is
    that namespace on the host side, and the interpreter binds
    [omp.get_thread_num()] etc. to it.

    ICV accessors operate on the *calling task's* data environment:
    the innermost context's frame inside a parallel region (inherited
    from the encountering task at fork), {!Icv.global} outside.  A
    value set inside a region never leaks to sibling threads or to
    concurrent regions. *)

val get_thread_num : unit -> int
(** Thread id within the innermost enclosing region; 0 outside. *)

val get_num_threads : unit -> int
(** Team size of the innermost region; 1 outside. *)

val get_max_threads : unit -> int
(** The [nthreads-var] ICV: default team size for the next region
    encountered by this task. *)

val set_num_threads : int -> unit
(** Set the calling task's [nthreads-var] ICV (non-positive values are
    ignored). *)

val get_num_procs : unit -> int

val in_parallel : unit -> bool
(** [true] iff any enclosing parallel region is active (team > 1). *)

val get_level : unit -> int
(** Nesting depth of enclosing parallel regions, active or not. *)

val get_active_level : unit -> int
(** Number of enclosing *active* parallel regions
    ([omp_get_active_level]). *)

val get_ancestor_thread_num : int -> int
(** [get_ancestor_thread_num level] — the calling thread's ancestor
    thread number at nesting [level] (0 = initial task; the current
    level returns {!get_thread_num}); [-1] out of range. *)

val get_team_size : int -> int
(** [get_team_size level] — team size at nesting [level] (level 0 is
    the initial team of 1); [-1] out of range. *)

val get_dynamic : unit -> bool
val set_dynamic : bool -> unit

val get_schedule : unit -> Omp_model.Sched.t
val set_schedule : Omp_model.Sched.t -> unit
(** The [run-sched-var] ICV consulted by [schedule(runtime)] loops —
    resolved against the encountering task's frame. *)

val get_thread_limit : unit -> int
(** The [thread-limit-var] ICV: contention-group thread cap enforced
    by {!Team.fork} ([OMP_THREAD_LIMIT]). *)

val get_max_active_levels : unit -> int
val set_max_active_levels : int -> unit
(** The [max-active-levels-var] ICV: forks beyond this many active
    enclosing regions are serialised to a team of one.  Defaults to 1
    (nesting disabled, as libomp); negative values are ignored, large
    ones clamp to {!get_supported_active_levels}. *)

val get_supported_active_levels : unit -> int
(** Largest accepted [max_active_levels]
    ([omp_get_supported_active_levels]). *)

val get_wait_policy : unit -> Icv.wait_policy
(** The [wait-policy-var] ICV ([OMP_WAIT_POLICY]) governing how parked
    hot-team workers wait for the next region.  Device scope. *)

val get_blocktime : unit -> int
val set_blocktime : int -> unit
(** Spin rounds a parked hot-team worker burns before blocking — the
    analogue of libomp's [kmp_get/set_blocktime] ([ZIGOMP_BLOCKTIME]).
    Device scope: takes effect pool-wide.  Negative values are
    ignored. *)

val get_wtime : unit -> float
(** Wall-clock seconds. *)

val get_wtick : unit -> float

(** Locks, under their [omp_*] names. *)

type lock_t = Lock.t
type nest_lock_t = Lock.Nest.t

val init_lock : unit -> lock_t
val set_lock : lock_t -> unit
val unset_lock : lock_t -> unit
val test_lock : lock_t -> bool
val destroy_lock : lock_t -> unit

val init_nest_lock : unit -> nest_lock_t
val set_nest_lock : nest_lock_t -> unit
val unset_nest_lock : nest_lock_t -> unit
val destroy_nest_lock : nest_lock_t -> unit

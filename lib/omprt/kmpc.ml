(** The [__kmpc_*] entry points — the surface the preprocessor targets.

    These are the functions the paper's generated code calls (sections
    III-B and III-C): [__kmpc_fork_call] for parallel regions, the
    [__kmpc_for_static_*] family for static worksharing loops, and the
    [__kmpc_dispatch_*] family for dynamic/guided/runtime schedules, plus
    the synchronisation constructs.  Names drop the [__kmpc_] prefix
    because they already live in this module, matching how the paper
    namespaces them under [.omp.internal]. *)

open Omp_model

(* The num_threads value pushed by [__kmpc_push_num_threads] for the
   *next* fork on this thread, as libomp keeps it: consumed (and
   cleared) by the first [fork_call] that is not given an explicit team
   size. *)
let pushed_num_threads : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(** [fork_call ?loc ?num_threads microtask arg] — run [microtask arg] on
    every thread of a team (hot-team pooled for top-level regions, see
    {!Team.fork}).  [arg] stands in for the opaque argument-group
    pointers ([?*anyopaque] in the paper's ABI); the caller packs
    firstprivate/shared/reduction groups into it.  Without an explicit
    [num_threads], a value pushed by {!push_num_threads} on this thread
    is consumed first, then the [nthreads-var] ICV applies. *)
let fork_call ?loc:_ ?num_threads (microtask : 'a -> unit) (arg : 'a) =
  let num_threads =
    match num_threads with
    | Some _ -> num_threads
    | None ->
        (match Domain.DLS.get pushed_num_threads with
         | None -> None
         | Some _ as pushed ->
             Domain.DLS.set pushed_num_threads None;
             pushed)
  in
  Profile.timed Profile.Region (fun () ->
      Team.fork ?num_threads (fun ~tid:_ -> microtask arg))

let global_thread_num ?loc:_ () = Team.thread_num ()

let barrier ?loc:_ () =
  Profile.timed Profile.Barrier_wait Team.barrier

(* ------------------------------------------------------------------ *)
(* Static worksharing: __kmpc_for_static_init / _fini.                 *)

(* The one place a [schedule(static, chunk)] clause value is validated;
   every static entry point routes through it so the error names the
   function the caller actually used. *)
let validate_chunk ~fn c =
  if c < 0 then invalid_arg (Printf.sprintf "Kmpc.%s: negative chunk" fn)

(** Result of {!for_static_init}: the caller's slice of the iteration
    space in *user* iteration values, with an inclusive upper bound and
    the stride to advance by between chunks — the same contract as
    libomp's [__kmpc_for_static_init_4].  [None] when this thread has no
    iterations. *)
type static_bounds = { lower : int; upper : int; stride : int }

(** [for_static_init ?chunk ~lo ~hi ~step ()] for the normalised loop
    [for i = lo; i < hi (or > for negative step); i += step].  Unchunked:
    one contiguous block per thread, [stride] spans the whole space (one
    pass).  Chunked: the thread starts at its [tid*chunk]-th iteration and
    must advance by [stride = chunk * nthreads * step] until past
    [hi]. *)
let for_static_init ?loc:_ ?chunk ~lo ~hi ~step () =
  Profile.tick Profile.Static_loop;
  let tid = Team.thread_num () and nth = Team.num_threads () in
  let trips = Ws.trip_count ~lo ~hi ~step () in
  match chunk with
  | None | Some 0 ->
      (match Ws.static_block ~tid ~nthreads:nth ~trips with
       | None -> None
       | Some (b, e) ->
           Some { lower = lo + (b * step);
                  upper = lo + ((e - 1) * step);
                  stride = (if trips = 0 then step else trips * step) })
  | Some c ->
      validate_chunk ~fn:"for_static_init" c;
      let first = tid * c in
      if first >= trips then None
      else
        let stop = min trips (first + c) in
        Some { lower = lo + (first * step);
               upper = lo + ((stop - 1) * step);
               stride = c * nth * step }

(** [__kmpc_for_static_fini]: bookkeeping only in libomp; here it simply
    validates that we are inside a region. *)
let for_static_fini ?loc:_ () = ignore (Team.current ())

(** Convenience used by generated code and the interpreter: run [body] on
    every chunk this thread owns under a static schedule, over the
    normalised range, then hit the joining barrier unless [nowait]. *)
let static_for ?loc ?chunk ?(nowait = false) ~lo ~hi ~step body =
  (match chunk with
   | None | Some 0 ->
       (match for_static_init ?loc ~lo ~hi ~step () with
        | None -> ()
        | Some { lower; upper; stride = _ } ->
            (* single block: iterate [lower..upper] by [step] *)
            let i = ref lower in
            if step > 0 then
              while !i <= upper do body !i; i := !i + step done
            else
              while !i >= upper do body !i; i := !i + step done)
   | Some c ->
       (* chunked: the canonical round-robin split ({!Ws}) mapped back
          to user iteration values — the same partition arithmetic the
          rest of the runtime uses, in place of a second hand-rolled
          implementation *)
       Profile.tick Profile.Static_loop;
       validate_chunk ~fn:"static_for" c;
       let tid = Team.thread_num () and nth = Team.num_threads () in
       let trips = Ws.trip_count ~lo ~hi ~step () in
       Ws.static_chunks_iter ~tid ~nthreads:nth ~trips ~chunk:c
         (fun b e ->
           let lower, _ = Ws.denormalise ~lo ~step (b, e) in
           let i = ref lower in
           for _ = b to e - 1 do
             body !i;
             i := !i + step
           done));
  for_static_fini ();
  if not nowait then barrier ()

(* ------------------------------------------------------------------ *)
(* Dynamic dispatch: __kmpc_dispatch_init / _next / _fini.             *)

(* [schedule(runtime)] resolves against the *encountering task's*
   [run-sched-var] — the frame inherited at fork, possibly overridden
   by this thread's own [omp_set_schedule] — not a process global. *)
let resolve_runtime_sched trips nthreads =
  match (Team.icvs ()).Icv.run_sched with
  | Sched.Dynamic c -> (Ws.Dispatch.Dyn, max 1 c)
  | Sched.Guided c -> (Ws.Dispatch.Gui, max 1 c)
  | Sched.Static (Some c) -> (Ws.Dispatch.Dyn, max 1 c)
  | Sched.Static None | Sched.Runtime | Sched.Auto ->
      (* Emulate a blocked static split through the dispatcher: equal
         blocks claimed first-come first-served. *)
      (Ws.Dispatch.Dyn, max 1 ((trips + nthreads - 1) / max 1 nthreads))

let dispatch_kind trips nthreads = function
  | Sched.Dynamic c -> (Ws.Dispatch.Dyn, max 1 c)
  | Sched.Guided c -> (Ws.Dispatch.Gui, max 1 c)
  | Sched.Runtime -> resolve_runtime_sched trips nthreads
  | Sched.Static c ->
      (Ws.Dispatch.Dyn,
       match c with
       | Some c -> max 1 c
       | None -> max 1 ((trips + nthreads - 1) / max 1 nthreads))
  | Sched.Auto -> (Ws.Dispatch.Dyn, max 1 ((trips + nthreads - 1) / max 1 nthreads))

(** Per-thread handle onto the team's shared dispatcher for one loop. *)
type dispatcher = {
  d : Ws.Dispatch.t;
  lo : int;
  step : int;
  (* Where the dispatcher is registered, for retirement: the owning
     team and the loop epoch it is keyed under ([None] for orphaned
     worksharing, which registers nothing). *)
  home : (Team.t * int) option;
  (* This handle already observed exhaustion and bumped [d.finished];
     handles are strictly per-thread, so a plain mutable suffices. *)
  mutable drained : bool;
}

(** [dispatch_init ?loc ~sched ~lo ~hi ~step ()] — join (or create) the
    team-wide dispatcher for this thread's next dispatch loop.  Mirrors
    [__kmpc_dispatch_init_4]: every team member calls it with identical
    bounds and schedule.  The common case — all threads entering the
    loop back-to-back — is served by one atomic load of the team's
    [latest_dispatch] slot; only the creating thread and threads
    lagging behind on an earlier [nowait] loop take [dispatch_mutex]. *)
let dispatch_init ?loc:_ ~sched ~lo ~hi ~step () =
  let trips = Ws.trip_count ~lo ~hi ~step () in
  let nth = Team.num_threads () in
  match Team.current () with
  | None ->
      (* Orphaned worksharing: a team of one. *)
      let kind, chunk = dispatch_kind trips 1 sched in
      { d = Ws.Dispatch.create ~kind ~trips ~chunk ~nthreads:1;
        lo; step; home = None; drained = false }
  | Some ctx ->
      let epoch = ctx.loop_epoch in
      ctx.loop_epoch <- ctx.loop_epoch + 1;
      let team = ctx.team in
      let d =
        match Atomic.get team.Team.latest_dispatch with
        | Some (e, d) when e = epoch -> d  (* fast path: no mutex *)
        | _ ->
            Mutex.lock team.dispatch_mutex;
            let d =
              (* double-check under the lock: another thread may have
                 created it between the atomic load and here *)
              match Hashtbl.find_opt team.dispatchers epoch with
              | Some d -> d
              | None ->
                  let kind, chunk = dispatch_kind trips nth sched in
                  let d =
                    Ws.Dispatch.create ~kind ~trips ~chunk ~nthreads:nth
                  in
                  Hashtbl.add team.dispatchers epoch d;
                  Atomic.set team.Team.latest_dispatch (Some (epoch, d));
                  d
            in
            Mutex.unlock team.dispatch_mutex;
            d
      in
      { d; lo; step; home = Some (team, epoch); drained = false }

(* Retire a fully drained dispatcher: once every team member has
   observed exhaustion, no thread will look this epoch up again (each
   already holds its handle), so the table entry — previously kept
   until team teardown/reuse — can go. *)
let retire (h : dispatcher) =
  match h.home with
  | None -> ()
  | Some (team, epoch) ->
      let fin = 1 + Atomic.fetch_and_add h.d.Ws.Dispatch.finished 1 in
      if fin = h.d.Ws.Dispatch.nthreads then begin
        Mutex.lock team.Team.dispatch_mutex;
        Hashtbl.remove team.Team.dispatchers epoch;
        (match Atomic.get team.Team.latest_dispatch with
         | Some (e, _) when e = epoch ->
             Atomic.set team.Team.latest_dispatch None
         | _ -> ());
        Mutex.unlock team.Team.dispatch_mutex
      end

(** [dispatch_next h] — claim the next chunk, as user-space inclusive
    bounds [(lower, upper)]; [None] when the loop is exhausted (the
    contract of [__kmpc_dispatch_next_4] returning 0).  The first
    exhausted claim per thread counts towards retiring the shared
    dispatcher from the team table. *)
let dispatch_next ?loc:_ (h : dispatcher) =
  Profile.tick Profile.Dispatch_claim;
  match Ws.Dispatch.next h.d with
  | None ->
      if not h.drained then begin
        h.drained <- true;
        retire h
      end;
      None
  | Some (b, e) ->
      Some (h.lo + (b * h.step), h.lo + ((e - 1) * h.step))

let dispatch_fini ?loc:_ (_ : dispatcher) = ()

(** Convenience wrapper from the paper's [.omp.internal] helpers: drain a
    dispatch loop, applying [body] to each iteration value. *)
let dispatch_for ?loc ?(nowait = false) ~sched ~lo ~hi ~step body =
  let h = dispatch_init ?loc ~sched ~lo ~hi ~step () in
  let rec drain () =
    match dispatch_next h with
    | None -> ()
    | Some (lower, upper) ->
        let i = ref lower in
        if step > 0 then
          while !i <= upper do body !i; i := !i + step done
        else
          while !i >= upper do body !i; i := !i + step done;
        drain ()
  in
  drain ();
  dispatch_fini h;
  if not nowait then barrier ()

(* ------------------------------------------------------------------ *)
(* Synchronisation constructs.                                         *)

let critical ?loc:_ ?name f =
  Profile.timed Profile.Critical_wait (fun () -> Lock.critical ?name f)

(** [master f] — run [f] on thread 0 only (no implied barrier). *)
let master ?loc:_ f = if Team.thread_num () = 0 then f ()

(** [single_begin ()] — claim this sequence point's [single] construct;
    [true] in exactly one thread of the team.  Uses the epoch counter
    scheme: the k-th single a thread meets is claimed by advancing the
    team's single epoch from k to k+1, which exactly one thread can do.
    This is the split form generated code uses ([__kmpc_single] /
    [__kmpc_end_single] in libomp). *)
let single_begin ?loc:_ () =
  match Team.current () with
  | None -> true
  | Some ctx ->
      let my_epoch = ctx.single_seen in
      ctx.single_seen <- ctx.single_seen + 1;
      let won =
        Atomic.compare_and_set ctx.team.single_epoch my_epoch (my_epoch + 1)
      in
      if won then Profile.tick Profile.Single_claim;
      won

let single_end ?loc:_ () = ()

(** [single ?nowait f] — run [f] on the first thread to arrive at this
    construct; implied barrier at the end unless [nowait].

    Exception safety: a raise inside the claimed body must not strand
    teammates at the implied barrier — the construct is still ended and
    the barrier still joined, then the failure re-raised so it surfaces
    as {!Team.Worker_failure} through the region join. *)
let single ?loc:_ ?(nowait = false) f =
  let failure = ref None in
  if single_begin () then begin
    (try f () with e ->
       failure := Some (e, Printexc.get_raw_backtrace ()));
    single_end ()
  end;
  if not nowait then barrier ();
  match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Deferred tasks: __kmpc_omp_task / __kmpc_omp_taskwait.              *)

(** [omp_task f] — create an explicit task running [f].  Inside a real
    team the task is deferred onto the encountering thread's
    work-stealing deque (teammates steal it at their scheduling
    points); on serialised/1-thread teams, and outside any region, it
    executes undeferred at the creation point.  Either way the task's
    data environment is a fresh copy of the generating task's ICV
    frame, exactly as {!Team.fork} snapshots frames for implicit
    tasks. *)
let omp_task ?loc:_ (f : unit -> unit) =
  match Team.current () with
  | Some ctx -> Team.spawn_task ctx f
  | None ->
      (* the initial task, outside any region: undeferred, and there is
         no teammate to wait on it, so plain execution is exact *)
      Profile.task_tick Profile.Task_spawned;
      Profile.task_tick Profile.Task_undeferred;
      f ()

(** [omp_taskwait ()] — wait for the current task's direct children to
    complete, executing available team tasks while waiting (a task
    scheduling point, as in libomp). *)
let omp_taskwait ?loc:_ () = Team.taskwait ()

(* ------------------------------------------------------------------ *)
(* copyprivate: the broadcast half of [single copyprivate(list)].      *)

(* The claiming thread packs its private values and publishes them
   under the single epoch it claimed; after the construct's implied
   barrier (copyprivate forbids nowait) every teammate — claimer
   included — reads the packet back.  Epoch keying means back-to-back
   singles never collide, and the implied barrier supplies the
   happens-before edge from the claimer's write to every read. *)

let cp_epoch ctx =
  (* single_seen was incremented by the claim this broadcast belongs
     to, so the construct's epoch is the predecessor *)
  ctx.Team.single_seen - 1

(* Orphaned singles (outside any region) always claim; the broadcast is
   thread-to-itself.  Kept in DLS so concurrent initial threads cannot
   interfere. *)
let orphan_cp : Obj.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(** [copyprivate_put v] — called by the thread whose {!single_begin}
    returned [true], before the implied barrier. *)
let copyprivate_put ?loc:_ (v : 'a) =
  match Team.current () with
  | None -> Domain.DLS.set orphan_cp (Some (Obj.repr v))
  | Some ctx ->
      let team = ctx.Team.team in
      Mutex.lock team.Team.cp_mutex;
      Hashtbl.replace team.Team.cp_slots (cp_epoch ctx) (Obj.repr v);
      Mutex.unlock team.Team.cp_mutex

(** [copyprivate_get ()] — called by every team member after the
    implied barrier; returns the packet the claimer put.  The claimer's
    own value round-trips, so callers need not special-case it. *)
let copyprivate_get ?loc:_ () : 'a =
  match Team.current () with
  | None ->
      (match Domain.DLS.get orphan_cp with
       | Some v -> Obj.obj v
       | None ->
           invalid_arg
             "Kmpc.copyprivate_get: no broadcast for this single construct")
  | Some ctx ->
      let team = ctx.Team.team in
      Mutex.lock team.Team.cp_mutex;
      let v = Hashtbl.find_opt team.Team.cp_slots (cp_epoch ctx) in
      Mutex.unlock team.Team.cp_mutex;
      (match v with
       | Some v -> Obj.obj v
       | None ->
           invalid_arg
             "Kmpc.copyprivate_get: no broadcast for this single construct")

(* The global lock behind the [atomic] directive's generic fallback
   (libomp's __kmpc_atomic_start/_end). *)
let atomic_lock = Mutex.create ()
let atomic_begin ?loc:_ () = Mutex.lock atomic_lock
let atomic_end ?loc:_ () = Mutex.unlock atomic_lock

(** [flush] — a sequentially-consistent fence.  OCaml's [Atomic] accesses
    are already SC, so an explicit fence via a dummy atomic suffices. *)
let flush_fence = Atomic.make 0
let flush ?loc:_ () = ignore (Atomic.get flush_fence)

(** [push_num_threads n] — the lowering of a [num_threads] clause:
    records the request for this thread's *next* {!fork_call}, exactly
    as libomp's [__kmpc_push_num_threads] does.  Also returns the
    clamped value for callers that pass it explicitly. *)
let push_num_threads ?loc:_ n =
  let n = max 1 n in
  Domain.DLS.set pushed_num_threads (Some n);
  n

(* ------------------------------------------------------------------ *)
(* Reductions: the __kmpc_reduce critical-path helpers.  The generated
   code from the paper instead passes atomic cells (Atomics module); this
   entry point provides the tree/critical fallback libomp also offers.   *)

(** [reduce ~combine] — serialise [combine] across the team (the
    critical-section reduction method of [__kmpc_reduce]); the joining
    barrier is the caller's responsibility, as in libomp. *)
let reduce ?loc:_ ~(combine : unit -> unit) () =
  Lock.critical ~name:".omp.reduction" combine

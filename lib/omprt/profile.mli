(** Runtime profiling — the paper's "further work" delivered: a
    gprof-style per-construct summary of where OpenMP time goes.

    Off by default (one atomic load per construct when disabled); safe
    to enable around parallel regions. *)

type construct =
  | Region          (** a whole [__kmpc_fork_call] *)
  | Barrier_wait
  | Critical_wait
  | Single_claim
  | Dispatch_claim  (** one [__kmpc_dispatch_next] *)
  | Static_loop     (** one [__kmpc_for_static_init] *)

val all_constructs : construct list

val construct_name : construct -> string

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero all aggregates. *)

val record : construct -> float -> unit
(** Record one completed construct of the given duration (seconds). *)

val timed : construct -> (unit -> 'a) -> 'a
(** Run the closure, attributing its duration when profiling is on. *)

val tick : construct -> unit
(** Count-only event. *)

type snapshot = {
  construct : construct;
  count : int;
  total : float;    (** seconds *)
  mean : float;
  slowest : float;
}

val snapshot : unit -> snapshot list
(** Aggregates recorded so far, constructs with zero count omitted. *)

val report : unit -> string
(** The rendered gprof-style table, sorted by total time, followed by
    the hot-team pool counters when the pool has seen any traffic. *)

(** {2 Hot-team pool statistics}

    Always-on counters (one fetch-and-add each; not gated on
    {!is_enabled}) fed by {!module:Pool} and {!module:Team}, so the
    pool's health is observable without enabling construct timing.
    Zeroed by {!reset}. *)

type pool_event =
  | Pool_fork_served     (** a fork dispatched through the hot team *)
  | Pool_worker_spawned  (** a persistent worker domain created *)
  | Pool_reuse_hit       (** a team structure recycled across regions *)
  | Pool_spin_park       (** a worker picked up work while spinning *)
  | Pool_block_park      (** a worker had to block on its condvar *)
  | Pool_fallback_fork   (** a fork served by spawn-per-fork instead *)
  | Pool_serialised_fork (** a fork serialised by [max_active_levels] *)

type pool_stats = {
  forks_served : int;
  workers_spawned : int;
  reuse_hits : int;
  spin_parks : int;
  block_parks : int;
  fallback_forks : int;
  serialised_forks : int;
}

val pool_tick : pool_event -> unit

val pool_stats : unit -> pool_stats

val pool_report : unit -> string
(** The rendered one-paragraph pool-counter summary. *)

(** {2 Hybrid-barrier statistics}

    Always-on counters fed by {!module:Barrier}: how each barrier
    passage was satisfied — within the bounded spin, or by blocking on
    the condition variable.  Zeroed by {!reset}. *)

type barrier_event =
  | Barrier_spin_wait   (** passage completed within the spin budget *)
  | Barrier_block_wait  (** the waiter had to block on the condvar *)

type barrier_stats = {
  spin_waits : int;
  block_waits : int;
}

val barrier_tick : barrier_event -> unit

val barrier_stats : unit -> barrier_stats

val barrier_report : unit -> string
(** The rendered one-line barrier-counter summary. *)

(** {2 Bytecode-tier statistics}

    Always-on counters fed by the interpreter's register-bytecode tier:
    drain executions that entered bytecode, drain executions that
    bailed out to the closure tier (unsupported construct or shape
    mismatch), and chunks that ran the guard-elided code variant.
    Zeroed by {!reset}; appended to {!report} when nonzero. *)

type bc_event =
  | Bc_entered       (** a drain execution ran on the bytecode tier *)
  | Bc_bailout       (** a drain execution fell back to closures *)
  | Bc_guard_elided  (** a chunk ran the guard-elided code variant *)

type bc_stats = {
  bc_entered : int;
  bc_bailouts : int;
  bc_guard_elided : int;
}

val bc_tick : bc_event -> unit

val bc_entered_tick : unit -> unit
val bc_bailout_tick : unit -> unit
val bc_elided_tick : unit -> unit

val bc_stats : unit -> bc_stats

val bc_report : unit -> string
(** The rendered one-line bytecode-tier summary. *)

(** {2 Tasking statistics}

    Always-on counters fed by {!module:Team}'s task scheduling: load
    balance across the work-stealing deques is observable (and
    testable) without enabling construct timing.  Zeroed by {!reset};
    appended to {!report} when any task was spawned. *)

type task_event =
  | Task_spawned    (** a task created ([__kmpc_omp_task]) *)
  | Task_undeferred (** …and executed immediately at the creation point *)
  | Task_local_pop  (** a task claimed LIFO from the owner's deque *)
  | Task_steal      (** a task claimed FIFO from a teammate's deque *)

type task_stats = {
  tasks_spawned : int;
  tasks_undeferred : int;
  task_local_pops : int;
  task_steals : int;
}

val task_tick : task_event -> unit

val task_stats : unit -> task_stats

val task_report : unit -> string
(** The rendered one-line tasking-counter summary. *)

(** The simulated execution engine: {!Omprt.Omp_intf.S} on the
    discrete-event ARCHER2 model.

    Instantiated per experiment run by {!run}: kernels receive a
    first-class module with the same signature as the real runtime, but
    every operation advances virtual time on {!Sim.Des} instead of doing
    work — [work]/[ws_for]/[critical]/[atomic] closures are *not*
    executed, their [cost] is charged through {!Sim.Perfmodel}.  Control
    flow (how many loops, barriers, dispatch claims) is identical to the
    real engine because the worksharing arithmetic is shared
    ({!Omprt.Ws}). *)

open Omp_model

(** Execution statistics accumulated over one simulated run; used by
    tests (work conservation, barrier counts) and by the ablation
    benches. *)
type stats = {
  mutable forks : int;
  mutable barriers : int;
  mutable static_chunks : int;
  mutable dynamic_claims : int;
  mutable criticals : int;
  mutable atomics : int;
  mutable iterations : int;  (** loop iterations covered by claimed chunks *)
  mutable flops : float;
  mutable bytes : float;
}

let fresh_stats () = {
  forks = 0; barriers = 0; static_chunks = 0; dynamic_claims = 0;
  criticals = 0; atomics = 0; iterations = 0; flops = 0.; bytes = 0.;
}

type team = {
  nthreads : int;
  barrier : Sim.Des.Sbarrier.t;
  dispatchers : (int, Omprt.Ws.Dispatch.t) Hashtbl.t;
  single_epoch : int ref;
}

type ctx = {
  team : team;
  tid : int;
  parent : ctx option;
  active_levels : int;  (* enclosing active regions, self included *)
  mutable loop_epoch : int;
  mutable single_seen : int;
}

type state = {
  des : Sim.Des.t;
  machine : Sim.Machine.t;
  default_threads : int;
  max_active_levels : int;
  (* regions nested beyond this many active levels are serialised to a
     team of one, mirroring {!Omprt.Team.fork} (default 1: nesting
     disabled, as libomp) *)
  ctxs : (int, ctx) Hashtbl.t;  (* vthread id -> context *)
  criticals : (string, Sim.Des.Smutex.t) Hashtbl.t;
  stats : stats;
  trace : Sim.Trace.t option;
}

(* Record an interval around a virtual-time-advancing action. *)
let traced st label f =
  match st.trace with
  | None -> f ()
  | Some tr ->
      let vt = Sim.Des.self st.des in
      let start = vt.Sim.Des.clock in
      let result = f () in
      Sim.Trace.record tr ~vthread:vt.Sim.Des.id ~start
        ~stop:vt.Sim.Des.clock label;
      result

let current_ctx st = Hashtbl.find_opt st.ctxs (Sim.Des.self st.des).id

let team_size st =
  match current_ctx st with None -> 1 | Some c -> c.team.nthreads

let charge st ?working_set (c : Cost.t) =
  st.stats.flops <- st.stats.flops +. c.Cost.flops;
  st.stats.bytes <- st.stats.bytes +. Cost.total_bytes c;
  let active = team_size st in
  traced st '#' (fun () ->
      Sim.Des.advance st.des
        (Sim.Perfmodel.time st.machine ~active ?working_set c))

let critical_mutex st name =
  match Hashtbl.find_opt st.criticals name with
  | Some m -> m
  | None ->
      let m = Sim.Des.Smutex.create st.des in
      Hashtbl.add st.criticals name m;
      m

let do_barrier st =
  match current_ctx st with
  | None -> ()
  | Some c ->
      st.stats.barriers <- st.stats.barriers + 1;
      let cost =
        Sim.Perfmodel.barrier_time st.machine ~nthreads:c.team.nthreads
      in
      traced st '=' (fun () ->
          Sim.Des.Sbarrier.wait c.team.barrier ~cost)

(* ------------------------------------------------------------------ *)

let make_engine (st : state) : (module Omprt.Omp_intf.S) =
  (module struct
    let is_simulated = true

    let thread_num () =
      match current_ctx st with None -> 0 | Some c -> c.tid

    let num_threads () = team_size st

    let barrier () = do_barrier st

    let wtime () = Sim.Des.now st.des

    let parallel ?num_threads body =
      let nt = Option.value num_threads ~default:st.default_threads in
      let nt = max 1 nt in
      st.stats.forks <- st.stats.forks + 1;
      let parent = current_ctx st in
      let active =
        match parent with None -> 0 | Some c -> c.active_levels
      in
      let nt = if active >= st.max_active_levels then 1 else nt in
      let master_vt = Sim.Des.self st.des in
      Sim.Des.advance st.des (Sim.Perfmodel.fork_time st.machine ~nthreads:nt);
      let team = {
        nthreads = nt;
        barrier = Sim.Des.Sbarrier.create st.des nt;
        dispatchers = Hashtbl.create 8;
        single_epoch = ref 0;
      } in
      let enter vt_id tid =
        Hashtbl.replace st.ctxs vt_id
          { team; tid; parent;
            active_levels = active + (if nt > 1 then 1 else 0);
            loop_epoch = 0; single_seen = 0 }
      in
      let leave vt_id =
        match parent with
        | Some p -> Hashtbl.replace st.ctxs vt_id p
        | None -> Hashtbl.remove st.ctxs vt_id
      in
      (* Workers start at the master's post-fork clock. *)
      for tid = 1 to nt - 1 do
        Sim.Des.spawn st.des (fun () ->
            let vt = Sim.Des.self st.des in
            enter vt.id tid;
            Fun.protect
              ~finally:(fun () -> Hashtbl.remove st.ctxs vt.id)
              (fun () -> body (); do_barrier st))
      done;
      enter master_vt.id 0;
      Fun.protect
        ~finally:(fun () -> leave master_vt.id)
        (fun () -> body (); do_barrier st)

    let master f = if thread_num () = 0 then f ()

    let single ?(nowait = false) f =
      (match current_ctx st with
       | None -> f ()
       | Some c ->
           let mine = c.single_seen in
           c.single_seen <- c.single_seen + 1;
           if !(c.team.single_epoch) = mine then begin
             incr c.team.single_epoch;
             f ()
           end);
      if not nowait then barrier ()

    let critical ?(name = ".omp.critical.anonymous") ?(cost = Cost.zero) _f =
      st.stats.criticals <- st.stats.criticals + 1;
      let m = critical_mutex st name in
      traced st 'x' (fun () ->
          Sim.Des.Smutex.lock m;
          charge st cost;  (* the closure itself is not executed *)
          Sim.Des.advance st.des
            (Sim.Perfmodel.atomic_time st.machine
               ~contenders:(team_size st));
          Sim.Des.Smutex.unlock m)

    let atomic ?(cost = Cost.zero) _f =
      st.stats.atomics <- st.stats.atomics + 1;
      charge st cost;
      Sim.Des.advance st.des
        (Sim.Perfmodel.atomic_time st.machine ~contenders:(team_size st))

    let work ?(cost = Cost.zero) _f = charge st cost

    let ws_for ?(sched = Sched.Static None) ?(nowait = false) ?working_set
        ?(chunk_cost = fun _ _ -> Cost.zero) ~lo ~hi _body =
      let trips = max 0 (hi - lo) in
      let nth = num_threads () in
      let tid = thread_num () in
      let run_chunk b e =
        (* b, e over [0, trips) *)
        st.stats.iterations <- st.stats.iterations + (e - b);
        Sim.Des.advance st.des st.machine.Sim.Machine.static_chunk_overhead;
        charge st ?working_set (chunk_cost (lo + b) (lo + e))
      in
      (match sched with
       | Sched.Static None ->
           (match Omprt.Ws.static_block ~tid ~nthreads:nth ~trips with
            | None -> ()
            | Some (b, e) ->
                st.stats.static_chunks <- st.stats.static_chunks + 1;
                run_chunk b e)
       | Sched.Static (Some c) ->
           List.iter
             (fun (b, e) ->
               st.stats.static_chunks <- st.stats.static_chunks + 1;
               run_chunk b e)
             (Omprt.Ws.static_chunks ~tid ~nthreads:nth ~trips ~chunk:c)
       | Sched.Dynamic _ | Sched.Guided _ | Sched.Runtime | Sched.Auto ->
           let dispatcher =
             match current_ctx st with
             | None ->
                 let kind, chunk = Omprt.Kmpc.dispatch_kind trips 1 sched in
                 Omprt.Ws.Dispatch.create ~kind ~trips ~chunk ~nthreads:1
             | Some c ->
                 let epoch = c.loop_epoch in
                 c.loop_epoch <- c.loop_epoch + 1;
                 (match Hashtbl.find_opt c.team.dispatchers epoch with
                  | Some d -> d
                  | None ->
                      let kind, chunk =
                        Omprt.Kmpc.dispatch_kind trips nth sched
                      in
                      let d =
                        Omprt.Ws.Dispatch.create ~kind ~trips ~chunk
                          ~nthreads:nth
                      in
                      Hashtbl.add c.team.dispatchers epoch d;
                      d)
           in
           let rec drain () =
             (* one dispatch claim: pay the shared-counter RMW *)
             traced st '.' (fun () ->
                 Sim.Des.advance st.des
                   st.machine.Sim.Machine.dispatch_next);
             match Omprt.Ws.Dispatch.next dispatcher with
             | None -> ()
             | Some (b, e) ->
                 st.stats.dynamic_claims <- st.stats.dynamic_claims + 1;
                 run_chunk b e;
                 drain ()
           in
           drain ());
      if not nowait then barrier ()
  end)

(* ------------------------------------------------------------------ *)

(** Result of one simulated run. *)
type result = {
  makespan : float;   (** virtual seconds from program start to last exit *)
  run_stats : stats;
  trace : Sim.Trace.t option;  (** present when tracing was requested *)
}

(** [run ?machine ?num_threads ?max_active_levels ?trace f] — execute
    [f engine] as the initial virtual thread of a fresh simulation and
    return the virtual makespan.  [num_threads] is the default team
    size for [parallel] regions without a [num_threads] clause;
    [max_active_levels] (default 1, matching the real runtime) bounds
    the active nesting depth — deeper regions are serialised to one
    thread; [trace] records per-thread activity intervals for
    {!Sim.Trace.gantt}. *)
let run ?(machine = Sim.Machine.archer2) ?num_threads
    ?(max_active_levels = 1) ?(trace = false)
    (f : (module Omprt.Omp_intf.S) -> unit) : result =
  let des = Sim.Des.create () in
  let default_threads =
    match num_threads with
    | Some n when n > 0 -> n
    | _ -> Sim.Machine.total_cores machine
  in
  let st = {
    des; machine; default_threads;
    max_active_levels = max 0 max_active_levels;
    ctxs = Hashtbl.create 256;
    criticals = Hashtbl.create 8;
    stats = fresh_stats ();
    trace = (if trace then Some (Sim.Trace.create ()) else None);
  } in
  let engine = make_engine st in
  Sim.Des.spawn des (fun () -> f engine);
  let makespan = Sim.Des.run des in
  { makespan; run_stats = st.stats; trace = st.trace }

(** Pass: worksharing loops → [__kmpc_for_static_*] / [__kmpc_dispatch_*].

    Reproduces the paper's section III-B2.  The bounds are recovered
    syntactically from the Zig-style [while] loop: the lower bound is
    the counter's value on entry, the upper bound is the right-hand side
    of the comparison, the comparison operator decides inclusivity, and
    the increment comes from the right-hand side of the compound
    assignment in the continuation expression.  Static unchunked loops
    lower to the [for_static_init/fini] pair; chunked static, dynamic,
    guided and runtime schedules lower to the dispatcher protocol
    ([dispatch_init]/[dispatch_next]).

    The loop counter is always privatised into a fresh [__omp_iv]
    variable, and loop-level [reduction] clauses create thread-local
    accumulators combined into the original variable under the
    reduction critical section — the temporaries "may not share their
    names with the shared variable they are being reduced into"
    (III-B3), hence the [__omp_red_] prefix. *)

open Zr

open Ompfront

let combine_expr op target tmp =
  match op with
  | Directive.Radd | Directive.Rsub ->
      Printf.sprintf "%s = %s + %s;" target target tmp
  | Directive.Rmul -> Printf.sprintf "%s = %s * %s;" target target tmp
  | Directive.Rmin -> Printf.sprintf "%s = __omp_min(%s, %s);" target target tmp
  | Directive.Rmax -> Printf.sprintf "%s = __omp_max(%s, %s);" target target tmp

type loop_parts = {
  counter_base : string;   (* identifier at the heart of the condition *)
  counter_is_ptr : bool;
  upper : int;             (* node: RHS of the comparison *)
  inclusive : bool;
  cont : int;              (* node: continuation assignment *)
  step_text : string;      (* step expression, sign included *)
  body : int;              (* node: loop body block *)
}

let decompose (c : Synth.ctx) dir wh : loop_parts =
  let ast = c.ast in
  let fail_at node fmt =
    Source.error ast.Ast.source
      (Ast.token ast (Ast.node ast node).Ast.main_token).Token.start
      fmt
  in
  let wn = Ast.node ast wh in
  let cond = Ast.node ast wn.Ast.lhs in
  (if cond.Ast.tag <> Ast.Bin_op then
     fail_at dir "worksharing loop: condition must be a comparison");
  let optok = (Ast.token ast cond.Ast.main_token).Token.tag in
  let inclusive =
    match optok with
    | Token.Lt | Token.Gt -> false
    | Token.Lt_eq | Token.Gt_eq -> true
    | _ -> fail_at dir "worksharing loop: unsupported comparison operator"
  in
  let counter_base, counter_is_ptr =
    let lhs = Ast.node ast cond.Ast.lhs in
    match lhs.Ast.tag with
    | Ast.Ident -> (Ast.token_text ast lhs.Ast.main_token, false)
    | Ast.Deref ->
        let inner = Ast.node ast lhs.Ast.lhs in
        if inner.Ast.tag = Ast.Ident then
          (Ast.token_text ast inner.Ast.main_token, true)
        else fail_at dir "worksharing loop: unsupported counter expression"
    | _ -> fail_at dir "worksharing loop: the comparison must start with \
                        the loop counter"
  in
  let cont = Ast.extra ast wn.Ast.rhs in
  let body = Ast.extra ast (wn.Ast.rhs + 1) in
  (if cont = 0 then
     fail_at dir
       "worksharing loop: the while loop needs a continuation expression \
        to determine the increment");
  let cn = Ast.node ast cont in
  (if cn.Ast.tag <> Ast.Assign then
     fail_at dir "worksharing loop: unsupported continuation expression");
  let step_text =
    let rhs_text = Synth.node_text c cn.Ast.rhs in
    match (Ast.token ast cn.Ast.main_token).Token.tag with
    | Token.Plus_eq -> rhs_text
    | Token.Minus_eq -> "-(" ^ rhs_text ^ ")"
    | _ ->
        fail_at dir
          "worksharing loop: the continuation must be a compound \
           increment (+= or -=)"
  in
  { counter_base; counter_is_ptr; upper = cond.Ast.rhs; inclusive;
    cont; step_text; body }

(* Collapse: each collapsed loop's body must be the canonical nest — an
   initialisation of the next counter (assignment or var decl with
   init) directly followed by the next while.  Returns the inner
   counter's init expression node and the inner loop node. *)
let decompose_nest (c : Synth.ctx) dir outer_body =
  let ast = c.ast in
  let fail () =
    Source.error ast.Ast.source
      (Ast.token ast (Ast.node ast dir).Ast.main_token).Token.start
      "collapse: each collapsed loop body must contain exactly the next \
       counter initialisation followed by the next while loop"
  in
  match Ast.block_stmts ast outer_body with
  | [ init; inner ] ->
      let inner_node = Ast.node ast inner in
      if inner_node.Ast.tag <> Ast.While then fail ();
      let init_node = Ast.node ast init in
      let init_expr =
        match init_node.Ast.tag with
        | Ast.Assign
          when (Ast.token ast init_node.Ast.main_token).Token.tag = Token.Eq
          -> init_node.Ast.rhs
        | Ast.Var_decl when init_node.Ast.rhs <> 0 -> init_node.Ast.rhs
        | _ -> fail ()
      in
      (init_expr, inner)
  | _ -> fail ()

let plan_loop (c : Synth.ctx) dir : Synth.replacement =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let wh = node.Ast.rhs in
  let lp = decompose c dir wh in
  let depth = max 1 cl.flags.Packed.collapse in
  (* Levels 1..depth-1 of the collapsed nest, outermost first: the init
     expression of each counter and the decomposed loop.  A body that is
     not a canonical nest at some level is a hard (diagnosed) error —
     collapse is never silently ignored. *)
  let nest_levels =
    let rec chain body k acc =
      if k >= depth then List.rev acc
      else
        let init_expr, inner = decompose_nest c dir body in
        let ilp = decompose c dir inner in
        chain ilp.body (k + 1) ((init_expr, ilp) :: acc)
    in
    chain lp.body 1 []
  in
  let collapsed = depth >= 2 in
  (* Collapsed counter name at nest level [k] (0 = the pragma's loop). *)
  let cname k = Printf.sprintf "__omp_c%d" k in
  let level_of name =
    if name = lp.counter_base then Some 0
    else
      let rec find k = function
        | [] -> None
        | (_, ilp) :: rest ->
            if ilp.counter_base = name then Some k else find (k + 1) rest
      in
      find 1 nest_levels
  in
  let name_of = Synth.ident_name c in
  let priv = List.map name_of cl.private_ in
  let fp = List.map name_of cl.firstprivate in
  let reds = List.map (fun (op, n) -> (op, name_of n)) cl.reductions in
  (* Rewriting map: privatise the counter(s), redirect reduction vars to
     their thread-local temporaries. *)
  let red_tmp x = "__omp_red_" ^ x in
  let map name =
    match level_of name with
    | Some 0 -> Some (if collapsed then cname 0 else "__omp_iv")
    | Some k -> Some (cname k)
    | None ->
        if List.exists (fun (_, x) -> x = name) reds then
          Some (red_tmp name)
        else None
  in
  let consume name = map name <> None in
  let rw node_ =
    Synth.rewrite_range c
      ~first_token:(Synth.node_first_token c node_)
      ~last_token:(Synth.node_last_token c node_)
      ~consume_deref:consume ~code:map ~pragma:map ()
  in
  let upper_text = rw lp.upper in
  let cont_text = rw lp.cont in
  let body_text =
    (* only the innermost body runs *)
    match List.rev nest_levels with
    | [] -> rw lp.body
    | (_, innermost) :: _ -> rw innermost.body
  in
  let counter_value =
    if lp.counter_is_ptr then lp.counter_base ^ ".*" else lp.counter_base
  in
  let step = lp.step_text in
  let incl = if lp.inclusive then "1" else "0" in
  let b = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  List.iter (fun x -> bpf "    var %s = undefined;\n" x) priv;
  List.iter
    (fun x -> bpf "    var %s = %s;\n" x (Outline.value_text x))
    fp;
  List.iter
    (fun (op, x) ->
      bpf "    var %s = %s;\n" (red_tmp x) (Directive.red_op_identity op))
    reds;
  bpf "    var __omp_iv = undefined;\n";
  (* For collapse(n) the worksharing runs over the fused linear space
     [0, product of all trip counts) and the n original counters are
     recovered by division/modulo per iteration: counter k is
     [lb_k + ((iv / d_k) % n_k) * step_k], where the divisor [d_k] is
     the product of the trip counts of the levels nested inside k. *)
  let counter_value, upper_text, step, incl, cont_text =
    if not collapsed then (counter_value, upper_text, step, incl, cont_text)
    else begin
      bpf "    var __omp_lb0 = %s;\n" counter_value;
      List.iteri
        (fun idx (init_expr, _) ->
          bpf "    var __omp_lb%d = %s;\n" (idx + 1) (rw init_expr))
        nest_levels;
      bpf "    var __omp_n0 = __omp_trips(__omp_lb0, %s, %s, %s);\n"
        upper_text step incl;
      List.iteri
        (fun idx (_, ilp) ->
          let k = idx + 1 in
          bpf "    var __omp_n%d = __omp_trips(__omp_lb%d, %s, %s, %s);\n"
            k k (rw ilp.upper) ilp.step_text
            (if ilp.inclusive then "1" else "0"))
        nest_levels;
      bpf "    var __omp_d%d = 1;\n" (depth - 1);
      for k = depth - 2 downto 0 do
        bpf "    var __omp_d%d = __omp_d%d * __omp_n%d;\n" k (k + 1) (k + 1)
      done;
      (* Initialised to 0, not [undefined]: the recovery statements
         assign every counter before any read, but the bytecode tier
         observes captured slots at drain entry and an [undefined]
         value has no register kind — it would force a bailout. *)
      for k = 0 to depth - 1 do
        bpf "    var %s = 0;\n" (cname k)
      done;
      ("0", "__omp_n0 * __omp_d0", "1", "0", "__omp_iv += 1")
    end
  in
  (* Inside the claimed range, a collapsed loop recovers the counters
     from the linear index before running the body. *)
  let body_text =
    if not collapsed then body_text
    else begin
      let buf = Buffer.create 256 in
      Buffer.add_string buf "{\n";
      let steps =
        lp.step_text :: List.map (fun (_, ilp) -> ilp.step_text) nest_levels
      in
      List.iteri
        (fun k step_k ->
          Buffer.add_string buf
            (Printf.sprintf
               "            %s = __omp_lb%d + ((__omp_iv / __omp_d%d) %% \
                __omp_n%d) * (%s);\n"
               (cname k) k k k step_k))
        steps;
      Buffer.add_string buf
        (Printf.sprintf "            %s\n        }" body_text);
      Buffer.contents buf
    end
  in
  (match cl.schedule with
   | None | Some (Omp_model.Sched.Static None) | Some Omp_model.Sched.Auto ->
       bpf "    var __omp_ws = __kmpc_for_static_init(%s, %s, %s, %s);\n"
         counter_value upper_text step incl;
       bpf "    if (__omp_ws.has) {\n";
       bpf "        __omp_iv = __omp_ws.lower;\n";
       bpf "        while (__omp_ws_cmp(__omp_iv, __omp_ws.upper, %s)) : \
            (%s) %s\n" step cont_text body_text;
       bpf "    }\n";
       bpf "    __kmpc_for_static_fini();\n"
   | Some sched ->
       let init_fn =
         match sched with
         | Omp_model.Sched.Static (Some _) -> "__kmpc_static_chunked_init"
         | Omp_model.Sched.Dynamic _ -> "__kmpc_dispatch_init_dynamic"
         | Omp_model.Sched.Guided _ -> "__kmpc_dispatch_init_guided"
         | Omp_model.Sched.Runtime -> "__kmpc_dispatch_init_runtime"
         | Omp_model.Sched.Static None | Omp_model.Sched.Auto ->
             assert false
       in
       let chunk =
         match Omp_model.Sched.chunk sched with
         | Some c -> string_of_int c
         | None -> "1"
       in
       bpf "    var __omp_h = %s(%s, %s, %s, %s, %s);\n" init_fn
         counter_value upper_text step chunk incl;
       bpf "    var __omp_c = __kmpc_dispatch_next(__omp_h);\n";
       bpf "    while (__omp_c.more) : \
            (__omp_c = __kmpc_dispatch_next(__omp_h)) {\n";
       bpf "        __omp_iv = __omp_c.lower;\n";
       bpf "        while (__omp_ws_cmp(__omp_iv, __omp_c.upper, %s)) : \
            (%s) %s\n" step cont_text body_text;
       bpf "    }\n");
  List.iter
    (fun (op, x) ->
      bpf "    __kmpc_critical(\"__omp_reduction\");\n";
      bpf "    %s\n" (combine_expr op (Outline.value_text x) (red_tmp x));
      bpf "    __kmpc_end_critical(\"__omp_reduction\");\n")
    reds;
  if not cl.flags.Packed.nowait then bpf "    __kmpc_barrier();\n";
  bpf "}";
  let dir_start, _ = Synth.node_bytes c dir in
  let _, wh_stop = Synth.node_bytes c wh in
  { Synth.start = dir_start; stop = wh_stop; text = Buffer.contents b }

(** One round of the pass; [None] when no worksharing directive found. *)
let run ?(name = "<input>") (source : string) : string option =
  let src = Source.of_string ~name source in
  let ast, spans = Parser.parse src in
  let c = { Synth.ast; spans } in
  match Names.omp_nodes ast (fun tag -> tag = Ast.Omp_for) with
  | [] -> None
  | dirs ->
      (* Skip directives nested inside another worksharing loop's range
         this round (inner loops are handled by the next round). *)
      let outermost =
        Synth.outermost (List.map (fun d -> (d, Synth.node_bytes c d)) dirs)
      in
      Some
        (Synth.apply_replacements source
           (List.map (plan_loop c) outermost))

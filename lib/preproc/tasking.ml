(** Pass: deferred tasking and sections worksharing.

    Runs after region outlining and worksharing loops, so by the time a
    [task] body is inspected every variable that was shared in an
    enclosing region is already a pointer rebinding ([x__ptr]).  That
    makes OpenMP's task data-environment defaults fall out of one rule:
    capture everything the body references *by value*.  A pointer
    rebinding copied by value still points at the shared variable —
    the task sees it shared — while a plain local copied by value is a
    snapshot at creation time, i.e. firstprivate, exactly the default
    the specification gives tasks for variables not shared in the
    enclosing context.

    [task] outlines its body into [fn __omp_task_N(fp, sh)] and replaces
    the construct with [__kmpc_omp_task(__omp_task_N, .{...}, .{...})];
    the runtime defers the closure to the work-stealing deques (or runs
    it undeferred on serial teams).  [taskwait] is a direct runtime
    call.  [taskloop grainsize(g)] tiles the iteration space into
    ceil(trips/g) chunks, emits one [//$omp task] per chunk (lowered by
    the next round of this same pass) and closes with a taskwait.
    [sections] reuses the dynamic-dispatch protocol over the section
    indices [0, n) with chunk 1, so the checker's existing dispatch
    decision points cover which thread runs which section. *)

open Zr

module Sset = Names.Sset

let task_tags = function
  | Ast.Omp_task | Ast.Omp_taskwait | Ast.Omp_taskloop | Ast.Omp_sections
  | Ast.Omp_section -> true
  | _ -> false

type plan = {
  replacement : Synth.replacement;
  outlined : string option;  (** task function to append, if any *)
}

(* --------------------------- capture model -------------------------- *)

(** How one variable crosses into a task body.  This partition is the
    single source of truth for task data environments: {!plan_task}
    renders the outline from it, and the static analyser
    ({!Analyze.Taskgraph}) consumes the same lists so both layers agree
    on which cells a deferred body can share with its creator. *)
type capture = {
  cname : string;
  corigin : [ `Private | `Firstprivate | `Shared | `Implicit ];
      (** the clause that scoped the name, or [`Implicit] for the
          by-value default *)
  cby : [ `Value | `Ref | `Privatised ];
      (** [`Value]: snapshot at creation (firstprivate semantics; for a
          pointer rebinding the pointee stays shared).  [`Ref]: captured
          by address — the task aliases the creator's cell.
          [`Privatised]: fresh uninitialised task-local storage. *)
}

(** The capture list of a [task]-family construct (anything with a
    governed body and task data-environment defaults: [task] and
    [taskloop]).  Works on both the original source (analysis time,
    where enclosing-shared names are still plain) and the
    post-outlining source (lowering time, where they are [__ptr]
    rebindings) — the partition rule is the same. *)
let captures (c : Synth.ctx) dir : capture list =
  let ast = c.Synth.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let body = node.Ast.rhs in
  let name_of = Synth.ident_name c in
  let priv = List.map name_of cl.private_ in
  let fp = List.map name_of cl.firstprivate in
  let sh_explicit = List.map name_of cl.shared in
  let declared = Names.declared_under ast body in
  let referenced = Names.referenced_under ast body in
  let globals = Names.globals ast in
  let explicit = Sset.of_list (priv @ fp @ sh_explicit) in
  let implicit =
    Sset.elements
      Sset.(diff (diff (diff referenced declared) globals) explicit)
  in
  List.map (fun x -> { cname = x; corigin = `Private; cby = `Privatised })
    priv
  @ List.map (fun x -> { cname = x; corigin = `Firstprivate; cby = `Value })
      fp
  @ List.map
      (fun x ->
        (* shared(x__ptr) names a pointer rebinding: copying the pointer
           keeps the pointee shared; a plain local must be captured by
           address *)
        { cname = x; corigin = `Shared;
          cby = (if Outline.is_ptr_name x then `Value else `Ref) })
      sh_explicit
  @ List.map (fun x -> { cname = x; corigin = `Implicit; cby = `Value })
      implicit

let stmt_plan c dir text =
  let node = Ast.node c.Synth.ast dir in
  let dir_start, _ = Synth.node_bytes c dir in
  let stop =
    if node.Ast.rhs = 0 then snd (Synth.node_bytes c dir)
    else snd (Synth.node_bytes c node.Ast.rhs)
  in
  { replacement = { Synth.start = dir_start; stop; text }; outlined = None }

(* ------------------------------- task ----------------------------- *)

let plan_task (c : Synth.ctx) ~counter dir : plan =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let body = node.Ast.rhs in
  let caps = captures c dir in
  let sel p = List.filter_map (fun x -> if p x then Some x.cname else None) in
  let priv = sel (fun x -> x.corigin = `Private) caps in
  let fp = sel (fun x -> x.corigin = `Firstprivate) caps in
  (* An explicit shared(x__ptr) names a variable that is already a
     pointer rebinding: copying the pointer keeps the pointee shared,
     no rewrite needed — same treatment as the implicit captures.  A
     plain shared(s) local must be captured by address with the body
     rewritten to pointer accesses, as in region outlining. *)
  let sh_plain = sel (fun x -> x.corigin = `Shared && x.cby = `Ref) caps in
  let sh_ptr = sel (fun x -> x.corigin = `Shared && x.cby = `Value) caps in
  let implicit = sel (fun x -> x.corigin = `Implicit) caps in
  let byval = implicit @ sh_ptr in
  (* Explicit firstprivate/private of a pointer rebinding rebinds the
     name to a task-local value; the body's [x__ptr.*] accesses fold
     back to the plain name by swallowing the dereference. *)
  let folded =
    Sset.of_list (List.filter Outline.is_ptr_name (fp @ priv))
  in
  let fn_name = Printf.sprintf "__omp_task_%d" counter in
  (* ---- creation site ---- *)
  let field_list names f = String.concat ", " (List.map f names) in
  let fp_fields =
    field_list
      (List.map (fun x -> (x, Outline.value_text x)) fp
       @ List.map (fun x -> (x, x)) byval)
      (fun (x, v) -> Printf.sprintf ".%s = %s" x v)
  in
  let sh_fields =
    field_list sh_plain
      (fun x -> Printf.sprintf ".%s = &%s" x (Outline.value_text x))
  in
  let text =
    Printf.sprintf "__kmpc_omp_task(%s, .{ %s }, .{ %s });"
      fn_name fp_fields sh_fields
  in
  let dir_start, _ = Synth.node_bytes c dir in
  let _, body_stop = Synth.node_bytes c body in
  let replacement =
    { Synth.start = dir_start; stop = body_stop; text }
  in
  (* ---- outlined task function ---- *)
  let sh_set = Sset.of_list sh_plain in
  let body_text =
    Synth.rewrite_range c
      ~first_token:(Synth.node_first_token c body)
      ~last_token:(Synth.node_last_token c body)
      ~consume_deref:(fun name -> Sset.mem name folded)
      ~code:(fun name ->
        if Sset.mem name sh_set then
          Some (name ^ Outline.ptr_suffix ^ ".*")
        else if Sset.mem name folded then Some name
        else None)
      ~pragma:(fun name ->
        if Sset.mem name sh_set then Some (name ^ Outline.ptr_suffix)
        else None)
      ()
  in
  let o = Buffer.create 256 in
  let opf fmt = Printf.ksprintf (Buffer.add_string o) fmt in
  opf "fn %s(fp: anytype, sh: anytype) void {\n" fn_name;
  List.iter (fun x -> opf "    var %s = fp.%s;\n" x x) (fp @ byval);
  List.iter
    (fun x -> opf "    var %s%s = sh.%s;\n" x Outline.ptr_suffix x)
    sh_plain;
  List.iter (fun x -> opf "    var %s = undefined;\n" x) priv;
  let body_text =
    if (Ast.node ast body).Ast.tag = Ast.Block then body_text
    else "{ " ^ body_text ^ " }"
  in
  opf "    %s\n" body_text;
  opf "}\n";
  { replacement; outlined = Some (Buffer.contents o) }

(* ----------------------------- taskloop --------------------------- *)

let plan_taskloop (c : Synth.ctx) dir : plan =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let wh = node.Ast.rhs in
  let lp = Loops.decompose c dir wh in
  let g = max 1 cl.grainsize in
  let name_of = Synth.ident_name c in
  let priv = List.map name_of cl.private_ in
  let fp = List.map name_of cl.firstprivate in
  (* privatise the counter into the per-task induction variable *)
  let map name =
    if name = lp.Loops.counter_base then Some "__omp_tl_iv" else None
  in
  let rw n =
    Synth.rewrite_range c
      ~first_token:(Synth.node_first_token c n)
      ~last_token:(Synth.node_last_token c n)
      ~consume_deref:(fun name -> map name <> None)
      ~code:map ~pragma:map ()
  in
  let upper_text = rw lp.Loops.upper in
  let body_text = rw lp.Loops.body in
  let counter_value =
    if lp.Loops.counter_is_ptr then lp.Loops.counter_base ^ ".*"
    else lp.Loops.counter_base
  in
  let step = lp.Loops.step_text in
  let incl = if lp.Loops.inclusive then "1" else "0" in
  let clause_text =
    Synth.print_list_clause "firstprivate" fp
    ^ Synth.print_list_clause "private" priv
  in
  let b = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  bpf "    var __omp_tl_lb = %s;\n" counter_value;
  bpf "    var __omp_tl_trips = __omp_trips(__omp_tl_lb, %s, %s, %s);\n"
    upper_text step incl;
  bpf "    var __omp_tl_done = 0;\n";
  bpf "    while (__omp_tl_done < __omp_tl_trips) : \
       (__omp_tl_done += %d) {\n" g;
  bpf "        var __omp_tl_first = __omp_tl_done;\n";
  bpf "        //$omp task%s\n" clause_text;
  bpf "        {\n";
  bpf "            var __omp_tl_stop = __omp_min(__omp_tl_first + %d, \
       __omp_tl_trips);\n" g;
  bpf "            var __omp_tl_k = __omp_tl_first;\n";
  bpf "            while (__omp_tl_k < __omp_tl_stop) : \
       (__omp_tl_k += 1) {\n";
  bpf "                var __omp_tl_iv = __omp_tl_lb + __omp_tl_k * (%s);\n"
    step;
  bpf "                %s\n" body_text;
  bpf "            }\n";
  bpf "        }\n";
  bpf "    }\n";
  bpf "    __kmpc_omp_taskwait();\n";
  bpf "}";
  let dir_start, _ = Synth.node_bytes c dir in
  let _, wh_stop = Synth.node_bytes c wh in
  { replacement =
      { Synth.start = dir_start; stop = wh_stop; text = Buffer.contents b };
    outlined = None }

(* ----------------------------- sections --------------------------- *)

let plan_sections (c : Synth.ctx) dir : plan =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let block = node.Ast.rhs in
  let name_of = Synth.ident_name c in
  let priv = List.map name_of cl.private_ in
  let fp = List.map name_of cl.firstprivate in
  let bodies =
    List.map
      (fun s -> (Ast.node ast s).Ast.rhs)
      (Ast.block_stmts ast block)
  in
  let n = List.length bodies in
  let b = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  List.iter (fun x -> bpf "    var %s = undefined;\n" x) priv;
  List.iter
    (fun x -> bpf "    var %s = %s;\n" x (Outline.value_text x))
    fp;
  bpf "    var __omp_h = __kmpc_dispatch_init_dynamic(0, %d, 1, 1, 0);\n" n;
  bpf "    var __omp_c = __kmpc_dispatch_next(__omp_h);\n";
  bpf "    while (__omp_c.more) : \
       (__omp_c = __kmpc_dispatch_next(__omp_h)) {\n";
  bpf "        var __omp_sec = __omp_c.lower;\n";
  bpf "        while (__omp_ws_cmp(__omp_sec, __omp_c.upper, 1)) : \
       (__omp_sec += 1) {\n";
  List.iteri
    (fun i body ->
      bpf "            %sif (__omp_sec == %d) {\n%s\n            }\n"
        (if i = 0 then "" else "else ")
        i (Synth.node_text c body))
    bodies;
  bpf "        }\n";
  bpf "    }\n";
  if not cl.flags.Ompfront.Packed.nowait then bpf "    __kmpc_barrier();\n";
  bpf "}";
  let dir_start, _ = Synth.node_bytes c dir in
  let _, block_stop = Synth.node_bytes c block in
  { replacement =
      { Synth.start = dir_start; stop = block_stop;
        text = Buffer.contents b };
    outlined = None }

(* ------------------------------- pass ----------------------------- *)

let plan_one (c : Synth.ctx) ~counter dir : plan =
  let node = Ast.node c.Synth.ast dir in
  match node.Ast.tag with
  | Ast.Omp_task ->
      let k = !counter in
      incr counter;
      plan_task c ~counter:k dir
  | Ast.Omp_taskwait -> stmt_plan c dir "__kmpc_omp_taskwait();"
  | Ast.Omp_taskloop -> plan_taskloop c dir
  | Ast.Omp_sections -> plan_sections c dir
  | Ast.Omp_section ->
      Source.error c.Synth.ast.Ast.source
        (Ast.token c.Synth.ast node.Ast.main_token).Token.start
        "orphaned '//$omp section': section directives are only valid \
         directly inside a sections block"
  | _ -> assert false

(** One round of the pass; [None] when no tasking directive was found.
    [counter] supplies unique task-function indices across rounds. *)
let run ?(name = "<input>") ~counter (source : string) : string option =
  let src = Source.of_string ~name source in
  let ast, spans = Parser.parse src in
  let c = { Synth.ast; spans } in
  match Names.omp_nodes ast task_tags with
  | [] -> None
  | dirs ->
      (* Outermost-first: a sections construct consumes its nested
         section nodes, a task body keeps its nested pragmas verbatim
         for the next round. *)
      let outermost =
        Synth.outermost (List.map (fun d -> (d, Synth.node_bytes c d)) dirs)
      in
      let plans = List.map (plan_one c ~counter) outermost in
      let rewritten =
        Synth.apply_replacements source
          (List.map (fun p -> p.replacement) plans)
      in
      let appended =
        List.filter_map (fun p -> p.outlined) plans
      in
      Some
        (match appended with
         | [] -> rewritten
         | fns -> rewritten ^ "\n" ^ String.concat "\n" fns)

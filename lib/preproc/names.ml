(** Identifier analysis over the Zr AST.

    The preprocessor has no semantic context (paper section III-B3) but
    Zr, like Zig, has a simple grammar and no shadowing, so variable
    identity reduces to comparing identifier text — "two identifiers in
    the same scope will always refer to the same entity as long as
    neither is preceded by a period".  These walks classify identifier
    occurrences into variable references, declarations, callee heads and
    field/namespace accesses. *)

open Zr

(** Child node indices of [i], in source order. *)
let children (t : Ast.t) i : int list =
  let n = Ast.node t i in
  let e k = Ast.extra t k in
  match n.Ast.tag with
  | Ast.Root -> Ast.extra_slice t n.lhs n.rhs
  | Ast.Fn_decl ->
      (* proto: [count; (name tok, type node)*; ret type] *)
      let count = e n.lhs in
      let types =
        List.init count (fun k -> e (n.lhs + 2 + (2 * k)))
      in
      types @ [ e (n.lhs + 1 + (2 * count)); n.rhs ]
  | Ast.Block -> Ast.extra_slice t n.lhs n.rhs
  | Ast.Var_decl | Ast.Const_decl ->
      List.filter (fun x -> x <> 0) [ n.lhs; n.rhs ]
  | Ast.Assign -> [ n.lhs; n.rhs ]
  | Ast.While ->
      let cont = e n.rhs and body = e (n.rhs + 1) in
      n.lhs :: (List.filter (fun x -> x <> 0) [ cont ] @ [ body ])
  | Ast.If ->
      let then_ = e n.rhs and else_ = e (n.rhs + 1) in
      n.lhs :: then_ :: List.filter (fun x -> x <> 0) [ else_ ]
  | Ast.Return -> List.filter (fun x -> x <> 0) [ n.lhs ]
  | Ast.Break | Ast.Continue -> []
  | Ast.Expr_stmt -> [ n.lhs ]
  | Ast.Bin_op -> [ n.lhs; n.rhs ]
  | Ast.Un_op | Ast.Deref | Ast.Addr_of -> [ n.lhs ]
  | Ast.Call -> n.lhs :: Ast.call_args t i
  | Ast.Index -> [ n.lhs; n.rhs ]
  | Ast.Field -> [ n.lhs ]
  | Ast.Ident | Ast.Int_lit | Ast.Float_lit | Ast.String_lit
  | Ast.Bool_lit | Ast.Undefined_lit -> []
  | Ast.Struct_lit ->
      let count = e n.rhs in
      List.init count (fun k -> e (n.rhs + 2 + (2 * k)))
  | Ast.Type_name -> []
  | Ast.Type_slice | Ast.Type_ptr -> [ n.lhs ]
  | Ast.Omp_parallel | Ast.Omp_for | Ast.Omp_parallel_for
  | Ast.Omp_critical | Ast.Omp_master | Ast.Omp_single | Ast.Omp_atomic
  | Ast.Omp_task | Ast.Omp_taskloop | Ast.Omp_sections | Ast.Omp_section ->
      List.filter (fun x -> x <> 0) [ n.rhs ]
  | Ast.Omp_barrier | Ast.Omp_taskwait | Ast.Omp_threadprivate -> []

(** Depth-first walk calling [f] on every node index under [i]
    (including [i]). *)
let rec walk t i f =
  f i;
  List.iter (fun c -> walk t c f) (children t i)

module Sset = Set.Make (String)

(** Names declared by [var]/[const] statements anywhere under [i]. *)
let declared_under (t : Ast.t) i : Sset.t =
  let acc = ref Sset.empty in
  walk t i (fun j ->
      let n = Ast.node t j in
      match n.Ast.tag with
      | Ast.Var_decl | Ast.Const_decl ->
          acc := Sset.add (Ast.token_text t n.main_token) !acc
      | _ -> ());
  !acc

(** Variable references under [i]: identifiers in expression position —
    excluding callee heads ([f] in [f(...)]), field names, and anything
    on the left of a '.' (namespace heads like [omp]). *)
let referenced_under (t : Ast.t) i : Sset.t =
  let acc = ref Sset.empty in
  let rec go j ~as_callee ~as_field_base =
    let n = Ast.node t j in
    match n.Ast.tag with
    | Ast.Ident ->
        if not as_callee && not as_field_base then
          acc := Sset.add (Ast.token_text t n.main_token) !acc
    | Ast.Call ->
        go n.lhs ~as_callee:true ~as_field_base:false;
        List.iter
          (fun a -> go a ~as_callee:false ~as_field_base:false)
          (Ast.call_args t j)
    | Ast.Field ->
        (* the base of a field access names a namespace or a struct
           parameter, never a captured scalar *)
        go n.lhs ~as_callee:false ~as_field_base:true
    | _ ->
        List.iter
          (fun c -> go c ~as_callee:false ~as_field_base:false)
          (children t j)
  in
  go i ~as_callee:false ~as_field_base:false;
  !acc

(** Top-level names (functions and globals): these are shared without
    capture, exactly as in Zig, so the outliner must not capture them. *)
let globals (t : Ast.t) : Sset.t =
  List.fold_left
    (fun acc d ->
      let n = Ast.node t d in
      match n.Ast.tag with
      | Ast.Fn_decl | Ast.Var_decl | Ast.Const_decl ->
          Sset.add (Ast.token_text t n.main_token) acc
      | _ -> acc)
    Sset.empty (Ast.top_decls t)

(** All OpenMP directive nodes with a given tag predicate, in source
    order. *)
let omp_nodes (t : Ast.t) pred : int list =
  let acc = ref [] in
  walk t 0 (fun j ->
      if pred (Ast.node t j).Ast.tag then acc := j :: !acc);
  List.sort compare !acc

(** Passes for the remaining constructs: the combined-construct split
    and the synchronisation directives.

    [split_combined] runs before the parallel pass and rewrites each
    [parallel for] into a [parallel] region wrapping a [for] loop,
    distributing the clauses to the construct they belong to (data
    sharing and reductions to the region; schedule, nowait and collapse
    to the loop).

    [run_sync] runs last and lowers [barrier], [critical], [master],
    [single] and [atomic] to runtime calls. *)

open Zr

open Ompfront

let clauses_for_parallel (c : Synth.ctx) (cl : Directive.clauses) =
  let name_of = Synth.ident_name c in
  let names = List.map name_of in
  String.concat ""
    [ Synth.print_default cl.flags.Packed.default;
      (if cl.num_threads = 0 then ""
       else Printf.sprintf " num_threads(%s)" (Synth.node_text c cl.num_threads));
      Synth.print_list_clause "private" (names cl.private_);
      Synth.print_list_clause "firstprivate" (names cl.firstprivate);
      Synth.print_list_clause "shared" (names cl.shared);
      Synth.print_reductions
        (List.map (fun (op, n) -> (op, name_of n)) cl.reductions);
    ]

let clauses_for_loop (cl : Directive.clauses) =
  String.concat ""
    [ Synth.print_schedule cl.schedule;
      (if cl.flags.Packed.nowait then " nowait" else "");
      (if cl.flags.Packed.collapse > 1 then
         Printf.sprintf " collapse(%d)" cl.flags.Packed.collapse
       else "");
    ]

let split_one (c : Synth.ctx) dir : Synth.replacement =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let wh = node.Ast.rhs in
  let wh_text = Synth.node_text c wh in
  let text =
    Printf.sprintf "//$omp parallel%s\n{\n//$omp for%s\n%s\n}"
      (clauses_for_parallel c cl)
      (clauses_for_loop cl)
      wh_text
  in
  let dir_start, _ = Synth.node_bytes c dir in
  let _, wh_stop = Synth.node_bytes c wh in
  { Synth.start = dir_start; stop = wh_stop; text }

let split_combined ?(name = "<input>") (source : string) : string option =
  let src = Source.of_string ~name source in
  let ast, spans = Parser.parse src in
  let c = { Synth.ast; spans } in
  match Names.omp_nodes ast (fun tag -> tag = Ast.Omp_parallel_for) with
  | [] -> None
  | dirs ->
      Some (Synth.apply_replacements source (List.map (split_one c) dirs))

(* ------------------------------------------------------------------ *)

let sync_tags = function
  | Ast.Omp_barrier | Ast.Omp_critical | Ast.Omp_master | Ast.Omp_single
  | Ast.Omp_atomic -> true
  | _ -> false

let lower_sync (c : Synth.ctx) dir : Synth.replacement =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let stmt_text () = Synth.node_text c node.Ast.rhs in
  let text =
    match node.Ast.tag with
    | Ast.Omp_barrier -> "__kmpc_barrier();"
    | Ast.Omp_critical ->
        let name =
          if cl.critical_name = 0 then "__omp_critical_unnamed"
          else Ast.token_text ast cl.critical_name
        in
        Printf.sprintf "{\n__kmpc_critical(\"%s\");\n%s\n__kmpc_end_critical(\"%s\");\n}"
          name (stmt_text ()) name
    | Ast.Omp_master ->
        Printf.sprintf "if (__omp_get_thread_num() == 0) %s" (stmt_text ())
    | Ast.Omp_single when cl.copyprivate <> [] ->
        (* copyprivate forbids nowait: the broadcast needs the implied
           barrier between the claimer's put and everyone's get *)
        let cp = List.map (Synth.ident_name c) cl.copyprivate in
        let fields =
          String.concat ", "
            (List.map
               (fun x ->
                 Printf.sprintf ".%s = %s" x (Outline.value_text x))
               cp)
        in
        let assigns =
          String.concat "\n"
            (List.map
               (fun x ->
                 Printf.sprintf "%s = __omp_cp.%s;"
                   (Outline.value_text x) x)
               cp)
        in
        Printf.sprintf
          "{\nif (__kmpc_single()) {\n%s\n__kmpc_copyprivate_put(.{ %s \
           });\n__kmpc_end_single();\n}\n__kmpc_barrier();\nvar __omp_cp \
           = __kmpc_copyprivate_get();\n%s\n}"
          (stmt_text ()) fields assigns
    | Ast.Omp_single ->
        let barrier =
          if cl.flags.Packed.nowait then "" else "\n__kmpc_barrier();"
        in
        Printf.sprintf
          "{\nif (__kmpc_single()) {\n%s\n__kmpc_end_single();\n}%s\n}"
          (stmt_text ()) barrier
    | Ast.Omp_atomic ->
        Printf.sprintf "{\n__kmpc_atomic_begin();\n%s\n__kmpc_atomic_end();\n}"
          (stmt_text ())
    | _ -> assert false
  in
  let dir_start, _ = Synth.node_bytes c dir in
  let stop =
    if node.Ast.rhs = 0 then snd (Synth.node_bytes c dir)
    else snd (Synth.node_bytes c node.Ast.rhs)
  in
  { Synth.start = dir_start; stop; text }

let run_sync ?(name = "<input>") (source : string) : string option =
  let src = Source.of_string ~name source in
  let ast, spans = Parser.parse src in
  let c = { Synth.ast; spans } in
  match Names.omp_nodes ast sync_tags with
  | [] -> None
  | dirs ->
      (* Outermost-first; nested sync constructs are handled by later
         rounds of the same pass. *)
      let outermost =
        Synth.outermost (List.map (fun d -> (d, Synth.node_bytes c d)) dirs)
      in
      Some
        (Synth.apply_replacements source (List.map (lower_sync c) outermost))

(** The preprocessor driver — the paper's Listing 5.

    Each step parses the current source, collects the replacement
    payloads for the constructs it handles, performs the replacements
    (offset adjustment falls out of rebuilding the text), and hands the
    result to the next step: all parallel regions are replaced before
    worksharing loops, so nested constructs of different types need no
    special handling.  Steps run to a fixpoint so that constructs
    exposed by a replacement (e.g. a loop inside a freshly outlined
    function, or a nested region) are caught by a following round. *)

open Zr

type step =
  | Loop_transforms
  | Split_combined
  | Parallel_regions
  | Worksharing_loops
  | Tasking
  | Sync

(* Loop transforms run first: refusal diagnostics keep the user's
   original source coordinates, counters are still plain identifiers
   (not yet [x__ptr.*] captures), and the combined split's clause
   printer never needs to learn the transform clauses.  Tasking runs
   after region outlining so enclosing-shared variables are already
   pointer rebindings — which is what makes by-value capture the right
   default for task bodies (see {!Tasking}). *)
let steps =
  [ Loop_transforms; Split_combined; Parallel_regions;
    Worksharing_loops; Tasking; Sync ]

let step_to_string = function
  | Loop_transforms -> "loop transformations"
  | Split_combined -> "split combined constructs"
  | Parallel_regions -> "parallel regions"
  | Worksharing_loops -> "worksharing loops"
  | Tasking -> "tasking and sections"
  | Sync -> "synchronisation constructs"

(* Fixpoint guard: a replacement can expose at most a handful of nested
   constructs; anything deeper than this is a cycle. *)
let max_rounds = 64

let fixpoint (f : string -> string option) source =
  let rec go n source =
    if n > max_rounds then
      failwith "Preprocess: replacement rounds did not converge";
    match f source with
    | None -> source
    | Some source' -> go (n + 1) source'
  in
  go 0 source

(** [run ?name source] — the full pipeline: Zr with OpenMP pragmas in,
    plain Zr calling the [.omp.internal] runtime out. *)
let run ?(name = "<input>") (source : string) : string =
  let counter = ref 0 in
  let task_counter = ref 0 in
  List.fold_left
    (fun src step ->
      match step with
      | Loop_transforms -> fixpoint (Transform.run ~name) src
      | Split_combined -> fixpoint (Sync.split_combined ~name) src
      | Parallel_regions -> fixpoint (Outline.run ~name ~counter) src
      | Worksharing_loops -> fixpoint (Loops.run ~name) src
      | Tasking -> fixpoint (Tasking.run ~name ~counter:task_counter) src
      | Sync -> fixpoint (Sync.run_sync ~name) src)
    source steps

(** Preprocess and reparse, failing loudly if the synthesised program
    does not parse — a preprocessor bug, not a user error. *)
let run_checked ?(name = "<input>") (source : string) : string * Ast.t =
  let out = run ~name source in
  match Parser.parse_string ~name:(name ^ " (preprocessed)") out with
  | ast, _spans -> (out, ast)
  | exception Source.Error msg ->
      failwith
        (Printf.sprintf
           "Preprocess.run_checked: synthesised source does not parse \
            (%s).\n--- output ---\n%s" msg out)

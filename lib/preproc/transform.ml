(** Pass: loop-transformation clauses — [tile(sizes)], [unroll(n)],
    [interchange] — as legality-proven source rewrites.

    Runs {e first} in the preprocessor pipeline, before the combined
    split and outlining, so every refusal diagnostic still carries the
    user's original source coordinates and loop counters are still the
    plain identifiers the user wrote (after outlining they reappear as
    [x__ptr.*] captures).  Each transform is a pure source-to-source
    rewrite through {!Synth}: the pragma is re-emitted byte-identically
    minus its transform clauses, the loop text is synthesised, and
    everything outside the replaced range is untouched.

    Legality is decided statically, in the style of Kruse & Finkel's
    transformation pragmas: the body's array subscripts are folded to
    literal-affine forms over the nest's counters, dependence distance
    vectors are computed with the same {!Omp_model.Depvec} arithmetic
    the analyser's SIV battery uses, and each transform demands its
    classical fact —

    - [interchange]: no [(<, >)] distance vector;
    - [unroll(n)] / [tile(t)]: every dependence carried by the grouped
      dimension has distance 0 or at least the factor;
    - two-dimensional [tile(t1, t2)] additionally demands interchange
      legality (the tile traversal reorders across the two loops).

    A transform whose facts cannot be established is {e refused}, never
    miscompiled: the clauses are stripped, a warning is printed once
    (under the [ZIGOMP_WARNINGS] gate), and the refusal is exposed to
    the static analyser as a PROVEN (provably illegal) or MAY
    (unprovable) record for the shared report.  [~force:true] applies a
    transform regardless of legality — the test suite uses it to show
    that a refused rewrite really does introduce the predicted race. *)

open Zr
open Ompfront

type verdict = Proven | May

type refusal = {
  verdict : verdict;
  clause : string;   (** "tile" | "unroll" | "interchange" | "transform" *)
  reason : string;
  line : int;        (** 1-based source line of the directive *)
}

let transform_cids =
  [ Directive.Ctile; Directive.Cunroll; Directive.Cinterchange ]

(* ------------------------------------------------------------------ *)
(* Warn-once plumbing, sharing the runtime's ZIGOMP_WARNINGS gate.     *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 8

(* For tests only: lets the warn-once latch be exercised repeatedly. *)
let forget_warnings () = Hashtbl.reset warned

let warn_once key fmt =
  Printf.ksprintf
    (fun msg ->
      if not (Hashtbl.mem warned key) then begin
        Hashtbl.add warned key ();
        if Omprt.Icv.warnings_enabled () then
          Printf.eprintf "zigomp: warning: %s\n%!" msg
      end)
    fmt

(* ------------------------------------------------------------------ *)
(* Loop-nest recovery.  [Loops.decompose] hard-fails on non-canonical
   loops (correct for the lowering pass); here the same shapes are a
   refusal, so the failures are caught.  Transforms additionally need a
   literal step whose sign agrees with the comparison direction.       *)

type loop = {
  counter : string;
  is_ptr : bool;
  op_incl : bool;           (* <= / >= rather than < / > *)
  op_up : bool;             (* counting up (< / <=) *)
  upper_text : string;
  upper_node : int;
  step : int;               (* literal step, sign included *)
  lb_lit : int option;      (* literal lower bound, when recoverable *)
  ub_lit : int option;
  body : int;               (* node: body block *)
  wh : int;                 (* node: the while itself *)
}

let literal_int (c : Synth.ctx) node : int option =
  let ast = c.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Int_lit -> int_of_string_opt (Ast.token_text ast n.Ast.main_token)
  | Ast.Un_op
    when (Ast.token ast n.Ast.main_token).Token.tag = Token.Minus -> (
      let l = Ast.node ast n.Ast.lhs in
      if l.Ast.tag <> Ast.Int_lit then None
      else
        match int_of_string_opt (Ast.token_text ast l.Ast.main_token) with
        | Some v -> Some (-v)
        | None -> None)
  | _ -> None

(* Recover one canonical counted loop.  [init] is the counter's
   initialisation expression node when the caller can see it (the inner
   loop of a nest); the outer counter is initialised before the pragma,
   out of reach. *)
let recover (c : Synth.ctx) dir wh ~(init : int option) :
    (loop, string) result =
  let ast = c.ast in
  match Loops.decompose c dir wh with
  | exception Source.Error _ -> Error "not a canonical counted loop"
  | lp -> (
      let wn = Ast.node ast wh in
      let cond = Ast.node ast wn.Ast.lhs in
      let op_up, op_incl =
        match (Ast.token ast cond.Ast.main_token).Token.tag with
        | Token.Lt -> (true, false)
        | Token.Lt_eq -> (true, true)
        | Token.Gt -> (false, false)
        | Token.Gt_eq -> (false, true)
        | _ -> (true, false) (* unreachable: decompose accepted it *)
      in
      let cont = Ast.extra ast wn.Ast.rhs in
      let cn = Ast.node ast cont in
      let step =
        match literal_int c cn.Ast.rhs with
        | None -> None
        | Some s -> (
            match (Ast.token ast cn.Ast.main_token).Token.tag with
            | Token.Plus_eq -> Some s
            | Token.Minus_eq -> Some (-s)
            | _ -> None)
      in
      match step with
      | None -> Error "the loop step is not an integer literal"
      | Some 0 -> Error "the loop step is zero"
      | Some s when (s > 0) <> op_up ->
          Error "the loop step runs against the comparison direction"
      | Some s ->
          let lb_lit =
            match init with Some e -> literal_int c e | None -> None
          in
          Ok
            { counter = lp.Loops.counter_base; is_ptr = lp.counter_is_ptr;
              op_incl; op_up; upper_text = Synth.node_text c lp.upper;
              upper_node = lp.upper; step = s;
              lb_lit; ub_lit = literal_int c lp.upper;
              body = lp.body; wh })

(* The canonical 2-nest under [outer]: body = [inner init; inner while].
   [Ok None] when the body is not a nest at all (fine for 1-D
   transforms); [Error] when it is a nest but the inner loop cannot be
   analysed. *)
let recover_nest (c : Synth.ctx) dir (outer : loop) :
    ((loop * int) option, string) result =
  match Loops.decompose_nest c dir outer.body with
  | exception Source.Error _ -> Ok None
  | init_expr, inner_wh -> (
      match recover c dir inner_wh ~init:(Some init_expr) with
      | Error e -> Error ("inner loop: " ^ e)
      | Ok inner -> Ok (Some (inner, init_expr)))

(* The outer counter's initialisation is the statement just before the
   pragma in its enclosing block, out of [Loops.decompose]'s reach;
   recover a literal value from it so trip counts can bound the
   dependence windows. *)
let outer_lb (c : Synth.ctx) dir ~counter : int option =
  let ast = c.ast in
  let found = ref None in
  Array.iteri
    (fun i (n : Ast.node) ->
      if !found = None && n.Ast.tag = Ast.Block then begin
        let rec prev_of = function
          | p :: d :: _ when d = dir -> Some p
          | _ :: tl -> prev_of tl
          | [] -> None
        in
        match prev_of (Ast.block_stmts ast i) with
        | None -> ()
        | Some prev -> (
            let p = Ast.node ast prev in
            match p.Ast.tag with
            | Ast.Var_decl
              when p.Ast.rhs <> 0
                   && Ast.token_text ast p.Ast.main_token = counter ->
                found := literal_int c p.Ast.rhs
            | Ast.Assign
              when (Ast.token ast p.Ast.main_token).Token.tag = Token.Eq
              ->
                let l = Ast.node ast p.Ast.lhs in
                if
                  l.Ast.tag = Ast.Ident
                  && Ast.token_text ast l.Ast.main_token = counter
                then found := literal_int c p.Ast.rhs
            | _ -> ())
      end)
    ast.Ast.nodes;
  !found

let trips (l : loop) : int option =
  match (l.lb_lit, l.ub_lit) with
  | Some lb, Some ub ->
      let last =
        if l.op_incl then ub else if l.step > 0 then ub - 1 else ub + 1
      in
      let d = if l.step > 0 then last - lb else lb - last in
      Some (if d < 0 then 0 else (d / abs l.step) + 1)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Literal-affine subscripts over the nest's counters:
   [co*outer + ci*inner + k], all coefficients integer literals.       *)

type lin = { co : int; ci : int; k : int }

let rec lin_of (c : Synth.ctx) ~outer ~inner node : lin option =
  let ast = c.ast in
  let n = Ast.node ast node in
  let counter_of name =
    if name = outer then Some { co = 1; ci = 0; k = 0 }
    else if inner = Some name then Some { co = 0; ci = 1; k = 0 }
    else None
  in
  match n.Ast.tag with
  | Ast.Int_lit -> (
      match int_of_string_opt (Ast.token_text ast n.Ast.main_token) with
      | Some v -> Some { co = 0; ci = 0; k = v }
      | None -> None)
  | Ast.Ident -> counter_of (Ast.token_text ast n.Ast.main_token)
  | Ast.Deref -> (
      let l = Ast.node ast n.Ast.lhs in
      if l.Ast.tag <> Ast.Ident then None
      else counter_of (Ast.token_text ast l.Ast.main_token))
  | Ast.Un_op when (Ast.token ast n.Ast.main_token).Token.tag = Token.Minus
    -> (
      match lin_of c ~outer ~inner n.Ast.lhs with
      | Some a -> Some { co = -a.co; ci = -a.ci; k = -a.k }
      | None -> None)
  | Ast.Bin_op -> (
      match
        (lin_of c ~outer ~inner n.Ast.lhs, lin_of c ~outer ~inner n.Ast.rhs)
      with
      | Some a, Some b -> (
          match (Ast.token ast n.Ast.main_token).Token.tag with
          | Token.Plus ->
              Some { co = a.co + b.co; ci = a.ci + b.ci; k = a.k + b.k }
          | Token.Minus ->
              Some { co = a.co - b.co; ci = a.ci - b.ci; k = a.k - b.k }
          | Token.Star ->
              if a.co = 0 && a.ci = 0 then
                Some { co = a.k * b.co; ci = a.k * b.ci; k = a.k * b.k }
              else if b.co = 0 && b.ci = 0 then
                Some { co = b.k * a.co; ci = b.k * a.ci; k = b.k * a.k }
              else None
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Body access collection.                                             *)

type access = { base : string; idx : lin option; w : bool; guarded : bool }

type facts = {
  mutable accs : access list;
  mutable blocker : string option;  (* shape making analysis impossible *)
  mutable locals : Names.Sset.t;
}

let pure_fns =
  [ "sqrt"; "log"; "exp"; "fabs"; "floor"; "int_of"; "float_of"; "len" ]

let omp_query_fns = [ "get_thread_num"; "get_num_threads" ]

let block fa reason = if fa.blocker = None then fa.blocker <- Some reason

(* Walk the (innermost) body of the nest.  Writes to any scalar that is
   not a body-local are a carried dependence of distance 1 we do not
   try to reason away; writes to the counters change the iteration
   space itself.  Both block every transform. *)
let collect (c : Synth.ctx) ~outer ~inner ~counters body : facts =
  let ast = c.ast in
  let fa = { accs = []; blocker = None; locals = Names.Sset.empty } in
  let base_name node =
    let n = Ast.node ast node in
    match n.Ast.tag with
    | Ast.Ident -> Some (Ast.token_text ast n.Ast.main_token)
    | Ast.Deref ->
        let l = Ast.node ast n.Ast.lhs in
        if l.Ast.tag = Ast.Ident then
          Some (Ast.token_text ast l.Ast.main_token)
        else None
    | _ -> None
  in
  let add ~w ~guarded node idx_node =
    match base_name node with
    | None -> block fa "unsupported array base expression"
    | Some base ->
        fa.accs <-
          { base; idx = lin_of c ~outer ~inner idx_node; w; guarded }
          :: fa.accs
  in
  let pure_callee node =
    let callee = Ast.node ast node in
    match callee.Ast.tag with
    | Ast.Ident ->
        List.mem (Ast.token_text ast callee.Ast.main_token) pure_fns
    | Ast.Field ->
        let base = Ast.node ast callee.Ast.lhs in
        base.Ast.tag = Ast.Ident
        && Ast.token_text ast base.Ast.main_token = "omp"
        && List.mem
             (Ast.token_text ast callee.Ast.main_token)
             omp_query_fns
    | _ -> false
  in
  let rec go ~guarded node =
    let n = Ast.node ast node in
    match n.Ast.tag with
    | Ast.Block -> List.iter (go ~guarded) (Ast.block_stmts ast node)
    | Ast.Var_decl | Ast.Const_decl ->
        fa.locals <-
          Names.Sset.add (Ast.token_text ast n.Ast.main_token) fa.locals;
        if n.Ast.rhs <> 0 then go_expr ~guarded n.Ast.rhs
    | Ast.Assign -> (
        let compound =
          (Ast.token ast n.Ast.main_token).Token.tag <> Token.Eq
        in
        let tgt = Ast.node ast n.Ast.lhs in
        (match tgt.Ast.tag with
         | Ast.Ident | Ast.Deref -> (
             match base_name n.Ast.lhs with
             | Some name when List.mem name counters ->
                 block fa
                   (Printf.sprintf
                      "the loop counter '%s' is written in the body" name)
             | Some name when Names.Sset.mem name fa.locals -> ()
             | Some name ->
                 block fa
                   (Printf.sprintf
                      "the scalar '%s' is written in the body (a carried \
                       dependence of distance 1)" name)
             | None -> block fa "unsupported assignment target")
         | Ast.Index ->
             add ~w:true ~guarded tgt.Ast.lhs tgt.Ast.rhs;
             if compound then add ~w:false ~guarded tgt.Ast.lhs tgt.Ast.rhs;
             go_expr ~guarded tgt.Ast.rhs
         | _ -> block fa "unsupported assignment target");
        go_expr ~guarded n.Ast.rhs)
    | Ast.If ->
        go_expr ~guarded n.Ast.lhs;
        let then_ = Ast.extra ast n.Ast.rhs in
        let else_ = Ast.extra ast (n.Ast.rhs + 1) in
        go ~guarded:true then_;
        if else_ <> 0 then go ~guarded:true else_
    | Ast.While -> block fa "a further nested loop inside the body"
    | Ast.Break | Ast.Continue -> block fa "loop-control flow in the body"
    | Ast.Return -> block fa "return inside the body"
    | Ast.Expr_stmt -> go_expr ~guarded n.Ast.lhs
    | _ -> block fa "unsupported statement in the body"
  and go_expr ~guarded node =
    let n = Ast.node ast node in
    match n.Ast.tag with
    | Ast.Index ->
        add ~w:false ~guarded n.Ast.lhs n.Ast.rhs;
        go_expr ~guarded n.Ast.rhs
    | Ast.Call ->
        if pure_callee n.Ast.lhs then
          List.iter (go_expr ~guarded) (Ast.call_args ast node)
        else block fa "a call with unknown effects in the body"
    | Ast.Bin_op ->
        go_expr ~guarded n.Ast.lhs;
        go_expr ~guarded n.Ast.rhs
    | Ast.Un_op | Ast.Deref | Ast.Addr_of -> go_expr ~guarded n.Ast.lhs
    | Ast.Ident | Ast.Int_lit | Ast.Float_lit | Ast.Bool_lit
    | Ast.Undefined_lit | Ast.Field -> ()
    | _ -> block fa "unsupported expression in the body"
  in
  go ~guarded:false body;
  fa

(* ------------------------------------------------------------------ *)
(* Dependence vectors.                                                 *)

(* Distance vectors of one subscript pair over the nest: the address
   advances [ao = co*step_outer] per outer iteration and
   [ai = ci*step_inner] per inner one; a dependence is an integer
   solution of [ao*di + ai*dj = k2 - k1] inside the iteration window.
   Families that ignore one counter are summarised by representative
   unit vectors in the free dimension.  [Error] when the vectors cannot
   be enumerated (non-literal inner bounds leave the dj window
   unbounded). *)
let pair_vectors ~ao ~ai ~to_ ~ti (l1 : lin) (l2 : lin) :
    ((int * int) list, string) result =
  let delta = l2.k - l1.k in
  let within_o di = match to_ with Some t -> abs di < t | None -> true in
  let within_i dj = match ti with Some t -> abs dj < t | None -> true in
  if ao = 0 && ai = 0 then
    if delta = 0 then
      (* the same cell on every iteration *)
      Ok [ (0, 1); (1, 0); (1, -1); (1, 1) ]
    else Ok []
  else if ai = 0 then
    match Omp_model.Depvec.siv_distance ~c1:l1.k ~c2:l2.k ~step:ao with
    | None -> Ok []
    | Some di when not (within_o di) -> Ok []
    | Some di -> Ok [ (di, 0); (di, 1); (di, -1) ]
  else if ao = 0 then
    match Omp_model.Depvec.siv_distance ~c1:l1.k ~c2:l2.k ~step:ai with
    | None -> Ok []
    | Some dj when not (within_i dj) -> Ok []
    | Some dj -> Ok [ (0, dj); (1, dj); (-1, dj) ]
  else
    match ti with
    | None -> Error "the inner loop bounds are not integer literals"
    | Some t ->
        (* enumerate dj over the inner window — solutions with
           |dj| >= t cannot be realised by the nest — and solve the
           linear relation for di *)
        if t > 32768 then Error "dependence window too large"
        else begin
          let out = ref [] in
          for dj = -(t - 1) to t - 1 do
            let rem = delta - (ai * dj) in
            if rem mod ao = 0 then begin
              let di = rem / ao in
              if within_o di && (di <> 0 || dj <> 0) then
                out := (di, dj) :: !out
            end
          done;
          Ok (List.rev !out)
        end

type deps = {
  vectors : (int * int) list;   (* deduped, normalised source-first *)
  all_unguarded : bool;         (* every contributing access unguarded *)
  exact : bool;                 (* no pair was dropped as unanalysable *)
  unknown : string option;      (* first reason a pair was dropped *)
}

let dependences ~(outer : loop) ~(inner : loop option) (fa : facts) : deps =
  let so = outer.step in
  let si = match inner with Some l -> l.step | None -> 1 in
  let to_ = trips outer in
  let ti = match inner with Some l -> trips l | None -> Some 1 in
  let accs = Array.of_list fa.accs in
  let n = Array.length accs in
  let vectors = ref [] and all_ung = ref true and unknown = ref None in
  let note_unknown r = if !unknown = None then unknown := Some r in
  for x = 0 to n - 1 do
    for y = x to n - 1 do
      let a = accs.(x) and b = accs.(y) in
      let self = x = y in
      if a.base = b.base && (a.w || b.w) && ((not self) || a.w) then begin
        match (a.idx, b.idx) with
        | None, _ | _, None ->
            note_unknown
              (Printf.sprintf
                 "a subscript of '%s' is not literal-affine in the loop \
                  counters" a.base)
        | Some l1, Some l2 ->
            if l1.co <> l2.co || l1.ci <> l2.ci then
              note_unknown
                (Printf.sprintf
                   "subscripts of '%s' have different counter \
                    coefficients" a.base)
            else (
              match
                pair_vectors ~ao:(l1.co * so) ~ai:(l1.ci * si) ~to_ ~ti l1
                  l2
              with
              | Error r -> note_unknown r
              | Ok vs ->
                  List.iter
                    (fun (di, dj) ->
                      if (di, dj) <> (0, 0) then begin
                        let v =
                          if di > 0 || (di = 0 && dj > 0) then (di, dj)
                          else (-di, -dj)
                        in
                        if not (List.mem v !vectors) then
                          vectors := v :: !vectors;
                        if a.guarded || b.guarded then all_ung := false
                      end)
                    vs)
      end
    done
  done;
  { vectors = !vectors; all_unguarded = !all_ung;
    exact = !unknown = None; unknown = !unknown }

(* ------------------------------------------------------------------ *)
(* Legality decisions.                                                 *)

let refuse ~line ~clause verdict reason = { verdict; clause; reason; line }

(* Refuse when [check] fails on the vectors (PROVEN if the vector set is
   exact and unguarded, MAY otherwise) or when a pair was unanalysable
   (always MAY: the missing vectors could be the violating ones). *)
let decide ~line ~clause (d : deps) check ~describe ~vectors :
    refusal option =
  if not (check vectors) then
    let verdict = if d.exact && d.all_unguarded then Proven else May in
    Some (refuse ~line ~clause verdict (describe vectors))
  else
    match d.unknown with
    | Some r -> Some (refuse ~line ~clause May r)
    | None -> None

let show_vec (di, dj) =
  Printf.sprintf "(%s, %s)"
    Omp_model.Depvec.(dir_to_string (dir_of_distance di))
    Omp_model.Depvec.(dir_to_string (dir_of_distance dj))

(* Two conditions: the classical one (no [(<, >)] vector — the swap
   must not reverse a dependence of the sequential nest), and a
   worksharing-specific one — the swap moves the [omp for] onto the old
   inner loop, so a dependence carried by it ([(=, <)] or [(=, >)]),
   harmless while each outer iteration ran on one thread, would now
   cross threads.  The user's pragma only ever asserted
   outer-parallelism; refusing keeps that contract. *)
let check_interchange ~line d =
  let ws_safe (d1, d2) = not (d1 = 0 && d2 <> 0) in
  decide ~line ~clause:"interchange" d
    (fun vs ->
      Omp_model.Depvec.interchange_legal vs && List.for_all ws_safe vs)
    ~vectors:d.vectors
    ~describe:(fun vs ->
      if not (Omp_model.Depvec.interchange_legal vs) then
        let bad =
          List.filter (fun (di, dj) -> di > 0 && dj < 0) vs
          |> List.map show_vec
          |> List.sort_uniq compare
        in
        Printf.sprintf
          "interchange would reverse a dependence with direction vector \
           %s"
          (String.concat ", " bad)
      else
        let bad =
          List.filter (fun v -> not (ws_safe v)) vs
          |> List.map show_vec
          |> List.sort_uniq compare
        in
        Printf.sprintf
          "interchange would move the worksharing onto a loop carrying \
           a dependence (direction vector %s)"
          (String.concat ", " bad))

(* Grouping legality of one dimension: dependences equal in this
   dimension but carried by the other loop are ordered there and do not
   constrain the grouping. *)
let check_group ~line ~clause ~which ~factor d =
  let dim = match which with `Outer -> fst | `Inner -> snd in
  let other = match which with `Outer -> snd | `Inner -> fst in
  let dists =
    List.filter_map
      (fun v ->
        if dim v = 0 && other v <> 0 then None else Some (dim v))
      d.vectors
  in
  decide ~line ~clause d
    (fun ds -> Omp_model.Depvec.group_legal ~factor ds)
    ~vectors:dists
    ~describe:(fun ds ->
      let bad =
        List.filter (fun x -> x <> 0 && abs x < factor) ds
        |> List.map (fun x -> string_of_int (abs x))
        |> List.sort_uniq compare
      in
      Printf.sprintf
        "a dependence carried at distance %s is shorter than the %s \
         factor %d"
        (String.concat ", " bad) clause factor)

(* ------------------------------------------------------------------ *)
(* Emission.                                                           *)

let op_str (l : loop) =
  match (l.op_up, l.op_incl) with
  | true, false -> "<"
  | true, true -> "<="
  | false, false -> ">"
  | false, true -> ">="

let strict_str (l : loop) = if l.step > 0 then "<" else ">"

let counter_value (l : loop) =
  if l.is_ptr then l.counter ^ ".*" else l.counter

(* [x += d] / [x -= d] with the literal kept positive. *)
let cont_str name d =
  if d >= 0 then Printf.sprintf "%s += %d" name d
  else Printf.sprintf "%s -= %d" name (-d)

(* [x + d] / [x - d] with the literal kept positive. *)
let offset_str name d =
  if d >= 0 then Printf.sprintf "%s + %d" name d
  else Printf.sprintf "%s - %d" name (-d)

(* Rewrite a node's text, mapping counter names and swallowing the
   [.*] of pointer counters. *)
let rw_counters (c : Synth.ctx) (map : (string * string) list) node =
  let subst name = List.assoc_opt name map in
  Synth.rewrite_range c
    ~first_token:(Synth.node_first_token c node)
    ~last_token:(Synth.node_last_token c node)
    ~consume_deref:(fun name -> List.mem_assoc name map)
    ~code:subst ~pragma:subst ()

(* The pragma text of [dir] with the transform clauses cut out. *)
let pragma_without (c : Synth.ctx) dir =
  let ast = c.ast in
  let dir_start, _ = Synth.node_bytes c dir in
  let wh = (Ast.node ast dir).Ast.rhs in
  let wh_start, _ = Synth.node_bytes c wh in
  let cuts =
    List.filter_map
      (fun cs ->
        if List.mem cs.Directive.cid transform_cids then
          Some (Ast.clause_span_bytes ast cs)
        else None)
      (Ast.clause_spans ast dir)
    |> List.sort compare
  in
  let buf = Buffer.create 80 in
  let cursor = ref dir_start in
  List.iter
    (fun (b, e) ->
      Buffer.add_string buf
        (Source.slice ast.Ast.source ~start:!cursor ~stop:b);
      cursor := e)
    cuts;
  Buffer.add_string buf
    (Source.slice ast.Ast.source ~start:!cursor ~stop:wh_start);
  Buffer.contents buf

(* unroll(u): multiply the step, keep the lead body, replicate the rest
   behind per-replica tail guards.  Replicas run in iteration order, so
   each grouped chunk keeps its sequential semantics. *)
let emit_unroll (c : Synth.ctx) (l : loop) ~u : string =
  let cv = counter_value l in
  let b = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "while (%s %s %s) : (%s) {\n" cv (op_str l) l.upper_text
    (cont_str cv (u * l.step));
  bpf "    %s\n" (Synth.node_text c l.body);
  for kk = 1 to u - 1 do
    let repl = Printf.sprintf "(%s)" (offset_str cv (kk * l.step)) in
    bpf "    if (%s %s %s) %s\n" repl (op_str l) l.upper_text
      (rw_counters c [ (l.counter, repl) ] l.body)
  done;
  bpf "}";
  Buffer.contents b

(* tile(t) on one loop: the worksharing loop strides by [t*step]; a
   fresh point counter sweeps each tile. *)
let emit_tile1 (c : Synth.ctx) (l : loop) ~t ~uid : string =
  let cv = counter_value l in
  let p = Printf.sprintf "__omp_p0_%d" uid in
  let b = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "while (%s %s %s) : (%s) {\n" cv (op_str l) l.upper_text
    (cont_str cv (t * l.step));
  bpf "    var %s = %s;\n" p cv;
  bpf "    while ((%s %s %s) and (%s %s %s)) : (%s) %s\n" p (op_str l)
    l.upper_text p (strict_str l)
    (offset_str cv (t * l.step))
    (cont_str p l.step)
    (rw_counters c [ (l.counter, p) ] l.body);
  bpf "}";
  Buffer.contents b

(* tile(t1, t2) on a 2-nest: tile loops outermost (the worksharing loop
   becomes the outer tile loop), point loops sweep each t1 x t2 tile. *)
let emit_tile2 (c : Synth.ctx) (outer : loop) (inner : loop)
    ~(init_text : string) ~t1 ~t2 ~uid : string =
  let cvo = counter_value outer in
  let tj = Printf.sprintf "__omp_t1_%d" uid in
  let p0 = Printf.sprintf "__omp_p0_%d" uid in
  let p1 = Printf.sprintf "__omp_p1_%d" uid in
  let body =
    rw_counters c [ (outer.counter, p0); (inner.counter, p1) ] inner.body
  in
  let b = Buffer.create 768 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "while (%s %s %s) : (%s) {\n" cvo (op_str outer) outer.upper_text
    (cont_str cvo (t1 * outer.step));
  bpf "    var %s = %s;\n" tj init_text;
  bpf "    while (%s %s %s) : (%s) {\n" tj (op_str inner) inner.upper_text
    (cont_str tj (t2 * inner.step));
  bpf "        var %s = %s;\n" p0 cvo;
  bpf "        while ((%s %s %s) and (%s %s %s)) : (%s) {\n" p0
    (op_str outer) outer.upper_text p0 (strict_str outer)
    (offset_str cvo (t1 * outer.step))
    (cont_str p0 outer.step);
  bpf "            var %s = %s;\n" p1 tj;
  bpf "            while ((%s %s %s) and (%s %s %s)) : (%s) %s\n" p1
    (op_str inner) inner.upper_text p1 (strict_str inner)
    (offset_str tj (t2 * inner.step))
    (cont_str p1 inner.step) body;
  bpf "        }\n";
  bpf "    }\n";
  bpf "}";
  Buffer.contents b

(* interchange: the inner loop becomes the worksharing loop; both
   levels run on fresh counters (the originals are never written back,
   as with every lowered counter). *)
let emit_interchange (c : Synth.ctx) ~(pragma : string) (outer : loop)
    (inner : loop) ~(init_text : string) ~uid : string =
  let x0 = Printf.sprintf "__omp_x0_%d" uid in
  let x1 = Printf.sprintf "__omp_x1_%d" uid in
  let body =
    rw_counters c [ (outer.counter, x0); (inner.counter, x1) ] inner.body
  in
  let b = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  bpf "var %s = %s;\n" x1 init_text;
  bpf "%s" pragma;
  bpf "while (%s %s %s) : (%s) {\n" x1 (op_str inner) inner.upper_text
    (cont_str x1 inner.step);
  bpf "    var %s = %s;\n" x0 (counter_value outer);
  bpf "    while (%s %s %s) : (%s) %s\n" x0 (op_str outer)
    outer.upper_text (cont_str x0 outer.step) body;
  bpf "}\n";
  bpf "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Planning.                                                           *)

type plan_result =
  | Nothing                                     (* no transform clauses *)
  | Apply of Synth.replacement
  | Refuse of refusal list * Synth.replacement  (* strip the clauses *)

let dir_line (c : Synth.ctx) dir =
  Source.line_of c.ast.Ast.source
    (Ast.token c.ast (Ast.node c.ast dir).Ast.main_token).Token.start

let clause_text (c : Synth.ctx) dir cid =
  match
    List.find_opt
      (fun cs -> cs.Directive.cid = cid)
      (Ast.clause_spans c.ast dir)
  with
  | Some cs ->
      let b, e = Ast.clause_span_bytes c.ast cs in
      Source.slice c.ast.Ast.source ~start:b ~stop:e
  | None -> Directive.clause_id_to_string cid

(* The replacement that only strips the transform clauses (refusal and
   malformed paths): pragma minus the clauses, loop text untouched. *)
let strip_replacement (c : Synth.ctx) dir : Synth.replacement =
  let wh = (Ast.node c.ast dir).Ast.rhs in
  let dir_start, _ = Synth.node_bytes c dir in
  let _, wh_stop = Synth.node_bytes c wh in
  { Synth.start = dir_start; stop = wh_stop;
    text = pragma_without c dir ^ Synth.node_text c wh }

let plan (c : Synth.ctx) ?(force = false) dir : plan_result =
  let ast = c.ast in
  let cl = Ast.clauses ast dir in
  let tr = cl.Directive.transform in
  let has_transform =
    tr.Packed.unroll > 0 || tr.Packed.interchange
    || cl.Directive.tile <> [] || tr.Packed.unroll_malformed
    || tr.Packed.tile_malformed
  in
  if not has_transform then Nothing
  else begin
    let line = dir_line c dir in
    if tr.Packed.unroll_malformed then
      warn_once
        (Printf.sprintf "unroll-malformed@%d" line)
        "ignoring malformed '%s' at line %d (expected a positive integer \
         literal up to %d); no unroll applied"
        (clause_text c dir Directive.Cunroll)
        line Packed.max_unroll;
    if tr.Packed.tile_malformed then
      warn_once
        (Printf.sprintf "tile-malformed@%d" line)
        "ignoring malformed '%s' at line %d (expected positive integer \
         literal tile sizes up to %d); no tiling applied"
        (clause_text c dir Directive.Ctile)
        line Packed.max_tile;
    let requested =
      (if cl.Directive.tile <> [] then [ "tile" ] else [])
      @ (if tr.Packed.unroll > 1 then [ "unroll" ] else [])
      @ if tr.Packed.interchange then [ "interchange" ] else []
    in
    let refusals = ref [] in
    let refused v clause reason =
      refusals := refuse ~line ~clause v reason :: !refusals
    in
    let wh = (Ast.node ast dir).Ast.rhs in
    let finish () = Refuse (List.rev !refusals, strip_replacement c dir) in
    match requested with
    | [] ->
        (* only malformed clauses, or the identity unroll(1): strip *)
        finish ()
    | _ :: _ :: _ ->
        refused May "transform"
          "transform composition is not supported; write one of tile, \
           unroll or interchange per directive";
        finish ()
    | [ clause ] ->
        if cl.Directive.flags.Packed.collapse > 1 then begin
          refused May clause
            "transforms do not compose with collapse on the same \
             directive";
          finish ()
        end
        else if List.length cl.Directive.tile > 2 then begin
          refused May "tile" "tile depth beyond 2 is not supported";
          finish ()
        end
        else begin
          match recover c dir wh ~init:None with
          | Error e ->
              refused May clause e;
              finish ()
          | Ok outer0 -> (
              let outer =
                if outer0.lb_lit = None then
                  { outer0 with
                    lb_lit = outer_lb c dir ~counter:outer0.counter }
                else outer0
              in
              match recover_nest c dir outer with
              | Error e ->
                  refused May clause e;
                  finish ()
              | Ok nest ->
                  let needs_nest =
                    clause = "interchange"
                    || List.length cl.Directive.tile = 2
                  in
                  let rectangular =
                    match nest with
                    | None -> true
                    | Some (inner, init_expr) ->
                        let refs =
                          Names.Sset.union
                            (Names.referenced_under ast inner.upper_node)
                            (Names.referenced_under ast init_expr)
                        in
                        not (Names.Sset.mem outer.counter refs)
                  in
                  if needs_nest && nest = None then begin
                    refused May clause
                      "the directive needs a perfectly nested 2-deep \
                       canonical loop nest";
                    finish ()
                  end
                  else if nest <> None && not rectangular then begin
                    refused May clause
                      "the loop nest is not rectangular (the inner \
                       bounds depend on the outer counter)";
                    finish ()
                  end
                  else begin
                    let inner = Option.map fst nest in
                    let init_text =
                      Option.map (fun (_, e) -> Synth.node_text c e) nest
                    in
                    let counters =
                      outer.counter
                      ::
                      (match inner with
                       | Some l -> [ l.counter ]
                       | None -> [])
                    in
                    let analysis_body =
                      match inner with
                      | Some l -> l.body
                      | None -> outer.body
                    in
                    let fa =
                      collect c ~outer:outer.counter
                        ~inner:(Option.map (fun l -> l.counter) inner)
                        ~counters analysis_body
                    in
                    (* reductions reorder their combines under any
                       regrouping; refuse rather than change the
                       result *)
                    if cl.Directive.reductions <> [] then
                      refused May clause
                        "the directive carries a reduction; regrouping \
                         would reorder the combines";
                    (match fa.blocker with
                     | Some r -> refused May clause r
                     | None ->
                         let d = dependences ~outer ~inner fa in
                         let dec =
                           match clause with
                           | "interchange" -> check_interchange ~line d
                           | "unroll" ->
                               let which =
                                 if inner = None then `Outer else `Inner
                               in
                               check_group ~line ~clause ~which
                                 ~factor:tr.Packed.unroll d
                           | "tile" -> (
                               match cl.Directive.tile with
                               | [ t1 ] ->
                                   check_group ~line ~clause ~which:`Outer
                                     ~factor:t1 d
                               | [ t1; t2 ] -> (
                                   match
                                     check_group ~line ~clause
                                       ~which:`Outer ~factor:t1 d
                                   with
                                   | Some r -> Some r
                                   | None -> (
                                       match
                                         check_group ~line ~clause
                                           ~which:`Inner ~factor:t2 d
                                       with
                                       | Some r -> Some r
                                       | None ->
                                           Option.map
                                             (fun r ->
                                               { r with clause = "tile" })
                                             (check_interchange ~line d)))
                               | _ -> assert false)
                           | _ -> assert false
                         in
                         (match dec with
                          | Some r -> refusals := r :: !refusals
                          | None -> ()));
                    if !refusals <> [] && not force then finish ()
                    else begin
                      let uid = line in
                      let pragma = pragma_without c dir in
                      let loop_text =
                        match (clause, inner, init_text) with
                        | "unroll", None, _ ->
                            emit_unroll c outer ~u:tr.Packed.unroll
                        | "unroll", Some il, _ ->
                            (* unroll the innermost loop in place *)
                            let o_start, o_stop =
                              Synth.node_bytes c outer.wh
                            in
                            let i_start, i_stop =
                              Synth.node_bytes c il.wh
                            in
                            Source.slice ast.Ast.source ~start:o_start
                              ~stop:i_start
                            ^ emit_unroll c il ~u:tr.Packed.unroll
                            ^ Source.slice ast.Ast.source ~start:i_stop
                                ~stop:o_stop
                        | "tile", _, _
                          when List.length cl.Directive.tile = 1 ->
                            emit_tile1 c outer
                              ~t:(List.hd cl.Directive.tile) ~uid
                        | "tile", Some il, Some itext ->
                            let t1, t2 =
                              match cl.Directive.tile with
                              | [ a; b ] -> (a, b)
                              | _ -> assert false
                            in
                            emit_tile2 c outer il ~init_text:itext ~t1 ~t2
                              ~uid
                        | "interchange", Some il, Some itext ->
                            emit_interchange c ~pragma outer il
                              ~init_text:itext ~uid
                        | _ -> assert false
                      in
                      let dir_start, _ = Synth.node_bytes c dir in
                      let _, wh_stop = Synth.node_bytes c wh in
                      let text =
                        (* interchange re-emits the pragma inside its
                           block, ahead of the new worksharing loop *)
                        if clause = "interchange" then loop_text
                        else pragma ^ loop_text
                      in
                      Apply
                        { Synth.start = dir_start; stop = wh_stop; text }
                    end
                  end)
        end
  end

(* ------------------------------------------------------------------ *)
(* Pipeline step and analyser entry points.                            *)

let transform_dirs ast =
  Names.omp_nodes ast (fun tag ->
      tag = Ast.Omp_for || tag = Ast.Omp_parallel_for)

(** One round of the pass; [None] when no directive carries transform
    clauses.  Refused transforms strip their clauses (and warn once,
    gated by [ZIGOMP_WARNINGS]); [~force:true] applies regardless of
    legality, for tests that demonstrate a refusal was sound. *)
let run ?(name = "<input>") ?(force = false) (source : string) :
    string option =
  let src = Source.of_string ~name source in
  let ast, spans = Parser.parse src in
  let c = { Synth.ast; spans } in
  let planned =
    transform_dirs ast
    |> List.filter_map (fun d ->
           match plan c ~force d with
           | Nothing -> None
           | p -> Some (d, p))
  in
  match planned with
  | [] -> None
  | _ ->
      let outermost =
        Synth.outermost
          (List.map (fun (d, _) -> (d, Synth.node_bytes c d)) planned)
      in
      let reps =
        List.filter_map
          (fun (d, p) ->
            if not (List.mem d outermost) then None
            else
              match p with
              | Nothing -> None
              | Apply r -> Some r
              | Refuse (rs, strip) ->
                  List.iter
                    (fun r ->
                      warn_once
                        (Printf.sprintf "%s@%d" r.clause r.line)
                        "refusing %s at line %d: %s [%s]" r.clause r.line
                        r.reason
                        (match r.verdict with
                         | Proven -> "PROVEN"
                         | May -> "MAY"))
                    rs;
                  Some strip)
          planned
      in
      Some (Synth.apply_replacements source reps)

(** Refusals of every transform-carrying directive of an already parsed
    program, for the static analyser's report.  Positions are original
    source positions, since this pass runs before any other rewrite. *)
let assess (c : Synth.ctx) : refusal list =
  transform_dirs c.ast
  |> List.concat_map (fun d ->
         match plan c d with
         | Nothing | Apply _ -> []
         | Refuse (rs, _) -> rs)

(** The transforms that would be applied, as [(directive node, clause
    name)] — the prediction hook ([zrc analyze --predict]) pairs each
    directive with its transform without re-deriving legality. *)
let applied (c : Synth.ctx) : (int * string) list =
  transform_dirs c.ast
  |> List.filter_map (fun d ->
         match plan c d with
         | Apply _ ->
             let cl = Ast.clauses c.ast d in
             let name =
               if cl.Directive.tile <> [] then "tile"
               else if cl.Directive.transform.Packed.unroll > 1 then
                 "unroll"
               else "interchange"
             in
             Some (d, name)
         | _ -> None)

(* ------------------------------------------------------------------ *)
(* Static cache-footprint estimation for [zrc analyze --predict].
   For every tiling that passes the legality check and has literal
   bounds, estimate (in bytes, with 8-byte elements) the nest's
   cold-cache traffic and the working set between reuses of an array
   element, before and after tiling.  The untiled reuse distance of a
   rectangular 2-nest is one full inner sweep — the data the loop
   streams through before the outer counter advances and inner-indexed
   elements are touched again; the tiled reuse distance is one
   [t1 x t2] block.  The roofline model ({!Sim.Perfmodel}) turns the
   two working sets into L3 miss factors and a predicted arithmetic
   intensity / speedup. *)

type footprint = {
  fp_line : int;       (** directive source line *)
  fp_desc : string;    (** the clause, e.g. ["tile(8, 8)"] *)
  fp_iters : float;    (** total point iterations of the nest *)
  fp_accesses : int;   (** indexed accesses per point iteration *)
  fp_bytes : float;    (** cold-cache bytes of one full traversal *)
  fp_ws_before : float;(** bytes between reuses, untiled *)
  fp_ws_after : float; (** bytes between reuses, tiled *)
}

let footprints (c : Synth.ctx) : footprint list =
  let elt = 8.0 in
  transform_dirs c.ast
  |> List.filter_map (fun dir ->
         let cl = Ast.clauses c.ast dir in
         if cl.Directive.tile = [] then None
         else
           match plan c dir with
           | Nothing | Refuse _ -> None
           | Apply _ -> (
               let wh = (Ast.node c.ast dir).Ast.rhs in
               match recover c dir wh ~init:None with
               | Error _ -> None
               | Ok outer -> (
                   let nest =
                     match recover_nest c dir outer with
                     | Ok n -> n
                     | Error _ -> None
                   in
                   let inner = Option.map fst nest in
                   let outer =
                     if outer.lb_lit = None then
                       { outer with
                         lb_lit = outer_lb c dir ~counter:outer.counter }
                     else outer
                   in
                   match (trips outer, Option.map trips inner) with
                   | None, _ | _, Some None -> None
                   | Some t_o, ti_opt ->
                       let t_i =
                         match ti_opt with Some (Some t) -> t | _ -> 1
                       in
                       let fa =
                         collect c ~outer:outer.counter
                           ~inner:(Option.map (fun l -> l.counter) inner)
                           ~counters:
                             (outer.counter
                             ::
                             (match inner with
                              | Some l -> [ l.counter ]
                              | None -> []))
                           (match inner with
                            | Some l -> l.body
                            | None -> outer.body)
                       in
                       let naccs = List.length fa.accs in
                       (* distinct (base, co, ci) access groups *)
                       let groups =
                         List.sort_uniq compare
                           (List.filter_map
                              (fun a ->
                                match a.idx with
                                | Some l -> Some (a.base, l.co, l.ci)
                                | None -> None)
                              fa.accs)
                       in
                       let so = abs outer.step in
                       let si =
                         match inner with
                         | Some l -> abs l.step
                         | None -> 1
                       in
                       let span ~ospan ~ispan (_, co, ci) =
                         elt
                         *. float_of_int
                              ((abs (co * so) * (max 0 (ospan - 1)))
                              + (abs (ci * si) * (max 0 (ispan - 1)))
                              + 1)
                       in
                       let sum f = List.fold_left
                           (fun acc g -> acc +. f g) 0. groups in
                       let bytes = sum (span ~ospan:t_o ~ispan:t_i) in
                       let ws_before, ws_after =
                         match (inner, cl.Directive.tile) with
                         | Some _, [ t1; t2 ] ->
                             ( sum (span ~ospan:1 ~ispan:t_i),
                               sum
                                 (span ~ospan:(min t1 t_o)
                                    ~ispan:(min t2 t_i)) )
                         | _ ->
                             (* 1-D tiling leaves the reuse pattern of a
                                single streamed loop unchanged *)
                             let ws = sum (span ~ospan:t_o ~ispan:t_i) in
                             (ws, ws)
                       in
                       Some
                         { fp_line = dir_line c dir;
                           fp_desc = clause_text c dir Directive.Ctile;
                           fp_iters = float_of_int (t_o * t_i);
                           fp_accesses = naccs;
                           fp_bytes = bytes;
                           fp_ws_before = ws_before;
                           fp_ws_after = ws_after })))

(** Recursive-descent parser for Zr.

    Produces the flat {!Ast.t}.  The pragma grammar is parsed with the
    paper's scheme: OpenMP directive and clause names arrive as plain
    [Identifier] tokens and are resolved against the keyword hash map by
    {!eat_omp} — the analogue of the modified [eatToken] that "accepts
    both existing and new tags, and parses the identifier tag
    accordingly if an OpenMP keyword tag was used". *)

type state = {
  src : Source.t;
  tokens : Token.t array;
  mutable pos : int;
  (* growable node / extra / span stores *)
  mutable nodes : Ast.node array;
  mutable n_nodes : int;
  mutable extra : int array;
  mutable n_extra : int;
  mutable spans : (int * int) array;
  mutable clause_spans :
    (int * Ompfront.Directive.clause_span list) list;
}

let fail st fmt =
  let tok = st.tokens.(st.pos) in
  Source.error st.src tok.Token.start fmt

(* ------------------------------------------------------------------ *)
(* Store helpers.                                                      *)

let grow arr n dummy =
  let cap = Array.length arr in
  if n < cap then arr
  else begin
    let bigger = Array.make (max 16 (2 * cap)) dummy in
    Array.blit arr 0 bigger 0 cap;
    bigger
  end

let dummy_node = { Ast.tag = Ast.Root; main_token = 0; lhs = 0; rhs = 0 }

let add_node st node span =
  st.nodes <- grow st.nodes st.n_nodes dummy_node;
  st.spans <- grow st.spans st.n_nodes (0, 0);
  let i = st.n_nodes in
  st.nodes.(i) <- node;
  st.spans.(i) <- span;
  st.n_nodes <- st.n_nodes + 1;
  i

let set_node st i node span =
  st.nodes.(i) <- node;
  st.spans.(i) <- span

let add_extra st v =
  st.extra <- grow st.extra st.n_extra 0;
  let i = st.n_extra in
  st.extra.(i) <- v;
  st.n_extra <- st.n_extra + 1;
  i

let add_extra_list st vs =
  let b = st.n_extra in
  List.iter (fun v -> ignore (add_extra st v)) vs;
  (b, st.n_extra)

(* ------------------------------------------------------------------ *)
(* Token cursor.                                                       *)

let peek st = st.tokens.(st.pos).Token.tag

let peek_tok st = st.tokens.(st.pos)

let next st =
  let t = st.pos in
  st.pos <- st.pos + 1;
  t

(** The paper's [eatToken] for ordinary tags: if the next token matches,
    return its index and advance; otherwise [None]. *)
let eat st tag =
  if peek st = tag then Some (next st) else None

let expect st tag =
  match eat st tag with
  | Some i -> i
  | None ->
      fail st "expected '%s', found '%s'"
        (Token.tag_to_string tag)
        (Token.tag_to_string (peek st))

let tok_text st i = Tokenizer.text st.src st.tokens.(i)

(** The OpenMP side of the modified [eatToken]: succeed iff the next
    token is an identifier whose text maps to the requested OpenMP
    keyword tag in the hash map. *)
let eat_omp st kw =
  if peek st = Token.Identifier
     && Token.omp_keyword_of_string (tok_text st st.pos) = Some kw
  then Some (next st)
  else None

(** Resolve the next token to *some* OpenMP keyword (for dispatching on
    directive/clause names); does not advance on failure. *)
let peek_omp st =
  if peek st = Token.Identifier then
    Token.omp_keyword_of_string (tok_text st st.pos)
  else None

(* ------------------------------------------------------------------ *)
(* Types.                                                              *)

let rec parse_type st =
  match peek st with
  | Token.L_bracket ->
      let t0 = next st in
      let _ = expect st Token.R_bracket in
      let elem = parse_type st in
      add_node st
        { tag = Ast.Type_slice; main_token = t0; lhs = elem; rhs = 0 }
        (t0, snd_span st elem)
  | Token.Star ->
      let t0 = next st in
      let elem = parse_type st in
      add_node st
        { tag = Ast.Type_ptr; main_token = t0; lhs = elem; rhs = 0 }
        (t0, snd_span st elem)
  | Token.Identifier ->
      let t0 = next st in
      add_node st
        { tag = Ast.Type_name; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
  | _ -> fail st "expected a type"

and snd_span st node = snd st.spans.(node)

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing.                                   *)

let binop_prec = function
  | Token.Kw_or -> Some 1
  | Token.Kw_and -> Some 2
  | Token.Eq_eq | Token.Bang_eq | Token.Lt | Token.Lt_eq
  | Token.Gt | Token.Gt_eq -> Some 3
  | Token.Plus | Token.Minus -> Some 4
  | Token.Star | Token.Slash | Token.Percent -> Some 5
  | _ -> None

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_prec (peek st) with
    | Some prec when prec >= min_prec ->
        let op = next st in
        let rhs = parse_binary st (prec + 1) in
        let span = (fst st.spans.(!lhs), snd st.spans.(rhs)) in
        lhs :=
          add_node st
            { tag = Ast.Bin_op; main_token = op; lhs = !lhs; rhs }
            span
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Token.Minus | Token.Bang ->
      let op = next st in
      let operand = parse_unary st in
      add_node st
        { tag = Ast.Un_op; main_token = op; lhs = operand; rhs = 0 }
        (op, snd st.spans.(operand))
  | Token.Amp ->
      let op = next st in
      let operand = parse_unary st in
      add_node st
        { tag = Ast.Addr_of; main_token = op; lhs = operand; rhs = 0 }
        (op, snd st.spans.(operand))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Token.L_paren ->
        let t0 = next st in
        ignore t0;
        let args = ref [] in
        if peek st <> Token.R_paren then begin
          args := [ parse_expr st ];
          while eat st Token.Comma <> None do
            args := parse_expr st :: !args
          done
        end;
        let close = expect st Token.R_paren in
        let args = List.rev !args in
        let base = add_extra st (List.length args) in
        List.iter (fun a -> ignore (add_extra st a)) args;
        let span = (fst st.spans.(!e), close) in
        e :=
          add_node st
            { tag = Ast.Call; main_token = fst st.spans.(!e);
              lhs = !e; rhs = base }
            span
    | Token.L_bracket ->
        let _ = next st in
        let idx = parse_expr st in
        let close = expect st Token.R_bracket in
        let span = (fst st.spans.(!e), close) in
        e :=
          add_node st
            { tag = Ast.Index; main_token = fst st.spans.(!e);
              lhs = !e; rhs = idx }
            span
    | Token.Dot_star ->
        let op = next st in
        let span = (fst st.spans.(!e), op) in
        e :=
          add_node st
            { tag = Ast.Deref; main_token = op; lhs = !e; rhs = 0 }
            span
    | Token.Dot ->
        let _ = next st in
        let name = expect st Token.Identifier in
        let span = (fst st.spans.(!e), name) in
        e :=
          add_node st
            { tag = Ast.Field; main_token = name; lhs = !e; rhs = 0 }
            span
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Token.Int_literal ->
      let t0 = next st in
      add_node st { tag = Ast.Int_lit; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
  | Token.Float_literal ->
      let t0 = next st in
      add_node st { tag = Ast.Float_lit; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
  | Token.String_literal ->
      let t0 = next st in
      add_node st { tag = Ast.String_lit; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
  | Token.Kw_true | Token.Kw_false ->
      let t0 = next st in
      add_node st { tag = Ast.Bool_lit; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
  | Token.Kw_undefined ->
      let t0 = next st in
      add_node st
        { tag = Ast.Undefined_lit; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
  | Token.Identifier ->
      let t0 = next st in
      add_node st { tag = Ast.Ident; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
  | Token.L_paren ->
      let _ = next st in
      let e = parse_expr st in
      let _ = expect st Token.R_paren in
      e
  | Token.Dot_brace ->
      (* anonymous struct literal: .{ .name = expr, ... } *)
      let t0 = next st in
      let fields = ref [] in
      if peek st <> Token.R_brace then begin
        let parse_field () =
          let _ = expect st Token.Dot in
          let name = expect st Token.Identifier in
          let _ = expect st Token.Eq in
          let v = parse_expr st in
          fields := (name, v) :: !fields
        in
        parse_field ();
        while eat st Token.Comma <> None && peek st <> Token.R_brace do
          parse_field ()
        done
      end;
      let close = expect st Token.R_brace in
      let fields = List.rev !fields in
      let base = add_extra st (List.length fields) in
      List.iter
        (fun (name, v) ->
          ignore (add_extra st name);
          ignore (add_extra st v))
        fields;
      add_node st
        { tag = Ast.Struct_lit; main_token = t0; lhs = 0; rhs = base }
        (t0, close)
  | t -> fail st "expected an expression, found '%s'" (Token.tag_to_string t)

(* ------------------------------------------------------------------ *)
(* Pragmas.                                                            *)

(* Mutable clause accumulator; encoded into extra_data when finished. *)
type clause_acc = {
  mutable flags : Ompfront.Packed.flags;
  mutable sched_word : int;
  mutable num_threads : int;
  mutable private_ : int list;
  mutable firstprivate : int list;
  mutable shared : int list;
  mutable reductions : (Ompfront.Directive.red_op * int) list;
  mutable critical_name : int;
  mutable transform : Ompfront.Packed.transform;
  mutable tile : int list;
  mutable grainsize : int;
  mutable copyprivate : int list;
  mutable cspans : Ompfront.Directive.clause_span list;
}

(* Record the span of the clause that started at keyword token [t0] and
   ended at the token just consumed. *)
let record_clause st (acc : clause_acc) cid t0 =
  acc.cspans <-
    acc.cspans
    @ [ { Ompfront.Directive.cid; ctok_first = t0; ctok_last = st.pos - 1 } ]

let fresh_clauses () = {
  flags = Ompfront.Packed.no_flags;
  sched_word =
    Ompfront.Packed.encode_schedule Ompfront.Packed.Sched_none 0;
  num_threads = 0;
  private_ = [];
  firstprivate = [];
  shared = [];
  reductions = [];
  critical_name = 0;
  transform = Ompfront.Packed.no_transform;
  tile = [];
  grainsize = 0;
  copyprivate = [];
  cspans = [];
}

let parse_ident_list st =
  let _ = expect st Token.L_paren in
  let ids = ref [] in
  let one () =
    let t0 = expect st Token.Identifier in
    let n =
      add_node st { tag = Ast.Ident; main_token = t0; lhs = 0; rhs = 0 }
        (t0, t0)
    in
    ids := n :: !ids
  in
  one ();
  while eat st Token.Comma <> None do one () done;
  let _ = expect st Token.R_paren in
  List.rev !ids

let parse_red_op st =
  match peek st with
  | Token.Plus -> ignore (next st); Ompfront.Directive.Radd
  | Token.Minus -> ignore (next st); Ompfront.Directive.Rsub
  | Token.Star -> ignore (next st); Ompfront.Directive.Rmul
  | Token.Identifier ->
      (match peek_omp st with
       | Some Token.Omp_min -> ignore (next st); Ompfront.Directive.Rmin
       | Some Token.Omp_max -> ignore (next st); Ompfront.Directive.Rmax
       | _ -> fail st "expected a reduction operator")
  | _ -> fail st "expected a reduction operator"

(* Literal integer value of an already-parsed expression node, if it is
   one: an [Int_lit], possibly under a unary minus.  Transform clause
   arguments must be compile-time literals — anything else is recorded
   as malformed and warned about (once) by the transform stage instead
   of failing the parse. *)
let node_int_lit st n =
  let node = st.nodes.(n) in
  match node.Ast.tag with
  | Ast.Int_lit -> int_of_string_opt (tok_text st node.Ast.main_token)
  | Ast.Un_op
    when st.tokens.(node.Ast.main_token).Token.tag = Token.Minus -> (
      let l = st.nodes.(node.Ast.lhs) in
      if l.Ast.tag <> Ast.Int_lit then None
      else
        match int_of_string_opt (tok_text st l.Ast.main_token) with
        | Some v -> Some (-v)
        | None -> None)
  | _ -> None

let parse_clauses st (acc : clause_acc) =
  let continue_ = ref true in
  while !continue_ do
    match peek_omp st with
    | Some Token.Omp_private ->
        let t0 = next st in
        acc.private_ <- acc.private_ @ parse_ident_list st;
        record_clause st acc Ompfront.Directive.Cprivate t0
    | Some Token.Omp_firstprivate ->
        let t0 = next st in
        acc.firstprivate <- acc.firstprivate @ parse_ident_list st;
        record_clause st acc Ompfront.Directive.Cfirstprivate t0
    | Some Token.Omp_shared ->
        let t0 = next st in
        acc.shared <- acc.shared @ parse_ident_list st;
        record_clause st acc Ompfront.Directive.Cshared t0
    | Some Token.Omp_reduction ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let op = parse_red_op st in
        let _ = expect st Token.Colon in
        let ids = ref [] in
        let one () =
          let t0 = expect st Token.Identifier in
          let n =
            add_node st
              { tag = Ast.Ident; main_token = t0; lhs = 0; rhs = 0 }
              (t0, t0)
          in
          ids := n :: !ids
        in
        one ();
        while eat st Token.Comma <> None do one () done;
        let _ = expect st Token.R_paren in
        acc.reductions <-
          acc.reductions @ List.map (fun id -> (op, id)) (List.rev !ids);
        record_clause st acc Ompfront.Directive.Creduction t0
    | Some Token.Omp_schedule ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let kind =
          match peek_omp st with
          | Some Token.Omp_static -> Ompfront.Packed.Sched_static
          | Some Token.Omp_dynamic -> Ompfront.Packed.Sched_dynamic
          | Some Token.Omp_guided -> Ompfront.Packed.Sched_guided
          | Some Token.Omp_runtime -> Ompfront.Packed.Sched_runtime
          | Some Token.Omp_auto -> Ompfront.Packed.Sched_auto
          | _ -> fail st "expected a schedule kind"
        in
        ignore (next st);
        let chunk =
          if eat st Token.Comma <> None then begin
            let t = expect st Token.Int_literal in
            match int_of_string_opt (tok_text st t) with
            | Some c when c > 0 && c <= Ompfront.Packed.max_chunk -> c
            | _ -> fail st "invalid chunk size"
          end
          else 0
        in
        let _ = expect st Token.R_paren in
        acc.sched_word <- Ompfront.Packed.encode_schedule kind chunk;
        record_clause st acc Ompfront.Directive.Cschedule t0
    | Some Token.Omp_num_threads ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let e = parse_expr st in
        let _ = expect st Token.R_paren in
        acc.num_threads <- e;
        record_clause st acc Ompfront.Directive.Cnum_threads t0
    | Some Token.Omp_default ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let d =
          match peek_omp st with
          | Some Token.Omp_shared -> Ompfront.Packed.Default_shared
          | Some Token.Omp_none -> Ompfront.Packed.Default_none
          | _ -> fail st "expected 'shared' or 'none'"
        in
        ignore (next st);
        let _ = expect st Token.R_paren in
        acc.flags <- { acc.flags with default = d };
        record_clause st acc Ompfront.Directive.Cdefault t0
    | Some Token.Omp_nowait ->
        let t0 = next st in
        acc.flags <- { acc.flags with nowait = true };
        record_clause st acc Ompfront.Directive.Cnowait t0
    | Some Token.Omp_collapse ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let t = expect st Token.Int_literal in
        let n =
          match int_of_string_opt (tok_text st t) with
          | Some n when n >= 1 && n <= Ompfront.Packed.max_collapse -> n
          | _ -> fail st "invalid collapse count"
        in
        let _ = expect st Token.R_paren in
        acc.flags <- { acc.flags with collapse = n };
        record_clause st acc Ompfront.Directive.Ccollapse t0
    | Some Token.Omp_unroll ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let e = parse_expr st in
        let _ = expect st Token.R_paren in
        (match node_int_lit st e with
         | Some n when n >= 1 && n <= Ompfront.Packed.max_unroll ->
             acc.transform <- { acc.transform with unroll = n }
         | _ ->
             acc.transform <- { acc.transform with unroll_malformed = true });
        record_clause st acc Ompfront.Directive.Cunroll t0
    | Some Token.Omp_tile ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let sizes = ref [] and ok = ref true in
        let one () =
          let e = parse_expr st in
          match node_int_lit st e with
          | Some n when n >= 1 && n <= Ompfront.Packed.max_tile ->
              sizes := n :: !sizes
          | _ -> ok := false
        in
        one ();
        while eat st Token.Comma <> None do one () done;
        let _ = expect st Token.R_paren in
        if !ok then acc.tile <- acc.tile @ List.rev !sizes
        else
          acc.transform <- { acc.transform with tile_malformed = true };
        record_clause st acc Ompfront.Directive.Ctile t0
    | Some Token.Omp_interchange ->
        let t0 = next st in
        acc.transform <- { acc.transform with interchange = true };
        record_clause st acc Ompfront.Directive.Cinterchange t0
    | Some Token.Omp_grainsize ->
        let t0 = next st in
        let _ = expect st Token.L_paren in
        let t = expect st Token.Int_literal in
        let n =
          match int_of_string_opt (tok_text st t) with
          | Some n when n >= 1 && n <= Ompfront.Packed.max_chunk -> n
          | _ -> fail st "invalid grainsize"
        in
        let _ = expect st Token.R_paren in
        acc.grainsize <- n;
        record_clause st acc Ompfront.Directive.Cgrainsize t0
    | Some Token.Omp_copyprivate ->
        let t0 = next st in
        acc.copyprivate <- acc.copyprivate @ parse_ident_list st;
        record_clause st acc Ompfront.Directive.Ccopyprivate t0
    | _ -> continue_ := false
  done

(** Encode the accumulated clauses: list slices first, then the fixed
    18-word clause block.  Returns the block's base index. *)
let encode_clauses st (acc : clause_acc) =
  let priv = add_extra_list st acc.private_ in
  let fp = add_extra_list st acc.firstprivate in
  let sh = add_extra_list st acc.shared in
  let red =
    add_extra_list st
      (List.concat_map
         (fun (op, id) -> [ Ompfront.Directive.red_op_code op; id ])
         acc.reductions)
  in
  let tl = add_extra_list st acc.tile in
  let cp = add_extra_list st acc.copyprivate in
  let base = st.n_extra in
  ignore (add_extra st (Ompfront.Packed.encode_flags acc.flags));
  ignore (add_extra st acc.sched_word);
  ignore (add_extra st acc.num_threads);
  ignore (add_extra st (fst priv));
  ignore (add_extra st (snd priv));
  ignore (add_extra st (fst fp));
  ignore (add_extra st (snd fp));
  ignore (add_extra st (fst sh));
  ignore (add_extra st (snd sh));
  ignore (add_extra st (fst red));
  ignore (add_extra st (snd red));
  ignore (add_extra st acc.critical_name);
  ignore (add_extra st (Ompfront.Packed.encode_transform acc.transform));
  ignore (add_extra st (fst tl));
  ignore (add_extra st (snd tl));
  ignore (add_extra st acc.grainsize);
  ignore (add_extra st (fst cp));
  ignore (add_extra st (snd cp));
  if acc.cspans <> [] then
    st.clause_spans <- (base, acc.cspans) :: st.clause_spans;
  base

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

let rec parse_statement st =
  match peek st with
  | Token.Pragma_sentinel -> parse_pragma st
  | Token.L_brace -> parse_block st
  | Token.Kw_var | Token.Kw_const -> parse_var_decl st
  | Token.Kw_while -> parse_while st
  | Token.Kw_if -> parse_if st
  | Token.Kw_return ->
      let t0 = next st in
      let e = if peek st = Token.Semicolon then 0 else parse_expr st in
      let close = expect st Token.Semicolon in
      add_node st { tag = Ast.Return; main_token = t0; lhs = e; rhs = 0 }
        (t0, close)
  | Token.Kw_break ->
      let t0 = next st in
      let close = expect st Token.Semicolon in
      add_node st { tag = Ast.Break; main_token = t0; lhs = 0; rhs = 0 }
        (t0, close)
  | Token.Kw_continue ->
      let t0 = next st in
      let close = expect st Token.Semicolon in
      add_node st { tag = Ast.Continue; main_token = t0; lhs = 0; rhs = 0 }
        (t0, close)
  | _ ->
      let s = parse_assign_or_expr st in
      let close = expect st Token.Semicolon in
      let span = (fst st.spans.(s), close) in
      set_node st s st.nodes.(s) span;
      s

(* expr [op= expr] — used for plain statements and loop continuations *)
and parse_assign_or_expr st =
  let target = parse_expr st in
  match peek st with
  | Token.Eq | Token.Plus_eq | Token.Minus_eq | Token.Star_eq
  | Token.Slash_eq ->
      let op = next st in
      let value = parse_expr st in
      add_node st
        { tag = Ast.Assign; main_token = op; lhs = target; rhs = value }
        (fst st.spans.(target), snd st.spans.(value))
  | _ ->
      add_node st
        { tag = Ast.Expr_stmt; main_token = fst st.spans.(target);
          lhs = target; rhs = 0 }
        st.spans.(target)

and parse_block st =
  let t0 = expect st Token.L_brace in
  let stmts = ref [] in
  while peek st <> Token.R_brace do
    stmts := parse_statement st :: !stmts
  done;
  let close = expect st Token.R_brace in
  let b, e = add_extra_list st (List.rev !stmts) in
  add_node st { tag = Ast.Block; main_token = t0; lhs = b; rhs = e }
    (t0, close)

and parse_var_decl st =
  let kw = next st in
  let mutable_ = st.tokens.(kw).Token.tag = Token.Kw_var in
  let name = expect st Token.Identifier in
  let ty = if eat st Token.Colon <> None then parse_type st else 0 in
  let init = if eat st Token.Eq <> None then parse_expr st else 0 in
  let close = expect st Token.Semicolon in
  add_node st
    { tag = (if mutable_ then Ast.Var_decl else Ast.Const_decl);
      main_token = name; lhs = ty; rhs = init }
    (kw, close)

and parse_while st =
  let t0 = expect st Token.Kw_while in
  let _ = expect st Token.L_paren in
  let cond = parse_expr st in
  let _ = expect st Token.R_paren in
  let cont =
    if eat st Token.Colon <> None then begin
      let _ = expect st Token.L_paren in
      let c = parse_assign_or_expr st in
      let _ = expect st Token.R_paren in
      c
    end
    else 0
  in
  let body = parse_block st in
  let base = add_extra st cont in
  ignore (add_extra st body);
  add_node st { tag = Ast.While; main_token = t0; lhs = cond; rhs = base }
    (t0, snd st.spans.(body))

and parse_if st =
  let t0 = expect st Token.Kw_if in
  let _ = expect st Token.L_paren in
  let cond = parse_expr st in
  let _ = expect st Token.R_paren in
  let then_ = parse_block st in
  let else_ =
    if eat st Token.Kw_else <> None then
      if peek st = Token.Kw_if then parse_if st else parse_block st
    else 0
  in
  let base = add_extra st then_ in
  ignore (add_extra st else_);
  let last = if else_ <> 0 then snd st.spans.(else_) else snd st.spans.(then_) in
  add_node st { tag = Ast.If; main_token = t0; lhs = cond; rhs = base }
    (t0, last)

and parse_pragma st =
  let sentinel = expect st Token.Pragma_sentinel in
  let tag, acc =
    match peek_omp st with
    | Some Token.Omp_parallel ->
        ignore (next st);
        if peek_omp st = Some Token.Omp_for then begin
          ignore (next st);
          (Ast.Omp_parallel_for, fresh_clauses ())
        end
        else (Ast.Omp_parallel, fresh_clauses ())
    | Some Token.Omp_for -> ignore (next st); (Ast.Omp_for, fresh_clauses ())
    | Some Token.Omp_barrier ->
        ignore (next st); (Ast.Omp_barrier, fresh_clauses ())
    | Some Token.Omp_critical ->
        ignore (next st);
        let acc = fresh_clauses () in
        (match eat st Token.L_paren with
         | Some lp ->
             let name = expect st Token.Identifier in
             let _ = expect st Token.R_paren in
             acc.critical_name <- name;
             record_clause st acc Ompfront.Directive.Cname lp
         | None -> ());
        (Ast.Omp_critical, acc)
    | Some Token.Omp_master ->
        ignore (next st); (Ast.Omp_master, fresh_clauses ())
    | Some Token.Omp_single ->
        ignore (next st); (Ast.Omp_single, fresh_clauses ())
    | Some Token.Omp_atomic ->
        ignore (next st); (Ast.Omp_atomic, fresh_clauses ())
    | Some Token.Omp_task ->
        ignore (next st); (Ast.Omp_task, fresh_clauses ())
    | Some Token.Omp_taskwait ->
        ignore (next st); (Ast.Omp_taskwait, fresh_clauses ())
    | Some Token.Omp_taskloop ->
        ignore (next st); (Ast.Omp_taskloop, fresh_clauses ())
    | Some Token.Omp_sections ->
        ignore (next st); (Ast.Omp_sections, fresh_clauses ())
    | Some Token.Omp_section ->
        ignore (next st); (Ast.Omp_section, fresh_clauses ())
    | _ -> fail st "expected an OpenMP directive name"
  in
  parse_clauses st acc;
  let pragma_end = expect st Token.Pragma_end in
  let clause_base = encode_clauses st acc in
  match tag with
  | Ast.Omp_barrier | Ast.Omp_taskwait ->
      add_node st
        { tag; main_token = sentinel; lhs = clause_base; rhs = 0 }
        (sentinel, pragma_end)
  | _ ->
      let stmt = parse_statement st in
      (match tag, st.nodes.(stmt).Ast.tag with
       | (Ast.Omp_for | Ast.Omp_parallel_for | Ast.Omp_taskloop), Ast.While ->
           ()
       | (Ast.Omp_for | Ast.Omp_parallel_for | Ast.Omp_taskloop), _ ->
           Source.error st.src st.tokens.(sentinel).Token.start
             "an OpenMP worksharing directive must precede a while loop"
       | Ast.Omp_sections, Ast.Block ->
           (* every statement of the governed block must be a section *)
           let b = st.nodes.(stmt) in
           for i = b.Ast.lhs to b.Ast.rhs - 1 do
             let s = st.extra.(i) in
             if st.nodes.(s).Ast.tag <> Ast.Omp_section then
               Source.error st.src
                 st.tokens.(fst st.spans.(s)).Token.start
                 "every statement of a sections block must be a \
                  '//$omp section'"
           done
       | Ast.Omp_sections, _ ->
           Source.error st.src st.tokens.(sentinel).Token.start
             "an OpenMP sections directive must precede a block"
       | _ -> ());
      add_node st
        { tag; main_token = sentinel; lhs = clause_base; rhs = stmt }
        (sentinel, snd st.spans.(stmt))

(* ------------------------------------------------------------------ *)
(* Top level.                                                          *)

let parse_fn st =
  let export = eat st Token.Kw_export in
  let kw = expect st Token.Kw_fn in
  let first = match export with Some e -> e | None -> kw in
  let name = expect st Token.Identifier in
  let _ = expect st Token.L_paren in
  let params = ref [] in
  if peek st <> Token.R_paren then begin
    let one () =
      let pname = expect st Token.Identifier in
      let _ = expect st Token.Colon in
      let ty = parse_type st in
      params := (pname, ty) :: !params
    in
    one ();
    while eat st Token.Comma <> None do one () done
  end;
  let _ = expect st Token.R_paren in
  let ret = parse_type st in
  let body = parse_block st in
  let params = List.rev !params in
  let proto = add_extra st (List.length params) in
  List.iter
    (fun (pname, ty) ->
      ignore (add_extra st pname);
      ignore (add_extra st ty))
    params;
  ignore (add_extra st ret);
  add_node st { tag = Ast.Fn_decl; main_token = name; lhs = proto; rhs = body }
    (first, snd st.spans.(body))

(* //$omp threadprivate(a, b): a top-level directive marking globals as
   per-thread (the named variables go into the clause block's private
   slice). *)
let parse_threadprivate st =
  let sentinel = expect st Token.Pragma_sentinel in
  (match eat_omp st Token.Omp_threadprivate with
   | Some _ -> ()
   | None ->
       fail st "only the 'threadprivate' directive may appear at the top \
                level");
  let acc = fresh_clauses () in
  let t0 = st.pos - 1 in  (* the threadprivate keyword *)
  acc.private_ <- parse_ident_list st;
  record_clause st acc Ompfront.Directive.Cprivate t0;
  let pragma_end = expect st Token.Pragma_end in
  let clause_base = encode_clauses st acc in
  add_node st
    { tag = Ast.Omp_threadprivate; main_token = sentinel; lhs = clause_base;
      rhs = 0 }
    (sentinel, pragma_end)

let parse_top_decl st =
  match peek st with
  | Token.Kw_fn | Token.Kw_export -> parse_fn st
  | Token.Kw_var | Token.Kw_const -> parse_var_decl st
  | Token.Pragma_sentinel -> parse_threadprivate st
  | t -> fail st "expected a top-level declaration, found '%s'"
           (Token.tag_to_string t)

(** Parse a whole source buffer. *)
let parse (src : Source.t) : Ast.t * Ast.spans =
  let tokens = Tokenizer.tokenize src in
  let st = {
    src; tokens; pos = 0;
    nodes = Array.make 64 dummy_node;
    n_nodes = 0;
    extra = Array.make 64 0;
    n_extra = 0;
    spans = Array.make 64 (0, 0);
    clause_spans = [];
  } in
  (* reserve node 0 for the root *)
  ignore (add_node st dummy_node (0, 0));
  let decls = ref [] in
  while peek st <> Token.Eof do
    decls := parse_top_decl st :: !decls
  done;
  let b, e = add_extra_list st (List.rev !decls) in
  set_node st 0
    { tag = Ast.Root; main_token = 0; lhs = b; rhs = e }
    (0, max 0 (Array.length tokens - 1));
  let ast = {
    Ast.source = src;
    tokens;
    nodes = Array.sub st.nodes 0 st.n_nodes;
    extra_data = Array.sub st.extra 0 st.n_extra;
    clause_spans = List.rev st.clause_spans;
  } in
  (ast, Array.sub st.spans 0 st.n_nodes)

let parse_string ?name text = parse (Source.of_string ?name text)

(** Tokens of the Zr language (a Zig subset).

    Following the paper's design (section III-A): OpenMP pragmas are
    special comments; the tokeniser emits one token for the sentinel
    ([//$omp]) and then tokenises the remainder of the pragma line as
    ordinary code, because the pragma consists entirely of tokens Zig
    already has.  OpenMP directive and clause names are *not* language
    keywords — adding them would break programs using those names as
    identifiers — so they are tokenised as identifiers and mapped to
    dedicated keyword tags during parsing via {!omp_keyword_of_string},
    reproducing the paper's modified [eatToken] scheme. *)

type tag =
  | Identifier
  | Int_literal
  | Float_literal
  | String_literal
  (* language keywords *)
  | Kw_fn | Kw_var | Kw_const | Kw_while | Kw_if | Kw_else | Kw_return
  | Kw_true | Kw_false | Kw_and | Kw_or | Kw_break | Kw_continue
  | Kw_undefined | Kw_export
  (* punctuation and operators *)
  | L_paren | R_paren | L_brace | R_brace | L_bracket | R_bracket
  | Comma | Semicolon | Colon
  | Dot | Dot_star | Dot_brace   (* '.', '.*', '.{' *)
  | Plus | Minus | Star | Slash | Percent
  | Eq | Plus_eq | Minus_eq | Star_eq | Slash_eq
  | Eq_eq | Bang_eq | Lt | Lt_eq | Gt | Gt_eq
  | Bang | Amp
  (* pragma structure *)
  | Pragma_sentinel  (* the '//$omp' sentinel *)
  | Pragma_end       (* end of the pragma line *)
  | Eof

type t = {
  tag : tag;
  start : int;  (* byte offset of first char *)
  stop : int;   (* one past last char *)
}

let tag_to_string = function
  | Identifier -> "identifier"
  | Int_literal -> "integer literal"
  | Float_literal -> "float literal"
  | String_literal -> "string literal"
  | Kw_fn -> "fn" | Kw_var -> "var" | Kw_const -> "const"
  | Kw_while -> "while" | Kw_if -> "if" | Kw_else -> "else"
  | Kw_return -> "return" | Kw_true -> "true" | Kw_false -> "false"
  | Kw_and -> "and" | Kw_or -> "or"
  | Kw_break -> "break" | Kw_continue -> "continue"
  | Kw_undefined -> "undefined" | Kw_export -> "export"
  | L_paren -> "(" | R_paren -> ")"
  | L_brace -> "{" | R_brace -> "}"
  | L_bracket -> "[" | R_bracket -> "]"
  | Comma -> "," | Semicolon -> ";" | Colon -> ":"
  | Dot -> "." | Dot_star -> ".*" | Dot_brace -> ".{"
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/"
  | Percent -> "%"
  | Eq -> "=" | Plus_eq -> "+=" | Minus_eq -> "-=" | Star_eq -> "*="
  | Slash_eq -> "/="
  | Eq_eq -> "==" | Bang_eq -> "!=" | Lt -> "<" | Lt_eq -> "<="
  | Gt -> ">" | Gt_eq -> ">="
  | Bang -> "!" | Amp -> "&"
  | Pragma_sentinel -> "//$omp"
  | Pragma_end -> "<end of pragma>"
  | Eof -> "<eof>"

(* Language keywords: these *are* reserved words. *)
let keyword_of_string = function
  | "fn" -> Some Kw_fn
  | "var" -> Some Kw_var
  | "const" -> Some Kw_const
  | "while" -> Some Kw_while
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "return" -> Some Kw_return
  | "true" -> Some Kw_true
  | "false" -> Some Kw_false
  | "and" -> Some Kw_and
  | "or" -> Some Kw_or
  | "break" -> Some Kw_break
  | "continue" -> Some Kw_continue
  | "undefined" -> Some Kw_undefined
  | "export" -> Some Kw_export
  | _ -> None

(* ------------------------------------------------------------------ *)
(** OpenMP keyword tags: the "new set of tags" the paper adds alongside
    the existing token tags.  They never appear in the token stream —
    the parser resolves an [Identifier] token to one of these through
    the hash map below when (and only when) it is parsing a pragma. *)

type omp_kw =
  | Omp_parallel | Omp_for
  | Omp_private | Omp_firstprivate | Omp_shared | Omp_reduction
  | Omp_schedule | Omp_static | Omp_dynamic | Omp_guided | Omp_runtime
  | Omp_auto
  | Omp_nowait | Omp_num_threads | Omp_default | Omp_collapse
  | Omp_none | Omp_barrier | Omp_critical | Omp_master | Omp_single
  | Omp_atomic | Omp_min | Omp_max | Omp_threadprivate
  | Omp_tile | Omp_unroll | Omp_interchange
  | Omp_task | Omp_taskwait | Omp_taskloop | Omp_grainsize
  | Omp_sections | Omp_section | Omp_copyprivate

let omp_keywords = [
  ("parallel", Omp_parallel); ("for", Omp_for);
  ("private", Omp_private); ("firstprivate", Omp_firstprivate);
  ("shared", Omp_shared); ("reduction", Omp_reduction);
  ("schedule", Omp_schedule); ("static", Omp_static);
  ("dynamic", Omp_dynamic); ("guided", Omp_guided);
  ("runtime", Omp_runtime); ("auto", Omp_auto);
  ("nowait", Omp_nowait); ("num_threads", Omp_num_threads);
  ("default", Omp_default); ("collapse", Omp_collapse);
  ("none", Omp_none); ("barrier", Omp_barrier);
  ("critical", Omp_critical); ("master", Omp_master);
  ("single", Omp_single); ("atomic", Omp_atomic);
  ("threadprivate", Omp_threadprivate);
  ("min", Omp_min); ("max", Omp_max);
  ("tile", Omp_tile); ("unroll", Omp_unroll);
  ("interchange", Omp_interchange);
  ("task", Omp_task); ("taskwait", Omp_taskwait);
  ("taskloop", Omp_taskloop); ("grainsize", Omp_grainsize);
  ("sections", Omp_sections); ("section", Omp_section);
  ("copyprivate", Omp_copyprivate);
]

let omp_keyword_table : (string, omp_kw) Hashtbl.t =
  let h = Hashtbl.create 32 in
  List.iter (fun (s, k) -> Hashtbl.add h s k) omp_keywords;
  h

let omp_keyword_of_string s = Hashtbl.find_opt omp_keyword_table s

let omp_kw_to_string kw =
  fst (List.find (fun (_, k) -> k = kw) omp_keywords)

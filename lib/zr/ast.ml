(** The Zr abstract syntax tree.

    The design mirrors the Zig compiler's data-oriented AST, which is
    what makes the paper's choices forced: nodes live in a flat table of
    [{tag; main_token; lhs; rhs}] records whose [lhs]/[rhs] either name
    other nodes or index into the shared [extra_data] array of 32-bit
    integers, and every node is anchored to the source text through its
    tokens.  OpenMP directives are ordinary nodes whose [lhs] points at
    their clause block in [extra_data] (paper, Figure 2). *)

type tag =
  | Root            (* lhs..rhs: extra slice of top-level decls *)
  | Fn_decl         (* main: name tok; lhs: extra proto; rhs: body block *)
  | Block           (* lhs..rhs: extra slice of statements *)
  | Var_decl        (* main: name tok; lhs: type node|0; rhs: init|0; var *)
  | Const_decl      (* as Var_decl, immutable *)
  | Assign          (* main: op tok (=, +=, ...); lhs: target; rhs: value *)
  | While           (* main: while tok; lhs: cond; rhs: extra [cont|0; body] *)
  | If              (* lhs: cond; rhs: extra [then; else|0] *)
  | Return          (* lhs: expr | 0 *)
  | Break
  | Continue
  | Expr_stmt       (* lhs: expr *)
  | Bin_op          (* main: op tok; lhs, rhs: operands *)
  | Un_op           (* main: op tok; lhs: operand *)
  | Call            (* lhs: callee; rhs: extra [n; args...] *)
  | Index           (* lhs: array expr; rhs: index expr *)
  | Field           (* lhs: expr; main: field name tok *)
  | Deref           (* lhs: expr; postfix dot-star dereference *)
  | Addr_of         (* lhs: expr  (&e) *)
  | Ident           (* main: token *)
  | Int_lit
  | Float_lit
  | String_lit
  | Bool_lit        (* main: true/false tok *)
  | Undefined_lit
  | Struct_lit      (* rhs: extra [n; (name tok, value node)...] *)
  | Type_name       (* main: token (i32, i64, f64, bool, void, name) *)
  | Type_slice      (* lhs: element type *)
  | Type_ptr        (* lhs: pointee type *)
  (* OpenMP directive statements; lhs: clause block base in extra_data;
     rhs: the governed statement node (0 for standalone directives). *)
  | Omp_parallel
  | Omp_for
  | Omp_parallel_for
  | Omp_barrier
  | Omp_critical
  | Omp_master
  | Omp_single
  | Omp_atomic
  | Omp_threadprivate  (* top-level; lhs: clause block (list in private slice) *)
  | Omp_task           (* lhs: clause block; rhs: governed statement *)
  | Omp_taskwait       (* standalone *)
  | Omp_taskloop       (* lhs: clause block; rhs: the governed while *)
  | Omp_sections       (* lhs: clause block; rhs: block of Omp_section *)
  | Omp_section        (* lhs: clause block; rhs: governed statement *)

let tag_is_omp = function
  | Omp_parallel | Omp_for | Omp_parallel_for | Omp_barrier
  | Omp_critical | Omp_master | Omp_single | Omp_atomic
  | Omp_threadprivate | Omp_task | Omp_taskwait | Omp_taskloop
  | Omp_sections | Omp_section -> true
  | Root | Fn_decl | Block | Var_decl | Const_decl | Assign | While | If
  | Return | Break | Continue | Expr_stmt | Bin_op | Un_op | Call | Index
  | Field | Deref | Addr_of | Ident | Int_lit | Float_lit | String_lit
  | Bool_lit | Undefined_lit | Struct_lit | Type_name | Type_slice
  | Type_ptr -> false

let omp_kind = function
  | Omp_parallel -> Some Ompfront.Directive.Parallel
  | Omp_for -> Some Ompfront.Directive.For
  | Omp_parallel_for -> Some Ompfront.Directive.Parallel_for
  | Omp_barrier -> Some Ompfront.Directive.Barrier
  | Omp_critical -> Some Ompfront.Directive.Critical
  | Omp_master -> Some Ompfront.Directive.Master
  | Omp_single -> Some Ompfront.Directive.Single
  | Omp_atomic -> Some Ompfront.Directive.Atomic
  | Omp_threadprivate -> Some Ompfront.Directive.Threadprivate
  | Omp_task -> Some Ompfront.Directive.Task
  | Omp_taskwait -> Some Ompfront.Directive.Taskwait
  | Omp_taskloop -> Some Ompfront.Directive.Taskloop
  | Omp_sections -> Some Ompfront.Directive.Sections
  | Omp_section -> Some Ompfront.Directive.Section
  | _ -> None

type node = {
  tag : tag;
  main_token : int;  (* index into the token array *)
  lhs : int;
  rhs : int;
}

type t = {
  source : Source.t;
  tokens : Token.t array;
  nodes : node array;        (* node 0 is the Root *)
  extra_data : int array;    (* the 32-bit side array *)
  clause_spans : (int * Ompfront.Directive.clause_span list) list;
      (* clause block base -> source spans of the clauses written on
         that directive, in source order (see {!clause_spans}) *)
}

let node t i = t.nodes.(i)

let extra t i = t.extra_data.(i)

(** Extra slice [\[b, e)] as a list. *)
let extra_slice t b e =
  Array.to_list (Array.sub t.extra_data b (e - b))

let token t i = t.tokens.(i)

let token_text t i = Tokenizer.text t.source t.tokens.(i)

(** Source byte range covered by node [i]: requires the first and last
    token indices, which the parser records implicitly through
    [main_token]; for ranges we compute bounds by walking children.  The
    preprocessor needs exact statement extents, so the parser also
    stores them: see {!Spans}. *)

(* Statement/expression extents: a parallel array filled by the parser
   mapping node index -> (first token, last token). *)
type spans = (int * int) array

let top_decls t =
  let root = t.nodes.(0) in
  extra_slice t root.lhs root.rhs

let block_stmts t i =
  let n = node t i in
  if n.tag <> Block then invalid_arg "Ast.block_stmts: not a block";
  extra_slice t n.lhs n.rhs

let call_args t i =
  let n = node t i in
  if n.tag <> Call then invalid_arg "Ast.call_args: not a call";
  let base = n.rhs in
  let count = extra t base in
  extra_slice t (base + 1) (base + 1 + count)

(** Clause view of an OpenMP directive node. *)
let clauses t i =
  let n = node t i in
  if not (tag_is_omp n.tag) then invalid_arg "Ast.clauses: not a directive";
  Ompfront.Directive.decode t.extra_data n.lhs

(** Per-clause source spans of directive node [i], in the order the
    clauses were written.  Each span covers the clause keyword through
    its closing parenthesis, so diagnostics can point at the precise
    clause instead of the whole pragma line. *)
let clause_spans t i : Ompfront.Directive.clause_span list =
  let n = node t i in
  if not (tag_is_omp n.tag) then
    invalid_arg "Ast.clause_spans: not a directive";
  match List.assoc_opt n.lhs t.clause_spans with
  | Some spans -> spans
  | None -> []

(** Byte range [\[start, stop)] of a clause span. *)
let clause_span_bytes t (cs : Ompfront.Directive.clause_span) =
  ((token t cs.Ompfront.Directive.ctok_first).Token.start,
   (token t cs.Ompfront.Directive.ctok_last).Token.stop)

(** Zigomp — pragma-driven shared-memory parallelism for the Zr language.

    The public API of this reproduction of "Pragma driven shared memory
    parallelism in Zig by supporting OpenMP loop directives" (SC-W
    2024).  The pipeline mirrors the paper's: Zr source annotated with
    [//$omp] pragma comments is tokenised and parsed into a Zig-style
    flat AST (clause data packed into the 32-bit [extra_data] array), a
    multi-pass preprocessor outlines parallel regions and lowers
    worksharing loops to [__kmpc_*] runtime calls, and the result
    executes against an OpenMP runtime built on OCaml domains.

    {1 Quick start}

    {[
      let program = {|
        fn dot(n: i64, x: []f64, y: []f64) f64 {
            var s: f64 = 0.0;
            var i: i64 = 0;
            //$omp parallel for reduction(+: s) shared(x, y)
            while (i < n) : (i += 1) {
                s += x[i] * y[i];
            }
            return s;
        }
      |} in
      let compiled = Zigomp.compile ~name:"dot.zr" program in
      let result =
        Zigomp.call compiled "dot"
          [ Zigomp.Value.VInt 3;
            Zigomp.Value.VFloatArr [| 1.; 2.; 3. |];
            Zigomp.Value.VFloatArr [| 4.; 5.; 6. |] ]
      in
      (* result = VFloat 32. , computed on a thread team *)
    ]}

    {1 Layers}

    - {!Frontend} — tokeniser, parser, AST ({!Zr}).
    - {!Pragmas} — OpenMP directive/clause model and the packed 32-bit
      encodings ({!Ompfront}).
    - {!Preprocessor} — the source-to-source lowering ({!Preproc}).
    - {!Runtime} — the OpenMP runtime on domains ({!Omprt}).
    - {!Simulator} — the ARCHER2 node model used to regenerate the
      paper's evaluation ({!Sim}, {!Simrt}).
    - {!Benchmarks} — the NPB kernels ({!Npb}) and the experiment
      harness ({!Harness}). *)

module Frontend = Zr
module Pragmas = Ompfront
module Preprocessor = Preproc
module Runtime = Omprt
module Simulator = Sim
module Simruntime = Simrt
module Benchmarks = Npb
module Harness = Harness
module Model = Omp_model

module Value = Interp.Value

(** Execution backend — the three tiers: [`Ast] walks the tree on
    every evaluation ({!Interp}, the executable specification),
    [`Compiled] stages each function once into nested OCaml closures
    over a flat slot frame ({!Interp.Compile}), and [`Bytecode] is
    [`Compiled] plus a register-bytecode VM for worksharing loop
    bodies: drain bodies the planner covers are lowered to fixed-width
    register instructions over untagged [int array]/[float array]
    files, with bounds guards elided where the subscript analysis
    proves every access of the chunk in range; anything uncovered
    falls back to the staged closures of the same program, so results,
    error messages and profile construct counts are identical across
    all three tiers. *)
type backend = [ `Compiled | `Ast | `Bytecode ]

(** [parse_backend s] — the pure [ZIGOMP_BACKEND] value parser
    (unit-tested directly, like the {!Omprt.Icv} [parse_*] family).
    Accepts the tier names and their synonyms, case-insensitively;
    [None] for anything else. *)
let parse_backend (s : string) : backend option =
  match String.lowercase_ascii (String.trim s) with
  | "ast" | "tree" | "walk" -> Some `Ast
  | "compiled" | "closure" | "staged" -> Some `Compiled
  | "bytecode" | "bc" | "vm" -> Some `Bytecode
  | _ -> None

(** Default backend: [`Compiled], overridable with
    [ZIGOMP_BACKEND=ast|compiled|bytecode] (the same escape-hatch
    shape as the [OMP_*] ICV environment variables, including the
    warn-once-and-fall-back treatment of malformed values: an
    unrecognised backend name is reported to stderr — unless
    [ZIGOMP_WARNINGS=0] — and [`Compiled] is used).  An empty value
    counts as unset. *)
let default_backend () : backend =
  match Sys.getenv_opt "ZIGOMP_BACKEND" with
  | None | Some "" -> `Compiled
  | Some v ->
      (match parse_backend v with
       | Some b -> b
       | None ->
           Omprt.Icv.warn_malformed ~var:"ZIGOMP_BACKEND" ~value:v
             ~expected:"'compiled', 'ast' or 'bytecode'" ~used:"compiled";
           `Compiled)

(** [parse_bc_elide s] — the pure [ZIGOMP_BC_ELIDE] parser: boolean
    switch for analysis-driven guard elision on the bytecode tier. *)
let parse_bc_elide (s : string) : bool option =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "on" | "yes" -> Some true
  | "0" | "false" | "off" | "no" -> Some false
  | _ -> None

let default_bc_elide () : bool =
  match Sys.getenv_opt "ZIGOMP_BC_ELIDE" with
  | None | Some "" -> true
  | Some v ->
      (match parse_bc_elide v with
       | Some b -> b
       | None ->
           Omprt.Icv.warn_malformed ~var:"ZIGOMP_BC_ELIDE" ~value:v
             ~expected:"'1' or '0'" ~used:"1";
           true)

type compiled = {
  prog : Interp.program;
  cc : Interp.Compile.t option;  (* Some iff backend <> `Ast *)
  backend : backend;
}

(** [preprocess ?name source] — run only the pragma lowering; returns
    the synthesised Zr source (what the paper's compiler hands to the
    next stage). *)
let preprocess = Preproc.Preprocess.run

let stage ?backend ?elide prog =
  let backend =
    match backend with Some b -> b | None -> default_backend ()
  in
  let cc =
    match backend with
    | `Compiled -> Some (Interp.Compile.compile prog)
    | `Bytecode ->
        let elide =
          match elide with Some e -> e | None -> default_bc_elide ()
        in
        Some (Interp.Compile.compile ~bc:{ Interp.Bcgen.elide } prog)
    | `Ast -> None
  in
  { prog; cc; backend }

(** [compile ?backend ?elide ?name source] — preprocess, parse, load,
    and (on the default [`Compiled] backend, or [`Bytecode]) stage
    every function into closures.  [elide] enables bounds-guard
    elision on the bytecode tier (default: [ZIGOMP_BC_ELIDE], else
    on); it is ignored by the other backends. *)
let compile ?backend ?elide ?name source : compiled =
  stage ?backend ?elide (Interp.load ?name source)

(** [compile_plain ?backend ?name source] — load without pragma
    processing (pragmas then cause a runtime error if reached; useful
    for testing the preprocessor's necessity). *)
let compile_plain ?backend ?elide ?name source : compiled =
  stage ?backend ?elide (Interp.load ?name ~preprocess:false source)

(** The synthesised source of a compiled program. *)
let preprocessed_source (p : compiled) = p.prog.Interp.preprocessed

(** The backend a program was staged for. *)
let backend_of (p : compiled) : backend = p.backend

(** Bytecode listings of every drain specialised so far (label ×
    disassembly, specialisation order).  Empty for the other backends,
    and before the program has run (specialisation is lazy). *)
let bc_listings (p : compiled) : (string * string) list =
  match p.cc with
  | Some cc -> Interp.Compile.bc_listings cc
  | None -> []

(** [call p fn args] — invoke an exported function.  Parallel regions
    inside it execute on OCaml domains through the bundled runtime. *)
let call (p : compiled) fname args =
  match p.cc with
  | Some cc -> Interp.Compile.call cc fname args
  | None -> Interp.call p.prog fname args

(** [run_main p] — invoke [main]. *)
let run_main (p : compiled) = call p "main" []

(** [register_host name f] — expose an OCaml function to Zr programs
    under [name], the analogue of the paper's C/Fortran interop
    ([extern fn] with C linkage, section IV). *)
let register_host = Interp.register_host

let unregister_host = Interp.unregister_host

(** [set_num_threads n] — the default team size ICV, as
    [omp_set_num_threads]. *)
let set_num_threads = Omprt.Api.set_num_threads

let get_max_threads = Omprt.Api.get_max_threads

(** [set_max_active_levels n] — enable nested parallelism up to [n]
    active levels ([omp_set_max_active_levels]; the default of 1
    serialises nested regions, as libomp does). *)
let set_max_active_levels = Omprt.Api.set_max_active_levels

let get_max_active_levels = Omprt.Api.get_max_active_levels

(** The race detector and schedule-exploration checker ([zrc --check]):
    findings, configuration, and the lower-level passes. *)
module Checker = Check

(** [check ?name ?config source] — run the full checker over a Zr
    program: execution-free lints, then the dynamic vector-clock race
    detector across the configured schedule set.  Deterministic for a
    fixed configuration; see {!Checker} for the report structure. *)
let check ?name ?config source : Check.Report.t =
  Check.check_source ?name ?config source

(** The static analyser ([zrc analyze]): data-sharing and dependence
    analysis with autoscoping — a backend that never executes the
    program.  See {!Analyzer} for the passes and the
    [PROVEN]/[MAY]/[CLEAN] taxonomy. *)
module Analyzer = Analyze

(** [analyze ?name source] — statically analyse a Zr program: per-region
    def/use dataflow, ZIV/SIV dependence tests, and clause autoscoping.
    The report shares {!Checker.Report} with the dynamic checker, so
    findings proved here suppress their dynamic duplicates through
    {!Checker.Report.merge}. *)
let analyze ?name source : Analyze.result = Analyze.run ?name source

(** [analyze_fix ?name source] — analyse and rewrite directives to a
    fixpoint; returns the fixed source, its final analysis, and the
    number of rewrite rounds. *)
let analyze_fix ?name ?max_rounds source =
  Analyze.fix_to_fixpoint ?name ?max_rounds source

(** Corpus batch mode ([zrc check --corpus], [zrc analyze --corpus]):
    every fixture under a directory plus the bundled NPB Zr kernels,
    one process, one machine-readable summary. *)
module Corpus = Corpus

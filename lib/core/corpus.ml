(** Corpus batch mode: every fixture, one process.

    [zrc check --corpus DIR] (and [zrc analyze --corpus DIR]) walk
    [DIR] for [.zr] fixtures and run each through the static analyser
    plus — in check mode — the dynamic checker, exactly as the
    per-file commands would, then append the three bundled NPB Zr
    kernels (CG, EP, IS) driven by their host entry points.  The
    result is one machine-readable summary (schema [zigomp-corpus/1])
    whose exit code is the maximum of the per-entry exit codes, so a
    single invocation replaces CI's per-fixture shell loops and the
    report artifact captures the whole corpus at once. *)

module Report = Check.Report
module V = Interp.Value

type mode = Mcheck | Manalyze

let mode_name = function Mcheck -> "check" | Manalyze -> "analyze"

type entry = {
  path : string;            (** fixture path, or [npb/<kernel>.zr] *)
  report : Report.t;        (** merged report, as the per-file command *)
  may : Report.finding list;  (** analyze-mode advisories *)
}

type t = {
  mode : mode;
  entries : entry list;     (** fixtures in path order, then kernels *)
  total_execs : int;        (** dynamic executions summed over entries *)
  exit : int;               (** max of the per-entry exit codes *)
}

(** [.zr] files under [dir], recursively, in sorted order. *)
let rec discover dir =
  match Sys.readdir dir with
  | exception Sys_error msg ->
      failwith (Printf.sprintf "corpus: cannot read %s: %s" dir msg)
  | names ->
      Array.sort compare names;
      Array.to_list names
      |> List.concat_map (fun f ->
             let p = Filename.concat dir f in
             if Sys.is_directory p then discover p
             else if Filename.check_suffix p ".zr" then [ p ]
             else [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One fixture, exactly as `zrc check FILE` / `zrc analyze FILE`. *)
let run_entry ~mode ~config ~no_static ~name source =
  match mode with
  | Manalyze ->
      let r = Analyze.run ~name source in
      { path = name; report = r.Analyze.report; may = r.Analyze.may }
  | Mcheck ->
      let dynamic = Check.check_source ~name ~config source in
      if no_static then { path = name; report = dynamic; may = [] }
      else
        let static = (Analyze.run ~name source).Analyze.report in
        { path = name; report = Report.merge ~static ~dynamic; may = [] }

(* ------------------------- the NPB kernels ------------------------ *)

(* A small SPD system for conj_grad (the tridiagonal [-1, 4, -1]
   matrix): the checked problem is tiny — the happens-before structure
   is identical at any size. *)
let spd_args n =
  let rows =
    Array.init n (fun i ->
        List.filter
          (fun (j, _) -> j >= 0 && j < n)
          [ (i - 1, -1.0); (i, 4.0); (i + 1, -1.0) ])
  in
  let rowstr = Array.make (n + 1) 0 in
  Array.iteri (fun i r -> rowstr.(i + 1) <- rowstr.(i) + List.length r) rows;
  let nnz = rowstr.(n) in
  let colidx = Array.make nnz 0 in
  let a = Array.make nnz 0. in
  Array.iteri
    (fun i r ->
      List.iteri
        (fun k (j, v) ->
          colidx.(rowstr.(i) + k) <- j;
          a.(rowstr.(i) + k) <- v)
        r)
    rows;
  let x = Array.make n 1.0 in
  let alloc () = Array.make n 0. in
  [ V.VInt n; V.VIntArr rowstr; V.VIntArr colidx; V.VFloatArr a;
    V.VFloatArr x; V.VFloatArr (alloc ()); V.VFloatArr (alloc ());
    V.VFloatArr (alloc ()); V.VFloatArr (alloc ()) ]

let kernel_sources =
  [ ("npb/conj_grad.zr", Harness.Zr_cg.conj_grad_src);
    ("npb/ep_main.zr", Harness.Zr_ep.src);
    ("npb/is_rank.zr", Harness.Zr_is.src) ]

let check_kernel ~config ~no_static name =
  let checked ~source ~entry =
    let dynamic = Check.check_run ~name ~config ~source ~entry () in
    if no_static then { path = name; report = dynamic; may = [] }
    else
      let static = (Analyze.run ~name source).Analyze.report in
      { path = name; report = Report.merge ~static ~dynamic; may = [] }
  in
  match name with
  | "npb/conj_grad.zr" ->
      checked ~source:Harness.Zr_cg.conj_grad_src
        ~entry:(fun prog ->
          ignore (Interp.call prog "conj_grad" (spd_args 16)))
  | "npb/ep_main.zr" ->
      Harness.Zr_ep.with_hosts (fun () ->
          checked ~source:Harness.Zr_ep.src
            ~entry:(fun prog ->
              let sums = Array.make 2 0. in
              let q = Array.make Npb.Ep.nq 0. in
              ignore
                (Interp.call prog "ep_main"
                   (Harness.Zr_ep.args ~nn:4 sums q))))
  | "npb/is_rank.zr" ->
      (* a shrunken problem: 1024 keys, 16 buckets, 2 iterations *)
      let p =
        { Npb.Classes.Is.cls = Npb.Classes.S; total_keys_log2 = 10;
          max_key_log2 = 7; num_buckets_log2 = 4; max_iterations = 2 }
      in
      Harness.Zr_is.with_hosts (fun () ->
          checked ~source:Harness.Zr_is.src
            ~entry:(fun prog ->
              let d =
                Harness.Zr_is.make_data p ~nthreads:config.Check.nthreads
              in
              ignore
                (Interp.call prog "is_rank"
                   (Harness.Zr_is.rank_args d ~itlo:1
                      ~ithi:p.Npb.Classes.Is.max_iterations))))
  | _ -> invalid_arg "Corpus.check_kernel"

let kernel_entry ~mode ~config ~no_static (name, source) =
  match mode with
  | Manalyze ->
      let r = Analyze.run ~name source in
      { path = name; report = r.Analyze.report; may = r.Analyze.may }
  | Mcheck -> check_kernel ~config ~no_static name

(* --------------------------- the sweep ---------------------------- *)

let executions (r : Report.t) =
  match r.Report.exploration with
  | Some (Report.Complete { executions }) -> executions
  | Some (Report.Bounded { executions; _ }) -> executions
  | Some Report.Sampled -> r.Report.schedules
  | None -> 0

(** Run the corpus: fixtures under [dir] in path order, then the NPB
    kernels (unless [kernels] is [false]).  A fixture whose check
    raises is reported as an [error] finding, not a crash — one bad
    fixture must not hide the rest of the corpus.  A directory with no
    fixtures at all is a [Failure], not an empty (vacuously clean)
    report: a mistyped path must not read as a passing corpus. *)
let run ?(config = Check.default_config) ?(kernels = true)
    ?(no_static = false) ~mode ~dir () : t =
  let guarded name f =
    try f () with
    | Zr.Source.Error msg | Failure msg | Invalid_argument msg ->
        { path = name;
          report =
            Report.make ~name ~schedules:0 [ Report.error ~detail:msg ];
          may = [] }
  in
  let paths = discover dir in
  if paths = [] then
    failwith
      (Printf.sprintf
         "corpus: no .zr fixtures under %s — an empty corpus would \
          report vacuously clean"
         dir);
  let fixtures =
    List.map
      (fun path ->
        guarded path (fun () ->
            run_entry ~mode ~config ~no_static ~name:path (read_file path)))
      paths
  in
  let kernel_entries =
    if not kernels then []
    else
      List.map
        (fun (name, source) ->
          guarded name (fun () ->
              kernel_entry ~mode ~config ~no_static (name, source)))
        kernel_sources
  in
  let entries = fixtures @ kernel_entries in
  { mode;
    entries;
    total_execs =
      List.fold_left (fun acc e -> acc + executions e.report) 0 entries;
    exit =
      List.fold_left (fun acc e -> max acc (Report.exit_code e.report)) 0
        entries }

let findings t =
  List.fold_left
    (fun acc e -> acc + List.length e.report.Report.findings)
    0 t.entries

let summary t =
  Printf.sprintf
    "corpus[%s]: %d entr%s, %d finding(s), %d execution(s), exit %d"
    (mode_name t.mode) (List.length t.entries)
    (if List.length t.entries = 1 then "y" else "ies")
    (findings t) t.total_execs t.exit

let to_string t =
  String.concat "\n"
    (List.map (fun e -> Report.to_string e.report) t.entries
    @ [ summary t ])

let to_json t =
  let entry e =
    Printf.sprintf "{\"path\": \"%s\", \"report\": %s}"
      (Report.json_escape e.path)
      (Report.to_json ~may:e.may e.report)
  in
  String.concat ""
    [ "{\"schema\": \"zigomp-corpus/1\"";
      Printf.sprintf ", \"mode\": \"%s\"" (mode_name t.mode);
      Printf.sprintf ", \"entries\": [%s]"
        (String.concat ", " (List.map entry t.entries));
      Printf.sprintf ", \"total_executions\": %d" t.total_execs;
      Printf.sprintf ", \"exit\": %d" t.exit;
      "}" ]

(** Roofline-with-cache-capacity performance model: converts an
    abstract {!Omp_model.Cost.t} into virtual seconds on a
    {!Machine.t}, given how many threads run concurrently.

    Models the three mechanisms behind the paper's figure shapes:
    compute-bound scaling (EP), bandwidth saturation (IS), and the
    L3-capacity effect producing super-linear points (CG at 96–128
    threads). *)

val miss_factor : Machine.t -> active:int -> float -> float
(** [miss_factor m ~active ws] — residual DRAM-traffic fraction for a
    loop repeatedly traversing [ws] bytes split across [active]
    threads: 1.0 far above the per-thread L3 share, [m.l3_hit_miss]
    once it fits, log-linear in between. *)

val bw_per_thread : Machine.t -> active:int -> float
(** Streamed bandwidth per thread under compact placement: limited by
    the core, an equal share of its CCX, and an equal share of the
    node. *)

val gather_bw_per_thread : Machine.t -> active:int -> float
(** Random-access bandwidth per thread (saturates much earlier). *)

val time :
  Machine.t -> active:int -> ?working_set:float -> Omp_model.Cost.t -> float
(** Virtual seconds for one thread to execute the cost while [active]
    threads run; compute, streamed and scattered traffic overlap
    (roofline): the slowest resource bounds. *)

type tile_prediction = {
  miss_before : float;
  miss_after : float;
  ai_before : float;
  ai_after : float;
  t_before : float;
  t_after : float;
  speedup : float;
}
(** Effect of shrinking a nest's reuse working set by tiling: L3 miss
    factors, effective arithmetic intensity (flops per DRAM byte) and
    one-traversal virtual time, before and after.  [speedup] is
    [t_before /. t_after]; 1.0 means no predicted change. *)

val predict_tiling :
  Machine.t ->
  active:int ->
  cost:Omp_model.Cost.t ->
  ws_before:float ->
  ws_after:float ->
  tile_prediction
(** [predict_tiling m ~active ~cost ~ws_before ~ws_after] — evaluate
    {!time} and {!miss_factor} at the two working sets. *)

val fork_time : Machine.t -> nthreads:int -> float

val barrier_time : Machine.t -> nthreads:int -> float
(** 0 for one thread; grows with log2 of the team size. *)

val atomic_time : Machine.t -> contenders:int -> float

(** Roofline-with-cache-capacity performance model.

    Converts an abstract {!Omp_model.Cost.t} into virtual seconds on a
    {!Machine.t} given how many threads are concurrently active.  Three
    mechanisms — exactly the ones behind the shapes of the paper's
    figures — are modelled:

    - compute-bound work scales with active threads (EP);
    - memory-bound work saturates once the active threads' aggregate
      demand reaches the node bandwidth (IS levelling off past 64
      threads);
    - a loop whose per-thread working-set slice shrinks below the L3
      share stops paying DRAM traffic, which is the super-linear effect
      the paper observes for CG at 96–128 threads and for Fortran EP at
      128. *)

open Omp_model

(** Residual DRAM-traffic fraction for a loop that repeatedly traverses
    [working_set] bytes split across [active] threads.  1.0 when the
    per-thread slice is far larger than its L3 share; [m.l3_hit_miss]
    once it fits; log-linear in between. *)
let miss_factor (m : Machine.t) ~active working_set =
  if working_set <= 0. then 1.0
  else begin
    let per_thread = working_set /. float_of_int (max 1 active) in
    let slice = Machine.l3_per_core m in
    let ratio = per_thread /. slice in
    if ratio <= 1.0 then m.l3_hit_miss
    else if ratio >= m.l3_spill_ratio then 1.0
    else
      (* interpolate miss between hit level and 1.0 in log(ratio) *)
      let t = log ratio /. log m.l3_spill_ratio in
      m.l3_hit_miss +. ((1.0 -. m.l3_hit_miss) *. t)
  end

(** Per-thread sustainable DRAM bandwidth with [active] threads placed
    compactly (libomp's default on ARCHER2: threads fill cores, and
    therefore CCXs, in order).  Three nested limits apply: what one core
    can draw, an equal share of its CCX's bandwidth (CCXs fill up four
    threads at a time), and an equal share of the node. *)
let bw_per_thread (m : Machine.t) ~active =
  let active = max 1 active in
  let on_my_ccx = min active m.ccx_size in
  Float.min m.core_mem_bw
    (Float.min
       (m.ccx_mem_bw /. float_of_int on_my_ccx)
       (m.node_mem_bw /. float_of_int active))

(** Per-thread random-access bandwidth: bounded by the core's ability to
    sustain outstanding misses and by an equal share of the node's
    (early-saturating) scattered-traffic limit. *)
let gather_bw_per_thread (m : Machine.t) ~active =
  let active = max 1 active in
  Float.min m.gather_core_bw (m.gather_node_bw /. float_of_int active)

(** [time m ~active ?working_set cost] — virtual seconds for one thread
    to execute [cost] while [active] threads run concurrently.  Compute,
    streamed traffic and scattered traffic are overlapped (roofline):
    the slowest resource bounds. *)
let time (m : Machine.t) ~active ?working_set (c : Cost.t) =
  let flop_t = c.Cost.flops /. m.flops_per_core in
  let miss = match working_set with
    | None -> 1.0
    | Some ws -> miss_factor m ~active ws
  in
  let stream_t = c.Cost.bytes *. miss /. bw_per_thread m ~active in
  let gather_t = c.Cost.gather *. miss /. gather_bw_per_thread m ~active in
  Float.max flop_t (Float.max stream_t gather_t)

(* ------------------------------------------------------------------ *)
(* Tiling prediction for [zrc analyze --predict].  A loop nest with
   reuse working set [ws_before] that a tiling shrinks to [ws_after]
   changes its L3 miss factor and therefore its effective arithmetic
   intensity (flops per byte actually drawn from DRAM) and runtime.   *)

type tile_prediction = {
  miss_before : float;
  miss_after : float;
  ai_before : float;  (* flops / (bytes * miss): effective intensity *)
  ai_after : float;
  t_before : float;   (* virtual seconds, one traversal *)
  t_after : float;
  speedup : float;    (* t_before / t_after; 1.0 = no predicted change *)
}

let predict_tiling (m : Machine.t) ~active ~(cost : Cost.t) ~ws_before
    ~ws_after : tile_prediction =
  let miss_before = miss_factor m ~active ws_before in
  let miss_after = miss_factor m ~active ws_after in
  let ai miss =
    let dram = Cost.total_bytes cost *. miss in
    if dram <= 0. then Float.infinity else cost.Cost.flops /. dram
  in
  let t_before = time m ~active ~working_set:ws_before cost in
  let t_after = time m ~active ~working_set:ws_after cost in
  { miss_before; miss_after;
    ai_before = ai miss_before; ai_after = ai miss_after;
    t_before; t_after;
    speedup = (if t_after > 0. then t_before /. t_after else 1.0) }

let fork_time (m : Machine.t) ~nthreads =
  m.fork_base +. (m.fork_per_thread *. float_of_int nthreads)

let barrier_time (m : Machine.t) ~nthreads =
  if nthreads <= 1 then 0.
  else
    m.barrier_base
    +. (m.barrier_per_level *. (log (float_of_int nthreads) /. log 2.))

(** Cost of one atomic read-modify-write when [contenders] threads hammer
    the same cache line. *)
let atomic_time (m : Machine.t) ~contenders =
  m.atomic_rmw +. (m.atomic_contention *. float_of_int (max 0 (contenders - 1)))

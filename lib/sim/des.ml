(** Discrete-event scheduler over cooperative virtual threads.

    Virtual threads are OCaml computations that interact with simulated
    time through effects: [Advance dt] charges [dt] seconds to the
    calling thread's clock, and [Suspend register] parks the thread until
    some other thread wakes it (barriers, mutexes).  The scheduler always
    resumes the runnable thread with the smallest clock (ties broken by
    spawn order), so every interaction with shared state happens in
    global time order and the whole simulation is deterministic.

    This is the substrate the simulated OpenMP runtime ({!module:Simrt})
    runs on; up to 128 virtual threads model the ARCHER2 node's cores on
    our single-core host. *)

type wake = at:float -> unit
(** Wake a suspended thread, lower-bounding its clock by [at]. *)

type _ Effect.t +=
  | Advance : float -> unit Effect.t
  | Suspend : (wake -> unit) -> unit Effect.t

type vthread = {
  id : int;
  mutable clock : float;
  mutable done_ : bool;
}

type t = {
  runq : entry Heap.t;
  mutable threads : vthread list;  (* newest first *)
  mutable current : vthread option;
  mutable spawned : int;
  mutable finished : int;
  mutable horizon : float;  (* max clock observed at completion points *)
  mutable decide : (int list -> int) option;
      (* controlled mode: pick the next thread from the runnable set *)
}

(* Runqueue entries carry the virtual-thread id so a controlled
   scheduler can be offered the runnable set by identity. *)
and entry = { eid : int; estep : unit -> unit }

exception Deadlock of string

let create () = {
  runq = Heap.create ();
  threads = [];
  current = None;
  spawned = 0;
  finished = 0;
  horizon = 0.;
  decide = None;
}

(** [set_decide t f] — switch the scheduler into controlled mode: at
    every scheduling point [f] receives the sorted ids of the runnable
    virtual threads and returns the one to resume, overriding the
    min-clock rule.  A thread is runnable iff it is neither running nor
    suspended on a {!Suspend} registration.  Used by the DPOR model
    checker to force and replay interleavings; everything else about
    the simulation (spawning, suspension, wake-ups) is unchanged. *)
let set_decide t f = t.decide <- Some f

let clear_decide t = t.decide <- None

let self t =
  match t.current with
  | Some vt -> vt
  | None -> invalid_arg "Des.self: no virtual thread is running"

let now t = (self t).clock

(* Run [step] (a fresh thread body) as [vt], handling its effects.  Every
   handler case re-enqueues or parks the continuation and returns control
   to the main loop; deep handlers persist, so later effects performed by
   the resumed continuation land back here. *)
let exec t vt (step : unit -> unit) =
  t.current <- Some vt;
  let open Effect.Deep in
  match_with step ()
    { retc = (fun () ->
          vt.done_ <- true;
          t.finished <- t.finished + 1;
          if vt.clock > t.horizon then t.horizon <- vt.clock);
      exnc = (fun e -> raise e);
      effc = (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance dt ->
              Some (fun (k : (a, unit) continuation) ->
                  vt.clock <- vt.clock +. dt;
                  Heap.push t.runq vt.clock
                    { eid = vt.id;
                      estep = (fun () ->
                          t.current <- Some vt;
                          continue k ()) })
          | Suspend register ->
              Some (fun (k : (a, unit) continuation) ->
                  let woken = ref false in
                  register (fun ~at ->
                      if !woken then
                        invalid_arg "Des: thread woken twice";
                      woken := true;
                      if at > vt.clock then vt.clock <- at;
                      Heap.push t.runq vt.clock
                        { eid = vt.id;
                          estep = (fun () ->
                              t.current <- Some vt;
                              continue k ()) }))
          | _ -> None) }

(** [spawn t ?at body] — create a virtual thread whose clock starts at
    [at] (default: the spawner's clock, or 0 outside any thread). *)
let spawn t ?at body =
  let start =
    match at, t.current with
    | Some x, _ -> x
    | None, Some vt -> vt.clock
    | None, None -> 0.
  in
  let vt = { id = t.spawned; clock = start; done_ = false } in
  t.spawned <- t.spawned + 1;
  t.threads <- vt :: t.threads;
  Heap.push t.runq start { eid = vt.id; estep = (fun () -> exec t vt body) }

(* The next step to run: min-clock order normally; in controlled mode
   the decide hook picks among the runnable ids (a thread has at most
   one queued entry, so the offered ids are distinct). *)
let pop_next t =
  match t.decide with
  | None ->
      (match Heap.pop t.runq with
       | Some (_, e) -> Some e.estep
       | None -> None)
  | Some decide ->
      if Heap.is_empty t.runq then None
      else begin
        let entries = ref [] in
        let rec drain () =
          match Heap.pop t.runq with
          | Some (clk, e) ->
              entries := (clk, e) :: !entries;
              drain ()
          | None -> ()
        in
        drain ();
        let entries = List.rev !entries in
        let ids =
          List.sort compare (List.map (fun (_, e) -> e.eid) entries)
        in
        let chosen = decide ids in
        let rest, found =
          List.fold_left
            (fun (rest, found) (clk, e) ->
              if found = None && e.eid = chosen then (rest, Some e)
              else ((clk, e) :: rest, found))
            ([], None) entries
        in
        match found with
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Des: scheduling decision chose thread %d, which is \
                  not runnable" chosen)
        | Some e ->
            List.iter (fun (clk, e) -> Heap.push t.runq clk e) (List.rev rest);
            Some e.estep
      end

(** Drive the simulation until every spawned thread has finished.
    Returns the makespan (latest clock at any completion).  Raises
    {!Deadlock} if threads remain but none is runnable. *)
let run t =
  let rec loop () =
    match pop_next t with
    | Some step -> step (); loop ()
    | None ->
        if t.finished < t.spawned then
          raise (Deadlock
                   (Printf.sprintf
                      "Des.run: %d of %d virtual threads blocked forever"
                      (t.spawned - t.finished) t.spawned))
  in
  loop ();
  t.current <- None;
  t.horizon

(* ------------------------------------------------------------------ *)
(* Primitives for code running inside a virtual thread.                *)

let advance _t dt = if dt > 0. then Effect.perform (Advance dt)

let yield _t = Effect.perform (Advance 0.)

let suspend _t register = Effect.perform (Suspend register)

(* ------------------------------------------------------------------ *)
(** Simulated barrier: all [size] participants block; the last arrival
    releases everyone at [max arrival clock + cost], where [cost] is
    supplied by the caller from the machine model. *)
module Sbarrier = struct
  type nonrec t = {
    des : t;
    size : int;
    mutable arrived : wake list;
    mutable max_clock : float;
  }

  let create des size =
    if size <= 0 then invalid_arg "Sbarrier.create";
    { des; size; arrived = []; max_clock = 0. }

  let wait b ~cost =
    if b.size = 1 then advance b.des cost
    else begin
      let vt = self b.des in
      if vt.clock > b.max_clock then b.max_clock <- vt.clock;
      if List.length b.arrived = b.size - 1 then begin
        (* last arrival: release everyone at the rendezvous time *)
        let release = b.max_clock +. cost in
        let waiters = b.arrived in
        b.arrived <- [];
        b.max_clock <- 0.;
        List.iter (fun wake -> wake ~at:release) (List.rev waiters);
        advance b.des (release -. vt.clock)
      end else
        suspend b.des (fun wake -> b.arrived <- wake :: b.arrived)
    end
end

(* ------------------------------------------------------------------ *)
(** Simulated mutex with FIFO handoff: a releasing thread passes the lock
    to the earliest waiter, whose clock is raised to the release time.
    Models [critical] serialisation. *)
module Smutex = struct
  type nonrec t = {
    des : t;
    mutable locked : bool;
    mutable free_at : float;  (* time the current holder will release *)
    waiters : wake Queue.t;
  }

  let create des = { des; locked = false; free_at = 0.; waiters = Queue.create () }

  (** [lock m] — acquire, advancing the caller's clock past any current
      holder.  The caller must later call {!unlock}. *)
  let lock m =
    let vt = self m.des in
    if not m.locked then begin
      m.locked <- true;
      if m.free_at > vt.clock then vt.clock <- m.free_at
    end else
      suspend m.des (fun wake -> Queue.push wake m.waiters)

  (** [unlock m] — release at the caller's current clock; the next waiter
      (if any) resumes no earlier than that. *)
  let unlock m =
    let vt = self m.des in
    m.free_at <- vt.clock;
    match Queue.take_opt m.waiters with
    | Some wake ->
        (* hand off: stays locked, waiter resumes at release time *)
        wake ~at:vt.clock
    | None ->
        m.locked <- false
end

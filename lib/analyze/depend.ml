(** Pairwise conflict and dependence analysis (the analyser's second
    pass).

    Given the access sets of {!Dataflow}, decide for every pair of
    same-variable accesses in the same barrier phase whether the pair
    can be a data race or a loop-carried dependence, and with what
    confidence:

    - [VNone]: the pair is proved safe (synchronised, barrier-ordered
      by construction, or provably disjoint storage);
    - [VProven]: the conflict is certain under the checker's execution
      model — a team of at least two threads must be able to produce
      an unordered conflicting pair.  Proven findings are required to
      be observable by the dynamic vector-clock detector;
    - [VMay]: the analysis cannot prove either way (opaque subscripts,
      unknown trip counts, non-static schedules, guarded accesses,
      call effects).  May findings are advisory.

    Subscript reasoning is the classical ZIV/SIV battery restricted to
    the [i + c] shapes {!Dataflow} produces: a ZIV pair of unequal
    constants is independent; an SIV pair with offsets [c1], [c2] and
    step [s] depends iff [s] divides [c2 - c1] with a distance
    [d = (c2 - c1) / s] inside the iteration space — [d = 0] is a
    same-iteration (thread-local) access, [d <> 0] a loop-carried
    dependence with direction [<] (or [>] for negative distance). *)

module Df = Dataflow

type verdict =
  | VNone
  | VMay of string
  | VProven of string

(** A loop-carried dependence found between affine subscripts: the
    distance in iterations and its direction. *)
type carried = { distance : int; direction : string }

type conflict = {
  a : Df.access;
  b : Df.access;          (** [a.seq <= b.seq] *)
  verdict : verdict;      (** never [VNone] *)
  carried : carried option;
}

(* ------------------------------ helpers --------------------------- *)

let trips (li : Df.loop_info) : int option =
  match (li.lb, li.ub, li.step) with
  | Some lb, Some ub, Some s when s <> 0 ->
      let last =
        if li.linclusive then ub else if s > 0 then ub - 1 else ub + 1
      in
      let d = if s > 0 then last - lb else lb - last in
      Some (if d < 0 then 0 else (d / abs s) + 1)
  | _ -> None

(* Distributed conflicts are PROVEN only when a static-unchunked
   schedule with at least two iterations guarantees two different
   threads execute conflicting iterations. *)
let split_proven li =
  li.Df.static_unchunked
  && (match trips li with Some t -> t >= 2 | None -> false)

(* The element interval touched by [counter + c] over the whole loop.
   The interval arithmetic lives in {!Omp_model.Subscript} so the
   bytecode tier's guard elision provably applies the same reasoning
   per chunk. *)
let affine_interval li c =
  match (li.Df.lb, li.Df.step, trips li) with
  | Some lb, Some s, Some t ->
      Omp_model.Subscript.affine_interval ~lb ~step:s ~trips:t c
  | _ -> None

(* Is constant element [k] ever touched by [counter + c]? *)
let affine_hits li c k =
  match (li.Df.lb, li.Df.step, trips li) with
  | Some lb, Some s, Some t ->
      Omp_model.Subscript.affine_hits ~lb ~step:s ~trips:t c k
  | _ -> None

(* Storage overlap of two subscripts evaluated in *different*
   constructs (no iteration pairing applies). *)
let overlap loops (sa : Df.sub option) (sb : Df.sub option) :
    [ `Yes | `No | `Unknown ] =
  let loop d = List.assoc_opt d loops in
  match (sa, sb) with
  | None, _ | _, None -> `Yes  (* scalars: same cell *)
  | Some (Df.Sconst k1), Some (Df.Sconst k2) ->
      if k1 = k2 then `Yes else `No
  | Some (Df.Saffine (d, c)), Some (Df.Sconst k)
  | Some (Df.Sconst k), Some (Df.Saffine (d, c)) -> (
      match loop d with
      | Some li -> (
          match affine_hits li c k with
          | Some true -> `Yes
          | Some false -> `No
          | None -> `Unknown)
      | None -> `Unknown)
  | Some (Df.Saffine (d1, c1)), Some (Df.Saffine (d2, c2)) -> (
      match (loop d1, loop d2) with
      | Some l1, Some l2 -> (
          match (affine_interval l1 c1, affine_interval l2 c2) with
          | Some (lo1, hi1), Some (lo2, hi2) ->
              if hi1 < lo2 || hi2 < lo1 then `No else `Unknown
          | _ -> `Unknown)
      | _ -> `Unknown)
  | Some Df.Sopaque, _ | _, Some Df.Sopaque -> `Unknown

(* Both sides synchronised against each other? *)
let synced (a : Df.access) (b : Df.access) =
  match (a.sync, b.sync) with
  | Df.Satomic, Df.Satomic -> true
  | Df.Scrit n1, Df.Scrit n2 -> n1 = n2
  | _ -> false

let may_of = function
  | VProven r -> VMay r
  | v -> v

(* ----------------------- same-loop (SIV) rules --------------------- *)

let same_loop_pair li (a : Df.access) (b : Df.access) :
    verdict * carried option =
  match (a.sub, b.sub) with
  | None, None | None, Some _ | Some _, None ->
      (* a scalar cell touched by distributed iterations: conflicting
         iterations land on different threads *)
      ( (if split_proven li then
           VProven "distributed iterations access the same scalar cell"
         else VMay "distributed iterations may access the same scalar cell"),
        None )
  | Some (Df.Saffine (_, c1)), Some (Df.Saffine (_, c2)) when c1 = c2 ->
      (* same element only in the same iteration: thread-local order *)
      (VNone, None)
  | Some (Df.Saffine (_, c1)), Some (Df.Saffine (_, c2)) -> (
      match li.Df.step with
      | Some s when s <> 0 -> (
          (* the distance arithmetic is shared with the preprocessor's
             transform legality checks through {!Omp_model.Depvec} *)
          match Omp_model.Depvec.siv_distance ~c1 ~c2 ~step:s with
          | None -> (VNone, None)
          | Some d ->
              let dir =
                Omp_model.Depvec.(dir_to_string (dir_of_distance d))
              in
              let carried = Some { distance = abs d; direction = dir } in
              (match trips li with
               | Some t when abs d >= t -> (VNone, None)
               | Some t when t >= 2 ->
                   (* a contiguous split over two threads separates
                      iterations [ceil(t/2)] apart at most; a distance
                      within half the iteration space must cross the
                      chunk boundary of some team size *)
                   if li.Df.static_unchunked && abs d <= t / 2 then
                     ( VProven
                         (Printf.sprintf
                            "loop-carried dependence, distance %d, \
                             direction (%s)"
                            (abs d) dir),
                       carried )
                   else
                     ( VMay
                         (Printf.sprintf
                            "loop-carried dependence, distance %d, may \
                             stay inside one thread's chunk"
                            (abs d)),
                       carried )
               | _ ->
                   ( VMay
                       (Printf.sprintf
                          "possible loop-carried dependence, distance %d"
                          (abs d)),
                     carried )))
      | _ -> (VMay "possible loop-carried dependence, unknown step", None))
  | Some (Df.Saffine (_, c)), Some (Df.Sconst k)
  | Some (Df.Sconst k), Some (Df.Saffine (_, c)) -> (
      match affine_hits li c k with
      | Some false -> (VNone, None)
      | Some true ->
          ( (if split_proven li then
               VProven
                 (Printf.sprintf
                    "element %d is touched by distributed iterations" k)
             else
               VMay
                 (Printf.sprintf
                    "element %d may be touched by distributed iterations" k)),
            None )
      | None -> (VMay "constant and affine subscripts may overlap", None))
  | Some (Df.Sconst k1), Some (Df.Sconst k2) ->
      if k1 <> k2 then (VNone, None)
      else
        ( (if split_proven li then
             VProven "distributed iterations access the same element"
           else VMay "distributed iterations may access the same element"),
          None )
  | Some Df.Sopaque, Some _ | Some _, Some Df.Sopaque ->
      (VMay "opaque subscript: accesses may overlap", None)

(* Same-partition idiom: two static-unchunked loops with identical
   literal iteration spaces distribute iteration [i] to the same
   thread, so equal-offset affine accesses stay thread-local even
   without a barrier between the loops. *)
let same_partition loops (a : Df.access) (b : Df.access) l1 l2 =
  match (a.Df.sub, b.Df.sub) with
  | Some (Df.Saffine (_, c1)), Some (Df.Saffine (_, c2)) when c1 = c2 -> (
      match (List.assoc_opt l1 loops, List.assoc_opt l2 loops) with
      | Some i1, Some i2 ->
          i1.Df.static_unchunked && i2.Df.static_unchunked
          && i1.Df.lb <> None && i1.Df.lb = i2.Df.lb && i1.Df.ub = i2.Df.ub
          && i1.Df.step <> None && i1.Df.step = i2.Df.step
          && i1.Df.linclusive = i2.Df.linclusive
      | _ -> false)
  | _ -> false

(* ----------------------- task-pair (MHP) rules --------------------- *)

(* Two subscripts affine in the loop identifying the instances of one
   multi-instance task node: classical SIV reasoning where "iteration"
   means "instance".  Equal offsets are the same instance (sequential);
   a distance of at least [tgrain] iterations is guaranteed to cross
   into another deferred instance. *)
let instance_pair li_opt (i : Df.task_info) c1 c2 : verdict * carried option =
  if c1 = c2 then (VNone, None)
  else
    match li_opt with
    | Some li -> (
        match li.Df.step with
        | Some s when s <> 0 -> (
            match Omp_model.Depvec.siv_distance ~c1 ~c2 ~step:s with
            | None -> (VNone, None)
            | Some d ->
                let dir =
                  Omp_model.Depvec.(dir_to_string (dir_of_distance d))
                in
                let carried = Some { distance = abs d; direction = dir } in
                let t = trips li in
                (match t with
                 | Some t when abs d >= t -> (VNone, None)
                 | Some t when t <= i.Df.tgrain ->
                     (VNone, None) (* one deferred instance: sequential *)
                 | Some _ when abs d >= i.Df.tgrain && not i.Df.tteam ->
                     ( VProven
                         (Printf.sprintf
                            "dependence across deferred instances, \
                             distance %d, direction (%s)"
                            (abs d) dir),
                       carried )
                 | _ ->
                     ( VMay
                         (Printf.sprintf
                            "possible dependence across deferred \
                             instances, distance %d"
                            (abs d)),
                       carried )))
        | _ ->
            (VMay "possible cross-instance dependence, unknown step", None))
    | None -> (VMay "unanalysable task-instance loop", None)

(* At least one side sits in a deferred body: the task graph decides.
   [Par] pairs then fall back to storage-overlap reasoning. *)
let task_pair g (r : Df.region) loops (a : Df.access) (b : Df.access) :
    verdict * carried option =
  let inst =
    if a.Df.task <> 0 && a.Df.task = b.Df.task then
      match List.assoc_opt a.Df.task r.Df.tasks with
      | Some i when i.Df.tinstloop <> 0 -> (
          match (a.Df.sub, b.Df.sub) with
          | Some (Df.Saffine (l1, c1)), Some (Df.Saffine (l2, c2))
            when l1 = i.Df.tinstloop && l2 = i.Df.tinstloop ->
              Some (instance_pair (List.assoc_opt l1 loops) i c1 c2)
          | _ -> None)
      | _ -> None
    else None
  in
  match inst with
  | Some v -> v
  | None -> (
      match Taskgraph.relate g a b with
      | Taskgraph.Ordered -> (VNone, None)
      | Taskgraph.Par { certain; why } -> (
          match overlap loops a.Df.sub b.Df.sub with
          | `No -> (VNone, None)
          | `Yes -> ((if certain then VProven why else VMay why), None)
          | `Unknown -> (VMay (why ^ "; storage overlap unproven"), None)))

(* --------------------------- the pair rule ------------------------- *)

let analyse_pair g (r : Df.region) loops (a : Df.access) (b : Df.access) :
    verdict * carried option =
  if a.Df.rw = `R && b.Df.rw = `R then (VNone, None)
  else if a.Df.phase <> b.Df.phase then (VNone, None)
  else if synced a b then (VNone, None)
  else
    let demote (v, c) =
      if a.Df.guarded || b.Df.guarded || a.Df.viacall || b.Df.viacall then
        (may_of v, c)
      else (v, c)
    in
    let conflict_by_overlap proven_reason =
      match overlap loops a.Df.sub b.Df.sub with
      | `No -> (VNone, None)
      | `Yes -> (VProven proven_reason, None)
      | `Unknown -> (VMay (proven_reason ^ " (storage overlap unproven)"),
                     None)
    in
    demote
      (if a.Df.task <> 0 || b.Df.task <> 0 then task_pair g r loops a b
       else
      match (a.Df.mult, b.Df.mult) with
       | Df.Mseq, _ | _, Df.Mseq ->
           (VNone, None)  (* sequential frame code: program order *)
       | Df.Mmaster _, Df.Mmaster _ ->
           (VNone, None)  (* always the master thread, program order *)
       | Df.Msingle (d1, nw1), Df.Msingle (d2, _) ->
           if d1 = d2 then
             if nw1 && List.mem d1 r.Df.reenter then
               ( VMay
                   "single(nowait) encounters may pick different \
                    executing threads",
                 None )
             else (VNone, None)
           else
             ( VMay
                 "different single constructs may execute on different \
                  threads",
               None )
       | Df.Msingle _, Df.Mmaster _ | Df.Mmaster _, Df.Msingle _ ->
           (VMay "the single executor may not be the master thread", None)
       | Df.Mdist l1, Df.Mdist l2 when l1 = l2 -> (
           match List.assoc_opt l1 loops with
           | Some li -> same_loop_pair li a b
           | None -> (VMay "unanalysable worksharing loop", None))
       | Df.Mdist l1, Df.Mdist l2 ->
           if same_partition loops a b l1 l2 then (VNone, None)
           else
             ( VMay
                 "worksharing loops sharing a phase may assign the \
                  element to different threads",
               None )
       | Df.Mdist l, _ | _, Df.Mdist l -> (
           (* loop iterations against code executed outside the loop
              in the same phase (nowait, or code around the loop) *)
           match List.assoc_opt l loops with
           | Some li -> (
               match overlap loops a.Df.sub b.Df.sub with
               | `No -> (VNone, None)
               | `Yes ->
                   ( (if split_proven li then
                        VProven
                          "worksharing iterations are unordered with the \
                           other access in the same phase"
                      else
                        VMay
                          "worksharing iterations may be unordered with \
                           the other access"),
                     None )
               | `Unknown ->
                   ( VMay
                       "worksharing iterations may touch the same \
                        storage as the other access",
                     None ))
           | None -> (VMay "unanalysable worksharing loop", None))
       | Df.Mall, Df.Mall ->
           (* every thread executes both: any cross-thread pair of a
              write and another access to the same cell conflicts *)
           conflict_by_overlap
             "all threads perform the access without synchronisation"
       | Df.Mall, (Df.Msingle _ | Df.Mmaster _)
       | (Df.Msingle _ | Df.Mmaster _), Df.Mall ->
           conflict_by_overlap
             "the redundant team access conflicts with the one-thread \
              construct")

(** All conflicting pairs of a region, in a stable order. *)
let conflicts (r : Df.region) : conflict list =
  let g = Taskgraph.build r in
  let loops = r.loops @ r.sloops in
  let arr = Array.of_list r.accesses in
  let n = Array.length arr in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if a.Df.var = b.Df.var then begin
        let a, b = if a.Df.seq <= b.Df.seq then (a, b) else (b, a) in
        match analyse_pair g r loops a b with
        | VNone, _ -> ()
        | verdict, carried -> out := { a; b; verdict; carried } :: !out
      end
    done
  done;
  List.rev !out

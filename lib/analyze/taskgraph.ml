(** Static task graph and may-happen-in-parallel relation (tentpole of
    the tasking-aware analyser).

    {!Dataflow} records, per region, one node per [task] construct,
    per [taskloop] (standing for all its chunk tasks) and per
    [section], each with its spawn point, enclosing frame and — when a
    dominating [taskwait] (explicit, or the one closing a [taskloop])
    joins it — its completion point.  This module turns those nodes
    into an MHP relation over accesses, mirroring the dynamic
    checker's happens-before model:

    - {e spawn edge}: code of the spawning frame sequenced before the
      creation point happens-before the task body — valid only when
      the code and the creation run in the same execution context
      ([same_thread]) and the construct has a single instance;
    - {e completion edge}: a [taskwait] joins the {e direct} children
      of its frame; code sequenced after it is ordered after those
      bodies — valid only when the waiting context is the spawning
      context (each thread's implicit task owns its own children);
    - {e barriers} (and the implicit barrier of non-[nowait]
      worksharing) complete {e all} tasks of the team; that edge is
      already folded into {!Dataflow}'s phase numbering, so this module
      never sees cross-phase pairs.

    Everything else is [Par]: possibly concurrent, with [certain]
    saying whether a two-thread team must be able to produce the
    overlap (team-replicated encounters degrade to uncertain). *)

module Df = Dataflow

type rel =
  | Ordered        (** a happens-before chain orders the two accesses *)
  | Par of { certain : bool; why : string }
      (** may run concurrently; [certain] when a conflicting unordered
          pair must be schedulable *)

type t = { tasks : (int * Df.task_info) list }

let build (r : Df.region) : t = { tasks = r.Df.tasks }

let info g d = List.assoc_opt d g.tasks

(** Do two multiplicities denote the same executing thread?  [Mseq]
    is the one sequential frame; a [single] executor is consistent only
    within one construct (another [single] may elect someone else);
    [master] is always thread 0.  Team-replicated contexts never pin a
    thread. *)
let same_thread (m1 : Df.mult) (m2 : Df.mult) =
  match (m1, m2) with
  | Df.Mseq, Df.Mseq -> true
  | Df.Msingle (d1, _), Df.Msingle (d2, _) -> d1 = d2
  | Df.Mmaster _, Df.Mmaster _ -> true
  | _ -> false

(* Frame chain from the encountering code (0) down to [tid]. *)
let chain g tid =
  let rec go acc d =
    if d = 0 then 0 :: acc
    else
      match info g d with
      | Some i -> go (d :: acc) i.Df.tparent
      | None -> 0 :: acc (* unknown frame: treat as a direct child *)
  in
  go [] tid

let why_of (i : Df.task_info) =
  match i.Df.tkind with
  | Df.Ttask ->
      "the deferred task body is unordered with this access (no \
       taskwait or barrier between them)"
  | Df.Tchunk -> "taskloop chunks run as unordered deferred tasks"
  | Df.Tsection _ ->
      "the section body runs on an unspecified thread, unordered with \
       this access"

(* Code of the task's own frame against the task body. *)
let code_vs_task g (code : Df.access) t =
  match info g t with
  | None -> Par { certain = false; why = "unknown task frame" }
  | Some i ->
      let before_spawn =
        (* sequenced before the creation point, in the same execution
           context: the spawn edge orders it.  With multiple instances
           only the first spawn is bounded by [tspawn], so the edge
           degrades to uncertainty rather than order. *)
        code.Df.seq <= i.Df.tspawn
        && (not i.Df.tteam)
        && same_thread code.Df.mult i.Df.tcmult
      in
      let after_complete =
        match i.Df.tcomplete with
        | Some (w, wm) ->
            code.Df.seq >= w
            && same_thread wm i.Df.tcmult
            && same_thread code.Df.mult wm
        | None -> false
      in
      if before_spawn && not i.Df.tmulti then Ordered
      else if after_complete then Ordered
      else if before_spawn (* multi-instance: later spawns unordered *)
      then Par { certain = false; why = why_of i }
      else Par { certain = not i.Df.tteam; why = why_of i }

(* Bodies of two different task nodes of the same frame. *)
let task_vs_task g ta tb =
  match (info g ta, info g tb) with
  | Some ia, Some ib ->
      (* one node joined by a wait that is sequenced (same frame, same
         thread) before the other node's creation *)
      let ordered_by (i : Df.task_info) (j : Df.task_info) =
        match i.Df.tcomplete with
        | Some (w, wm) ->
            w <= j.Df.tspawn
            && same_thread wm i.Df.tcmult
            && same_thread wm j.Df.tcmult
            && (not i.Df.tteam) && not j.Df.tteam
        | None -> false
      in
      if ordered_by ia ib || ordered_by ib ia then Ordered
      else if ia.Df.tgroup <> 0 && ia.Df.tgroup = ib.Df.tgroup then
        Par
          { certain = not (ia.Df.tteam || ib.Df.tteam);
            why = "sections of one construct execute concurrently" }
      else
        Par
          { certain = not (ia.Df.tteam || ib.Df.tteam);
            why = "the two deferred bodies may execute concurrently" }
  | _ -> Par { certain = false; why = "unknown task frame" }

(** The MHP relation between two accesses of one region (same barrier
    phase; cross-phase pairs are ordered upstream). *)
let relate g (a : Df.access) (b : Df.access) : rel =
  if a.Df.task = b.Df.task then
    match info g a.Df.task with
    | None -> Ordered (* both in frame code: the mult matrix decides *)
    | Some i ->
        if not i.Df.tmulti then Ordered (* one instance, program order *)
        else if i.Df.tteam then
          Par
            { certain = false;
              why =
                "instances of the deferred body are spawned by every \
                 thread and run unordered" }
        else
          Par
            { certain = true;
              why = "instances of the deferred body run unordered" }
  else
    let ca = chain g a.Df.task and cb = chain g b.Df.task in
    let rec split p q =
      match (p, q) with
      | x :: p', y :: q' when x = y ->
          let common, rp, rq = split p' q' in
          (x :: common, rp, rq)
      | _ -> ([], p, q)
    in
    let common, ra, rb = split ca cb in
    (* every frame between the root and the fork point must be
       single-instance, else two instances of the common frame already
       run the two sides concurrently *)
    let common_ok =
      List.for_all
        (fun d ->
          d = 0
          ||
          match info g d with
          | Some i -> (not i.Df.tmulti) && not i.Df.tteam
          | None -> false)
        common
    in
    if not common_ok then
      Par
        { certain = false;
          why = "the enclosing task frame has multiple live instances" }
    else
      match (ra, rb) with
      | [], [] -> Ordered (* unreachable: same task handled above *)
      | [], t :: _ -> code_vs_task g a t
      | t :: _, [] -> code_vs_task g b t
      | ta :: _, tb :: _ -> task_vs_task g ta tb

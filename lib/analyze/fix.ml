(** Directive rewriting for [zrc analyze --fix].

    Fix actions are semantic edits to directives; this module renders
    them to byte replacements over the *original* source through the
    same {!Preproc.Synth.apply_replacements} machinery the
    preprocessor uses, so a fixed program re-parses with the same
    front end.  A whole pragma line is regenerated from its decoded
    clause block with the edit applied; [Insert_atomic] is a zero-width
    insertion of an [//$omp atomic] line above the racing update. *)

open Zr
module D = Ompfront.Directive
module Synth = Preproc.Synth

type action =
  | Move_to_reduction of { dir : int; op : D.red_op; var : string }
      (** add [reduction(op: var)] to [dir], dropping [var] from its
          [shared] clause if listed there *)
  | Insert_atomic of { stmt : int }
      (** insert [//$omp atomic] immediately above statement [stmt] *)
  | Insert_taskwait of { stmt : int }
      (** insert [//$omp taskwait] immediately above statement [stmt] *)
  | Remove_nowait of { dir : int }
  | Add_shared of { dir : int; vars : string list }
  | Private_to_firstprivate of { dir : int; var : string }
  | Shared_to_firstprivate of { dir : int; var : string }
      (** move [var] from the [shared] clause of task directive [dir] to
          its [firstprivate] clause: capture the value at creation *)

let describe = function
  | Move_to_reduction { op; var; _ } ->
      Printf.sprintf "add reduction(%s: %s)" (D.red_op_to_string op) var
  | Insert_atomic _ -> "insert //$omp atomic"
  | Insert_taskwait _ -> "insert //$omp taskwait"
  | Remove_nowait _ -> "remove nowait"
  | Add_shared { vars; _ } ->
      Printf.sprintf "add shared(%s)" (String.concat ", " vars)
  | Private_to_firstprivate { var; _ } ->
      Printf.sprintf "promote private(%s) to firstprivate(%s)" var var
  | Shared_to_firstprivate { var; _ } ->
      Printf.sprintf "move shared(%s) to firstprivate(%s)" var var

(* ----------------------- pragma regeneration ----------------------- *)

(* Byte range of the pragma line proper: from the sentinel to the start
   of its Pragma_end token (which owns the line terminator). *)
let pragma_range (ast : Ast.t) dir =
  let n = Ast.node ast dir in
  let start = (Ast.token ast n.Ast.main_token).Token.start in
  let rec find i =
    if (Ast.token ast i).Token.tag = Token.Pragma_end then i else find (i + 1)
  in
  let stop = (Ast.token ast (find (n.Ast.main_token + 1))).Token.start in
  (start, stop)

type dir_edit = {
  mutable add_reds : (D.red_op * string) list;
  mutable del_shared : string list;
  mutable add_sh : string list;
  mutable del_nowait : bool;
  mutable promote : string list;  (* private -> firstprivate *)
  mutable add_fp : string list;   (* shared -> firstprivate *)
}

let fresh_edit () =
  { add_reds = []; del_shared = []; add_sh = []; del_nowait = false;
    promote = []; add_fp = [] }

let render_pragma (c : Synth.ctx) dir (ed : dir_edit) : string option =
  let ast = c.Synth.ast in
  let n = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let kind =
    match Ast.omp_kind n.Ast.tag with
    | Some k -> k
    | None -> invalid_arg "Fix.render_pragma: not a directive"
  in
  let name_of = Synth.ident_name c in
  let priv0 = List.map name_of cl.D.private_ in
  let priv = List.filter (fun v -> not (List.mem v ed.promote)) priv0 in
  let fp0 = List.map name_of cl.D.firstprivate in
  let fp =
    fp0
    @ List.filter (fun v -> List.mem v priv0 && not (List.mem v fp0))
        ed.promote
    @ List.filter (fun v -> not (List.mem v fp0)) ed.add_fp
  in
  let sh0 = List.map name_of cl.D.shared in
  let red0 = List.map (fun (op, id) -> (op, name_of id)) cl.D.reductions in
  let red_names = List.map snd red0 in
  let add_reds =
    List.filter (fun (_, v) -> not (List.mem v red_names)) ed.add_reds
  in
  let moved = List.map snd add_reds @ ed.del_shared @ ed.add_fp in
  let sh =
    List.filter (fun v -> not (List.mem v moved)) sh0
    @ List.filter (fun v -> not (List.mem v sh0)) ed.add_sh
  in
  let reds = red0 @ add_reds in
  let nowait = cl.D.flags.nowait && not ed.del_nowait in
  let changed =
    priv <> priv0 || fp <> fp0 || sh <> sh0 || reds <> red0
    || nowait <> cl.D.flags.nowait
  in
  if not changed then None
  else
    let b = Buffer.create 80 in
    Buffer.add_string b ("//$omp " ^ D.kind_to_string kind);
    (match kind with
     | D.Critical when cl.D.critical_name <> 0 ->
         Buffer.add_string b
           (Printf.sprintf "(%s)" (Synth.token_text c cl.D.critical_name))
     | _ -> ());
    Buffer.add_string b (Synth.print_default cl.D.flags.default);
    if cl.D.num_threads <> 0 then
      Buffer.add_string b
        (Printf.sprintf " num_threads(%s)"
           (Synth.node_text c cl.D.num_threads));
    Buffer.add_string b (Synth.print_list_clause "private" priv);
    Buffer.add_string b (Synth.print_list_clause "firstprivate" fp);
    Buffer.add_string b (Synth.print_list_clause "shared" sh);
    Buffer.add_string b (Synth.print_reductions reds);
    Buffer.add_string b (Synth.print_schedule cl.D.schedule);
    if cl.D.flags.collapse > 0 then
      Buffer.add_string b (Printf.sprintf " collapse(%d)" cl.D.flags.collapse);
    if cl.D.grainsize > 0 then
      Buffer.add_string b (Printf.sprintf " grainsize(%d)" cl.D.grainsize);
    if nowait then Buffer.add_string b " nowait";
    Some (Buffer.contents b)

(* --------------------------- replacements -------------------------- *)

(** Render a batch of actions to non-overlapping byte replacements.
    Actions on the same directive are merged into one pragma rewrite;
    duplicate atomic insertions collapse.  Actions that would change
    nothing produce no replacement. *)
let replacements ~(ast : Ast.t) ~(spans : Ast.spans) (actions : action list)
    : Synth.replacement list =
  let c = { Synth.ast; spans } in
  let edits : (int, dir_edit) Hashtbl.t = Hashtbl.create 8 in
  let edit dir =
    match Hashtbl.find_opt edits dir with
    | Some ed -> ed
    | None ->
        let ed = fresh_edit () in
        Hashtbl.add edits dir ed;
        ed
  in
  let atomics = ref [] in
  let taskwaits = ref [] in
  List.iter
    (fun a ->
      match a with
      | Move_to_reduction { dir; op; var } ->
          let ed = edit dir in
          if not (List.mem (op, var) ed.add_reds) then begin
            ed.add_reds <- ed.add_reds @ [ (op, var) ];
            ed.del_shared <- ed.del_shared @ [ var ]
          end
      | Insert_atomic { stmt } ->
          if not (List.mem stmt !atomics) then atomics := stmt :: !atomics
      | Insert_taskwait { stmt } ->
          if not (List.mem stmt !taskwaits) then
            taskwaits := stmt :: !taskwaits
      | Remove_nowait { dir } -> (edit dir).del_nowait <- true
      | Add_shared { dir; vars } ->
          let ed = edit dir in
          ed.add_sh <-
            ed.add_sh @ List.filter (fun v -> not (List.mem v ed.add_sh)) vars
      | Private_to_firstprivate { dir; var } ->
          let ed = edit dir in
          if not (List.mem var ed.promote) then
            ed.promote <- ed.promote @ [ var ]
      | Shared_to_firstprivate { dir; var } ->
          let ed = edit dir in
          if not (List.mem var ed.add_fp) then
            ed.add_fp <- ed.add_fp @ [ var ])
    actions;
  let pragma_rs =
    Hashtbl.fold
      (fun dir ed acc ->
        match render_pragma c dir ed with
        | None -> acc
        | Some text ->
            let start, stop = pragma_range ast dir in
            { Synth.start; stop; text } :: acc)
      edits []
  in
  let line_above pragma stmts =
    List.map
      (fun stmt ->
        let start, _ = Synth.node_bytes c stmt in
        let _, col = Source.position ast.Ast.source start in
        { Synth.start; stop = start;
          text = pragma ^ "\n" ^ String.make (max 0 (col - 1)) ' ' })
      stmts
  in
  let atomic_rs = line_above "//$omp atomic" !atomics in
  let taskwait_rs = line_above "//$omp taskwait" !taskwaits in
  List.sort (fun a b -> compare a.Synth.start b.Synth.start)
    (pragma_rs @ atomic_rs @ taskwait_rs)

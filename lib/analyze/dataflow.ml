(** Def/use dataflow over parallel regions (the analyser's first pass).

    The pass never executes the program.  It walks every parallel
    region of the AST and collects, for each *shared* storage cell, the
    set of accesses the region can perform, each annotated with

    - its {e multiplicity}: who executes it — every thread ([Mall]),
      the iterations of a worksharing loop distributed over the team
      ([Mdist]), one unspecified thread ([Msingle]) or the master
      thread ([Mmaster]);
    - its {e phase}: a barrier-ordering equivalence class.  Two
      accesses in different phases are ordered by a barrier and can
      never race; phases advance at explicit barriers and at the
      implicit barrier ending a non-[nowait] worksharing loop or
      [single].  Sequential [while] back-edges union the entry and
      exit phases (sound: a barrier inside the loop still separates
      accesses of the *same* iteration, and cross-iteration pairs
      collapse into one class);
    - its {e synchronisation}: enclosing [critical] (by name) or
      [atomic];
    - for array accesses, a {e subscript shape}: [i + c] relative to
      the governing worksharing loop ([Saffine]), a compile-time
      constant ([Sconst]), or unknown ([Sopaque]).

    Accesses to privatised names (clause-private, region-local
    declarations, worksharing counters, threadprivate globals) are not
    recorded: they cannot conflict.

    A small literal-constant environment is threaded through the
    sequential statement scan so loop bounds like [while (i < n)] with
    [var n: i64 = 64] earlier in the function resolve to trip counts.
    Inside a region only region-local (per-thread) names are tracked;
    any name assigned under the region by the team is dropped from the
    environment at region entry — except worksharing counters, whose
    in-loop updates act on privatised copies. *)

open Zr
module D = Ompfront.Directive
module Names = Preproc.Names
module Sset = Names.Sset

(* ------------------------------ model ----------------------------- *)

type mult =
  | Mall                      (** executed by every thread of the team *)
  | Mdist of int              (** distributed iterations of loop [dir] *)
  | Msingle of int * bool     (** a [single]; the bool is [nowait] *)
  | Mmaster of int            (** a [master] *)
  | Mseq
      (** sequential code of a function frame outside any parallel
          region — the encountering thread of orphaned tasking
          constructs *)

type sync = Snone | Scrit of string | Satomic

(** Subscript shape of an array access. *)
type sub =
  | Saffine of int * int  (** [counter + c] of worksharing loop [dir] *)
  | Sconst of int         (** a compile-time constant index *)
  | Sopaque               (** anything else *)

type access = {
  var : string;
  rw : [ `R | `W ];
  anode : int;          (** AST node to point diagnostics at *)
  seq : int;            (** source-order sequence number in the region *)
  phase : int;          (** resolved barrier phase (after union-find) *)
  mult : mult;
  sync : sync;
  sub : sub option;     (** [None] for scalar accesses *)
  guarded : bool;       (** under an [if]: may not execute *)
  viacall : bool;       (** conservative effect of passing to a call *)
  task : int;
      (** the innermost [task]/[taskloop]/[section] body the access
          sits in (its directive/section node), or [0] for code of the
          encountering frame *)
  red : (D.red_op * bool) option;
      (** the write of a recognised [x = x op e] / [x op= e] pattern;
          the bool records whether [e] depends on loop data (an index
          expression, the loop counter, or a call) *)
}

(** Static description of one worksharing loop. *)
type loop_info = {
  ldir : int;              (** the [Omp_for]/[Omp_parallel_for] node *)
  counter : string;
  lb : int option;         (** counter value at loop entry, if known *)
  ub : int option;         (** folded bound expression, if known *)
  linclusive : bool;       (** [<=] / [>=] comparison *)
  step : int option;       (** signed literal step, if known *)
  lnowait : bool;
  static_unchunked : bool;
      (** no schedule clause, [schedule(static)] without chunk, or
          [schedule(auto)]: each thread owns one contiguous block *)
  collapse2 : bool;
}

(* ---------------------------- task graph --------------------------- *)

type tkind =
  | Ttask             (** one [//$omp task] construct *)
  | Tchunk            (** the chunk tasks of one [taskloop] *)
  | Tsection of int   (** section [i] of a [sections] construct *)

(** One deferred-execution node of the region's task graph.  A node
    stands for *all* dynamic instances of the construct ([tmulti] says
    whether there can be more than one per encountering thread). *)
type task_info = {
  tdir : int;            (** the construct / section node *)
  tkind : tkind;
  tparent : int;         (** enclosing task frame, [0] = encountering code *)
  tspawn : int;          (** seq of the creation point *)
  mutable tcomplete : (int * mult) option;
      (** seq and multiplicity of the [taskwait] (or construct-end
          wait) that joins this node, if one dominates region end *)
  tmulti : bool;         (** may be instantiated more than once *)
  tteam : bool;          (** encountered by every thread / every iteration *)
  tcmult : mult;         (** multiplicity of the creating code *)
  tgroup : int;          (** the [sections] construct for sections, else 0 *)
  tinstloop : int;
      (** when nonzero: instances are identified by the iterations of
          this sequential/taskloop node, whose counter the body captures
          by value — subscripts affine in it distinguish instances *)
  tgrain : int;          (** iterations per instance (taskloop grainsize) *)
}

(** Synchronisation points, recorded for the completion-edge table. *)
type sync_kind = Ktaskwait | Kbarrier | Kcopyprivate

type region = {
  rdir : int;       (** the [Omp_parallel] / [Omp_parallel_for] node *)
  rkind : D.kind;
  accesses : access list;           (** shared cells only, phase-resolved *)
  loops : (int * loop_info) list;   (** worksharing loops by directive *)
  sloops : (int * loop_info) list;
      (** sequential/taskloop loops that identify task instances *)
  tasks : (int * task_info) list;   (** task-graph nodes by construct *)
  tsyncs : (int * sync_kind) list;  (** sync points by seq, source order *)
  reenter : int list;
      (** [single] directives inside a sequential loop: re-encountered,
          so distinct executing threads are possible across encounters *)
  rseq : bool;
      (** a pseudo-region: the sequential frame of a function with
          orphaned tasking constructs ([rdir] is the [Fn_decl]) *)
}

type result = {
  ast : Ast.t;
  spans : Ast.spans;
  regions : region list;
  tp : Sset.t;          (** threadprivate globals *)
}

(* --------------------------- environment -------------------------- *)

type env = {
  ast : Ast.t;
  spans : Ast.spans;
  tp : Sset.t;
  fnames : Sset.t;                 (* function names: never data cells *)
  arrays : Sset.t;                 (* array-like names, for call effects *)
  known : (string, int) Hashtbl.t; (* literal constants, flow-tracked *)
  mutable seq : int;
  (* per-region state *)
  mutable phase : int;
  mutable next_phase : int;
  uf : (int, int) Hashtbl.t;       (* phase union-find *)
  mutable accesses : access list;
  mutable loops : (int * loop_info) list;
  mutable sloops : (int * loop_info) list;
  mutable tasks : (int * task_info) list;
  mutable tsyncs : (int * sync_kind) list;
  mutable reenter : int list;
  mutable locals : Sset.t;         (* declared under the region body *)
  mutable byref : Sset.t;
      (* locals captured by reference by some task of the region: the
         one kind of local that IS a shared cell *)
}

(** Scan context: properties of the enclosing constructs. *)
type ctx = {
  mult : mult;
  sync : sync;
  guarded : bool;
  privat : Sset.t;           (* privatised names: not shared cells *)
  loop : loop_info option;   (* innermost governing worksharing loop *)
  task : int;                (* innermost task frame node, 0 = none *)
  inloop : bool;             (* under a sequential loop: re-executed *)
  seqloop : loop_info option;
      (* the unique enclosing sequential loop, when there is exactly
         one — candidates for task-instance identification *)
}

let node e i = Ast.node e.ast i
let text e tok = Ast.token_text e.ast tok
let tok_tag e i = (Ast.token e.ast i).Token.tag

let base_ident e i =
  let rec go i =
    let n = node e i in
    match n.Ast.tag with
    | Ast.Ident -> Some (text e n.main_token)
    | Ast.Index | Ast.Field | Ast.Deref -> go n.Ast.lhs
    | _ -> None
  in
  go i

let assign_targets e i =
  let acc = ref Sset.empty in
  Names.walk e.ast i (fun j ->
      let n = node e j in
      if n.Ast.tag = Ast.Assign then
        match base_ident e n.Ast.lhs with
        | Some v -> acc := Sset.add v !acc
        | None -> ());
  !acc

(* ------------------------- constant folding ----------------------- *)

let rec fold e i : int option =
  let n = node e i in
  match n.Ast.tag with
  | Ast.Int_lit -> int_of_string_opt (text e n.main_token)
  | Ast.Ident -> Hashtbl.find_opt e.known (text e n.main_token)
  | Ast.Un_op when tok_tag e n.main_token = Token.Minus ->
      Option.map (fun v -> -v) (fold e n.lhs)
  | Ast.Bin_op -> (
      match (fold e n.lhs, fold e n.rhs) with
      | Some a, Some b -> (
          match tok_tag e n.main_token with
          | Token.Plus -> Some (a + b)
          | Token.Minus -> Some (a - b)
          | Token.Star -> Some (a * b)
          | Token.Slash when b <> 0 -> Some (a / b)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Constant-environment updates for one declaration/assignment.  In
   region scope only per-thread (local) names may keep tracked values:
   a shared name written under the region has no single value at any
   program point of the parallel execution. *)
let update_known e ~in_region s =
  let n = node e s in
  match n.Ast.tag with
  | Ast.Var_decl | Ast.Const_decl ->
      let name = text e n.main_token in
      if n.Ast.rhs <> 0 then (
        match fold e n.rhs with
        | Some v -> Hashtbl.replace e.known name v
        | None -> Hashtbl.remove e.known name)
      else Hashtbl.remove e.known name
  | Ast.Assign -> (
      match (node e n.Ast.lhs).Ast.tag with
      | Ast.Ident ->
          let name = text e (node e n.Ast.lhs).Ast.main_token in
          let trackable = (not in_region) || Sset.mem name e.locals in
          if trackable && tok_tag e n.main_token = Token.Eq then (
            match fold e n.rhs with
            | Some v -> Hashtbl.replace e.known name v
            | None -> Hashtbl.remove e.known name)
          else Hashtbl.remove e.known name
      | _ -> (
          match base_ident e n.Ast.lhs with
          | Some name -> Hashtbl.remove e.known name
          | None -> ()))
  | _ -> ()

let kill_assigned e i =
  Sset.iter (Hashtbl.remove e.known) (assign_targets e i)

(* ------------------------------ phases ---------------------------- *)

let rec uf_find e p =
  match Hashtbl.find_opt e.uf p with
  | None -> p
  | Some q ->
      let r = uf_find e q in
      if r <> q then Hashtbl.replace e.uf p r;
      r

let uf_union e a b =
  let ra = uf_find e a and rb = uf_find e b in
  if ra <> rb then Hashtbl.replace e.uf rb ra

let new_phase e =
  e.tsyncs <- (e.seq, Kbarrier) :: e.tsyncs;
  e.phase <- e.next_phase;
  e.next_phase <- e.next_phase + 1

(* ----------------------------- recording -------------------------- *)

(* A region-local declaration is per-thread storage — except when some
   task of the region captures it by reference: then the creator's cell
   is aliased by a deferred body and both sides' accesses matter.  A
   name privatised by a clause (or by a task's by-value capture) in the
   current context stays skipped either way. *)
let record e ctx ~rw ~var ?sub ?(viacall = false) ?red ~anode () =
  if
    Sset.mem var ctx.privat || Sset.mem var e.fnames || Sset.mem var e.tp
    || (Sset.mem var e.locals && not (Sset.mem var e.byref))
  then ()
  else
    e.accesses <-
      { var; rw; anode; seq = e.seq; phase = e.phase; mult = ctx.mult;
        sync = ctx.sync; sub; guarded = ctx.guarded; viacall;
        task = ctx.task; red }
      :: e.accesses

(* Subscript classification relative to the governing loop. *)
let classify e ctx idx : sub =
  let counter_of li i =
    let n = node e i in
    n.Ast.tag = Ast.Ident && text e n.main_token = li.counter
  in
  let affine li =
    let n = node e idx in
    if counter_of li idx then Some (Saffine (li.ldir, 0))
    else
      match n.Ast.tag with
      | Ast.Bin_op -> (
          let op = tok_tag e n.main_token in
          match op with
          | Token.Plus | Token.Minus -> (
              if counter_of li n.lhs then
                match fold e n.rhs with
                | Some k ->
                    Some
                      (Saffine (li.ldir, if op = Token.Plus then k else -k))
                | None -> None
              else if op = Token.Plus && counter_of li n.rhs then
                match fold e n.lhs with
                | Some k -> Some (Saffine (li.ldir, k))
                | None -> None
              else None)
          | _ -> None)
      | _ -> None
  in
  match ctx.loop with
  | Some li when not li.collapse2 -> (
      match affine li with
      | Some s -> s
      | None -> (
          match fold e idx with Some k -> Sconst k | None -> Sopaque))
  | _ -> (
      match fold e idx with Some k -> Sconst k | None -> Sopaque)

(* --------------------- reduction-pattern detection ----------------- *)

let is_ident_named e i v =
  let n = node e i in
  n.Ast.tag = Ast.Ident && text e n.main_token = v

let mentions e i v =
  let found = ref false in
  Names.walk e.ast i (fun j ->
      if is_ident_named e j v then found := true);
  !found

(* Does the combining operand vary with the loop iteration?  An index
   expression, the governing counter, or any call is taken to. *)
let loop_dependent e ctx i =
  let dep = ref false in
  Names.walk e.ast i (fun j ->
      let n = node e j in
      match n.Ast.tag with
      | Ast.Index | Ast.Call -> dep := true
      | Ast.Ident -> (
          match ctx.loop with
          | Some li when text e n.main_token = li.counter -> dep := true
          | _ -> ())
      | _ -> ());
  !dep

(* [v = v op e] (op commutative for [+]/[*]) and
   [v = __omp_max(v, e)] / [__omp_min]. *)
let detect_red e v value : (D.red_op * int) option =
  let n = node e value in
  match n.Ast.tag with
  | Ast.Bin_op -> (
      let op =
        match tok_tag e n.main_token with
        | Token.Plus -> Some D.Radd
        | Token.Minus -> Some D.Rsub
        | Token.Star -> Some D.Rmul
        | _ -> None
      in
      match op with
      | None -> None
      | Some op ->
          if is_ident_named e n.lhs v && not (mentions e n.rhs v) then
            Some (op, n.rhs)
          else if
            (op = D.Radd || op = D.Rmul)
            && is_ident_named e n.rhs v
            && not (mentions e n.lhs v)
          then Some (op, n.lhs)
          else None)
  | Ast.Call -> (
      let callee = node e n.lhs in
      if callee.Ast.tag <> Ast.Ident then None
      else
        let op =
          match text e callee.Ast.main_token with
          | "__omp_max" -> Some D.Rmax
          | "__omp_min" -> Some D.Rmin
          | _ -> None
        in
        match (op, Ast.call_args e.ast value) with
        | Some op, [ a; b ] ->
            if is_ident_named e a v && not (mentions e b v) then Some (op, b)
            else if is_ident_named e b v && not (mentions e a v) then
              Some (op, a)
            else None
        | _ -> None)
  | _ -> None

let red_of_op_tok = function
  | Token.Plus_eq -> Some D.Radd
  | Token.Minus_eq -> Some D.Rsub
  | Token.Star_eq -> Some D.Rmul
  | _ -> None

(* ---------------------- the region statement scan ------------------ *)

let clause_name e id = text e (node e id).Ast.main_token

let clause_names e ids = List.map (clause_name e) ids

let privatised e (cl : D.clauses) =
  List.fold_left
    (fun acc id -> Sset.add (clause_name e id) acc)
    Sset.empty
    (cl.D.private_ @ cl.D.firstprivate @ List.map snd cl.D.reductions)

(* Lightweight worksharing-loop decomposition, mirroring
   [Preproc.Loops.decompose] but tolerant: anything it cannot read
   degrades to [None] fields instead of failing. *)
type ws_parts = {
  w_counter : string;
  w_counter_node : int;  (* the counter's Ident in the condition *)
  w_ub_node : int;
  w_inclusive : bool;
  w_cont : int;
  w_body : int;
  w_step : int option;
}

let decompose_ws e wh : ws_parts option =
  let wn = node e wh in
  if wn.Ast.tag <> Ast.While then None
  else
    let cond = node e wn.Ast.lhs in
    if cond.Ast.tag <> Ast.Bin_op then None
    else
      let inclusive =
        match tok_tag e cond.Ast.main_token with
        | Token.Lt | Token.Gt -> Some false
        | Token.Lt_eq | Token.Gt_eq -> Some true
        | _ -> None
      in
      match inclusive with
      | None -> None
      | Some w_inclusive -> (
          let counter =
            let cl = node e cond.Ast.lhs in
            match cl.Ast.tag with
            | Ast.Ident -> Some (text e cl.Ast.main_token, cond.Ast.lhs)
            | Ast.Deref -> (
                let b = node e cl.Ast.lhs in
                match b.Ast.tag with
                | Ast.Ident -> Some (text e b.Ast.main_token, cl.Ast.lhs)
                | _ -> None)
            | _ -> None
          in
          match counter with
          | None -> None
          | Some (w_counter, w_counter_node) ->
              let cont = Ast.extra e.ast wn.Ast.rhs in
              let body = Ast.extra e.ast (wn.Ast.rhs + 1) in
              if cont = 0 then None
              else
                let w_step =
                  let cn = node e cont in
                  if cn.Ast.tag <> Ast.Assign then None
                  else
                    match tok_tag e cn.Ast.main_token with
                    | Token.Plus_eq -> fold e cn.Ast.rhs
                    | Token.Minus_eq ->
                        Option.map (fun v -> -v) (fold e cn.Ast.rhs)
                    | _ -> None
                in
                Some
                  { w_counter; w_counter_node; w_ub_node = cond.Ast.rhs;
                    w_inclusive; w_cont = cont; w_body = body; w_step })

let rec scan_stmt e ctx s =
  let n = node e s in
  e.seq <- e.seq + 1;
  match n.Ast.tag with
  | Ast.Block -> List.iter (scan_stmt e ctx) (Ast.block_stmts e.ast s)
  | Ast.Var_decl | Ast.Const_decl ->
      if n.Ast.rhs <> 0 then scan_expr e ctx n.Ast.rhs;
      update_known e ~in_region:true s
  | Ast.Assign ->
      scan_assign e ctx s;
      update_known e ~in_region:true s
  | Ast.Expr_stmt -> scan_expr e ctx n.Ast.lhs
  | Ast.Return -> if n.Ast.lhs <> 0 then scan_expr e ctx n.Ast.lhs
  | Ast.Break | Ast.Continue -> ()
  | Ast.While ->
      (* sequential loop inside the region.  If it is the unique
         enclosing sequential loop and decomposable, its iterations can
         identify instances of tasks spawned in the body (provided the
         body captures the counter by value). *)
      let sli =
        if ctx.inloop then None
        else
          match decompose_ws e s with
          | Some p ->
              let li =
                { ldir = s; counter = p.w_counter;
                  lb = Hashtbl.find_opt e.known p.w_counter;
                  ub = fold e p.w_ub_node; linclusive = p.w_inclusive;
                  step = p.w_step; lnowait = true;
                  static_unchunked = false; collapse2 = false }
              in
              e.sloops <- (s, li) :: e.sloops;
              Some li
          | None -> None
      in
      kill_assigned e s;
      let p_entry = e.phase in
      let lctx = { ctx with inloop = true; seqloop = sli } in
      scan_expr e lctx n.Ast.lhs;
      let cont = Ast.extra e.ast n.Ast.rhs in
      let body = Ast.extra e.ast (n.Ast.rhs + 1) in
      scan_stmt e lctx body;
      if cont <> 0 then scan_stmt e lctx cont;
      (* the back edge: entry and exit phases are one class *)
      uf_union e p_entry e.phase;
      e.phase <- uf_find e e.phase;
      kill_assigned e s
  | Ast.If ->
      scan_expr e ctx n.Ast.lhs;
      let then_ = Ast.extra e.ast n.Ast.rhs in
      let else_ = Ast.extra e.ast (n.Ast.rhs + 1) in
      let p0 = e.phase in
      let gctx = { ctx with guarded = true } in
      scan_stmt e gctx then_;
      let p1 = e.phase in
      e.phase <- p0;
      if else_ <> 0 then scan_stmt e gctx else_;
      let p2 = e.phase in
      if p1 <> p0 || p2 <> p0 then begin
        uf_union e p1 p2;
        e.phase <- uf_find e p1
      end;
      kill_assigned e s
  | Ast.Omp_barrier -> new_phase e
  | Ast.Omp_for ->
      scan_ws e ctx s (Ast.clauses e.ast s) n.Ast.rhs ~combine_late:false
  | Ast.Omp_single ->
      let cl = Ast.clauses e.ast s in
      if ctx.inloop then e.reenter <- s :: e.reenter;
      let ctx' = { ctx with mult = Msingle (s, cl.D.flags.nowait) } in
      scan_stmt e ctx' n.Ast.rhs;
      if cl.D.copyprivate <> [] then
        e.tsyncs <- (e.seq, Kcopyprivate) :: e.tsyncs;
      if not cl.D.flags.nowait then new_phase e
  | Ast.Omp_master -> scan_stmt e { ctx with mult = Mmaster s } n.Ast.rhs
  | Ast.Omp_critical ->
      let cl = Ast.clauses e.ast s in
      let name =
        if cl.D.critical_name = 0 then "<unnamed>"
        else text e cl.D.critical_name
      in
      scan_stmt e { ctx with sync = Scrit name } n.Ast.rhs
  | Ast.Omp_atomic -> scan_stmt e { ctx with sync = Satomic } n.Ast.rhs
  | Ast.Omp_task -> scan_task e ctx s
  | Ast.Omp_taskwait ->
      (* joins the *direct* children of the current frame — exactly the
         checker's completion discipline.  Under an [if] the wait may
         not execute, so no completion edge can be assumed. *)
      e.tsyncs <- (e.seq, Ktaskwait) :: e.tsyncs;
      if not ctx.guarded then
        List.iter
          (fun ((_, i) : int * task_info) ->
            if i.tparent = ctx.task && i.tcomplete = None then
              i.tcomplete <- Some (e.seq, ctx.mult))
          e.tasks
  | Ast.Omp_taskloop -> scan_taskloop e ctx s
  | Ast.Omp_sections -> scan_sections e ctx s
  | Ast.Omp_section ->
      (* orphaned section (tolerated by the parser): scan the body *)
      scan_stmt e ctx n.Ast.rhs
  | Ast.Omp_parallel | Ast.Omp_parallel_for ->
      (* a nested team: analysed as its own region, skipped here *)
      kill_assigned e s
  | Ast.Omp_threadprivate -> ()
  | _ -> scan_expr e ctx s

and scan_assign e ctx s =
  let n = node e s in
  let optok = tok_tag e n.main_token in
  let target = n.Ast.lhs and value = n.Ast.rhs in
  let tn = node e target in
  match tn.Ast.tag with
  | Ast.Ident -> (
      let v = text e tn.Ast.main_token in
      match optok with
      | Token.Eq -> (
          match detect_red e v value with
          | Some (op, operand) ->
              scan_expr e ctx value;
              let dep = loop_dependent e ctx operand in
              record e ctx ~rw:`W ~var:v ~red:(op, dep) ~anode:s ()
          | None ->
              scan_expr e ctx value;
              record e ctx ~rw:`W ~var:v ~anode:s ())
      | _ ->
          record e ctx ~rw:`R ~var:v ~anode:target ();
          scan_expr e ctx value;
          let red =
            match red_of_op_tok optok with
            | Some op -> Some (op, loop_dependent e ctx value)
            | None -> None
          in
          record e ctx ~rw:`W ~var:v ?red ~anode:s ())
  | Ast.Index -> (
      match (node e tn.Ast.lhs).Ast.tag with
      | Ast.Ident ->
          let arr = text e (node e tn.Ast.lhs).Ast.main_token in
          let sb = classify e ctx tn.Ast.rhs in
          scan_expr e ctx tn.Ast.rhs;
          if optok <> Token.Eq then
            record e ctx ~rw:`R ~var:arr ~sub:sb ~anode:target ();
          scan_expr e ctx value;
          record e ctx ~rw:`W ~var:arr ~sub:sb ~anode:s ()
      | _ ->
          scan_expr e ctx target;
          scan_expr e ctx value)
  | Ast.Deref -> (
      match base_ident e tn.Ast.lhs with
      | Some v ->
          if optok <> Token.Eq then record e ctx ~rw:`R ~var:v ~anode:target ();
          scan_expr e ctx value;
          record e ctx ~rw:`W ~var:v ~anode:s ()
      | None ->
          scan_expr e ctx target;
          scan_expr e ctx value)
  | _ ->
      scan_expr e ctx target;
      scan_expr e ctx value

and scan_expr e ctx x =
  let n = node e x in
  match n.Ast.tag with
  | Ast.Ident -> record e ctx ~rw:`R ~var:(text e n.main_token) ~anode:x ()
  | Ast.Index ->
      (match (node e n.Ast.lhs).Ast.tag with
       | Ast.Ident ->
           let arr = text e (node e n.Ast.lhs).Ast.main_token in
           let sb = classify e ctx n.Ast.rhs in
           record e ctx ~rw:`R ~var:arr ~sub:sb ~anode:x ()
       | _ -> scan_expr e ctx n.Ast.lhs);
      scan_expr e ctx n.Ast.rhs
  | Ast.Call ->
      (* callee heads are names of code, not data; a bare identifier
         argument is read — and, if it names an array or slice, the
         callee may write through it *)
      List.iter
        (fun a ->
          let an = node e a in
          if an.Ast.tag = Ast.Ident then begin
            let v = text e an.Ast.main_token in
            record e ctx ~rw:`R ~var:v ~anode:a ();
            if Sset.mem v e.arrays then
              record e ctx ~rw:`W ~var:v ~sub:Sopaque ~viacall:true ~anode:a
                ()
          end
          else scan_expr e ctx a)
        (Ast.call_args e.ast x)
  | Ast.Field -> ()  (* namespace/struct heads: omp.get_thread_num *)
  | Ast.Deref -> (
      match base_ident e n.Ast.lhs with
      | Some v -> record e ctx ~rw:`R ~var:v ~anode:x ()
      | None -> scan_expr e ctx n.Ast.lhs)
  | Ast.Addr_of -> ()
  | Ast.Assign -> scan_assign e ctx x
  | _ -> List.iter (scan_expr e ctx) (Names.children e.ast x)

and scan_ws e ctx dir (cl : D.clauses) wh ~combine_late =
  match decompose_ws e wh with
  | None -> scan_stmt e ctx wh  (* malformed: scan redundantly *)
  | Some p ->
      let collapse2 = cl.D.flags.collapse >= 2 in
      let lb = Hashtbl.find_opt e.known p.w_counter in
      let ub = fold e p.w_ub_node in
      let static_unchunked =
        match cl.D.schedule with
        | None | Some (Omp_model.Sched.Static None) | Some Omp_model.Sched.Auto
          ->
            true
        | Some _ -> false
      in
      let li =
        { ldir = dir; counter = p.w_counter; lb; ub;
          linclusive = p.w_inclusive; step = p.w_step;
          lnowait = cl.D.flags.nowait; static_unchunked; collapse2 }
      in
      e.loops <- (dir, li) :: e.loops;
      (* the loop reads its lower bound and bound expression on entry *)
      record e ctx ~rw:`R ~var:p.w_counter ~anode:p.w_counter_node ();
      scan_expr e ctx p.w_ub_node;
      List.iter
        (fun id ->
          record e ctx ~rw:`R ~var:(clause_name e id) ~anode:id ())
        cl.D.firstprivate;
      let privat' =
        Sset.add p.w_counter (Sset.union (privatised e cl) ctx.privat)
      in
      (* collapse(2): the body must be [init; inner while]; the inner
         counter is privatised too and subscripts degrade to opaque *)
      let privat', body =
        if collapse2 then
          match
            let bn = node e p.w_body in
            if bn.Ast.tag = Ast.Block then Ast.block_stmts e.ast p.w_body
            else []
          with
          | [ init; inner ] when (node e inner).Ast.tag = Ast.While -> (
              let inner_counter =
                let inn = node e init in
                match inn.Ast.tag with
                | Ast.Var_decl | Ast.Const_decl ->
                    Some (text e inn.Ast.main_token)
                | Ast.Assign when (node e inn.Ast.lhs).Ast.tag = Ast.Ident ->
                    Some (text e (node e inn.Ast.lhs).Ast.main_token)
                | _ -> None
              in
              match inner_counter with
              | Some c -> (Sset.add c privat', p.w_body)
              | None -> (privat', p.w_body))
          | _ -> (privat', p.w_body)
        else (privat', p.w_body)
      in
      let ctx' =
        { ctx with
          mult = Mdist dir; privat = privat'; loop = Some li;
          (* each thread runs its chunk's iterations sequentially, so a
             task in the body is spawned once per iteration; the
             globally-distinct counter values identify instances *)
          inloop = true;
          seqloop = (if ctx.inloop then None else Some li) }
      in
      kill_assigned e wh;
      scan_stmt e ctx' body;
      e.seq <- e.seq + 1;
      scan_stmt e ctx' p.w_cont;
      (* reduction combines: each thread merges its accumulator into
         the shared cell under the reduction critical section *)
      let combines () =
        let cctx = { ctx with sync = Scrit "__omp_reduction" } in
        List.iter
          (fun (op, id) ->
            let v = clause_name e id in
            e.seq <- e.seq + 1;
            record e cctx ~rw:`R ~var:v ~anode:id ();
            record e cctx ~rw:`W ~var:v ~red:(op, true) ~anode:id ())
          cl.D.reductions
      in
      if combine_late then begin
        (* combined parallel-for: the combine runs at region end,
           after the loop's implicit barrier *)
        if not cl.D.flags.nowait then new_phase e;
        combines ()
      end
      else begin
        combines ();
        if not cl.D.flags.nowait then new_phase e
      end

(* ------------------------- tasking constructs ---------------------- *)

and task_captures e dir =
  Preproc.Tasking.captures { Preproc.Synth.ast = e.ast; spans = e.spans } dir

and cap_names caps p =
  List.filter_map
    (fun (c : Preproc.Tasking.capture) -> if p c then Some c.cname else None)
    caps

(* Names the deferred body sees as task-private snapshots: clause
   private/firstprivate, plus implicit by-value captures of creator
   locals.  A by-value captured slice still aliases its cells, so local
   arrays are not snapshots (they are added to [e.byref] instead). *)
and snapshot_names e caps =
  cap_names caps (fun c ->
      match c.Preproc.Tasking.corigin with
      | `Private | `Firstprivate -> true
      | `Implicit ->
          Sset.mem c.cname e.locals && not (Sset.mem c.cname e.arrays)
      | `Shared -> false)

and is_team_mult = function Mall | Mdist _ -> true | _ -> false

and scan_task e ctx dir =
  let n = node e dir in
  let cl = Ast.clauses e.ast dir in
  let caps = task_captures e dir in
  (* creation point: explicit firstprivate and implicit by-value
     captures of shared cells are read in the creator's context *)
  List.iter
    (fun id -> record e ctx ~rw:`R ~var:(clause_name e id) ~anode:id ())
    cl.D.firstprivate;
  List.iter
    (fun v ->
      if Sset.mem v e.byref then record e ctx ~rw:`R ~var:v ~anode:dir ())
    (cap_names caps (fun c ->
         c.Preproc.Tasking.corigin = `Implicit && c.cby = `Value));
  (* instances of a task spawned in the unique enclosing sequential
     loop are identified by its iterations when the body captures the
     counter by value: subscripts affine in that counter then
     distinguish instances *)
  let tinstloop =
    match ctx.seqloop with
    | Some li
      when li.step <> None
           && List.exists
                (fun (c : Preproc.Tasking.capture) ->
                  c.cname = li.counter && c.cby = `Value)
                caps ->
        li.ldir
    | _ -> 0
  in
  let info =
    { tdir = dir; tkind = Ttask; tparent = ctx.task; tspawn = e.seq;
      tcomplete = None; tmulti = ctx.inloop; tteam = is_team_mult ctx.mult;
      tcmult = ctx.mult; tgroup = 0; tinstloop; tgrain = 1 }
  in
  e.tasks <- (dir, info) :: e.tasks;
  (* the body defers: it runs outside the creator's critical/atomic
     and sees its by-value captures as private snapshots *)
  let bctx =
    { ctx with
      task = dir; sync = Snone;
      privat =
        List.fold_left
          (fun s v -> Sset.add v s)
          ctx.privat (snapshot_names e caps);
      loop = (if tinstloop <> 0 then ctx.seqloop else ctx.loop) }
  in
  scan_stmt e bctx n.Ast.rhs

and scan_taskloop e ctx dir =
  let cl = Ast.clauses e.ast dir in
  let wh = (node e dir).Ast.rhs in
  match decompose_ws e wh with
  | None -> scan_stmt e ctx wh (* malformed: scan redundantly *)
  | Some p ->
      let li =
        { ldir = dir; counter = p.w_counter;
          lb = Hashtbl.find_opt e.known p.w_counter; ub = fold e p.w_ub_node;
          linclusive = p.w_inclusive; step = p.w_step; lnowait = true;
          static_unchunked = false; collapse2 = false }
      in
      e.sloops <- (dir, li) :: e.sloops;
      (* entry: lower bound, bound expression and firstprivate reads *)
      record e ctx ~rw:`R ~var:p.w_counter ~anode:p.w_counter_node ();
      scan_expr e ctx p.w_ub_node;
      List.iter
        (fun id -> record e ctx ~rw:`R ~var:(clause_name e id) ~anode:id ())
        cl.D.firstprivate;
      let caps = task_captures e dir in
      let info =
        { tdir = dir; tkind = Tchunk; tparent = ctx.task; tspawn = e.seq;
          tcomplete = None; tmulti = true; tteam = is_team_mult ctx.mult;
          tcmult = ctx.mult; tgroup = 0; tinstloop = dir;
          tgrain = max 1 cl.D.grainsize }
      in
      e.tasks <- (dir, info) :: e.tasks;
      let bctx =
        { ctx with
          task = dir; sync = Snone;
          privat =
            List.fold_left
              (fun s v -> Sset.add v s)
              (Sset.add p.w_counter ctx.privat)
              (snapshot_names e caps);
          loop = Some li }
      in
      kill_assigned e wh;
      scan_stmt e bctx p.w_body;
      e.seq <- e.seq + 1;
      scan_stmt e bctx p.w_cont;
      (* the lowering closes the construct with a taskwait: every open
         direct child of the encountering frame joins here (its own
         chunks unconditionally — if the construct did not run, there
         is no chunk to order) *)
      e.seq <- e.seq + 1;
      e.tsyncs <- (e.seq, Ktaskwait) :: e.tsyncs;
      List.iter
        (fun ((d, i) : int * task_info) ->
          if
            i.tcomplete = None
            && (d = dir || ((not ctx.guarded) && i.tparent = ctx.task))
          then i.tcomplete <- Some (e.seq, ctx.mult))
        e.tasks

and scan_sections e ctx dir =
  let n = node e dir in
  let cl = Ast.clauses e.ast dir in
  let priv = privatised e cl in
  List.iter
    (fun id -> record e ctx ~rw:`R ~var:(clause_name e id) ~anode:id ())
    cl.D.firstprivate;
  let spawn = e.seq in
  let secs =
    List.filter
      (fun s -> (node e s).Ast.tag = Ast.Omp_section)
      (Ast.block_stmts e.ast n.Ast.rhs)
  in
  List.iteri
    (fun k s ->
      let info =
        { tdir = s; tkind = Tsection k; tparent = ctx.task; tspawn = spawn;
          tcomplete = None; tmulti = ctx.inloop; tteam = false;
          tcmult = ctx.mult; tgroup = dir; tinstloop = 0; tgrain = 1 }
      in
      e.tasks <- (s, info) :: e.tasks;
      e.seq <- e.seq + 1;
      let bctx = { ctx with task = s; privat = Sset.union priv ctx.privat } in
      scan_stmt e bctx (node e s).Ast.rhs)
    secs;
  e.seq <- e.seq + 1;
  if not cl.D.flags.nowait then begin
    List.iter
      (fun ((_, i) : int * task_info) ->
        if i.tgroup = dir && i.tcomplete = None then
          i.tcomplete <- Some (e.seq, ctx.mult))
      e.tasks;
    new_phase e
  end

(* --------------------------- region driver ------------------------- *)

(* Worksharing counters under [dir]: their in-region assignments act on
   privatised copies, so they must survive the region-entry kill of the
   constant environment. *)
let ws_counters e dir =
  let acc = ref Sset.empty in
  Names.walk e.ast dir (fun j ->
      let n = node e j in
      match n.Ast.tag with
      | Ast.Omp_for | Ast.Omp_parallel_for -> (
          match decompose_ws e n.Ast.rhs with
          | Some p -> acc := Sset.add p.w_counter !acc
          | None -> ())
      | _ -> ());
  !acc

(* Locals that behave as shared cells because a task of [dir]'s subtree
   captures them: explicit by-reference shares, plus by-value captured
   slices (copying a slice aliases its cells). *)
let byref_locals e dir locals =
  let acc = ref Sset.empty in
  Names.walk e.ast dir (fun j ->
      match (node e j).Ast.tag with
      | Ast.Omp_task | Ast.Omp_taskloop ->
          List.iter
            (fun (c : Preproc.Tasking.capture) ->
              let aliasing =
                c.cby = `Ref
                || (c.cby = `Value && Sset.mem c.cname e.arrays)
              in
              if aliasing && Sset.mem c.cname locals then
                acc := Sset.add c.cname !acc)
            (task_captures e j)
      | _ -> ());
  !acc

let reset_region_state e locals =
  e.phase <- 0;
  e.next_phase <- 1;
  Hashtbl.reset e.uf;
  e.accesses <- [];
  e.loops <- [];
  e.sloops <- [];
  e.tasks <- [];
  e.tsyncs <- [];
  e.reenter <- [];
  e.locals <- locals;
  e.byref <- Sset.empty

let finish_region e ~rdir ~rkind ~rseq : region =
  let accesses =
    List.rev_map
      (fun (a : access) -> { a with phase = uf_find e a.phase })
      e.accesses
  in
  { rdir; rkind; accesses;
    loops = List.rev e.loops;
    sloops = List.rev e.sloops;
    tasks = List.rev e.tasks;
    tsyncs = List.rev e.tsyncs;
    reenter = e.reenter;
    rseq }

let analyze_region e dir : region =
  let n = node e dir in
  let cl = Ast.clauses e.ast dir in
  reset_region_state e
    (if n.Ast.rhs <> 0 then Names.declared_under e.ast n.Ast.rhs
     else Sset.empty);
  e.byref <- byref_locals e dir e.locals;
  (* names the team writes have no single value inside the region *)
  let counters = ws_counters e dir in
  Sset.iter
    (fun v -> if not (Sset.mem v counters) then Hashtbl.remove e.known v)
    (assign_targets e dir);
  let ctx =
    { mult = Mall; sync = Snone; guarded = false;
      privat = privatised e cl; loop = None; task = 0; inloop = false;
      seqloop = None }
  in
  (match n.Ast.tag with
   | Ast.Omp_parallel -> scan_stmt e ctx n.Ast.rhs
   | Ast.Omp_parallel_for -> scan_ws e ctx dir cl n.Ast.rhs ~combine_late:true
   | _ -> invalid_arg "Dataflow.analyze_region: not a region");
  finish_region e ~rdir:dir
    ~rkind:
      (match Ast.omp_kind n.Ast.tag with Some k -> k | None -> D.Parallel)
    ~rseq:false

(* The sequential frame of a function whose body spawns tasks outside
   any parallel region (orphaned tasking, e.g. recursive [task fib]
   under a [single] elsewhere).  The frame's own code has multiplicity
   [Mseq]; parameters count as locals (per-activation storage). *)
let fn_params e fnnode =
  let n = node e fnnode in
  let count = Ast.extra e.ast n.Ast.lhs in
  let acc = ref Sset.empty in
  for k = 0 to count - 1 do
    let name_tok = Ast.extra e.ast (n.Ast.lhs + 1 + (2 * k)) in
    acc := Sset.add (Ast.token_text e.ast name_tok) !acc
  done;
  !acc

let analyze_seq_frame e fnnode : region =
  let body = (node e fnnode).Ast.rhs in
  reset_region_state e
    (Sset.union (fn_params e fnnode) (Names.declared_under e.ast body));
  e.byref <- byref_locals e fnnode e.locals;
  let ctx =
    { mult = Mseq; sync = Snone; guarded = false; privat = Sset.empty;
      loop = None; task = 0; inloop = false; seqloop = None }
  in
  scan_stmt e ctx body;
  finish_region e ~rdir:fnnode ~rkind:D.Parallel ~rseq:true

(* Array-like names of the program: declared with a slice type or
   initialised from an allocator, or slice-typed function parameters. *)
let array_names (ast : Ast.t) : Sset.t =
  let acc = ref Sset.empty in
  Names.walk ast 0 (fun j ->
      let n = Ast.node ast j in
      match n.Ast.tag with
      | Ast.Var_decl | Ast.Const_decl ->
          let is_slice =
            (n.Ast.lhs <> 0
             && (Ast.node ast n.Ast.lhs).Ast.tag = Ast.Type_slice)
            ||
            (n.Ast.rhs <> 0
             &&
             let i = Ast.node ast n.Ast.rhs in
             i.Ast.tag = Ast.Call
             &&
             let c = Ast.node ast i.Ast.lhs in
             c.Ast.tag = Ast.Ident
             &&
             let name = Ast.token_text ast c.Ast.main_token in
             String.length name >= 5 && String.sub name 0 5 = "alloc")
          in
          if is_slice then
            acc := Sset.add (Ast.token_text ast n.main_token) !acc
      | Ast.Index -> (
          let b = Ast.node ast n.Ast.lhs in
          if b.Ast.tag = Ast.Ident then
            acc := Sset.add (Ast.token_text ast b.Ast.main_token) !acc)
      | Ast.Fn_decl ->
          (* proto: [count; (name tok, type node)*; ret] *)
          let count = Ast.extra ast n.Ast.lhs in
          for k = 0 to count - 1 do
            let name_tok = Ast.extra ast (n.Ast.lhs + 1 + (2 * k)) in
            let ty = Ast.extra ast (n.Ast.lhs + 2 + (2 * k)) in
            if ty <> 0 && (Ast.node ast ty).Ast.tag = Ast.Type_slice then
              acc := Sset.add (Ast.token_text ast name_tok) !acc
          done
      | _ -> ());
  !acc

let fn_names (ast : Ast.t) : Sset.t =
  List.fold_left
    (fun acc d ->
      let n = Ast.node ast d in
      if n.Ast.tag = Ast.Fn_decl then
        Sset.add (Ast.token_text ast n.main_token) acc
      else acc)
    Sset.empty (Ast.top_decls ast)

(* The function-level sequential scan: track literal constants up to
   each region, analyse the region, conservatively kill what it (or any
   other compound statement) assigned. *)
let rec seq_scan e regions_acc s =
  let n = node e s in
  match n.Ast.tag with
  | Ast.Block -> List.iter (seq_scan e regions_acc) (Ast.block_stmts e.ast s)
  | Ast.Var_decl | Ast.Const_decl | Ast.Assign ->
      update_known e ~in_region:false s
  | Ast.Omp_parallel | Ast.Omp_parallel_for ->
      regions_acc := analyze_region e s :: !regions_acc;
      kill_assigned e s;
      (* nested regions (each thread forks a sub-team) are analysed as
         independent regions of their own *)
      Names.walk e.ast s (fun j ->
          if j <> s then
            match (node e j).Ast.tag with
            | Ast.Omp_parallel | Ast.Omp_parallel_for ->
                regions_acc := analyze_region e j :: !regions_acc
            | _ -> ())
  | Ast.While ->
      kill_assigned e s;
      let body = Ast.extra e.ast (n.Ast.rhs + 1) in
      seq_scan e regions_acc body;
      kill_assigned e s
  | Ast.If ->
      kill_assigned e s;
      let then_ = Ast.extra e.ast n.Ast.rhs in
      let else_ = Ast.extra e.ast (n.Ast.rhs + 1) in
      seq_scan e regions_acc then_;
      if else_ <> 0 then seq_scan e regions_acc else_;
      kill_assigned e s
  | Ast.Omp_for | Ast.Omp_single | Ast.Omp_master | Ast.Omp_critical
  | Ast.Omp_atomic ->
      (* orphaned worksharing outside a region: scan for nested
         regions only (there are none by construction) *)
      kill_assigned e s
  | _ -> ()

let run (ast : Ast.t) (spans : Ast.spans) : result =
  let tp = ref Sset.empty in
  List.iter
    (fun d ->
      let n = Ast.node ast d in
      if n.Ast.tag = Ast.Omp_threadprivate then
        List.iter
          (fun id ->
            tp :=
              Sset.add
                (Ast.token_text ast (Ast.node ast id).Ast.main_token)
                !tp)
          (Ast.clauses ast d).D.private_)
    (Ast.top_decls ast);
  let e =
    { ast; spans; tp = !tp; fnames = fn_names ast; arrays = array_names ast;
      known = Hashtbl.create 16; seq = 0; phase = 0; next_phase = 1;
      uf = Hashtbl.create 16; accesses = []; loops = []; sloops = [];
      tasks = []; tsyncs = []; reenter = []; locals = Sset.empty;
      byref = Sset.empty }
  in
  let regions = ref [] in
  (* a task-family construct with no enclosing parallel region: the
     function's sequential frame is analysed as a pseudo-region *)
  let has_orphaned_tasking body =
    let under_region = Hashtbl.create 64 in
    Names.walk ast body (fun j ->
        match (Ast.node ast j).Ast.tag with
        | Ast.Omp_parallel | Ast.Omp_parallel_for ->
            Names.walk ast j (fun k -> Hashtbl.replace under_region k ())
        | _ -> ());
    let found = ref false in
    Names.walk ast body (fun j ->
        match (Ast.node ast j).Ast.tag with
        | Ast.Omp_task | Ast.Omp_taskloop | Ast.Omp_sections ->
            if not (Hashtbl.mem under_region j) then found := true
        | _ -> ());
    !found
  in
  List.iter
    (fun d ->
      let n = Ast.node ast d in
      if n.Ast.tag = Ast.Fn_decl then begin
        Hashtbl.reset e.known;
        seq_scan e regions n.Ast.rhs;
        if has_orphaned_tasking n.Ast.rhs then begin
          Hashtbl.reset e.known;
          regions := analyze_seq_frame e d :: !regions
        end
      end)
    (Ast.top_decls ast);
  { ast; spans; regions = List.rev !regions; tp = !tp }

(** Autoscoping: from conflicts to clause diagnoses and repairs (the
    analyser's third pass).

    For every conflict {!Depend} reports, this pass infers the minimal
    clause change that makes the region correct and emits a finding
    that names it — mirroring the suggestions the dynamic detector
    prints, so the same defect gets the same advice from both
    backends:

    - every write to the cell matches one reduction pattern
      [x = x op e] and the combined operand varies with the loop →
      the variable belongs in a [reduction(op: x)] clause;
    - the same pattern with a loop-invariant operand → the update
      needs an [//$omp atomic];
    - the conflict crosses a [nowait] boundary → the [nowait] clause
      must go;
    - a loop-carried dependence between distinct affine subscripts →
      no clause fixes it; reported as a [dep] finding;
    - anything else → mutual exclusion or privatisation, reported
      without an automatic fix.

    The pass also diffs declared clauses against inferred ones:
    [default(none)] regions with unscoped variables (the same variable
    set, and so the same finding id, as the preprocessor's runtime
    diagnostic), [private] variables read before any write (should be
    [firstprivate]), and advisory notes for clauses that name
    variables the construct never touches. *)

open Zr
module D = Ompfront.Directive
module Df = Dataflow
module Report = Check.Report
module Names = Preproc.Names
module Sset = Names.Sset

type out = {
  findings : Report.finding list;  (** verdict-affecting (PROVEN) *)
  may : Report.finding list;       (** advisory (MAY) *)
  fixes : Fix.action list;
}

(* ----------------------------- rendering --------------------------- *)

type rctx = {
  ast : Ast.t;
  spans : Ast.spans;
  sctx : Preproc.Synth.ctx;
}

let pos_of r byte =
  let line, col = Source.position r.ast.Ast.source byte in
  Printf.sprintf "%d:%d" line col

let node_start r i = fst (Preproc.Synth.node_bytes r.sctx i)

let rw_s = function `R -> "read" | `W -> "write"

let render_access r (a : Df.access) =
  Printf.sprintf "%s@%s" (rw_s a.Df.rw) (pos_of r (node_start r a.Df.anode))

let snippet r byte =
  let text = r.ast.Ast.source.Source.text in
  let n = String.length text in
  let b = ref (max 0 (min byte (n - 1))) and e = ref byte in
  while !b > 0 && text.[!b - 1] <> '\n' do decr b done;
  while !e < n && text.[!e] <> '\n' do incr e done;
  String.trim (String.sub text !b (!e - !b))

(* Span of [var]'s identifier inside a clause of directive [dir], so
   the caret lands on the clause entry being diagnosed. *)
let clause_ident_span r dir var =
  let cl = Ast.clauses r.ast dir in
  let ids =
    cl.D.private_ @ cl.D.firstprivate @ cl.D.shared
    @ List.map snd cl.D.reductions
  in
  List.find_map
    (fun id ->
      if Ast.token_text r.ast (Ast.node r.ast id).Ast.main_token = var then
        Some (Preproc.Synth.node_bytes r.sctx id)
      else None)
    ids

let clause_kw_span r dir cid =
  List.find_map
    (fun cs ->
      if cs.D.cid = cid then Some (Ast.clause_span_bytes r.ast cs) else None)
    (Ast.clause_spans r.ast dir)

(* ------------------------- conflict repairs ------------------------ *)

type repair =
  | Rreduction of D.red_op * int   (* op, target directive *)
  | Ratomic of int                 (* the racing update statement *)
  | Ratomic_all of int list        (* every racing update statement *)
  | Rnowait of int                 (* directive whose nowait must go *)
  | Rtaskwait of int               (* insert taskwait before this stmt *)
  | Rcapture_fp of int             (* task whose shared(v) should be
                                      firstprivate(v) *)
  | Rnone

(* Every unsynchronised write to [var] in the region matches one
   reduction pattern with a consistent operator. *)
let reduction_of_writes (region : Df.region) var =
  let writes =
    List.filter
      (fun (a : Df.access) ->
        a.Df.var = var && a.Df.rw = `W && not a.Df.viacall
        && a.Df.sync = Df.Snone)
      region.Df.accesses
  in
  match writes with
  | [] -> None
  | w :: _ -> (
      match w.Df.red with
      | None -> None
      | Some (op, _) ->
          if
            List.for_all
              (fun (a : Df.access) ->
                match a.Df.red with Some (o, _) -> o = op | None -> false)
              writes
          then
            Some
              ( op,
                List.exists
                  (fun (a : Df.access) ->
                    match a.Df.red with Some (_, dep) -> dep | None -> false)
                  writes,
                writes )
          else None)

(* The directive a reduction clause belongs on: the region directive
   when it scopes the variable (or is a combined construct); otherwise
   the worksharing loop the racing write sits in. *)
let reduction_target r (region : Df.region) (w : Df.access) =
  let cl = Ast.clauses r.ast region.Df.rdir in
  let shared_names =
    List.map
      (fun id -> Ast.token_text r.ast (Ast.node r.ast id).Ast.main_token)
      cl.D.shared
  in
  if region.Df.rkind = D.Parallel_for || List.mem w.Df.var shared_names then
    region.Df.rdir
  else
    match w.Df.mult with Df.Mdist l -> l | _ -> region.Df.rdir

(* Task-involved conflicts get their own repair ladder, ordered by how
   much behaviour the rewrite preserves:
   1. the task only *reads* an explicitly shared(v) local → capture it
      by value instead: [firstprivate(v)] snapshots at creation;
   2. the task races with the creator's continuation → insert the
      missing [//$omp taskwait] before the dependent statement;
   3. all racing writes are one reduction pattern (task pairs,
      sections) → [//$omp atomic] on every update;
   4. otherwise no clause fixes it — generic advice. *)
let task_repair r (region : Df.region) (cf : Depend.conflict) : repair =
  let a = cf.Depend.a and b = cf.Depend.b in
  let var = a.Df.var in
  let atomic_fallback () =
    match reduction_of_writes region var with
    | Some (_, false, writes) ->
        Ratomic_all (List.map (fun (w : Df.access) -> w.Df.anode) writes)
    | _ -> Rnone
  in
  let split =
    match (a.Df.task, b.Df.task) with
    | t, 0 when t <> 0 -> Some (t, b)
    | 0, t when t <> 0 -> Some (t, a)
    | _ -> None
  in
  match split with
  | Some (t, code) -> (
      match List.assoc_opt t region.Df.tasks with
      | Some i when i.Df.tparent = code.Df.task ->
          let in_shared_clause =
            i.Df.tkind = Df.Ttask
            && List.exists
                 (fun id ->
                   Ast.token_text r.ast (Ast.node r.ast id).Ast.main_token
                   = var)
                 (Ast.clauses r.ast i.Df.tdir).D.shared
          in
          let task_read_only =
            List.for_all
              (fun (x : Df.access) ->
                x.Df.task <> t || x.Df.var <> var || x.Df.rw = `R)
              region.Df.accesses
          in
          if in_shared_clause && task_read_only then Rcapture_fp i.Df.tdir
          else if code.Df.seq > i.Df.tspawn then Rtaskwait code.Df.anode
          else atomic_fallback ()
      | _ -> atomic_fallback ())
  | None -> atomic_fallback ()

let repair_of_conflict r (region : Df.region) (cf : Depend.conflict) : repair
    =
  let a = cf.Depend.a and b = cf.Depend.b in
  let var = a.Df.var in
  let write = if b.Df.rw = `W then b else a in
  match cf.Depend.carried with
  | Some _ -> Rnone  (* a carried dependence is not a scoping bug *)
  | None -> (
      if a.Df.task <> 0 || b.Df.task <> 0 then task_repair r region cf
      else
      match reduction_of_writes region var with
      | Some (op, dep, _) ->
          if dep then Rreduction (op, reduction_target r region write)
          else Ratomic write.Df.anode
      | None -> (
          (* a conflict across constructs whose first side escapes its
             implicit barrier: drop the nowait *)
          let nowait_dir (x : Df.access) =
            match x.Df.mult with
            | Df.Mdist l -> (
                match List.assoc_opt l region.Df.loops with
                | Some li when li.Df.lnowait -> Some l
                | _ -> None)
            | Df.Msingle (d, true) -> Some d
            | _ -> None
          in
          let different_constructs =
            match (a.Df.mult, b.Df.mult) with
            | Df.Mdist l1, Df.Mdist l2 -> l1 <> l2
            | Df.Mdist _, _ | _, Df.Mdist _ -> true
            | Df.Msingle (d1, _), Df.Msingle (d2, _) -> d1 <> d2
            | _ -> false
          in
          if different_constructs then
            match nowait_dir a with
            | Some d -> Rnowait d
            | None -> (
                match nowait_dir b with Some d -> Rnowait d | None -> Rnone)
          else Rnone))

let suggestion_of r = function
  | Rreduction (op, _) , var ->
      Printf.sprintf "reduction(%s: %s)" (D.red_op_to_string op) var
  | (Ratomic _ | Ratomic_all _), _ -> "//$omp atomic before the update"
  | Rnowait dir, _ ->
      ignore r;
      ignore dir;
      "removing nowait"
  | Rtaskwait _, _ -> "//$omp taskwait before the dependent statement"
  | Rcapture_fp _, var ->
      Printf.sprintf
        "firstprivate(%s) on the task: capture the value at creation" var
  | Rnone, var ->
      Printf.sprintf
        "atomic/critical around the conflicting accesses, or private(%s)"
        var

let fixes_of_repair var = function
  | Rreduction (op, dir) -> [ Fix.Move_to_reduction { dir; op; var } ]
  | Ratomic stmt -> [ Fix.Insert_atomic { stmt } ]
  | Ratomic_all stmts ->
      List.map (fun stmt -> Fix.Insert_atomic { stmt }) stmts
  | Rnowait dir -> [ Fix.Remove_nowait { dir } ]
  | Rtaskwait stmt -> [ Fix.Insert_taskwait { stmt } ]
  | Rcapture_fp dir -> [ Fix.Shared_to_firstprivate { dir; var } ]
  | Rnone -> []

let span_of_repair r region var repair (b : Df.access) =
  match repair with
  | Rreduction (_, dir) -> (
      match clause_ident_span r dir var with
      | Some s -> Some s
      | None -> clause_ident_span r region.Df.rdir var)
  | Ratomic stmt -> Some (Preproc.Synth.node_bytes r.sctx stmt)
  | Ratomic_all (stmt :: _) -> Some (Preproc.Synth.node_bytes r.sctx stmt)
  | Rtaskwait stmt -> Some (Preproc.Synth.node_bytes r.sctx stmt)
  | Rcapture_fp dir -> (
      match clause_ident_span r dir var with
      | Some s -> Some s
      | None -> Some (Preproc.Synth.node_bytes r.sctx b.Df.anode))
  | Rnowait dir -> (
      match clause_kw_span r dir D.Cnowait with
      | Some s -> Some s
      | None -> Some (Preproc.Synth.node_bytes r.sctx b.Df.anode))
  | Ratomic_all [] | Rnone ->
      Some (Preproc.Synth.node_bytes r.sctx b.Df.anode)

(* --------------------------- the pass body ------------------------- *)

let conflict_findings r (region : Df.region) =
  let findings = ref [] and may = ref [] and fixes = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (cf : Depend.conflict) ->
      let a = cf.Depend.a and b = cf.Depend.b in
      let var = Report.clean_var a.Df.var in
      let repair = repair_of_conflict r region cf in
      let suggestion = suggestion_of r (repair, var) in
      let key = (var, suggestion, cf.Depend.carried <> None) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let span = span_of_repair r region var repair b in
        match cf.Depend.verdict with
        | Depend.VProven reason ->
            (match cf.Depend.carried with
             | Some c ->
                 let line =
                   Printf.sprintf
                     "dep %s: distance %d, direction (%s): %s vs %s :: \
                      `%s` :: %s"
                     var c.Depend.distance c.Depend.direction
                     (render_access r a) (render_access r b)
                     (snippet r (node_start r b.Df.anode))
                     "a clause cannot fix a loop-carried dependence; \
                      restructure the loop"
                 in
                 findings :=
                   Report.dep ~var ~verdict:Report.Proven ?span line
                   :: !findings
             | None ->
                 let line =
                   Printf.sprintf "race %s: %s vs %s :: `%s` :: suggest %s"
                     var (render_access r a) (render_access r b)
                     (snippet r (node_start r b.Df.anode))
                     suggestion
                 in
                 ignore reason;
                 findings :=
                   Report.race ~var ~verdict:Report.Proven ?span line
                   :: !findings);
            fixes := List.rev_append (fixes_of_repair a.Df.var repair) !fixes
        | Depend.VMay reason ->
            let line =
              Printf.sprintf "may %s %s: %s vs %s :: %s"
                (if cf.Depend.carried <> None then "dep" else "race")
                var (render_access r a) (render_access r b) reason
            in
            let mk = if cf.Depend.carried <> None then Report.dep else Report.race in
            may := mk ~var ~verdict:Report.May ?span line :: !may
        | Depend.VNone -> ()
      end)
    (Depend.conflicts region);
  (List.rev !findings, List.rev !may, List.rev !fixes)

(* ------------------------- clause diagnosis ------------------------ *)

(* default(none): replicate the preprocessor's variable set exactly so
   both backends derive the same finding id. *)
let default_none_check r (region : Df.region) =
  let dir = region.Df.rdir in
  let n = Ast.node r.ast dir in
  let cl = Ast.clauses r.ast dir in
  if cl.D.flags.default <> Ompfront.Packed.Default_none || n.Ast.rhs = 0 then
    None
  else
    let name_of id =
      Ast.token_text r.ast (Ast.node r.ast id).Ast.main_token
    in
    let explicit =
      Sset.of_list
        (List.map name_of
           (cl.D.private_ @ cl.D.firstprivate @ cl.D.shared
            @ List.map snd cl.D.reductions))
    in
    let body = n.Ast.rhs in
    let implicit =
      Sset.(
        diff
          (diff
             (diff
                (Names.referenced_under r.ast body)
                (Names.declared_under r.ast body))
             (Names.globals r.ast))
          explicit)
    in
    if Sset.is_empty implicit then None
    else
      let vars = Sset.elements implicit in
      let id = "lint|default-none|" ^ String.concat "," vars in
      let span = clause_kw_span r dir D.Cdefault in
      let line =
        Printf.sprintf
          "scope default(none): variable(s) %s referenced without a \
           sharing clause :: suggest shared(%s)"
          (String.concat ", " vars)
          (String.concat ", " vars)
      in
      Some
        ( Report.scope ~id ~verdict:Report.Proven ?span line,
          Fix.Add_shared { dir; vars } )

(* First textual access to [v] under node [i]: reads before writes
   within one statement, matching evaluation order for the shapes the
   preprocessor accepts. *)
let first_access r v i : [ `R | `W ] option =
  let result = ref None in
  let set x = if !result = None then result := Some x in
  let rec go j =
    if !result <> None then ()
    else
      let n = Ast.node r.ast j in
      match n.Ast.tag with
      | Ast.Ident ->
          if Ast.token_text r.ast n.Ast.main_token = v then set `R
      | Ast.Assign -> (
          let tn = Ast.node r.ast n.Ast.lhs in
          let target_is_v =
            tn.Ast.tag = Ast.Ident
            && Ast.token_text r.ast tn.Ast.main_token = v
          in
          let optok = (Ast.token r.ast n.Ast.main_token).Token.tag in
          if target_is_v && optok = Token.Eq then begin
            go n.Ast.rhs;
            set `W
          end
          else begin
            if target_is_v then set `R;
            go n.Ast.lhs;
            go n.Ast.rhs
          end)
      | Ast.Call ->
          List.iter go (Ast.call_args r.ast j)
      | Ast.Field -> ()
      | _ -> List.iter go (Names.children r.ast j)
  in
  go i;
  !result

(* private(v) read before any write: the value is undefined there;
   firstprivate is almost always what was meant. *)
let private_read_first r dir =
  let n = Ast.node r.ast dir in
  if n.Ast.rhs = 0 then []
  else
    let cl = Ast.clauses r.ast dir in
    (* the counter of a worksharing loop is rebound by the lowering,
       not read uninitialised *)
    let skip =
      match n.Ast.tag with
      | Ast.Omp_for | Ast.Omp_parallel_for -> (
          let wn = Ast.node r.ast n.Ast.rhs in
          if wn.Ast.tag <> Ast.While then Sset.empty
          else
            let cond = Ast.node r.ast wn.Ast.lhs in
            if cond.Ast.tag <> Ast.Bin_op then Sset.empty
            else
              let cn = Ast.node r.ast cond.Ast.lhs in
              if cn.Ast.tag = Ast.Ident then
                Sset.singleton (Ast.token_text r.ast cn.Ast.main_token)
              else Sset.empty)
      | _ -> Sset.empty
    in
    List.filter_map
      (fun id ->
        let v = Ast.token_text r.ast (Ast.node r.ast id).Ast.main_token in
        if Sset.mem v skip then None
        else
          match first_access r v n.Ast.rhs with
          | Some `R ->
              let span = Some (Preproc.Synth.node_bytes r.sctx id) in
              let pos = pos_of r (fst (Option.get span)) in
              let line =
                Printf.sprintf
                  "scope private(%s) at %s: read before any write in the \
                   construct :: suggest firstprivate(%s)"
                  v pos v
              in
              Some
                ( Report.scope
                    ~id:(Printf.sprintf "scope|firstprivate|%s@%s" v pos)
                    ~verdict:Report.Proven ?span line,
                  Fix.Private_to_firstprivate { dir; var = v } )
          | _ -> None)
      cl.D.private_

(* Advisory: clauses naming variables the construct never references. *)
let unused_clause_names r dir =
  let n = Ast.node r.ast dir in
  if n.Ast.rhs = 0 then []
  else
    let cl = Ast.clauses r.ast dir in
    let refd = Names.referenced_under r.ast n.Ast.rhs in
    let check cname ids =
      List.filter_map
        (fun id ->
          let v = Ast.token_text r.ast (Ast.node r.ast id).Ast.main_token in
          if Sset.mem v refd then None
          else
            let span = Some (Preproc.Synth.node_bytes r.sctx id) in
            let pos = pos_of r (fst (Option.get span)) in
            Some
              (Report.scope
                 ~id:(Printf.sprintf "scope|unused|%s|%s@%s" cname v pos)
                 ~verdict:Report.May ?span
                 (Printf.sprintf
                    "may scope %s(%s) at %s: the construct never \
                     references %s"
                    cname v pos v)))
        ids
    in
    check "private" cl.D.private_
    @ check "firstprivate" cl.D.firstprivate
    @ check "shared" cl.D.shared
    @ check "reduction" (List.map snd cl.D.reductions)

(* ------------------------------ driver ----------------------------- *)

let directives_under r dir =
  let acc = ref [] in
  Names.walk r.ast dir (fun j ->
      if Ast.tag_is_omp (Ast.node r.ast j).Ast.tag then acc := j :: !acc);
  List.sort compare !acc

let run (df : Df.result) : out =
  let r =
    { ast = df.Df.ast; spans = df.Df.spans;
      sctx = { Preproc.Synth.ast = df.Df.ast; spans = df.Df.spans } }
  in
  let findings = ref [] and may = ref [] and fixes = ref [] in
  let add (f, m, x) =
    findings := !findings @ f;
    may := !may @ m;
    fixes := !fixes @ x
  in
  List.iter
    (fun (region : Df.region) ->
      add (conflict_findings r region);
      (* pseudo-regions (sequential frames with orphaned tasks) have a
         Fn_decl as [rdir]: no clauses of their own, and their subtree
         may contain real regions already diagnosed above *)
      if not region.Df.rseq then begin
        (match default_none_check r region with
         | Some (f, fix) -> add ([ f ], [], [ fix ])
         | None -> ());
        List.iter
          (fun dir ->
            let scoped = private_read_first r dir in
            add (List.map fst scoped, [], List.map snd scoped);
            add ([], unused_clause_names r dir, []))
          (directives_under r region.Df.rdir)
      end)
    df.Df.regions;
  { findings = !findings; may = !may; fixes = !fixes }

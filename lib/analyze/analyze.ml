(** [zrc analyze]: static data-sharing, dependence and autoscoping
    analysis for Zr OpenMP programs — a backend that never executes
    the program.

    The pipeline is three passes plus a rewriter:

    + {!Dataflow} collects per-variable/per-array access sets for every
      parallel region, with multiplicities, barrier phases,
      synchronisation and subscript shapes;
    + {!Depend} decides, pair by pair, which accesses can conflict —
      ZIV/SIV subscript tests with direction vectors for the affine
      shapes, conservative [MAY] degradation for everything else;
    + {!Autoscope} turns conflicts into clause diagnoses
      ([reduction]/[atomic]/[nowait] repairs, [default(none)]
      completeness, [private]-vs-[firstprivate]) with precise clause
      spans;
    + {!Fix} renders the repairs back onto the source text;
      {!fix_to_fixpoint} reapplies analyse-and-rewrite until the
      program is clean or stable.

    The taxonomy: [PROVEN] findings are defects the analysis is sure
    of (a conforming execution with >= 2 threads exhibits them — the
    dynamic checker must be able to observe each one); [MAY] findings
    are conservative and advisory, and never affect the verdict or
    exit code; a program is [CLEAN] when it has no findings of either
    confidence. *)

module Dataflow = Dataflow
module Depend = Depend
module Autoscope = Autoscope
module Fix = Fix
module Report = Check.Report

type result = {
  report : Report.t;       (** verdict-affecting findings, backend
                               ["analyze"], exit code discipline of
                               {!Report.exit_code} *)
  may : Report.finding list;  (** advisory findings *)
  fixes : Fix.action list;
}

let dedup_by_line fs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (f : Report.finding) ->
      if Hashtbl.mem seen f.Report.line then false
      else begin
        Hashtbl.add seen f.Report.line ();
        true
      end)
    fs

(** Analyse a program; never executes it. *)
let run ?(name = "<input>") source : result =
  match Zr.Parser.parse_string ~name source with
  | exception Zr.Source.Error msg ->
      { report =
          Report.make ~backend:"analyze" ~name ~schedules:0
            [ Report.error ~detail:msg ];
        may = [];
        fixes = [] }
  | ast, spans ->
      let df = Dataflow.run ast spans in
      let out = Autoscope.run df in
      (* advisory: loop transforms the preprocessor would refuse, with
         the legality verdict in the rendered line (the refusal itself
         is safe — the clause is stripped — so these never affect the
         exit code) *)
      let transform_may =
        Preproc.Transform.assess { Preproc.Synth.ast; spans }
        |> List.map (fun (r : Preproc.Transform.refusal) ->
               Report.lint ~rule:"transform"
                 ~detail:
                   (Printf.sprintf "line %d: %s refused [%s]: %s" r.line
                      r.clause
                      (match r.verdict with
                       | Preproc.Transform.Proven -> "PROVEN"
                       | Preproc.Transform.May -> "MAY")
                      r.reason)
                 ())
      in
      { report =
          Report.make ~backend:"analyze" ~source:ast.Zr.Ast.source ~name
            ~schedules:0 out.Autoscope.findings;
        may =
          List.sort compare (dedup_by_line out.Autoscope.may)
          @ transform_may;
        fixes = out.Autoscope.fixes }

(** The strongest static verdict: no findings of either confidence. *)
let clean r = Report.clean r.report && r.may = []

let apply_fixes ~name source (fixes : Fix.action list) : string option =
  if fixes = [] then None
  else
    match Zr.Parser.parse_string ~name source with
    | exception Zr.Source.Error _ -> None
    | ast, spans -> (
        match Fix.replacements ~ast ~spans fixes with
        | [] -> None
        | rs -> Some (Preproc.Synth.apply_replacements source rs))

(** [fix_to_fixpoint source] — repeatedly analyse and rewrite until no
    repair remains, the rewrite stops changing the text, or the round
    bound is hit.  Returns the final source, its analysis and the
    number of rewrite rounds applied. *)
let fix_to_fixpoint ?(name = "<input>") ?(max_rounds = 8) source :
    string * result * int =
  let rec go src rounds =
    let r = run ~name src in
    if r.fixes = [] || rounds >= max_rounds then (src, r, rounds)
    else
      match apply_fixes ~name src r.fixes with
      | None -> (src, r, rounds)
      | Some src' when src' = src -> (src, r, rounds)
      | Some src' -> go src' (rounds + 1)
  in
  go source 0

(** Staged closure compilation of a loaded Zr program.

    [compile] lowers every function of an {!Rt.program} (as produced by
    [Interp.load]) to nested OCaml closures over a flat slot frame;
    [call]/[run_main] then execute without any per-iteration AST
    dispatch or name lookup.  Both backends share {!Rt} and {!Builtins},
    so outputs, error messages and profile counts match the tree
    walker. *)

type t

(** Compile all functions of a loaded program.  The program's globals
    must be fully initialised (i.e. this runs after [Interp.load]).

    With [~bc], worksharing drain bodies are additionally planned for
    the register-bytecode tier ({!Bcgen}/{!Bcexec}): drains whose body
    the planner covers execute on the VM (specialised lazily on first
    entry), everything else falls back to the closures compiled here.
    [bc.elide] controls analysis-driven bounds-guard elision. *)
val compile : ?bc:Bcgen.opts -> Rt.program -> t

(** The underlying loaded program. *)
val program : t -> Rt.program

(** [call t fname args] invokes a program function on the compiled
    backend.  Raises [Value.Runtime_error] exactly where the tree
    walker would. *)
val call : t -> string -> Value.t list -> Value.t

(** Run [main]. *)
val run_main : t -> Value.t

(** Frame layout of a compiled function as [(slot, name)] pairs in
    allocation order — parameters first, then every declaration in
    compile order (shadowing allocates a fresh slot).  [None] if the
    function does not exist.  Exposed for the slot-allocation
    goldens. *)
val slot_layout : t -> string -> (int * string) list option

(** Whether this program was compiled with the bytecode tier. *)
val bc_enabled : t -> bool

(** Disassembly listings of every drain body specialised so far, as
    [(label, listing)] in specialisation order; [label] is
    ["<fn>#<k>"] for the [k]-th recognised drain of [<fn>].  Listings
    appear only after a drain has executed once (specialisation is
    lazy), so run the program before dumping. *)
val bc_listings : t -> (string * string) list

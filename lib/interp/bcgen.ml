(** Codegen for the register-bytecode tier ({!Bc}).

    Lowering happens in two phases, because Zr is dynamically typed and
    register banks are not:

    - {b Phase A} ([plan]), at closure-compile time inside a recognised
      worksharing drain: walk the loop body once, resolve every name
      against the enclosing compile scopes, and lower to a small
      *untyped* IR.  Everything the tier does not cover — calls,
      pointer writes, globals, strings, structs, [return], address-of,
      assignment to the loop counter or to an indexed array's own slot
      — aborts the plan; the drain then always runs on the closure
      tier.
    - {b Phase B} ([specialize]), at the first drain entry: observe the
      runtime shapes of the captured slots (int, float, bool, which
      array bank each indexed base lives in), run a monomorphic typing
      pass over the IR, and emit the two fixed-width code arrays (the
      guard-elided variant and its fully guarded twin).  The result is
      cached on the plan; a later entry whose captured shapes disagree
      with the cached signature bails to the closure tier rather than
      respecialising, so the cache is write-once.

    The typing pass is deliberately conservative: a variable must keep
    one shape for the whole body (the closure tier would happily retype
    it, so a conflict is a bailout, never a coercion), booleans are
    0/1 in the int file, and [int op int] stays integer arithmetic
    exactly where {!Rt} keeps it integer — bit-exactness with the
    closure tier is the invariant, speed only comes second. *)

open Zr
module V = Value

(** Name resolution outcome handed in by {!Compile} (the drain's
    enclosing scopes at plan time). *)
type rres =
  | Rslot of int     (** a local of the enclosing function *)
  | Rfnname          (** a program function *)
  | Rglobalish       (** a global (plain or threadprivate) *)
  | Runbound

type opts = { elide : bool }

exception Bail

let bail () = raise Bail

(* ------------------------------------------------------------------ *)
(* Untyped IR.                                                         *)

type binop =
  | Badd | Bsub | Bmul
  | Bdiv   (** [Rt.div]: integer division iff both ints *)
  | Bmod
  | Bdiva  (** [Rt.div_assign]: always float division *)

type cmpop = Clt | Cle | Cgt | Cge | Ceq | Cne

type math1 = Msqrt | Mlog | Mexp | Mfabs | Mfloor

type uexpr =
  | UConstI of int
  | UConstF of float
  | UConstB of bool
  | ULocal of int            (* body-local index *)
  | UCap of int              (* captured-slot index *)
  | UIv
  | UDeref of int            (* hoisted scalar dereference index *)
  | UBin of binop * uexpr * uexpr
  | UCmp of cmpop * uexpr * uexpr
  | UAnd of uexpr * uexpr
  | UOr of uexpr * uexpr
  | UNeg of uexpr
  | UNot of uexpr
  | ULoad of int * uexpr     (* phase-A base index, subscript *)
  | UMath of math1 * uexpr
  | UIntOf of uexpr
  | UFloatOf of uexpr
  | ULen of int
  | UTid
  | UNtd

type skind =
  | SAssignL of int * uexpr
  | SAssignC of int * uexpr
  | SStore of int * uexpr * uexpr             (* base, idx, value *)
  | SOpStore of binop * int * uexpr * uexpr   (* base[idx] op= value *)
  | SIf of uexpr * ustmt list * ustmt list
  | SWhile of uexpr * ustmt list * ustmt list (* cond, body, cont *)
  | SExpr of uexpr                            (* evaluate for effects *)
  | SBreak
  | SContinue

and ustmt = { sk : skind; sline : int }

type cached = Cnone | Cfail | Cprog of Bc.program

type plan = {
  opts : opts;
  label : string;
  line : int;                           (* body's source line *)
  ivslot : int;
  step : int;                           (* literal loop step *)
  ubody : ustmt list;
  ucont : ustmt list;                   (* [] iff [fuse_cont] *)
  fuse_cont : bool;
  caps : (int * string) array;          (* (slot, name) *)
  cap_written : bool array;
  ubases : (int * bool * string) array; (* (slot, deref?, name) *)
  uderefs : (int * string) array;       (* (slot, name) *)
  uses_tid : bool;
  uses_ntd : bool;
  nlocals : int;
  lnames : string array;
  cache : cached Atomic.t;
  on_spec : Bc.program -> unit;         (* listing registration *)
}

(* ------------------------------------------------------------------ *)
(* Phase A: AST -> untyped IR.                                         *)

type pa = {
  ast : Ast.t;
  resolve : string -> rres;
  pivslot : int;
  mutable scopes : (string * int) list list;
  mutable nlocals : int;
  mutable lnames_rev : string list;
  cap_tbl : (int, int) Hashtbl.t;           (* slot -> cap index *)
  mutable caps_rev : (int * string) list;
  mutable ncaps : int;
  written : (int, unit) Hashtbl.t;          (* written cap indices *)
  base_tbl : (int * bool, int) Hashtbl.t;   (* (slot, deref) -> base *)
  mutable bases_rev : (int * bool * string) list;
  mutable nbases : int;
  deref_tbl : (int, int) Hashtbl.t;         (* slot -> deref index *)
  mutable derefs_rev : (int * string) list;
  mutable nderefs : int;
  mutable ptid : bool;
  mutable pntd : bool;
}

let line_of_node pa node =
  let n = Ast.node pa.ast node in
  Source.line_of pa.ast.Ast.source
    (Ast.token pa.ast n.Ast.main_token).Token.start

let fresh_local pa name =
  let l = pa.nlocals in
  pa.nlocals <- l + 1;
  pa.lnames_rev <- name :: pa.lnames_rev;
  (match pa.scopes with
   | scope :: rest -> pa.scopes <- ((name, l) :: scope) :: rest
   | [] -> assert false);
  l

let rec lookup_scopes scopes name =
  match scopes with
  | [] -> None
  | scope :: rest ->
      (match List.assoc_opt name scope with
       | Some l -> Some l
       | None -> lookup_scopes rest name)

type nres = Nlocal of int | Ncap of int | Niv | Nother of rres

let cap_of_slot pa slot name =
  match Hashtbl.find_opt pa.cap_tbl slot with
  | Some c -> c
  | None ->
      let c = pa.ncaps in
      pa.ncaps <- c + 1;
      Hashtbl.add pa.cap_tbl slot c;
      pa.caps_rev <- (slot, name) :: pa.caps_rev;
      c

let base_of pa slot deref name =
  match Hashtbl.find_opt pa.base_tbl (slot, deref) with
  | Some b -> b
  | None ->
      let b = pa.nbases in
      pa.nbases <- b + 1;
      Hashtbl.add pa.base_tbl (slot, deref) b;
      pa.bases_rev <- (slot, deref, name) :: pa.bases_rev;
      b

let deref_of pa slot name =
  match Hashtbl.find_opt pa.deref_tbl slot with
  | Some d -> d
  | None ->
      let d = pa.nderefs in
      pa.nderefs <- d + 1;
      Hashtbl.add pa.deref_tbl slot d;
      pa.derefs_rev <- (slot, name) :: pa.derefs_rev;
      d

let name_res pa name : nres =
  match lookup_scopes pa.scopes name with
  | Some l -> Nlocal l
  | None ->
      (match pa.resolve name with
       | Rslot s when s = pa.pivslot -> Niv
       | Rslot s -> Ncap (cap_of_slot pa s name)
       | r -> Nother r)

(* The base of an indexed access / len(): an identifier bound to an
   enclosing slot, or a dereference of one.  Anything else bails.  Goes
   straight to the resolver — array bases live in the base table, never
   the capture table. *)
let base_expr pa node : int =
  let n = Ast.node pa.ast node in
  match n.Ast.tag with
  | Ast.Ident ->
      let name = Ast.token_text pa.ast n.Ast.main_token in
      (match lookup_scopes pa.scopes name with
       | Some _ -> bail ()
       | None ->
           (match pa.resolve name with
            | Rslot s when s <> pa.pivslot -> base_of pa s false name
            | _ -> bail ()))
  | Ast.Deref ->
      let l = Ast.node pa.ast n.Ast.lhs in
      if l.Ast.tag <> Ast.Ident then bail ()
      else
        let name = Ast.token_text pa.ast l.Ast.main_token in
        (match lookup_scopes pa.scopes name with
         | Some _ -> bail ()
         | None ->
             (match pa.resolve name with
              | Rslot s when s <> pa.pivslot -> base_of pa s true name
              | _ -> bail ()))
  | _ -> bail ()

let int_lit_of pa node : int option =
  let n = Ast.node pa.ast node in
  match n.Ast.tag with
  | Ast.Int_lit ->
      let text = Ast.token_text pa.ast n.Ast.main_token in
      let text = String.concat "" (String.split_on_char '_' text) in
      int_of_string_opt text
  | Ast.Un_op
    when (Ast.token pa.ast n.Ast.main_token).Token.tag = Token.Minus -> (
      let l = Ast.node pa.ast n.Ast.lhs in
      if l.Ast.tag <> Ast.Int_lit then None
      else
        let text = Ast.token_text pa.ast l.Ast.main_token in
        let text = String.concat "" (String.split_on_char '_' text) in
        match int_of_string_opt text with
        | Some i -> Some (-i)
        | None -> None)
  | _ -> None

let rec uexpr pa node : uexpr =
  let n = Ast.node pa.ast node in
  match n.Ast.tag with
  | Ast.Int_lit ->
      let text = Ast.token_text pa.ast n.Ast.main_token in
      let text = String.concat "" (String.split_on_char '_' text) in
      (match int_of_string_opt text with
       | Some i -> UConstI i
       | None -> bail ())
  | Ast.Float_lit ->
      let text = Ast.token_text pa.ast n.Ast.main_token in
      (match float_of_string_opt text with
       | Some f -> UConstF f
       | None -> bail ())
  | Ast.Bool_lit -> UConstB (Ast.token_text pa.ast n.Ast.main_token = "true")
  | Ast.Ident ->
      let name = Ast.token_text pa.ast n.Ast.main_token in
      (match name_res pa name with
       | Nlocal l -> ULocal l
       | Ncap c -> UCap c
       | Niv -> UIv
       | Nother _ -> bail ())
  | Ast.Bin_op ->
      let t = (Ast.token pa.ast n.Ast.main_token).Token.tag in
      let a () = uexpr pa n.Ast.lhs and b () = uexpr pa n.Ast.rhs in
      (match t with
       | Token.Kw_and -> let x = a () in UAnd (x, b ())
       | Token.Kw_or -> let x = a () in UOr (x, b ())
       | Token.Plus -> let x = a () in UBin (Badd, x, b ())
       | Token.Minus -> let x = a () in UBin (Bsub, x, b ())
       | Token.Star -> let x = a () in UBin (Bmul, x, b ())
       | Token.Slash -> let x = a () in UBin (Bdiv, x, b ())
       | Token.Percent -> let x = a () in UBin (Bmod, x, b ())
       | Token.Lt -> let x = a () in UCmp (Clt, x, b ())
       | Token.Lt_eq -> let x = a () in UCmp (Cle, x, b ())
       | Token.Gt -> let x = a () in UCmp (Cgt, x, b ())
       | Token.Gt_eq -> let x = a () in UCmp (Cge, x, b ())
       | Token.Eq_eq -> let x = a () in UCmp (Ceq, x, b ())
       | Token.Bang_eq -> let x = a () in UCmp (Cne, x, b ())
       | _ -> bail ())
  | Ast.Un_op ->
      let t = (Ast.token pa.ast n.Ast.main_token).Token.tag in
      (match t with
       | Token.Minus -> UNeg (uexpr pa n.Ast.lhs)
       | Token.Bang -> UNot (uexpr pa n.Ast.lhs)
       | _ -> bail ())
  | Ast.Index ->
      let b = base_expr pa n.Ast.lhs in
      ULoad (b, uexpr pa n.Ast.rhs)
  | Ast.Deref ->
      let l = Ast.node pa.ast n.Ast.lhs in
      if l.Ast.tag <> Ast.Ident then bail ()
      else
        let name = Ast.token_text pa.ast l.Ast.main_token in
        (match lookup_scopes pa.scopes name with
         | Some _ -> bail ()
         | None ->
             (match pa.resolve name with
              | Rslot s when s <> pa.pivslot -> UDeref (deref_of pa s name)
              | _ -> bail ()))
  | Ast.Call -> ucall pa node n
  | _ -> bail ()

and ucall pa node n : uexpr =
  let args = Ast.call_args pa.ast node in
  let callee = Ast.node pa.ast n.Ast.lhs in
  match callee.Ast.tag with
  | Ast.Field ->
      (* only the omp.* namespace constants are representable *)
      let base = Ast.node pa.ast callee.Ast.lhs in
      let meth = Ast.token_text pa.ast callee.Ast.main_token in
      if base.Ast.tag <> Ast.Ident
         || Ast.token_text pa.ast base.Ast.main_token <> "omp"
      then bail ()
      else if lookup_scopes pa.scopes "omp" <> None then bail ()
      else
        (match pa.resolve "omp" with
         | Rfnname | Runbound ->
             (* constant for the whole drain: one thread runs it, and a
                team resize inside the body would need a call (bails) *)
             (match meth, args with
              | "get_thread_num", [] -> pa.ptid <- true; UTid
              | "get_num_threads", [] -> pa.pntd <- true; UNtd
              | _ -> bail ())
         | Rslot _ | Rglobalish -> bail ())
  | Ast.Ident ->
      let fname = Ast.token_text pa.ast callee.Ast.main_token in
      if lookup_scopes pa.scopes fname <> None then bail ()
      else
        (match pa.resolve fname with
         | Rslot _ | Rglobalish | Rfnname -> bail ()
         | Runbound ->
             (match fname, args with
              | "sqrt", [ a ] -> UMath (Msqrt, uexpr pa a)
              | "log", [ a ] -> UMath (Mlog, uexpr pa a)
              | "exp", [ a ] -> UMath (Mexp, uexpr pa a)
              | "fabs", [ a ] -> UMath (Mfabs, uexpr pa a)
              | "floor", [ a ] -> UMath (Mfloor, uexpr pa a)
              | "int_of", [ a ] -> UIntOf (uexpr pa a)
              | "float_of", [ a ] -> UFloatOf (uexpr pa a)
              | "len", [ a ] -> ULen (base_expr pa a)
              | _ -> bail ()))
  | _ -> bail ()

let rec ustmt_list pa node : ustmt list =
  let n = Ast.node pa.ast node in
  let line = line_of_node pa node in
  let one sk = [ { sk; sline = line } ] in
  match n.Ast.tag with
  | Ast.Block ->
      pa.scopes <- [] :: pa.scopes;
      let out =
        List.concat_map (fun s -> ustmt_list pa s) (Ast.block_stmts pa.ast node)
      in
      pa.scopes <- List.tl pa.scopes;
      out
  | Ast.Var_decl | Ast.Const_decl ->
      if n.Ast.rhs = 0 then bail ();
      (* initialiser first, then the binding — the closure tier allocates
         the slot after compiling the initialiser *)
      let e = uexpr pa n.Ast.rhs in
      let l = fresh_local pa (Ast.token_text pa.ast n.Ast.main_token) in
      one (SAssignL (l, e))
  | Ast.Assign ->
      let t = (Ast.token pa.ast n.Ast.main_token).Token.tag in
      let tgt = Ast.node pa.ast n.Ast.lhs in
      (match tgt.Ast.tag with
       | Ast.Ident ->
           let name = Ast.token_text pa.ast tgt.Ast.main_token in
           let combine cur rhs =
             match t with
             | Token.Eq -> rhs
             | Token.Plus_eq -> UBin (Badd, cur, rhs)
             | Token.Minus_eq -> UBin (Bsub, cur, rhs)
             | Token.Star_eq -> UBin (Bmul, cur, rhs)
             | Token.Slash_eq -> UBin (Bdiva, cur, rhs)
             | _ -> bail ()
           in
           (match name_res pa name with
            | Nlocal l ->
                one (SAssignL (l, combine (ULocal l) (uexpr pa n.Ast.rhs)))
            | Ncap c ->
                Hashtbl.replace pa.written c ();
                one (SAssignC (c, combine (UCap c) (uexpr pa n.Ast.rhs)))
            | Niv | Nother _ -> bail ())
       | Ast.Index ->
           let b = base_expr pa tgt.Ast.lhs in
           let idx = uexpr pa tgt.Ast.rhs in
           let rhs = uexpr pa n.Ast.rhs in
           (match t with
            | Token.Eq -> one (SStore (b, idx, rhs))
            | Token.Plus_eq -> one (SOpStore (Badd, b, idx, rhs))
            | Token.Minus_eq -> one (SOpStore (Bsub, b, idx, rhs))
            | Token.Star_eq -> one (SOpStore (Bmul, b, idx, rhs))
            | Token.Slash_eq -> one (SOpStore (Bdiva, b, idx, rhs))
            | _ -> bail ())
       | _ -> bail ())
  | Ast.While ->
      let cont = Ast.extra pa.ast n.Ast.rhs in
      let body = Ast.extra pa.ast (n.Ast.rhs + 1) in
      let cond = uexpr pa n.Ast.lhs in
      let ubody = ustmt_list pa body in
      let ucont = if cont <> 0 then ustmt_list pa cont else [] in
      one (SWhile (cond, ubody, ucont))
  | Ast.If ->
      let then_ = Ast.extra pa.ast n.Ast.rhs in
      let else_ = Ast.extra pa.ast (n.Ast.rhs + 1) in
      let cond = uexpr pa n.Ast.lhs in
      let uthen = ustmt_list pa then_ in
      let uelse = if else_ <> 0 then ustmt_list pa else_ else [] in
      one (SIf (cond, uthen, uelse))
  | Ast.Break -> one SBreak
  | Ast.Continue -> one SContinue
  | Ast.Expr_stmt ->
      let e = uexpr pa n.Ast.lhs in
      (* the closure tier constant-folds pure literal statements away *)
      (match e with
       | UConstI _ | UConstF _ | UConstB _ -> []
       | e -> one (SExpr e))
  | _ -> bail ()

(* [cont] is exactly [<iv> += <literal step>] — the shape the
   preprocessor generates.  That one statement fuses into the back
   edge; any other cont lowers through [ustmt_list] (which bails on
   counter writes like every other body statement). *)
let cont_is_iv_step pa cont step =
  let n = Ast.node pa.ast cont in
  n.Ast.tag = Ast.Assign
  && (Ast.token pa.ast n.Ast.main_token).Token.tag = Token.Plus_eq
  && (let tgt = Ast.node pa.ast n.Ast.lhs in
      tgt.Ast.tag = Ast.Ident
      &&
      let name = Ast.token_text pa.ast tgt.Ast.main_token in
      (match lookup_scopes pa.scopes name with
       | Some _ -> false
       | None ->
           (match pa.resolve name with
            | Rslot s -> s = pa.pivslot
            | _ -> false)))
  && (match int_lit_of pa n.Ast.rhs with Some s -> s = step | None -> false)

(** Phase A.  [cont] and [body] are the AST statement nodes of the
    recognised drain; [step2] its step expression node.  Returns [None]
    — closure tier — rather than raising. *)
let plan ~(opts : opts) ~(ast : Ast.t) ~(resolve : string -> rres)
    ~(label : string) ~(ivslot : int) ~(step2 : int) ~(cont : int)
    ~(body : int) ~(on_spec : Bc.program -> unit) () : plan option =
  let pa =
    { ast; resolve; pivslot = ivslot; scopes = [ [] ]; nlocals = 0;
      lnames_rev = []; cap_tbl = Hashtbl.create 8; caps_rev = []; ncaps = 0;
      written = Hashtbl.create 4; base_tbl = Hashtbl.create 4;
      bases_rev = []; nbases = 0; deref_tbl = Hashtbl.create 4;
      derefs_rev = []; nderefs = 0; ptid = false; pntd = false }
  in
  match
    let step =
      match int_lit_of pa step2 with Some s when s <> 0 -> s | _ -> bail ()
    in
    let ubody = ustmt_list pa body in
    let fuse_cont = cont_is_iv_step pa cont step in
    let ucont = if fuse_cont then [] else ustmt_list pa cont in
    (* a continue escaping the drain's own cont statement would unwind
       past the drain in the closure tier — not expressible here *)
    let rec esc_continue stmts =
      List.exists
        (fun s ->
          match s.sk with
          | SContinue -> true
          | SIf (_, a, b) -> esc_continue a || esc_continue b
          | SWhile (_, _, c) -> esc_continue c
          | _ -> false)
        stmts
    in
    if esc_continue ucont then bail ();
    let caps = Array.of_list (List.rev pa.caps_rev) in
    let cap_written =
      Array.init (Array.length caps) (fun i -> Hashtbl.mem pa.written i)
    in
    (* an array base or hoisted pointer whose own slot the body writes
       would invalidate the entry-time binding *)
    Array.iteri
      (fun c (slot, _) ->
        if cap_written.(c) then
          if Hashtbl.mem pa.base_tbl (slot, false)
             || Hashtbl.mem pa.base_tbl (slot, true)
             || Hashtbl.mem pa.deref_tbl slot
          then bail ())
      caps;
    Some
      { opts; label; line = line_of_node pa body; ivslot; step; ubody;
        ucont; fuse_cont; caps; cap_written;
        ubases = Array.of_list (List.rev pa.bases_rev);
        uderefs = Array.of_list (List.rev pa.derefs_rev);
        uses_tid = pa.ptid; uses_ntd = pa.pntd; nlocals = pa.nlocals;
        lnames = Array.of_list (List.rev pa.lnames_rev);
        cache = Atomic.make Cnone; on_spec }
  with
  | p -> p
  | exception Bail -> None

(* ------------------------------------------------------------------ *)
(* Phase B: specialisation to the observed shapes.                     *)

type kind = KI | KF | KB

(* Growable instruction buffer with a parallel source-line table. *)
type eb = {
  mutable cells : int array;
  mutable ncells : int;
  mutable lns : int array;
  mutable nlns : int;
}

let eb_make () =
  { cells = Array.make 192 0; ncells = 0; lns = Array.make 32 0; nlns = 0 }

let eb_pc (e : eb) = e.ncells

let eb_emit e line op a b c d x =
  if e.ncells + Bc.width > Array.length e.cells then begin
    let bigger = Array.make (2 * Array.length e.cells) 0 in
    Array.blit e.cells 0 bigger 0 e.ncells;
    e.cells <- bigger
  end;
  if e.nlns >= Array.length e.lns then begin
    let bigger = Array.make (2 * Array.length e.lns) 0 in
    Array.blit e.lns 0 bigger 0 e.nlns;
    e.lns <- bigger
  end;
  let p = e.ncells in
  e.cells.(p) <- op;
  e.cells.(p + 1) <- a;
  e.cells.(p + 2) <- b;
  e.cells.(p + 3) <- c;
  e.cells.(p + 4) <- d;
  e.cells.(p + 5) <- x;
  e.ncells <- p + Bc.width;
  e.lns.(e.nlns) <- line;
  e.nlns <- e.nlns + 1;
  p

let eb_patch (e : eb) cell target = e.cells.(cell) <- target
let eb_finish (e : eb) =
  (Array.sub e.cells 0 e.ncells, Array.sub e.lns 0 e.nlns)

(* Register assignment, shared by both emitted variants. *)
type regs = {
  cap_reg : (kind * int) array;
  loc_reg : (kind * int) array;
  der_reg : (kind * int) array;
  bmap : ([ `F | `I ] * int) array;   (* phase-A base -> (bank, index) *)
  rtid : int;
  rntd : int;
  ti_base : int;                      (* first int temp register *)
  tf_base : int;
}

let iv_reg = 0
let upper_reg = 1

(* The subscript shapes the elision proof covers: [iv + c] with
   coefficient one — exactly the [Saffine] shape the analyser's
   dataflow pass tracks into {!Omp_model.Subscript}. *)
let affine_off = function
  | UIv -> Some 0
  | UBin (Badd, UIv, UConstI k) | UBin (Badd, UConstI k, UIv) -> Some k
  | UBin (Bsub, UIv, UConstI k) -> Some (-k)
  | _ -> None

let flip_cc = function
  | c when c = Bc.cc_lt -> Bc.cc_ge
  | c when c = Bc.cc_le -> Bc.cc_gt
  | c when c = Bc.cc_gt -> Bc.cc_le
  | c when c = Bc.cc_ge -> Bc.cc_lt
  | c when c = Bc.cc_eq -> Bc.cc_ne
  | _ -> Bc.cc_eq

let cc_of = function
  | Clt -> Bc.cc_lt | Cle -> Bc.cc_le | Cgt -> Bc.cc_gt
  | Cge -> Bc.cc_ge | Ceq -> Bc.cc_eq | Cne -> Bc.cc_ne

(** Specialise [p] to the observed shapes: [ckinds] per captured slot,
    [bbanks] per indexed base, [dkinds] per hoisted dereference.
    [None] means the shapes fall outside the tier — the caller runs the
    closure path (and remembers the failure). *)
let specialize (p : plan) ~(ckinds : [ `I | `F | `B ] array)
    ~(bbanks : [ `F | `I ] array) ~(dkinds : [ `I | `F ] array) :
    Bc.program option =
  match
    (* ---- typing: one shape per storage location, else bail ---- *)
    let lkinds = Array.make p.nlocals None in
    let kind_of_cap c =
      match ckinds.(c) with `I -> KI | `F -> KF | `B -> KB
    in
    let kind_of_deref d = match dkinds.(d) with `I -> KI | `F -> KF in
    let rec kind_of e : kind =
      match e with
      | UConstI _ -> KI
      | UConstF _ -> KF
      | UConstB _ -> KB
      | ULocal l -> (match lkinds.(l) with Some k -> k | None -> bail ())
      | UCap c -> kind_of_cap c
      | UIv | UTid | UNtd -> KI
      | UDeref d -> kind_of_deref d
      | UBin (Bdiva, a, b) ->
          (* Rt.div_assign: always float, both operands numeric *)
          (match (kind_of a, kind_of b) with
           | (KI | KF), (KI | KF) -> KF
           | _ -> bail ())
      | UBin (_, a, b) ->
          (match (kind_of a, kind_of b) with
           | KI, KI -> KI
           | (KI | KF), (KI | KF) -> KF
           | _ -> bail ())
      | UCmp (_, a, b) ->
          (match (kind_of a, kind_of b) with
           | KI, KI | KB, KB -> KB
           | (KI | KF), (KI | KF) -> KB
           | _ -> bail ())
      | UAnd (a, b) | UOr (a, b) ->
          if kind_of a <> KB || kind_of b <> KB then bail ();
          KB
      | UNeg a ->
          (match kind_of a with KI -> KI | KF -> KF | KB -> bail ())
      | UNot a -> if kind_of a <> KB then bail () else KB
      | ULoad (b, idx) ->
          if kind_of idx <> KI then bail ();
          (match bbanks.(b) with `F -> KF | `I -> KI)
      | UMath (_, a) ->
          (match kind_of a with KI | KF -> KF | KB -> bail ())
      | UIntOf a ->
          (match kind_of a with KI | KF -> KI | KB -> bail ())
      | UFloatOf a ->
          (match kind_of a with KI | KF -> KF | KB -> bail ())
      | ULen _ -> KI
    in
    let rec ty_stmt s =
      match s.sk with
      | SAssignL (l, e) ->
          let k = kind_of e in
          (match lkinds.(l) with
           | None -> lkinds.(l) <- Some k
           | Some k' -> if k <> k' then bail ())
      | SAssignC (c, e) -> if kind_of e <> kind_of_cap c then bail ()
      | SStore (b, idx, v) ->
          if kind_of idx <> KI then bail ();
          ignore (bbanks.(b));
          (match kind_of v with KI | KF -> () | KB -> bail ())
      | SOpStore (_, b, idx, v) ->
          if kind_of idx <> KI then bail ();
          ignore (bbanks.(b));
          (match kind_of v with KI | KF -> () | KB -> bail ())
      | SIf (c, a, b) ->
          if kind_of c <> KB then bail ();
          List.iter ty_stmt a;
          List.iter ty_stmt b
      | SWhile (c, body, cont) ->
          if kind_of c <> KB then bail ();
          List.iter ty_stmt body;
          List.iter ty_stmt cont
      | SExpr e -> ignore (kind_of e)
      | SBreak | SContinue -> ()
    in
    List.iter ty_stmt p.ubody;
    List.iter ty_stmt p.ucont;
    (* ---- register assignment ---- *)
    let ni = ref 2 and nf = ref 0 in
    let alloc_i () = let r = !ni in incr ni; r in
    let alloc_f () = let r = !nf in incr nf; r in
    let rtid = if p.uses_tid then alloc_i () else -1 in
    let rntd = if p.uses_ntd then alloc_i () else -1 in
    let cap_reg =
      Array.init (Array.length p.caps) (fun c ->
          match kind_of_cap c with
          | KF -> (KF, alloc_f ())
          | k -> (k, alloc_i ()))
    in
    let der_reg =
      Array.init (Array.length p.uderefs) (fun d ->
          match kind_of_deref d with
          | KF -> (KF, alloc_f ())
          | k -> (k, alloc_i ()))
    in
    let loc_reg =
      Array.init p.nlocals (fun l ->
          match lkinds.(l) with
          | Some KF -> (KF, alloc_f ())
          | Some k -> (k, alloc_i ())
          | None ->
              (* declared but never read nor typed: still needs a home *)
              (KI, alloc_i ()))
    in
    let nfb = ref 0 and nib = ref 0 in
    let bmap =
      Array.map
        (function
          | `F -> let k = !nfb in incr nfb; (`F, k)
          | `I -> let k = !nib in incr nib; (`I, k))
        bbanks
    in
    let regs =
      { cap_reg; loc_reg; der_reg; bmap; rtid; rntd; ti_base = !ni;
        tf_base = !nf }
    in
    (* ---- float constant pool, shared by both variants ---- *)
    let fpool_rev = ref [] and nfpool = ref 0 in
    let fpool_tbl : (int64, int) Hashtbl.t = Hashtbl.create 8 in
    let fpool_idx x =
      let bits = Int64.bits_of_float x in
      match Hashtbl.find_opt fpool_tbl bits with
      | Some k -> k
      | None ->
          let k = !nfpool in
          incr nfpool;
          Hashtbl.add fpool_tbl bits k;
          fpool_rev := x :: !fpool_rev;
          k
    in
    (* ---- emission of one variant ---- *)
    let mti = ref 0 and mtf = ref 0 in
    let emit_variant ~elide =
      let eb = eb_make () in
      let nti = ref 0 and ntf = ref 0 in
      let chk_tbl : ([ `F | `I ] * int, int ref * int ref) Hashtbl.t =
        Hashtbl.create 4
      in
      let record_check bank karr off =
        match Hashtbl.find_opt chk_tbl (bank, karr) with
        | Some (lo, hi) ->
            if off < !lo then lo := off;
            if off > !hi then hi := off
        | None -> Hashtbl.add chk_tbl (bank, karr) (ref off, ref off)
      in
      let save () = (!nti, !ntf) in
      let restore (a, b) = nti := a; ntf := b in
      let ti () =
        let r = regs.ti_base + !nti in
        incr nti;
        if !nti > !mti then mti := !nti;
        r
      in
      let tf () =
        let r = regs.tf_base + !ntf in
        incr ntf;
        if !ntf > !mtf then mtf := !ntf;
        r
      in
      (* value compilation; [ce_i] yields an int/bool register, [ce_f]
         a float register (coercing an int-kind operand via i2f, which
         is exactly [Value.to_float] on the shapes that reach here) *)
      let rec ce_i ln e : int =
        match e with
        | UConstI k -> let d = ti () in ignore (eb_emit eb ln Bc.op_ldc_i d k 0 0 0); d
        | UConstB b ->
            let d = ti () in
            ignore (eb_emit eb ln Bc.op_ldc_i d (if b then 1 else 0) 0 0 0);
            d
        | ULocal l -> snd regs.loc_reg.(l)
        | UCap c -> snd regs.cap_reg.(c)
        | UIv -> iv_reg
        | UTid -> regs.rtid
        | UNtd -> regs.rntd
        | UDeref d -> snd regs.der_reg.(d)
        | UBin (op, a, b) ->
            (* int kind: both operands int by typing *)
            let sv = save () in
            let ra = ce_i ln a in
            let rb = ce_i ln b in
            restore sv;
            let d = ti () in
            let o =
              match op with
              | Badd -> Bc.op_add_i
              | Bsub -> Bc.op_sub_i
              | Bmul -> Bc.op_mul_i
              | Bdiv -> Bc.op_div_i
              | Bmod -> Bc.op_mod_i
              | Bdiva -> assert false
            in
            ignore (eb_emit eb ln o d ra rb 0 0);
            d
        | UCmp (c, a, b) ->
            let ka = kind_of a and kb = kind_of b in
            let sv = save () in
            if ka = KF || kb = KF then begin
              let ra = ce_f ln a in
              let rb = ce_f ln b in
              restore sv;
              let d = ti () in
              ignore (eb_emit eb ln Bc.op_cmp_ff (cc_of c) d ra rb 0);
              d
            end
            else begin
              let ra = ce_i ln a in
              let rb = ce_i ln b in
              restore sv;
              let d = ti () in
              ignore (eb_emit eb ln Bc.op_cmp_ii (cc_of c) d ra rb 0);
              d
            end
        | UAnd (a, b) ->
            let d = ti () in
            let fl = ref [] in
            branch_if_false ln a fl;
            let sv = save () in
            let rb = ce_i ln b in
            restore sv;
            if rb <> d then ignore (eb_emit eb ln Bc.op_mov_i d rb 0 0 0);
            let pc = eb_emit eb ln Bc.op_jmp 0 0 0 0 0 in
            let here = eb_pc eb in
            List.iter (fun cell -> eb_patch eb cell here) !fl;
            ignore (eb_emit eb ln Bc.op_ldc_i d 0 0 0 0);
            eb_patch eb (pc + 1) (eb_pc eb);
            d
        | UOr (a, b) ->
            let d = ti () in
            let tl = ref [] in
            branch_if_true ln a tl;
            let sv = save () in
            let rb = ce_i ln b in
            restore sv;
            if rb <> d then ignore (eb_emit eb ln Bc.op_mov_i d rb 0 0 0);
            let pc = eb_emit eb ln Bc.op_jmp 0 0 0 0 0 in
            let here = eb_pc eb in
            List.iter (fun cell -> eb_patch eb cell here) !tl;
            ignore (eb_emit eb ln Bc.op_ldc_i d 1 0 0 0);
            eb_patch eb (pc + 1) (eb_pc eb);
            d
        | UNeg a ->
            let sv = save () in
            let ra = ce_i ln a in
            restore sv;
            let d = ti () in
            ignore (eb_emit eb ln Bc.op_neg_i d ra 0 0 0);
            d
        | UNot a ->
            let sv = save () in
            let ra = ce_i ln a in
            restore sv;
            let d = ti () in
            ignore (eb_emit eb ln Bc.op_not_b d ra 0 0 0);
            d
        | ULoad (b, idx) -> load ln b idx
        | UIntOf a ->
            (match kind_of a with
             | KI -> ce_i ln a
             | _ ->
                 let sv = save () in
                 let ra = ce_f ln a in
                 restore sv;
                 let d = ti () in
                 ignore (eb_emit eb ln Bc.op_f2i d ra 0 0 0);
                 d)
        | ULen b ->
            let bank, bi = regs.bmap.(b) in
            let d = ti () in
            let o = match bank with `F -> Bc.op_len_f | `I -> Bc.op_len_i in
            ignore (eb_emit eb ln o d bi 0 0 0);
            d
        | UConstF _ | UMath _ | UFloatOf _ -> assert false
      and ce_f ln e : int =
        if kind_of e <> KF then begin
          (* int-kind value in float position: exactly [Value.to_float] *)
          let sv = save () in
          let ra = ce_i ln e in
          restore sv;
          let d = tf () in
          ignore (eb_emit eb ln Bc.op_i2f d ra 0 0 0);
          d
        end
        else
        match e with
        | UConstF x ->
            let d = tf () in
            ignore (eb_emit eb ln Bc.op_ldc_f d (fpool_idx x) 0 0 0);
            d
        | ULocal l -> snd regs.loc_reg.(l)
        | UCap c -> snd regs.cap_reg.(c)
        | UDeref d -> snd regs.der_reg.(d)
        (* constant * elidable load fuses; float multiply commutes
           bit-exactly, and the constant cannot trap, so either operand
           order folds to the same instruction *)
        | UBin (Bmul, UConstF c, (ULoad (b, sub) as l))
        | UBin (Bmul, (ULoad (b, sub) as l), UConstF c)
          when elide && fst regs.bmap.(b) = `F && affine_off sub <> None ->
            ignore l;
            let off = match affine_off sub with Some o -> o | None -> 0 in
            let _, bi = regs.bmap.(b) in
            record_check `F bi off;
            let d = tf () in
            ignore
              (eb_emit eb ln Bc.op_mulc_ld_fu d bi iv_reg (fpool_idx c) off);
            d
        | UBin (op, a, b) ->
            let sv = save () in
            let ra = ce_f ln a in
            let rb = ce_f ln b in
            restore sv;
            let d = tf () in
            let o =
              match op with
              | Badd -> Bc.op_add_f
              | Bsub -> Bc.op_sub_f
              | Bmul -> Bc.op_mul_f
              | Bdiv | Bdiva -> Bc.op_div_f
              | Bmod -> Bc.op_mod_f
            in
            ignore (eb_emit eb ln o d ra rb 0 0);
            d
        | UNeg a ->
            let sv = save () in
            let ra = ce_f ln a in
            restore sv;
            let d = tf () in
            ignore (eb_emit eb ln Bc.op_neg_f d ra 0 0 0);
            d
        | UMath (m, a) ->
            let sv = save () in
            let ra = ce_f ln a in
            restore sv;
            let d = tf () in
            let o =
              match m with
              | Msqrt -> Bc.op_sqrt
              | Mlog -> Bc.op_log
              | Mexp -> Bc.op_exp
              | Mfabs -> Bc.op_fabs
              | Mfloor -> Bc.op_floor
            in
            ignore (eb_emit eb ln o d ra 0 0 0);
            d
        | ULoad (b, idx) -> load ln b idx
        | UFloatOf a ->
            (match kind_of a with
             | KF -> ce_f ln a
             | _ ->
                 let sv = save () in
                 let ra = ce_i ln a in
                 restore sv;
                 let d = tf () in
                 ignore (eb_emit eb ln Bc.op_i2f d ra 0 0 0);
                 d)
        | UIv | UTid | UNtd | UConstI _ | UConstB _ | UCmp _ | UAnd _
        | UOr _ | UNot _ | UIntOf _ | ULen _ ->
            assert false (* int kind; intercepted above *)
      (* array load, either bank; elided when the subscript is the
         analyser's affine shape and this is the elided variant *)
      and load ln b idx : int =
        let bank, bi = regs.bmap.(b) in
        let opg, opu, dst =
          match bank with
          | `F -> (Bc.op_ld_f, Bc.op_ld_fu, `F)
          | `I -> (Bc.op_ld_i, Bc.op_ld_iu, `I)
        in
        let alloc_dst () = match dst with `F -> tf () | `I -> ti () in
        match affine_off idx with
        | Some off when elide ->
            record_check bank bi off;
            let d = alloc_dst () in
            ignore (eb_emit eb ln opu d bi iv_reg off 0);
            d
        | Some off ->
            let d = alloc_dst () in
            ignore (eb_emit eb ln opg d bi iv_reg off 0);
            d
        | None ->
            let sv = save () in
            let r = ce_i ln idx in
            restore sv;
            let d = alloc_dst () in
            ignore (eb_emit eb ln opg d bi r 0 0);
            d
      (* conditional branches; cmp conditions fuse into cmpbr (which
         branches when the condition does NOT hold), and/or short-
         circuit exactly like the closure tier *)
      and branch_if_false ln e (cells : int list ref) =
        match e with
        | UCmp (c, a, b) ->
            let ka = kind_of a and kb = kind_of b in
            let sv = save () in
            if ka = KF || kb = KF then begin
              let ra = ce_f ln a in
              let rb = ce_f ln b in
              restore sv;
              let pc = eb_emit eb ln Bc.op_cmpbr_ff (cc_of c) ra rb 0 0 in
              cells := (pc + 4) :: !cells
            end
            else begin
              let ra = ce_i ln a in
              let rb = ce_i ln b in
              restore sv;
              let pc = eb_emit eb ln Bc.op_cmpbr_ii (cc_of c) ra rb 0 0 in
              cells := (pc + 4) :: !cells
            end
        | UNot a -> branch_if_true ln a cells
        | UAnd (a, b) ->
            branch_if_false ln a cells;
            branch_if_false ln b cells
        | UOr (a, b) ->
            let tl = ref [] in
            branch_if_true ln a tl;
            branch_if_false ln b cells;
            let here = eb_pc eb in
            List.iter (fun cell -> eb_patch eb cell here) !tl
        | e ->
            let sv = save () in
            let r = ce_i ln e in
            restore sv;
            let pc = eb_emit eb ln Bc.op_brz r 0 0 0 0 in
            cells := (pc + 2) :: !cells
      and branch_if_true ln e (cells : int list ref) =
        match e with
        | UCmp (c, a, b) ->
            let ka = kind_of a and kb = kind_of b in
            let sv = save () in
            if ka = KF || kb = KF then begin
              let ra = ce_f ln a in
              let rb = ce_f ln b in
              restore sv;
              let pc =
                eb_emit eb ln Bc.op_cmpbr_ff (flip_cc (cc_of c)) ra rb 0 0
              in
              cells := (pc + 4) :: !cells
            end
            else begin
              let ra = ce_i ln a in
              let rb = ce_i ln b in
              restore sv;
              let pc =
                eb_emit eb ln Bc.op_cmpbr_ii (flip_cc (cc_of c)) ra rb 0 0
              in
              cells := (pc + 4) :: !cells
            end
        | UNot a -> branch_if_false ln a cells
        | UAnd (a, b) ->
            let fl = ref [] in
            branch_if_false ln a fl;
            branch_if_true ln b cells;
            let here = eb_pc eb in
            List.iter (fun cell -> eb_patch eb cell here) !fl
        | UOr (a, b) ->
            branch_if_true ln a cells;
            branch_if_true ln b cells
        | e ->
            let sv = save () in
            let r = ce_i ln e in
            let t = ti () in
            restore sv;
            ignore (eb_emit eb ln Bc.op_not_b t r 0 0 0);
            let pc = eb_emit eb ln Bc.op_brz t 0 0 0 0 in
            cells := (pc + 2) :: !cells
      in
      (* scalar assignment into a named register *)
      let emit_assign ln (k, reg) e =
        let sv = save () in
        (match k with
         | KF ->
             let r = ce_f ln e in
             if r <> reg then ignore (eb_emit eb ln Bc.op_mov_f reg r 0 0 0)
         | KI | KB ->
             let r = ce_i ln e in
             if r <> reg then ignore (eb_emit eb ln Bc.op_mov_i reg r 0 0 0));
        restore sv
      in
      (* [target += a[...]] and [target += a[...] * b[...]] fusions.
         The accmul forms carry no trap risk reordering only when both
         subscripts cannot fault, so they are restricted to plain
         register subscripts. *)
      let simple_idx sub =
        match sub with
        | UIv -> Some (iv_reg, true)
        | ULocal l when (match lkinds.(l) with Some KI -> true | _ -> false)
          ->
            Some (snd regs.loc_reg.(l), false)
        | UCap c when ckinds.(c) = `I -> Some (snd regs.cap_reg.(c), false)
        | UDeref d when dkinds.(d) = `I ->
            Some (snd regs.der_reg.(d), false)
        | _ -> None
      in
      let try_acc_fuse ln (tk, treg) target_read e =
        if tk <> KF then false
        else
          match e with
          | UBin (Badd, tr, rhs) when tr = target_read -> (
              match rhs with
              | ULoad (b, sub)
                when elide
                     && fst regs.bmap.(b) = `F
                     && affine_off sub <> None ->
                  let off =
                    match affine_off sub with Some o -> o | None -> 0
                  in
                  let _, bi = regs.bmap.(b) in
                  record_check `F bi off;
                  ignore (eb_emit eb ln Bc.op_acc_ld_fu treg bi iv_reg off 0);
                  true
              | UBin (Bmul, ULoad (b1, s1), ULoad (b2, s2))
                when fst regs.bmap.(b1) = `F && fst regs.bmap.(b2) = `F -> (
                  match (simple_idx s1, simple_idx s2) with
                  | Some (i1, a1), Some (i2, a2) ->
                      let _, k1 = regs.bmap.(b1)
                      and _, k2 = regs.bmap.(b2) in
                      let both_affine0 =
                        a1 && a2
                        && affine_off s1 = Some 0
                        && affine_off s2 = Some 0
                      in
                      if elide && both_affine0 then begin
                        record_check `F k1 0;
                        record_check `F k2 0;
                        ignore
                          (eb_emit eb ln Bc.op_accmul_ld_ld_fu treg k1 i1 k2
                             i2);
                        true
                      end
                      else begin
                        ignore
                          (eb_emit eb ln Bc.op_accmul_ld_ld_f treg k1 i1 k2
                             i2);
                        true
                      end
                  | _ -> false)
              | _ -> false)
          | _ -> false
      in
      (* The collapse(n) counter-recovery statement the preprocessor
         emits — [c_k = lb_k + ((iv / d_k) % n_k) * step_k] — fuses
         into one [recover] dispatch per nest level.  All scalars are
         register-resident ints and the step a literal, so the only
         trap risks are the division and modulo, which the opcode
         checks in the same order with the same messages. *)
      let try_recover_fuse ln (tk, treg) e =
        if tk <> KI then false
        else
          match e with
          | UBin
              (Badd, lbe,
               UBin (Bmul, UBin (Bmod, UBin (Bdiv, UIv, de), ne), se)) -> (
              let step =
                match se with
                | UConstI s -> Some s
                | UNeg (UConstI s) -> Some (-s)
                | _ -> None
              in
              match (step, simple_idx lbe, simple_idx de, simple_idx ne) with
              | Some s, Some (rlb, _), Some (rd, _), Some (rn, _) ->
                  ignore (eb_emit eb ln Bc.op_recover treg rlb rd rn s);
                  true
              | _ -> false)
          | _ -> false
      in
      (* statements *)
      let rec cs ~brk ~cnt s =
        let ln = s.sline in
        match s.sk with
        | SAssignL (l, e) ->
            if
              not (try_acc_fuse ln regs.loc_reg.(l) (ULocal l) e)
              && not (try_recover_fuse ln regs.loc_reg.(l) e)
            then emit_assign ln regs.loc_reg.(l) e
        | SAssignC (c, e) ->
            if
              not (try_acc_fuse ln regs.cap_reg.(c) (UCap c) e)
              && not (try_recover_fuse ln regs.cap_reg.(c) e)
            then emit_assign ln regs.cap_reg.(c) e
        | SStore (b, idx, v) ->
            let bank, bi = regs.bmap.(b) in
            let sv = save () in
            let ir, off, proven =
              match affine_off idx with
              | Some off -> (iv_reg, off, elide)
              | None -> (ce_i ln idx, 0, false)
            in
            if proven then record_check bank bi off
            else begin
              let oc =
                match bank with `F -> Bc.op_chk_f | `I -> Bc.op_chk_i
              in
              ignore (eb_emit eb ln oc bi ir off 0 0)
            end;
            (* the closure tier bounds-checks before evaluating the rhs *)
            let rv =
              match bank with
              | `F -> ce_f ln v
              | `I -> (
                  match kind_of v with
                  | KI -> ce_i ln v
                  | _ ->
                      (* V.to_int truncates a float store *)
                      let rf = ce_f ln v in
                      let d = ti () in
                      ignore (eb_emit eb ln Bc.op_f2i d rf 0 0 0);
                      d)
            in
            let os = match bank with `F -> Bc.op_st_f | `I -> Bc.op_st_i in
            ignore (eb_emit eb ln os bi ir off rv 0);
            restore sv
        | SOpStore (op, b, idx, v) ->
            let bank, bi = regs.bmap.(b) in
            let sv = save () in
            let ir, off, proven =
              match affine_off idx with
              | Some off -> (iv_reg, off, elide)
              | None -> (ce_i ln idx, 0, false)
            in
            if proven then record_check bank bi off;
            (* [a[i] += v] with matching kinds fuses once proven *)
            let fused =
              proven && op = Badd
              &&
              match (bank, kind_of v) with
              | `I, KI ->
                  let rv = ce_i ln v in
                  ignore (eb_emit eb ln Bc.op_ldst_add_iu bi ir off rv 0);
                  true
              | `F, _ ->
                  let rv = ce_f ln v in
                  ignore (eb_emit eb ln Bc.op_ldst_add_fu bi ir off rv 0);
                  true
              | _ -> false
            in
            if not fused then begin
              if not proven then begin
                let oc =
                  match bank with `F -> Bc.op_chk_f | `I -> Bc.op_chk_i
                in
                ignore (eb_emit eb ln oc bi ir off 0 0)
              end;
              (* closure order: bounds check, rhs, load, combine, store *)
              let kv = kind_of v in
              match bank with
              | `F ->
                  let rv = ce_f ln v in
                  let cur = tf () in
                  let ol =
                    if proven then Bc.op_ld_fu else Bc.op_ld_f
                  in
                  ignore (eb_emit eb ln ol cur bi ir off 0);
                  let o =
                    match op with
                    | Badd -> Bc.op_add_f
                    | Bsub -> Bc.op_sub_f
                    | Bmul -> Bc.op_mul_f
                    | Bdiva -> Bc.op_div_f
                    | Bdiv | Bmod -> assert false
                  in
                  let d = tf () in
                  ignore (eb_emit eb ln o d cur rv 0 0);
                  ignore (eb_emit eb ln Bc.op_st_f bi ir off d 0)
              | `I ->
                  if kv = KI && op <> Bdiva then begin
                    let rv = ce_i ln v in
                    let cur = ti () in
                    let ol =
                      if proven then Bc.op_ld_iu else Bc.op_ld_i
                    in
                    ignore (eb_emit eb ln ol cur bi ir off 0);
                    let o =
                      match op with
                      | Badd -> Bc.op_add_i
                      | Bsub -> Bc.op_sub_i
                      | Bmul -> Bc.op_mul_i
                      | Bdiv | Bmod | Bdiva -> assert false
                    in
                    let d = ti () in
                    ignore (eb_emit eb ln o d cur rv 0 0);
                    ignore (eb_emit eb ln Bc.op_st_i bi ir off d 0)
                  end
                  else begin
                    (* float combine on an int array: V.to_int truncates
                       the result back, matching Rt + the store coercion *)
                    let rv = ce_f ln v in
                    let curi = ti () in
                    let ol =
                      if proven then Bc.op_ld_iu else Bc.op_ld_i
                    in
                    ignore (eb_emit eb ln ol curi bi ir off 0);
                    let cur = tf () in
                    ignore (eb_emit eb ln Bc.op_i2f cur curi 0 0 0);
                    let o =
                      match op with
                      | Badd -> Bc.op_add_f
                      | Bsub -> Bc.op_sub_f
                      | Bmul -> Bc.op_mul_f
                      | Bdiva -> Bc.op_div_f
                      | Bdiv | Bmod -> assert false
                    in
                    let d = tf () in
                    ignore (eb_emit eb ln o d cur rv 0 0);
                    let di = ti () in
                    ignore (eb_emit eb ln Bc.op_f2i di d 0 0 0);
                    ignore (eb_emit eb ln Bc.op_st_i bi ir off di 0)
                  end
            end;
            restore sv
        | SIf (c, a, b) ->
            let el = ref [] in
            branch_if_false ln c el;
            List.iter (cs ~brk ~cnt) a;
            if b = [] then begin
              let here = eb_pc eb in
              List.iter (fun cell -> eb_patch eb cell here) !el
            end
            else begin
              let pc = eb_emit eb ln Bc.op_jmp 0 0 0 0 0 in
              let here = eb_pc eb in
              List.iter (fun cell -> eb_patch eb cell here) !el;
              List.iter (cs ~brk ~cnt) b;
              eb_patch eb (pc + 1) (eb_pc eb)
            end
        | SWhile (c, body, cont) ->
            let top = eb_pc eb in
            let xl = ref [] in
            branch_if_false ln c xl;
            let brk' = ref [] and cnt' = ref [] in
            List.iter (cs ~brk:brk' ~cnt:cnt') body;
            let cont_l = eb_pc eb in
            List.iter (fun cell -> eb_patch eb cell cont_l) !cnt';
            (* cont statements: a break there exits THIS loop (the
               closure's Break handler wraps the whole while, cont
               included); a continue propagates to the enclosing loop *)
            List.iter (cs ~brk:brk' ~cnt) cont;
            ignore (eb_emit eb ln Bc.op_jmp top 0 0 0 0);
            let here = eb_pc eb in
            List.iter (fun cell -> eb_patch eb cell here) !xl;
            List.iter (fun cell -> eb_patch eb cell here) !brk'
        | SExpr e ->
            let sv = save () in
            (match kind_of e with
             | KF -> ignore (ce_f ln e)
             | KI | KB -> ignore (ce_i ln e));
            restore sv
        | SBreak -> (
            let pc = eb_emit eb ln Bc.op_jmp 0 0 0 0 0 in
            brk := (pc + 1) :: !brk)
        | SContinue -> (
            let pc = eb_emit eb ln Bc.op_jmp 0 0 0 0 0 in
            cnt := (pc + 1) :: !cnt)
      in
      (* drain skeleton: entry bounds test, body, back edge, halt *)
      let ln = p.line in
      let entry_cc = if p.step > 0 then Bc.cc_le else Bc.cc_ge in
      let entry =
        eb_emit eb ln Bc.op_cmpbr_ii entry_cc iv_reg upper_reg 0 0
      in
      let body_start = eb_pc eb in
      let brk = ref [] and cnt = ref [] in
      List.iter (cs ~brk ~cnt) p.ubody;
      let cont_l = eb_pc eb in
      List.iter (fun cell -> eb_patch eb cell cont_l) !cnt;
      if p.fuse_cont then begin
        let o =
          if p.step > 0 then Bc.op_addcmple_br else Bc.op_addcmpge_br
        in
        ignore (eb_emit eb ln o iv_reg p.step upper_reg body_start 0)
      end
      else begin
        List.iter (cs ~brk ~cnt:(ref [])) p.ucont;
        let back_cc = if p.step > 0 then Bc.cc_gt else Bc.cc_lt in
        ignore
          (eb_emit eb ln Bc.op_cmpbr_ii back_cc iv_reg upper_reg body_start
             0)
      end;
      let exit_pc = eb_pc eb in
      eb_patch eb (entry + 4) exit_pc;
      List.iter (fun cell -> eb_patch eb cell exit_pc) !brk;
      ignore (eb_emit eb ln Bc.op_halt 0 0 0 0 0);
      let code, lines = eb_finish eb in
      let checks =
        Hashtbl.fold
          (fun (bank, karr) (lo, hi) acc ->
            { Bc.kbank = bank; karr; c_min = !lo; c_max = !hi } :: acc)
          chk_tbl []
        |> List.sort (fun a b ->
               compare
                 ((match a.Bc.kbank with `F -> 0 | `I -> 1), a.Bc.karr)
                 ((match b.Bc.kbank with `F -> 0 | `I -> 1), b.Bc.karr))
      in
      (code, lines, Array.of_list checks)
    in
    let gcode, glines, _ = emit_variant ~elide:false in
    let code, lines, checks =
      if p.opts.elide then
        let c, l, ck = emit_variant ~elide:true in
        if Array.length ck = 0 then (gcode, glines, [||]) else (c, l, ck)
      else (gcode, glines, [||])
    in
    let nints = regs.ti_base + !mti in
    let nfloats = regs.tf_base + !mtf in
    let ireg_names = Array.make nints "" in
    let freg_names = Array.make nfloats "" in
    ireg_names.(iv_reg) <- "iv";
    ireg_names.(upper_reg) <- "upper";
    if regs.rtid >= 0 then ireg_names.(regs.rtid) <- "tid";
    if regs.rntd >= 0 then ireg_names.(regs.rntd) <- "ntd";
    Array.iteri
      (fun c (k, r) ->
        let _, name = p.caps.(c) in
        match k with
        | KF -> freg_names.(r) <- name
        | KI | KB -> ireg_names.(r) <- name)
      regs.cap_reg;
    Array.iteri
      (fun d (k, r) ->
        let _, name = p.uderefs.(d) in
        match k with
        | KF -> freg_names.(r) <- "*" ^ name
        | KI | KB -> ireg_names.(r) <- "*" ^ name)
      regs.der_reg;
    Array.iteri
      (fun l (k, r) ->
        match k with
        | KF -> freg_names.(r) <- p.lnames.(l)
        | KI | KB -> ireg_names.(r) <- p.lnames.(l))
      regs.loc_reg;
    let fbases =
      Array.of_list
        (List.filteri (fun i _ -> fst regs.bmap.(i) = `F)
           (Array.to_list p.ubases)
        |> List.map (fun (slot, deref, name) ->
               { Bc.bslot = slot; deref; bname = name }))
    in
    let ibases =
      Array.of_list
        (List.filteri (fun i _ -> fst regs.bmap.(i) = `I)
           (Array.to_list p.ubases)
        |> List.map (fun (slot, deref, name) ->
               { Bc.bslot = slot; deref; bname = name }))
    in
    let caps =
      Array.mapi
        (fun c (slot, name) ->
          { Bc.slot; reg = snd regs.cap_reg.(c); ckind = ckinds.(c);
            written = p.cap_written.(c); cname = name })
        p.caps
    in
    let hoisted =
      Array.mapi
        (fun d (slot, _) -> (slot, dkinds.(d), snd regs.der_reg.(d)))
        p.uderefs
    in
    {
      Bc.code; gcode; fpool = Array.of_list (List.rev !fpool_rev); nints;
      nfloats; iv_reg; upper_reg; tid_reg = regs.rtid; ntd_reg = regs.rntd;
      caps; fbases; ibases; hoisted; checks; ivslot = p.ivslot;
      step = p.step; ireg_names; freg_names; lines; glines;
    }
  with
  | prog -> Some prog
  | exception Bail -> None

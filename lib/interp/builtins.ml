(** The [.omp.internal] builtin surface and the host-function registry,
    shared by both execution backends.

    Generated code targets these names ([__kmpc_*], [__omp_*]) plus a
    handful of host utilities; the tree walker resolves them through
    {!dispatch} on every call, while the staged compiler specialises the
    per-iteration-hot ones into direct thunks and falls back to
    {!dispatch} for the rest.  Either way the semantics — argument
    coercions, error messages, profile ticks — come from this single
    implementation.

    Host functions are the interoperability story: the paper's section
    IV integrates Zig with Fortran/C by declaring foreign procedures
    with C linkage; our analogue lets the host (OCaml) register
    functions that Zr code calls by name, exactly like an [extern fn]
    declaration.  Registration happens before execution, so the table is
    read-only while teams run. *)

module V = Value

let err = V.err

let host_fns : (string, V.t list -> V.t) Hashtbl.t = Hashtbl.create 16

let register_host name f = Hashtbl.replace host_fns name f

let unregister_host name = Hashtbl.remove host_fns name

(* ------------------------------------------------------------------ *)
(* Checker interception.

   The race checker ({!Check}) replaces the runtime behind the
   [.omp.internal] surface with a cooperative, vector-clocked one: it
   installs an interceptor that claims the synchronisation-bearing
   builtins (fork/join, barriers, worksharing, critical, single,
   atomics) and lets everything else — pure helpers, host functions —
   fall through to the shared implementation below by returning [None].
   With no interceptor installed (the production backends) the cost is
   one ref read per builtin call. *)

type interceptor = {
  on_builtin :
    call:(string -> V.t list -> V.t) -> string -> V.t list -> V.t option;
  on_omp : string -> V.t list -> V.t option;
}

let interceptor : interceptor option ref = ref None

(* ------------------------------------------------------------------ *)
(* The omp.* namespace (paper section III-C: the standard API with the
   omp_ prefix stripped).                                              *)

let omp_namespace_default meth args : V.t =
  match meth, args with
  | "get_thread_num", [] -> V.VInt (Omprt.Api.get_thread_num ())
  | "get_num_threads", [] -> V.VInt (Omprt.Api.get_num_threads ())
  | "get_max_threads", [] -> V.VInt (Omprt.Api.get_max_threads ())
  | "set_num_threads", [ v ] ->
      Omprt.Api.set_num_threads (V.to_int v);
      VUnit
  | "get_num_procs", [] -> V.VInt (Omprt.Api.get_num_procs ())
  | "in_parallel", [] -> V.VBool (Omprt.Api.in_parallel ())
  | "get_level", [] -> V.VInt (Omprt.Api.get_level ())
  | "get_active_level", [] -> V.VInt (Omprt.Api.get_active_level ())
  | "get_ancestor_thread_num", [ v ] ->
      V.VInt (Omprt.Api.get_ancestor_thread_num (V.to_int v))
  | "get_team_size", [ v ] ->
      V.VInt (Omprt.Api.get_team_size (V.to_int v))
  | "get_thread_limit", [] -> V.VInt (Omprt.Api.get_thread_limit ())
  | "get_max_active_levels", [] ->
      V.VInt (Omprt.Api.get_max_active_levels ())
  | "set_max_active_levels", [ v ] ->
      Omprt.Api.set_max_active_levels (V.to_int v);
      VUnit
  | "get_supported_active_levels", [] ->
      V.VInt (Omprt.Api.get_supported_active_levels ())
  | "get_dynamic", [] -> V.VBool (Omprt.Api.get_dynamic ())
  | "set_dynamic", [ v ] ->
      Omprt.Api.set_dynamic (V.to_bool v);
      VUnit
  | "get_wtime", [] -> V.VFloat (Omprt.Api.get_wtime ())
  | "get_wtick", [] -> V.VFloat (Omprt.Api.get_wtick ())
  | _ -> err "unknown omp.%s/%d" meth (List.length args)

let omp_namespace meth args : V.t =
  match !interceptor with
  | Some i ->
      (match i.on_omp meth args with
       | Some v -> v
       | None -> omp_namespace_default meth args)
  | None -> omp_namespace_default meth args

(* ------------------------------------------------------------------ *)
(* Builtins: the .omp.internal surface targeted by generated code, plus
   a few host utilities for writing programs.  [call] invokes a
   program-defined function by name — the backend supplies its own
   (tree-walked or compiled) implementation, which is how
   [__kmpc_fork_call] runs outlined functions on the right engine.     *)

let dispatch_default ~(call : string -> V.t list -> V.t) fname args : V.t =
  let fl = V.to_float and it = V.to_int in
  match fname, args with
  (* --- fork/join --- *)
  | "__kmpc_fork_call", [ V.VFun f; fp; sh; red; nt ] ->
      let num_threads =
        match it nt with 0 -> None | n -> Some n
      in
      Omprt.Kmpc.fork_call ?num_threads
        (fun () -> ignore (call f [ fp; sh; red ]))
        ();
      VUnit
  | "__kmpc_barrier", [] -> Omprt.Kmpc.barrier (); VUnit
  (* --- deferred tasks --- *)
  | "__kmpc_omp_task", [ V.VFun f; fp; sh ] ->
      Omprt.Kmpc.omp_task (fun () -> ignore (call f [ fp; sh ]));
      VUnit
  | "__kmpc_omp_taskwait", [] -> Omprt.Kmpc.omp_taskwait (); VUnit
  (* --- copyprivate broadcast --- *)
  | "__kmpc_copyprivate_put", [ v ] ->
      Omprt.Kmpc.copyprivate_put v; VUnit
  | "__kmpc_copyprivate_get", [] -> (Omprt.Kmpc.copyprivate_get () : V.t)
  (* --- static worksharing --- *)
  | "__kmpc_for_static_init", [ lb; ub; step; incl ] ->
      let lo = it lb and step = it step in
      let hi =
        if it incl = 1 then
          (if step > 0 then it ub + 1 else it ub - 1)
        else it ub
      in
      (match Omprt.Kmpc.for_static_init ~lo ~hi ~step () with
       | Some { lower; upper; _ } ->
           VStruct [ ("has", VBool true); ("lower", VInt lower);
                     ("upper", VInt upper) ]
       | None ->
           VStruct [ ("has", VBool false); ("lower", VInt 0);
                     ("upper", VInt 0) ])
  | "__kmpc_for_static_fini", [] -> Omprt.Kmpc.for_static_fini (); VUnit
  (* --- dispatcher protocol --- *)
  | "__kmpc_static_chunked_init", [ lb; ub; step; chunk; incl ] ->
      let lo = it lb and step = it step and chunk = it chunk in
      let hi =
        if it incl = 1 then (if step > 0 then it ub + 1 else it ub - 1)
        else it ub
      in
      let trips = Omprt.Ws.trip_count ~lo ~hi ~step () in
      let tid = Omprt.Api.get_thread_num () in
      let nth = Omprt.Api.get_num_threads () in
      let chunks =
        List.map
          (fun (b, e) -> (lo + (b * step), lo + ((e - 1) * step)))
          (Omprt.Ws.static_chunks ~tid ~nthreads:nth ~trips ~chunk)
      in
      VDispatch (Chunked (ref chunks))
  | "__kmpc_dispatch_init_dynamic", [ lb; ub; step; chunk; incl ]
  | "__kmpc_dispatch_init_guided", [ lb; ub; step; chunk; incl ]
  | "__kmpc_dispatch_init_runtime", [ lb; ub; step; chunk; incl ] ->
      let lo = it lb and step = it step and chunk = max 1 (it chunk) in
      let hi =
        if it incl = 1 then (if step > 0 then it ub + 1 else it ub - 1)
        else it ub
      in
      let sched =
        match fname with
        | "__kmpc_dispatch_init_dynamic" -> Omp_model.Sched.Dynamic chunk
        | "__kmpc_dispatch_init_guided" -> Omp_model.Sched.Guided chunk
        | _ -> Omp_model.Sched.Runtime
      in
      VDispatch (Shared (Omprt.Kmpc.dispatch_init ~sched ~lo ~hi ~step ()))
  | "__kmpc_dispatch_next", [ VDispatch h ] ->
      let result =
        match h with
        | Shared d -> Omprt.Kmpc.dispatch_next d
        | Chunked chunks ->
            (match !chunks with
             | [] -> None
             | c :: rest -> chunks := rest; Some c)
      in
      (match result with
       | Some (lower, upper) ->
           VStruct [ ("more", VBool true); ("lower", VInt lower);
                     ("upper", VInt upper) ]
       | None ->
           VStruct [ ("more", VBool false); ("lower", VInt 0);
                     ("upper", VInt 0) ])
  (* --- synchronisation --- *)
  | "__kmpc_critical", [ VStr name ] ->
      (* time the acquisition so --profile sees critical contention *)
      Omprt.Profile.timed Omprt.Profile.Critical_wait (fun () ->
          Mutex.lock (Omprt.Lock.critical_lock name));
      VUnit
  | "__kmpc_end_critical", [ VStr name ] ->
      Mutex.unlock (Omprt.Lock.critical_lock name); VUnit
  | "__kmpc_single", [] -> VBool (Omprt.Kmpc.single_begin ())
  | "__kmpc_end_single", [] -> Omprt.Kmpc.single_end (); VUnit
  | "__kmpc_atomic_begin", [] -> Omprt.Kmpc.atomic_begin (); VUnit
  | "__kmpc_atomic_end", [] -> Omprt.Kmpc.atomic_end (); VUnit
  | "__omp_get_thread_num", [] -> VInt (Omprt.Api.get_thread_num ())
  (* --- reduction cells (paper III-B1: Zig atomics + CAS loops) --- *)
  | "__omp_atomic_new", [ v ] ->
      (match v with
       | VInt i -> VAtomicI (Omprt.Atomics.Int.make i)
       | VFloat f -> VAtomicF (Omprt.Atomics.Float.make f)
       | VUndef -> VAtomicF (Omprt.Atomics.Float.make 0.)
       | v -> err "__omp_atomic_new on %s" (V.type_name v))
  | "__omp_atomic_load", [ VAtomicF a ] -> VFloat (Omprt.Atomics.Float.get a)
  | "__omp_atomic_load", [ VAtomicI a ] -> VInt (Omprt.Atomics.Int.get a)
  | "__omp_atomic_combine_add", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.add a (fl v); VUnit
  | "__omp_atomic_combine_add", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.add a (it v); VUnit
  | "__omp_atomic_combine_mul", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.mul a (fl v); VUnit
  | "__omp_atomic_combine_mul", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.mul a (it v); VUnit
  | "__omp_atomic_combine_min", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.min a (fl v); VUnit
  | "__omp_atomic_combine_min", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.min a (it v); VUnit
  | "__omp_atomic_combine_max", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.max a (fl v); VUnit
  | "__omp_atomic_combine_max", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.max a (it v); VUnit
  (* --- worksharing helpers --- *)
  | "__omp_ws_cmp", [ i; upper; step ] ->
      VBool (if it step > 0 then it i <= it upper else it i >= it upper)
  | "__omp_trips", [ lb; ub; step; incl ] ->
      VInt
        (Omprt.Ws.trip_count ~inclusive:(it incl = 1) ~lo:(it lb)
           ~hi:(it ub) ~step:(it step) ())
  | "__omp_huge", [] -> VFloat infinity
  | "__omp_min", [ a; b ] -> if Rt.compare_vals a b <= 0 then a else b
  | "__omp_max", [ a; b ] -> if Rt.compare_vals a b >= 0 then a else b
  (* --- host utilities for writing programs --- *)
  | "alloc_f64", [ n ] -> VFloatArr (Array.make (it n) 0.)
  | "alloc_i64", [ n ] -> VIntArr (Array.make (it n) 0)
  | "len", [ VFloatArr a ] -> VInt (Array.length a)
  | "len", [ VIntArr a ] -> VInt (Array.length a)
  | "sqrt", [ v ] -> VFloat (sqrt (fl v))
  | "log", [ v ] -> VFloat (log (fl v))
  | "exp", [ v ] -> VFloat (exp (fl v))
  | "fabs", [ v ] -> VFloat (Float.abs (fl v))
  | "floor", [ v ] -> VFloat (Float.floor (fl v))
  | "int_of", [ v ] -> VInt (it v)
  | "float_of", [ v ] -> VFloat (fl v)
  | "print", [ v ] ->
      print_endline (V.to_string v);
      VUnit
  | _ ->
      (match Hashtbl.find_opt host_fns fname with
       | Some f -> f args
       | None ->
           err "unknown function or builtin '%s'/%d" fname
             (List.length args))

let dispatch ~(call : string -> V.t list -> V.t) fname args : V.t =
  match !interceptor with
  | Some i ->
      (match i.on_builtin ~call fname args with
       | Some v -> v
       | None -> dispatch_default ~call fname args)
  | None -> dispatch_default ~call fname args

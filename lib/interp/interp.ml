(** Tree-walking evaluator for preprocessed Zr programs.

    Runs the output of {!Preproc.Preprocess} — plain Zr whose OpenMP
    constructs have become calls into the [.omp.internal] surface — by
    binding the [__kmpc_*]/[__omp_*] builtins to the real runtime
    ({!Omprt}).  Outlined functions therefore execute on actual OCaml
    domains, with the exact fork/worksharing/reduction protocol the
    paper's generated Zig code uses against libomp.

    The interpreter is deliberately simple (this substitutes for Zig's
    LLVM backend, not for its performance): dynamic typing with Zig
    debug-mode-style trapping on misuse, environments as scope chains,
    and per-call activation records so concurrent threads never share
    local state.  The performance path is the staged backend
    ({!Compile}), which shares this module's program representation
    ({!Rt}) and builtin surface ({!Builtins}) so the two backends agree
    exactly; this walker remains the executable specification. *)

open Zr

(* Re-export the value and compiler modules: [interp.ml] is the
   library's root module, so they are otherwise hidden from clients.
   [Rt] and [Builtins] are exposed for the checker ({!Check}), which
   installs its tracing and interception hooks there. *)
module Value = Value
module Compile = Compile
module Rt = Rt
module Builtins = Builtins
module Bc = Bc
module Bcgen = Bcgen

exception Return_exc = Rt.Return_exc
exception Break_exc = Rt.Break_exc
exception Continue_exc = Rt.Continue_exc

(** Storage for a global: ordinary shared cell, or per-thread cells for
    [threadprivate] globals (keyed by domain id; thread 0 of every team
    is the encountering domain, so its copy persists across regions as
    the OpenMP persistence rules describe). *)
type slot = Rt.slot =
  | Plain of Value.t ref
  | Tls of { init : Value.t;
             cells : (int, Value.t ref) Hashtbl.t;
             mutex : Mutex.t }

type program = Rt.program = {
  ast : Ast.t;
  fns : (string, int) Hashtbl.t;          (* name -> Fn_decl node *)
  globals : (string, slot) Hashtbl.t;
  preprocessed : string;                   (* the final source text *)
}

let slot_cell = Rt.slot_cell

type env = {
  prog : program;
  scopes : (string, Value.t ref) Hashtbl.t list;  (* innermost first *)
}

let err = Value.err

(* ------------------------------------------------------------------ *)
(* Environment.                                                        *)

let push_scope env = { env with scopes = Hashtbl.create 8 :: env.scopes }

let declare env name v =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] -> assert false

let rec lookup_cell scopes name =
  match scopes with
  | [] -> None
  | scope :: rest ->
      (match Hashtbl.find_opt scope name with
       | Some cell -> Some cell
       | None -> lookup_cell rest name)

let find_cell env name =
  match lookup_cell env.scopes name with
  | Some cell -> Some cell
  | None -> Option.map slot_cell (Hashtbl.find_opt env.prog.globals name)

(* Value semantics (arithmetic, comparison, pointer access) live in
   {!Rt}, shared verbatim with the compiled backend. *)

let arith = Rt.arith
let compare_vals = Rt.compare_vals
let ptr_read = Rt.ptr_read
let ptr_write = Rt.ptr_write

(* ------------------------------------------------------------------ *)
(* Checker instrumentation.

   Only shared-reachable locations are reported: elements of arrays,
   cells reached through pointers (the [__ptr] captures the outliner
   synthesises), and plain global cells.  Ordinary locals are created
   fresh per activation record, so they stay untraced — until their
   cell escapes through [&] (a task capturing a creator local by
   reference), after which direct accesses are traced too; the pointer
   side always routes through [Deref]. *)

(** Best-effort variable name for an access site. *)
let rec access_hint ast node =
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Ident -> Ast.token_text ast n.main_token
  | Ast.Index | Ast.Deref | Ast.Field -> access_hint ast n.lhs
  | _ -> ""

let trace_access env ~rw node (acc : Rt.access) =
  match !Rt.tracer with
  | None -> ()
  | Some t ->
      let ast = env.prog.ast in
      let off = (Ast.token ast (Ast.node ast node).Ast.main_token).Token.start in
      t.Rt.trace ~rw acc ~off ~hint:(access_hint ast node)

let access_of_ptr = function
  | Value.PVar r -> Some (Rt.Acell r)
  | Value.PElemF (a, i) -> Some (Rt.Afelem (a, i))
  | Value.PElemI (a, i) -> Some (Rt.Aielem (a, i))
  | Value.PSlot _ -> None  (* compiled frames never reach the walker *)

let trace_ptr env ~rw node p =
  match access_of_ptr p with
  | Some acc -> trace_access env ~rw node acc
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Evaluation.                                                         *)

let rec eval env node : Value.t =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Int_lit ->
      let text = Ast.token_text ast n.main_token in
      let text = String.concat "" (String.split_on_char '_' text) in
      VInt (int_of_string text)
  | Ast.Float_lit -> VFloat (float_of_string (Ast.token_text ast n.main_token))
  | Ast.String_lit ->
      let raw = Ast.token_text ast n.main_token in
      VStr (Scanf.unescaped (String.sub raw 1 (String.length raw - 2)))
  | Ast.Bool_lit -> VBool (Ast.token_text ast n.main_token = "true")
  | Ast.Undefined_lit -> VUndef
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match lookup_cell env.scopes name with
       | Some cell ->
           if Rt.is_escaped cell then
             trace_access env ~rw:`R node (Rt.Acell cell);
           !cell
       | None ->
           (match Hashtbl.find_opt env.prog.globals name with
            | Some (Rt.Plain cell) ->
                trace_access env ~rw:`R node (Rt.Acell cell);
                !cell
            | Some (Rt.Tls _ as slot) -> !(slot_cell slot)
            | None ->
                if Hashtbl.mem env.prog.fns name then VFun name
                else err "use of undeclared identifier '%s'" name))
  | Ast.Bin_op -> eval_binop env n
  | Ast.Un_op ->
      let v = eval env n.lhs in
      (match (Ast.token ast n.main_token).Token.tag, v with
       | Token.Minus, Value.VInt i -> VInt (-i)
       | Token.Minus, Value.VFloat f -> VFloat (-.f)
       | Token.Bang, Value.VBool b -> VBool (not b)
       | t, v ->
           err "unary '%s' on %s" (Token.tag_to_string t) (Value.type_name v))
  | Ast.Index ->
      let arr = eval env n.lhs in
      let idx = Value.to_int (eval env n.rhs) in
      (match arr with
       | VFloatArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           trace_access env ~rw:`R node (Rt.Afelem (a, idx));
           VFloat a.(idx)
       | VIntArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           trace_access env ~rw:`R node (Rt.Aielem (a, idx));
           VInt a.(idx)
       | v -> err "indexing a %s" (Value.type_name v))
  | Ast.Field ->
      let base = eval env n.lhs in
      let fname = Ast.token_text ast n.main_token in
      (match base with
       | VStruct fields -> Value.struct_field fields fname
       | v -> err "field access '.%s' on %s" fname (Value.type_name v))
  | Ast.Deref ->
      (match eval env n.lhs with
       | VPtr p ->
           trace_ptr env ~rw:`R node p;
           ptr_read p
       | v -> err "dereference of %s" (Value.type_name v))
  | Ast.Addr_of -> eval_addr_of env n.lhs
  | Ast.Struct_lit ->
      let count = Ast.extra ast n.rhs in
      let fields =
        List.init count (fun k ->
            let name_tok = Ast.extra ast (n.rhs + 1 + (2 * k)) in
            let vnode = Ast.extra ast (n.rhs + 2 + (2 * k)) in
            (Ast.token_text ast name_tok, eval env vnode))
      in
      VStruct fields
  | Ast.Call -> eval_call env node
  | tag ->
      err "cannot evaluate node tag %s as an expression"
        (match tag with Ast.Block -> "block" | _ -> "<stmt>")

and eval_binop env n =
  let ast = env.prog.ast in
  let t = (Ast.token ast n.Ast.main_token).Token.tag in
  match t with
  | Token.Kw_and ->
      if Value.to_bool (eval env n.lhs) then eval env n.rhs else VBool false
  | Token.Kw_or ->
      if Value.to_bool (eval env n.lhs) then VBool true else eval env n.rhs
  | _ ->
      let a = eval env n.lhs in
      let b = eval env n.rhs in
      (match t with
       | Token.Plus -> Rt.add a b
       | Token.Minus -> Rt.sub a b
       | Token.Star -> Rt.mul a b
       | Token.Slash -> Rt.div a b
       | Token.Percent -> Rt.modulo a b
       | Token.Eq_eq -> VBool (compare_vals a b = 0)
       | Token.Bang_eq -> VBool (compare_vals a b <> 0)
       | Token.Lt -> VBool (compare_vals a b < 0)
       | Token.Lt_eq -> VBool (compare_vals a b <= 0)
       | Token.Gt -> VBool (compare_vals a b > 0)
       | Token.Gt_eq -> VBool (compare_vals a b >= 0)
       | t -> err "unsupported binary operator '%s'" (Token.tag_to_string t))

and eval_addr_of env node =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match find_cell env name with
       | Some cell ->
           Rt.note_escape cell;
           VPtr (PVar cell)
       | None -> err "address of undeclared identifier '%s'" name)
  | Ast.Deref ->
      (* &p.* is p *)
      (match eval env n.lhs with
       | VPtr _ as p -> p
       | v -> err "dereference of %s" (Value.type_name v))
  | Ast.Index ->
      let arr = eval env n.lhs in
      let idx = Value.to_int (eval env n.rhs) in
      (match arr with
       | VFloatArr a -> VPtr (PElemF (a, idx))
       | VIntArr a -> VPtr (PElemI (a, idx))
       | v -> err "address of an element of %s" (Value.type_name v))
  | _ -> err "cannot take the address of this expression"

(* lvalue evaluation: returns read/write access *)
and eval_lvalue env node : (unit -> Value.t) * (Value.t -> unit) =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match lookup_cell env.scopes name with
       | Some cell ->
           ((fun () ->
               if Rt.is_escaped cell then
                 trace_access env ~rw:`R node (Rt.Acell cell);
               !cell),
            fun v ->
              if Rt.is_escaped cell then
                trace_access env ~rw:`W node (Rt.Acell cell);
              cell := v)
       | None ->
           (match Hashtbl.find_opt env.prog.globals name with
            | Some (Rt.Plain cell) ->
                ((fun () ->
                    trace_access env ~rw:`R node (Rt.Acell cell);
                    !cell),
                 fun v ->
                   trace_access env ~rw:`W node (Rt.Acell cell);
                   cell := v)
            | Some (Rt.Tls _ as slot) ->
                let cell = slot_cell slot in
                ((fun () -> !cell), fun v -> cell := v)
            | None -> err "assignment to undeclared identifier '%s'" name))
  | Ast.Index ->
      let arr = eval env n.lhs in
      let idx = Value.to_int (eval env n.rhs) in
      (match arr with
       | VFloatArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           ((fun () ->
               trace_access env ~rw:`R node (Rt.Afelem (a, idx));
               Value.VFloat a.(idx)),
            fun v ->
              trace_access env ~rw:`W node (Rt.Afelem (a, idx));
              a.(idx) <- Value.to_float v)
       | VIntArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           ((fun () ->
               trace_access env ~rw:`R node (Rt.Aielem (a, idx));
               Value.VInt a.(idx)),
            fun v ->
              trace_access env ~rw:`W node (Rt.Aielem (a, idx));
              a.(idx) <- Value.to_int v)
       | v -> err "indexed assignment to %s" (Value.type_name v))
  | Ast.Deref ->
      (match eval env n.lhs with
       | VPtr p ->
           ((fun () ->
               trace_ptr env ~rw:`R node p;
               ptr_read p),
            fun v ->
              trace_ptr env ~rw:`W node p;
              ptr_write p v)
       | v -> err "assignment through %s" (Value.type_name v))
  | _ -> err "invalid assignment target"

and exec env node : unit =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Block ->
      let inner = push_scope env in
      List.iter (exec inner) (Ast.block_stmts ast node)
  | Ast.Var_decl | Ast.Const_decl ->
      let name = Ast.token_text ast n.main_token in
      let v = if n.rhs = 0 then Value.VUndef else eval env n.rhs in
      declare env name v
  | Ast.Assign ->
      let _, write = eval_lvalue env n.lhs in
      let read, _ = eval_lvalue env n.lhs in
      let rhs = eval env n.rhs in
      (* Tag the write of a compound assignment with its operator for
         the checker's clause suggestions; the tag must not outlive the
         statement (the write may be an untraced scope local). *)
      let compound op rmw =
        let v = rmw (read ()) rhs in
        if Option.is_some !Rt.tracer then begin
          Rt.pending_op := Some op;
          write v;
          Rt.pending_op := None
        end
        else write v
      in
      (match (Ast.token ast n.main_token).Token.tag with
       | Token.Eq -> write rhs
       | Token.Plus_eq -> compound "+" Rt.add
       | Token.Minus_eq -> compound "-" Rt.sub
       | Token.Star_eq -> compound "*" Rt.mul
       | Token.Slash_eq -> compound "/" Rt.div_assign
       | t -> err "unsupported assignment operator '%s'" (Token.tag_to_string t))
  | Ast.While ->
      let cont = Ast.extra ast n.rhs in
      let body = Ast.extra ast (n.rhs + 1) in
      let rec loop () =
        if Value.to_bool (eval env n.lhs) then begin
          (try exec env body with Continue_exc -> ());
          if cont <> 0 then exec env cont;
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | Ast.If ->
      let then_ = Ast.extra ast n.rhs in
      let else_ = Ast.extra ast (n.rhs + 1) in
      if Value.to_bool (eval env n.lhs) then exec env then_
      else if else_ <> 0 then exec env else_
  | Ast.Return ->
      raise (Return_exc (if n.lhs = 0 then Value.VUnit else eval env n.lhs))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Expr_stmt -> ignore (eval env n.lhs)
  | Ast.Omp_parallel | Ast.Omp_for | Ast.Omp_parallel_for | Ast.Omp_barrier
  | Ast.Omp_critical | Ast.Omp_master | Ast.Omp_single | Ast.Omp_atomic ->
      err "OpenMP directive reached the interpreter: the program was not \
           preprocessed"
  | _ -> err "invalid statement node"

(* ------------------------------------------------------------------ *)
(* Calls.                                                              *)

and eval_call env node : Value.t =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  let args_nodes = Ast.call_args ast node in
  let callee = Ast.node ast n.lhs in
  match callee.Ast.tag with
  | Ast.Field ->
      let base = Ast.node ast callee.Ast.lhs in
      let meth = Ast.token_text ast callee.Ast.main_token in
      if base.Ast.tag = Ast.Ident
         && Ast.token_text ast base.Ast.main_token = "omp"
         && find_cell env "omp" = None
      then
        let args = List.map (eval env) args_nodes in
        Builtins.omp_namespace meth args
      else begin
        (* method-style call through a struct field holding a function *)
        match eval env n.lhs with
        | Value.VFun fname ->
            call_function env.prog fname (List.map (eval env) args_nodes)
        | v -> err "call of %s" (Value.type_name v)
      end
  | Ast.Ident ->
      let fname = Ast.token_text ast callee.Ast.main_token in
      (match find_cell env fname with
       | Some { contents = Value.VFun f } ->
           call_function env.prog f (List.map (eval env) args_nodes)
       | Some v -> err "call of %s" (Value.type_name !v)
       | None ->
           if Hashtbl.mem env.prog.fns fname then
             call_function env.prog fname (List.map (eval env) args_nodes)
           else
             Builtins.dispatch ~call:(call_function env.prog) fname
               (List.map (eval env) args_nodes))
  | _ ->
      (match eval env n.lhs with
       | Value.VFun fname ->
           call_function env.prog fname (List.map (eval env) args_nodes)
       | v -> err "call of %s" (Value.type_name v))

and call_function prog fname args : Value.t =
  match Hashtbl.find_opt prog.fns fname with
  | None -> err "call of unknown function '%s'" fname
  | Some fn_node ->
      let ast = prog.ast in
      let n = Ast.node ast fn_node in
      let proto = n.Ast.lhs in
      let nparams = Ast.extra ast proto in
      if List.length args <> nparams then
        err "function '%s' expects %d arguments, got %d" fname nparams
          (List.length args);
      let env = { prog; scopes = [ Hashtbl.create 8 ] } in
      List.iteri
        (fun k v ->
          let name_tok = Ast.extra ast (proto + 1 + (2 * k)) in
          declare env (Ast.token_text ast name_tok) v)
        args;
      (try
         exec env n.Ast.rhs;
         Value.VUnit
       with Return_exc v -> v)

(* ------------------------------------------------------------------ *)
(* Program loading.                                                    *)

(** Load a Zr program: preprocess OpenMP pragmas (unless [preprocess] is
    false), parse, register functions, and evaluate global
    initialisers in order. *)
let load ?(name = "<input>") ?(preprocess = true) (source : string) : program =
  let text =
    if preprocess then Preproc.Preprocess.run ~name source else source
  in
  let ast, _spans = Parser.parse_string ~name text in
  let prog = {
    ast;
    fns = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    preprocessed = text;
  } in
  List.iter
    (fun d ->
      let n = Ast.node ast d in
      match n.Ast.tag with
      | Ast.Fn_decl ->
          Hashtbl.replace prog.fns (Ast.token_text ast n.main_token) d
      | Ast.Var_decl | Ast.Const_decl ->
          let name = Ast.token_text ast n.main_token in
          let env = { prog; scopes = [] } in
          let v = if n.rhs = 0 then Value.VUndef else eval env n.rhs in
          Hashtbl.replace prog.globals name (Plain (ref v))
      | Ast.Omp_threadprivate ->
          (* convert the named globals to per-thread storage, seeded
             with their current (initial) value *)
          let cl = Ast.clauses ast d in
          List.iter
            (fun id ->
              let gname =
                Ast.token_text ast (Ast.node ast id).Ast.main_token
              in
              match Hashtbl.find_opt prog.globals gname with
              | Some (Plain r) ->
                  Hashtbl.replace prog.globals gname
                    (Tls { init = !r; cells = Hashtbl.create 8;
                           mutex = Mutex.create () })
              | Some (Tls _) -> ()
              | None ->
                  Value.err
                    "threadprivate(%s): no such global variable" gname)
            cl.Ompfront.Directive.private_
      | _ -> ())
    (Ast.top_decls ast);
  prog

(** Call an exported function with host values. *)
let call prog fname args = call_function prog fname args

(** [register_host name f] — make the OCaml function [f] callable from
    Zr as [name(...)], the moral equivalent of Zig's [extern fn]
    declarations used for C and Fortran interop (paper section IV).
    Must be called before execution; shadowed by same-named Zr
    functions and builtins.  The registry is shared with the compiled
    backend ({!Builtins}). *)
let register_host name f = Builtins.register_host name f

let unregister_host name = Builtins.unregister_host name

(** Run [main]. *)
let run_main prog = call prog "main" []

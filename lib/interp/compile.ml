(** Staged closure compilation for preprocessed Zr programs.

    The tree walker ({!Interp}) re-dispatches on AST tags, chases
    scope-chain [Hashtbl]s and string-matches builtin names on every
    single iteration of every worksharing loop.  This pass does all of
    that exactly once, after preprocessing: each function body is
    lowered to a tree of OCaml closures over a flat mutable frame
    ([Value.t array]), with

    - names resolved at compile time to integer slots (locals), to the
      global's storage cell, or to a function — no [Hashtbl] at run
      time;
    - literal subexpressions constant-folded ({!ce} separates
      compile-time values from residual closures);
    - direct-call thunks for the hot [.omp.internal] builtins
      ([__omp_ws_cmp], the math helpers, [omp.get_thread_num], ...) so
      no string dispatch survives into loop bodies;
    - the generated worksharing shapes recognised whole: the
      [__kmpc_for_static_init]/[if (has)]/[while (__omp_ws_cmp ...)]
      statement sequence becomes one drain closure that talks to
      {!Omprt.Kmpc} directly and runs the loop body as [fun frame -> ...]
      per iteration, without materialising bound structs or re-parsing
      the dispatch-next protocol.

    Fallback rules: anything the compiler does not recognise — other
    builtins, method calls, hand-written code that merely resembles the
    generated shapes but uses different handle names — compiles to a
    closure that calls the shared {!Builtins.dispatch}, so the two
    backends always agree on semantics, error messages and
    {!Omprt.Profile} construct counts.  The reserved [__omp_ws] /
    [__omp_h] / [__omp_c] handle names gate the drain recognition; the
    preprocessor owns that namespace.

    Known, documented divergences from the tree walker (DESIGN.md
    "Staged interpretation"): compile-time scoping means a variable
    declared later in a re-executed block is not visible before its
    declaration, and lvalue subexpressions of assignments are evaluated
    once here (the walker evaluates them twice). *)

open Zr
module V = Value

let err = V.err

type frame = V.t array

(** A compiled expression: either a value known at compile time or a
    residual closure.  Folding an expression that would raise at run
    time re-stages it as a raising closure, preserving error timing. *)
type ce =
  | Const of V.t
  | Dyn of (frame -> V.t)

let force = function
  | Const v -> fun _ -> v
  | Dyn f -> f

(** A compiled function.  Created as a stub for every program function
    before any body compiles, so direct-call sites can link against the
    record; the mutable fields are filled in by {!compile_fn}. *)
type cfn = {
  fname : string;
  nparams : int;
  mutable nslots : int;
  mutable body : frame -> unit;
  mutable layout : (int * string) list;  (* slot -> name, for goldens *)
}

type t = {
  prog : Rt.program;
  cfns : (string, cfn) Hashtbl.t;
  bc : Bcgen.opts option;  (* Some iff the bytecode tier is enabled *)
  bc_listings : (string * string) list Atomic.t;
      (* (drain label, disassembly), pushed by the specialisation
         winner — possibly from a worker domain, hence the atomic *)
}

(** Per-function compile context: lexical scopes mapping names to slots
    (innermost first).  Slots are allocated monotonically — shadowing
    burns a fresh slot, which keeps every binding distinct in the
    layout. *)
type ctx = {
  cp : t;
  cfname : string;
  mutable scopes : (string * int) list list;
  mutable next_slot : int;
  mutable slots_rev : (int * string) list;
  mutable ndrains : int;
}

type res =
  | Rlocal of int
  | Rglobal of Rt.slot
  | Rfn of string
  | Runbound

let alloc ctx name =
  let s = ctx.next_slot in
  ctx.next_slot <- s + 1;
  ctx.slots_rev <- (s, name) :: ctx.slots_rev;
  (match ctx.scopes with
   | scope :: rest -> ctx.scopes <- ((name, s) :: scope) :: rest
   | [] -> assert false);
  s

let rec lookup_local scopes name =
  match scopes with
  | [] -> None
  | scope :: rest ->
      (match List.assoc_opt name scope with
       | Some s -> Some s
       | None -> lookup_local rest name)

(* Same precedence as the walker's [find_cell]-then-[fns] probing:
   locals shadow globals shadow functions shadow builtins. *)
let resolve ctx name : res =
  match lookup_local ctx.scopes name with
  | Some s -> Rlocal s
  | None ->
      (match Hashtbl.find_opt ctx.cp.prog.globals name with
       | Some sl -> Rglobal sl
       | None ->
           if Hashtbl.mem ctx.cp.prog.fns name then Rfn name else Runbound)

(* ------------------------------------------------------------------ *)
(* Bytecode tier: attempt to plan a drain body for the register VM.
   The plan runs against the pre-body scope state (before the handle
   slot exists), so it must be called first in the drain builders.     *)

let bc_res = function
  | Rlocal s -> Bcgen.Rslot s
  | Rfn _ -> Bcgen.Rfnname
  | Rglobal _ -> Bcgen.Rglobalish
  | Runbound -> Bcgen.Runbound

let bc_plan ctx ~ivslot ~step2 ~cont ~body : Bcgen.plan option =
  match ctx.cp.bc with
  | None -> None
  | Some opts ->
      let label = Printf.sprintf "%s#%d" ctx.cfname ctx.ndrains in
      ctx.ndrains <- ctx.ndrains + 1;
      let listings = ctx.cp.bc_listings in
      let on_spec prog =
        let entry = (label, Bc.disasm prog) in
        let rec push () =
          let cur = Atomic.get listings in
          if not (Atomic.compare_and_set listings cur (entry :: cur)) then
            push ()
        in
        push ()
      in
      Bcgen.plan ~opts ~ast:ctx.cp.prog.ast
        ~resolve:(fun n -> bc_res (resolve ctx n))
        ~label ~ivslot ~step2 ~cont ~body ~on_spec ()

(* ------------------------------------------------------------------ *)
(* Invocation.                                                         *)

let invoke (f : cfn) (vals : V.t list) : V.t =
  let n = List.length vals in
  if n <> f.nparams then
    err "function '%s' expects %d arguments, got %d" f.fname f.nparams n;
  let fr = Array.make (max 1 f.nslots) V.VUndef in
  List.iteri (fun i v -> fr.(i) <- v) vals;
  (try f.body fr; V.VUnit with Rt.Return_exc v -> v)

let ccall cp fname vals =
  match Hashtbl.find_opt cp.cfns fname with
  | Some f -> invoke f vals
  | None -> err "call of unknown function '%s'" fname

(* Direct call with compiled argument closures: the callee frame is
   filled straight from the caller's frame, no argument list. *)
let invoke_direct (f : cfn) (cargs : (frame -> V.t) array) (fr0 : frame) : V.t =
  let fr = Array.make (max 1 f.nslots) V.VUndef in
  for i = 0 to Array.length cargs - 1 do
    fr.(i) <- cargs.(i) fr0
  done;
  (try f.body fr; V.VUnit with Rt.Return_exc v -> v)

(* Left-to-right, like the walker's [List.map (eval env)]. *)
let eval_args (ga : (frame -> V.t) array) (fr : frame) : V.t list =
  let n = Array.length ga in
  let rec go k =
    if k >= n then []
    else
      let v = ga.(k) fr in
      v :: go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Folding combinators.  A compile-time [Runtime_error] is re-staged as
   a raising closure so errors keep firing at evaluation time.         *)

let fold1 f = function
  | Const x ->
      (match f x with
       | v -> Const v
       | exception V.Runtime_error _ -> Dyn (fun _ -> f x))
  | Dyn g -> Dyn (fun fr -> f (g fr))

let fold2 f ca cb =
  match ca, cb with
  | Const x, Const y ->
      (match f x y with
       | v -> Const v
       | exception V.Runtime_error _ -> Dyn (fun _ -> f x y))
  | _ ->
      let ga = force ca and gb = force cb in
      Dyn (fun fr ->
          let x = ga fr in
          let y = gb fr in
          f x y)

let ( let* ) = Option.bind

(* ------------------------------------------------------------------ *)
(* Syntactic probes used by the worksharing-drain recogniser.          *)

let ident_name ctx node =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  if n.Ast.tag = Ast.Ident then Some (Ast.token_text ast n.Ast.main_token)
  else None

let field_parts ctx node =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  if n.Ast.tag = Ast.Field then
    Some (n.Ast.lhs, Ast.token_text ast n.Ast.main_token)
  else None

(* A call whose callee is an identifier bound to nothing in the
   program — i.e. one the generic path would send to [Builtins]. *)
let builtin_call_parts ctx node =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  if n.Ast.tag <> Ast.Call then None
  else
    let callee = Ast.node ast n.Ast.lhs in
    if callee.Ast.tag <> Ast.Ident then None
    else
      let fname = Ast.token_text ast callee.Ast.main_token in
      match resolve ctx fname with
      | Runbound -> Some (fname, Ast.call_args ast node)
      | Rlocal _ | Rglobal _ | Rfn _ -> None

let var_decl_parts ctx node =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  if n.Ast.tag = Ast.Var_decl && n.Ast.rhs <> 0 then
    Some (Ast.token_text ast n.Ast.main_token, n.Ast.rhs)
  else None

let eq_assign_parts ctx node =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  if n.Ast.tag = Ast.Assign
     && (Ast.token ast n.Ast.main_token).Token.tag = Token.Eq
  then Some (n.Ast.lhs, n.Ast.rhs)
  else None

let while_parts ctx node =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  if n.Ast.tag = Ast.While then
    Some (n.Ast.lhs, Ast.extra ast n.Ast.rhs, Ast.extra ast (n.Ast.rhs + 1))
  else None

(* [__omp_ws_cmp(<iv>, <handle>.upper, <step>)] over a given handle
   name; yields the counter name and the step expression node. *)
let cmp_call_parts ctx ~handle node =
  let* fname, args = builtin_call_parts ctx node in
  if fname <> "__omp_ws_cmp" then None
  else
    match args with
    | [ ivn; upn; stepn ] ->
        let* iv = ident_name ctx ivn in
        let* basen, fld = field_parts ctx upn in
        let* hname = ident_name ctx basen in
        if hname = handle && fld = "upper" then Some (iv, stepn) else None
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression compilation.                                             *)

let rec compile_expr ctx node : ce =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Int_lit ->
      let text = Ast.token_text ast n.main_token in
      let text = String.concat "" (String.split_on_char '_' text) in
      (match int_of_string_opt text with
       | Some i -> Const (V.VInt i)
       | None -> Dyn (fun _ -> V.VInt (int_of_string text)))
  | Ast.Float_lit ->
      let text = Ast.token_text ast n.main_token in
      (match float_of_string_opt text with
       | Some f -> Const (V.VFloat f)
       | None -> Dyn (fun _ -> V.VFloat (float_of_string text)))
  | Ast.String_lit ->
      let raw = Ast.token_text ast n.main_token in
      let body = String.sub raw 1 (String.length raw - 2) in
      (match Scanf.unescaped body with
       | s -> Const (V.VStr s)
       | exception _ -> Dyn (fun _ -> V.VStr (Scanf.unescaped body)))
  | Ast.Bool_lit -> Const (V.VBool (Ast.token_text ast n.main_token = "true"))
  | Ast.Undefined_lit -> Const V.VUndef
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match resolve ctx name with
       | Rlocal s -> Dyn (fun fr -> fr.(s))
       | Rglobal (Rt.Plain r) -> Dyn (fun _ -> !r)
       | Rglobal (Rt.Tls _ as sl) -> Dyn (fun _ -> !(Rt.slot_cell sl))
       | Rfn f -> Const (V.VFun f)
       | Runbound ->
           Dyn (fun _ -> err "use of undeclared identifier '%s'" name))
  | Ast.Bin_op -> compile_binop ctx n
  | Ast.Un_op ->
      let t = (Ast.token ast n.main_token).Token.tag in
      let f v =
        match t, v with
        | Token.Minus, V.VInt i -> V.VInt (-i)
        | Token.Minus, V.VFloat x -> V.VFloat (-.x)
        | Token.Bang, V.VBool b -> V.VBool (not b)
        | t, v ->
            err "unary '%s' on %s" (Token.tag_to_string t) (V.type_name v)
      in
      fold1 f (compile_expr ctx n.lhs)
  | Ast.Index ->
      (* never folded: array contents are mutable *)
      let ga = force (compile_expr ctx n.lhs) in
      let gi = force (compile_expr ctx n.rhs) in
      Dyn (fun fr ->
          let arr = ga fr in
          let idx = V.to_int (gi fr) in
          match arr with
          | V.VFloatArr a ->
              if idx < 0 || idx >= Array.length a then
                err "index %d out of bounds (len %d)" idx (Array.length a);
              V.VFloat a.(idx)
          | V.VIntArr a ->
              if idx < 0 || idx >= Array.length a then
                err "index %d out of bounds (len %d)" idx (Array.length a);
              V.VInt a.(idx)
          | v -> err "indexing a %s" (V.type_name v))
  | Ast.Field ->
      let fname = Ast.token_text ast n.main_token in
      let f base =
        match base with
        | V.VStruct fields -> V.struct_field fields fname
        | v -> err "field access '.%s' on %s" fname (V.type_name v)
      in
      fold1 f (compile_expr ctx n.lhs)
  | Ast.Deref ->
      let ga = force (compile_expr ctx n.lhs) in
      Dyn (fun fr ->
          match ga fr with
          | V.VPtr p -> Rt.ptr_read p
          | v -> err "dereference of %s" (V.type_name v))
  | Ast.Addr_of -> compile_addr_of ctx n.lhs
  | Ast.Struct_lit ->
      let count = Ast.extra ast n.rhs in
      let fields =
        List.init count (fun k ->
            let name_tok = Ast.extra ast (n.rhs + 1 + (2 * k)) in
            let vnode = Ast.extra ast (n.rhs + 2 + (2 * k)) in
            (Ast.token_text ast name_tok, compile_expr ctx vnode))
      in
      if
        List.for_all
          (fun (_, c) -> match c with Const _ -> true | Dyn _ -> false)
          fields
      then
        Const
          (V.VStruct
             (List.map
                (fun (nm, c) ->
                  match c with Const v -> (nm, v) | Dyn _ -> assert false)
                fields))
      else
        let gfields =
          List.map (fun (nm, c) -> (nm, force c)) fields
        in
        Dyn (fun fr ->
            let rec go = function
              | [] -> []
              | (nm, g) :: rest ->
                  let v = g fr in
                  (nm, v) :: go rest
            in
            V.VStruct (go gfields))
  | Ast.Call -> compile_call ctx node n
  | tag ->
      let what = match tag with Ast.Block -> "block" | _ -> "<stmt>" in
      Dyn (fun _ -> err "cannot evaluate node tag %s as an expression" what)

and compile_binop ctx n : ce =
  let ast = ctx.cp.prog.ast in
  let t = (Ast.token ast n.Ast.main_token).Token.tag in
  match t with
  | Token.Kw_and ->
      let ca = compile_expr ctx n.lhs in
      let cb = compile_expr ctx n.rhs in
      (match ca with
       | Const va
         when (match V.to_bool va with
               | (_ : bool) -> true
               | exception V.Runtime_error _ -> false) ->
           if V.to_bool va then cb else Const (V.VBool false)
       | _ ->
           let ga = force ca and gb = force cb in
           Dyn (fun fr ->
               if V.to_bool (ga fr) then gb fr else V.VBool false))
  | Token.Kw_or ->
      let ca = compile_expr ctx n.lhs in
      let cb = compile_expr ctx n.rhs in
      (match ca with
       | Const va
         when (match V.to_bool va with
               | (_ : bool) -> true
               | exception V.Runtime_error _ -> false) ->
           if V.to_bool va then Const (V.VBool true) else cb
       | _ ->
           let ga = force ca and gb = force cb in
           Dyn (fun fr ->
               if V.to_bool (ga fr) then V.VBool true else gb fr))
  | _ ->
      let ca = compile_expr ctx n.lhs in
      let cb = compile_expr ctx n.rhs in
      (match t with
       | Token.Plus -> fold2 Rt.add ca cb
       | Token.Minus -> fold2 Rt.sub ca cb
       | Token.Star -> fold2 Rt.mul ca cb
       | Token.Slash -> fold2 Rt.div ca cb
       | Token.Percent -> fold2 Rt.modulo ca cb
       | Token.Eq_eq ->
           fold2 (fun a b -> V.VBool (Rt.compare_vals a b = 0)) ca cb
       | Token.Bang_eq ->
           fold2 (fun a b -> V.VBool (Rt.compare_vals a b <> 0)) ca cb
       | Token.Lt -> fold2 (fun a b -> V.VBool (Rt.compare_vals a b < 0)) ca cb
       | Token.Lt_eq ->
           fold2 (fun a b -> V.VBool (Rt.compare_vals a b <= 0)) ca cb
       | Token.Gt -> fold2 (fun a b -> V.VBool (Rt.compare_vals a b > 0)) ca cb
       | Token.Gt_eq ->
           fold2 (fun a b -> V.VBool (Rt.compare_vals a b >= 0)) ca cb
       | t ->
           let ga = force ca and gb = force cb in
           let msg = Token.tag_to_string t in
           Dyn (fun fr ->
               let _ = ga fr in
               let _ = gb fr in
               err "unsupported binary operator '%s'" msg))

and compile_addr_of ctx node : ce =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match resolve ctx name with
       | Rlocal s -> Dyn (fun fr -> V.VPtr (V.PSlot (fr, s)))
       | Rglobal (Rt.Plain r) -> Const (V.VPtr (V.PVar r))
       | Rglobal (Rt.Tls _ as sl) ->
           Dyn (fun _ -> V.VPtr (V.PVar (Rt.slot_cell sl)))
       | Rfn _ | Runbound ->
           Dyn (fun _ -> err "address of undeclared identifier '%s'" name))
  | Ast.Deref ->
      (* &p.* is p *)
      let ga = force (compile_expr ctx n.lhs) in
      Dyn (fun fr ->
          match ga fr with
          | V.VPtr _ as p -> p
          | v -> err "dereference of %s" (V.type_name v))
  | Ast.Index ->
      let ga = force (compile_expr ctx n.lhs) in
      let gi = force (compile_expr ctx n.rhs) in
      Dyn (fun fr ->
          let arr = ga fr in
          let idx = V.to_int (gi fr) in
          match arr with
          | V.VFloatArr a -> V.VPtr (V.PElemF (a, idx))
          | V.VIntArr a -> V.VPtr (V.PElemI (a, idx))
          | v -> err "address of an element of %s" (V.type_name v))
  | _ -> Dyn (fun _ -> err "cannot take the address of this expression")

(* ------------------------------------------------------------------ *)
(* Calls.                                                              *)

and compile_call ctx node n : ce =
  let ast = ctx.cp.prog.ast in
  let args_nodes = Ast.call_args ast node in
  let compile_args () =
    Array.of_list
      (List.map (fun a -> force (compile_expr ctx a)) args_nodes)
  in
  let indirect gcallee =
    let ga = compile_args () in
    let cp = ctx.cp in
    Dyn (fun fr ->
        match gcallee fr with
        | V.VFun fname -> ccall cp fname (eval_args ga fr)
        | v -> err "call of %s" (V.type_name v))
  in
  let callee = Ast.node ast n.Ast.lhs in
  match callee.Ast.tag with
  | Ast.Field ->
      let base = Ast.node ast callee.Ast.lhs in
      let meth = Ast.token_text ast callee.Ast.main_token in
      if
        base.Ast.tag = Ast.Ident
        && Ast.token_text ast base.Ast.main_token = "omp"
        && (match resolve ctx "omp" with
            | Rfn _ | Runbound -> true
            | Rlocal _ | Rglobal _ -> false)
      then
        (* the omp.* namespace; the three per-iteration-hot entries get
           direct thunks *)
        (match meth, args_nodes with
         | "get_thread_num", [] ->
             Dyn (fun _ -> V.VInt (Omprt.Api.get_thread_num ()))
         | "get_num_threads", [] ->
             Dyn (fun _ -> V.VInt (Omprt.Api.get_num_threads ()))
         | "get_wtime", [] ->
             Dyn (fun _ -> V.VFloat (Omprt.Api.get_wtime ()))
         | _ ->
             let ga = compile_args () in
             Dyn (fun fr -> Builtins.omp_namespace meth (eval_args ga fr)))
      else indirect (force (compile_expr ctx n.Ast.lhs))
  | Ast.Ident ->
      let fname = Ast.token_text ast callee.Ast.main_token in
      (match resolve ctx fname with
       | Rlocal s -> indirect (fun fr -> fr.(s))
       | Rglobal (Rt.Plain r) -> indirect (fun _ -> !r)
       | Rglobal (Rt.Tls _ as sl) -> indirect (fun _ -> !(Rt.slot_cell sl))
       | Rfn f ->
           let stub = Hashtbl.find ctx.cp.cfns f in
           let ga = compile_args () in
           if Array.length ga <> stub.nparams then
             Dyn (fun fr ->
                 let n = List.length (eval_args ga fr) in
                 err "function '%s' expects %d arguments, got %d" f
                   stub.nparams n)
           else Dyn (fun fr -> invoke_direct stub ga fr)
       | Runbound -> compile_builtin ctx fname args_nodes)
  | _ -> indirect (force (compile_expr ctx n.Ast.lhs))

(* Direct thunks for the builtins that appear inside loop bodies; the
   rest route through the shared [Builtins.dispatch] match. *)
and compile_builtin ctx fname args_nodes : ce =
  let ga =
    Array.of_list
      (List.map (fun a -> force (compile_expr ctx a)) args_nodes)
  in
  let cp = ctx.cp in
  let generic () =
    Dyn (fun fr -> Builtins.dispatch ~call:(ccall cp) fname (eval_args ga fr))
  in
  match fname, ga with
  | "__omp_ws_cmp", [| gi; gu; gs |] ->
      Dyn (fun fr ->
          let vi = gi fr in
          let vu = gu fr in
          let s = V.to_int (gs fr) in
          let u = V.to_int vu in
          let i = V.to_int vi in
          V.VBool (if s > 0 then i <= u else i >= u))
  | "__omp_min", [| ga_; gb_ |] ->
      Dyn (fun fr ->
          let a = ga_ fr in
          let b = gb_ fr in
          if Rt.compare_vals a b <= 0 then a else b)
  | "__omp_max", [| ga_; gb_ |] ->
      Dyn (fun fr ->
          let a = ga_ fr in
          let b = gb_ fr in
          if Rt.compare_vals a b >= 0 then a else b)
  | "__omp_huge", [||] -> Const (V.VFloat infinity)
  | "__omp_get_thread_num", [||] ->
      Dyn (fun _ -> V.VInt (Omprt.Api.get_thread_num ()))
  | "sqrt", [| g |] -> Dyn (fun fr -> V.VFloat (sqrt (V.to_float (g fr))))
  | "log", [| g |] -> Dyn (fun fr -> V.VFloat (log (V.to_float (g fr))))
  | "exp", [| g |] -> Dyn (fun fr -> V.VFloat (exp (V.to_float (g fr))))
  | "fabs", [| g |] ->
      Dyn (fun fr -> V.VFloat (Float.abs (V.to_float (g fr))))
  | "floor", [| g |] ->
      Dyn (fun fr -> V.VFloat (Float.floor (V.to_float (g fr))))
  | "int_of", [| g |] -> Dyn (fun fr -> V.VInt (V.to_int (g fr)))
  | "float_of", [| g |] -> Dyn (fun fr -> V.VFloat (V.to_float (g fr)))
  | "len", [| g |] ->
      Dyn (fun fr ->
          match g fr with
          | V.VFloatArr a -> V.VInt (Array.length a)
          | V.VIntArr a -> V.VInt (Array.length a)
          | v ->
              (* same fallback the dispatch match would take *)
              (match Hashtbl.find_opt Builtins.host_fns "len" with
               | Some f -> f [ v ]
               | None -> err "unknown function or builtin '%s'/%d" "len" 1))
  | _ -> generic ()

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

and compile_stmt ctx node : frame -> unit =
  let ast = ctx.cp.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Block -> compile_block ctx node
  | Ast.Var_decl | Ast.Const_decl ->
      (* initialiser compiles before the slot exists, so a self-reference
         resolves to the outer binding, as dynamic scoping would *)
      let g =
        if n.rhs = 0 then fun _ -> V.VUndef
        else force (compile_expr ctx n.rhs)
      in
      let s = alloc ctx (Ast.token_text ast n.main_token) in
      fun fr -> fr.(s) <- g fr
  | Ast.Assign -> compile_assign ctx n
  | Ast.While ->
      let cont = Ast.extra ast n.rhs in
      let body = Ast.extra ast (n.rhs + 1) in
      let gcond = force (compile_expr ctx n.lhs) in
      let gbody = compile_stmt ctx body in
      let gcont =
        if cont <> 0 then compile_stmt ctx cont else fun _ -> ()
      in
      fun fr ->
        (try
           while V.to_bool (gcond fr) do
             (try gbody fr with Rt.Continue_exc -> ());
             gcont fr
           done
         with Rt.Break_exc -> ())
  | Ast.If ->
      let then_ = Ast.extra ast n.rhs in
      let else_ = Ast.extra ast (n.rhs + 1) in
      let gcond = force (compile_expr ctx n.lhs) in
      let gthen = compile_stmt ctx then_ in
      if else_ = 0 then
        (fun fr -> if V.to_bool (gcond fr) then gthen fr)
      else begin
        let gelse = compile_stmt ctx else_ in
        fun fr -> if V.to_bool (gcond fr) then gthen fr else gelse fr
      end
  | Ast.Return ->
      if n.lhs = 0 then fun _ -> raise (Rt.Return_exc V.VUnit)
      else
        let g = force (compile_expr ctx n.lhs) in
        fun fr -> raise (Rt.Return_exc (g fr))
  | Ast.Break -> fun _ -> raise Rt.Break_exc
  | Ast.Continue -> fun _ -> raise Rt.Continue_exc
  | Ast.Expr_stmt ->
      (match compile_expr ctx n.lhs with
       | Const _ -> fun _ -> ()
       | Dyn g -> fun fr -> ignore (g fr))
  | Ast.Omp_parallel | Ast.Omp_for | Ast.Omp_parallel_for | Ast.Omp_barrier
  | Ast.Omp_critical | Ast.Omp_master | Ast.Omp_single | Ast.Omp_atomic ->
      fun _ ->
        err
          "OpenMP directive reached the interpreter: the program was not \
           preprocessed"
  | _ -> fun _ -> err "invalid statement node"

and compile_assign ctx n : frame -> unit =
  let ast = ctx.cp.prog.ast in
  let grhs = force (compile_expr ctx n.Ast.rhs) in
  let combine : (V.t -> V.t -> V.t) option =
    match (Ast.token ast n.Ast.main_token).Token.tag with
    | Token.Eq -> None
    | Token.Plus_eq -> Some Rt.add
    | Token.Minus_eq -> Some Rt.sub
    | Token.Star_eq -> Some Rt.mul
    | Token.Slash_eq -> Some Rt.div_assign
    | t ->
        let msg = Token.tag_to_string t in
        Some (fun _ _ -> err "unsupported assignment operator '%s'" msg)
  in
  let tgt = Ast.node ast n.Ast.lhs in
  match tgt.Ast.tag with
  | Ast.Ident ->
      let name = Ast.token_text ast tgt.Ast.main_token in
      (match resolve ctx name, combine with
       | Rlocal s, None -> fun fr -> fr.(s) <- grhs fr
       | Rlocal s, Some f ->
           fun fr ->
             let rhs = grhs fr in
             fr.(s) <- f fr.(s) rhs
       | Rglobal (Rt.Plain r), None -> fun fr -> r := grhs fr
       | Rglobal (Rt.Plain r), Some f ->
           fun fr ->
             let rhs = grhs fr in
             r := f !r rhs
       | Rglobal (Rt.Tls _ as sl), None ->
           fun fr -> Rt.slot_cell sl := grhs fr
       | Rglobal (Rt.Tls _ as sl), Some f ->
           fun fr ->
             let cell = Rt.slot_cell sl in
             let rhs = grhs fr in
             cell := f !cell rhs
       | (Rfn _ | Runbound), _ ->
           fun _ -> err "assignment to undeclared identifier '%s'" name)
  | Ast.Index ->
      let garr = force (compile_expr ctx tgt.Ast.lhs) in
      let gidx = force (compile_expr ctx tgt.Ast.rhs) in
      fun fr ->
        let arr = garr fr in
        let idx = V.to_int (gidx fr) in
        (match arr with
         | V.VFloatArr a ->
             if idx < 0 || idx >= Array.length a then
               err "index %d out of bounds (len %d)" idx (Array.length a);
             let rhs = grhs fr in
             (match combine with
              | None -> a.(idx) <- V.to_float rhs
              | Some f ->
                  a.(idx) <- V.to_float (f (V.VFloat a.(idx)) rhs))
         | V.VIntArr a ->
             if idx < 0 || idx >= Array.length a then
               err "index %d out of bounds (len %d)" idx (Array.length a);
             let rhs = grhs fr in
             (match combine with
              | None -> a.(idx) <- V.to_int rhs
              | Some f -> a.(idx) <- V.to_int (f (V.VInt a.(idx)) rhs))
         | v -> err "indexed assignment to %s" (V.type_name v))
  | Ast.Deref ->
      let gp = force (compile_expr ctx tgt.Ast.lhs) in
      fun fr ->
        (match gp fr with
         | V.VPtr p ->
             let rhs = grhs fr in
             (match combine with
              | None -> Rt.ptr_write p rhs
              | Some f -> Rt.ptr_write p (f (Rt.ptr_read p) rhs))
         | v -> err "assignment through %s" (V.type_name v))
  | _ -> fun _ -> err "invalid assignment target"

and compile_block ctx node : frame -> unit =
  let ast = ctx.cp.prog.ast in
  ctx.scopes <- [] :: ctx.scopes;
  let stmts = compile_stmts ctx (Ast.block_stmts ast node) in
  ctx.scopes <- List.tl ctx.scopes;
  match stmts with
  | [||] -> fun _ -> ()
  | [| s |] -> s
  | arr -> fun fr -> Array.iter (fun s -> s fr) arr

and compile_stmts ctx stmts : (frame -> unit) array =
  let out = ref [] in
  let rec go = function
    | [] -> ()
    | s :: rest ->
        (match try_worksharing ctx s rest with
         | Some (closure, rest') ->
             out := closure :: !out;
             go rest'
         | None ->
             out := compile_stmt ctx s :: !out;
             go rest)
  in
  go stmts;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Worksharing drains.  The preprocessor emits exactly two statement
   shapes (loops.ml); both are recognised whole and lowered to closures
   that talk to the runtime directly.  The reserved handle names gate
   the match, so user code never trips it by accident.                 *)

and try_worksharing ctx stmt rest :
    ((frame -> unit) * int list) option =
  match try_dispatch_drain ctx stmt rest with
  | Some _ as r -> r
  | None -> try_static_drain ctx stmt rest

(*  var __omp_ws = __kmpc_for_static_init(cv, ub, step, incl);
    if (__omp_ws.has) {
        __omp_iv = __omp_ws.lower;
        while (__omp_ws_cmp(__omp_iv, __omp_ws.upper, step)) : (cont) BODY
    }                                                                  *)
and try_static_drain ctx decl rest =
  let ast = ctx.cp.prog.ast in
  let* wname, init = var_decl_parts ctx decl in
  if wname <> "__omp_ws" then None
  else
    let* fname, args = builtin_call_parts ctx init in
    if fname <> "__kmpc_for_static_init" then None
    else
      let* cv, ub, stp, incl =
        match args with [ a; b; c; d ] -> Some (a, b, c, d) | _ -> None
      in
      match rest with
      | [] -> None
      | ifn :: rest' ->
          let nif = Ast.node ast ifn in
          if nif.Ast.tag <> Ast.If then None
          else
            let then_ = Ast.extra ast nif.Ast.rhs in
            let else_ = Ast.extra ast (nif.Ast.rhs + 1) in
            if else_ <> 0 then None
            else
              let* cbase, cfld = field_parts ctx nif.Ast.lhs in
              let* cbn = ident_name ctx cbase in
              if not (cbn = "__omp_ws" && cfld = "has") then None
              else if (Ast.node ast then_).Ast.tag <> Ast.Block then None
              else
                (match Ast.block_stmts ast then_ with
                 | [ asn; whn ] ->
                     let* tgtn, av = eq_assign_parts ctx asn in
                     let* ivname = ident_name ctx tgtn in
                     let* abase, afld = field_parts ctx av in
                     let* abn = ident_name ctx abase in
                     if not (abn = "__omp_ws" && afld = "lower") then None
                     else
                       let* wcond, wcont, wbody = while_parts ctx whn in
                       if wcont = 0 then None
                       else
                         let* iv2, step2 =
                           cmp_call_parts ctx ~handle:"__omp_ws" wcond
                         in
                         if iv2 <> ivname then None
                         else
                           (match resolve ctx ivname with
                            | Rlocal ivslot ->
                                Some
                                  (build_static_drain ctx ~cv ~ub ~stp ~incl
                                     ~ivslot ~step2 ~cont:wcont ~body:wbody,
                                   rest')
                            | Rglobal _ | Rfn _ | Runbound -> None)
                 | _ -> None)

and build_static_drain ctx ~cv ~ub ~stp ~incl ~ivslot ~step2 ~cont ~body =
  let bplan = bc_plan ctx ~ivslot ~step2 ~cont ~body in
  let bc_on = ctx.cp.bc <> None in
  (* initialiser closures compile before the handle slot exists *)
  let gcv = force (compile_expr ctx cv) in
  let gub = force (compile_expr ctx ub) in
  let gstp = force (compile_expr ctx stp) in
  let gincl = force (compile_expr ctx incl) in
  ignore (alloc ctx "__omp_ws");
  (* the if-then block opened a scope on the generic path *)
  ctx.scopes <- [] :: ctx.scopes;
  let gstep2 = force (compile_expr ctx step2) in
  let gbody = compile_stmt ctx body in
  let gcont = compile_stmt ctx cont in
  ctx.scopes <- List.tl ctx.scopes;
  fun fr ->
    let vcv = gcv fr in
    let vub = gub fr in
    let vstp = gstp fr in
    let vincl = gincl fr in
    let lo = V.to_int vcv in
    let step = V.to_int vstp in
    let hi =
      if V.to_int vincl = 1 then
        (if step > 0 then V.to_int vub + 1 else V.to_int vub - 1)
      else V.to_int vub
    in
    match Omprt.Kmpc.for_static_init ~lo ~hi ~step () with
    | None -> ()
    | Some { Omprt.Kmpc.lower; upper; _ } -> (
        match
          match bplan with Some p -> Bcexec.enter p fr | None -> None
        with
        | Some st ->
            Omprt.Profile.bc_entered_tick ();
            Bcexec.run_chunk st ~lower ~upper;
            Bcexec.writeback st fr
        | None ->
            if bc_on then Omprt.Profile.bc_bailout_tick ();
            fr.(ivslot) <- V.VInt lower;
            (try
               let rec loop () =
                 let s = V.to_int (gstep2 fr) in
                 let i = V.to_int fr.(ivslot) in
                 if (if s > 0 then i <= upper else i >= upper) then begin
                   (try gbody fr with Rt.Continue_exc -> ());
                   gcont fr;
                   loop ()
                 end
               in
               loop ()
             with Rt.Break_exc -> ()))

(*  var __omp_h = <init_fn>(cv, ub, step, chunk, incl);
    var __omp_c = __kmpc_dispatch_next(__omp_h);
    while (__omp_c.more) : (__omp_c = __kmpc_dispatch_next(__omp_h)) {
        __omp_iv = __omp_c.lower;
        while (__omp_ws_cmp(__omp_iv, __omp_c.upper, step)) : (cont) BODY
    }                                                                  *)
and try_dispatch_drain ctx stmt rest =
  let ast = ctx.cp.prog.ast in
  let* hname, hinit = var_decl_parts ctx stmt in
  if hname <> "__omp_h" then None
  else
    let* initfn, iargs = builtin_call_parts ctx hinit in
    let* kind =
      match initfn with
      | "__kmpc_static_chunked_init" -> Some `Chunked
      | "__kmpc_dispatch_init_dynamic" -> Some `Dynamic
      | "__kmpc_dispatch_init_guided" -> Some `Guided
      | "__kmpc_dispatch_init_runtime" -> Some `Runtime
      | _ -> None
    in
    let* cv, ub, stp, chk, incl =
      match iargs with
      | [ a; b; c; d; e ] -> Some (a, b, c, d, e)
      | _ -> None
    in
    match rest with
    | declc :: whn :: rest' ->
        let* cname, cinit = var_decl_parts ctx declc in
        if cname <> "__omp_c" then None
        else
          let* dn, dargs = builtin_call_parts ctx cinit in
          if dn <> "__kmpc_dispatch_next" then None
          else
            let* h1 =
              match dargs with [ x ] -> ident_name ctx x | _ -> None
            in
            if h1 <> "__omp_h" then None
            else
              let* wcond, wcont, wbody = while_parts ctx whn in
              if wcont = 0 then None
              else
                let* cb, cf = field_parts ctx wcond in
                let* cbn = ident_name ctx cb in
                if not (cbn = "__omp_c" && cf = "more") then None
                else
                  let* ct, cval = eq_assign_parts ctx wcont in
                  let* ctn = ident_name ctx ct in
                  if ctn <> "__omp_c" then None
                  else
                    let* dn2, dargs2 = builtin_call_parts ctx cval in
                    if dn2 <> "__kmpc_dispatch_next" then None
                    else
                      let* h2 =
                        match dargs2 with
                        | [ x ] -> ident_name ctx x
                        | _ -> None
                      in
                      if h2 <> "__omp_h" then None
                      else if (Ast.node ast wbody).Ast.tag <> Ast.Block then
                        None
                      else
                        (match Ast.block_stmts ast wbody with
                         | [ asn; iwh ] ->
                             let* tgtn, av = eq_assign_parts ctx asn in
                             let* ivname = ident_name ctx tgtn in
                             let* ab, af = field_parts ctx av in
                             let* abn = ident_name ctx ab in
                             if not (abn = "__omp_c" && af = "lower") then
                               None
                             else
                               let* icond, icont, ibody =
                                 while_parts ctx iwh
                               in
                               if icont = 0 then None
                               else
                                 let* iv2, step2 =
                                   cmp_call_parts ctx ~handle:"__omp_c" icond
                                 in
                                 if iv2 <> ivname then None
                                 else
                                   (match resolve ctx ivname with
                                    | Rlocal ivslot ->
                                        Some
                                          (build_dispatch_drain ctx ~kind ~cv
                                             ~ub ~stp ~chk ~incl ~ivslot
                                             ~step2 ~icont ~ibody,
                                           rest')
                                    | Rglobal _ | Rfn _ | Runbound -> None)
                         | _ -> None)
    | _ -> None

and build_dispatch_drain ctx ~kind ~cv ~ub ~stp ~chk ~incl ~ivslot ~step2
    ~icont ~ibody =
  let bplan = bc_plan ctx ~ivslot ~step2 ~cont:icont ~body:ibody in
  let bc_on = ctx.cp.bc <> None in
  let gcv = force (compile_expr ctx cv) in
  let gub = force (compile_expr ctx ub) in
  let gstp = force (compile_expr ctx stp) in
  let gchk = force (compile_expr ctx chk) in
  let gincl = force (compile_expr ctx incl) in
  ignore (alloc ctx "__omp_h");
  ignore (alloc ctx "__omp_c");
  (* the outer while body block opened a scope on the generic path *)
  ctx.scopes <- [] :: ctx.scopes;
  let gstep2 = force (compile_expr ctx step2) in
  let gbody = compile_stmt ctx ibody in
  let gcont = compile_stmt ctx icont in
  ctx.scopes <- List.tl ctx.scopes;
  (* one claimed chunk: break exits the inner while only, so the next
     chunk still runs — same nesting as the generated loops *)
  let run_chunk fr lower upper =
    fr.(ivslot) <- V.VInt lower;
    try
      let rec loop () =
        let s = V.to_int (gstep2 fr) in
        let i = V.to_int fr.(ivslot) in
        if (if s > 0 then i <= upper else i >= upper) then begin
          (try gbody fr with Rt.Continue_exc -> ());
          gcont fr;
          loop ()
        end
      in
      loop ()
    with Rt.Break_exc -> ()
  in
  fun fr ->
    let vcv = gcv fr in
    let vub = gub fr in
    let vstp = gstp fr in
    let vchk = gchk fr in
    let vincl = gincl fr in
    let lo = V.to_int vcv in
    let step = V.to_int vstp in
    let chunk0 = V.to_int vchk in
    let hi =
      if V.to_int vincl = 1 then
        (if step > 0 then V.to_int vub + 1 else V.to_int vub - 1)
      else V.to_int vub
    in
    let bst = match bplan with Some p -> Bcexec.enter p fr | None -> None in
    (match bst with
     | Some _ -> Omprt.Profile.bc_entered_tick ()
     | None -> if bc_on then Omprt.Profile.bc_bailout_tick ());
    (* the closure tier only touches the frame when a chunk runs, so
       the bytecode writeback must stay conditional on that too *)
    let ran = ref false in
    let run_chunk fr lower upper =
      match bst with
      | Some st ->
          ran := true;
          Bcexec.run_chunk st ~lower ~upper
      | None -> run_chunk fr lower upper
    in
    (match kind with
     | `Chunked ->
         let trips = Omprt.Ws.trip_count ~lo ~hi ~step () in
         let tid = Omprt.Api.get_thread_num () in
         let nth = Omprt.Api.get_num_threads () in
         Omprt.Ws.static_chunks_iter ~tid ~nthreads:nth ~trips ~chunk:chunk0
           (fun b e -> run_chunk fr (lo + (b * step)) (lo + ((e - 1) * step)))
     | (`Dynamic | `Guided | `Runtime) as k ->
         let chunk = max 1 chunk0 in
         let sched =
           match k with
           | `Dynamic -> Omp_model.Sched.Dynamic chunk
           | `Guided -> Omp_model.Sched.Guided chunk
           | `Runtime -> Omp_model.Sched.Runtime
         in
         let d = Omprt.Kmpc.dispatch_init ~sched ~lo ~hi ~step () in
         let rec drain () =
           match Omprt.Kmpc.dispatch_next d with
           | Some (lower, upper) ->
               run_chunk fr lower upper;
               drain ()
           | None -> ()
         in
         drain ());
    match bst with
    | Some st when !ran -> Bcexec.writeback st fr
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Program compilation: stubs first so direct calls can link, then the
   bodies.                                                             *)

let compile_fn cp fname fn_node =
  let ast = cp.prog.ast in
  let n = Ast.node ast fn_node in
  let proto = n.Ast.lhs in
  let nparams = Ast.extra ast proto in
  let ctx =
    { cp; cfname = fname; scopes = [ [] ]; next_slot = 0; slots_rev = [];
      ndrains = 0 }
  in
  for k = 0 to nparams - 1 do
    let name_tok = Ast.extra ast (proto + 1 + (2 * k)) in
    ignore (alloc ctx (Ast.token_text ast name_tok))
  done;
  let body = compile_stmt ctx n.Ast.rhs in
  let stub = Hashtbl.find cp.cfns fname in
  stub.nslots <- ctx.next_slot;
  stub.body <- body;
  stub.layout <- List.rev ctx.slots_rev

let compile ?bc (prog : Rt.program) : t =
  let cp =
    { prog; cfns = Hashtbl.create 16; bc; bc_listings = Atomic.make [] }
  in
  Hashtbl.iter
    (fun fname fn_node ->
      let n = Ast.node prog.ast fn_node in
      let nparams = Ast.extra prog.ast n.Ast.lhs in
      Hashtbl.replace cp.cfns fname
        { fname; nparams; nslots = 0; body = (fun _ -> ()); layout = [] })
    prog.fns;
  Hashtbl.iter (fun fname fn_node -> compile_fn cp fname fn_node) prog.fns;
  cp

let program cp = cp.prog

let call cp fname args = ccall cp fname args

let run_main cp = call cp "main" []

let slot_layout cp fname =
  Option.map (fun f -> f.layout) (Hashtbl.find_opt cp.cfns fname)

let bc_enabled cp = cp.bc <> None

let bc_listings cp = List.rev (Atomic.get cp.bc_listings)

(** The register bytecode for worksharing loop bodies — tier three.

    The staged-closure compiler ({!Compile}) removed AST dispatch and
    name lookup, but each iteration of a hot loop still chases OCaml
    closures and boxes every intermediate in a {!Value.t}.  This tier
    lowers the *body* of a recognised worksharing drain one step
    further: a linear array of fixed-width register instructions over
    untagged register files — an [int array] for integer/boolean
    registers, a [float array] for floats, with arrays the body indexes
    held in per-bank base tables.  One dispatch loop ({!Bcexec.run})
    executes a claimed chunk with no allocation and no tagging.

    Codegen ({!Bcgen}) only covers the shapes the preprocessor emits
    into loop bodies (scalar arithmetic, array loads/stores, nested
    sequential control flow, the math builtins); anything else — calls,
    pointer writes, strings, globals — bails out to the closure tier at
    plan or specialisation time, observable through the
    {!Omprt.Profile} [bc] counters.  Semantics, error messages and
    error *timing* are bit-exact with the closure tier by construction:
    every divergence risk is a bailout, not a best effort.

    Guard elision: subscripts of the form [iv + c] on loop-invariant
    arrays are the SIV shape {!Analyze.Depend} reasons about; per
    claimed chunk the interval such a subscript sweeps is
    [[first + c_min, last + c_max]] ({!Omp_model.Subscript}), so one
    check per (array, chunk) proves every elided access in range and
    the body runs unguarded opcodes.  If the check fails — the access
    *would* fault or the bounds are pathological — the chunk runs the
    fully guarded twin ([gcode]) instead, preserving exact fault
    timing and messages. *)

(* ------------------------------------------------------------------ *)
(* Encoding: each instruction is [width] cells of an [int array] —
   the opcode then up to five operands.  Register operands index the
   int or float file (by opcode), [arr] operands index the per-bank
   base tables, [k] operands index the float constant pool, [imm] and
   [off] are immediates, [t] is an absolute instruction address
   (multiple of [width]).                                              *)

let width = 6

(* --- control --- *)
let op_halt = 0             (* halt                                   *)
let op_jmp = 1              (* jmp t                                  *)
let op_brz = 2              (* brz a t        — branch if ints[a]=0   *)
let op_cmpbr_ii = 3         (* cmpbr.ii cc a b t — branch if NOT cc   *)
let op_cmpbr_ff = 4         (* cmpbr.ff cc a b t — branch if NOT cc   *)
let op_addcmple_br = 5      (* iv += imm; if iv <= ints[b] jmp t      *)
let op_addcmpge_br = 6      (* iv += imm; if iv >= ints[b] jmp t      *)

(* --- moves and constants --- *)
let op_mov_i = 7            (* mov.i d a                              *)
let op_mov_f = 8            (* mov.f d a                              *)
let op_ldc_i = 9            (* ldc.i d imm                            *)
let op_ldc_f = 10           (* ldc.f d k                              *)

(* --- integer ALU (booleans are 0/1 in the int file) --- *)
let op_add_i = 11
let op_sub_i = 12
let op_mul_i = 13
let op_div_i = 14           (* traps: integer division by zero        *)
let op_mod_i = 15           (* traps: integer modulo by zero          *)
let op_neg_i = 16
let op_not_b = 17           (* d <- 1 - a                             *)

(* --- float ALU --- *)
let op_add_f = 18
let op_sub_f = 19
let op_mul_f = 20
let op_div_f = 21
let op_mod_f = 22           (* Float.rem                              *)
let op_neg_f = 23

(* --- conversions --- *)
let op_i2f = 24
let op_f2i = 25             (* int_of_float truncation                *)

(* --- comparisons into a 0/1 register --- *)
let op_cmp_ii = 26          (* cmp.ii cc d a b                        *)
let op_cmp_ff = 27          (* cmp.ff cc d a b                        *)

(* --- array access; [off] is a subscript immediate added to ints[i].
   Guarded forms trap exactly like the closure tier; the [u] forms
   are emitted only under an elision proof. --- *)
let op_ld_f = 28            (* ld.f d arr i off                       *)
let op_ld_fu = 29           (* ld.fu d arr i off        [unguarded]   *)
let op_ld_i = 30            (* ld.i d arr i off                       *)
let op_ld_iu = 31           (* ld.iu d arr i off        [unguarded]   *)
let op_chk_f = 32           (* chk.f arr i off — bounds check only    *)
let op_chk_i = 33           (* chk.i arr i off                        *)
let op_st_f = 34            (* st.f arr i off a — unguarded store     *)
let op_st_i = 35            (* st.i arr i off a                       *)
let op_len_f = 36           (* len.f d arr                            *)
let op_len_i = 37           (* len.i d arr                            *)

(* --- math builtins --- *)
let op_sqrt = 38
let op_log = 39
let op_exp = 40
let op_fabs = 41
let op_floor = 42

(* --- fused superinstructions --- *)
let op_mulc_ld_fu = 43      (* d <- fpool[k] * arr[i+off] [unguarded] *)
let op_acc_ld_fu = 44       (* s += arr[i+off]            [unguarded] *)
let op_accmul_ld_ld_fu = 45 (* s += a1[i] * a2[j]         [unguarded] *)
let op_accmul_ld_ld_f = 46  (* s += a1[i] * a2[j], both guarded       *)
let op_ldst_add_fu = 47     (* arr[i+off] += floats[a]    [unguarded] *)
let op_ldst_add_iu = 48     (* arr[i+off] += ints[a]      [unguarded] *)
let op_recover = 49         (* a <- b + ((iv / c) % d) * imm — the
                               collapse(n) counter-recovery statement;
                               traps like div.i then mod.i            *)

let n_ops = 50

(* Comparison condition codes for cmp/cmpbr. *)
let cc_lt = 0
let cc_le = 1
let cc_gt = 2
let cc_ge = 3
let cc_eq = 4
let cc_ne = 5

let cc_name = function
  | 0 -> "lt" | 1 -> "le" | 2 -> "gt" | 3 -> "ge" | 4 -> "eq" | 5 -> "ne"
  | _ -> "??"

(* ------------------------------------------------------------------ *)
(* Program representation.                                             *)

(** A captured frame slot loaded into a register at drain entry and —
    when the body writes it — stored back at drain exit. *)
type cap = {
  slot : int;                 (** frame slot in the enclosing function *)
  reg : int;                  (** register in the bank given by [ckind] *)
  ckind : [ `I | `F | `B ];   (** observed value shape at specialisation *)
  written : bool;
  cname : string;
}

(** An array the body indexes: the frame slot holding it (or a pointer
    to it when [deref]), resolved into a bank entry at drain entry. *)
type base = {
  bslot : int;
  deref : bool;
  bname : string;
}

(** One per-chunk elision proof obligation: with the chunk's counter
    range [first..last], every elided access [bank[arr][iv + c]],
    [c] in [[c_min, c_max]], is in range
    ({!Omp_model.Subscript.in_range}).  All checks passing selects
    [code]; any failure selects the guarded twin [gcode]. *)
type check = {
  kbank : [ `F | `I ];
  karr : int;                 (** index into the bank's base table *)
  c_min : int;
  c_max : int;
}

type program = {
  code : int array;           (** elided variant (equals [gcode] when
                                  nothing was elided)                 *)
  gcode : int array;          (** fully guarded variant               *)
  fpool : float array;        (** float constant pool                 *)
  nints : int;                (** int/bool register file size         *)
  nfloats : int;              (** float register file size            *)
  iv_reg : int;               (** int register of the loop counter    *)
  upper_reg : int;            (** int register of the chunk's upper   *)
  tid_reg : int;              (** thread-num register, -1 if unused   *)
  ntd_reg : int;              (** num-threads register, -1 if unused  *)
  caps : cap array;
  fbases : base array;        (** float-array bank                    *)
  ibases : base array;        (** int-array bank                      *)
  hoisted : (int * [ `I | `F ] * int) array;
                              (** (slot, bank, reg): scalar pointer
                                  dereferences hoisted to entry       *)
  checks : check array;
  ivslot : int;               (** frame slot of the counter           *)
  step : int;                 (** literal loop step                   *)
  ireg_names : string array;  (** per-register names, for listings    *)
  freg_names : string array;
  lines : int array;          (** source line per instruction of
                                  [code] (preprocessed source)        *)
  glines : int array;         (** same for [gcode]                    *)
}

(* ------------------------------------------------------------------ *)
(* Disassembler.                                                       *)

let opcode_name = function
  | 0 -> "halt" | 1 -> "jmp" | 2 -> "brz"
  | 3 -> "cmpbr.ii" | 4 -> "cmpbr.ff"
  | 5 -> "addcmple.br" | 6 -> "addcmpge.br"
  | 7 -> "mov.i" | 8 -> "mov.f" | 9 -> "ldc.i" | 10 -> "ldc.f"
  | 11 -> "add.i" | 12 -> "sub.i" | 13 -> "mul.i" | 14 -> "div.i"
  | 15 -> "mod.i" | 16 -> "neg.i" | 17 -> "not.b"
  | 18 -> "add.f" | 19 -> "sub.f" | 20 -> "mul.f" | 21 -> "div.f"
  | 22 -> "mod.f" | 23 -> "neg.f"
  | 24 -> "i2f" | 25 -> "f2i"
  | 26 -> "cmp.ii" | 27 -> "cmp.ff"
  | 28 -> "ld.f" | 29 -> "ld.fu" | 30 -> "ld.i" | 31 -> "ld.iu"
  | 32 -> "chk.f" | 33 -> "chk.i" | 34 -> "st.f" | 35 -> "st.i"
  | 36 -> "len.f" | 37 -> "len.i"
  | 38 -> "sqrt" | 39 -> "log" | 40 -> "exp" | 41 -> "fabs" | 42 -> "floor"
  | 43 -> "mulc.ld.fu" | 44 -> "acc.ld.fu"
  | 45 -> "accmul.ld.ld.fu" | 46 -> "accmul.ld.ld.f"
  | 47 -> "ldst.add.fu" | 48 -> "ldst.add.iu"
  | 49 -> "recover"
  | _ -> "???"

let unguarded_op op =
  op = op_ld_fu || op = op_ld_iu || op = op_st_f || op = op_st_i
  || op = op_mulc_ld_fu || op = op_acc_ld_fu || op = op_accmul_ld_ld_fu
  || op = op_ldst_add_fu || op = op_ldst_add_iu

let reg_name names bank r =
  if r >= 0 && r < Array.length names && names.(r) <> "" then
    Printf.sprintf "%s%d{%s}" bank r names.(r)
  else Printf.sprintf "%s%d" bank r

(** Render one instruction at [pc] (a multiple of {!width}). *)
let disasm_instr (p : program) code lines pc =
  let op = code.(pc) in
  let a = code.(pc + 1) and b = code.(pc + 2) and c = code.(pc + 3)
  and d = code.(pc + 4) in
  let ir = reg_name p.ireg_names "i" in
  let fr = reg_name p.freg_names "f" in
  let farr k = p.fbases.(k).bname and iarr k = p.ibases.(k).bname in
  let off k = if k = 0 then "" else Printf.sprintf "%+d" k in
  let body =
    match op with
    | 0 -> "halt"
    | 1 -> Printf.sprintf "jmp @%d" a
    | 2 -> Printf.sprintf "brz %s, @%d" (ir a) b
    | 3 -> Printf.sprintf "cmpbr.ii !%s %s, %s, @%d" (cc_name a) (ir b)
             (ir c) d
    | 4 -> Printf.sprintf "cmpbr.ff !%s %s, %s, @%d" (cc_name a) (fr b)
             (fr c) d
    | 5 -> Printf.sprintf "addcmple.br %s += %d, <= %s, @%d" (ir a) b
             (ir c) d
    | 6 -> Printf.sprintf "addcmpge.br %s += %d, >= %s, @%d" (ir a) b
             (ir c) d
    | 7 -> Printf.sprintf "mov.i %s, %s" (ir a) (ir b)
    | 8 -> Printf.sprintf "mov.f %s, %s" (fr a) (fr b)
    | 9 -> Printf.sprintf "ldc.i %s, %d" (ir a) b
    | 10 -> Printf.sprintf "ldc.f %s, %.17g" (fr a) p.fpool.(b)
    | 11 | 12 | 13 | 14 | 15 ->
        Printf.sprintf "%s %s, %s, %s" (opcode_name op) (ir a) (ir b) (ir c)
    | 16 | 17 -> Printf.sprintf "%s %s, %s" (opcode_name op) (ir a) (ir b)
    | 18 | 19 | 20 | 21 | 22 ->
        Printf.sprintf "%s %s, %s, %s" (opcode_name op) (fr a) (fr b) (fr c)
    | 23 -> Printf.sprintf "neg.f %s, %s" (fr a) (fr b)
    | 24 -> Printf.sprintf "i2f %s, %s" (fr a) (ir b)
    | 25 -> Printf.sprintf "f2i %s, %s" (ir a) (fr b)
    | 26 -> Printf.sprintf "cmp.ii.%s %s, %s, %s" (cc_name a) (ir b) (ir c)
              (ir d)
    | 27 -> Printf.sprintf "cmp.ff.%s %s, %s, %s" (cc_name a) (ir b) (fr c)
              (fr d)
    | 28 | 29 ->
        Printf.sprintf "%s %s, %s[%s%s]" (opcode_name op) (fr a) (farr b)
          (ir c) (off d)
    | 30 | 31 ->
        Printf.sprintf "%s %s, %s[%s%s]" (opcode_name op) (ir a) (iarr b)
          (ir c) (off d)
    | 32 -> Printf.sprintf "chk.f %s[%s%s]" (farr a) (ir b) (off c)
    | 33 -> Printf.sprintf "chk.i %s[%s%s]" (iarr a) (ir b) (off c)
    | 34 -> Printf.sprintf "st.f %s[%s%s], %s" (farr a) (ir b) (off c) (fr d)
    | 35 -> Printf.sprintf "st.i %s[%s%s], %s" (iarr a) (ir b) (off c) (ir d)
    | 36 -> Printf.sprintf "len.f %s, %s" (ir a) (farr b)
    | 37 -> Printf.sprintf "len.i %s, %s" (ir a) (iarr b)
    | 38 | 39 | 40 | 41 | 42 ->
        Printf.sprintf "%s %s, %s" (opcode_name op) (fr a) (fr b)
    | 43 ->
        Printf.sprintf "mulc.ld.fu %s, %.17g * %s[%s%s]" (fr a) p.fpool.(d)
          (farr b) (ir c) (off code.(pc + 5))
    | 44 ->
        Printf.sprintf "acc.ld.fu %s += %s[%s%s]" (fr a) (farr b) (ir c)
          (off d)
    | 45 | 46 ->
        Printf.sprintf "%s %s += %s[%s] * %s[%s]" (opcode_name op) (fr a)
          (farr b) (ir c) (farr d) (ir code.(pc + 5))
    | 47 ->
        Printf.sprintf "ldst.add.fu %s[%s%s] += %s" (farr a) (ir b) (off c)
          (fr d)
    | 48 ->
        Printf.sprintf "ldst.add.iu %s[%s%s] += %s" (iarr a) (ir b) (off c)
          (ir d)
    | 49 ->
        Printf.sprintf "recover %s, %s + ((%s / %s) %% %s) * %d" (ir a)
          (ir b) (ir p.iv_reg) (ir c) (ir d) code.(pc + 5)
    | _ -> "???"
  in
  Printf.sprintf "  @%-4d L%-4d %s%s" pc lines.(pc / width) body
    (if unguarded_op op then "   [unguarded]" else "")

let disasm_code p code lines =
  let b = Buffer.create 512 in
  let n = Array.length code / width in
  for k = 0 to n - 1 do
    Buffer.add_string b (disasm_instr p code lines (k * width));
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(** The full listing: register plan, entry loads, per-chunk elision
    checks, then the elided and (when different) guarded code. *)
let disasm (p : program) : string =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "registers: %d int (iv=i%d, upper=i%d), %d float\n" p.nints p.iv_reg
    p.upper_reg p.nfloats;
  Array.iter
    (fun (c : cap) ->
      add "  cap  %s%d <- slot %d '%s'%s\n"
        (match c.ckind with `F -> "f" | `I | `B -> "i")
        c.reg c.slot c.cname
        (if c.written then "  [written back]" else ""))
    p.caps;
  Array.iter
    (fun (h : (int * [ `I | `F ] * int)) ->
      let slot, bank, reg = h in
      add "  deref %s%d <- slot %d (hoisted: loop-invariant)\n"
        (match bank with `F -> "f" | `I -> "i") reg slot)
    p.hoisted;
  Array.iteri
    (fun k (bs : base) ->
      add "  farr %d <- slot %d '%s'%s\n" k bs.bslot bs.bname
        (if bs.deref then " (deref)" else ""))
    p.fbases;
  Array.iteri
    (fun k (bs : base) ->
      add "  iarr %d <- slot %d '%s'%s\n" k bs.bslot bs.bname
        (if bs.deref then " (deref)" else ""))
    p.ibases;
  if p.tid_reg >= 0 then add "  tid  i%d <- omp.get_thread_num()\n" p.tid_reg;
  if p.ntd_reg >= 0 then
    add "  ntd  i%d <- omp.get_num_threads()\n" p.ntd_reg;
  if Array.length p.checks = 0 then
    add "chunk check: none (no elision)\n"
  else begin
    add "chunk check (all pass => elided code, else guarded):\n";
    Array.iter
      (fun (c : check) ->
        let name =
          match c.kbank with
          | `F -> p.fbases.(c.karr).bname
          | `I -> p.ibases.(c.karr).bname
        in
        add "  %s[iv%+d .. iv%+d] in range over the chunk\n" name c.c_min
          c.c_max)
      p.checks
  end;
  add "code (elided):\n";
  Buffer.add_string b (disasm_code p p.code p.lines);
  if p.code != p.gcode then begin
    add "code (guarded twin):\n";
    Buffer.add_string b (disasm_code p p.gcode p.glines)
  end;
  Buffer.contents b

(** The bytecode dispatch loop and the drain-entry / chunk / writeback
    lifecycle around it ({!Bc}, {!Bcgen}).

    A drain execution calls {!enter} once: it observes the shapes of
    the captured slots, specialises (or reuses the cached program),
    and binds a {!state} — register files sized for the program,
    captures and hoisted dereferences loaded, array bases resolved
    into the per-bank tables.  Each claimed chunk then runs through
    {!run_chunk}; after the last chunk {!writeback} restores the
    written captures and the counter into the frame.  Any runtime
    error raises {!Value.Runtime_error} out of the dispatch loop
    without writing back — safe because each thread owns its outlined
    frame, so a half-updated register file is unobservable after the
    unwind, exactly like the closure tier's abandoned locals.

    [Array.unsafe_*] discipline: [code] indices come from the emitter
    (always in range by construction), register indices from the
    allocator; user arrays are touched unsafely only by the [*u]
    opcodes, which {!Bcgen} emits strictly under a per-chunk
    {!Omp_model.Subscript.in_range} proof, and by the plain store
    opcodes, which are always preceded by an emitted check or covered
    by the same proof. *)

module V = Value

type state = {
  prog : Bc.program;
  ints : int array;
  floats : float array;
  farrs : float array array;
  iarrs : int array array;
}

(* A hoisted read (scalar dereference, or an array reached through a
   pointer) is loop-invariant only when the body provably cannot move
   what it points at: variable cells and other frames' slots are fine
   (this body writes neither — writes through pointers bail at plan
   time), but a slot of *this* frame or an array element could be
   written between iterations by the body itself. *)
let ptr_hoistable (fr : V.t array) = function
  | V.PVar _ -> true
  | V.PSlot (fr', _) -> fr' != fr
  | V.PElemF _ | V.PElemI _ -> false

exception Shape

(* ------------------------------------------------------------------ *)
(* Entry: observe, specialise-or-reuse, validate, bind.                *)

let observe_caps (plan : Bcgen.plan) fr =
  Array.map
    (fun (slot, _) ->
      match fr.(slot) with
      | V.VInt _ -> `I
      | V.VFloat _ -> `F
      | V.VBool _ -> `B
      | _ -> raise Shape)
    plan.Bcgen.caps

(* Resolve each indexed base to its runtime array (through the pointer
   when the base is a dereference). *)
let observe_bases (plan : Bcgen.plan) fr =
  Array.map
    (fun (slot, deref, _) ->
      let v =
        if deref then
          match fr.(slot) with
          | V.VPtr p when ptr_hoistable fr p -> Rt.ptr_read p
          | _ -> raise Shape
        else fr.(slot)
      in
      match v with
      | V.VFloatArr a -> `FA a
      | V.VIntArr a -> `IA a
      | _ -> raise Shape)
    plan.Bcgen.ubases

let observe_derefs (plan : Bcgen.plan) fr =
  Array.map
    (fun (slot, _) ->
      match fr.(slot) with
      | V.VPtr p when ptr_hoistable fr p -> (
          match Rt.ptr_read p with
          | V.VInt i -> `DI i
          | V.VFloat x -> `DF x
          | _ -> raise Shape)
      | _ -> raise Shape)
    plan.Bcgen.uderefs

let enter (plan : Bcgen.plan) (fr : V.t array) : state option =
  match Atomic.get plan.Bcgen.cache with
  | Bcgen.Cfail -> None
  | cached -> (
      match
        let ckinds = observe_caps plan fr in
        let bvals = observe_bases plan fr in
        let dvals = observe_derefs plan fr in
        let bbanks =
          Array.map (function `FA _ -> `F | `IA _ -> `I) bvals
        in
        let dkinds = Array.map (function `DI _ -> `I | `DF _ -> `F) dvals in
        let prog =
          match cached with
          | Bcgen.Cprog p -> Some p
          | Bcgen.Cfail -> None
          | Bcgen.Cnone -> (
              match Bcgen.specialize plan ~ckinds ~bbanks ~dkinds with
              | Some p ->
                  if
                    Atomic.compare_and_set plan.Bcgen.cache Bcgen.Cnone
                      (Bcgen.Cprog p)
                  then begin
                    plan.Bcgen.on_spec p;
                    Some p
                  end
                  else (
                    (* lost the race: use the winner's program (it will
                       be validated against our shapes below) *)
                    match Atomic.get plan.Bcgen.cache with
                    | Bcgen.Cprog p' -> Some p'
                    | _ -> None)
              | None ->
                  ignore
                    (Atomic.compare_and_set plan.Bcgen.cache Bcgen.Cnone
                       Bcgen.Cfail);
                  None)
        in
        match prog with
        | None -> None
        | Some p ->
            (* validate this execution's shapes against the cached
               specialisation; a mismatch bails without respecialising *)
            Array.iteri
              (fun c k -> if p.Bc.caps.(c).Bc.ckind <> k then raise Shape)
              ckinds;
            if Array.length p.Bc.hoisted <> Array.length dkinds then
              raise Shape;
            Array.iteri
              (fun d k ->
                let _, bank, _ = p.Bc.hoisted.(d) in
                if bank <> k then raise Shape)
              dkinds;
            let nfb = Array.length p.Bc.fbases
            and nib = Array.length p.Bc.ibases in
            let farrs = Array.make nfb [||] in
            let iarrs = Array.make nib [||] in
            let fi = ref 0 and ii = ref 0 in
            Array.iter
              (function
                | `FA a ->
                    if !fi >= nfb then raise Shape;
                    farrs.(!fi) <- a;
                    incr fi
                | `IA a ->
                    if !ii >= nib then raise Shape;
                    iarrs.(!ii) <- a;
                    incr ii)
              bvals;
            if !fi <> nfb || !ii <> nib then raise Shape;
            let ints = Array.make (max p.Bc.nints 1) 0 in
            let floats = Array.make (max p.Bc.nfloats 1) 0.0 in
            Array.iter
              (fun (c : Bc.cap) ->
                match (fr.(c.Bc.slot), c.Bc.ckind) with
                | V.VInt i, `I -> ints.(c.Bc.reg) <- i
                | V.VFloat x, `F -> floats.(c.Bc.reg) <- x
                | V.VBool b, `B -> ints.(c.Bc.reg) <- (if b then 1 else 0)
                | _ -> raise Shape)
              p.Bc.caps;
            Array.iteri
              (fun d (h : int * [ `I | `F ] * int) ->
                let _, bank, reg = h in
                match (dvals.(d), bank) with
                | `DI i, `I -> ints.(reg) <- i
                | `DF x, `F -> floats.(reg) <- x
                | _ -> raise Shape)
              p.Bc.hoisted;
            if p.Bc.tid_reg >= 0 then
              ints.(p.Bc.tid_reg) <- Omprt.Api.get_thread_num ();
            if p.Bc.ntd_reg >= 0 then
              ints.(p.Bc.ntd_reg) <- Omprt.Api.get_num_threads ();
            Some { prog = p; ints; floats; farrs; iarrs }
      with
      | st -> st
      | exception Shape -> None)

(* ------------------------------------------------------------------ *)
(* The dispatch loop.                                                  *)

let[@inline] oob idx len = V.err "index %d out of bounds (len %d)" idx len

let exec (p : Bc.program) (st : state) (code : int array) =
  let ints = st.ints and floats = st.floats in
  let farrs = st.farrs and iarrs = st.iarrs in
  let fpool = p.Bc.fpool in
  let ivr = p.Bc.iv_reg in
  let pc = ref 0 in
  (try
     while true do
       let base = !pc in
       let op = Array.unsafe_get code base in
       let a = Array.unsafe_get code (base + 1)
       and b = Array.unsafe_get code (base + 2)
       and c = Array.unsafe_get code (base + 3)
       and d = Array.unsafe_get code (base + 4) in
       pc := base + Bc.width;
       match op with
       | 0 (* halt *) -> raise_notrace Exit
       | 1 (* jmp *) -> pc := a
       | 2 (* brz *) -> if Array.unsafe_get ints a = 0 then pc := b
       | 3 (* cmpbr.ii: branch if NOT cc *) ->
           let x = Array.unsafe_get ints b
           and y = Array.unsafe_get ints c in
           let holds =
             match a with
             | 0 -> x < y | 1 -> x <= y | 2 -> x > y | 3 -> x >= y
             | 4 -> x = y | _ -> x <> y
           in
           if not holds then pc := d
       | 4 (* cmpbr.ff *) ->
           (* Float.compare, not IEEE: the closure tier's polymorphic
              compare orders NaN totally, and parity wins over speed *)
           let r =
             Float.compare (Array.unsafe_get floats b)
               (Array.unsafe_get floats c)
           in
           let holds =
             match a with
             | 0 -> r < 0 | 1 -> r <= 0 | 2 -> r > 0 | 3 -> r >= 0
             | 4 -> r = 0 | _ -> r <> 0
           in
           if not holds then pc := d
       | 5 (* addcmple.br *) ->
           let iv = Array.unsafe_get ints a + b in
           Array.unsafe_set ints a iv;
           if iv <= Array.unsafe_get ints c then pc := d
       | 6 (* addcmpge.br *) ->
           let iv = Array.unsafe_get ints a + b in
           Array.unsafe_set ints a iv;
           if iv >= Array.unsafe_get ints c then pc := d
       | 7 (* mov.i *) -> Array.unsafe_set ints a (Array.unsafe_get ints b)
       | 8 (* mov.f *) ->
           Array.unsafe_set floats a (Array.unsafe_get floats b)
       | 9 (* ldc.i *) -> Array.unsafe_set ints a b
       | 10 (* ldc.f *) ->
           Array.unsafe_set floats a (Array.unsafe_get fpool b)
       | 11 ->
           Array.unsafe_set ints a
             (Array.unsafe_get ints b + Array.unsafe_get ints c)
       | 12 ->
           Array.unsafe_set ints a
             (Array.unsafe_get ints b - Array.unsafe_get ints c)
       | 13 ->
           Array.unsafe_set ints a
             (Array.unsafe_get ints b * Array.unsafe_get ints c)
       | 14 (* div.i *) ->
           let den = Array.unsafe_get ints c in
           if den = 0 then V.err "integer division by zero";
           Array.unsafe_set ints a (Array.unsafe_get ints b / den)
       | 15 (* mod.i *) ->
           let den = Array.unsafe_get ints c in
           if den = 0 then V.err "integer modulo by zero";
           Array.unsafe_set ints a (Array.unsafe_get ints b mod den)
       | 16 (* neg.i *) -> Array.unsafe_set ints a (-Array.unsafe_get ints b)
       | 17 (* not.b *) ->
           Array.unsafe_set ints a (1 - Array.unsafe_get ints b)
       | 18 ->
           Array.unsafe_set floats a
             (Array.unsafe_get floats b +. Array.unsafe_get floats c)
       | 19 ->
           Array.unsafe_set floats a
             (Array.unsafe_get floats b -. Array.unsafe_get floats c)
       | 20 ->
           Array.unsafe_set floats a
             (Array.unsafe_get floats b *. Array.unsafe_get floats c)
       | 21 ->
           Array.unsafe_set floats a
             (Array.unsafe_get floats b /. Array.unsafe_get floats c)
       | 22 (* mod.f *) ->
           Array.unsafe_set floats a
             (Float.rem (Array.unsafe_get floats b)
                (Array.unsafe_get floats c))
       | 23 (* neg.f *) ->
           Array.unsafe_set floats a (-.Array.unsafe_get floats b)
       | 24 (* i2f *) ->
           Array.unsafe_set floats a (float_of_int (Array.unsafe_get ints b))
       | 25 (* f2i *) ->
           Array.unsafe_set ints a (int_of_float (Array.unsafe_get floats b))
       | 26 (* cmp.ii *) ->
           let x = Array.unsafe_get ints c
           and y = Array.unsafe_get ints d in
           let holds =
             match a with
             | 0 -> x < y | 1 -> x <= y | 2 -> x > y | 3 -> x >= y
             | 4 -> x = y | _ -> x <> y
           in
           Array.unsafe_set ints b (if holds then 1 else 0)
       | 27 (* cmp.ff *) ->
           let r =
             Float.compare (Array.unsafe_get floats c)
               (Array.unsafe_get floats d)
           in
           let holds =
             match a with
             | 0 -> r < 0 | 1 -> r <= 0 | 2 -> r > 0 | 3 -> r >= 0
             | 4 -> r = 0 | _ -> r <> 0
           in
           Array.unsafe_set ints b (if holds then 1 else 0)
       | 28 (* ld.f *) ->
           let arr = Array.unsafe_get farrs b in
           let idx = Array.unsafe_get ints c + d in
           if idx < 0 || idx >= Array.length arr then
             oob idx (Array.length arr);
           Array.unsafe_set floats a (Array.unsafe_get arr idx)
       | 29 (* ld.fu *) ->
           Array.unsafe_set floats a
             (Array.unsafe_get
                (Array.unsafe_get farrs b)
                (Array.unsafe_get ints c + d))
       | 30 (* ld.i *) ->
           let arr = Array.unsafe_get iarrs b in
           let idx = Array.unsafe_get ints c + d in
           if idx < 0 || idx >= Array.length arr then
             oob idx (Array.length arr);
           Array.unsafe_set ints a (Array.unsafe_get arr idx)
       | 31 (* ld.iu *) ->
           Array.unsafe_set ints a
             (Array.unsafe_get
                (Array.unsafe_get iarrs b)
                (Array.unsafe_get ints c + d))
       | 32 (* chk.f *) ->
           let arr = Array.unsafe_get farrs a in
           let idx = Array.unsafe_get ints b + c in
           if idx < 0 || idx >= Array.length arr then
             oob idx (Array.length arr)
       | 33 (* chk.i *) ->
           let arr = Array.unsafe_get iarrs a in
           let idx = Array.unsafe_get ints b + c in
           if idx < 0 || idx >= Array.length arr then
             oob idx (Array.length arr)
       | 34 (* st.f — check already emitted or elision-proven *) ->
           Array.unsafe_set
             (Array.unsafe_get farrs a)
             (Array.unsafe_get ints b + c)
             (Array.unsafe_get floats d)
       | 35 (* st.i *) ->
           Array.unsafe_set
             (Array.unsafe_get iarrs a)
             (Array.unsafe_get ints b + c)
             (Array.unsafe_get ints d)
       | 36 (* len.f *) ->
           Array.unsafe_set ints a (Array.length (Array.unsafe_get farrs b))
       | 37 (* len.i *) ->
           Array.unsafe_set ints a (Array.length (Array.unsafe_get iarrs b))
       | 38 ->
           Array.unsafe_set floats a (sqrt (Array.unsafe_get floats b))
       | 39 -> Array.unsafe_set floats a (log (Array.unsafe_get floats b))
       | 40 -> Array.unsafe_set floats a (exp (Array.unsafe_get floats b))
       | 41 ->
           Array.unsafe_set floats a (Float.abs (Array.unsafe_get floats b))
       | 42 ->
           Array.unsafe_set floats a
             (Float.floor (Array.unsafe_get floats b))
       | 43 (* mulc.ld.fu *) ->
           let off = Array.unsafe_get code (base + 5) in
           Array.unsafe_set floats a
             (Array.unsafe_get fpool d
             *. Array.unsafe_get
                  (Array.unsafe_get farrs b)
                  (Array.unsafe_get ints c + off))
       | 44 (* acc.ld.fu *) ->
           Array.unsafe_set floats a
             (Array.unsafe_get floats a
             +. Array.unsafe_get
                  (Array.unsafe_get farrs b)
                  (Array.unsafe_get ints c + d))
       | 45 (* accmul.ld.ld.fu *) ->
           let i2r = Array.unsafe_get code (base + 5) in
           Array.unsafe_set floats a
             (Array.unsafe_get floats a
             +. Array.unsafe_get
                  (Array.unsafe_get farrs b)
                  (Array.unsafe_get ints c)
                *. Array.unsafe_get
                     (Array.unsafe_get farrs d)
                     (Array.unsafe_get ints i2r))
       | 46 (* accmul.ld.ld.f — both guarded, first array first *) ->
           let i2r = Array.unsafe_get code (base + 5) in
           let a1 = Array.unsafe_get farrs b in
           let i1 = Array.unsafe_get ints c in
           if i1 < 0 || i1 >= Array.length a1 then oob i1 (Array.length a1);
           let a2 = Array.unsafe_get farrs d in
           let i2 = Array.unsafe_get ints i2r in
           if i2 < 0 || i2 >= Array.length a2 then oob i2 (Array.length a2);
           Array.unsafe_set floats a
             (Array.unsafe_get floats a
             +. (Array.unsafe_get a1 i1 *. Array.unsafe_get a2 i2))
       | 47 (* ldst.add.fu *) ->
           let arr = Array.unsafe_get farrs a in
           let idx = Array.unsafe_get ints b + c in
           Array.unsafe_set arr idx
             (Array.unsafe_get arr idx +. Array.unsafe_get floats d)
       | 48 (* ldst.add.iu *) ->
           let arr = Array.unsafe_get iarrs a in
           let idx = Array.unsafe_get ints b + c in
           Array.unsafe_set arr idx
             (Array.unsafe_get arr idx + Array.unsafe_get ints d)
       | 49 (* recover: a <- b + ((iv / c) % d) * imm *) ->
           let dv = Array.unsafe_get ints c in
           if dv = 0 then V.err "integer division by zero";
           let nv = Array.unsafe_get ints d in
           if nv = 0 then V.err "integer modulo by zero";
           let s = Array.unsafe_get code (base + 5) in
           Array.unsafe_set ints a
             (Array.unsafe_get ints b
             + (Array.unsafe_get ints ivr / dv mod nv * s))
       | _ -> V.err "bytecode: invalid opcode %d" op
     done
   with Exit -> ())

(* ------------------------------------------------------------------ *)
(* Per-chunk driver and exit.                                          *)

(** Run one claimed chunk, counter range [lower..upper] (the loop's own
    direction).  Selects the elided variant when every per-chunk
    subscript interval is proven in range — the same
    {!Omp_model.Subscript} arithmetic {!Analyze.Depend} uses for its
    PROVEN dependence verdicts — and the guarded twin otherwise. *)
let run_chunk (st : state) ~lower ~upper =
  let p = st.prog in
  st.ints.(p.Bc.iv_reg) <- lower;
  st.ints.(p.Bc.upper_reg) <- upper;
  let code =
    if Array.length p.Bc.checks = 0 then p.Bc.code
    else if
      Array.for_all
        (fun (c : Bc.check) ->
          let len =
            match c.Bc.kbank with
            | `F -> Array.length st.farrs.(c.Bc.karr)
            | `I -> Array.length st.iarrs.(c.Bc.karr)
          in
          Omp_model.Subscript.in_range ~first:lower ~last:upper ~len
            c.Bc.c_min c.Bc.c_max)
        p.Bc.checks
    then begin
      Omprt.Profile.bc_elided_tick ();
      p.Bc.code
    end
    else p.Bc.gcode
  in
  exec p st code

(** Restore the written captures and the counter.  Called once per
    drain execution, after the last chunk; skipped (by unwinding) on a
    runtime error, like the closure tier's abandoned frame. *)
let writeback (st : state) (fr : V.t array) =
  let p = st.prog in
  Array.iter
    (fun (c : Bc.cap) ->
      if c.Bc.written then
        fr.(c.Bc.slot) <-
          (match c.Bc.ckind with
           | `I -> V.VInt st.ints.(c.Bc.reg)
           | `F -> V.VFloat st.floats.(c.Bc.reg)
           | `B -> V.VBool (st.ints.(c.Bc.reg) <> 0)))
    p.Bc.caps;
  fr.(p.Bc.ivslot) <- V.VInt st.ints.(p.Bc.iv_reg)

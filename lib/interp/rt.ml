(** Runtime core shared by the two execution backends.

    The tree-walking evaluator ({!Interp}) and the staged closure
    compiler ({!Compile}) must agree exactly on program state and value
    semantics: the loaded-program record, global storage (including
    [threadprivate] per-thread cells), the int/float coercing arithmetic,
    value comparison, and pointer access.  Keeping those here — below
    both backends in the module graph — is what lets the differential
    test suite demand bit-identical outputs from them. *)

open Zr

exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

(** Storage for a global: ordinary shared cell, or per-thread cells for
    [threadprivate] globals (keyed by domain id; thread 0 of every team
    is the encountering domain, so its copy persists across regions as
    the OpenMP persistence rules describe). *)
type slot =
  | Plain of Value.t ref
  | Tls of { init : Value.t;
             cells : (int, Value.t ref) Hashtbl.t;
             mutex : Mutex.t }

type program = {
  ast : Ast.t;
  fns : (string, int) Hashtbl.t;          (* name -> Fn_decl node *)
  globals : (string, slot) Hashtbl.t;
  preprocessed : string;                   (* the final source text *)
}

(* ------------------------------------------------------------------ *)
(* Checker hooks.

   The race checker ({!Check}) runs programs on cooperative virtual
   threads and needs to observe every shared-reachable memory access and
   key thread identity off the virtual thread rather than the domain.
   Both hooks are no-ops unless a checker session installs them, so the
   two production backends pay one ref read per instrumented site at
   most. *)

(** A traced memory location: a variable cell reached through a global
    or a pointer, or an element of a shared array. *)
type access =
  | Acell of Value.t ref
  | Afelem of float array * int
  | Aielem of int array * int

type tracer = {
  trace : rw:[ `R | `W ] -> access -> off:int -> hint:string -> unit;
      (** [off] is the byte offset of the access site in the
          preprocessed source; [hint] a best-effort variable name. *)
}

let tracer : tracer option ref = ref None

(* The operator of a compound assignment ([+=] etc.), noted by the tree
   walker immediately before the write event it belongs to; the checker
   consumes it to phrase clause suggestions.  Only written when a tracer
   is installed (single-domain), so there is no cross-domain race. *)
let pending_op : string option ref = ref None

(* Ordinary locals are thread-private, so the walker leaves them
   untraced — except when [&] takes a local's cell, which is exactly
   how the outliner lets a deferred task alias its creator's variable.
   The walker registers every cell that escapes through [&] here while
   a tracer is installed, and then traces {e direct} accesses to a
   registered cell like any shared location (the pointer side is
   already traced through [Deref]).  The list stays tiny — one entry
   per distinct escaped local — and both hooks are no-ops without a
   tracer. *)
let escaped : Value.t ref list ref = ref []

let note_escape (r : Value.t ref) =
  if !tracer <> None && not (List.memq r !escaped) then
    escaped := r :: !escaped

let is_escaped (r : Value.t ref) = !tracer <> None && List.memq r !escaped

(** Key for [threadprivate] storage: the domain id in production, the
    virtual-thread id under the checker. *)
let tls_key : (unit -> int) ref = ref (fun () -> (Domain.self () :> int))

let slot_cell = function
  | Plain r -> r
  | Tls t ->
      let key = !tls_key () in
      Mutex.lock t.mutex;
      let cell =
        match Hashtbl.find_opt t.cells key with
        | Some c -> c
        | None ->
            let c = ref t.init in
            Hashtbl.add t.cells key c;
            c
      in
      Mutex.unlock t.mutex;
      cell

let err = Value.err

(* ------------------------------------------------------------------ *)
(* Arithmetic with int/float coercion.                                 *)

let arith op_i op_f a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> Value.VInt (op_i x y)
  | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) ->
      Value.VFloat (op_f (Value.to_float a) (Value.to_float b))
  | _ ->
      err "arithmetic on %s and %s" (Value.type_name a) (Value.type_name b)

(* The individual operators, spelled out so the compiled backend's hot
   paths hit a direct call with the int/int match first. *)

let add a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> Value.VInt (x + y)
  | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) ->
      Value.VFloat (Value.to_float a +. Value.to_float b)
  | _ ->
      err "arithmetic on %s and %s" (Value.type_name a) (Value.type_name b)

let sub a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> Value.VInt (x - y)
  | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) ->
      Value.VFloat (Value.to_float a -. Value.to_float b)
  | _ ->
      err "arithmetic on %s and %s" (Value.type_name a) (Value.type_name b)

let mul a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> Value.VInt (x * y)
  | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) ->
      Value.VFloat (Value.to_float a *. Value.to_float b)
  | _ ->
      err "arithmetic on %s and %s" (Value.type_name a) (Value.type_name b)

let div a b =
  match a, b with
  | Value.VInt _, Value.VInt 0 -> err "integer division by zero"
  | Value.VInt x, Value.VInt y -> Value.VInt (x / y)
  | _ -> Value.VFloat (Value.to_float a /. Value.to_float b)

let modulo a b =
  match a, b with
  | Value.VInt _, Value.VInt 0 -> err "integer modulo by zero"
  | Value.VInt x, Value.VInt y -> Value.VInt (x mod y)
  | _ -> Value.VFloat (Float.rem (Value.to_float a) (Value.to_float b))

(* [/=] always divides as floats; the divisor converts first, matching
   the tree walker's evaluation order for the compound assignment. *)
let div_assign cur rhs =
  let d = Value.to_float rhs in
  Value.VFloat (Value.to_float cur /. d)

let compare_vals a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> compare x y
  | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) ->
      compare (Value.to_float a) (Value.to_float b)
  | Value.VBool x, Value.VBool y -> compare x y
  | Value.VStr x, Value.VStr y -> compare x y
  | _ ->
      err "comparison of %s and %s" (Value.type_name a) (Value.type_name b)

(* ------------------------------------------------------------------ *)
(* Pointers.                                                           *)

let ptr_read = function
  | Value.PVar r -> !r
  | Value.PSlot (fr, i) -> fr.(i)
  | Value.PElemF (a, i) -> Value.VFloat a.(i)
  | Value.PElemI (a, i) -> Value.VInt a.(i)

let ptr_write p v =
  match p with
  | Value.PVar r -> r := v
  | Value.PSlot (fr, i) -> fr.(i) <- v
  | Value.PElemF (a, i) -> a.(i) <- Value.to_float v
  | Value.PElemI (a, i) -> a.(i) <- Value.to_int v

(** Runtime values of the Zr interpreter.

    Zr is interpreted dynamically: types in the source are checked only
    to the extent operations require (Zig's debug-mode safety checks are
    the inspiration — misuse traps with a located error instead of
    undefined behaviour).  The extra constructors beyond the surface
    language carry the OpenMP machinery: atomic reduction cells (the
    paper's Zig [std.atomic] values) and worksharing dispatcher
    handles. *)

type t =
  | VUnit
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VUndef                       (** Zig's [undefined] *)
  | VFloatArr of float array
  | VIntArr of int array
  | VStruct of (string * t) list (** anonymous struct literal *)
  | VPtr of ptr
  | VFun of string               (** function designator *)
  | VAtomicF of Omprt.Atomics.Float.t
  | VAtomicI of Omprt.Atomics.Int.t
  | VDispatch of dispatch_handle

and ptr =
  | PVar of t ref                (** address of a variable cell *)
  | PSlot of t array * int       (** address of a compiled-frame slot *)
  | PElemF of float array * int
  | PElemI of int array * int

(** Handle for the generated dispatch-next protocol: either the team's
    shared dispatcher or this thread's private static-chunk list. *)
and dispatch_handle =
  | Shared of Omprt.Kmpc.dispatcher
  | Chunked of (int * int) list ref  (* user-space inclusive bounds *)

exception Runtime_error of string

let err fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

let type_name = function
  | VUnit -> "void" | VInt _ -> "int" | VFloat _ -> "float"
  | VBool _ -> "bool" | VStr _ -> "string" | VUndef -> "undefined"
  | VFloatArr _ -> "[]f64" | VIntArr _ -> "[]i64"
  | VStruct _ -> "struct" | VPtr _ -> "pointer" | VFun _ -> "fn"
  | VAtomicF _ -> "atomic f64" | VAtomicI _ -> "atomic i64"
  | VDispatch _ -> "dispatch handle"

let to_float = function
  | VFloat f -> f
  | VInt i -> float_of_int i
  | VUndef -> err "use of undefined value where a number is required"
  | v -> err "expected a number, found %s" (type_name v)

let to_int = function
  | VInt i -> i
  | VFloat f -> int_of_float f
  | VUndef -> err "use of undefined value where an integer is required"
  | v -> err "expected an integer, found %s" (type_name v)

let to_bool = function
  | VBool b -> b
  | VUndef -> err "use of undefined value where a boolean is required"
  | v -> err "expected a boolean, found %s" (type_name v)

let struct_field fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> err "struct has no field '.%s'" name

let rec pp ppf = function
  | VUnit -> Format.pp_print_string ppf "void"
  | VInt i -> Format.pp_print_int ppf i
  | VFloat f -> Format.fprintf ppf "%.17g" f
  | VBool b -> Format.pp_print_bool ppf b
  | VStr s -> Format.pp_print_string ppf s
  | VUndef -> Format.pp_print_string ppf "undefined"
  | VFloatArr a -> Format.fprintf ppf "[]f64(len=%d)" (Array.length a)
  | VIntArr a -> Format.fprintf ppf "[]i64(len=%d)" (Array.length a)
  | VStruct fields ->
      Format.fprintf ppf ".{";
      List.iteri
        (fun i (n, v) ->
          if i > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf ".%s = %a" n pp v)
        fields;
      Format.fprintf ppf "}"
  | VPtr _ -> Format.pp_print_string ppf "<pointer>"
  | VFun f -> Format.fprintf ppf "<fn %s>" f
  | VAtomicF a -> Format.fprintf ppf "<atomic %g>" (Omprt.Atomics.Float.get a)
  | VAtomicI a -> Format.fprintf ppf "<atomic %d>" (Omprt.Atomics.Int.get a)
  | VDispatch _ -> Format.pp_print_string ppf "<dispatch>"

let to_string v = Format.asprintf "%a" pp v

(** Affine-subscript interval reasoning, shared between the static
    analyser and the bytecode codegen.

    The analyser's dependence pass ({!Analyze.Depend}) restricts
    subscript reasoning to the [counter + c] shapes its dataflow pass
    produces — the classical SIV battery.  The register-bytecode tier
    ({!Interp.Bc}) applies the *same* reasoning to elide bounds checks:
    an access [a[iv + c]] inside a worksharing loop is in range for a
    whole claimed chunk iff the interval the subscript sweeps over the
    chunk's counter range lies inside [0, len).  Keeping the interval
    arithmetic here — below both clients in the library graph — is what
    makes "the analyser's PROVEN verdicts and the codegen's elisions
    agree" a property of one function rather than two copies. *)

(** [touched ~first ~last c_min c_max] — the closed element interval
    swept by subscripts [iv + c], [c] in [[c_min, c_max]], as [iv]
    ranges over the closed interval spanned by [first] and [last] (in
    either order; a negative-step loop hands the bounds reversed). *)
let touched ~first ~last c_min c_max =
  let lo = min first last and hi = max first last in
  (lo + c_min, hi + c_max)

(** [in_range ~first ~last ~len c_min c_max] — every element touched by
    [iv + c], [c] in [[c_min, c_max]], [iv] between [first] and [last]
    inclusive, is a valid index of an array of length [len].  This is
    the guard-elision side condition: when it holds for a chunk, the
    unguarded opcodes cannot fault.  Written so that arithmetic
    overflow on pathological bounds fails safe (the guarded code path
    runs instead). *)
let in_range ~first ~last ~len c_min c_max =
  let lo, hi = touched ~first ~last c_min c_max in
  lo >= 0 && hi >= lo && hi < len

(** [affine_interval ~lb ~step ~trips c] — the element interval touched
    by [counter + c] over a whole counted loop: first iteration at
    [lb], [trips] iterations of stride [step].  [None] for an empty
    loop.  This is {!Analyze.Depend}'s whole-loop query; the bytecode
    tier asks the same question per chunk via {!in_range}. *)
let affine_interval ~lb ~step ~trips c =
  if trips <= 0 then None
  else
    let first = lb + c and last = lb + ((trips - 1) * step) + c in
    Some (min first last, max first last)

(** [affine_hits ~lb ~step ~trips c k] — whether constant element [k]
    is ever touched by [counter + c]: inside the swept interval and
    reachable by the stride. *)
let affine_hits ~lb ~step ~trips c k =
  if trips <= 0 || step = 0 then None
  else
    let lo = lb + c and hi = lb + ((trips - 1) * step) + c in
    if k < min lo hi || k > max lo hi then Some false
    else Some ((k - lo) mod step = 0)

(** Dependence distances and direction vectors, shared between the
    static analyser ({!Analyze.Depend}) and the preprocessor's
    loop-transformation legality checks ({!Preproc.Transform}). *)

type dir = Dlt | Deq | Dgt

val dir_of_distance : int -> dir
val dir_to_string : dir -> string

(** Iteration distance of an SIV subscript pair [counter + c1] /
    [counter + c2] under stride [step]; [None] when the stride never
    aligns the two (independent). *)
val siv_distance : c1:int -> c2:int -> step:int -> int option

(** No [(<, >)] distance vector: swapping a 2-deep nest is legal. *)
val interchange_legal : (int * int) list -> bool

(** Every carried distance is 0 or at least [factor]: grouping [factor]
    consecutive iterations (unroll, tile point loop) is legal. *)
val group_legal : factor:int -> int list -> bool

(** Dependence distances and direction vectors, shared between the
    static analyser's SIV battery ({!Analyze.Depend}) and the
    preprocessor's loop-transformation legality checks
    ({!Preproc.Transform}).

    Both clients reason about affine subscripts [counter + c] in
    counted loops; the quantity they share is the iteration distance of
    a subscript pair and the direction it induces.  Keeping the
    arithmetic here — below both clients in the library graph — makes
    "a transform the preprocessor applies is one the analyser would
    bless" a property of one function rather than two copies, exactly
    as {!Subscript} does for bounds-guard elision. *)

(** Dependence direction in one loop dimension, in the classical
    notation: [Dlt] ([<]) — the source iteration precedes the sink,
    [Deq] ([=]) — same iteration, [Dgt] ([>]) — the source follows the
    sink. *)
type dir = Dlt | Deq | Dgt

let dir_of_distance d = if d > 0 then Dlt else if d < 0 then Dgt else Deq

let dir_to_string = function Dlt -> "<" | Deq -> "=" | Dgt -> ">"

(** [siv_distance ~c1 ~c2 ~step] — iteration distance of an SIV pair
    [counter + c1] (source) against [counter + c2] (sink) in a loop of
    stride [step]: [Some d] iff [step] divides [c2 - c1], meaning the
    two subscripts touch the same element exactly [d] iterations apart.
    [None] when the stride never aligns them — the pair is
    independent. *)
let siv_distance ~c1 ~c2 ~step =
  if step = 0 then None
  else
    let delta = c2 - c1 in
    if delta mod step <> 0 then None else Some (delta / step)

(** [interchange_legal vectors] — legality of swapping the two loops of
    a 2-deep nest against its dependence distance vectors
    [(d_outer, d_inner)]: the swap reverses a dependence iff some
    vector is [(<, >)] — carried outward with a negative inner
    component.  Vectors with a [=] outer component are inner-loop-only
    and unaffected; [(<, <)] and [(<, =)] stay lexicographically
    positive after the swap. *)
let interchange_legal vectors =
  List.for_all (fun (d1, d2) -> not (d1 > 0 && d2 < 0)) vectors

(** [group_legal ~factor dists] — legality of grouping [factor]
    consecutive iterations into one sequential unit (unroll replicas,
    or a tile's point loop) against the loop's carried distances: safe
    when every carried dependence either stays inside an iteration
    ([d = 0]) or spans at least the whole group ([|d| >= factor]), so
    no group both sources and sinks the same dependence. *)
let group_legal ~factor dists =
  List.for_all (fun d -> d = 0 || abs d >= factor) dists

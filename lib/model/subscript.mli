(** Affine-subscript interval reasoning shared by the static analyser's
    SIV dependence tests ({!Analyze.Depend}) and the bytecode tier's
    guard elision ({!Interp.Bc}).  See subscript.ml for the soundness
    argument tying the two together. *)

(** The closed element interval swept by [iv + c], [c] in
    [[c_min, c_max]], [iv] between [first] and [last] inclusive (either
    order). *)
val touched : first:int -> last:int -> int -> int -> int * int

(** Every element touched is a valid index of an array of length
    [len] — the guard-elision side condition, overflow-safe. *)
val in_range : first:int -> last:int -> len:int -> int -> int -> bool

(** Whole-loop interval for [counter + c]: first iteration [lb],
    [trips] iterations of stride [step]; [None] when empty. *)
val affine_interval : lb:int -> step:int -> trips:int -> int -> (int * int) option

(** Whether constant element [k] is ever touched by [counter + c]. *)
val affine_hits : lb:int -> step:int -> trips:int -> int -> int -> bool option

(* zrc — the Zr compiler driver.

   Subcommands mirror the stages the paper adds to the Zig compiler:

     zrc tokens FILE        dump the token stream (pragma sentinels included)
     zrc parse FILE         dump the AST node table and extra_data
     zrc preprocess FILE    run the OpenMP preprocessor, print the result
     zrc run FILE [-t N]    preprocess and execute main() on N threads *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

(* every Team.fork path — including serialised teams of one — wraps
   body failures in Worker_failure; unwrap for the user *)
let rec cause = function
  | Omprt.Team.Worker_failure (_, e) -> cause e
  | e -> e

(* [handle_errors' f] runs [f] for its exit code; [handle_errors f]
   runs a unit action and exits 0 on success.  Driver errors exit 1. *)
let handle_errors' f =
  try f () with e -> (
    match cause e with
    | Zr.Source.Error msg ->
        Printf.eprintf "error: %s\n" msg; 1
    | Interp.Value.Runtime_error msg ->
        Printf.eprintf "runtime error: %s\n" msg; 1
    | Failure msg | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg; 1
    | e -> raise e)

let handle_errors f = handle_errors' (fun () -> f (); 0)

(* ---- tokens ---- *)

let tokens_cmd =
  let run file =
    handle_errors (fun () ->
        let src = Zr.Source.of_string ~name:file (read_file file) in
        let toks = Zr.Tokenizer.tokenize src in
        Array.iter
          (fun (t : Zr.Token.t) ->
            let line, col = Zr.Source.position src t.start in
            Printf.printf "%4d:%-3d %-18s %s\n" line col
              (Zr.Token.tag_to_string t.tag)
              (match t.tag with
               | Zr.Token.Identifier | Zr.Token.Int_literal
               | Zr.Token.Float_literal | Zr.Token.String_literal ->
                   Zr.Tokenizer.text src t
               | _ -> ""))
          toks)
  in
  Cmd.v (Cmd.info "tokens" ~doc:"Dump the token stream")
    Term.(const run $ file_arg)

(* ---- parse ---- *)

let parse_cmd =
  let run file =
    handle_errors (fun () ->
        let ast, _ = Zr.Parser.parse_string ~name:file (read_file file) in
        Printf.printf "%d nodes, %d extra_data words\n"
          (Array.length ast.Zr.Ast.nodes)
          (Array.length ast.Zr.Ast.extra_data);
        Array.iteri
          (fun i (n : Zr.Ast.node) ->
            Printf.printf "%4d  tag=%-16s main=%-4d lhs=%-6d rhs=%-6d\n" i
              (match n.tag with
               | Zr.Ast.Root -> "Root" | Zr.Ast.Fn_decl -> "Fn_decl"
               | Zr.Ast.Block -> "Block" | Zr.Ast.Var_decl -> "Var_decl"
               | Zr.Ast.Const_decl -> "Const_decl" | Zr.Ast.Assign -> "Assign"
               | Zr.Ast.While -> "While" | Zr.Ast.If -> "If"
               | Zr.Ast.Return -> "Return" | Zr.Ast.Break -> "Break"
               | Zr.Ast.Continue -> "Continue"
               | Zr.Ast.Expr_stmt -> "Expr_stmt" | Zr.Ast.Bin_op -> "Bin_op"
               | Zr.Ast.Un_op -> "Un_op" | Zr.Ast.Call -> "Call"
               | Zr.Ast.Index -> "Index" | Zr.Ast.Field -> "Field"
               | Zr.Ast.Deref -> "Deref" | Zr.Ast.Addr_of -> "Addr_of"
               | Zr.Ast.Ident -> "Ident" | Zr.Ast.Int_lit -> "Int_lit"
               | Zr.Ast.Float_lit -> "Float_lit"
               | Zr.Ast.String_lit -> "String_lit"
               | Zr.Ast.Bool_lit -> "Bool_lit"
               | Zr.Ast.Undefined_lit -> "Undefined_lit"
               | Zr.Ast.Struct_lit -> "Struct_lit"
               | Zr.Ast.Type_name -> "Type_name"
               | Zr.Ast.Type_slice -> "Type_slice"
               | Zr.Ast.Type_ptr -> "Type_ptr"
               | Zr.Ast.Omp_parallel -> "Omp_parallel"
               | Zr.Ast.Omp_for -> "Omp_for"
               | Zr.Ast.Omp_parallel_for -> "Omp_parallel_for"
               | Zr.Ast.Omp_barrier -> "Omp_barrier"
               | Zr.Ast.Omp_critical -> "Omp_critical"
               | Zr.Ast.Omp_master -> "Omp_master"
               | Zr.Ast.Omp_single -> "Omp_single"
               | Zr.Ast.Omp_atomic -> "Omp_atomic"
               | Zr.Ast.Omp_threadprivate -> "Omp_threadprivate"
               | Zr.Ast.Omp_task -> "Omp_task"
               | Zr.Ast.Omp_taskwait -> "Omp_taskwait"
               | Zr.Ast.Omp_taskloop -> "Omp_taskloop"
               | Zr.Ast.Omp_sections -> "Omp_sections"
               | Zr.Ast.Omp_section -> "Omp_section")
              n.main_token n.lhs n.rhs)
          ast.Zr.Ast.nodes)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Dump the AST node table")
    Term.(const run $ file_arg)

(* ---- preprocess ---- *)

let preprocess_cmd =
  let dump_transformed =
    Arg.(value & flag
         & info [ "dump-transformed" ]
             ~doc:"Stop after the loop-transformation stage (tile, \
                   unroll, interchange, legality checks) and print its \
                   output — the input to the rest of the lowering.  \
                   Prints the source unchanged when no transform \
                   applies.")
  in
  let run file dump_transformed =
    handle_errors (fun () ->
        let source = read_file file in
        if dump_transformed then
          print_string
            (match
               Zigomp.Preprocessor.Transform.run ~name:file source
             with
             | Some transformed -> transformed
             | None -> source)
        else print_string (Zigomp.preprocess ~name:file source))
  in
  Cmd.v
    (Cmd.info "preprocess"
       ~doc:"Lower OpenMP pragmas to runtime calls; print the result")
    Term.(const run $ file_arg $ dump_transformed)

(* ---- run ---- *)

let run_cmd =
  let threads =
    Arg.(value & opt (some int) None
         & info [ "t"; "threads" ] ~docv:"N" ~doc:"Default team size")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print a gprof-style per-construct profile on exit")
  in
  let backend =
    Arg.(value
         & opt
             (some
                (enum
                   [ ("compiled", `Compiled); ("ast", `Ast);
                     ("bytecode", `Bytecode) ]))
             None
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Execution backend: $(b,compiled) (staged closures, \
                   default), $(b,ast) (tree walker) or $(b,bytecode) \
                   (register VM for worksharing loop bodies, closures \
                   elsewhere).  Defaults to $(b,ZIGOMP_BACKEND) when \
                   set.")
  in
  let dump_bc =
    Arg.(value & flag
         & info [ "dump-bc" ]
             ~doc:"After the run, print the bytecode listing of every \
                   specialised loop body to stderr (drain label, \
                   per-instruction source lines, $(b,[unguarded]) \
                   markers on guard-elided accesses).  Implies \
                   $(b,--backend bytecode) unless a backend is given.")
  in
  let run file threads profile backend dump_bc =
    handle_errors (fun () ->
        Option.iter Zigomp.set_num_threads threads;
        if profile then begin
          Omprt.Profile.reset ();
          Omprt.Profile.enable ()
        end;
        let backend =
          match backend with
          | Some _ -> backend
          | None -> if dump_bc then Some `Bytecode else None
        in
        let p = Zigomp.compile ?backend ~name:file (read_file file) in
        (match Zigomp.run_main p with
         | Zigomp.Value.VUnit -> ()
         | v -> print_endline (Zigomp.Value.to_string v));
        if dump_bc then
          List.iter
            (fun (label, listing) ->
              Printf.eprintf "=== %s ===\n%s" label listing)
            (Zigomp.bc_listings p);
        if profile then begin
          Omprt.Profile.disable ();
          prerr_string (Omprt.Profile.report ())
        end)
  in
  Cmd.v (Cmd.info "run" ~doc:"Preprocess and execute main()")
    Term.(const run $ file_arg $ threads $ profile $ backend $ dump_bc)

(* ---- analyze ---- *)

module Report = Zigomp.Checker.Report

(* The NPB Zr kernels ship inside the harness; `--kernel` analyses them
   without needing the source on disk. *)
let kernel_source = function
  | "cg" -> ("conj_grad.zr", Zigomp.Harness.Zr_cg.conj_grad_src)
  | "ep" -> ("ep.zr", Zigomp.Harness.Zr_ep.src)
  | "is" -> ("is.zr", Zigomp.Harness.Zr_is.src)
  | k -> failwith (Printf.sprintf "unknown kernel %S (expected cg|ep|is)" k)

(* Corpus batch mode, shared by `zrc check --corpus` and
   `zrc analyze --corpus`. *)
let do_corpus ?(no_static = false) ~mode ~config ~kernels ~json dir =
  let t = Zigomp.Corpus.run ~config ~kernels ~no_static ~mode ~dir () in
  if json then print_endline (Zigomp.Corpus.to_json t)
  else print_endline (Zigomp.Corpus.to_string t);
  t.Zigomp.Corpus.exit

let print_report ~json ~show_may (r : Zigomp.Analyzer.result) =
  if json then print_endline (Report.to_json ~may:r.Zigomp.Analyzer.may r.report)
  else begin
    print_endline (Report.to_string r.report);
    if show_may && r.may <> [] then begin
      Printf.printf "%d advisory (MAY) finding(s):\n"
        (List.length r.Zigomp.Analyzer.may);
      List.iter
        (fun (f : Report.finding) -> print_endline f.Report.line)
        r.Zigomp.Analyzer.may
    end
  end

let analyze_cmd =
  let file_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let kernel_opt =
    Arg.(value & opt (some string) None
         & info [ "kernel" ] ~docv:"NAME"
             ~doc:"Analyse a bundled NPB Zr kernel ($(b,cg), $(b,ep) or \
                   $(b,is)) instead of a file")
  in
  let json_opt =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the report as JSON (schema zigomp-report/1, \
                   shared with $(b,zrc check --json))")
  in
  let fix_opt =
    Arg.(value & flag
         & info [ "fix" ]
             ~doc:"Rewrite directives to repair PROVEN findings, \
                   re-analysing to a fixpoint; print the fixed source \
                   on stdout (report goes to stderr)")
  in
  let in_place_opt =
    Arg.(value & flag
         & info [ "in-place"; "i" ]
             ~doc:"With $(b,--fix): write the fixed source back to FILE")
  in
  let may_opt =
    Arg.(value & flag
         & info [ "may" ]
             ~doc:"Also print advisory (MAY) findings; they never \
                   affect the exit code")
  in
  let predict_opt =
    Arg.(value & flag
         & info [ "predict" ]
             ~doc:"For every legal tiling with literal bounds, print \
                   the roofline model's predicted cache working sets, \
                   L3 miss factors, effective arithmetic intensity and \
                   speedup (before vs after tiling) on the modelled \
                   machine.  Advisory; never affects the exit code.")
  in
  let predict_threads_opt =
    Arg.(value & opt int 1
         & info [ "predict-threads" ] ~docv:"N"
             ~doc:"Active threads assumed by $(b,--predict) (the \
                   per-thread working-set slice shrinks with the team)")
  in
  let print_predictions ~json ~name ~active source =
    match Zr.Parser.parse_string ~name source with
    | exception Zr.Source.Error _ -> ()
    | ast, spans ->
        let module T = Zigomp.Preprocessor.Transform in
        let module P = Zigomp.Simulator.Perfmodel in
        let fps = T.footprints { Zigomp.Preprocessor.Synth.ast; spans } in
        let m = Zigomp.Simulator.Machine.archer2 in
        (* the report owns stdout in JSON mode *)
        let ch = if json then stderr else stdout in
        let kib b = b /. 1024. in
        if fps = [] then
          Printf.fprintf ch
            "predict: no legal tiling with literal bounds\n"
        else
          List.iter
            (fun (fp : T.footprint) ->
              let cost =
                Zigomp.Model.Cost.make
                  ~flops:(fp.T.fp_iters *. float_of_int fp.T.fp_accesses)
                  ~bytes:fp.T.fp_bytes ()
              in
              let p =
                P.predict_tiling m ~active ~cost ~ws_before:fp.T.fp_ws_before
                  ~ws_after:fp.T.fp_ws_after
              in
              if fp.T.fp_ws_after >= fp.T.fp_ws_before then
                Printf.fprintf ch
                  "predict: line %d %s: ws %.1f KiB unchanged, no \
                   predicted change (speedup 1.00x)\n"
                  fp.T.fp_line fp.T.fp_desc (kib fp.T.fp_ws_before)
              else
                Printf.fprintf ch
                  "predict: line %d %s: ws %.1f KiB -> %.1f KiB, miss \
                   %.2f -> %.2f, AI %.3f -> %.3f flop/B, predicted \
                   speedup %.2fx\n"
                  fp.T.fp_line fp.T.fp_desc (kib fp.T.fp_ws_before)
                  (kib fp.T.fp_ws_after) p.P.miss_before p.P.miss_after
                  p.P.ai_before p.P.ai_after p.P.speedup)
            fps
  in
  let corpus_opt =
    Arg.(value & opt (some dir) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Batch mode: statically analyse every $(b,.zr) \
                   fixture under $(docv) plus the bundled NPB Zr \
                   kernels in one process; print one summary (JSON \
                   schema $(b,zigomp-corpus/1) with $(b,--json)) and \
                   exit with the maximum per-entry code")
  in
  let run file kernel corpus json fix in_place show_may predict
      predict_threads =
    handle_errors' (fun () ->
        match corpus with
        | Some dir ->
            if file <> None || kernel <> None || fix then
              failwith "--corpus excludes FILE, --kernel and --fix";
            do_corpus ~mode:Zigomp.Corpus.Manalyze
              ~config:Zigomp.Checker.default_config ~kernels:true ~json
              dir
        | None ->
        let name, source =
          match (kernel, file) with
          | Some k, None -> kernel_source k
          | None, Some f -> (f, read_file f)
          | Some _, Some _ -> failwith "FILE and --kernel are exclusive"
          | None, None -> failwith "expected FILE or --kernel"
        in
        if not fix then begin
          let r = Zigomp.analyze ~name source in
          print_report ~json ~show_may r;
          if predict then
            print_predictions ~json ~name ~active:predict_threads source;
          Report.exit_code r.Zigomp.Analyzer.report
        end
        else begin
          let fixed, r, rounds = Zigomp.analyze_fix ~name source in
          if in_place then begin
            (match (kernel, file) with
             | None, Some f when fixed <> source ->
                 let oc = open_out_bin f in
                 Fun.protect
                   ~finally:(fun () -> close_out oc)
                   (fun () -> output_string oc fixed)
             | _ -> ());
            print_report ~json ~show_may r
          end
          else if json then print_report ~json ~show_may r
          else begin
            print_string fixed;
            Printf.eprintf "%s\n" (Report.to_string r.Zigomp.Analyzer.report)
          end;
          if rounds > 0 then
            Printf.eprintf "analyze: %d fix round(s) applied\n" rounds;
          Report.exit_code r.Zigomp.Analyzer.report
        end)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Statically analyse data sharing, dependences and \
             autoscoping; never executes the program.  PROVEN findings \
             set exit code 2, a clean program exits 0.  $(b,--fix) \
             rewrites directives (reduction/atomic/nowait/firstprivate \
             repairs) until the analysis is clean.")
    Term.(const run $ file_opt $ kernel_opt $ corpus_opt $ json_opt
          $ fix_opt $ in_place_opt $ may_opt $ predict_opt
          $ predict_threads_opt)

(* ---- check ---- *)

let check_config threads schedules seed no_sweep no_lint sampled
    preempt_bound max_execs =
  Option.iter (Printf.eprintf "%s\n")
    (Zigomp.Checker.no_effect_warning ~sampled ~preempt_bound);
  { Zigomp.Checker.nthreads = threads;
    schedules;
    seed;
    sync_sweep = not no_sweep;
    lint = not no_lint;
    exploration =
      (if sampled then Zigomp.Checker.Sampled
       else
         Zigomp.Checker.Dpor
           { max_execs;
             preempt_bound = Option.value preempt_bound ~default:2 }) }

let do_check file config ~json ~no_static =
  let source = read_file file in
  let dynamic = Zigomp.check ~name:file ~config source in
  let report =
    if no_static then dynamic
    else
      (* the static pre-pass: findings it PROVES are suppressed from
         the dynamic list by id, so one defect is reported once *)
      let static = (Zigomp.analyze ~name:file source).Zigomp.Analyzer.report in
      Report.merge ~static ~dynamic
  in
  if json then print_endline (Report.to_json report)
  else print_endline (Report.to_string report);
  Report.exit_code report

let threads_opt =
  Arg.(value & opt int 4
       & info [ "t"; "threads" ] ~docv:"N"
           ~doc:"Team size for the checked runs")

let schedules_opt =
  Arg.(value & opt int 3
       & info [ "schedules" ] ~docv:"K"
           ~doc:"Number of seeded random schedules to explore")

let seed_opt =
  Arg.(value & opt int 42
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Base seed for the random schedules (fixed seed = \
                 deterministic findings)")

let no_sweep_opt =
  Arg.(value & flag
       & info [ "no-sweep" ]
           ~doc:"Skip the systematic skewed-interleaving schedules")

let no_lint_opt =
  Arg.(value & flag
       & info [ "no-lint" ] ~doc:"Skip the execution-free lints")

let check_json_opt =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Print the report as JSON (schema zigomp-report/1, \
                 shared with $(b,zrc analyze --json))")

let no_static_opt =
  Arg.(value & flag
       & info [ "no-static" ]
           ~doc:"Skip the static pre-pass (by default, findings the \
                 static analyser proves are reported once, from the \
                 static side); with $(b,--corpus), every entry \
                 reports raw dynamic findings")

let sampled_opt =
  Arg.(value & flag
       & info [ "sampled" ]
           ~doc:"Use the legacy fixed-schedule sampling (uniform + \
                 skewed sweep + seeded draws) instead of DPOR; the \
                 report verdict is SAMPLED and a clean result is \
                 evidence, not a proof")

let preempt_bound_opt =
  Arg.(value & opt (some int) None
       & info [ "preempt-bound" ] ~docv:"N"
           ~doc:"DPOR frontier order and BOUNDED verdict bound \
                 (default 2): prefixes forcing at most $(docv) \
                 preemptions are explored first, and a \
                 budget-truncated search reports whether any \
                 within-bound prefix was left.  No effect with \
                 $(b,--sampled).")

let max_execs_opt =
  Arg.(value & opt int 256
       & info [ "max-execs" ] ~docv:"N"
           ~doc:"DPOR execution budget per checked program; when the \
                 reduced interleaving space needs more, the report \
                 verdict degrades from COMPLETE to BOUNDED (clean \
                 exit 1 instead of 0)")

let corpus_check_opt =
  Arg.(value & opt (some dir) None
       & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Batch mode: analyse and check every $(b,.zr) fixture \
                 under $(docv) plus the bundled NPB Zr kernels in one \
                 process; print one summary (JSON schema \
                 $(b,zigomp-corpus/1) with $(b,--json)) and exit with \
                 the maximum per-entry code")

let no_kernels_opt =
  Arg.(value & flag
       & info [ "no-kernels" ]
           ~doc:"With $(b,--corpus): skip the bundled NPB Zr kernels")

let check_cmd =
  let run file corpus no_kernels threads schedules seed no_sweep no_lint
      sampled preempt_bound max_execs json no_static =
    try
      let config =
        check_config threads schedules seed no_sweep no_lint sampled
          preempt_bound max_execs
      in
      match (corpus, file) with
      | Some dir, None ->
          do_corpus ~no_static ~mode:Zigomp.Corpus.Mcheck ~config
            ~kernels:(not no_kernels) ~json dir
      | None, Some file -> do_check file config ~json ~no_static
      | Some _, Some _ -> failwith "FILE and --corpus are exclusive"
      | None, None -> failwith "expected FILE or --corpus"
    with
    | Zr.Source.Error msg -> Printf.eprintf "error: %s\n" msg; 1
    | Failure msg | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg; 1
  in
  let file_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Race-check a program: vector-clock happens-before \
             detection with DPOR exploration of the reduced \
             interleaving space (COMPLETE/BOUNDED verdicts; \
             $(b,--sampled) restores fixed-schedule sampling), plus \
             static lints.  Exit 0 when clean and complete, 1 when \
             clean but budget-bounded, 2 when findings are reported.")
    Term.(const run $ file_opt $ corpus_check_opt $ no_kernels_opt
          $ threads_opt $ schedules_opt $ seed_opt $ no_sweep_opt
          $ no_lint_opt $ sampled_opt $ preempt_bound_opt $ max_execs_opt
          $ check_json_opt $ no_static_opt)

let () =
  let info =
    Cmd.info "zrc" ~version:"1.0.0"
      ~doc:"Zr compiler with OpenMP loop-directive support"
  in
  (* `zrc --check FILE` is accepted at top level as a synonym for the
     `check` subcommand, the spelling used throughout the docs. *)
  let default =
    let run check_file threads schedules seed no_sweep no_lint sampled
        preempt_bound max_execs =
      match check_file with
      | Some file ->
          `Ok
            (try
               do_check file
                 (check_config threads schedules seed no_sweep no_lint
                    sampled preempt_bound max_execs)
                 ~json:false ~no_static:false
             with
             | Zr.Source.Error msg -> Printf.eprintf "error: %s\n" msg; 1
             | Failure msg | Invalid_argument msg ->
                 Printf.eprintf "error: %s\n" msg; 1)
      | None -> `Help (`Pager, None)
    in
    let check_file =
      Arg.(value & opt (some file) None
           & info [ "check" ] ~docv:"FILE"
               ~doc:"Race-check $(docv) (same as the $(b,check) \
                     subcommand)")
    in
    Term.(ret (const run $ check_file $ threads_opt $ schedules_opt
               $ seed_opt $ no_sweep_opt $ no_lint_opt $ sampled_opt
               $ preempt_bound_opt $ max_execs_opt))
  in
  exit
    (Cmd.eval' ~catch:true
       (Cmd.group ~default info
          [ tokens_cmd; parse_cmd; preprocess_cmd; run_cmd; check_cmd;
            analyze_cmd ]))

(* npb_run — NPB kernel runner.

     npb_run -k cg -c S -t 4            real run on OCaml domains, verified
     npb_run -k cg -c C -t 128 --sim    modelled run on the simulated node
     npb_run -k is -c C --sim --sweep   thread sweep like the paper's tables
     npb_run -k cg --engine zr          conj_grad in Zr (paper section IV),
                                        --backend compiled|ast selects the
                                        staged closures or the tree walker *)

open Cmdliner

let kernel_arg =
  let parse s =
    match Harness.Experiment.kernel_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg "kernel must be cg, ep or is")
  in
  let print ppf k =
    Format.pp_print_string ppf (Harness.Experiment.kernel_name k)
  in
  Arg.(value & opt (conv (parse, print)) Harness.Experiment.CG
       & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"cg, ep or is")

let cls_arg =
  let parse s =
    match Npb.Classes.cls_of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg "class must be S, W, A, B or C")
  in
  let print ppf c =
    Format.pp_print_string ppf (Npb.Classes.cls_to_string c)
  in
  Arg.(value & opt (conv (parse, print)) Npb.Classes.S
       & info [ "c"; "class" ] ~docv:"CLASS" ~doc:"problem class (S W A B C)")

let threads_arg =
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~docv:"N")

let sim_arg =
  Arg.(value & flag
       & info [ "sim" ] ~doc:"Run on the simulated ARCHER2 node (timing only)")

let sweep_arg =
  Arg.(value & flag
       & info [ "sweep" ]
           ~doc:"Sweep the paper's thread counts instead of one run")

let lang_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "zig" -> Ok Npb.Classes.Zig
    | "fortran" -> Ok Npb.Classes.Fortran
    | "c" -> Ok Npb.Classes.C_lang
    | _ -> Error (`Msg "lang must be zig, fortran or c")
  in
  let print ppf l =
    Format.pp_print_string ppf (Npb.Classes.lang_to_string l)
  in
  Arg.(value & opt (conv (parse, print)) Npb.Classes.Zig
       & info [ "lang" ] ~docv:"LANG"
           ~doc:"modelled language factor for --sim (zig, fortran, c)")

let engine_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "ocaml" | "native" -> Ok `Ocaml
    | "zr" -> Ok `Zr
    | _ -> Error (`Msg "engine must be ocaml or zr")
  in
  let print ppf e =
    Format.pp_print_string ppf (match e with `Ocaml -> "ocaml" | `Zr -> "zr")
  in
  Arg.(value & opt (conv (parse, print)) `Ocaml
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Kernel implementation: $(b,ocaml) (native port) or \
                 $(b,zr) (conj_grad in pragma-annotated Zr through the \
                 interpreter pipeline; CG only)")

let backend_arg =
  Arg.(value
       & opt
           (enum
              [ ("compiled", `Compiled); ("ast", `Ast);
                ("bytecode", `Bytecode) ])
           `Compiled
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Zr execution backend for --engine zr: $(b,compiled) \
                 (staged closures, default), $(b,ast) (tree walker) or \
                 $(b,bytecode) (register VM for loop bodies)")

let main kernel cls threads sim sweep lang engine backend =
  if engine = `Zr then begin
    if sim || sweep then begin
      prerr_endline "npb_run: --engine zr runs on the real runtime only";
      2
    end
    else
      match kernel with
      | Harness.Experiment.CG ->
          let r = Harness.Zr_cg.run ~backend ~cls ~nthreads:threads () in
          Format.printf "%a@." Npb.Result.pp r;
          if Npb.Result.verified r then 0 else 1
      | Harness.Experiment.EP ->
          let r = Harness.Zr_ep.run ~backend ~cls ~nthreads:threads () in
          Format.printf "%a@." Npb.Result.pp r;
          if Npb.Result.verified r then 0 else 1
      | Harness.Experiment.IS ->
          let r = Harness.Zr_is.run ~backend ~cls ~nthreads:threads () in
          Format.printf "%a@." Npb.Result.pp r;
          if Npb.Result.verified r then 0 else 1
  end
  else if sweep then begin
    let counts = [ 1; 2; 16; 32; 64; 96; 128 ] in
    List.iter
      (fun nt ->
        let t =
          Harness.Experiment.sim_time ~cls kernel lang ~nthreads:nt
        in
        Printf.printf "%-3s class %s  %3d threads  %10.3f s (modelled, %s)\n%!"
          (Harness.Experiment.kernel_name kernel)
          (Npb.Classes.cls_to_string cls) nt t
          (Npb.Classes.lang_to_string lang))
      counts;
    0
  end
  else if sim then begin
    let t = Harness.Experiment.sim_time ~cls kernel lang ~nthreads:threads in
    Printf.printf "%s class %s, %d threads: %.3f s (modelled, %s)\n"
      (Harness.Experiment.kernel_name kernel)
      (Npb.Classes.cls_to_string cls) threads t
      (Npb.Classes.lang_to_string lang);
    0
  end
  else begin
    let r = Harness.Experiment.real_run kernel ~cls ~nthreads:threads () in
    Format.printf "%a@." Npb.Result.pp r;
    if Npb.Result.verified r then 0 else 1
  end

let () =
  let info = Cmd.info "npb_run" ~version:"1.0.0" ~doc:"NAS Parallel Benchmark kernels" in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(const main $ kernel_arg $ cls_arg $ threads_arg $ sim_arg
                $ sweep_arg $ lang_arg $ engine_arg $ backend_arg)))

(* omp_smoke — nested-region semantics smoke test for the CI matrix.

   Runs under whatever OMP_NUM_THREADS / OMP_MAX_ACTIVE_LEVELS /
   OMP_THREAD_LIMIT the environment supplies and asserts the invariants
   that must hold for ANY configuration: serialisation beyond
   max_active_levels, the thread_limit contention-group cap, ICV
   isolation between team members, and the ancestor/team-size
   introspection API.  Exits non-zero on the first violation, so a CI
   row failing here pinpoints the configuration that broke. *)

open Omprt

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "omp_smoke: FAIL %s\n%!" name
  end

let checkv name expected got =
  if expected <> got then begin
    incr failures;
    Printf.eprintf "omp_smoke: FAIL %s: expected %d, got %d\n%!" name
      expected got
  end

let () =
  let nt = Api.get_max_threads () in
  let limit = Api.get_thread_limit () in
  let levels = Api.get_max_active_levels () in
  Printf.printf
    "omp_smoke: nthreads=%d thread_limit=%d max_active_levels=%d\n%!" nt
    limit levels;

  (* team size respects both the request and the contention-group cap *)
  let outer_size = Atomic.make 0 in
  Omp.parallel (fun () ->
      if Omp.thread_num () = 0 then
        Atomic.set outer_size (Omp.num_threads ()));
  let expect_outer = if levels < 1 then 1 else min nt (max 1 limit) in
  checkv "outer team size" expect_outer (Atomic.get outer_size);

  (* nested region: active iff the frame still has nesting budget, and
     always within the remaining contention-group budget *)
  let inner = Atomic.make (-1, -1, -1) in
  Omp.parallel ~num_threads:2 (fun () ->
      if Omp.thread_num () = 0 then
        Omp.parallel ~num_threads:2 (fun () ->
            if Omp.thread_num () = 0 then
              Atomic.set inner
                ( Omp.num_threads (), Api.get_level (),
                  Api.get_active_level () )));
  let isz, ilvl, iact = Atomic.get inner in
  let outer_active = levels >= 1 && limit >= 2 in
  let inner_serialised = levels < 2 || limit < 3 in
  checkv "inner level" 2 ilvl;
  if outer_active && inner_serialised then begin
    checkv "inner serialised to one thread" 1 isz;
    checkv "active level inside a serialised inner region" 1 iact
  end;
  if outer_active && not inner_serialised then begin
    checkv "inner team of two" 2 isz;
    checkv "both levels active" 2 iact
  end;

  (* omp_set_num_threads isolation between siblings *)
  let distinct = Omp.parallel ~num_threads:2 in
  let leak = Atomic.make false in
  distinct (fun () ->
      let tid = Omp.thread_num () in
      Api.set_num_threads (40 + tid);
      Omp.barrier ();
      if Api.get_max_threads () <> 40 + tid then Atomic.set leak true);
  check "set_num_threads leaked between siblings" (not (Atomic.get leak));
  checkv "initial frame untouched by in-region set_num_threads" nt
    (Api.get_max_threads ());

  (* ancestor API at depth 2 (enable nesting locally to make level 2
     meaningful even in rows that default to serialisation) *)
  Api.set_max_active_levels 2;
  let bad_anc = Atomic.make 0 in
  Omp.parallel ~num_threads:2 (fun () ->
      let outer_tid = Omp.thread_num () in
      Omp.parallel ~num_threads:2 (fun () ->
          if Api.get_ancestor_thread_num 1 <> outer_tid
             || Api.get_team_size 0 <> 1
             || Api.get_ancestor_thread_num 0 <> 0
             || Api.get_ancestor_thread_num 9 <> -1
          then Atomics.Int.add bad_anc 1));
  checkv "ancestor introspection at depth 2" 0 (Atomic.get bad_anc);

  if !failures = 0 then print_endline "omp_smoke: OK"
  else begin
    Printf.eprintf "omp_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end

(** Plain-text table rendering with aligned columns. *)

type align = Left | Right

let render ?(align : align list = []) ~(header : string list)
    (rows : string list list) : string =
  let ncols = List.length header in
  let get_align i = try List.nth align i with _ -> Right in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let pad i cell =
    let w = widths.(i) in
    let pad_len = w - String.length cell in
    match get_align i with
    | Left -> cell ^ String.make pad_len ' '
    | Right -> String.make pad_len ' ' ^ cell
  in
  let render_row row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  String.concat "\n"
    ((render_row header :: sep :: List.map render_row rows))

let fseconds v =
  if v >= 100. then Printf.sprintf "%.2f" v
  else if v >= 1. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v

(** Small statistics helpers for the benchmark harness. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let minimum xs = List.fold_left Float.min infinity xs

let maximum xs = List.fold_left Float.max neg_infinity xs

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let a = List.nth sorted ((n - 1) / 2) in
      let b = List.nth sorted (n / 2) in
      (a +. b) /. 2.

(** Relative deviation of [measured] from [reference]. *)
let rel_err ~reference measured =
  if reference = 0. then nan else (measured -. reference) /. reference

(** Geometric mean of the absolute relative deviations, the summary we
    report per table in EXPERIMENTS.md. *)
let mean_abs_rel_err pairs =
  mean
    (List.map
       (fun (reference, measured) ->
         Float.abs (rel_err ~reference measured))
       pairs)

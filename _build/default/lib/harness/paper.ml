(** The paper's published numbers (Tables I–III), used as the reference
    column of every regenerated table and figure. *)

type table = {
  name : string;          (** "Table I" etc. *)
  kernel : string;
  langs : string * string;  (** (ported language, reference language) *)
  threads : int list;
  ported : float list;    (** the Zig port's runtimes, seconds *)
  reference : float list; (** the reference implementation's runtimes *)
}

let table1 = {
  name = "Table I";
  kernel = "CG";
  langs = ("Zig", "Fortran");
  threads = [ 1; 2; 16; 32; 64; 96; 128 ];
  ported = [ 149.40; 82.34; 21.85; 11.26; 5.83; 2.80; 1.81 ];
  reference = [ 170.17; 83.35; 21.80; 11.28; 5.98; 2.98; 2.07 ];
}

let table2 = {
  name = "Table II";
  kernel = "EP";
  langs = ("Zig", "Fortran");
  threads = [ 1; 2; 16; 32; 64; 96; 128 ];
  ported = [ 147.66; 76.17; 9.84; 4.72; 2.29; 1.57; 1.36 ];
  reference = [ 185.26; 94.90; 11.83; 5.92; 2.84; 1.97; 1.42 ];
}

(* The paper's Table III lists the last row as "64" again; it is plainly
   the 128-thread row. *)
let table3 = {
  name = "Table III";
  kernel = "IS";
  langs = ("Zig", "C");
  threads = [ 1; 2; 16; 32; 64; 96; 128 ];
  ported = [ 11.87; 6.12; 1.05; 0.55; 0.33; 0.29; 0.27 ];
  reference = [ 9.29; 4.76; 0.93; 0.54; 0.31; 0.28; 0.24 ];
}

let tables = [ table1; table2; table3 ]

(** Speedup series derived from a table column (t1 / tN). *)
let speedups threads times =
  match times with
  | [] -> []
  | t1 :: _ ->
      List.map2 (fun nt t -> (nt, t1 /. t)) threads times

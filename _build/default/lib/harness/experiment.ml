(** Experiment drivers: regenerate every table and figure of the paper.

    Timing data comes from the simulated ARCHER2 node ({!Simrt}); the
    same kernels run on the real engine for correctness (that path is
    exercised by the tests and the [npb] binary, not here, since this
    host cannot produce 128-thread measurements). *)

type kernel = CG | EP | IS

let kernel_name = function CG -> "CG" | EP -> "EP" | IS -> "IS"

let kernel_of_string = function
  | "cg" | "CG" -> Some CG
  | "ep" | "EP" -> Some EP
  | "is" | "IS" -> Some IS
  | _ -> None

let run_kernel (o : (module Omprt.Omp_intf.S)) kernel lang cls =
  match kernel with
  | CG -> Npb.Cg.run o ~lang ~cls ()
  | EP -> Npb.Ep.run o ~lang ~cls ()
  | IS -> Npb.Is.run o ~lang ~cls ()

(** Modelled runtime (seconds, kernel-internal timed region) of one
    class-C run at [nthreads] on the simulated node. *)
let sim_time ?(machine = Sim.Machine.archer2) ?(cls = Npb.Classes.C) kernel
    lang ~nthreads : float =
  let out = ref None in
  let (_ : Simrt.result) =
    Simrt.run ~machine ~num_threads:nthreads (fun o ->
        out := Some (run_kernel o kernel lang cls))
  in
  match !out with
  | Some r -> r.Npb.Result.time
  | None -> invalid_arg "Experiment.sim_time: kernel produced no result"

let sweep ?machine ?cls kernel lang threads =
  List.map (fun nt -> (nt, sim_time ?machine ?cls kernel lang ~nthreads:nt)) threads

(* ------------------------------------------------------------------ *)
(* Tables I-III.                                                       *)

let paper_table = function
  | CG -> Paper.table1
  | EP -> Paper.table2
  | IS -> Paper.table3

let lang_of_name = function
  | "Zig" -> Npb.Classes.Zig
  | "Fortran" -> Npb.Classes.Fortran
  | "C" -> Npb.Classes.C_lang
  | s -> invalid_arg ("Experiment.lang_of_name: " ^ s)

(** Regenerate one of the paper's tables; returns the rendered text and
    the mean absolute relative deviation from the paper's cells. *)
let table kernel : string * float =
  let pt = paper_table kernel in
  let ported_lang, ref_lang = pt.Paper.langs in
  let model_ported =
    sweep kernel (lang_of_name ported_lang) pt.Paper.threads
  in
  let model_ref = sweep kernel (lang_of_name ref_lang) pt.Paper.threads in
  let rows =
    List.map2
      (fun (nt, mp) ((_, mr), (pp_, pr)) ->
        [ string_of_int nt;
          Table.fseconds mp; Table.fseconds pp_;
          Table.fseconds mr; Table.fseconds pr ])
      model_ported
      (List.combine model_ref (List.combine pt.Paper.ported pt.Paper.reference))
  in
  let header =
    [ "Threads";
      ported_lang ^ " model (s)"; ported_lang ^ " paper (s)";
      ref_lang ^ " model (s)"; ref_lang ^ " paper (s)" ]
  in
  let dev =
    Stats.mean_abs_rel_err
      (List.map2 (fun (_, m) p -> (p, m)) model_ported pt.Paper.ported
       @ List.map2 (fun (_, m) p -> (p, m)) model_ref pt.Paper.reference)
  in
  let text =
    Printf.sprintf
      "%s — NPB %s class C runtime vs. thread count (model vs. paper)\n%s\n\
       mean |relative deviation| from the paper's cells: %.1f%%\n"
      pt.Paper.name pt.Paper.kernel
      (Table.render ~header rows)
      (100. *. dev)
  in
  (text, dev)

(* ------------------------------------------------------------------ *)
(* Figures 3-5: speedup curves.                                        *)

let figure_threads = [ 1; 2; 4; 8; 16; 32; 64; 96; 128 ]

let figure kernel : string =
  let pt = paper_table kernel in
  let ported_lang, ref_lang = pt.Paper.langs in
  let model_ported =
    sweep kernel (lang_of_name ported_lang) figure_threads
  in
  let model_ref = sweep kernel (lang_of_name ref_lang) figure_threads in
  let to_speedup pts =
    match pts with
    | (_, t1) :: _ -> List.map (fun (nt, t) -> (nt, t1 /. t)) pts
    | [] -> []
  in
  let fig_no = match kernel with CG -> 3 | EP -> 4 | IS -> 5 in
  Figure.render
    ~title:
      (Printf.sprintf
         "Figure %d — %s class C speedup vs. threads (simulated node, \
          with paper points)"
         fig_no pt.Paper.kernel)
    ~xlabel:"threads" ~ylabel:"speedup"
    (* later series overdraw earlier ones on shared cells: draw the
       reference first so the ported language stays visible *)
    [ { Figure.label = ref_lang ^ " (model)"; glyph = 'f';
        points = to_speedup model_ref };
      { Figure.label = ported_lang ^ " (model)"; glyph = 'z';
        points = to_speedup model_ported };
      { Figure.label = ref_lang ^ " (paper)"; glyph = 'F';
        points = Paper.speedups pt.Paper.threads pt.Paper.reference };
      { Figure.label = ported_lang ^ " (paper)"; glyph = 'Z';
        points = Paper.speedups pt.Paper.threads pt.Paper.ported };
    ]

(* ------------------------------------------------------------------ *)
(* Real-engine runs (for correctness / small classes).                 *)

let real_run kernel ?(lang = Npb.Classes.Zig) ~cls ~nthreads () =
  Omprt.Api.set_num_threads nthreads;
  let r = run_kernel (module Omprt.Omp) kernel lang cls in
  { r with Npb.Result.nthreads }

(** Everything the paper's evaluation section reports, as one string. *)
let all_artifacts () =
  let parts =
    List.concat_map
      (fun k ->
        let t, _ = table k in
        [ t; figure k ])
      [ CG; EP; IS ]
  in
  String.concat "\n" parts

(** Small statistics helpers for the benchmark harness. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation (n-1); 0 for fewer than two points. *)

val minimum : float list -> float
val maximum : float list -> float
val median : float list -> float

val rel_err : reference:float -> float -> float
(** Signed relative deviation of a measurement from a reference. *)

val mean_abs_rel_err : (float * float) list -> float
(** Mean of |relative deviation| over (reference, measured) pairs — the
    per-table summary reported in EXPERIMENTS.md. *)

lib/harness/figure.ml: Array Buffer Float List Printf String

lib/harness/stats.mli:

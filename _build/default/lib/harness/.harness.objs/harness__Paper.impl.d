lib/harness/paper.ml: List

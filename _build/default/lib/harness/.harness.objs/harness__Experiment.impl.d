lib/harness/experiment.ml: Figure List Npb Omprt Paper Printf Sim Simrt Stats String Table

lib/harness/zr_cg.ml: Array Float Interp Npb Omprt Printf Unix

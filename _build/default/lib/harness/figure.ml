(** ASCII line plots for the speedup figures.

    Renders two (or more) series of (threads, speedup) points on a
    character grid, one glyph per series, with axes and a legend — a
    terminal stand-in for the paper's Figures 3–5. *)

type series = {
  label : string;
  glyph : char;
  points : (int * float) list;  (* x = threads, y = speedup *)
}

let render ?(width = 72) ?(height = 24) ~title ~xlabel ~ylabel
    (series : series list) : string =
  let all_points = List.concat_map (fun s -> s.points) series in
  let xs = List.map (fun (x, _) -> float_of_int x) all_points in
  let ys = List.map snd all_points in
  let xmax = List.fold_left Float.max 1. xs in
  let ymax = List.fold_left Float.max 1. ys in
  let grid = Array.make_matrix height width ' ' in
  let place x y c =
    let col =
      int_of_float (float_of_int (width - 1) *. (float_of_int x /. xmax))
    in
    let row_from_bottom =
      int_of_float (float_of_int (height - 1) *. (y /. (ymax *. 1.05)))
    in
    let row = height - 1 - row_from_bottom in
    if row >= 0 && row < height && col >= 0 && col < width then
      grid.(row).(col) <- c
  in
  (* ideal-scaling reference line: speedup = threads *)
  List.iter
    (fun (x, _) -> if float_of_int x <= ymax *. 1.05 then place x (float_of_int x) '.')
    all_points;
  List.iter
    (fun s -> List.iter (fun (x, y) -> place x y s.glyph) s.points)
    series;
  let b = Buffer.create 4096 in
  Buffer.add_string b (title ^ "\n");
  for r = 0 to height - 1 do
    let yval =
      ymax *. 1.05 *. float_of_int (height - 1 - r) /. float_of_int (height - 1)
    in
    Buffer.add_string b (Printf.sprintf "%7.1f |" yval);
    Buffer.add_string b (String.init width (fun c -> grid.(r).(c)));
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b (String.make 8 ' ');
  Buffer.add_string b ("+" ^ String.make width '-');
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "%8s 1%s%d (%s)\n" "" (String.make (width - 8) ' ')
       (int_of_float xmax) xlabel);
  Buffer.add_string b (Printf.sprintf "  y: %s;  '.' = ideal scaling\n" ylabel);
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "  '%c' = %s\n" s.glyph s.label))
    series;
  Buffer.contents b

(** Staged closure compilation of a loaded Zr program.

    [compile] lowers every function of an {!Rt.program} (as produced by
    [Interp.load]) to nested OCaml closures over a flat slot frame;
    [call]/[run_main] then execute without any per-iteration AST
    dispatch or name lookup.  Both backends share {!Rt} and {!Builtins},
    so outputs, error messages and profile counts match the tree
    walker. *)

type t

(** Compile all functions of a loaded program.  The program's globals
    must be fully initialised (i.e. this runs after [Interp.load]). *)
val compile : Rt.program -> t

(** The underlying loaded program. *)
val program : t -> Rt.program

(** [call t fname args] invokes a program function on the compiled
    backend.  Raises [Value.Runtime_error] exactly where the tree
    walker would. *)
val call : t -> string -> Value.t list -> Value.t

(** Run [main]. *)
val run_main : t -> Value.t

(** Frame layout of a compiled function as [(slot, name)] pairs in
    allocation order — parameters first, then every declaration in
    compile order (shadowing allocates a fresh slot).  [None] if the
    function does not exist.  Exposed for the slot-allocation
    goldens. *)
val slot_layout : t -> string -> (int * string) list option

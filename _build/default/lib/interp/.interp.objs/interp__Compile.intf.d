lib/interp/compile.mli: Rt Value

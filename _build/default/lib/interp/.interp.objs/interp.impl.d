lib/interp/interp.ml: Array Ast Builtins Compile Hashtbl List Mutex Ompfront Option Parser Preproc Rt Scanf String Token Value Zr

lib/interp/interp.ml: Array Ast Domain Float Hashtbl List Mutex Omp_model Ompfront Omprt Option Parser Preproc Scanf String Token Value Zr

lib/interp/compile.ml: Array Ast Builtins Float Hashtbl List Omp_model Omprt Option Rt Scanf String Token Value Zr

lib/interp/builtins.ml: Array Float Hashtbl List Mutex Omp_model Omprt Rt Value

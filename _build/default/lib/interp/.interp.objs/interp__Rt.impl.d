lib/interp/rt.ml: Array Ast Domain Float Hashtbl Mutex Value Zr

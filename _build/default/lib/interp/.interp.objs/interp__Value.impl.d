lib/interp/value.ml: Array Format List Omprt

(** Tree-walking evaluator for preprocessed Zr programs.

    Runs the output of {!Preproc.Preprocess} — plain Zr whose OpenMP
    constructs have become calls into the [.omp.internal] surface — by
    binding the [__kmpc_*]/[__omp_*] builtins to the real runtime
    ({!Omprt}).  Outlined functions therefore execute on actual OCaml
    domains, with the exact fork/worksharing/reduction protocol the
    paper's generated Zig code uses against libomp.

    The interpreter is deliberately simple (this substitutes for Zig's
    LLVM backend, not for its performance): dynamic typing with Zig
    debug-mode-style trapping on misuse, environments as scope chains,
    and per-call activation records so concurrent threads never share
    local state. *)

open Zr

(* Re-export the value module: [interp.ml] is the library's root module,
   so [Value] is otherwise hidden from clients. *)
module Value = Value

exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

(** Storage for a global: ordinary shared cell, or per-thread cells for
    [threadprivate] globals (keyed by domain id; thread 0 of every team
    is the encountering domain, so its copy persists across regions as
    the OpenMP persistence rules describe). *)
type slot =
  | Plain of Value.t ref
  | Tls of { init : Value.t;
             cells : (int, Value.t ref) Hashtbl.t;
             mutex : Mutex.t }

type program = {
  ast : Ast.t;
  fns : (string, int) Hashtbl.t;          (* name -> Fn_decl node *)
  globals : (string, slot) Hashtbl.t;
  preprocessed : string;                   (* the final source text *)
}

let slot_cell = function
  | Plain r -> r
  | Tls t ->
      let key = (Domain.self () :> int) in
      Mutex.lock t.mutex;
      let cell =
        match Hashtbl.find_opt t.cells key with
        | Some c -> c
        | None ->
            let c = ref t.init in
            Hashtbl.add t.cells key c;
            c
      in
      Mutex.unlock t.mutex;
      cell

type env = {
  prog : program;
  scopes : (string, Value.t ref) Hashtbl.t list;  (* innermost first *)
}

let err = Value.err

(* ------------------------------------------------------------------ *)
(* Environment.                                                        *)

let push_scope env = { env with scopes = Hashtbl.create 8 :: env.scopes }

let declare env name v =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] -> assert false

let rec lookup_cell scopes name =
  match scopes with
  | [] -> None
  | scope :: rest ->
      (match Hashtbl.find_opt scope name with
       | Some cell -> Some cell
       | None -> lookup_cell rest name)

let find_cell env name =
  match lookup_cell env.scopes name with
  | Some cell -> Some cell
  | None -> Option.map slot_cell (Hashtbl.find_opt env.prog.globals name)

(* ------------------------------------------------------------------ *)
(* Arithmetic with int/float coercion.                                 *)

let arith op_i op_f a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> Value.VInt (op_i x y)
  | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) ->
      Value.VFloat (op_f (Value.to_float a) (Value.to_float b))
  | _ ->
      err "arithmetic on %s and %s" (Value.type_name a) (Value.type_name b)

let compare_vals a b =
  match a, b with
  | Value.VInt x, Value.VInt y -> compare x y
  | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) ->
      compare (Value.to_float a) (Value.to_float b)
  | Value.VBool x, Value.VBool y -> compare x y
  | Value.VStr x, Value.VStr y -> compare x y
  | _ ->
      err "comparison of %s and %s" (Value.type_name a) (Value.type_name b)

(* ------------------------------------------------------------------ *)
(* Pointers.                                                           *)

let ptr_read = function
  | Value.PVar r -> !r
  | Value.PElemF (a, i) -> Value.VFloat a.(i)
  | Value.PElemI (a, i) -> Value.VInt a.(i)

let ptr_write p v =
  match p with
  | Value.PVar r -> r := v
  | Value.PElemF (a, i) -> a.(i) <- Value.to_float v
  | Value.PElemI (a, i) -> a.(i) <- Value.to_int v

(* ------------------------------------------------------------------ *)
(* Evaluation.                                                         *)

let rec eval env node : Value.t =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Int_lit ->
      let text = Ast.token_text ast n.main_token in
      let text = String.concat "" (String.split_on_char '_' text) in
      VInt (int_of_string text)
  | Ast.Float_lit -> VFloat (float_of_string (Ast.token_text ast n.main_token))
  | Ast.String_lit ->
      let raw = Ast.token_text ast n.main_token in
      VStr (Scanf.unescaped (String.sub raw 1 (String.length raw - 2)))
  | Ast.Bool_lit -> VBool (Ast.token_text ast n.main_token = "true")
  | Ast.Undefined_lit -> VUndef
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match find_cell env name with
       | Some cell -> !cell
       | None ->
           if Hashtbl.mem env.prog.fns name then VFun name
           else err "use of undeclared identifier '%s'" name)
  | Ast.Bin_op -> eval_binop env n
  | Ast.Un_op ->
      let v = eval env n.lhs in
      (match (Ast.token ast n.main_token).Token.tag, v with
       | Token.Minus, Value.VInt i -> VInt (-i)
       | Token.Minus, Value.VFloat f -> VFloat (-.f)
       | Token.Bang, Value.VBool b -> VBool (not b)
       | t, v ->
           err "unary '%s' on %s" (Token.tag_to_string t) (Value.type_name v))
  | Ast.Index ->
      let arr = eval env n.lhs in
      let idx = Value.to_int (eval env n.rhs) in
      (match arr with
       | VFloatArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           VFloat a.(idx)
       | VIntArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           VInt a.(idx)
       | v -> err "indexing a %s" (Value.type_name v))
  | Ast.Field ->
      let base = eval env n.lhs in
      let fname = Ast.token_text ast n.main_token in
      (match base with
       | VStruct fields -> Value.struct_field fields fname
       | v -> err "field access '.%s' on %s" fname (Value.type_name v))
  | Ast.Deref ->
      (match eval env n.lhs with
       | VPtr p -> ptr_read p
       | v -> err "dereference of %s" (Value.type_name v))
  | Ast.Addr_of -> eval_addr_of env n.lhs
  | Ast.Struct_lit ->
      let count = Ast.extra ast n.rhs in
      let fields =
        List.init count (fun k ->
            let name_tok = Ast.extra ast (n.rhs + 1 + (2 * k)) in
            let vnode = Ast.extra ast (n.rhs + 2 + (2 * k)) in
            (Ast.token_text ast name_tok, eval env vnode))
      in
      VStruct fields
  | Ast.Call -> eval_call env node
  | tag ->
      err "cannot evaluate node tag %s as an expression"
        (match tag with Ast.Block -> "block" | _ -> "<stmt>")

and eval_binop env n =
  let ast = env.prog.ast in
  let t = (Ast.token ast n.Ast.main_token).Token.tag in
  match t with
  | Token.Kw_and ->
      if Value.to_bool (eval env n.lhs) then eval env n.rhs else VBool false
  | Token.Kw_or ->
      if Value.to_bool (eval env n.lhs) then VBool true else eval env n.rhs
  | _ ->
      let a = eval env n.lhs in
      let b = eval env n.rhs in
      (match t with
       | Token.Plus -> arith ( + ) ( +. ) a b
       | Token.Minus -> arith ( - ) ( -. ) a b
       | Token.Star -> arith ( * ) ( *. ) a b
       | Token.Slash ->
           (match a, b with
            | Value.VInt _, Value.VInt 0 -> err "integer division by zero"
            | Value.VInt x, Value.VInt y -> VInt (x / y)
            | _ -> VFloat (Value.to_float a /. Value.to_float b))
       | Token.Percent ->
           (match a, b with
            | Value.VInt _, Value.VInt 0 -> err "integer modulo by zero"
            | Value.VInt x, Value.VInt y -> VInt (x mod y)
            | _ -> VFloat (Float.rem (Value.to_float a) (Value.to_float b)))
       | Token.Eq_eq -> VBool (compare_vals a b = 0)
       | Token.Bang_eq -> VBool (compare_vals a b <> 0)
       | Token.Lt -> VBool (compare_vals a b < 0)
       | Token.Lt_eq -> VBool (compare_vals a b <= 0)
       | Token.Gt -> VBool (compare_vals a b > 0)
       | Token.Gt_eq -> VBool (compare_vals a b >= 0)
       | t -> err "unsupported binary operator '%s'" (Token.tag_to_string t))

and eval_addr_of env node =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match find_cell env name with
       | Some cell -> VPtr (PVar cell)
       | None -> err "address of undeclared identifier '%s'" name)
  | Ast.Deref ->
      (* &p.* is p *)
      (match eval env n.lhs with
       | VPtr _ as p -> p
       | v -> err "dereference of %s" (Value.type_name v))
  | Ast.Index ->
      let arr = eval env n.lhs in
      let idx = Value.to_int (eval env n.rhs) in
      (match arr with
       | VFloatArr a -> VPtr (PElemF (a, idx))
       | VIntArr a -> VPtr (PElemI (a, idx))
       | v -> err "address of an element of %s" (Value.type_name v))
  | _ -> err "cannot take the address of this expression"

(* lvalue evaluation: returns read/write access *)
and eval_lvalue env node : (unit -> Value.t) * (Value.t -> unit) =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Ident ->
      let name = Ast.token_text ast n.main_token in
      (match find_cell env name with
       | Some cell -> ((fun () -> !cell), fun v -> cell := v)
       | None -> err "assignment to undeclared identifier '%s'" name)
  | Ast.Index ->
      let arr = eval env n.lhs in
      let idx = Value.to_int (eval env n.rhs) in
      (match arr with
       | VFloatArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           ((fun () -> Value.VFloat a.(idx)),
            fun v -> a.(idx) <- Value.to_float v)
       | VIntArr a ->
           if idx < 0 || idx >= Array.length a then
             err "index %d out of bounds (len %d)" idx (Array.length a);
           ((fun () -> Value.VInt a.(idx)),
            fun v -> a.(idx) <- Value.to_int v)
       | v -> err "indexed assignment to %s" (Value.type_name v))
  | Ast.Deref ->
      (match eval env n.lhs with
       | VPtr p -> ((fun () -> ptr_read p), fun v -> ptr_write p v)
       | v -> err "assignment through %s" (Value.type_name v))
  | _ -> err "invalid assignment target"

and exec env node : unit =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  match n.Ast.tag with
  | Ast.Block ->
      let inner = push_scope env in
      List.iter (exec inner) (Ast.block_stmts ast node)
  | Ast.Var_decl | Ast.Const_decl ->
      let name = Ast.token_text ast n.main_token in
      let v = if n.rhs = 0 then Value.VUndef else eval env n.rhs in
      declare env name v
  | Ast.Assign ->
      let _, write = eval_lvalue env n.lhs in
      let read, _ = eval_lvalue env n.lhs in
      let rhs = eval env n.rhs in
      (match (Ast.token ast n.main_token).Token.tag with
       | Token.Eq -> write rhs
       | Token.Plus_eq -> write (arith ( + ) ( +. ) (read ()) rhs)
       | Token.Minus_eq -> write (arith ( - ) ( -. ) (read ()) rhs)
       | Token.Star_eq -> write (arith ( * ) ( *. ) (read ()) rhs)
       | Token.Slash_eq ->
           write (VFloat (Value.to_float (read ()) /. Value.to_float rhs))
       | t -> err "unsupported assignment operator '%s'" (Token.tag_to_string t))
  | Ast.While ->
      let cont = Ast.extra ast n.rhs in
      let body = Ast.extra ast (n.rhs + 1) in
      let rec loop () =
        if Value.to_bool (eval env n.lhs) then begin
          (try exec env body with Continue_exc -> ());
          if cont <> 0 then exec env cont;
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | Ast.If ->
      let then_ = Ast.extra ast n.rhs in
      let else_ = Ast.extra ast (n.rhs + 1) in
      if Value.to_bool (eval env n.lhs) then exec env then_
      else if else_ <> 0 then exec env else_
  | Ast.Return ->
      raise (Return_exc (if n.lhs = 0 then Value.VUnit else eval env n.lhs))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Expr_stmt -> ignore (eval env n.lhs)
  | Ast.Omp_parallel | Ast.Omp_for | Ast.Omp_parallel_for | Ast.Omp_barrier
  | Ast.Omp_critical | Ast.Omp_master | Ast.Omp_single | Ast.Omp_atomic ->
      err "OpenMP directive reached the interpreter: the program was not \
           preprocessed"
  | _ -> err "invalid statement node"

(* ------------------------------------------------------------------ *)
(* Calls.                                                              *)

and eval_call env node : Value.t =
  let ast = env.prog.ast in
  let n = Ast.node ast node in
  let args_nodes = Ast.call_args ast node in
  let callee = Ast.node ast n.lhs in
  match callee.Ast.tag with
  | Ast.Field ->
      let base = Ast.node ast callee.Ast.lhs in
      let meth = Ast.token_text ast callee.Ast.main_token in
      if base.Ast.tag = Ast.Ident
         && Ast.token_text ast base.Ast.main_token = "omp"
         && find_cell env "omp" = None
      then
        let args = List.map (eval env) args_nodes in
        omp_namespace meth args
      else begin
        (* method-style call through a struct field holding a function *)
        match eval env n.lhs with
        | Value.VFun fname ->
            call_function env.prog fname (List.map (eval env) args_nodes)
        | v -> err "call of %s" (Value.type_name v)
      end
  | Ast.Ident ->
      let fname = Ast.token_text ast callee.Ast.main_token in
      (match find_cell env fname with
       | Some { contents = Value.VFun f } ->
           call_function env.prog f (List.map (eval env) args_nodes)
       | Some v -> err "call of %s" (Value.type_name !v)
       | None ->
           if Hashtbl.mem env.prog.fns fname then
             call_function env.prog fname (List.map (eval env) args_nodes)
           else builtin env fname (List.map (eval env) args_nodes))
  | _ ->
      (match eval env n.lhs with
       | Value.VFun fname ->
           call_function env.prog fname (List.map (eval env) args_nodes)
       | v -> err "call of %s" (Value.type_name v))

and call_function prog fname args : Value.t =
  match Hashtbl.find_opt prog.fns fname with
  | None -> err "call of unknown function '%s'" fname
  | Some fn_node ->
      let ast = prog.ast in
      let n = Ast.node ast fn_node in
      let proto = n.Ast.lhs in
      let nparams = Ast.extra ast proto in
      if List.length args <> nparams then
        err "function '%s' expects %d arguments, got %d" fname nparams
          (List.length args);
      let env = { prog; scopes = [ Hashtbl.create 8 ] } in
      List.iteri
        (fun k v ->
          let name_tok = Ast.extra ast (proto + 1 + (2 * k)) in
          declare env (Ast.token_text ast name_tok) v)
        args;
      (try
         exec env n.Ast.rhs;
         Value.VUnit
       with Return_exc v -> v)

(* ------------------------------------------------------------------ *)
(* The omp.* namespace (paper section III-C: the standard API with the
   omp_ prefix stripped).                                              *)

and omp_namespace meth args : Value.t =
  match meth, args with
  | "get_thread_num", [] -> VInt (Omprt.Api.get_thread_num ())
  | "get_num_threads", [] -> VInt (Omprt.Api.get_num_threads ())
  | "get_max_threads", [] -> VInt (Omprt.Api.get_max_threads ())
  | "set_num_threads", [ v ] ->
      Omprt.Api.set_num_threads (Value.to_int v);
      VUnit
  | "get_num_procs", [] -> VInt (Omprt.Api.get_num_procs ())
  | "in_parallel", [] -> VBool (Omprt.Api.in_parallel ())
  | "get_level", [] -> VInt (Omprt.Api.get_level ())
  | "get_wtime", [] -> VFloat (Omprt.Api.get_wtime ())
  | "get_wtick", [] -> VFloat (Omprt.Api.get_wtick ())
  | _ -> err "unknown omp.%s/%d" meth (List.length args)

(* ------------------------------------------------------------------ *)
(* Host functions: the interoperability story.

   The paper's section IV integrates Zig with Fortran/C by declaring
   foreign procedures with C linkage; our analogue lets the host (OCaml)
   register functions that Zr code calls by name, exactly like an
   [extern fn] declaration.  Registration happens before execution, so
   the table is read-only while teams run. *)

and host_fns : (string, Value.t list -> Value.t) Hashtbl.t =
  Hashtbl.create 16

(* ------------------------------------------------------------------ *)
(* Builtins: the .omp.internal surface targeted by generated code, plus
   a few host utilities for writing programs.                          *)

and builtin env fname args : Value.t =
  let fl = Value.to_float and it = Value.to_int in
  match fname, args with
  (* --- fork/join --- *)
  | "__kmpc_fork_call", [ VFun f; fp; sh; red; nt ] ->
      let num_threads =
        match it nt with 0 -> None | n -> Some n
      in
      Omprt.Kmpc.fork_call ?num_threads
        (fun () -> ignore (call_function env.prog f [ fp; sh; red ]))
        ();
      VUnit
  | "__kmpc_barrier", [] -> Omprt.Kmpc.barrier (); VUnit
  (* --- static worksharing --- *)
  | "__kmpc_for_static_init", [ lb; ub; step; incl ] ->
      let lo = it lb and step = it step in
      let hi =
        if it incl = 1 then
          (if step > 0 then it ub + 1 else it ub - 1)
        else it ub
      in
      (match Omprt.Kmpc.for_static_init ~lo ~hi ~step () with
       | Some { lower; upper; _ } ->
           VStruct [ ("has", VBool true); ("lower", VInt lower);
                     ("upper", VInt upper) ]
       | None ->
           VStruct [ ("has", VBool false); ("lower", VInt 0);
                     ("upper", VInt 0) ])
  | "__kmpc_for_static_fini", [] -> Omprt.Kmpc.for_static_fini (); VUnit
  (* --- dispatcher protocol --- *)
  | "__kmpc_static_chunked_init", [ lb; ub; step; chunk; incl ] ->
      let lo = it lb and step = it step and chunk = it chunk in
      let hi =
        if it incl = 1 then (if step > 0 then it ub + 1 else it ub - 1)
        else it ub
      in
      let trips = Omprt.Ws.trip_count ~lo ~hi ~step () in
      let tid = Omprt.Api.get_thread_num () in
      let nth = Omprt.Api.get_num_threads () in
      let chunks =
        List.map
          (fun (b, e) -> (lo + (b * step), lo + ((e - 1) * step)))
          (Omprt.Ws.static_chunks ~tid ~nthreads:nth ~trips ~chunk)
      in
      VDispatch (Chunked (ref chunks))
  | "__kmpc_dispatch_init_dynamic", [ lb; ub; step; chunk; incl ]
  | "__kmpc_dispatch_init_guided", [ lb; ub; step; chunk; incl ]
  | "__kmpc_dispatch_init_runtime", [ lb; ub; step; chunk; incl ] ->
      let lo = it lb and step = it step and chunk = max 1 (it chunk) in
      let hi =
        if it incl = 1 then (if step > 0 then it ub + 1 else it ub - 1)
        else it ub
      in
      let sched =
        match fname with
        | "__kmpc_dispatch_init_dynamic" -> Omp_model.Sched.Dynamic chunk
        | "__kmpc_dispatch_init_guided" -> Omp_model.Sched.Guided chunk
        | _ -> Omp_model.Sched.Runtime
      in
      VDispatch (Shared (Omprt.Kmpc.dispatch_init ~sched ~lo ~hi ~step ()))
  | "__kmpc_dispatch_next", [ VDispatch h ] ->
      let result =
        match h with
        | Shared d -> Omprt.Kmpc.dispatch_next d
        | Chunked chunks ->
            (match !chunks with
             | [] -> None
             | c :: rest -> chunks := rest; Some c)
      in
      (match result with
       | Some (lower, upper) ->
           VStruct [ ("more", VBool true); ("lower", VInt lower);
                     ("upper", VInt upper) ]
       | None ->
           VStruct [ ("more", VBool false); ("lower", VInt 0);
                     ("upper", VInt 0) ])
  (* --- synchronisation --- *)
  | "__kmpc_critical", [ VStr name ] ->
      (* time the acquisition so --profile sees critical contention *)
      Omprt.Profile.timed Omprt.Profile.Critical_wait (fun () ->
          Mutex.lock (Omprt.Lock.critical_lock name));
      VUnit
  | "__kmpc_end_critical", [ VStr name ] ->
      Mutex.unlock (Omprt.Lock.critical_lock name); VUnit
  | "__kmpc_single", [] -> VBool (Omprt.Kmpc.single_begin ())
  | "__kmpc_end_single", [] -> Omprt.Kmpc.single_end (); VUnit
  | "__kmpc_atomic_begin", [] -> Omprt.Kmpc.atomic_begin (); VUnit
  | "__kmpc_atomic_end", [] -> Omprt.Kmpc.atomic_end (); VUnit
  | "__omp_get_thread_num", [] -> VInt (Omprt.Api.get_thread_num ())
  (* --- reduction cells (paper III-B1: Zig atomics + CAS loops) --- *)
  | "__omp_atomic_new", [ v ] ->
      (match v with
       | VInt i -> VAtomicI (Omprt.Atomics.Int.make i)
       | VFloat f -> VAtomicF (Omprt.Atomics.Float.make f)
       | VUndef -> VAtomicF (Omprt.Atomics.Float.make 0.)
       | v -> err "__omp_atomic_new on %s" (Value.type_name v))
  | "__omp_atomic_load", [ VAtomicF a ] -> VFloat (Omprt.Atomics.Float.get a)
  | "__omp_atomic_load", [ VAtomicI a ] -> VInt (Omprt.Atomics.Int.get a)
  | "__omp_atomic_combine_add", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.add a (fl v); VUnit
  | "__omp_atomic_combine_add", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.add a (it v); VUnit
  | "__omp_atomic_combine_mul", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.mul a (fl v); VUnit
  | "__omp_atomic_combine_mul", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.mul a (it v); VUnit
  | "__omp_atomic_combine_min", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.min a (fl v); VUnit
  | "__omp_atomic_combine_min", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.min a (it v); VUnit
  | "__omp_atomic_combine_max", [ VAtomicF a; v ] ->
      Omprt.Atomics.Float.max a (fl v); VUnit
  | "__omp_atomic_combine_max", [ VAtomicI a; v ] ->
      Omprt.Atomics.Int.max a (it v); VUnit
  (* --- worksharing helpers --- *)
  | "__omp_ws_cmp", [ i; upper; step ] ->
      VBool (if it step > 0 then it i <= it upper else it i >= it upper)
  | "__omp_trips", [ lb; ub; step; incl ] ->
      VInt
        (Omprt.Ws.trip_count ~inclusive:(it incl = 1) ~lo:(it lb)
           ~hi:(it ub) ~step:(it step) ())
  | "__omp_huge", [] -> VFloat infinity
  | "__omp_min", [ a; b ] -> if compare_vals a b <= 0 then a else b
  | "__omp_max", [ a; b ] -> if compare_vals a b >= 0 then a else b
  (* --- host utilities for writing programs --- *)
  | "alloc_f64", [ n ] -> VFloatArr (Array.make (it n) 0.)
  | "alloc_i64", [ n ] -> VIntArr (Array.make (it n) 0)
  | "len", [ VFloatArr a ] -> VInt (Array.length a)
  | "len", [ VIntArr a ] -> VInt (Array.length a)
  | "sqrt", [ v ] -> VFloat (sqrt (fl v))
  | "log", [ v ] -> VFloat (log (fl v))
  | "exp", [ v ] -> VFloat (exp (fl v))
  | "fabs", [ v ] -> VFloat (Float.abs (fl v))
  | "floor", [ v ] -> VFloat (Float.floor (fl v))
  | "int_of", [ v ] -> VInt (it v)
  | "float_of", [ v ] -> VFloat (fl v)
  | "print", [ v ] ->
      print_endline (Value.to_string v);
      VUnit
  | _ ->
      (match Hashtbl.find_opt host_fns fname with
       | Some f -> f args
       | None ->
           err "unknown function or builtin '%s'/%d" fname
             (List.length args))

(* ------------------------------------------------------------------ *)
(* Program loading.                                                    *)

(** Load a Zr program: preprocess OpenMP pragmas (unless [preprocess] is
    false), parse, register functions, and evaluate global
    initialisers in order. *)
let load ?(name = "<input>") ?(preprocess = true) (source : string) : program =
  let text =
    if preprocess then Preproc.Preprocess.run ~name source else source
  in
  let ast, _spans = Parser.parse_string ~name text in
  let prog = {
    ast;
    fns = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    preprocessed = text;
  } in
  List.iter
    (fun d ->
      let n = Ast.node ast d in
      match n.Ast.tag with
      | Ast.Fn_decl ->
          Hashtbl.replace prog.fns (Ast.token_text ast n.main_token) d
      | Ast.Var_decl | Ast.Const_decl ->
          let name = Ast.token_text ast n.main_token in
          let env = { prog; scopes = [] } in
          let v = if n.rhs = 0 then Value.VUndef else eval env n.rhs in
          Hashtbl.replace prog.globals name (Plain (ref v))
      | Ast.Omp_threadprivate ->
          (* convert the named globals to per-thread storage, seeded
             with their current (initial) value *)
          let cl = Ast.clauses ast d in
          List.iter
            (fun id ->
              let gname =
                Ast.token_text ast (Ast.node ast id).Ast.main_token
              in
              match Hashtbl.find_opt prog.globals gname with
              | Some (Plain r) ->
                  Hashtbl.replace prog.globals gname
                    (Tls { init = !r; cells = Hashtbl.create 8;
                           mutex = Mutex.create () })
              | Some (Tls _) -> ()
              | None ->
                  Value.err
                    "threadprivate(%s): no such global variable" gname)
            cl.Ompfront.Directive.private_
      | _ -> ())
    (Ast.top_decls ast);
  prog

(** Call an exported function with host values. *)
let call prog fname args = call_function prog fname args

(** [register_host name f] — make the OCaml function [f] callable from
    Zr as [name(...)], the moral equivalent of Zig's [extern fn]
    declarations used for C and Fortran interop (paper section IV).
    Must be called before execution; shadowed by same-named Zr
    functions and builtins. *)
let register_host name f = Hashtbl.replace host_fns name f

let unregister_host name = Hashtbl.remove host_fns name

(** Run [main]. *)
let run_main prog = call prog "main" []

(** OpenMP loop schedules.

    Mirrors the schedule kinds of the OpenMP 5.2 specification that the
    paper's preprocessor recognises (section III-B2): [static] (optionally
    chunked), [dynamic], [guided], [runtime] and [auto].  The integer
    encodings in {!to_kmp}/{!of_kmp} are the [sched_type] enumeration
    values of LLVM's libomp ([kmp.h]), which the generated calls to
    [__kmpc_dispatch_init] pass verbatim. *)

type t =
  | Static of int option
      (** [Static None] — one contiguous block per thread;
          [Static (Some c)] — round-robin chunks of [c] iterations. *)
  | Dynamic of int  (** first-come first-served chunks of the given size *)
  | Guided of int   (** exponentially decreasing chunks, minimum size given *)
  | Runtime         (** taken from the [OMP_SCHEDULE] ICV at run time *)
  | Auto            (** implementation-defined; we map it to [Static None] *)

(* libomp sched_type values (kmp.h): kmp_sch_static_chunked = 33,
   kmp_sch_static = 34, kmp_sch_dynamic_chunked = 35,
   kmp_sch_guided_chunked = 36, kmp_sch_runtime = 37, kmp_sch_auto = 38. *)
let kmp_sch_static_chunked = 33
let kmp_sch_static = 34
let kmp_sch_dynamic_chunked = 35
let kmp_sch_guided_chunked = 36
let kmp_sch_runtime = 37
let kmp_sch_auto = 38

let to_kmp = function
  | Static None -> kmp_sch_static
  | Static (Some _) -> kmp_sch_static_chunked
  | Dynamic _ -> kmp_sch_dynamic_chunked
  | Guided _ -> kmp_sch_guided_chunked
  | Runtime -> kmp_sch_runtime
  | Auto -> kmp_sch_auto

let chunk = function
  | Static None | Runtime | Auto -> None
  | Static (Some c) -> Some c
  | Dynamic c | Guided c -> Some c

let of_kmp ?(chunk = 1) kind =
  if kind = kmp_sch_static then Some (Static None)
  else if kind = kmp_sch_static_chunked then Some (Static (Some chunk))
  else if kind = kmp_sch_dynamic_chunked then Some (Dynamic chunk)
  else if kind = kmp_sch_guided_chunked then Some (Guided chunk)
  else if kind = kmp_sch_runtime then Some Runtime
  else if kind = kmp_sch_auto then Some Auto
  else None

let to_string = function
  | Static None -> "static"
  | Static (Some c) -> Printf.sprintf "static,%d" c
  | Dynamic c -> Printf.sprintf "dynamic,%d" c
  | Guided c -> Printf.sprintf "guided,%d" c
  | Runtime -> "runtime"
  | Auto -> "auto"

(* Parse the [OMP_SCHEDULE]-style syntax: "kind[,chunk]". *)
let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  let kind, chunk =
    match String.index_opt s ',' with
    | None -> (s, None)
    | Some i ->
        let k = String.trim (String.sub s 0 i) in
        let c = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
        (k, int_of_string_opt c)
  in
  match kind, chunk with
  | "static", c -> Some (Static c)
  | "dynamic", c -> Some (Dynamic (Option.value c ~default:1))
  | "guided", c -> Some (Guided (Option.value c ~default:1))
  | "runtime", None -> Some Runtime
  | "auto", None -> Some Auto
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = a = b

(** Abstract work descriptors used by the performance model.

    A [Cost.t] describes the resource demand of a piece of work
    independently of the machine executing it: floating-point operations
    (or op-equivalents), sequentially-streamed DRAM bytes, and
    randomly-accessed (gather/scatter) DRAM bytes.  The two byte classes
    matter because hardware sustains very different bandwidths for them
    and they saturate the memory system at different thread counts —
    streamed traffic is what bounds NPB CG's sparse matrix-vector
    product, while scattered traffic is what bounds NPB IS's ranking.
    The discrete-event simulator converts a cost into virtual seconds
    with a roofline model (see [Sim.Perfmodel]); the real runtime
    ignores costs entirely and simply executes the attached closure. *)

type t = {
  flops : float;   (** floating point operations (or op-equivalents) *)
  bytes : float;   (** sequentially streamed bytes to/from DRAM, cold-cache *)
  gather : float;  (** randomly accessed bytes to/from DRAM, cold-cache *)
}

let zero = { flops = 0.; bytes = 0.; gather = 0. }

let make ?(flops = 0.) ?(bytes = 0.) ?(gather = 0.) () = { flops; bytes; gather }

let flops f = { zero with flops = f }

let bytes b = { zero with bytes = b }

let gather g = { zero with gather = g }

let add a b =
  { flops = a.flops +. b.flops;
    bytes = a.bytes +. b.bytes;
    gather = a.gather +. b.gather }

let scale k c =
  { flops = k *. c.flops; bytes = k *. c.bytes; gather = k *. c.gather }

let ( + ) = add

let total_bytes c = c.bytes +. c.gather

let is_zero c = c.flops = 0. && c.bytes = 0. && c.gather = 0.

let pp ppf c =
  Format.fprintf ppf "{flops=%.3g; bytes=%.3g; gather=%.3g}"
    c.flops c.bytes c.gather

let to_string c = Format.asprintf "%a" pp c

let equal a b = a.flops = b.flops && a.bytes = b.bytes && a.gather = b.gather

(** Abstract work descriptors used by the performance model.

    A {!t} describes the resource demand of a piece of work
    independently of the machine executing it.  The discrete-event
    simulator converts a cost into virtual seconds with a roofline
    model; the real runtime ignores costs entirely. *)

type t = {
  flops : float;   (** floating point operations (or op-equivalents) *)
  bytes : float;   (** sequentially streamed bytes to/from DRAM, cold-cache *)
  gather : float;  (** randomly accessed bytes to/from DRAM, cold-cache *)
}

val zero : t

val make : ?flops:float -> ?bytes:float -> ?gather:float -> unit -> t

val flops : float -> t
(** A pure-compute cost. *)

val bytes : float -> t
(** A pure streamed-traffic cost. *)

val gather : float -> t
(** A pure scattered-traffic cost. *)

val add : t -> t -> t

val scale : float -> t -> t

val ( + ) : t -> t -> t

val total_bytes : t -> float
(** Streamed plus scattered bytes. *)

val is_zero : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

(** OpenMP loop schedules.

    The schedule kinds of OpenMP 5.2 that the paper's preprocessor
    recognises, with conversions to libomp's [sched_type] codes and the
    [OMP_SCHEDULE] string syntax. *)

type t =
  | Static of int option
      (** [Static None] — one contiguous block per thread;
          [Static (Some c)] — round-robin chunks of [c] iterations. *)
  | Dynamic of int  (** first-come first-served chunks of the given size *)
  | Guided of int   (** exponentially decreasing chunks, minimum size given *)
  | Runtime         (** taken from the [OMP_SCHEDULE] ICV at run time *)
  | Auto            (** implementation-defined; mapped to [Static None] *)

(** libomp [sched_type] enumeration values (kmp.h). *)

val kmp_sch_static_chunked : int
val kmp_sch_static : int
val kmp_sch_dynamic_chunked : int
val kmp_sch_guided_chunked : int
val kmp_sch_runtime : int
val kmp_sch_auto : int

val to_kmp : t -> int
(** The [sched_type] code sent to [__kmpc_dispatch_init]. *)

val of_kmp : ?chunk:int -> int -> t option

val chunk : t -> int option
(** The chunk parameter, when the schedule carries one. *)

val to_string : t -> string
(** [OMP_SCHEDULE] syntax: ["kind[,chunk]"]. *)

val of_string : string -> t option
(** Parse the [OMP_SCHEDULE] syntax; [None] on malformed input. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

lib/model/cost.mli: Format

lib/model/sched.ml: Format Option Printf String

lib/model/cost.ml: Format

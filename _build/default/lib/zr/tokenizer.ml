(** The Zr tokeniser.

    One pass over the source producing an array of tokens.  Plain [//]
    comments are skipped; the [//$omp] sentinel instead emits a
    {!Token.Pragma_sentinel} token and switches the tokeniser into
    pragma mode, in which the rest of the line is tokenised as regular
    code (the paper's choice B in Figure 1 discussion: reuse the
    existing tokeniser machinery for the pragma's interior) and a
    {!Token.Pragma_end} marks the newline. *)

let sentinel = "//$omp"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '@'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : Source.t) : Token.t array =
  let text = src.Source.text in
  let n = String.length text in
  let tokens = ref [] in
  let emit tag start stop = tokens := { Token.tag; start; stop } :: !tokens in
  let in_pragma = ref false in
  let i = ref 0 in
  let starts_with s at =
    at + String.length s <= n && String.sub text at (String.length s) = s
  in
  while !i < n do
    let c = text.[!i] in
    let start = !i in
    if c = '\n' then begin
      if !in_pragma then begin
        emit Token.Pragma_end start (start + 1);
        in_pragma := false
      end;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if starts_with sentinel !i then begin
      emit Token.Pragma_sentinel start (start + String.length sentinel);
      in_pragma := true;
      i := !i + String.length sentinel
    end
    else if starts_with "//" !i then begin
      (* ordinary comment: skip to end of line *)
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      while !i < n && is_ident_char text.[!i] do incr i done;
      let s = String.sub text start (!i - start) in
      match Token.keyword_of_string s with
      | Some kw -> emit kw start !i
      | None -> emit Token.Identifier start !i
    end
    else if is_digit c then begin
      let is_float = ref false in
      while !i < n && (is_digit text.[!i] || text.[!i] = '_') do incr i done;
      if !i < n && text.[!i] = '.'
         && !i + 1 < n && is_digit text.[!i + 1] then begin
        is_float := true;
        incr i;
        while !i < n && is_digit text.[!i] do incr i done
      end;
      if !i < n && (text.[!i] = 'e' || text.[!i] = 'E') then begin
        let j = !i + 1 in
        let j = if j < n && (text.[j] = '+' || text.[j] = '-') then j + 1 else j in
        if j < n && is_digit text.[j] then begin
          is_float := true;
          i := j;
          while !i < n && is_digit text.[!i] do incr i done
        end
      end;
      emit (if !is_float then Token.Float_literal else Token.Int_literal)
        start !i
    end
    else if c = '"' then begin
      incr i;
      while !i < n && text.[!i] <> '"' && text.[!i] <> '\n' do
        if text.[!i] = '\\' && !i + 1 < n then i := !i + 2 else incr i
      done;
      if !i >= n || text.[!i] <> '"' then
        Source.error src start "unterminated string literal";
      incr i;
      emit Token.String_literal start !i
    end
    else begin
      (* operators and punctuation, longest match first *)
      let two = if !i + 1 < n then String.sub text !i 2 else "" in
      let tag2 =
        match two with
        | ".*" -> Some Token.Dot_star
        | ".{" -> Some Token.Dot_brace
        | "+=" -> Some Token.Plus_eq
        | "-=" -> Some Token.Minus_eq
        | "*=" -> Some Token.Star_eq
        | "/=" -> Some Token.Slash_eq
        | "==" -> Some Token.Eq_eq
        | "!=" -> Some Token.Bang_eq
        | "<=" -> Some Token.Lt_eq
        | ">=" -> Some Token.Gt_eq
        | _ -> None
      in
      match tag2 with
      | Some tag ->
          emit tag start (start + 2);
          i := !i + 2
      | None ->
          let tag1 =
            match c with
            | '(' -> Token.L_paren | ')' -> Token.R_paren
            | '{' -> Token.L_brace | '}' -> Token.R_brace
            | '[' -> Token.L_bracket | ']' -> Token.R_bracket
            | ',' -> Token.Comma | ';' -> Token.Semicolon
            | ':' -> Token.Colon | '.' -> Token.Dot
            | '+' -> Token.Plus | '-' -> Token.Minus
            | '*' -> Token.Star | '/' -> Token.Slash
            | '%' -> Token.Percent
            | '=' -> Token.Eq | '<' -> Token.Lt | '>' -> Token.Gt
            | '!' -> Token.Bang | '&' -> Token.Amp
            | _ -> Source.error src start "unexpected character %C" c
          in
          emit tag1 start (start + 1);
          incr i
    end
  done;
  if !in_pragma then emit Token.Pragma_end n n;
  emit Token.Eof n n;
  Array.of_list (List.rev !tokens)

(** Token text, for identifier comparison and literal decoding. *)
let text (src : Source.t) (t : Token.t) =
  Source.slice src ~start:t.Token.start ~stop:t.Token.stop

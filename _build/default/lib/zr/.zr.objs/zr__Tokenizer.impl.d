lib/zr/tokenizer.ml: Array List Source String Token

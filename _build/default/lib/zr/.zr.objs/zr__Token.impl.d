lib/zr/token.ml: Hashtbl List

lib/zr/ast.ml: Array Ompfront Source Token Tokenizer

lib/zr/parser.ml: Array Ast List Ompfront Source Token Tokenizer

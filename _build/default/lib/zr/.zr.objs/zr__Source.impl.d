lib/zr/source.ml: Array Format List String

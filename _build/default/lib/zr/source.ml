(** Source buffers and positions.

    Offsets are byte indices into the original text.  The Zig compiler
    keeps a strict connection between AST nodes and source bytes — the
    property that (per the paper, section III-B) makes AST injection
    infeasible and forces the preprocessor design — so every token and
    node here carries its [start]/[stop] offsets, and line/column
    information is recovered on demand. *)

type t = {
  name : string;
  text : string;
  line_starts : int array;  (* byte offset of the start of each line *)
}

let of_string ?(name = "<input>") text =
  let starts = ref [ 0 ] in
  String.iteri
    (fun i c -> if c = '\n' then starts := (i + 1) :: !starts)
    text;
  { name; text; line_starts = Array.of_list (List.rev !starts) }

let length t = String.length t.text

(** [slice t ~start ~stop] — the raw text in [\[start, stop)]. *)
let slice t ~start ~stop =
  String.sub t.text start (stop - start)

(** Line (1-based) and column (1-based) of a byte offset. *)
let position t offset =
  (* binary search for the greatest line start <= offset *)
  let lo = ref 0 and hi = ref (Array.length t.line_starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.line_starts.(mid) <= offset then lo := mid else hi := mid - 1
  done;
  (!lo + 1, offset - t.line_starts.(!lo) + 1)

let line_of t offset = fst (position t offset)

let pp_position t ppf offset =
  let line, col = position t offset in
  Format.fprintf ppf "%s:%d:%d" t.name line col

exception Error of string

(** Raise a located error. *)
let error t offset fmt =
  Format.kasprintf
    (fun msg ->
      raise (Error (Format.asprintf "%a: %s" (pp_position t) offset msg)))
    fmt

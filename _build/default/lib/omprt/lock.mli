(** OpenMP locks and critical sections.

    [omp_lock_t]/[omp_nest_lock_t] equivalents plus the named-critical
    registry used by [__kmpc_critical]: critical sections with the same
    name share one mutex program-wide. *)

type t = Mutex.t

val create : unit -> t
val acquire : t -> unit
val release : t -> unit
val try_acquire : t -> bool

(** Nestable lock: re-acquirable by the owning thread, released when
    the acquisition count returns to zero. *)
module Nest : sig
  type t

  val create : unit -> t
  val acquire : t -> unit

  val release : t -> unit
  (** @raise Invalid_argument when the caller is not the owner. *)

  val depth : t -> int
  (** Current acquisition depth if held by the caller, 0 otherwise. *)
end

val critical_lock : string -> Mutex.t
(** The program-wide mutex for a named critical section (created on
    first use; idempotent). *)

val anonymous : string
(** The name unnamed criticals share. *)

val critical : ?name:string -> (unit -> 'a) -> 'a
(** [critical ?name f] — run [f] under the mutex for [name] (the
    anonymous critical by default), releasing on exceptions. *)

(** Internal control variables (ICVs), per OpenMP 5.2 section 2.

    Initialised from [OMP_NUM_THREADS], [OMP_SCHEDULE] and
    [OMP_DYNAMIC]; mutated through the [omp_set_*] API
    (see {!module:Api}). *)

type t = {
  mutable nthreads : int;       (** team size for parallel regions *)
  mutable dynamic : bool;
  mutable run_sched : Omp_model.Sched.t;
  mutable max_active_levels : int;
  mutable thread_limit : int;
}

val create : unit -> t
(** A fresh ICV set from the environment. *)

val global : t
(** The process-wide ICV set (libomp keeps these per device). *)

val reset : unit -> unit
(** Re-read {!global} from the environment. *)

(** Internal control variables (ICVs), per OpenMP 5.2 section 2.

    Initialised from [OMP_NUM_THREADS], [OMP_SCHEDULE], [OMP_DYNAMIC],
    [OMP_WAIT_POLICY] and [ZIGOMP_BLOCKTIME]; mutated through the
    [omp_set_*] API (see {!module:Api}). *)

(** How parked hot-team workers wait for the next region: [Active]
    spins aggressively before blocking, [Passive] parks almost
    immediately (the default, and the right choice on an
    oversubscribed host). *)
type wait_policy = Active | Passive

type t = {
  mutable nthreads : int;       (** team size for parallel regions *)
  mutable dynamic : bool;
  mutable run_sched : Omp_model.Sched.t;
  mutable max_active_levels : int;
  mutable thread_limit : int;
  mutable wait_policy : wait_policy;  (** [OMP_WAIT_POLICY] *)
  mutable blocktime : int;
  (** Spin rounds before a parked worker blocks (libomp's
      [KMP_BLOCKTIME] analogue); [ZIGOMP_BLOCKTIME] overrides, else
      defaulted from the wait policy. *)
}

val create : unit -> t
(** A fresh ICV set from the environment. *)

val global : t
(** The process-wide ICV set (libomp keeps these per device). *)

val reset : unit -> unit
(** Re-read {!global} from the environment. *)

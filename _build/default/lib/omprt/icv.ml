(** Internal control variables (ICVs), per OpenMP 5.2 section 2.

    The subset the paper's runtime needs: the default team size
    ([nthreads-var]), the [run-sched-var] consulted by [schedule(runtime)]
    loops, and the dynamic-adjustment flag.  Values are initialised from
    the standard environment variables on first access and may be
    overridden through the [omp_set_*] API (see {!module:Api}). *)

type t = {
  mutable nthreads : int;       (** team size for parallel regions *)
  mutable dynamic : bool;       (** omp_set_dynamic *)
  mutable run_sched : Omp_model.Sched.t;  (** OMP_SCHEDULE / omp_set_schedule *)
  mutable max_active_levels : int;
  mutable thread_limit : int;
}

let default_nthreads () =
  match Sys.getenv_opt "OMP_NUM_THREADS" with
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some n when n > 0 -> n
               | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_sched () =
  match Sys.getenv_opt "OMP_SCHEDULE" with
  | Some s -> (match Omp_model.Sched.of_string s with
               | Some sch -> sch
               | None -> Omp_model.Sched.Static None)
  | None -> Omp_model.Sched.Static None

let default_dynamic () =
  match Sys.getenv_opt "OMP_DYNAMIC" with
  | Some s ->
      (match String.lowercase_ascii (String.trim s) with
       | "true" | "1" | "yes" -> true
       | _ -> false)
  | None -> false

let create () = {
  nthreads = default_nthreads ();
  dynamic = default_dynamic ();
  run_sched = default_sched ();
  max_active_levels = 1;
  thread_limit = 128;  (* OCaml's maximum domain count *)
}

(* The global ICV set.  libomp keeps these per device; a single global is
   enough for one host device. *)
let global = create ()

let reset () =
  let fresh = create () in
  global.nthreads <- fresh.nthreads;
  global.dynamic <- fresh.dynamic;
  global.run_sched <- fresh.run_sched;
  global.max_active_levels <- fresh.max_active_levels;
  global.thread_limit <- fresh.thread_limit

(** Internal control variables (ICVs), per OpenMP 5.2 section 2.

    The subset the paper's runtime needs: the default team size
    ([nthreads-var]), the [run-sched-var] consulted by [schedule(runtime)]
    loops, and the dynamic-adjustment flag.  Values are initialised from
    the standard environment variables on first access and may be
    overridden through the [omp_set_*] API (see {!module:Api}). *)

(** How parked pool workers wait for work, libomp's [OMP_WAIT_POLICY]:
    [Active] spins aggressively before blocking (low dispatch latency,
    burns a core), [Passive] yields to the OS almost immediately (the
    right default on an oversubscribed host like this container). *)
type wait_policy = Active | Passive

type t = {
  mutable nthreads : int;       (** team size for parallel regions *)
  mutable dynamic : bool;       (** omp_set_dynamic *)
  mutable run_sched : Omp_model.Sched.t;  (** OMP_SCHEDULE / omp_set_schedule *)
  mutable max_active_levels : int;
  mutable thread_limit : int;
  mutable wait_policy : wait_policy;  (** OMP_WAIT_POLICY *)
  mutable blocktime : int;
  (** Spin iterations a parked pool worker burns before blocking on its
      condition variable — the analogue of libomp's [KMP_BLOCKTIME],
      which we express in spin rounds rather than milliseconds so the
      knob is meaningful on any clock.  Overridden by
      [ZIGOMP_BLOCKTIME]; defaulted from the wait policy. *)
}

let default_nthreads () =
  match Sys.getenv_opt "OMP_NUM_THREADS" with
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some n when n > 0 -> n
               | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_sched () =
  match Sys.getenv_opt "OMP_SCHEDULE" with
  | Some s -> (match Omp_model.Sched.of_string s with
               | Some sch -> sch
               | None -> Omp_model.Sched.Static None)
  | None -> Omp_model.Sched.Static None

let default_dynamic () =
  match Sys.getenv_opt "OMP_DYNAMIC" with
  | Some s ->
      (match String.lowercase_ascii (String.trim s) with
       | "true" | "1" | "yes" -> true
       | _ -> false)
  | None -> false

let default_wait_policy () =
  match Sys.getenv_opt "OMP_WAIT_POLICY" with
  | Some s ->
      (match String.lowercase_ascii (String.trim s) with
       | "active" -> Active
       | _ -> Passive)
  | None -> Passive

(* Spin budgets behind each policy: active waiting spins long enough to
   catch back-to-back regions without ever reaching the futex; passive
   waiting probes just a few hundred times — microseconds — before
   parking, which is what an oversubscribed single-core host needs. *)
let blocktime_of_policy = function
  | Active -> 100_000
  | Passive -> 200

let default_blocktime policy =
  match Sys.getenv_opt "ZIGOMP_BLOCKTIME" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
       | Some n when n >= 0 -> n
       | _ -> blocktime_of_policy policy)
  | None -> blocktime_of_policy policy

let create () =
  let wait_policy = default_wait_policy () in
  {
    nthreads = default_nthreads ();
    dynamic = default_dynamic ();
    run_sched = default_sched ();
    max_active_levels = 1;
    thread_limit = 128;  (* OCaml's maximum domain count *)
    wait_policy;
    blocktime = default_blocktime wait_policy;
  }

(* The global ICV set.  libomp keeps these per device; a single global is
   enough for one host device. *)
let global = create ()

let reset () =
  let fresh = create () in
  global.nthreads <- fresh.nthreads;
  global.dynamic <- fresh.dynamic;
  global.run_sched <- fresh.run_sched;
  global.max_active_levels <- fresh.max_active_levels;
  global.thread_limit <- fresh.thread_limit;
  global.wait_policy <- fresh.wait_policy;
  global.blocktime <- fresh.blocktime

(** Atomic read-modify-write operations, including the CAS-loop
    fallbacks of the paper's Listing 6.

    Operations that OCaml's [Atomic] provides natively (integer
    fetch-and-add) use it; everything else — multiplication, min/max,
    the bitwise family, every float operation, and the logical
    booleans — retries through {!cas_loop}, exactly as the paper
    implements the reduction operators Zig's builtin atomics lack. *)

val cas_loop : 'a Atomic.t -> ('a -> 'a) -> unit
(** [cas_loop atom f] atomically replaces the contents of [atom] with
    [f old], retrying on contention (Listing 6 generalised over the
    update function). *)

val cas_loop_fetch : 'a Atomic.t -> ('a -> 'a) -> 'a
(** As {!cas_loop}, returning the value that was replaced. *)

module Int : sig
  type t = int Atomic.t

  val make : int -> t
  val get : t -> int
  val set : t -> int -> unit
  val add : t -> int -> unit
  (** Native fetch-and-add. *)

  val sub : t -> int -> unit
  (** Native fetch-and-add of the negation. *)

  val mul : t -> int -> unit
  (** CAS loop (Listing 6). *)

  val min : t -> int -> unit
  val max : t -> int -> unit
  val band : t -> int -> unit
  val bor : t -> int -> unit
  val bxor : t -> int -> unit
end

module Float : sig
  type t = float Atomic.t

  val make : float -> t
  val get : t -> float
  val set : t -> float -> unit
  val add : t -> float -> unit
  val sub : t -> float -> unit
  val mul : t -> float -> unit
  val min : t -> float -> unit
  val max : t -> float -> unit
end

module Bool : sig
  type t = bool Atomic.t

  val make : bool -> t
  val get : t -> bool
  val set : t -> bool -> unit
  val logical_and : t -> bool -> unit
  val logical_or : t -> bool -> unit
end

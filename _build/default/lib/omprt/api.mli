(** The user-facing [omp_*] API (paper section III-C).

    The paper re-exports libomp's user entry points in an [omp]
    namespace with the redundant [omp_] prefix stripped; this module is
    that namespace on the host side, and the interpreter binds
    [omp.get_thread_num()] etc. to it. *)

val get_thread_num : unit -> int
(** Thread id within the innermost enclosing region; 0 outside. *)

val get_num_threads : unit -> int
(** Team size of the innermost region; 1 outside. *)

val get_max_threads : unit -> int
(** The [nthreads-var] ICV: default team size for the next region. *)

val set_num_threads : int -> unit
(** Set the [nthreads-var] ICV (non-positive values are ignored). *)

val get_num_procs : unit -> int

val in_parallel : unit -> bool

val get_level : unit -> int
(** Nesting depth of enclosing parallel regions. *)

val get_dynamic : unit -> bool
val set_dynamic : bool -> unit

val get_schedule : unit -> Omp_model.Sched.t
val set_schedule : Omp_model.Sched.t -> unit
(** The [run-sched-var] ICV consulted by [schedule(runtime)] loops. *)

val get_thread_limit : unit -> int

val get_wait_policy : unit -> Icv.wait_policy
(** The [wait-policy-var] ICV ([OMP_WAIT_POLICY]) governing how parked
    hot-team workers wait for the next region. *)

val get_blocktime : unit -> int
val set_blocktime : int -> unit
(** Spin rounds a parked hot-team worker burns before blocking — the
    analogue of libomp's [kmp_get/set_blocktime] ([ZIGOMP_BLOCKTIME]).
    Negative values are ignored. *)

val get_wtime : unit -> float
(** Wall-clock seconds. *)

val get_wtick : unit -> float

(** Locks, under their [omp_*] names. *)

type lock_t = Lock.t
type nest_lock_t = Lock.Nest.t

val init_lock : unit -> lock_t
val set_lock : lock_t -> unit
val unset_lock : lock_t -> unit
val test_lock : lock_t -> bool
val destroy_lock : lock_t -> unit

val init_nest_lock : unit -> nest_lock_t
val set_nest_lock : nest_lock_t -> unit
val unset_nest_lock : nest_lock_t -> unit
val destroy_nest_lock : nest_lock_t -> unit

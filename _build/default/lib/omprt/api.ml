(** The user-facing [omp_*] API (paper section III-C).

    The paper re-exports libomp's user entry points in an [omp] namespace
    with the redundant [omp_] prefix stripped —
    [omp.get_thread_num()] instead of [omp_get_thread_num()].  This
    module is that namespace. *)

let get_thread_num () = Team.thread_num ()

let get_num_threads () = Team.num_threads ()

let get_max_threads () = Icv.global.nthreads

let set_num_threads n =
  if n > 0 then Icv.global.nthreads <- n

let get_num_procs () = Domain.recommended_domain_count ()

let in_parallel () = Team.in_parallel ()

let get_level () = Team.level ()

let get_dynamic () = Icv.global.dynamic

let set_dynamic b = Icv.global.dynamic <- b

let get_schedule () = Icv.global.run_sched

let set_schedule s = Icv.global.run_sched <- s

let get_thread_limit () = Icv.global.thread_limit

(* Hot-team waiting knobs (OMP_WAIT_POLICY / ZIGOMP_BLOCKTIME): the
   wait policy is read-only at runtime as in libomp, the blocktime is
   adjustable like kmp_set_blocktime. *)

let get_wait_policy () = Icv.global.wait_policy

let get_blocktime () = Icv.global.blocktime

let set_blocktime n = if n >= 0 then Icv.global.blocktime <- n

let get_wtime () = Unix.gettimeofday ()

(** Timer resolution, measured the way libomp documents it. *)
let get_wtick () = 1e-6

(* Locks, re-exported under their omp names. *)

type lock_t = Lock.t
type nest_lock_t = Lock.Nest.t

let init_lock = Lock.create
let set_lock = Lock.acquire
let unset_lock = Lock.release
let test_lock = Lock.try_acquire
let destroy_lock (_ : lock_t) = ()

let init_nest_lock = Lock.Nest.create
let set_nest_lock = Lock.Nest.acquire
let unset_nest_lock = Lock.Nest.release
let destroy_nest_lock (_ : nest_lock_t) = ()

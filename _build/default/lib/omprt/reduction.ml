(** Reduction operators, their identity elements, and atomic combining.

    The preprocessor synthesises, for every [reduction(op: x)] clause, a
    thread-local accumulator initialised with the operator's identity
    (required by the OpenMP standard, as the paper notes in III-B1) and a
    final atomic combine into the shared cell.  Multiplication and the
    logical operators use the CAS loop from the paper's Listing 6 via
    {!module:Atomics}. *)

type op =
  | Add | Sub | Mul
  | Min | Max
  | Band | Bor | Bxor
  | Land | Lor

let all_ops = [ Add; Sub; Mul; Min; Max; Band; Bor; Bxor; Land; Lor ]

let to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Min -> "min" | Max -> "max"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Land -> "and" | Lor -> "or"

let of_string = function
  | "+" -> Some Add | "-" -> Some Sub | "*" -> Some Mul
  | "min" -> Some Min | "max" -> Some Max
  | "&" -> Some Band | "|" -> Some Bor | "^" -> Some Bxor
  | "and" | "&&" -> Some Land | "or" | "||" -> Some Lor
  | _ -> None

(* Identity elements, per OpenMP 5.2 table 5.7. *)

let float_init = function
  | Add | Sub -> 0.
  | Mul -> 1.
  | Min -> infinity
  | Max -> neg_infinity
  | Band | Bor | Bxor | Land | Lor ->
      invalid_arg "Reduction.float_init: bitwise/logical op on float"

let int_init = function
  | Add | Sub -> 0
  | Mul -> 1
  | Min -> max_int
  | Max -> min_int
  | Band -> -1  (* all bits set *)
  | Bor | Bxor -> 0
  | Land | Lor -> invalid_arg "Reduction.int_init: logical op on int"

let bool_init = function
  | Land -> true
  | Lor -> false
  | _ -> invalid_arg "Reduction.bool_init: non-logical op on bool"

(* Sequential combining functions (used to fold thread partials and by
   the interpreter). *)

let combine_float op a b =
  match op with
  | Add -> a +. b
  | Sub -> a +. b  (* OpenMP: '-' reduces with + over partials *)
  | Mul -> a *. b
  | Min -> Float.min a b
  | Max -> Float.max a b
  | Band | Bor | Bxor | Land | Lor ->
      invalid_arg "Reduction.combine_float: bitwise/logical op on float"

let combine_int op a b =
  match op with
  | Add -> a + b
  | Sub -> a + b
  | Mul -> a * b
  | Min -> min a b
  | Max -> max a b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Land | Lor -> invalid_arg "Reduction.combine_int: logical op on int"

let combine_bool op a b =
  match op with
  | Land -> a && b
  | Lor -> a || b
  | _ -> invalid_arg "Reduction.combine_bool: non-logical op on bool"

(* Atomic combining into shared cells — what the outlined function does
   on exit.  Whether the combine is a native fetch-and-op or a CAS loop
   is decided inside Atomics, mirroring the paper's Zig constraints. *)

let atomic_combine_float op (cell : Atomics.Float.t) v =
  match op with
  | Add -> Atomics.Float.add cell v
  | Sub -> Atomics.Float.add cell v
  | Mul -> Atomics.Float.mul cell v
  | Min -> Atomics.Float.min cell v
  | Max -> Atomics.Float.max cell v
  | Band | Bor | Bxor | Land | Lor ->
      invalid_arg "Reduction.atomic_combine_float: bad op"

let atomic_combine_int op (cell : Atomics.Int.t) v =
  match op with
  | Add -> Atomics.Int.add cell v
  | Sub -> Atomics.Int.add cell v
  | Mul -> Atomics.Int.mul cell v
  | Min -> Atomics.Int.min cell v
  | Max -> Atomics.Int.max cell v
  | Band -> Atomics.Int.band cell v
  | Bor -> Atomics.Int.bor cell v
  | Bxor -> Atomics.Int.bxor cell v
  | Land | Lor -> invalid_arg "Reduction.atomic_combine_int: logical op on int"

let atomic_combine_bool op (cell : Atomics.Bool.t) v =
  match op with
  | Land -> Atomics.Bool.logical_and cell v
  | Lor -> Atomics.Bool.logical_or cell v
  | _ -> invalid_arg "Reduction.atomic_combine_bool: bad op"

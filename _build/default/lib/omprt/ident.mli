(** Source-location identifiers, the analogue of libomp's [ident_t]:
    every [__kmpc_*] call site can carry the location of the pragma
    that generated it. *)

type t = {
  file : string;
  line : int;
  col : int;
  construct : string;  (** e.g. ["parallel"], ["for static"] *)
}

val make : ?file:string -> ?line:int -> ?col:int -> string -> t

val unknown : t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

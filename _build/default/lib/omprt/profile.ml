(** Runtime profiling — the paper's "further work" delivered.

    The paper's section VI proposes instrumenting applications with
    profiler calls from inside the compiler, "providing functionality
    similar to that of gprof".  This module is that facility for our
    runtime: when enabled, every OpenMP construct the generated code
    executes is timed and aggregated per construct kind — parallel
    regions, barrier waits, critical-section waits, dispatch claims and
    single claims — and {!report} renders the gprof-style summary.

    Profiling is off by default and costs one atomic load per construct
    when disabled.  Aggregation uses the runtime's own atomics, so
    enabling it inside parallel regions is safe. *)

type construct =
  | Region          (** a whole [__kmpc_fork_call] *)
  | Barrier_wait
  | Critical_wait
  | Single_claim
  | Dispatch_claim  (** one [__kmpc_dispatch_next] *)
  | Static_loop     (** one [__kmpc_for_static_init] *)

let all_constructs =
  [ Region; Barrier_wait; Critical_wait; Single_claim; Dispatch_claim;
    Static_loop ]

let construct_name = function
  | Region -> "parallel region"
  | Barrier_wait -> "barrier wait"
  | Critical_wait -> "critical wait"
  | Single_claim -> "single claim"
  | Dispatch_claim -> "dispatch_next claim"
  | Static_loop -> "static loop init"

type agg = {
  count : Atomics.Int.t;
  total : Atomics.Float.t;  (* seconds *)
  slowest : Atomics.Float.t;
}

let fresh_agg () = {
  count = Atomics.Int.make 0;
  total = Atomics.Float.make 0.;
  slowest = Atomics.Float.make 0.;
}

let enabled = Atomic.make false

let aggs = List.map (fun c -> (c, fresh_agg ())) all_constructs

let agg_of c = List.assq c aggs

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let reset () =
  List.iter
    (fun (_, a) ->
      Atomics.Int.set a.count 0;
      Atomics.Float.set a.total 0.;
      Atomics.Float.set a.slowest 0.)
    aggs

(** Record one completed construct of duration [dt] seconds. *)
let record c dt =
  let a = agg_of c in
  Atomics.Int.add a.count 1;
  Atomics.Float.add a.total dt;
  Atomics.Float.max a.slowest dt

(** [timed c f] — run [f], attributing its duration to [c] when
    profiling is on. *)
let timed c f =
  if Atomic.get enabled then begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record c (Unix.gettimeofday () -. t0))
      f
  end
  else f ()

(** Count-only event (used where timing each claim would distort the
    measurement more than it is worth). *)
let tick c = if Atomic.get enabled then Atomics.Int.add (agg_of c).count 1

type snapshot = {
  construct : construct;
  count : int;
  total : float;
  mean : float;
  slowest : float;
}

let snapshot () =
  List.filter_map
    (fun ((c : construct), (a : agg)) ->
      let count = Atomics.Int.get a.count in
      if count = 0 then None
      else
        let total = Atomics.Float.get a.total in
        Some
          { construct = c; count; total;
            mean = total /. float_of_int count;
            slowest = Atomics.Float.get a.slowest })
    aggs

(** The gprof-style table. *)
let report () =
  let rows = snapshot () in
  if rows = [] then "profile: no OpenMP constructs recorded\n"
  else begin
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf "%-20s %10s %12s %12s %12s\n" "construct" "count"
         "total (s)" "mean (us)" "max (us)");
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%-20s %10d %12.6f %12.2f %12.2f\n"
             (construct_name r.construct)
             r.count r.total (1e6 *. r.mean) (1e6 *. r.slowest)))
      (List.sort (fun a b -> compare b.total a.total) rows);
    Buffer.contents b
  end

(** The engine-independent OpenMP programming surface.

    Benchmark kernels (NPB CG/EP/IS) and the examples are written once
    against this signature and instantiated twice: over {!module:Omp}
    (real execution on OCaml domains, used for correctness runs and unit
    tests) and over [Simrt.make] (timing-only execution on the simulated
    ARCHER2 node, used to regenerate the paper's tables and figures on a
    machine with too few cores to measure them).

    The [?cost]/[?chunk_cost] parameters carry the performance-model
    annotations; the real engine ignores them and runs the closures,
    while the simulator charges them to the virtual clock and skips the
    closures.  Consequently code whose *control flow* must be identical
    in both modes (loop structure, numbers of barriers) lives outside the
    closures, and code that merely computes values lives inside them. *)

module type S = sig
  val is_simulated : bool
  (** [true] for the discrete-event engine — kernels can use it to skip
      verification, which is only meaningful when closures execute. *)

  val parallel : ?num_threads:int -> (unit -> unit) -> unit
  (** A [parallel] region: run the body on every thread of a team. *)

  val thread_num : unit -> int
  val num_threads : unit -> int

  val barrier : unit -> unit

  val wtime : unit -> float
  (** Wall-clock (real engine) or virtual (simulated) seconds. *)

  val master : (unit -> unit) -> unit
  (** Thread 0 only; no implied barrier. *)

  val single : ?nowait:bool -> (unit -> unit) -> unit
  (** First arriver only; implied barrier unless [nowait].  The closure
      runs in both engines (it usually updates control state). *)

  val critical : ?name:string -> ?cost:Omp_model.Cost.t -> (unit -> unit) -> unit
  (** Mutual exclusion across the team (and program).  The simulator
      serialises contenders and charges [cost]; the closure runs only on
      the real engine. *)

  val atomic : ?cost:Omp_model.Cost.t -> (unit -> unit) -> unit
  (** An [atomic] update; closure contract as for {!critical}. *)

  val work : ?cost:Omp_model.Cost.t -> (unit -> unit) -> unit
  (** Straight-line work: executed for value on the real engine, charged
      as [cost] virtual time on the simulator. *)

  val ws_for :
    ?sched:Omp_model.Sched.t ->
    ?nowait:bool ->
    ?working_set:float ->
    ?chunk_cost:(int -> int -> Omp_model.Cost.t) ->
    lo:int -> hi:int ->
    (int -> int -> unit) ->
    unit
  (** Worksharing loop over the half-open range [\[lo, hi)] with unit
      step.  The body receives claimed chunks as [(chunk_lo, chunk_hi)]
      subranges.  [chunk_cost lo hi] is the model cost of one chunk;
      [working_set], in bytes, is the total data the loop re-traverses
      across repeated executions — it enables the simulator's cache-
      capacity correction (the mechanism behind the paper's super-linear
      points).  Implied joining barrier unless [nowait]. *)
end

(** Witness for passing engines around at run time. *)
type engine = (module S)

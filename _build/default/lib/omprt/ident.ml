(** Source-location identifiers, the analogue of libomp's [ident_t].

    Every [__kmpc_*] entry point in LLVM's OpenMP runtime takes an
    [ident_t*] describing the source construct that generated the call;
    the paper's preprocessor synthesises these when it lowers pragmas.
    We carry the same information so that diagnostics and traces can point
    back at the pragma in the original Zr source. *)

type t = {
  file : string;  (** source file the construct came from *)
  line : int;     (** 1-based line of the sentinel *)
  col : int;      (** 1-based column of the sentinel *)
  construct : string;  (** e.g. ["parallel"], ["for static"] *)
}

let make ?(file = "<unknown>") ?(line = 0) ?(col = 0) construct =
  { file; line; col; construct }

let unknown = make "unknown"

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d(%s)" t.file t.line t.col t.construct

let to_string t = Format.asprintf "%a" pp t

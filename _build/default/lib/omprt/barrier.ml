(** Blocking sense-reversing barrier.

    libomp uses spinning hybrid barriers; on an oversubscribed host (our
    container has a single core and tests run teams of up to eight
    threads on it) spinning would livelock the very threads we are
    waiting for, so this implementation blocks on a condition variable.
    The phase counter provides the "sense": a thread waits until the
    phase it observed on arrival has been left behind, which makes the
    barrier safely reusable back-to-back. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  size : int;
  mutable arrived : int;
  mutable phase : int;
}

let create size =
  if size <= 0 then invalid_arg "Barrier.create: size must be positive";
  { mutex = Mutex.create (); cond = Condition.create ();
    size; arrived = 0; phase = 0 }

let size t = t.size

(** [wait t] blocks until all [size t] threads have called [wait] for the
    current phase.  Returns [true] in exactly one thread per phase (the
    last arriver), which callers can use for master-like duties. *)
let wait t =
  if t.size = 1 then true
  else begin
    Mutex.lock t.mutex;
    let phase = t.phase in
    t.arrived <- t.arrived + 1;
    let last = t.arrived = t.size in
    if last then begin
      t.arrived <- 0;
      t.phase <- phase + 1;
      Condition.broadcast t.cond
    end else
      while t.phase = phase do
        Condition.wait t.cond t.mutex
      done;
    Mutex.unlock t.mutex;
    last
  end

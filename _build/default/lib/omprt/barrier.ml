(** Hybrid spin-then-block sense-reversing barrier.

    libomp uses spinning hybrid barriers: a waiter spins on the phase
    word for a bounded budget before parking on a condition variable.
    We do the same, with the budget taken from the wait-policy ICVs —
    [OMP_WAIT_POLICY=active] spins for [Icv.global.blocktime]
    iterations, while the default passive policy spins not at all: on
    an oversubscribed host (our container has a single core and tests
    run teams of up to eight threads on it) spinning would starve the
    very threads we are waiting for.  {!module:Profile} counts how each
    passage was satisfied (spin vs block).

    The atomic phase counter provides the "sense": a thread waits until
    the phase it observed on arrival has been left behind, which makes
    the barrier safely reusable back-to-back. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  size : int;
  mutable arrived : int;          (* protected by [mutex] *)
  phase : int Atomic.t;           (* advanced under [mutex], spun on lock-free *)
}

let create size =
  if size <= 0 then invalid_arg "Barrier.create: size must be positive";
  { mutex = Mutex.create (); cond = Condition.create ();
    size; arrived = 0; phase = Atomic.make 0 }

let size t = t.size

(* How many [Domain.cpu_relax] iterations a waiter may burn before
   parking.  Passive (the default) never spins: blocked time is exactly
   what that policy asks for, and on a single core it is also the only
   choice that doesn't starve the stragglers. *)
let spin_budget () =
  match Icv.global.Icv.wait_policy with
  | Icv.Active -> Icv.global.Icv.blocktime
  | Icv.Passive -> 0

(** [wait t] blocks until all [size t] threads have called [wait] for the
    current phase.  Returns [true] in exactly one thread per phase (the
    last arriver), which callers can use for master-like duties. *)
let wait t =
  if t.size = 1 then true
  else begin
    Mutex.lock t.mutex;
    let phase = Atomic.get t.phase in
    t.arrived <- t.arrived + 1;
    let last = t.arrived = t.size in
    if last then begin
      t.arrived <- 0;
      (* Advance the phase before broadcasting, still under the mutex:
         parked waiters re-check the phase under the same mutex, so the
         wakeup cannot be lost. *)
      Atomic.set t.phase (phase + 1);
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end else begin
      Mutex.unlock t.mutex;
      let rec spin n =
        if Atomic.get t.phase <> phase then true
        else if n > 0 then begin Domain.cpu_relax (); spin (n - 1) end
        else false
      in
      if spin (spin_budget ()) then
        Profile.barrier_tick Profile.Barrier_spin_wait
      else begin
        Profile.barrier_tick Profile.Barrier_block_wait;
        Mutex.lock t.mutex;
        while Atomic.get t.phase = phase do
          Condition.wait t.cond t.mutex
        done;
        Mutex.unlock t.mutex
      end
    end;
    last
  end

(** Worksharing partition arithmetic.

    Pure functions shared by the real runtime, the simulator and the
    tests.  Loops are normalised to the half-open range [\[lo, hi)] with
    a nonzero [step], matching how the paper extracts bounds from a Zig
    [while] loop (section III-B2). *)

val trip_count :
  ?inclusive:bool -> lo:int -> hi:int -> step:int -> unit -> int
(** Iterations of the normalised loop; [inclusive] for [<=]/[>=]
    comparisons.  @raise Invalid_argument on a zero step. *)

val static_block : tid:int -> nthreads:int -> trips:int -> (int * int) option
(** The contiguous block of [\[0, trips)] owned by [tid] under the
    unchunked static schedule (libomp's balanced split: sizes differ by
    at most one).  [None] when the thread has no work. *)

val static_chunks_iter :
  tid:int -> nthreads:int -> trips:int -> chunk:int ->
  (int -> int -> unit) -> unit
(** Apply the callback to each round-robin chunk owned by [tid] under
    [static,chunk], in execution order.  Allocation-free — the form
    the runtime's loop entry uses. *)

val static_chunks :
  tid:int -> nthreads:int -> trips:int -> chunk:int -> (int * int) list
(** The same chunks as a list (tests, simulator). *)

val denormalise : lo:int -> step:int -> int * int -> int * int
(** Map a block over [\[0, trips)] back to user iteration values,
    for either sign of [step]. *)

val guided_next_chunk : nthreads:int -> chunk:int -> remaining:int -> int
(** libomp's iterative guided rule: half the per-thread share of the
    remaining work, never below [chunk] (except the final chunk). *)

(** Shared dispatcher for [dynamic]/[guided] loops — the engine behind
    [__kmpc_dispatch_next].  One instance is shared by the whole team;
    {!Dispatch.next} is safe to call concurrently. *)
module Dispatch : sig
  type kind = Dyn | Gui

  type t = {
    kind : kind;
    trips : int;
    chunk : int;
    nthreads : int;
    cursor : int Atomic.t;  (** first unclaimed iteration *)
    finished : int Atomic.t;
    (** threads that have observed exhaustion (drives dispatcher
        retirement, see {!Kmpc.dispatch_next}) *)
  }

  val create : kind:kind -> trips:int -> chunk:int -> nthreads:int -> t

  val next : t -> (int * int) option
  (** Claim the next chunk over [\[0, trips)]; [None] once exhausted. *)

  val remaining : t -> int
end

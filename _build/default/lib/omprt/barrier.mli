(** Blocking sense-reversing barrier.

    Blocks on a condition variable rather than spinning, so teams may
    safely oversubscribe the host's cores (libomp spins; on our
    single-core test host that would livelock). *)

type t

val create : int -> t
(** [create size] — a reusable barrier for [size] threads.
    @raise Invalid_argument when [size <= 0]. *)

val size : t -> int

val wait : t -> bool
(** Block until all [size] threads arrive.  Returns [true] in exactly
    one thread per phase (the last arriver).  Reusable back-to-back. *)

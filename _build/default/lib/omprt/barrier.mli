(** Hybrid spin-then-block sense-reversing barrier.

    Waiters spin on the phase word for a bounded budget before parking
    on a condition variable, like libomp's hybrid barriers.  The budget
    follows the wait-policy ICVs: [OMP_WAIT_POLICY=active] spins for
    [Icv.global.blocktime] iterations, the default passive policy goes
    straight to blocking (on our single-core test host spinning would
    starve the threads being waited for).  {!Profile.barrier_stats}
    reports how passages were satisfied. *)

type t

val create : int -> t
(** [create size] — a reusable barrier for [size] threads.
    @raise Invalid_argument when [size <= 0]. *)

val size : t -> int

val wait : t -> bool
(** Block until all [size] threads arrive.  Returns [true] in exactly
    one thread per phase (the last arriver).  Reusable back-to-back. *)

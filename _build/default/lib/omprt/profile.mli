(** Runtime profiling — the paper's "further work" delivered: a
    gprof-style per-construct summary of where OpenMP time goes.

    Off by default (one atomic load per construct when disabled); safe
    to enable around parallel regions. *)

type construct =
  | Region          (** a whole [__kmpc_fork_call] *)
  | Barrier_wait
  | Critical_wait
  | Single_claim
  | Dispatch_claim  (** one [__kmpc_dispatch_next] *)
  | Static_loop     (** one [__kmpc_for_static_init] *)

val all_constructs : construct list

val construct_name : construct -> string

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero all aggregates. *)

val record : construct -> float -> unit
(** Record one completed construct of the given duration (seconds). *)

val timed : construct -> (unit -> 'a) -> 'a
(** Run the closure, attributing its duration when profiling is on. *)

val tick : construct -> unit
(** Count-only event. *)

type snapshot = {
  construct : construct;
  count : int;
  total : float;    (** seconds *)
  mean : float;
  slowest : float;
}

val snapshot : unit -> snapshot list
(** Aggregates recorded so far, constructs with zero count omitted. *)

val report : unit -> string
(** The rendered gprof-style table, sorted by total time. *)

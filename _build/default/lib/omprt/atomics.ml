(** Atomic read-modify-write operations, including the CAS-loop fallbacks.

    Section III-B1 of the paper: Zig's builtin atomics provide add, sub,
    min, max, and the bitwise AND/OR/NAND/XOR, but *not* multiplication or
    logical AND/OR.  The paper implements the missing reduction operations
    with a compare-and-swap loop (their Listing 6).  We mirror that split:
    operations below marked "native" use a single fetch-and-op where the
    OCaml [Atomic] module provides one, and everything else goes through
    {!cas_loop}, the direct transliteration of Listing 6. *)

(** [cas_loop atom f] atomically replaces the contents of [atom] with
    [f old].  This is the paper's Listing 6 generalised over the update
    function: load, compute, attempt the exchange, and on failure retry
    with the freshly observed value.  Relies on OCaml's physical-equality
    CAS: the value we loaded is exactly the boxed value stored, so the
    compare succeeds iff no other thread intervened. *)
let rec cas_loop (atom : 'a Atomic.t) (f : 'a -> 'a) : unit =
  let old = Atomic.get atom in
  let next = f old in
  if not (Atomic.compare_and_set atom old next) then cas_loop atom f

(** Same, but returns the value that was replaced. *)
let rec cas_loop_fetch (atom : 'a Atomic.t) (f : 'a -> 'a) : 'a =
  let old = Atomic.get atom in
  let next = f old in
  if Atomic.compare_and_set atom old next then old
  else cas_loop_fetch atom f

(* ------------------------------------------------------------------ *)
(* Integer atomics.  [fetch_and_add] is native in OCaml, the rest are
   CAS loops exactly as in the paper's runtime helpers.                *)

module Int = struct
  type t = int Atomic.t

  let make v : t = Atomic.make v
  let get = Atomic.get
  let set = Atomic.set

  let add (a : t) v = ignore (Atomic.fetch_and_add a v)  (* native *)
  let sub (a : t) v = ignore (Atomic.fetch_and_add a (-v))  (* native *)
  let mul (a : t) v = cas_loop a (fun x -> x * v)  (* CAS loop *)
  let min (a : t) v = cas_loop a (fun x -> Stdlib.min x v)
  let max (a : t) v = cas_loop a (fun x -> Stdlib.max x v)
  let band (a : t) v = cas_loop a (fun x -> x land v)
  let bor (a : t) v = cas_loop a (fun x -> x lor v)
  let bxor (a : t) v = cas_loop a (fun x -> x lxor v)
end

(* ------------------------------------------------------------------ *)
(* Float atomics.  OCaml has no native float fetch-and-op at all, so
   every operation is a CAS loop on the boxed value — the same situation
   the paper faces for Zig multiplication.                              *)

module Float = struct
  type t = float Atomic.t

  let make v : t = Atomic.make v
  let get = Atomic.get
  let set = Atomic.set

  let add (a : t) v = cas_loop a (fun x -> x +. v)
  let sub (a : t) v = cas_loop a (fun x -> x -. v)
  let mul (a : t) v = cas_loop a (fun x -> x *. v)
  let min (a : t) v = cas_loop a (fun x -> Stdlib.min x v)
  let max (a : t) v = cas_loop a (fun x -> Stdlib.max x v)
end

(* ------------------------------------------------------------------ *)
(* Boolean atomics for the logical AND/OR reductions the paper calls out
   as unsupported by Zig's builtin atomics.                             *)

module Bool = struct
  type t = bool Atomic.t

  let make v : t = Atomic.make v
  let get = Atomic.get
  let set = Atomic.set

  let logical_and (a : t) v = cas_loop a (fun x -> x && v)
  let logical_or (a : t) v = cas_loop a (fun x -> x || v)
end

lib/omprt/profile.ml: Atomic Atomics Buffer Fun List Printf Unix

lib/omprt/icv.ml: Domain Omp_model String Sys

lib/omprt/ident.ml: Format

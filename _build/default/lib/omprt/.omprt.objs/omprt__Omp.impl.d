lib/omprt/omp.ml: Api Kmpc Lock Omp_model Option Sched Ws

lib/omprt/omp.ml: Api Kmpc List Lock Omp_model Option Sched Ws

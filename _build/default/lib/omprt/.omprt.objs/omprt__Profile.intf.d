lib/omprt/profile.mli:

lib/omprt/icv.mli: Omp_model

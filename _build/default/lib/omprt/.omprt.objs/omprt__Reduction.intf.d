lib/omprt/reduction.mli: Atomics

lib/omprt/reduction.ml: Atomics Float

lib/omprt/omp_intf.ml: Omp_model

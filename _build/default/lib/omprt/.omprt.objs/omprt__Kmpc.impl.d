lib/omprt/kmpc.ml: Atomic Domain Hashtbl Icv Lock Mutex Omp_model Profile Sched Team Ws

lib/omprt/kmpc.ml: Atomic Hashtbl Icv Lock Mutex Omp_model Profile Sched Team Ws

lib/omprt/atomics.mli: Atomic

lib/omprt/ident.mli: Format

lib/omprt/atomics.ml: Atomic Stdlib

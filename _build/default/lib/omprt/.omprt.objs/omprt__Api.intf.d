lib/omprt/api.mli: Lock Omp_model

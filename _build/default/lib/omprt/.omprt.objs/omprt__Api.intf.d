lib/omprt/api.mli: Icv Lock Omp_model

lib/omprt/ws.ml: Atomic List

lib/omprt/barrier.ml: Condition Mutex

lib/omprt/barrier.ml: Atomic Condition Domain Icv Mutex Profile

lib/omprt/pool.ml: Array Atomic Condition Domain Fun Icv Mutex Profile

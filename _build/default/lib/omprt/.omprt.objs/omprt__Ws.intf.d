lib/omprt/ws.mli: Atomic

lib/omprt/team.ml: Array Atomic Barrier Domain Fun Hashtbl Icv Mutex Pool Profile Ws

lib/omprt/barrier.mli:

lib/omprt/lock.mli: Mutex

lib/omprt/api.ml: Domain Icv Lock Team Unix

lib/omprt/lock.ml: Condition Domain Fun Hashtbl Mutex Team

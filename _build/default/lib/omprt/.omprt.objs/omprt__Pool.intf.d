lib/omprt/pool.mli:

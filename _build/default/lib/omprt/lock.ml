(** OpenMP locks and critical sections.

    [omp_lock_t]/[omp_nest_lock_t] equivalents plus the named-critical
    registry used by [__kmpc_critical].  Critical sections with the same
    name share one mutex program-wide, unnamed criticals share the
    anonymous one, exactly as the specification requires. *)

type t = Mutex.t

let create () : t = Mutex.create ()
let acquire (l : t) = Mutex.lock l
let release (l : t) = Mutex.unlock l
let try_acquire (l : t) = Mutex.try_lock l

(** Nestable lock: may be re-acquired by the owning thread; released when
    the acquisition count returns to zero.  Owner identity is the pair of
    domain id and OpenMP thread id so that nested teams on one domain are
    still distinguished. *)
module Nest = struct
  type owner = { domain : int; tid : int }

  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable owner : owner option;
    mutable depth : int;
  }

  let create () =
    { mutex = Mutex.create (); cond = Condition.create ();
      owner = None; depth = 0 }

  let self () =
    { domain = (Domain.self () :> int); tid = Team.thread_num () }

  let acquire t =
    let me = self () in
    Mutex.lock t.mutex;
    (match t.owner with
     | Some o when o = me -> t.depth <- t.depth + 1
     | _ ->
         while t.owner <> None do Condition.wait t.cond t.mutex done;
         t.owner <- Some me;
         t.depth <- 1);
    Mutex.unlock t.mutex

  let release t =
    let me = self () in
    Mutex.lock t.mutex;
    (match t.owner with
     | Some o when o = me ->
         t.depth <- t.depth - 1;
         if t.depth = 0 then begin
           t.owner <- None;
           Condition.signal t.cond
         end
     | _ ->
         Mutex.unlock t.mutex;
         invalid_arg "Lock.Nest.release: not the owner");
    Mutex.unlock t.mutex

  (** Current acquisition depth if held by the caller, 0 otherwise. *)
  let depth t =
    Mutex.lock t.mutex;
    let d = if t.owner = Some (self ()) then t.depth else 0 in
    Mutex.unlock t.mutex;
    d
end

(* ------------------------------------------------------------------ *)
(* Named critical sections.                                            *)

let registry : (string, Mutex.t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let critical_lock name =
  Mutex.lock registry_mutex;
  let l =
    match Hashtbl.find_opt registry name with
    | Some l -> l
    | None ->
        let l = Mutex.create () in
        Hashtbl.add registry name l;
        l
  in
  Mutex.unlock registry_mutex;
  l

let anonymous = ".omp.critical.anonymous"

(** [critical ?name f] runs [f] under the program-wide mutex for [name]. *)
let critical ?(name = anonymous) f =
  let l = critical_lock name in
  Mutex.lock l;
  Fun.protect ~finally:(fun () -> Mutex.unlock l) f

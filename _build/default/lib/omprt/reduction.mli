(** Reduction operators, their identity elements, and atomic combining.

    Thread-local accumulators are initialised with the operator's
    identity (OpenMP 5.2 table 5.7) and combined into shared atomic
    cells on region exit; which combines are native atomics and which
    are CAS loops is decided in {!module:Atomics}, mirroring the
    paper's Zig constraints. *)

type op =
  | Add | Sub | Mul
  | Min | Max
  | Band | Bor | Bxor
  | Land | Lor

val all_ops : op list

val to_string : op -> string
val of_string : string -> op option

val float_init : op -> float
(** @raise Invalid_argument for bitwise/logical operators. *)

val int_init : op -> int
(** @raise Invalid_argument for logical operators. *)

val bool_init : op -> bool
(** @raise Invalid_argument for non-logical operators. *)

val combine_float : op -> float -> float -> float
val combine_int : op -> int -> int -> int
val combine_bool : op -> bool -> bool -> bool

val atomic_combine_float : op -> Atomics.Float.t -> float -> unit
val atomic_combine_int : op -> Atomics.Int.t -> int -> unit
val atomic_combine_bool : op -> Atomics.Bool.t -> bool -> unit

(** Execution traces of simulated runs.

    Records per-virtual-thread activity intervals during a simulation
    and renders them as an ASCII Gantt chart — a timeline view of where
    each thread's virtual time went (computing, waiting at barriers,
    queueing on criticals).  The bench harness uses it to make schedule
    ablations visible: static scheduling of imbalanced work shows long
    barrier tails that dynamic scheduling removes. *)

type interval = {
  vthread : int;
  start : float;
  stop : float;
  label : char;  (** '#' work, '=' barrier wait, 'x' critical, '.' dispatch *)
}

type t = {
  mutable items : interval list;  (* newest first *)
  mutable count : int;
  limit : int;
}

let create ?(limit = 100_000) () = { items = []; count = 0; limit }

(** Record one interval; silently dropped past the recording limit (the
    chart is for small illustrative runs, not class-C sweeps). *)
let record t ~vthread ~start ~stop label =
  if t.count < t.limit && stop > start then begin
    t.items <- { vthread; start; stop; label } :: t.items;
    t.count <- t.count + 1
  end

let intervals t = List.rev t.items

let truncated t = t.count >= t.limit

(** [gantt t ~makespan] — one row per virtual thread, time left to
    right, latest-written label wins per cell. *)
let gantt ?(width = 72) t ~makespan : string =
  let items = intervals t in
  if items = [] || makespan <= 0. then "trace: no intervals recorded\n"
  else begin
    let nthreads =
      1 + List.fold_left (fun acc i -> max acc i.vthread) 0 items
    in
    let grid = Array.make_matrix nthreads width ' ' in
    List.iter
      (fun i ->
        if i.vthread < nthreads then begin
          let c0 =
            int_of_float (float_of_int width *. i.start /. makespan)
          in
          let c1 =
            int_of_float (ceil (float_of_int width *. i.stop /. makespan))
          in
          for c = max 0 c0 to min (width - 1) (c1 - 1) do
            grid.(i.vthread).(c) <- i.label
          done
        end)
      items;
    let b = Buffer.create ((nthreads + 3) * (width + 16)) in
    for vt = 0 to nthreads - 1 do
      Buffer.add_string b (Printf.sprintf "  t%-3d |" vt);
      Buffer.add_string b (String.init width (fun c -> grid.(vt).(c)));
      Buffer.add_string b "|\n"
    done;
    Buffer.add_string b
      (Printf.sprintf "        0%s%.4gs\n"
         (String.make (width - 8) ' ')
         makespan);
    Buffer.add_string b
      "  '#' work   '=' barrier wait   'x' critical   '.' dispatch claim\n";
    if truncated t then
      Buffer.add_string b "  (trace truncated at the recording limit)\n";
    Buffer.contents b
  end

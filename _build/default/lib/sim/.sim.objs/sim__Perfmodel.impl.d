lib/sim/perfmodel.ml: Cost Float Machine Omp_model

lib/sim/machine.ml: Format

lib/sim/perfmodel.mli: Machine Omp_model

lib/sim/des.ml: Effect Heap List Printf Queue

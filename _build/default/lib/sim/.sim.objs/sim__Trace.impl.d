lib/sim/trace.ml: Array Buffer List Printf String

lib/sim/heap.mli:

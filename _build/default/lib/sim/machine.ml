(** Machine model of the evaluation platform.

    The paper measures on one ARCHER2 compute node: two 64-core AMD EPYC
    7742 processors, 32 KB L1D + 512 KB L2 per core, 16.4 MB L3 shared by
    each four-core CCX, and eight DDR4-3200 channels per socket.  The
    constants below follow the paper's section IV and public ARCHER2/Rome
    documentation; throughput figures are *sustained* rates appropriate
    for NPB-style scalar/stream code rather than theoretical peaks.  The
    paper-facing experiments never change the topology — only kernels'
    cost descriptors and per-language throughput factors vary. *)

type t = {
  name : string;
  sockets : int;
  cores_per_socket : int;
  ccx_size : int;            (** cores sharing one L3 slice *)
  l3_per_ccx : float;        (** bytes *)
  l2_per_core : float;       (** bytes *)
  flops_per_core : float;    (** sustained scalar FLOP/s for NPB-like code *)
  core_mem_bw : float;       (** single-thread sustainable streamed DRAM B/s *)
  ccx_mem_bw : float;        (** streamed DRAM B/s available to one CCX *)
  node_mem_bw : float;       (** whole-node sustainable streamed DRAM B/s *)
  gather_core_bw : float;    (** single-thread random-access DRAM B/s *)
  gather_node_bw : float;    (** whole-node random-access DRAM B/s *)
  (* Cache-capacity correction: residual miss fraction once a thread's
     working set fits its L3 share, and the working-set/L3 ratio beyond
     which caching stops helping entirely. *)
  l3_hit_miss : float;
  l3_spill_ratio : float;
  (* Synchronisation costs (seconds). *)
  fork_base : float;         (** entering __kmpc_fork_call *)
  fork_per_thread : float;   (** per extra team member *)
  barrier_base : float;
  barrier_per_level : float; (** × log2(team size) *)
  atomic_rmw : float;        (** uncontended atomic update *)
  atomic_contention : float; (** extra serialisation per concurrent updater *)
  dispatch_next : float;     (** one __kmpc_dispatch_next claim *)
  static_chunk_overhead : float;  (** loop bookkeeping per chunk *)
}

let total_cores t = t.sockets * t.cores_per_socket

let l3_per_core t = t.l3_per_ccx /. float_of_int t.ccx_size

(** One ARCHER2 node (2 × AMD EPYC 7742 "Rome", 128 cores). *)
let archer2 = {
  name = "ARCHER2 node (2x AMD EPYC 7742)";
  sockets = 2;
  cores_per_socket = 64;
  ccx_size = 4;
  l3_per_ccx = 16.4e6;
  l2_per_core = 512e3;
  (* Sustained scalar throughput for NPB-style dependent/indexed code,
     calibrated from the paper's serial EP time (2^32 pairs, ~66 flop
     equivalents per pair, 147.66 s => ~1.9 GF/s). *)
  flops_per_core = 1.9e9;
  (* Effective per-core DRAM bandwidth for stream+gather mixes (well
     below the STREAM peak), and the bandwidth one 4-core CCX can draw.
     With compact thread placement these two limits reproduce the
     paper's CG pattern: near-linear to 2 threads, a saturation knee to
     16, then linear again as more CCXs come online. *)
  core_mem_bw = 4.5e9;
  ccx_mem_bw = 8.0e9;
  node_mem_bw = 256e9;  (* 32 CCXs x ccx_mem_bw *)
  (* Random-access (gather/scatter) traffic: one core sustains far less
     than a stream, and the node-level limit is reached much earlier
     because every access transfers a full line for a few useful bytes. *)
  gather_core_bw = 2.5e9;
  gather_node_bw = 100e9;
  (* Cache-capacity correction calibrated on the paper's CG super-linear
     tail (Table I, 96 and 128 threads): even a fully L3-resident sweep
     still pays ~60% of the cold traffic (vectors, write-backs, cross-CCX
     probes), and caching stops helping at all once the slice exceeds
     ~1.75x the per-core L3 share. *)
  l3_hit_miss = 0.6;
  l3_spill_ratio = 1.75;
  fork_base = 4.0e-6;
  fork_per_thread = 0.25e-6;
  barrier_base = 1.2e-6;
  barrier_per_level = 0.6e-6;
  atomic_rmw = 0.03e-6;
  atomic_contention = 0.05e-6;
  dispatch_next = 0.12e-6;
  static_chunk_overhead = 0.08e-6;
}

(** A deliberately small machine for tests: 2 CCXs of 2 cores. *)
let testbox = {
  archer2 with
  name = "testbox (4 cores)";
  sockets = 1;
  cores_per_socket = 4;
  ccx_size = 2;
  l3_per_ccx = 8e6;
  ccx_mem_bw = 30e9;
  node_mem_bw = 60e9;
  gather_node_bw = 25e9;
}

let pp ppf t =
  Format.fprintf ppf "%s: %d cores, %.0f GB/s node BW, %.1f MB L3/CCX"
    t.name (total_cores t) (t.node_mem_bw /. 1e9) (t.l3_per_ccx /. 1e6)

(** A binary min-heap with float keys and FIFO tie-breaking.

    The discrete-event scheduler always resumes the runnable virtual
    thread with the smallest clock; ties pop in insertion order so
    simulations are bit-reproducible. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** The entry with the smallest key (oldest among equals). *)

val peek_key : 'a t -> float option

(** A binary min-heap with float keys and a deterministic tiebreak.

    The discrete-event scheduler always resumes the runnable virtual
    thread with the smallest clock; ties are broken by an insertion
    sequence number so that simulations are bit-reproducible regardless
    of hashing or allocation order. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;  (* data.(0) unused when empty *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let dummy = t.data.(0) in
    let d = Array.make ncap dummy in
    Array.blit t.data 0 d 0 t.size;
    t.data <- d
  end

let push t key value =
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then begin
    t.data <- Array.make 16 e;
    t.size <- 1
  end else begin
    grow t;
    t.data.(t.size) <- e;
    t.size <- t.size + 1;
    (* sift up *)
    let i = ref (t.size - 1) in
    while !i > 0 && lt t.data.(!i) t.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.data.(p) in
      t.data.(p) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := p
    done
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

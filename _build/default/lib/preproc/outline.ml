(** Pass: parallel regions → outlined functions + [__kmpc_fork_call].

    Reproduces the paper's section III-B1.  Each [parallel] directive is
    replaced by a block that packs the captured variables into three
    anonymous struct groups — firstprivate (by value), shared (by
    pointer) and reduction (atomic cells) — and calls the runtime's
    fork entry point with a pointer to a synthesised outlined function.
    The outlined function unpacks each group: firstprivate values are
    rebound under their original names, shared variables are bound as
    pointers with every access in the body rewritten to a pointer
    access, private variables are declared [undefined], and reduction
    variables are declared with the operator's identity element and
    atomically combined into their cells on exit. *)

open Zr

module Sset = Names.Sset

let ptr_suffix = "__ptr"

let is_ptr_name name =
  String.length name > String.length ptr_suffix
  && String.sub name
       (String.length name - String.length ptr_suffix)
       (String.length ptr_suffix)
     = ptr_suffix

(** Source text denoting the *value* of a captured name: names that are
    themselves pointer rebindings (from an enclosing outlining round)
    need a dereference. *)
let value_text name = if is_ptr_name name then name ^ ".*" else name

let atomic_combine_fn = function
  | Ompfront.Directive.Radd -> "__omp_atomic_combine_add"
  | Ompfront.Directive.Rsub -> "__omp_atomic_combine_add"
  | Ompfront.Directive.Rmul -> "__omp_atomic_combine_mul"
  | Ompfront.Directive.Rmin -> "__omp_atomic_combine_min"
  | Ompfront.Directive.Rmax -> "__omp_atomic_combine_max"

type plan = {
  replacement : Synth.replacement;
  outlined : string;  (** function definition to append to the file *)
}

(** Build the outlining plan for directive node [dir]. *)
let plan_region (c : Synth.ctx) ~counter dir : plan =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let region = node.Ast.rhs in
  let name_of = Synth.ident_name c in
  let priv = List.map name_of cl.private_ in
  let fp = List.map name_of cl.firstprivate in
  let sh_explicit = List.map name_of cl.shared in
  let reds = List.map (fun (op, n) -> (op, name_of n)) cl.reductions in
  let red_names = List.map snd reds in
  let declared = Names.declared_under ast region in
  let referenced = Names.referenced_under ast region in
  let globals = Names.globals ast in
  let explicit =
    Sset.of_list (priv @ fp @ sh_explicit @ red_names)
  in
  let implicit =
    Sset.(diff (diff (diff referenced declared) globals) explicit)
  in
  if cl.flags.Ompfront.Packed.default = Ompfront.Packed.Default_none
     && not (Sset.is_empty implicit) then
    Source.error ast.Ast.source
      (Ast.token ast node.Ast.main_token).Token.start
      "default(none): variables %s are referenced but have no sharing \
       clause"
      (String.concat ", " (Sset.elements implicit));
  let shared = sh_explicit @ Sset.elements implicit in
  let fn_name = Printf.sprintf "__omp_outlined_%d" counter in
  (* ---- call site ---- *)
  let b = Buffer.create 256 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  List.iter
    (fun (_, x) ->
      bpf "    var __omp_red_%s = __omp_atomic_new(%s);\n" x (value_text x))
    reds;
  let field_list names f =
    String.concat ", " (List.map f names)
  in
  let fp_fields = field_list fp (fun x -> Printf.sprintf ".%s = %s" x (value_text x)) in
  let sh_fields =
    field_list shared (fun x -> Printf.sprintf ".%s = &%s" x (value_text x))
  in
  let red_fields =
    field_list red_names (fun x -> Printf.sprintf ".%s = __omp_red_%s" x x)
  in
  let nt_text =
    if cl.num_threads = 0 then "0" else Synth.node_text c cl.num_threads
  in
  bpf "    __kmpc_fork_call(%s, .{ %s }, .{ %s }, .{ %s }, %s);\n"
    fn_name fp_fields sh_fields red_fields nt_text;
  List.iter
    (fun (_, x) ->
      bpf "    %s = __omp_atomic_load(__omp_red_%s);\n" (value_text x) x)
    reds;
  bpf "}";
  let dir_start, _ = Synth.node_bytes c dir in
  let _, region_stop = Synth.node_bytes c region in
  let replacement =
    { Synth.start = dir_start; stop = region_stop; text = Buffer.contents b }
  in
  (* ---- outlined function ---- *)
  let shared_set = Sset.of_list shared in
  let body_text =
    Synth.rewrite_range c
      ~first_token:(Synth.node_first_token c region)
      ~last_token:(Synth.node_last_token c region)
      ~code:(fun name ->
        if Sset.mem name shared_set then Some (name ^ ptr_suffix ^ ".*")
        else None)
      ~pragma:(fun name ->
        if Sset.mem name shared_set then Some (name ^ ptr_suffix)
        else None)
      ()
  in
  let o = Buffer.create 256 in
  let opf fmt = Printf.ksprintf (Buffer.add_string o) fmt in
  opf "fn %s(fp: anytype, sh: anytype, red: anytype) void {\n" fn_name;
  List.iter (fun x -> opf "    var %s = fp.%s;\n" x x) fp;
  List.iter (fun x -> opf "    var %s%s = sh.%s;\n" x ptr_suffix x) shared;
  List.iter (fun x -> opf "    var %s = undefined;\n" x) priv;
  List.iter
    (fun (op, x) ->
      opf "    var %s = %s;\n" x (Ompfront.Directive.red_op_identity op))
    reds;
  let body_text =
    if (Ast.node ast region).Ast.tag = Ast.Block then body_text
    else "{ " ^ body_text ^ " }"
  in
  opf "    %s\n" body_text;
  List.iter
    (fun (op, x) -> opf "    %s(red.%s, %s);\n" (atomic_combine_fn op) x x)
    reds;
  opf "}\n";
  { replacement; outlined = Buffer.contents o }

(** Run the pass once over [source]: replace every [parallel] region,
    appending the outlined functions at the end of the file.  Returns
    [None] when there was nothing to do.  [counter] supplies unique
    outlined-function indices across repeated rounds. *)
let run ?(name = "<input>") ~counter (source : string) : string option =
  let src = Source.of_string ~name source in
  let ast, spans = Parser.parse src in
  let c = { Synth.ast; spans } in
  let dirs = Names.omp_nodes ast (fun tag -> tag = Ast.Omp_parallel) in
  (* Only outline regions not nested inside another parallel region in
     the same round; inner ones are caught by the next round's re-parse
     of the outlined function. *)
  let outermost =
    Synth.outermost (List.map (fun d -> (d, Synth.node_bytes c d)) dirs)
  in
  match outermost with
  | [] -> None
  | dirs ->
      let plans =
        List.map
          (fun d ->
            let k = !counter in
            incr counter;
            plan_region c ~counter:k d)
          dirs
      in
      let rewritten =
        Synth.apply_replacements source
          (List.map (fun p -> p.replacement) plans)
      in
      let appended =
        String.concat "\n" (List.map (fun p -> p.outlined) plans)
      in
      Some (rewritten ^ "\n" ^ appended)

(** Source-text synthesis utilities.

    The preprocessor works on source text (the paper's design: AST nodes
    are pinned to source bytes, so code is injected by rewriting the
    text and re-parsing).  These helpers extract node extents, rewrite
    identifier occurrences inside an extent using the token stream, and
    print clause lists back to pragma syntax. *)

open Zr

type ctx = { ast : Ast.t; spans : Ast.spans }

let node_first_token c i = fst c.spans.(i)
let node_last_token c i = snd c.spans.(i)

(** Byte extent [\[start, stop)] of node [i]. *)
let node_bytes c i =
  let t0 = Ast.token c.ast (node_first_token c i) in
  let t1 = Ast.token c.ast (node_last_token c i) in
  (t0.Token.start, t1.Token.stop)

let node_text c i =
  let start, stop = node_bytes c i in
  Source.slice c.ast.Ast.source ~start ~stop

let token_text c tok = Ast.token_text c.ast tok

let ident_name c node = token_text c (Ast.node c.ast node).Ast.main_token

(* ------------------------------------------------------------------ *)
(** Identifier rewriting.

    [rewrite_range c ~first_token ~last_token ~code ~pragma] returns the
    source text of the token range with every identifier occurrence
    substituted: [code name] inside ordinary code, [pragma name] inside
    pragma lines (between a sentinel and its end-of-line).  [None] keeps
    the occurrence.  An identifier immediately preceded by '.' is a
    field name and is never rewritten (the paper's no-shadowing rule
    III-B3).  When [consume_deref] holds for a substituted occurrence, a
    directly following [.*] token is swallowed — used when a pointer
    access is folded back into a plain name. *)
let rewrite_range c ~first_token ~last_token
    ?(consume_deref = fun _ -> false)
    ~(code : string -> string option)
    ~(pragma : string -> string option) () =
  let ast = c.ast in
  let src = ast.Ast.source in
  let buf = Buffer.create 256 in
  let start_byte = (Ast.token ast first_token).Token.start in
  let cursor = ref start_byte in
  let in_pragma = ref false in
  let skip_next_deref = ref false in
  for ti = first_token to last_token do
    let tok = Ast.token ast ti in
    (match tok.Token.tag with
     | Token.Pragma_sentinel -> in_pragma := true
     | Token.Pragma_end -> in_pragma := false
     | _ -> ());
    let emit_upto stop =
      Buffer.add_string buf
        (Source.slice src ~start:!cursor ~stop);
      cursor := stop
    in
    match tok.Token.tag with
    | Token.Dot_star when !skip_next_deref ->
        (* swallow: copy text before it, skip the token itself *)
        emit_upto tok.Token.start;
        cursor := tok.Token.stop;
        skip_next_deref := false
    | Token.Identifier ->
        skip_next_deref := false;
        let preceded_by_dot =
          ti > 0
          && (match (Ast.token ast (ti - 1)).Token.tag with
              | Token.Dot | Token.Dot_brace -> true
              | _ -> false)
        in
        if preceded_by_dot then ()
        else begin
          let name = Source.slice src ~start:tok.Token.start ~stop:tok.Token.stop in
          let subst = if !in_pragma then pragma name else code name in
          match subst with
          | None -> ()
          | Some replacement ->
              emit_upto tok.Token.start;
              Buffer.add_string buf replacement;
              cursor := tok.Token.stop;
              if consume_deref name then skip_next_deref := true
        end
    | _ -> skip_next_deref := false
  done;
  let stop_byte = (Ast.token ast last_token).Token.stop in
  Buffer.add_string buf (Source.slice src ~start:!cursor ~stop:stop_byte);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(** Clause printing (for the combined-construct split). *)

let print_list_clause name = function
  | [] -> ""
  | names -> Printf.sprintf " %s(%s)" name (String.concat ", " names)

let print_reductions reds =
  (* group by operator to keep the pragma compact *)
  let ops = List.sort_uniq compare (List.map fst reds) in
  String.concat ""
    (List.map
       (fun op ->
         let names =
           List.filter_map
             (fun (o, n) -> if o = op then Some n else None)
             reds
         in
         Printf.sprintf " reduction(%s: %s)"
           (Ompfront.Directive.red_op_to_string op)
           (String.concat ", " names))
       ops)

let print_schedule = function
  | None -> ""
  | Some s -> Printf.sprintf " schedule(%s)" (Omp_model.Sched.to_string s)

let print_default = function
  | Ompfront.Packed.Default_unspecified -> ""
  | Ompfront.Packed.Default_shared -> " default(shared)"
  | Ompfront.Packed.Default_none -> " default(none)"

(* ------------------------------------------------------------------ *)
(** Replacement plumbing: apply byte-range replacements to a source
    string.  Ranges must not overlap; they are applied left to right
    with the offset adjustment of the paper's Listing 5 falling out of
    the string rebuild. *)

type replacement = {
  start : int;
  stop : int;
  text : string;
}

(** Keep only the nodes whose byte range is not strictly contained in
    another listed node's range — one replacement round handles the
    outermost constructs, later rounds catch what they exposed.  (Node
    indices cannot be used for this: the parser builds children before
    parents, so an inner directive has the *smaller* index.) *)
let outermost (ranged : (int * (int * int)) list) : int list =
  List.filter_map
    (fun (d, (lo, hi)) ->
      let contained =
        List.exists
          (fun (d', (lo', hi')) ->
            d' <> d && lo >= lo' && hi <= hi' && (lo' < lo || hi < hi'))
          ranged
      in
      if contained then None else Some d)
    ranged

let apply_replacements (source : string) (rs : replacement list) : string =
  let rs = List.sort (fun a b -> compare a.start b.start) rs in
  let buf = Buffer.create (String.length source) in
  let cursor = ref 0 in
  List.iter
    (fun r ->
      if r.start < !cursor then
        invalid_arg "Synth.apply_replacements: overlapping replacements";
      Buffer.add_substring buf source !cursor (r.start - !cursor);
      Buffer.add_string buf r.text;
      cursor := r.stop)
    rs;
  Buffer.add_substring buf source !cursor (String.length source - !cursor);
  Buffer.contents buf

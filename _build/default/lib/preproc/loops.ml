(** Pass: worksharing loops → [__kmpc_for_static_*] / [__kmpc_dispatch_*].

    Reproduces the paper's section III-B2.  The bounds are recovered
    syntactically from the Zig-style [while] loop: the lower bound is
    the counter's value on entry, the upper bound is the right-hand side
    of the comparison, the comparison operator decides inclusivity, and
    the increment comes from the right-hand side of the compound
    assignment in the continuation expression.  Static unchunked loops
    lower to the [for_static_init/fini] pair; chunked static, dynamic,
    guided and runtime schedules lower to the dispatcher protocol
    ([dispatch_init]/[dispatch_next]).

    The loop counter is always privatised into a fresh [__omp_iv]
    variable, and loop-level [reduction] clauses create thread-local
    accumulators combined into the original variable under the
    reduction critical section — the temporaries "may not share their
    names with the shared variable they are being reduced into"
    (III-B3), hence the [__omp_red_] prefix. *)

open Zr

open Ompfront

let combine_expr op target tmp =
  match op with
  | Directive.Radd | Directive.Rsub ->
      Printf.sprintf "%s = %s + %s;" target target tmp
  | Directive.Rmul -> Printf.sprintf "%s = %s * %s;" target target tmp
  | Directive.Rmin -> Printf.sprintf "%s = __omp_min(%s, %s);" target target tmp
  | Directive.Rmax -> Printf.sprintf "%s = __omp_max(%s, %s);" target target tmp

type loop_parts = {
  counter_base : string;   (* identifier at the heart of the condition *)
  counter_is_ptr : bool;
  upper : int;             (* node: RHS of the comparison *)
  inclusive : bool;
  cont : int;              (* node: continuation assignment *)
  step_text : string;      (* step expression, sign included *)
  body : int;              (* node: loop body block *)
}

let decompose (c : Synth.ctx) dir wh : loop_parts =
  let ast = c.ast in
  let fail_at node fmt =
    Source.error ast.Ast.source
      (Ast.token ast (Ast.node ast node).Ast.main_token).Token.start
      fmt
  in
  let wn = Ast.node ast wh in
  let cond = Ast.node ast wn.Ast.lhs in
  (if cond.Ast.tag <> Ast.Bin_op then
     fail_at dir "worksharing loop: condition must be a comparison");
  let optok = (Ast.token ast cond.Ast.main_token).Token.tag in
  let inclusive =
    match optok with
    | Token.Lt | Token.Gt -> false
    | Token.Lt_eq | Token.Gt_eq -> true
    | _ -> fail_at dir "worksharing loop: unsupported comparison operator"
  in
  let counter_base, counter_is_ptr =
    let lhs = Ast.node ast cond.Ast.lhs in
    match lhs.Ast.tag with
    | Ast.Ident -> (Ast.token_text ast lhs.Ast.main_token, false)
    | Ast.Deref ->
        let inner = Ast.node ast lhs.Ast.lhs in
        if inner.Ast.tag = Ast.Ident then
          (Ast.token_text ast inner.Ast.main_token, true)
        else fail_at dir "worksharing loop: unsupported counter expression"
    | _ -> fail_at dir "worksharing loop: the comparison must start with \
                        the loop counter"
  in
  let cont = Ast.extra ast wn.Ast.rhs in
  let body = Ast.extra ast (wn.Ast.rhs + 1) in
  (if cont = 0 then
     fail_at dir
       "worksharing loop: the while loop needs a continuation expression \
        to determine the increment");
  let cn = Ast.node ast cont in
  (if cn.Ast.tag <> Ast.Assign then
     fail_at dir "worksharing loop: unsupported continuation expression");
  let step_text =
    let rhs_text = Synth.node_text c cn.Ast.rhs in
    match (Ast.token ast cn.Ast.main_token).Token.tag with
    | Token.Plus_eq -> rhs_text
    | Token.Minus_eq -> "-(" ^ rhs_text ^ ")"
    | _ ->
        fail_at dir
          "worksharing loop: the continuation must be a compound \
           increment (+= or -=)"
  in
  { counter_base; counter_is_ptr; upper = cond.Ast.rhs; inclusive;
    cont; step_text; body }

(* Collapse(2): the outer loop's body must be the canonical nest — an
   initialisation of the inner counter (assignment or var decl with
   init) directly followed by the inner while.  Returns the inner
   counter's init expression node and the inner loop node. *)
let decompose_nest (c : Synth.ctx) dir outer_body =
  let ast = c.ast in
  let fail () =
    Source.error ast.Ast.source
      (Ast.token ast (Ast.node ast dir).Ast.main_token).Token.start
      "collapse(2): the outer loop body must contain exactly the inner \
       counter initialisation followed by the inner while loop"
  in
  match Ast.block_stmts ast outer_body with
  | [ init; inner ] ->
      let inner_node = Ast.node ast inner in
      if inner_node.Ast.tag <> Ast.While then fail ();
      let init_node = Ast.node ast init in
      let init_expr =
        match init_node.Ast.tag with
        | Ast.Assign
          when (Ast.token ast init_node.Ast.main_token).Token.tag = Token.Eq
          -> init_node.Ast.rhs
        | Ast.Var_decl when init_node.Ast.rhs <> 0 -> init_node.Ast.rhs
        | _ -> fail ()
      in
      (init_expr, inner)
  | _ -> fail ()

let plan_loop (c : Synth.ctx) dir : Synth.replacement =
  let ast = c.ast in
  let node = Ast.node ast dir in
  let cl = Ast.clauses ast dir in
  let wh = node.Ast.rhs in
  let lp = decompose c dir wh in
  let collapse2 = cl.flags.Packed.collapse >= 2 in
  (if cl.flags.Packed.collapse > 2 then
     Source.error ast.Ast.source
       (Ast.token ast node.Ast.main_token).Token.start
       "collapse(%d): only collapse(2) is code-generated"
       cl.flags.Packed.collapse);
  let nest =
    if collapse2 then begin
      let init_expr, inner = decompose_nest c dir lp.body in
      Some (init_expr, decompose c dir inner)
    end
    else None
  in
  let name_of = Synth.ident_name c in
  let priv = List.map name_of cl.private_ in
  let fp = List.map name_of cl.firstprivate in
  let reds = List.map (fun (op, n) -> (op, name_of n)) cl.reductions in
  (* Rewriting map: privatise the counter(s), redirect reduction vars to
     their thread-local temporaries. *)
  let red_tmp x = "__omp_red_" ^ x in
  let map name =
    if name = lp.counter_base then
      Some (if collapse2 then "__omp_ov" else "__omp_iv")
    else
      match nest with
      | Some (_, ilp) when name = ilp.counter_base -> Some "__omp_inv"
      | _ ->
          if List.exists (fun (_, x) -> x = name) reds then
            Some (red_tmp name)
          else None
  in
  let consume name = map name <> None in
  let rw node_ =
    Synth.rewrite_range c
      ~first_token:(Synth.node_first_token c node_)
      ~last_token:(Synth.node_last_token c node_)
      ~consume_deref:consume ~code:map ~pragma:map ()
  in
  let upper_text = rw lp.upper in
  let cont_text = rw lp.cont in
  let body_text =
    match nest with
    | None -> rw lp.body
    | Some (_, ilp) -> rw ilp.body  (* only the innermost body runs *)
  in
  let counter_value =
    if lp.counter_is_ptr then lp.counter_base ^ ".*" else lp.counter_base
  in
  let step = lp.step_text in
  let incl = if lp.inclusive then "1" else "0" in
  let b = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  List.iter (fun x -> bpf "    var %s = undefined;\n" x) priv;
  List.iter
    (fun x -> bpf "    var %s = %s;\n" x (Outline.value_text x))
    fp;
  List.iter
    (fun (op, x) ->
      bpf "    var %s = %s;\n" (red_tmp x) (Directive.red_op_identity op))
    reds;
  bpf "    var __omp_iv = undefined;\n";
  (* For collapse(2) the worksharing runs over the fused linear space
     [0, outer trips x inner trips) and the two original counters are
     recovered by division/modulo per iteration. *)
  let counter_value, upper_text, step, incl, cont_text =
    match nest with
    | None -> (counter_value, upper_text, step, incl, cont_text)
    | Some (init_expr, ilp) ->
        let iupper_text = rw ilp.upper in
        let iincl = if ilp.inclusive then "1" else "0" in
        bpf "    var __omp_olb = %s;\n" counter_value;
        bpf "    var __omp_ilb = %s;\n" (rw init_expr);
        bpf "    var __omp_nin = __omp_trips(__omp_ilb, %s, %s, %s);\n"
          iupper_text ilp.step_text iincl;
        bpf "    var __omp_nout = __omp_trips(__omp_olb, %s, %s, %s);\n"
          upper_text step incl;
        bpf "    var __omp_ov = undefined;\n";
        bpf "    var __omp_inv = undefined;\n";
        ("0", "__omp_nout * __omp_nin", "1", "0", "__omp_iv += 1")
  in
  (* Inside the claimed range, a collapsed loop recovers (ov, inv) from
     the linear index before running the body. *)
  let body_text =
    match nest with
    | None -> body_text
    | Some (_, ilp) ->
        Printf.sprintf
          "{\n            __omp_ov = __omp_olb + (__omp_iv / __omp_nin) * \
           (%s);\n            __omp_inv = __omp_ilb + (__omp_iv %% \
           __omp_nin) * (%s);\n            %s\n        }"
          lp.step_text ilp.step_text body_text
  in
  (match cl.schedule with
   | None | Some (Omp_model.Sched.Static None) | Some Omp_model.Sched.Auto ->
       bpf "    var __omp_ws = __kmpc_for_static_init(%s, %s, %s, %s);\n"
         counter_value upper_text step incl;
       bpf "    if (__omp_ws.has) {\n";
       bpf "        __omp_iv = __omp_ws.lower;\n";
       bpf "        while (__omp_ws_cmp(__omp_iv, __omp_ws.upper, %s)) : \
            (%s) %s\n" step cont_text body_text;
       bpf "    }\n";
       bpf "    __kmpc_for_static_fini();\n"
   | Some sched ->
       let init_fn =
         match sched with
         | Omp_model.Sched.Static (Some _) -> "__kmpc_static_chunked_init"
         | Omp_model.Sched.Dynamic _ -> "__kmpc_dispatch_init_dynamic"
         | Omp_model.Sched.Guided _ -> "__kmpc_dispatch_init_guided"
         | Omp_model.Sched.Runtime -> "__kmpc_dispatch_init_runtime"
         | Omp_model.Sched.Static None | Omp_model.Sched.Auto ->
             assert false
       in
       let chunk =
         match Omp_model.Sched.chunk sched with
         | Some c -> string_of_int c
         | None -> "1"
       in
       bpf "    var __omp_h = %s(%s, %s, %s, %s, %s);\n" init_fn
         counter_value upper_text step chunk incl;
       bpf "    var __omp_c = __kmpc_dispatch_next(__omp_h);\n";
       bpf "    while (__omp_c.more) : \
            (__omp_c = __kmpc_dispatch_next(__omp_h)) {\n";
       bpf "        __omp_iv = __omp_c.lower;\n";
       bpf "        while (__omp_ws_cmp(__omp_iv, __omp_c.upper, %s)) : \
            (%s) %s\n" step cont_text body_text;
       bpf "    }\n");
  List.iter
    (fun (op, x) ->
      bpf "    __kmpc_critical(\"__omp_reduction\");\n";
      bpf "    %s\n" (combine_expr op (Outline.value_text x) (red_tmp x));
      bpf "    __kmpc_end_critical(\"__omp_reduction\");\n")
    reds;
  if not cl.flags.Packed.nowait then bpf "    __kmpc_barrier();\n";
  bpf "}";
  let dir_start, _ = Synth.node_bytes c dir in
  let _, wh_stop = Synth.node_bytes c wh in
  { Synth.start = dir_start; stop = wh_stop; text = Buffer.contents b }

(** One round of the pass; [None] when no worksharing directive found. *)
let run ?(name = "<input>") (source : string) : string option =
  let src = Source.of_string ~name source in
  let ast, spans = Parser.parse src in
  let c = { Synth.ast; spans } in
  match Names.omp_nodes ast (fun tag -> tag = Ast.Omp_for) with
  | [] -> None
  | dirs ->
      (* Skip directives nested inside another worksharing loop's range
         this round (inner loops are handled by the next round). *)
      let outermost =
        Synth.outermost (List.map (fun d -> (d, Synth.node_bytes c d)) dirs)
      in
      Some
        (Synth.apply_replacements source
           (List.map (plan_loop c) outermost))

lib/preproc/names.ml: Ast List Set String Zr

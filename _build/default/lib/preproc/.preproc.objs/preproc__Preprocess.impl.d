lib/preproc/preprocess.ml: Ast List Loops Outline Parser Printf Source Sync Zr

lib/preproc/outline.ml: Ast Buffer List Names Ompfront Parser Printf Source String Synth Token Zr

lib/preproc/synth.ml: Array Ast Buffer List Omp_model Ompfront Printf Source String Token Zr

lib/preproc/loops.ml: Ast Buffer Directive List Names Omp_model Ompfront Outline Packed Parser Printf Source Synth Token Zr

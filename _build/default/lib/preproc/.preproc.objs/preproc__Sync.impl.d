lib/preproc/sync.ml: Ast Directive List Names Ompfront Packed Parser Printf Source String Synth Zr

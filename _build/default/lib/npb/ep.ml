(** NPB Embarrassingly Parallel (EP) kernel.

    Port of NPB 3.x EP: generate 2^m pairs of uniform deviates in
    batches of 2^16, transform accepted pairs to Gaussian deviates by
    the polar (Marsaglia) method, and accumulate the sums [sx], [sy]
    plus the counts [q.(l)] of pairs by annulus l = ⌊max(|X|,|Y|)⌋.
    Each batch jumps the generator to its own subsequence, which makes
    the batch loop independent — the benchmark the paper uses to
    measure pure compute scaling (section V-B).

    OpenMP structure per the paper: a parallel region whose worksharing
    loop runs over batches, with [firstprivate]/[private] data per
    thread and reductions on [sx], [sy] and [q] — the [q] combine uses
    the atomic path and the sums use CAS-loop adds, matching what the
    preprocessor generates. *)

open Omp_model

let batch_log2 = 16
let nk = 1 lsl batch_log2  (* pairs per batch *)
let nq = 10                (* number of annuli counted *)

let seed = 271828183.0
let a = 1220703125.0

(* an = A^(2*NK) mod 2^46: one application advances the stream by a whole
   batch, so squaring it down the bits of the batch index jumps straight
   to that batch's subsequence. *)
let an = lazy (Randlc.power a (2 * nk))

(* Per-pair op-equivalents for the cost model: two LCG draws (~20 each),
   the rejection test (~6), and the accepted-path sqrt/log/divide, spread
   over the ~78.5% acceptance rate (~20).  Calibrated so a single-thread
   class-C run matches the paper's Zig time (Table II). *)
let flops_per_pair = 65.4

(** Work accumulated by one thread; combined at region end. *)
type partial = {
  mutable sx : float;
  mutable sy : float;
  q : float array;  (* nq counts, kept as floats like the reference *)
}

let fresh_partial () = { sx = 0.; sy = 0.; q = Array.make nq 0. }

(** Process batch [k] (0-based) into [p].  [x] is the thread's scratch
    buffer of 2*nk deviates. *)
let process_batch (x : float array) (p : partial) k =
  (* Jump the generator to the start of batch k (the reference's
     kk = k_offset + k with k_offset = -1): square the multiplier down
     the bits of the 0-based batch index. *)
  let t1 = ref seed in
  let t2 = ref (Lazy.force an) in
  let kk = ref k in
  (try
     for _i = 1 to 100 do
       let ik = !kk / 2 in
       if 2 * ik <> !kk then begin
         let s', _ = Randlc.next !t1 !t2 in
         t1 := s'
       end;
       if ik = 0 then raise Exit;
       let a', _ = Randlc.next !t2 !t2 in
       t2 := a';
       kk := ik
     done
   with Exit -> ());
  (* Fill 2*nk uniform deviates from the jumped seed. *)
  let rng = Randlc.create ~a !t1 in
  Randlc.vranlc rng (2 * nk) x 0;
  (* Polar method with acceptance test. *)
  for i = 0 to nk - 1 do
    let x1 = (2.0 *. x.(2 * i)) -. 1.0 in
    let x2 = (2.0 *. x.((2 * i) + 1)) -. 1.0 in
    let t1 = (x1 *. x1) +. (x2 *. x2) in
    if t1 <= 1.0 then begin
      let t2 = sqrt ((-2.0) *. log t1 /. t1) in
      let t3 = x1 *. t2 in
      let t4 = x2 *. t2 in
      let l = int_of_float (Float.max (Float.abs t3) (Float.abs t4)) in
      p.q.(l) <- p.q.(l) +. 1.0;
      p.sx <- p.sx +. t3;
      p.sy <- p.sy +. t4
    end
  done

let sum_epsilon = 1e-8

(** Run the EP benchmark on engine [O]. *)
let run (module O : Omprt.Omp_intf.S) ?(lang = Classes.Zig) ~cls () : Result.t =
  let p = Classes.Ep.params cls in
  let nn = 1 lsl (p.m - batch_log2) in  (* number of batches *)
  let factor = Classes.ep_factor lang in
  let batch_cost lo hi =
    Cost.flops
      (float_of_int (hi - lo) *. float_of_int nk *. flops_per_pair *. factor)
  in
  let sx_cell = Atomic.make 0. in
  let sy_cell = Atomic.make 0. in
  let q_shared = Array.make nq 0. in
  let t0 = O.wtime () in
  O.parallel (fun () ->
      (* private scratch and partials, as firstprivate/private clauses *)
      let x = Array.make (2 * nk) 0. in
      let mine = fresh_partial () in
      O.ws_for
        ~chunk_cost:batch_cost ~nowait:true ~lo:0 ~hi:nn
        (fun lo hi ->
          for k = lo to hi - 1 do
            process_batch x mine k
          done);
      (* reduction(+: sx, sy): CAS-loop float adds *)
      O.atomic ~cost:(Cost.flops 2.) (fun () ->
          Omprt.Atomics.Float.add sx_cell mine.sx;
          Omprt.Atomics.Float.add sy_cell mine.sy);
      (* reduction on the q array via a critical section, as the
         reference uses an atomic per element *)
      O.critical ~name:"ep.q" ~cost:(Cost.flops (float_of_int nq))
        (fun () ->
          for l = 0 to nq - 1 do
            q_shared.(l) <- q_shared.(l) +. mine.q.(l)
          done);
      O.barrier ());
  let time = O.wtime () -. t0 in
  let sx = Atomic.get sx_cell and sy = Atomic.get sy_cell in
  let gc = Array.fold_left ( +. ) 0. q_shared in
  let verification =
    if O.is_simulated then Result.Unverifiable
    else begin
      let rel err v = Float.abs (err /. v) in
      let sx_err = rel (sx -. p.sx_verify) p.sx_verify in
      let sy_err = rel (sy -. p.sy_verify) p.sy_verify in
      if sx_err <= sum_epsilon && sy_err <= sum_epsilon then Result.Verified
      else
        Result.Failed
          (Printf.sprintf "sx = %.15e (want %.15e), sy = %.15e (want %.15e)"
             sx p.sx_verify sy p.sy_verify)
    end
  in
  { Result.kernel = "EP"; cls; nthreads = 0; time;
    mops = (2. ** float_of_int p.m) /. time /. 1e6;
    verification;
    detail = [ ("sx", sx); ("sy", sy); ("gc", gc) ] }

(** Independent serial reference. *)
let run_serial ~cls () : Result.t =
  let p = Classes.Ep.params cls in
  let nn = 1 lsl (p.m - batch_log2) in
  let x = Array.make (2 * nk) 0. in
  let mine = fresh_partial () in
  let t0 = Unix.gettimeofday () in
  for k = 0 to nn - 1 do
    process_batch x mine k
  done;
  let time = Unix.gettimeofday () -. t0 in
  let gc = Array.fold_left ( +. ) 0. mine.q in
  let verification =
    let rel err v = Float.abs (err /. v) in
    if rel (mine.sx -. p.sx_verify) p.sx_verify <= sum_epsilon
       && rel (mine.sy -. p.sy_verify) p.sy_verify <= sum_epsilon
    then Result.Verified
    else
      Result.Failed
        (Printf.sprintf "sx = %.15e (want %.15e), sy = %.15e (want %.15e)"
           mine.sx p.sx_verify mine.sy p.sy_verify)
  in
  { Result.kernel = "EP"; cls; nthreads = 1; time;
    mops = (2. ** float_of_int p.m) /. time /. 1e6;
    verification;
    detail = [ ("sx", mine.sx); ("sy", mine.sy); ("gc", gc) ] }

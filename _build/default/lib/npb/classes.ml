(** NPB problem classes and their parameters for CG, EP and IS.

    Parameters and verification references follow NPB 3.x.  The paper
    runs class C for all three kernels; our real-engine tests verify at
    the small classes and the simulator regenerates class C timing. *)

type cls = S | W | A | B | C

let cls_to_string = function
  | S -> "S" | W -> "W" | A -> "A" | B -> "B" | C -> "C"

let cls_of_string = function
  | "S" | "s" -> Some S
  | "W" | "w" -> Some W
  | "A" | "a" -> Some A
  | "B" | "b" -> Some B
  | "C" | "c" -> Some C
  | _ -> None

let all = [ S; W; A; B; C ]

(* ------------------------------------------------------------------ *)

module Cg = struct
  type t = {
    cls : cls;
    na : int;        (** matrix order *)
    nonzer : int;    (** nonzeros per generated sparse vector *)
    niter : int;     (** outer iterations *)
    shift : float;
    zeta_verify : float;  (** official reference value *)
  }

  let params = function
    | S -> { cls = S; na = 1400; nonzer = 7; niter = 15; shift = 10.;
             zeta_verify = 8.5971775078648 }
    | W -> { cls = W; na = 7000; nonzer = 8; niter = 15; shift = 12.;
             zeta_verify = 10.362595087124 }
    | A -> { cls = A; na = 14000; nonzer = 11; niter = 15; shift = 20.;
             zeta_verify = 17.130235054029 }
    | B -> { cls = B; na = 75000; nonzer = 13; niter = 75; shift = 60.;
             zeta_verify = 22.712745482631 }
    | C -> { cls = C; na = 150000; nonzer = 15; niter = 75; shift = 110.;
             zeta_verify = 28.973605592845 }

  (** Allocation bound on nonzeros, as NPB sizes its arrays. *)
  let nz_bound p = p.na * (p.nonzer + 1) * (p.nonzer + 1)
end

module Ep = struct
  type t = {
    cls : cls;
    m : int;  (** generate 2^m Gaussian pairs *)
    sx_verify : float;
    sy_verify : float;
  }

  (* Reference sums from NPB 3.3 ep verification. *)
  let params = function
    | S -> { cls = S; m = 24;
             sx_verify = -3.247834652034740e+3;
             sy_verify = -6.958407078382297e+3 }
    | W -> { cls = W; m = 25;
             sx_verify = -2.863319731645753e+3;
             sy_verify = -6.320053679109499e+3 }
    | A -> { cls = A; m = 28;
             sx_verify = -4.295875165629892e+3;
             sy_verify = -1.580732573678431e+4 }
    | B -> { cls = B; m = 30;
             sx_verify = 4.033815542441498e+4;
             sy_verify = -2.660669192809235e+4 }
    | C -> { cls = C; m = 32;
             sx_verify = 4.764367927995374e+4;
             sy_verify = -8.084072988043731e+4 }
end

module Is = struct
  type t = {
    cls : cls;
    total_keys_log2 : int;
    max_key_log2 : int;
    num_buckets_log2 : int;
    max_iterations : int;
  }

  let params = function
    | S -> { cls = S; total_keys_log2 = 16; max_key_log2 = 11;
             num_buckets_log2 = 9; max_iterations = 10 }
    | W -> { cls = W; total_keys_log2 = 20; max_key_log2 = 16;
             num_buckets_log2 = 10; max_iterations = 10 }
    | A -> { cls = A; total_keys_log2 = 23; max_key_log2 = 19;
             num_buckets_log2 = 10; max_iterations = 10 }
    | B -> { cls = B; total_keys_log2 = 25; max_key_log2 = 21;
             num_buckets_log2 = 10; max_iterations = 10 }
    | C -> { cls = C; total_keys_log2 = 27; max_key_log2 = 23;
             num_buckets_log2 = 10; max_iterations = 10 }

  let num_keys p = 1 lsl p.total_keys_log2
  let max_key p = 1 lsl p.max_key_log2
  let num_buckets p = 1 lsl p.num_buckets_log2
end

(* ------------------------------------------------------------------ *)
(** Languages compared by the paper, and the per-kernel serial codegen
    factors calibrated from the single-thread column of Tables I–III
    (see EXPERIMENTS.md).  The factor multiplies a kernel's model cost;
    Zig is the baseline 1.0 per kernel. *)

type lang = Zig | Fortran | C_lang

let lang_to_string = function
  | Zig -> "Zig" | Fortran -> "Fortran" | C_lang -> "C"

(* Table I: 170.17 / 149.40; Table II: 185.26 / 147.66;
   Table III: 9.29 / 11.87 (the C reference is *faster* serially). *)
let cg_factor = function Zig -> 1.0 | Fortran -> 170.17 /. 149.40 | C_lang -> 1.0
let ep_factor = function Zig -> 1.0 | Fortran -> 185.26 /. 147.66 | C_lang -> 1.0
let is_factor = function Zig -> 1.0 | C_lang -> 9.29 /. 11.87 | Fortran -> 1.0

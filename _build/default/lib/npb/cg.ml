(** NPB Conjugate Gradient (CG) kernel.

    Port of NPB 3.x CG: [makea] builds a random sparse symmetric positive
    definite matrix (sum of scaled outer products of sparse random
    vectors, plus [rcond - shift] on the diagonal), and the benchmark
    runs [niter] outer iterations, each performing 25 CG iterations plus
    one extra SpMV, normalising the iterate and updating the shift
    estimate [zeta].  Verification compares [zeta] against the official
    reference value for the class.

    The OpenMP structure follows the paper (section V-A): one parallel
    region per [conj_grad] call, static worksharing loops, [nowait]
    between an SpMV and the dot product that consumes its output on the
    same partition, and reductions combined with atomics.

    The kernel is written against {!Omprt.Omp_intf.S}; on the real engine
    it computes and verifies, on the simulated engine only the control
    flow runs and the [chunk_cost] annotations produce class-C timing. *)

open Omp_model

let rcond = 0.1
let cgitmax = 25

(* ------------------------------------------------------------------ *)
(* Sparse matrix in CSR form.                                          *)

type matrix = {
  n : int;
  nnz : int;
  a : float array;
  colidx : int array;
  rowstr : int array;  (* length n+1 *)
}

(* sprnvc: generate a sparse random vector with [nz] distinct nonzero
   positions in [1..n] (1-based, as in the reference code). *)
let sprnvc rng ~n ~nz ~nn1 (v : float array) (iv : int array) =
  let nzv = ref 0 in
  while !nzv < nz do
    let vecelt = Randlc.draw rng in
    let vecloc = Randlc.draw rng in
    let i = int_of_float (vecloc *. float_of_int nn1) + 1 in
    if i <= n then begin
      let was_gen = ref false in
      for ii = 0 to !nzv - 1 do
        if iv.(ii) = i then was_gen := true
      done;
      if not !was_gen then begin
        v.(!nzv) <- vecelt;
        iv.(!nzv) <- i;
        incr nzv
      end
    end
  done

(* vecset: force element [i] (1-based) to [value], appending if absent. *)
let vecset ~nzv (v : float array) (iv : int array) i value =
  let set = ref false in
  for k = 0 to !nzv - 1 do
    if iv.(k) = i then begin
      v.(k) <- value;
      set := true
    end
  done;
  if not !set then begin
    v.(!nzv) <- value;
    iv.(!nzv) <- i;
    incr nzv
  end

(** Build the CG matrix for class parameters [p], drawing from [rng]
    (which must already have produced the initial [zeta] deviate, as the
    reference main program does). *)
let make_matrix (p : Classes.Cg.t) rng : matrix =
  let n = p.na in
  let nonzer = p.nonzer in
  let nz = Classes.Cg.nz_bound p in
  (* nn1: smallest power of two >= n *)
  let nn1 =
    let v = ref 1 in
    while !v < n do v := 2 * !v done;
    !v
  in
  (* Per-row generated sparse vectors. *)
  let arow = Array.make n 0 in
  let acol = Array.make_matrix n (nonzer + 1) 0 in
  let aelt = Array.make_matrix n (nonzer + 1) 0. in
  let vc = Array.make (nonzer + 1) 0. in
  let ivc = Array.make (nonzer + 1) 0 in
  for iouter = 0 to n - 1 do
    let nzv = ref nonzer in
    sprnvc rng ~n ~nz:nonzer ~nn1 vc ivc;
    vecset ~nzv vc ivc (iouter + 1) 0.5;
    arow.(iouter) <- !nzv;
    for ivelt = 0 to !nzv - 1 do
      acol.(iouter).(ivelt) <- ivc.(ivelt) - 1;  (* to 0-based *)
      aelt.(iouter).(ivelt) <- vc.(ivelt)
    done
  done;
  (* sparse: assemble sum of outer products into CSR with duplicate
     merging, following the reference routine. *)
  let a = Array.make nz 0. in
  let colidx = Array.make nz (-1) in
  let rowstr = Array.make (n + 1) 0 in
  let nzloc = Array.make n 0 in
  (* Count (over-)allocation per row. *)
  for i = 0 to n - 1 do
    for nza = 0 to arow.(i) - 1 do
      let j = acol.(i).(nza) + 1 in
      rowstr.(j) <- rowstr.(j) + arow.(i)
    done
  done;
  rowstr.(0) <- 0;
  for j = 1 to n do
    rowstr.(j) <- rowstr.(j) + rowstr.(j - 1)
  done;
  if rowstr.(n) > nz then
    failwith "Cg.make_matrix: generated more nonzeros than the bound";
  (* Assemble with in-row sorted insertion. *)
  let size = ref 1.0 in
  let ratio = rcond ** (1.0 /. float_of_int n) in
  for i = 0 to n - 1 do
    for nza = 0 to arow.(i) - 1 do
      let j = acol.(i).(nza) in
      let scale = !size *. aelt.(i).(nza) in
      for nzrow = 0 to arow.(i) - 1 do
        let jcol = acol.(i).(nzrow) in
        let va0 = aelt.(i).(nzrow) *. scale in
        let va =
          if jcol = j && j = i then va0 +. rcond -. p.shift else va0
        in
        (* Find the slot for (j, jcol): keep the row sorted by column. *)
        let pos = ref (-1) in
        let k = ref rowstr.(j) in
        while !pos < 0 do
          if !k >= rowstr.(j + 1) then
            failwith "Cg.make_matrix: internal error in sparse assembly"
          else if colidx.(!k) > jcol then begin
            (* shift the tail right to insert in order *)
            let kk = ref (rowstr.(j + 1) - 2) in
            while !kk >= !k do
              if colidx.(!kk) > -1 then begin
                a.(!kk + 1) <- a.(!kk);
                colidx.(!kk + 1) <- colidx.(!kk)
              end;
              decr kk
            done;
            colidx.(!k) <- jcol;
            a.(!k) <- 0.0;
            pos := !k
          end
          else if colidx.(!k) = -1 then begin
            colidx.(!k) <- jcol;
            pos := !k
          end
          else if colidx.(!k) = jcol then begin
            nzloc.(j) <- nzloc.(j) + 1;
            pos := !k
          end
          else incr k
        done;
        a.(!pos) <- a.(!pos) +. va
      done
    done;
    size := !size *. ratio
  done;
  (* Compact out the merged duplicates. *)
  for j = 1 to n - 1 do
    nzloc.(j) <- nzloc.(j) + nzloc.(j - 1)
  done;
  for j = 0 to n - 1 do
    let j1 = if j > 0 then rowstr.(j) - nzloc.(j - 1) else 0 in
    let j2 = rowstr.(j + 1) - nzloc.(j) in
    let nza = ref rowstr.(j) in
    for k = j1 to j2 - 1 do
      a.(k) <- a.(!nza);
      colidx.(k) <- colidx.(!nza);
      incr nza
    done
  done;
  for j = 1 to n do
    rowstr.(j) <- rowstr.(j) - nzloc.(j - 1)
  done;
  { n; nnz = rowstr.(n); a; colidx; rowstr }

(** Multiply [m] by [v] into [out] over rows [\[lo, hi)]. *)
let spmv_rows (m : matrix) (v : float array) (out : float array) lo hi =
  for j = lo to hi - 1 do
    let s = ref 0. in
    for k = m.rowstr.(j) to m.rowstr.(j + 1) - 1 do
      s := !s +. (m.a.(k) *. v.(m.colidx.(k)))
    done;
    out.(j) <- !s
  done

(* ------------------------------------------------------------------ *)
(* Cost model.  Rows are uniform to good approximation: every generated
   sparse vector has nonzer+1 entries, so a row receives ~(nonzer+1)^2
   contributions.  Duplicate merging loses a few percent, which the
   serial calibration constant absorbs.                                *)

type cost_model = {
  row_nz : float;          (* estimated nonzeros per row *)
  byte_factor : float;     (* serial calibration x language factor *)
  mat_ws : float;          (* matrix working set, bytes *)
  n : int;
}

(* Calibration: with the ARCHER2 machine constants, a byte factor of
   [cg_serial_calib] lands the modelled single-thread class-C run on the
   paper's Zig time (Table I); the per-language factors sit on top. *)
let cg_serial_calib = 0.72

let cost_model (p : Classes.Cg.t) (lang : Classes.lang) =
  let row_nz = float_of_int ((p.nonzer + 1) * (p.nonzer + 1)) in
  let nnz_est = float_of_int p.na *. row_nz in
  { row_nz;
    byte_factor = cg_serial_calib *. Classes.cg_factor lang;
    mat_ws = nnz_est *. 12.;  (* 8-byte value + 4-byte column index *)
    n = p.na }

let spmv_cost cm lo hi =
  let nz = float_of_int (hi - lo) *. cm.row_nz in
  Cost.make ~flops:(2. *. nz) ~bytes:(12. *. nz *. cm.byte_factor) ()

let vec_cost cm ~flops ~bytes lo hi =
  let m = float_of_int (hi - lo) in
  Cost.make ~flops:(flops *. m) ~bytes:(bytes *. m *. cm.byte_factor) ()

let vec_ws cm ~bytes = bytes *. float_of_int cm.n

(* ------------------------------------------------------------------ *)
(* The parallel conj_grad.                                             *)

(* One reduction: zero the shared cell (single + implied barrier),
   accumulate partials over a nowait worksharing loop, combine
   atomically, barrier, read back.  In simulation the value is
   meaningless but the synchronisation pattern is identical. *)
let dot_reduce (module O : Omprt.Omp_intf.S) cell ~ws ~chunk_cost n partial =
  O.single (fun () -> Atomic.set cell 0.);
  let local = ref 0. in
  O.ws_for ~nowait:true ~working_set:ws ~chunk_cost ~lo:0 ~hi:n
    (fun lo hi -> local := partial lo hi);
  O.atomic ~cost:(Cost.flops 1.) (fun () ->
      Omprt.Atomics.Float.add cell !local);
  O.barrier ();
  Atomic.get cell

let conj_grad (module O : Omprt.Omp_intf.S) cm (m : matrix)
    (x : float array) (z : float array) (p : float array)
    (q : float array) (r : float array) =
  let n = cm.n in
  let rho_cell = Atomic.make 0. in
  let d_cell = Atomic.make 0. in
  let sum_cell = Atomic.make 0. in
  let rnorm = ref 0. in
  O.parallel (fun () ->
      (* q = z = 0, r = p = x *)
      O.ws_for ~working_set:(vec_ws cm ~bytes:40.)
        ~chunk_cost:(vec_cost cm ~flops:0. ~bytes:40.) ~lo:0 ~hi:n
        (fun lo hi ->
          for j = lo to hi - 1 do
            q.(j) <- 0.; z.(j) <- 0.;
            r.(j) <- x.(j); p.(j) <- x.(j)
          done);
      let rho =
        ref (dot_reduce (module O) rho_cell ~ws:(vec_ws cm ~bytes:8.)
               ~chunk_cost:(vec_cost cm ~flops:2. ~bytes:8.) n
               (fun lo hi ->
                 let s = ref 0. in
                 for j = lo to hi - 1 do s := !s +. (r.(j) *. r.(j)) done;
                 !s))
      in
      for _cgit = 1 to cgitmax do
        (* q = A.p — nowait: the dot below consumes q on the same
           static partition, so no barrier is needed in between. *)
        O.ws_for ~nowait:true ~working_set:cm.mat_ws
          ~chunk_cost:(spmv_cost cm) ~lo:0 ~hi:n
          (fun lo hi -> spmv_rows m p q lo hi);
        let d =
          dot_reduce (module O) d_cell ~ws:(vec_ws cm ~bytes:16.)
            ~chunk_cost:(vec_cost cm ~flops:2. ~bytes:16.) n
            (fun lo hi ->
              let s = ref 0. in
              for j = lo to hi - 1 do s := !s +. (p.(j) *. q.(j)) done;
              !s)
        in
        let alpha = !rho /. d in
        let rho0 = !rho in
        (* z += alpha*p; r -= alpha*q *)
        O.ws_for ~nowait:true ~working_set:(vec_ws cm ~bytes:48.)
          ~chunk_cost:(vec_cost cm ~flops:4. ~bytes:48.) ~lo:0 ~hi:n
          (fun lo hi ->
            for j = lo to hi - 1 do
              z.(j) <- z.(j) +. (alpha *. p.(j));
              r.(j) <- r.(j) -. (alpha *. q.(j))
            done);
        rho :=
          dot_reduce (module O) rho_cell ~ws:(vec_ws cm ~bytes:8.)
            ~chunk_cost:(vec_cost cm ~flops:2. ~bytes:8.) n
            (fun lo hi ->
              let s = ref 0. in
              for j = lo to hi - 1 do s := !s +. (r.(j) *. r.(j)) done;
              !s);
        let beta = !rho /. rho0 in
        (* p = r + beta*p *)
        O.ws_for ~working_set:(vec_ws cm ~bytes:24.)
          ~chunk_cost:(vec_cost cm ~flops:2. ~bytes:24.) ~lo:0 ~hi:n
          (fun lo hi ->
            for j = lo to hi - 1 do
              p.(j) <- r.(j) +. (beta *. p.(j))
            done)
      done;
      (* r = A.z, then rnorm = ||x - r|| *)
      O.ws_for ~nowait:true ~working_set:cm.mat_ws
        ~chunk_cost:(spmv_cost cm) ~lo:0 ~hi:n
        (fun lo hi -> spmv_rows m z r lo hi);
      let s =
        dot_reduce (module O) sum_cell ~ws:(vec_ws cm ~bytes:16.)
          ~chunk_cost:(vec_cost cm ~flops:3. ~bytes:16.) n
          (fun lo hi ->
            let s = ref 0. in
            for j = lo to hi - 1 do
              let d = x.(j) -. r.(j) in
              s := !s +. (d *. d)
            done;
            !s)
      in
      O.master (fun () -> rnorm := sqrt s));
  !rnorm

(* ------------------------------------------------------------------ *)
(* Benchmark driver.                                                   *)

let zeta_epsilon = 1e-10

(** Run the CG benchmark on engine [O].  On the real engine the matrix
    is built and the result verified; on the simulated engine only the
    parallel structure executes, against a 1-element dummy matrix. *)
let run (module O : Omprt.Omp_intf.S) ?(lang = Classes.Zig) ~cls () : Result.t =
  let p = Classes.Cg.params cls in
  let n = p.na in
  let cm = cost_model p lang in
  let rng = Randlc.create 314159265.0 in
  let _zeta0 = Randlc.draw rng in
  let m =
    if O.is_simulated then
      { n; nnz = 0; a = [| 0. |]; colidx = [| 0 |];
        rowstr = Array.make (n + 1) 0 }
    else make_matrix p rng
  in
  let alloc () = Array.make n 0. in
  let x = Array.make n 1.0 in
  let z = alloc () and pv = alloc () and q = alloc () and r = alloc () in
  let norm1_cell = Atomic.make 0. in
  let norm2_cell = Atomic.make 0. in
  let normalise () =
    (* norm_temp1 = x.z, norm_temp2 = z.z, then x = z / ||z|| *)
    let n1 = ref 0. and n2 = ref 0. in
    O.parallel (fun () ->
        let v1 =
          dot_reduce (module O) norm1_cell ~ws:(vec_ws cm ~bytes:16.)
            ~chunk_cost:(vec_cost cm ~flops:2. ~bytes:16.) n
            (fun lo hi ->
              let s = ref 0. in
              for j = lo to hi - 1 do s := !s +. (x.(j) *. z.(j)) done;
              !s)
        in
        let v2 =
          dot_reduce (module O) norm2_cell ~ws:(vec_ws cm ~bytes:8.)
            ~chunk_cost:(vec_cost cm ~flops:2. ~bytes:8.) n
            (fun lo hi ->
              let s = ref 0. in
              for j = lo to hi - 1 do s := !s +. (z.(j) *. z.(j)) done;
              !s)
        in
        let scale = 1.0 /. sqrt v2 in
        O.ws_for ~working_set:(vec_ws cm ~bytes:16.)
          ~chunk_cost:(vec_cost cm ~flops:1. ~bytes:16.) ~lo:0 ~hi:n
          (fun lo hi ->
            for j = lo to hi - 1 do x.(j) <- scale *. z.(j) done);
        O.master (fun () ->
            n1 := v1;
            n2 := v2));
    (!n1, !n2)
  in
  (* Untimed warm-up iteration, as in the reference code. *)
  ignore (conj_grad (module O) cm m x z pv q r);
  ignore (normalise ());
  Array.fill x 0 n 1.0;
  let zeta = ref 0. in
  let t0 = O.wtime () in
  for _it = 1 to p.niter do
    ignore (conj_grad (module O) cm m x z pv q r);
    let n1, _n2 = normalise () in
    zeta := p.shift +. (1.0 /. n1)
  done;
  let time = O.wtime () -. t0 in
  let verification =
    if O.is_simulated then Result.Unverifiable
    else if Float.abs (!zeta -. p.zeta_verify) <= zeta_epsilon then
      Result.Verified
    else
      Result.Failed
        (Printf.sprintf "zeta = %.13f, expected %.13f" !zeta p.zeta_verify)
  in
  let flops_total =
    (* NPB's op count: per outer iteration, 26 SpMVs and ~10n vector ops *)
    float_of_int p.niter
    *. ((26. *. 2. *. float_of_int n *. cm.row_nz)
        +. (10. *. 2. *. float_of_int n))
  in
  { Result.kernel = "CG"; cls; nthreads = 0; time;
    mops = flops_total /. time /. 1e6;
    verification;
    detail = [ ("zeta", !zeta); ("nnz", float_of_int m.nnz) ] }

(* ------------------------------------------------------------------ *)
(* Independent serial reference (no OpenMP), used by tests to cross-
   check the parallel version beyond the official zeta values.          *)

let conj_grad_serial (m : matrix) x z p q r =
  let n = m.n in
  for j = 0 to n - 1 do
    q.(j) <- 0.; z.(j) <- 0.; r.(j) <- x.(j); p.(j) <- x.(j)
  done;
  let rho = ref 0. in
  for j = 0 to n - 1 do rho := !rho +. (r.(j) *. r.(j)) done;
  for _cgit = 1 to cgitmax do
    spmv_rows m p q 0 n;
    let d = ref 0. in
    for j = 0 to n - 1 do d := !d +. (p.(j) *. q.(j)) done;
    let alpha = !rho /. !d in
    let rho0 = !rho in
    for j = 0 to n - 1 do
      z.(j) <- z.(j) +. (alpha *. p.(j));
      r.(j) <- r.(j) -. (alpha *. q.(j))
    done;
    rho := 0.;
    for j = 0 to n - 1 do rho := !rho +. (r.(j) *. r.(j)) done;
    let beta = !rho /. rho0 in
    for j = 0 to n - 1 do p.(j) <- r.(j) +. (beta *. p.(j)) done
  done;
  spmv_rows m z r 0 n;
  let s = ref 0. in
  for j = 0 to n - 1 do
    let d = x.(j) -. r.(j) in
    s := !s +. (d *. d)
  done;
  sqrt !s

let run_serial ~cls () : Result.t =
  let p = Classes.Cg.params cls in
  let n = p.na in
  let rng = Randlc.create 314159265.0 in
  let _zeta0 = Randlc.draw rng in
  let m = make_matrix p rng in
  let x = Array.make n 1.0 in
  let z = Array.make n 0. and pv = Array.make n 0. in
  let q = Array.make n 0. and r = Array.make n 0. in
  let normalise () =
    let n1 = ref 0. and n2 = ref 0. in
    for j = 0 to n - 1 do
      n1 := !n1 +. (x.(j) *. z.(j));
      n2 := !n2 +. (z.(j) *. z.(j))
    done;
    let scale = 1.0 /. sqrt !n2 in
    for j = 0 to n - 1 do x.(j) <- scale *. z.(j) done;
    !n1
  in
  ignore (conj_grad_serial m x z pv q r);
  ignore (normalise ());
  Array.fill x 0 n 1.0;
  let zeta = ref 0. in
  let t0 = Unix.gettimeofday () in
  for _it = 1 to p.niter do
    ignore (conj_grad_serial m x z pv q r);
    let n1 = normalise () in
    zeta := p.shift +. (1.0 /. n1)
  done;
  let time = Unix.gettimeofday () -. t0 in
  let verification =
    if Float.abs (!zeta -. p.zeta_verify) <= zeta_epsilon then Result.Verified
    else
      Result.Failed
        (Printf.sprintf "zeta = %.13f, expected %.13f" !zeta p.zeta_verify)
  in
  { Result.kernel = "CG"; cls; nthreads = 1; time; mops = 0.;
    verification;
    detail = [ ("zeta", !zeta); ("nnz", float_of_int m.nnz) ] }

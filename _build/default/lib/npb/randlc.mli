(** The NPB pseudo-random number generator:
    x_{k+1} = a * x_k (mod 2^46), in exact double-precision arithmetic,
    bit-compatible with the reference [randlc]/[vranlc].  All official
    verification values depend on this sequence. *)

val a_default : float
(** The NPB multiplier, 5^13 = 1220703125. *)

val next : float -> float -> float * float
(** [next seed a] — one LCG step: [(new_seed, u)] with [u] uniform in
    (0, 1). *)

type t = { mutable seed : float; a : float }
(** A mutable stream (the moral equivalent of passing [&seed] in C). *)

val create : ?a:float -> float -> t

val draw : t -> float

val vranlc : t -> int -> float array -> int -> unit
(** [vranlc t n out off] — fill [out.(off .. off+n-1)] with the next
    [n] deviates (NPB's vector form). *)

val power : float -> int -> float
(** [power a n] — a^n (mod 2^46) by exact square-and-multiply (NPB's
    [ipow46]); used to jump the stream ahead [n] steps. *)

lib/npb/classes.ml:

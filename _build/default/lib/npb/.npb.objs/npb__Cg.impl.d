lib/npb/cg.ml: Array Atomic Classes Cost Float Omp_model Omprt Printf Randlc Result Unix

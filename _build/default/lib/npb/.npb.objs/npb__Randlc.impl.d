lib/npb/randlc.ml: Array Float

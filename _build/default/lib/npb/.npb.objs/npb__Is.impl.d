lib/npb/is.ml: Array Classes Cost List Omp_model Omprt Randlc Result Sched Unix

lib/npb/ep.ml: Array Atomic Classes Cost Float Lazy Omp_model Omprt Printf Randlc Result Unix

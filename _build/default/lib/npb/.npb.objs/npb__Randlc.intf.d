lib/npb/randlc.mli:

lib/npb/result.ml: Classes Format

(** NPB Integer Sort (IS) kernel.

    Port of NPB 3.x IS with the bucketised parallel ranking of the
    OpenMP reference version (the variant the paper ports to Zig,
    section V-C): keys are histogrammed into 2^10 buckets, distributed
    into a bucket-grouped copy, and each bucket is ranked independently
    — counting occurrences and prefix-summing within the bucket's key
    subrange.  Ten ranking iterations are timed; [full_verify] then
    rebuilds the sorted sequence from the ranks and checks it.

    The kernel stresses scattered memory traffic, which is why its
    scaling saturates in the paper's Figure 5; the [gather] component of
    the cost descriptors carries that behaviour in simulation. *)

open Omp_model

let max_procs = 128  (* matches the machine model's core count *)

(** Serial NPB key generation: keys.(i) = ⌊(MAX_KEY/4)·(r1+r2+r3+r4)⌋. *)
let create_seq (p : Classes.Is.t) : int array =
  let nkeys = Classes.Is.num_keys p in
  let k4 = Classes.Is.max_key p / 4 in
  let rng = Randlc.create 314159265.0 in
  Array.init nkeys (fun _ ->
      let x =
        Randlc.draw rng +. Randlc.draw rng +. Randlc.draw rng
        +. Randlc.draw rng
      in
      int_of_float (float_of_int k4 *. x))

(* Cost calibration: scattered traffic per key for the distribute and
   per-bucket ranking passes; the serial constant lands the modelled
   single-thread class-C run on the paper's Zig time (Table III). *)
let is_serial_calib = 1.0

type cost_model = {
  factor : float;
  avg_bucket : float;  (* expected keys per bucket *)
}

let count_cost cm lo hi =
  Cost.make ~bytes:(4. *. float_of_int (hi - lo) *. cm.factor) ()

let distribute_cost cm lo hi =
  let nk = float_of_int (hi - lo) in
  Cost.make ~bytes:(8. *. nk *. cm.factor)
    ~gather:(12. *. nk *. cm.factor) ()

let bucket_rank_cost (p : Classes.Is.t) cm lo hi =
  let buckets = float_of_int (hi - lo) in
  let keys = buckets *. cm.avg_bucket in
  let key_range =
    buckets
    *. float_of_int (Classes.Is.max_key p / Classes.Is.num_buckets p)
  in
  Cost.make
    ~bytes:((4. *. keys) +. (16. *. key_range) *. cm.factor)
    ~gather:(8. *. keys *. cm.factor) ()

(* ------------------------------------------------------------------ *)

(** State shared by the ranking iterations. *)
type state = {
  p : Classes.Is.t;
  keys : int array;           (* key_array *)
  key_buff1 : int array;      (* per-value cumulative counts (ranks) *)
  key_buff2 : int array;      (* keys regrouped by bucket *)
  bucket_count : int array array;  (* per thread x per bucket *)
  bucket_ptrs : int array array;   (* per thread x per bucket *)
  bucket_start : int array;        (* global bucket offsets, length nb+1 *)
  cm : cost_model;
}

let make_state (module O : Omprt.Omp_intf.S) ?(lang = Classes.Zig)
    (p : Classes.Is.t) =
  let nkeys = Classes.Is.num_keys p in
  let nb = Classes.Is.num_buckets p in
  let real = not O.is_simulated in
  let keys = if real then create_seq p else [| 0 |] in
  { p;
    keys;
    key_buff1 = (if real then Array.make (Classes.Is.max_key p) 0 else [| 0 |]);
    key_buff2 = (if real then Array.make nkeys 0 else [| 0 |]);
    bucket_count = Array.init max_procs (fun _ -> Array.make nb 0);
    bucket_ptrs = Array.init max_procs (fun _ -> Array.make nb 0);
    bucket_start = Array.make (nb + 1) 0;
    cm = { factor = is_serial_calib *. Classes.is_factor lang;
           avg_bucket = float_of_int nkeys /. float_of_int nb };
  }

(** One ranking iteration, inside an active parallel region. *)
let rank (module O : Omprt.Omp_intf.S) st iteration =
  let p = st.p in
  let nkeys = Classes.Is.num_keys p in
  let nb = Classes.Is.num_buckets p in
  let shift = p.Classes.Is.max_key_log2 - p.Classes.Is.num_buckets_log2 in
  let tid = O.thread_num () in
  let nt = O.num_threads () in
  let bc = st.bucket_count.(tid) in
  let bp = st.bucket_ptrs.(tid) in
  (* Iteration-dependent probe keys, as in the reference.  The implied
     barrier keeps the writes ordered before phase 1's reads. *)
  O.single (fun () ->
      if not O.is_simulated then begin
        st.keys.(iteration) <- iteration;
        st.keys.(iteration + p.Classes.Is.max_iterations)
          <- Classes.Is.max_key p - iteration
      end);
  (* Phase 1: per-thread bucket histogram over a static slice. *)
  Array.fill bc 0 nb 0;
  O.ws_for ~chunk_cost:(count_cost st.cm) ~lo:0 ~hi:nkeys
    (fun lo hi ->
      for i = lo to hi - 1 do
        let b = st.keys.(i) lsr shift in
        bc.(b) <- bc.(b) + 1
      done);
  (* Phase 2: per-thread write cursors.  Thread t's cursor for bucket b
     starts after every earlier bucket entirely and after bucket b's
     share of earlier threads. *)
  O.work
    ~cost:(Cost.flops (2. *. float_of_int (nb * nt)))
    (fun () ->
      let run = ref 0 in
      for b = 0 to nb - 1 do
        let before_me = ref !run in
        for t = 0 to nt - 1 do
          if t < tid then before_me := !before_me + st.bucket_count.(t).(b);
          run := !run + st.bucket_count.(t).(b)
        done;
        bp.(b) <- !before_me
      done);
  O.barrier ();
  (* Phase 3: distribute keys into bucket-grouped order; the loop uses
     the same static partition as phase 1, so each thread's cursors
     cover exactly its own keys. *)
  O.ws_for ~chunk_cost:(distribute_cost st.cm) ~lo:0 ~hi:nkeys
    (fun lo hi ->
      for i = lo to hi - 1 do
        let k = st.keys.(i) in
        let b = k lsr shift in
        st.key_buff2.(bp.(b)) <- k;
        bp.(b) <- bp.(b) + 1
      done);
  (* Global bucket offsets (every thread computes the same array into
     its slice; done by one thread, it is cheap). *)
  O.single (fun () ->
      let run = ref 0 in
      for b = 0 to nb - 1 do
        st.bucket_start.(b) <- !run;
        for t = 0 to nt - 1 do
          run := !run + st.bucket_count.(t).(b)
        done
      done;
      st.bucket_start.(nb) <- !run);
  (* Phase 4: rank each bucket — count occurrences within the bucket's
     key subrange, then prefix-sum so key_buff1.(k) = number of keys
     <= k overall.  Buckets vary in size, hence the dynamic schedule. *)
  O.ws_for ~sched:(Sched.Dynamic 1)
    ~chunk_cost:(bucket_rank_cost p st.cm) ~lo:0 ~hi:nb
    (fun blo bhi ->
      for b = blo to bhi - 1 do
        let kmin = b lsl shift in
        let kmax = (b + 1) lsl shift in
        for k = kmin to kmax - 1 do
          st.key_buff1.(k) <- 0
        done;
        for i = st.bucket_start.(b) to st.bucket_start.(b + 1) - 1 do
          let k = st.key_buff2.(i) in
          st.key_buff1.(k) <- st.key_buff1.(k) + 1
        done;
        let run = ref st.bucket_start.(b) in
        for k = kmin to kmax - 1 do
          run := !run + st.key_buff1.(k);
          st.key_buff1.(k) <- !run
        done
      done);
  ignore iteration

(** Rebuild the sorted sequence from ranks and check it (untimed). *)
let full_verify st : bool =
  let nkeys = Classes.Is.num_keys st.p in
  let sorted = Array.make nkeys 0 in
  let cursors = Array.copy st.key_buff1 in
  (* Fill positions from the back of each value's range. *)
  for i = nkeys - 1 downto 0 do
    let k = st.key_buff2.(i) in
    cursors.(k) <- cursors.(k) - 1;
    sorted.(cursors.(k)) <- k
  done;
  let ok = ref true in
  for i = 1 to nkeys - 1 do
    if sorted.(i - 1) > sorted.(i) then ok := false
  done;
  (* The sorted sequence must also be a permutation: counts per value
     must match a recount of the (mutated) key array. *)
  let recount = Array.make (Classes.Is.max_key st.p) 0 in
  Array.iter (fun k -> recount.(k) <- recount.(k) + 1) st.keys;
  let recheck = Array.make (Classes.Is.max_key st.p) 0 in
  Array.iter (fun k -> recheck.(k) <- recheck.(k) + 1) sorted;
  !ok && recount = recheck

(** Rank of probe key [k] after the final iteration (for tests):
    the number of keys strictly below [k]'s first position. *)
let rank_of st k =
  if k = 0 then 0 else st.key_buff1.(k - 1)

(* ------------------------------------------------------------------ *)

let run (module O : Omprt.Omp_intf.S) ?(lang = Classes.Zig) ~cls () : Result.t =
  let p = Classes.Is.params cls in
  let st = make_state (module O) ~lang p in
  (* Untimed warm-up iteration, as the reference performs. *)
  O.parallel (fun () -> rank (module O) st 1);
  let t0 = O.wtime () in
  O.parallel (fun () ->
      for it = 1 to p.max_iterations do
        rank (module O) st it
      done);
  let time = O.wtime () -. t0 in
  let verification =
    if O.is_simulated then Result.Unverifiable
    else if full_verify st then Result.Verified
    else Result.Failed "full_verify: sequence not sorted or not a permutation"
  in
  let nkeys = float_of_int (Classes.Is.num_keys p) in
  { Result.kernel = "IS"; cls; nthreads = 0; time;
    mops = float_of_int p.max_iterations *. nkeys /. time /. 1e6;
    verification;
    detail = [] }

(** Independent serial reference: direct counting sort, no buckets. *)
let run_serial ~cls () : Result.t =
  let p = Classes.Is.params cls in
  let nkeys = Classes.Is.num_keys p in
  let max_key = Classes.Is.max_key p in
  let keys = create_seq p in
  let counts = Array.make max_key 0 in
  let do_rank it =
    keys.(it) <- it;
    keys.(it + p.max_iterations) <- max_key - it;
    Array.fill counts 0 max_key 0;
    for i = 0 to nkeys - 1 do
      counts.(keys.(i)) <- counts.(keys.(i)) + 1
    done;
    for k = 1 to max_key - 1 do
      counts.(k) <- counts.(k) + counts.(k - 1)
    done
  in
  do_rank 1;  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  for it = 1 to p.max_iterations do
    do_rank it
  done;
  let time = Unix.gettimeofday () -. t0 in
  (* verify: counts must be monotone and end at nkeys *)
  let ok = ref (counts.(max_key - 1) = nkeys) in
  for k = 1 to max_key - 1 do
    if counts.(k) < counts.(k - 1) then ok := false
  done;
  { Result.kernel = "IS"; cls; nthreads = 1; time;
    mops = float_of_int p.max_iterations *. float_of_int nkeys /. time /. 1e6;
    verification = (if !ok then Result.Verified
                    else Result.Failed "serial counting sort inconsistent");
    detail = [] }

(** Serial rank of probe key [k] (for cross-checking the parallel
    version): number of keys strictly below [k] in [counts] form. *)
let serial_ranks ~cls probes =
  let p = Classes.Is.params cls in
  let nkeys = Classes.Is.num_keys p in
  let max_key = Classes.Is.max_key p in
  let keys = create_seq p in
  let counts = Array.make max_key 0 in
  for it = 1 to p.max_iterations do
    keys.(it) <- it;
    keys.(it + p.max_iterations) <- max_key - it
  done;
  for i = 0 to nkeys - 1 do
    counts.(keys.(i)) <- counts.(keys.(i)) + 1
  done;
  for k = 1 to max_key - 1 do
    counts.(k) <- counts.(k) + counts.(k - 1)
  done;
  List.map (fun k -> if k = 0 then 0 else counts.(k - 1)) probes

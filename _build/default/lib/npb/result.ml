(** Outcome of one kernel run. *)

type verification =
  | Verified      (** matched the official NPB reference value *)
  | Failed of string  (** mismatch, with an explanation *)
  | Unverifiable  (** simulated run: values are not computed *)

type t = {
  kernel : string;             (** "CG", "EP", "IS" *)
  cls : Classes.cls;
  nthreads : int;
  time : float;                (** seconds (wall-clock or virtual) *)
  mops : float;                (** Mop/s as NPB reports it *)
  verification : verification;
  detail : (string * float) list;  (** kernel-specific numbers (zeta, sx...) *)
}

let verified t = t.verification = Verified

let pp ppf t =
  Format.fprintf ppf "%s class %s, %d threads: %.4f s, %.2f Mop/s, %s"
    t.kernel
    (Classes.cls_to_string t.cls)
    t.nthreads t.time t.mops
    (match t.verification with
     | Verified -> "VERIFIED"
     | Failed m -> "FAILED: " ^ m
     | Unverifiable -> "modelled (no verification)")

(** The NPB pseudo-random number generator.

    The linear congruential generator x_{k+1} = a * x_k (mod 2^46) from
    the NAS Parallel Benchmarks, implemented in double precision exactly
    as the reference [randlc]/[vranlc] routines do: operands are split
    into 23-bit halves so every intermediate product is exact in a
    64-bit float.  All three kernels (CG, EP, IS) consume this stream,
    and the official verification values only come out right if the
    sequence is bit-identical — which makes the kernels' verification
    tests a strong check on this module. *)

let r23 = 0.5 ** 23.
let t23 = 2.0 ** 23.
let r46 = r23 *. r23
let t46 = t23 *. t23

(** The multiplier used throughout NPB: 5^13. *)
let a_default = 1220703125.0

(** [next seed a] — one LCG step.  Returns [(new_seed, u)] where [u] is
    the uniform deviate in (0, 1). *)
let next (x : float) (a : float) : float * float =
  (* Break a = 2^23 * a1 + a2. *)
  let t1 = r23 *. a in
  let a1 = Float.of_int (int_of_float t1) in
  let a2 = a -. (t23 *. a1) in
  (* Break x = 2^23 * x1 + x2; compute z = lower 46 bits of a*x. *)
  let t1 = r23 *. x in
  let x1 = Float.of_int (int_of_float t1) in
  let x2 = x -. (t23 *. x1) in
  let t1 = (a1 *. x2) +. (a2 *. x1) in
  let t2 = Float.of_int (int_of_float (r23 *. t1)) in
  let z = t1 -. (t23 *. t2) in
  let t3 = (t23 *. z) +. (a2 *. x2) in
  let t4 = Float.of_int (int_of_float (r46 *. t3)) in
  let x' = t3 -. (t46 *. t4) in
  (x', r46 *. x')

(** A mutable stream, the moral equivalent of passing [&seed] in C. *)
type t = { mutable seed : float; a : float }

let create ?(a = a_default) seed = { seed; a }

let draw t =
  let seed', u = next t.seed t.a in
  t.seed <- seed';
  u

(** [vranlc t n out off] — NPB's [vranlc]: fill [out.(off .. off+n-1)]
    with the next [n] deviates. *)
let vranlc t n (out : float array) off =
  for i = off to off + n - 1 do
    out.(i) <- draw t
  done

(** [skip_pow2 seed a logn] is not provided: NPB jumps the stream with
    repeated squaring inside EP itself (see {!Ep}), keeping the exact
    reference structure. *)

(** [power a n] — a^n (mod 2^46) by binary exponentiation using the same
    exact float arithmetic; used to jump the generator ahead [n] steps.
    This mirrors NPB's [ipow46]. *)
let power (a : float) (n : int) : float =
  if n = 0 then 1.0
  else begin
    (* One LCG step with seed x and multiplier m is x*m mod 2^46. *)
    let mult x m = fst (next x m) in
    let result = ref 1.0 in
    let q = ref a in
    let n = ref n in
    (* NPB ipow46: square-and-multiply over the exponent's bits. *)
    while !n > 0 do
      if !n land 1 = 1 then result := mult !result !q;
      q := mult !q !q;
      n := !n lsr 1
    done;
    !result
  end

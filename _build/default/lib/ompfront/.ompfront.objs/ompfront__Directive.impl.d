lib/ompfront/directive.ml: Array List Omp_model Packed

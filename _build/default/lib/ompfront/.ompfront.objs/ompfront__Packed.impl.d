lib/ompfront/packed.ml: Omp_model

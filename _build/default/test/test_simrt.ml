(* Simulated-runtime tests: the OMP signature on the discrete-event
   engine — work conservation, scaling direction, schedule behaviour,
   and structural agreement with the real engine. *)

open Omp_model

let machine = Sim.Machine.archer2

let run ?(nt = 4) f = Simrt.run ~machine ~num_threads:nt f

let test_parallel_team () =
  let seen = ref [] in
  let _ = run ~nt:5 (fun (module O : Omprt.Omp_intf.S) ->
      O.parallel (fun () -> seen := O.thread_num () :: !seen))
  in
  Alcotest.(check (list int)) "five virtual threads ran"
    [ 0; 1; 2; 3; 4 ]
    (List.sort compare !seen)

let test_work_conservation () =
  (* iterations covered by claimed chunks = trip count, any schedule *)
  List.iter
    (fun sched ->
      let r = run ~nt:7 (fun (module O : Omprt.Omp_intf.S) ->
          O.parallel (fun () ->
              O.ws_for ~sched ~lo:0 ~hi:1000 (fun _ _ -> ())))
      in
      Alcotest.(check int)
        ("all iterations claimed: " ^ Sched.to_string sched)
        1000 r.Simrt.run_stats.iterations)
    [ Sched.Static None; Sched.Static (Some 13); Sched.Dynamic 7;
      Sched.Guided 3 ]

let test_compute_scales_linearly () =
  let time nt =
    let r = run ~nt (fun (module O : Omprt.Omp_intf.S) ->
        O.parallel (fun () ->
            O.ws_for
              ~chunk_cost:(fun lo hi -> Cost.flops (float_of_int (hi - lo) *. 1e4))
              ~lo:0 ~hi:100_000 (fun _ _ -> ())))
    in
    r.Simrt.makespan
  in
  let t1 = time 1 and t16 = time 16 in
  let speedup = t1 /. t16 in
  Alcotest.(check bool) "compute-bound speedup ~16" true
    (speedup > 15. && speedup <= 16.1)

let test_memory_saturates () =
  (* scattered traffic hits the node-level random-access limit well
     before 128 threads: no further gain *)
  let time nt =
    let r = run ~nt (fun (module O : Omprt.Omp_intf.S) ->
        O.parallel (fun () ->
            O.ws_for
              ~chunk_cost:(fun lo hi -> Cost.gather (float_of_int (hi - lo) *. 1e5))
              ~lo:0 ~hi:10_000 (fun _ _ -> ())))
    in
    r.Simrt.makespan
  in
  let t64 = time 64 and t128 = time 128 in
  Alcotest.(check bool) "bandwidth-bound: no gain past saturation" true
    (t64 /. t128 < 1.15);
  (* streamed traffic keeps scaling with the CCX count on this machine *)
  let stream nt =
    let r = run ~nt (fun (module O : Omprt.Omp_intf.S) ->
        O.parallel (fun () ->
            O.ws_for
              ~chunk_cost:(fun lo hi -> Cost.bytes (float_of_int (hi - lo) *. 1e5))
              ~lo:0 ~hi:10_000 (fun _ _ -> ())))
    in
    r.Simrt.makespan
  in
  Alcotest.(check bool) "streamed traffic still scales 64->128" true
    (stream 64 /. stream 128 > 1.8)

let test_imbalance_dynamic_beats_static () =
  (* one thread's static block holds all the heavy iterations; dynamic
     spreads them *)
  let heavy_cost lo hi =
    let f = ref 0. in
    for i = lo to hi - 1 do
      f := !f +. (if i < 32 then 1e7 else 1e3)
    done;
    Cost.flops !f
  in
  let time sched =
    let r = run ~nt:8 (fun (module O : Omprt.Omp_intf.S) ->
        O.parallel (fun () ->
            O.ws_for ~sched ~chunk_cost:heavy_cost ~lo:0 ~hi:256
              (fun _ _ -> ())))
    in
    r.Simrt.makespan
  in
  let ts = time (Sched.Static None) in
  let td = time (Sched.Dynamic 4) in
  Alcotest.(check bool) "dynamic wins under imbalance" true (td < ts)

let test_dynamic_overhead_on_uniform_work () =
  (* with perfectly uniform tiny iterations, static beats dynamic
     because of the per-claim dispatch cost *)
  let unit_cost lo hi = Cost.flops (float_of_int (hi - lo) *. 10.) in
  let time sched =
    let r = run ~nt:8 (fun (module O : Omprt.Omp_intf.S) ->
        O.parallel (fun () ->
            O.ws_for ~sched ~chunk_cost:unit_cost ~lo:0 ~hi:100_000
              (fun _ _ -> ())))
    in
    r.Simrt.makespan
  in
  Alcotest.(check bool) "static wins on uniform work" true
    (time (Sched.Static None) < time (Sched.Dynamic 1))

let test_barrier_counts () =
  let r = run ~nt:3 (fun (module O : Omprt.Omp_intf.S) ->
      O.parallel (fun () ->
          O.ws_for ~lo:0 ~hi:10 (fun _ _ -> ());   (* implied barrier *)
          O.barrier ()))
  in
  (* 3 threads x (ws_for barrier + explicit barrier + region barrier) *)
  Alcotest.(check int) "barrier entries" 9 r.Simrt.run_stats.barriers

let test_single_once_per_team () =
  let hits = ref 0 in
  let _ = run ~nt:6 (fun (module O : Omprt.Omp_intf.S) ->
      O.parallel (fun () ->
          O.single (fun () -> incr hits);
          O.single (fun () -> incr hits)))
  in
  Alcotest.(check int) "two singles, one executor each" 2 !hits

let test_critical_serialises_time () =
  (* N threads through a 1ms critical: makespan >= N * 1ms *)
  let r = run ~nt:8 (fun (module O : Omprt.Omp_intf.S) ->
      O.parallel (fun () ->
          O.critical ~cost:(Cost.flops (1e-3 *. machine.flops_per_core))
            (fun () -> ())))
  in
  Alcotest.(check bool) "serialised" true (r.Simrt.makespan >= 8e-3)

let test_wtime_advances () =
  let t_in = ref 0. in
  let r = run ~nt:1 (fun (module O : Omprt.Omp_intf.S) ->
      let t0 = O.wtime () in
      O.work ~cost:(Cost.flops 1e9) (fun () -> ());
      t_in := O.wtime () -. t0)
  in
  Alcotest.(check bool) "virtual time advanced" true (!t_in > 0.);
  Alcotest.(check (float 1e-9)) "makespan agrees" r.Simrt.makespan !t_in

let test_sim_skips_closures () =
  let executed = ref false in
  let _ = run (fun (module O : Omprt.Omp_intf.S) ->
      Alcotest.(check bool) "is_simulated" true O.is_simulated;
      O.work ~cost:(Cost.flops 1.) (fun () -> executed := true);
      O.parallel (fun () ->
          O.ws_for ~lo:0 ~hi:10 (fun _ _ -> executed := true);
          O.atomic (fun () -> executed := true);
          O.critical (fun () -> executed := true)))
  in
  Alcotest.(check bool) "work/loop/atomic closures not executed" false
    !executed

let test_sim_determinism () =
  let once () =
    let r = run ~nt:16 (fun (module O : Omprt.Omp_intf.S) ->
        O.parallel (fun () ->
            O.ws_for ~sched:(Sched.Dynamic 3)
              ~chunk_cost:(fun lo hi -> Cost.flops (float_of_int ((lo * 7) + hi)))
              ~lo:0 ~hi:500 (fun _ _ -> ())))
    in
    (r.Simrt.makespan, r.Simrt.run_stats.dynamic_claims)
  in
  Alcotest.(check (pair (float 0.) int)) "bit-identical reruns" (once ())
    (once ())

let test_structure_matches_real_engine () =
  (* the same generic kernel must produce the same reduction value on
     the real engine and the same *chunk structure* on both: compare
     claimed-iteration counts *)
  let kernel (module O : Omprt.Omp_intf.S) =
    let total = Atomic.make 0 in
    O.parallel (fun () ->
        O.ws_for ~sched:(Sched.Static (Some 5)) ~lo:0 ~hi:123
          (fun lo hi -> ignore (Atomic.fetch_and_add total (hi - lo))));
    Atomic.get total
  in
  Omprt.Api.set_num_threads 4;
  let real_total = kernel (module Omprt.Omp) in
  let r = run ~nt:4 (fun o -> ignore (kernel o)) in
  Alcotest.(check int) "real engine covers all iterations" 123 real_total;
  Alcotest.(check int) "simulated engine claims all iterations" 123
    r.Simrt.run_stats.iterations

let test_trace_records_intervals () =
  let r =
    Simrt.run ~machine ~num_threads:3 ~trace:true
      (fun (module O : Omprt.Omp_intf.S) ->
        O.parallel (fun () ->
            O.ws_for
              ~chunk_cost:(fun lo hi -> Cost.flops (float_of_int (hi - lo) *. 1e6))
              ~lo:0 ~hi:300 (fun _ _ -> ())))
  in
  match r.Simrt.trace with
  | None -> Alcotest.fail "trace requested but absent"
  | Some tr ->
      let items = Sim.Trace.intervals tr in
      Alcotest.(check bool) "has work intervals" true
        (List.exists (fun i -> i.Sim.Trace.label = '#') items);
      Alcotest.(check bool) "has barrier intervals" true
        (List.exists (fun i -> i.Sim.Trace.label = '=') items);
      (* intervals lie within the makespan and are well-formed *)
      List.iter
        (fun i ->
          Alcotest.(check bool) "well-formed" true
            (i.Sim.Trace.start <= i.Sim.Trace.stop
             && i.Sim.Trace.stop <= r.Simrt.makespan +. 1e-9))
        items;
      let g = Sim.Trace.gantt tr ~makespan:r.Simrt.makespan in
      Alcotest.(check bool) "gantt renders rows" true
        (String.length g > 0 && String.contains g '#')

let test_trace_off_by_default () =
  let r = run ~nt:2 (fun (module O : Omprt.Omp_intf.S) ->
      O.parallel (fun () -> O.barrier ()))
  in
  Alcotest.(check bool) "no trace unless requested" true
    (r.Simrt.trace = None)

let suite =
  [ Alcotest.test_case "parallel team of vthreads" `Quick test_parallel_team;
    Alcotest.test_case "trace records intervals" `Quick
      test_trace_records_intervals;
    Alcotest.test_case "trace off by default" `Quick test_trace_off_by_default;
    Alcotest.test_case "work conservation" `Quick test_work_conservation;
    Alcotest.test_case "compute scales linearly" `Quick
      test_compute_scales_linearly;
    Alcotest.test_case "memory saturates" `Quick test_memory_saturates;
    Alcotest.test_case "dynamic beats static under imbalance" `Quick
      test_imbalance_dynamic_beats_static;
    Alcotest.test_case "dispatch overhead on uniform work" `Quick
      test_dynamic_overhead_on_uniform_work;
    Alcotest.test_case "barrier accounting" `Quick test_barrier_counts;
    Alcotest.test_case "single per team" `Quick test_single_once_per_team;
    Alcotest.test_case "critical serialises virtual time" `Quick
      test_critical_serialises_time;
    Alcotest.test_case "wtime is virtual time" `Quick test_wtime_advances;
    Alcotest.test_case "closures skipped in simulation" `Quick
      test_sim_skips_closures;
    Alcotest.test_case "simulation is deterministic" `Quick
      test_sim_determinism;
    Alcotest.test_case "structure matches real engine" `Quick
      test_structure_matches_real_engine;
  ]

test/test_ws.ml: Alcotest Fun List Omprt QCheck2 QCheck_alcotest Ws

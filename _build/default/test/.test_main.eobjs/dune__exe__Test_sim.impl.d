test/test_sim.ml: Alcotest List Omp_model QCheck2 QCheck_alcotest Sim

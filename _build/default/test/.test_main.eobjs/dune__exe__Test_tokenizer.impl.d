test/test_tokenizer.ml: Alcotest Array List Source Token Tokenizer Zr

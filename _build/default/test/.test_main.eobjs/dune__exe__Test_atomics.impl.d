test/test_atomics.ml: Alcotest Atomic Atomics List Omp Omprt QCheck2 QCheck_alcotest Reduction

test/test_pool.ml: Alcotest Api Array Astring_contains Atomic Atomics Fun Icv List Omp Omprt Option Pool Profile Sys Team Unix

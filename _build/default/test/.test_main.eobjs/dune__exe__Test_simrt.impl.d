test/test_simrt.ml: Alcotest Atomic Cost List Omp_model Omprt Sched Sim Simrt String

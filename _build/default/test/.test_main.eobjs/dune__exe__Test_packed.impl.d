test/test_packed.ml: Alcotest List Omp_model Ompfront Packed QCheck2 QCheck_alcotest

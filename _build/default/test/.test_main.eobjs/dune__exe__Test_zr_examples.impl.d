test/test_zr_examples.ml: Alcotest Array Astring_contains Filename Float Fun Interp List Omprt Preproc Printf String

test/test_preproc.ml: Alcotest Preproc Printf String Zr

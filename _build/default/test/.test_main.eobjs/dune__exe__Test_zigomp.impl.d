test/test_zigomp.ml: Alcotest Astring_contains Zigomp

test/test_loops_edge.ml: Alcotest Array Atomic Fun Interp List Omp_model Omprt Printf

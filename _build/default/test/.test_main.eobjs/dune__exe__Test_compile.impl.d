test/test_compile.ml: Alcotest Array Interp List Omprt Printexc Printf QCheck2 QCheck_alcotest String

test/test_parser.ml: Alcotest Array Ast List Omp_model Ompfront Parser Source String Token Zr

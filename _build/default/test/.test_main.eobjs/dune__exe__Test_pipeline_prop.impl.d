test/test_pipeline_prop.ml: Array Interp List Omprt Preproc Printf QCheck2 QCheck_alcotest String

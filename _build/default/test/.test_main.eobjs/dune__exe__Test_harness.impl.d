test/test_harness.ml: Alcotest Float Harness List Npb Printf String

test/test_npb.ml: Alcotest Array Float Format List Npb Omprt Printf

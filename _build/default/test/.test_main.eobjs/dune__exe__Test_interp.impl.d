test/test_interp.ml: Alcotest Array Fun Interp List Omprt Printf Zr

test/test_runtime.ml: Alcotest Api Array Atomic Atomics Fun List Lock Omp Omp_model Omprt Profile String Team

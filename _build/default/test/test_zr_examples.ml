(* The standalone .zr example programs under examples/zr, compiled and
   executed through the full pipeline on 4 real threads, with their
   documented results checked — plus cross-checks against 1-thread
   runs.  The files are build dependencies of the test (see
   test/dune). *)

module V = Interp.Value

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let examples_dir =
  (* the test binary runs in _build/default/test *)
  Filename.concat (Filename.concat ".." "examples") "zr"

let load_example name =
  Interp.load ~name (read_file (Filename.concat examples_dir name))

let run_main ?(threads = 4) name =
  Omprt.Api.set_num_threads threads;
  let p = load_example name in
  match Interp.run_main p with
  | V.VFloat f -> f
  | v -> Alcotest.failf "%s: expected a float result, got %s" name
           (V.to_string v)

let test_mandelbrot () =
  let inside4 = run_main "mandelbrot.zr" in
  Alcotest.(check bool) "a plausible interior pixel count" true
    (inside4 > 1000. && inside4 < 16384.);
  (* deterministic across team sizes *)
  Alcotest.(check (float 0.)) "1-thread run agrees"
    (run_main ~threads:1 "mandelbrot.zr")
    inside4

let test_histogram () =
  (* quadratic residues of i^2+7i mod 16 over 100000 values: compute the
     reference in OCaml *)
  let bins = Array.make 16 0. in
  for i = 0 to 99_999 do
    let b = ((i * i) + (7 * i)) mod 16 in
    bins.(b) <- bins.(b) +. 1.
  done;
  let expected = Array.fold_left Float.max 0. bins in
  Alcotest.(check (float 0.)) "max bin matches the reference" expected
    (run_main "histogram.zr")

let test_jacobi () =
  let resid = run_main "jacobi.zr" in
  Alcotest.(check bool)
    (Printf.sprintf "converged (resid = %g)" resid)
    true (resid < 1e-4);
  Alcotest.(check (float 1e-12)) "deterministic across team sizes"
    (run_main ~threads:2 "jacobi.zr")
    resid

let test_examples_preprocess_cleanly () =
  List.iter
    (fun name ->
      let out =
        Preproc.Preprocess.run ~name
          (read_file (Filename.concat examples_dir name))
      in
      (* top-level threadprivate intentionally survives preprocessing —
         the loader consumes it; every executable construct must be
         lowered *)
      let residual_pragmas =
        String.split_on_char '\n' out
        |> List.filter (fun l -> Astring_contains.contains l "//$omp")
        |> List.filter (fun l ->
               not (Astring_contains.contains l "threadprivate"))
      in
      Alcotest.(check (list string))
        (name ^ ": no executable pragma survives") [] residual_pragmas)
    [ "mandelbrot.zr"; "histogram.zr"; "jacobi.zr" ]

let suite =
  [ Alcotest.test_case "mandelbrot.zr" `Slow test_mandelbrot;
    Alcotest.test_case "histogram.zr" `Quick test_histogram;
    Alcotest.test_case "jacobi.zr" `Quick test_jacobi;
    Alcotest.test_case "examples preprocess cleanly" `Quick
      test_examples_preprocess_cleanly;
  ]

(* Edge cases of the worksharing lowering, end-to-end through the
   preprocessor and interpreter, plus direct tests of the kmpc
   protocol's static/dispatch entry points under unusual bounds:
   negative steps, non-unit strides, inclusive comparisons, empty and
   single-iteration spaces. *)

module V = Interp.Value

let () = Omprt.Api.set_num_threads 4

let vfloat = function
  | V.VFloat f -> f
  | v -> Alcotest.failf "expected float, got %s" (V.to_string v)

(* run one worksharing loop over a per-index hit array; check exactly-
   once coverage of precisely the expected index set *)
let run_loop ~header ~size expected_hits =
  let src = Printf.sprintf {|
fn go(n: i64, hits: []f64) f64 {
    //$omp parallel shared(hits) firstprivate(n)
    {
        %s
    }
    return 0.0;
}
|} header
  in
  let p = Interp.load ~name:"edge.zr" src in
  let hits = Array.make size 0. in
  ignore (Interp.call p "go" [ V.VInt size; V.VFloatArr hits ]);
  let expected = Array.make size 0. in
  List.iter (fun i -> expected.(i) <- expected.(i) +. 1.) expected_hits;
  Alcotest.(check (array (float 0.))) "exact coverage" expected hits

let test_negative_step () =
  run_loop ~size:10
    ~header:{|
        var i: i64 = 0;
        i = n - 1;
        //$omp for
        while (i > 0) : (i -= 1) {
            hits[i] = hits[i] + 1.0;
        }|}
    (List.init 9 (fun k -> k + 1))  (* 9 down to 1 *)

let test_negative_step_inclusive () =
  run_loop ~size:10
    ~header:{|
        var i: i64 = 0;
        i = n - 1;
        //$omp for schedule(dynamic, 3)
        while (i >= 0) : (i -= 1) {
            hits[i] = hits[i] + 1.0;
        }|}
    (List.init 10 Fun.id)

let test_stride_3 () =
  run_loop ~size:20
    ~header:{|
        var i: i64 = 0;
        //$omp for
        while (i < n) : (i += 3) {
            hits[i] = hits[i] + 1.0;
        }|}
    [ 0; 3; 6; 9; 12; 15; 18 ]

let test_stride_inclusive_upper () =
  run_loop ~size:16
    ~header:{|
        var i: i64 = 0;
        //$omp for schedule(static, 2)
        while (i <= 15) : (i += 5) {
            hits[i] = hits[i] + 1.0;
        }|}
    [ 0; 5; 10; 15 ]

let test_empty_space () =
  run_loop ~size:5
    ~header:{|
        var i: i64 = 0;
        i = 7;
        //$omp for
        while (i < 3) : (i += 1) {
            hits[0] = hits[0] + 1.0;
        }|}
    []

let test_single_iteration () =
  run_loop ~size:5
    ~header:{|
        var i: i64 = 2;
        //$omp for schedule(guided, 4)
        while (i < 3) : (i += 1) {
            hits[i] = hits[i] + 1.0;
        }|}
    [ 2 ]

let test_chunk_larger_than_space () =
  run_loop ~size:6
    ~header:{|
        var i: i64 = 0;
        //$omp for schedule(dynamic, 100)
        while (i < n) : (i += 1) {
            hits[i] = hits[i] + 1.0;
        }|}
    (List.init 6 Fun.id)

let test_num_threads_one () =
  let p = Interp.load ~name:"one.zr" {|
fn f(n: i64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: s) num_threads(1)
    while (i < n) : (i += 1) { s += 1.0; }
    return s;
}
|} in
  Alcotest.(check (float 0.)) "degenerate team of one" 50.
    (vfloat (Interp.call p "f" [ V.VInt 50 ]))

(* ---- direct kmpc protocol checks ---- *)

let test_kmpc_static_for_strided () =
  (* negative stride through the real static_for wrapper *)
  let visited = Atomic.make [] in
  Omprt.Omp.parallel ~num_threads:3 (fun () ->
      Omprt.Kmpc.static_for ~lo:20 ~hi:0 ~step:(-4) (fun i ->
          Omprt.Atomics.cas_loop visited (fun l -> i :: l)));
  Alcotest.(check (list int)) "strided descending coverage"
    [ 4; 8; 12; 16; 20 ]
    (List.sort compare (Atomic.get visited))

let test_kmpc_static_for_chunked () =
  let visited = Atomic.make [] in
  Omprt.Omp.parallel ~num_threads:3 (fun () ->
      Omprt.Kmpc.static_for ~chunk:2 ~lo:0 ~hi:11 ~step:1 (fun i ->
          Omprt.Atomics.cas_loop visited (fun l -> i :: l)));
  Alcotest.(check (list int)) "chunked static coverage"
    (List.init 11 Fun.id)
    (List.sort compare (Atomic.get visited))

let test_kmpc_dispatch_for_negative () =
  let visited = Atomic.make [] in
  Omprt.Omp.parallel ~num_threads:4 (fun () ->
      Omprt.Kmpc.dispatch_for ~sched:(Omp_model.Sched.Guided 2) ~lo:9
        ~hi:(-1) ~step:(-1) (fun i ->
          Omprt.Atomics.cas_loop visited (fun l -> i :: l)));
  Alcotest.(check (list int)) "guided descending coverage"
    (List.init 10 Fun.id)
    (List.sort compare (Atomic.get visited))

let test_static_init_bounds_values () =
  (* inside a team of 1 the block is the whole space, inclusive upper *)
  Omprt.Omp.parallel ~num_threads:1 (fun () ->
      match Omprt.Kmpc.for_static_init ~lo:3 ~hi:12 ~step:2 () with
      | Some { lower; upper; _ } ->
          Alcotest.(check int) "lower" 3 lower;
          Alcotest.(check int) "upper (inclusive, on-grid)" 11 upper
      | None -> Alcotest.fail "expected a block")

let suite =
  [ Alcotest.test_case "negative step" `Quick test_negative_step;
    Alcotest.test_case "negative step, inclusive" `Quick
      test_negative_step_inclusive;
    Alcotest.test_case "stride 3" `Quick test_stride_3;
    Alcotest.test_case "stride with inclusive upper" `Quick
      test_stride_inclusive_upper;
    Alcotest.test_case "empty iteration space" `Quick test_empty_space;
    Alcotest.test_case "single iteration" `Quick test_single_iteration;
    Alcotest.test_case "chunk larger than space" `Quick
      test_chunk_larger_than_space;
    Alcotest.test_case "num_threads(1)" `Quick test_num_threads_one;
    Alcotest.test_case "kmpc static_for strided" `Quick
      test_kmpc_static_for_strided;
    Alcotest.test_case "kmpc static_for chunked" `Quick
      test_kmpc_static_for_chunked;
    Alcotest.test_case "kmpc dispatch_for negative" `Quick
      test_kmpc_dispatch_for_negative;
    Alcotest.test_case "static_init bound values" `Quick
      test_static_init_bounds_values;
  ]

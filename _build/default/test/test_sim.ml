(* Simulator substrate tests: the priority heap, the discrete-event
   scheduler (clocks, barriers, mutexes, determinism), and the roofline
   performance model. *)

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  List.iter (fun k -> Sim.Heap.push h k (int_of_float k))
    [ 5.; 1.; 4.; 1.5; 0.5; 9.; 2. ];
  let rec drain acc =
    match Sim.Heap.pop h with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list (float 0.))) "keys come out sorted"
    [ 0.5; 1.; 1.5; 2.; 4.; 5.; 9. ]
    (drain [])

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.push h 1.0 v) [ 1; 2; 3; 4 ];
  let rec drain acc =
    match Sim.Heap.pop h with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "equal keys pop in insertion order"
    [ 1; 2; 3; 4 ] (drain [])

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains any sequence sorted" ~count:200
    QCheck2.Gen.(list_size (int_range 0 64) (float_range 0. 1000.))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iter (fun k -> Sim.Heap.push h k ()) keys;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* ---- DES ---- *)

let test_des_advance_and_makespan () =
  let des = Sim.Des.create () in
  Sim.Des.spawn des (fun () -> Sim.Des.advance des 3.0);
  Sim.Des.spawn des (fun () -> Sim.Des.advance des 5.0);
  Alcotest.(check (float 1e-12)) "makespan = slowest thread" 5.0
    (Sim.Des.run des)

let test_des_min_clock_first () =
  (* the thread with the smaller clock always acts first *)
  let des = Sim.Des.create () in
  let log = ref [] in
  Sim.Des.spawn des (fun () ->
      Sim.Des.advance des 1.0;
      log := `A :: !log;
      Sim.Des.advance des 10.0;
      log := `A2 :: !log);
  Sim.Des.spawn des (fun () ->
      Sim.Des.advance des 2.0;
      log := `B :: !log;
      Sim.Des.advance des 2.0;
      log := `B2 :: !log);
  ignore (Sim.Des.run des);
  Alcotest.(check bool) "time-ordered interleaving" true
    (List.rev !log = [ `A; `B; `B2; `A2 ])

let test_des_barrier_rendezvous () =
  let des = Sim.Des.create () in
  let b = Sim.Des.Sbarrier.create des 3 in
  let after = ref [] in
  List.iter
    (fun dt ->
      Sim.Des.spawn des (fun () ->
          Sim.Des.advance des dt;
          Sim.Des.Sbarrier.wait b ~cost:0.5;
          after := Sim.Des.now des :: !after))
    [ 1.0; 4.0; 2.5 ];
  ignore (Sim.Des.run des);
  (* everyone resumes at max arrival (4.0) + barrier cost (0.5) *)
  List.iter
    (fun t -> Alcotest.(check (float 1e-12)) "release time" 4.5 t)
    !after

let test_des_barrier_reusable () =
  let des = Sim.Des.create () in
  let b = Sim.Des.Sbarrier.create des 2 in
  let finish = ref [] in
  List.iter
    (fun dt ->
      Sim.Des.spawn des (fun () ->
          for _ = 1 to 3 do
            Sim.Des.advance des dt;
            Sim.Des.Sbarrier.wait b ~cost:0.
          done;
          finish := Sim.Des.now des :: !finish))
    [ 1.0; 2.0 ];
  ignore (Sim.Des.run des);
  List.iter
    (fun t ->
      Alcotest.(check (float 1e-12)) "3 rounds, slowest dominates" 6.0 t)
    !finish

let test_des_mutex_serialises () =
  let des = Sim.Des.create () in
  let m = Sim.Des.Smutex.create des in
  let sections = ref [] in
  for _t = 0 to 2 do
    Sim.Des.spawn des (fun () ->
        Sim.Des.Smutex.lock m;
        let t0 = Sim.Des.now des in
        Sim.Des.advance des 1.0;
        sections := (t0, Sim.Des.now des) :: !sections;
        Sim.Des.Smutex.unlock m)
  done;
  ignore (Sim.Des.run des);
  let spans = List.sort compare !sections in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "critical sections back to back, never overlapping"
    [ (0., 1.); (1., 2.); (2., 3.) ]
    spans

let test_des_deadlock_detected () =
  let des = Sim.Des.create () in
  let b = Sim.Des.Sbarrier.create des 2 in
  Sim.Des.spawn des (fun () -> Sim.Des.Sbarrier.wait b ~cost:0.);
  Alcotest.(check bool) "lone thread at a 2-barrier deadlocks" true
    (try ignore (Sim.Des.run des); false
     with Sim.Des.Deadlock _ -> true)

let test_des_deterministic () =
  let run_once () =
    let des = Sim.Des.create () in
    let trace = ref [] in
    for t = 0 to 4 do
      Sim.Des.spawn des (fun () ->
          for i = 1 to 5 do
            Sim.Des.advance des (float_of_int ((t + i) mod 3) +. 0.1);
            trace := (t, i, Sim.Des.now des) :: !trace
          done)
    done;
    let m = Sim.Des.run des in
    (m, !trace)
  in
  let m1, t1 = run_once () in
  let m2, t2 = run_once () in
  Alcotest.(check (float 0.)) "same makespan" m1 m2;
  Alcotest.(check bool) "identical event traces" true (t1 = t2)

(* ---- perfmodel ---- *)

let m = Sim.Machine.archer2

let test_roofline_compute_bound () =
  let c = Omp_model.Cost.flops 1e9 in
  let t = Sim.Perfmodel.time m ~active:1 c in
  Alcotest.(check (float 1e-9)) "flops / rate" (1e9 /. m.flops_per_core) t;
  (* compute time is independent of active thread count *)
  Alcotest.(check (float 1e-12)) "no bandwidth interaction" t
    (Sim.Perfmodel.time m ~active:128 c)

let test_roofline_memory_scaling () =
  let c = Omp_model.Cost.bytes 1e9 in
  let t1 = Sim.Perfmodel.time m ~active:1 c in
  let t4 = Sim.Perfmodel.time m ~active:4 c in
  let t128 = Sim.Perfmodel.time m ~active:128 c in
  Alcotest.(check bool) "per-thread bandwidth shrinks with occupancy" true
    (t4 > t1 && t128 >= t4);
  (* at full occupancy the per-thread share is node_bw / 128 *)
  Alcotest.(check (float 1e-6)) "node saturation share"
    (1e9 /. (m.node_mem_bw /. 128.)) t128

let test_gather_slower_than_stream () =
  let stream = Omp_model.Cost.bytes 1e8 in
  let gather = Omp_model.Cost.gather 1e8 in
  Alcotest.(check bool) "gather costs more" true
    (Sim.Perfmodel.time m ~active:1 gather
     > Sim.Perfmodel.time m ~active:1 stream)

let test_cache_capacity_effect () =
  (* working set far above the L3 slice: full traffic; below: reduced *)
  let c = Omp_model.Cost.bytes 1e9 in
  let big = Sim.Perfmodel.time m ~active:128 ~working_set:1e12 c in
  let fits = Sim.Perfmodel.time m ~active:128 ~working_set:1e6 c in
  Alcotest.(check bool) "fitting working set is faster" true (fits < big);
  Alcotest.(check (float 1e-9)) "floor is the hit-level miss factor"
    (big *. m.l3_hit_miss) fits

let test_miss_factor_monotone () =
  let wss = [ 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 ] in
  let misses =
    List.map (fun ws -> Sim.Perfmodel.miss_factor m ~active:16 ws) wss
  in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "miss factor grows with working set" true
    (mono misses);
  List.iter
    (fun f ->
      Alcotest.(check bool) "in [hit, 1]" true
        (f >= m.l3_hit_miss -. 1e-12 && f <= 1.0 +. 1e-12))
    misses

let test_barrier_cost_grows () =
  Alcotest.(check (float 0.)) "1 thread free" 0.
    (Sim.Perfmodel.barrier_time m ~nthreads:1);
  Alcotest.(check bool) "grows with team size" true
    (Sim.Perfmodel.barrier_time m ~nthreads:128
     > Sim.Perfmodel.barrier_time m ~nthreads:2)

let suite =
  [ Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap FIFO on ties" `Quick test_heap_fifo_ties;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "DES advance and makespan" `Quick
      test_des_advance_and_makespan;
    Alcotest.test_case "DES min-clock-first order" `Quick
      test_des_min_clock_first;
    Alcotest.test_case "DES barrier rendezvous" `Quick
      test_des_barrier_rendezvous;
    Alcotest.test_case "DES barrier reusable" `Quick test_des_barrier_reusable;
    Alcotest.test_case "DES mutex serialises" `Quick test_des_mutex_serialises;
    Alcotest.test_case "DES deadlock detection" `Quick
      test_des_deadlock_detected;
    Alcotest.test_case "DES determinism" `Quick test_des_deterministic;
    Alcotest.test_case "roofline compute bound" `Quick
      test_roofline_compute_bound;
    Alcotest.test_case "roofline memory scaling" `Quick
      test_roofline_memory_scaling;
    Alcotest.test_case "gather slower than stream" `Quick
      test_gather_slower_than_stream;
    Alcotest.test_case "cache capacity effect" `Quick
      test_cache_capacity_effect;
    Alcotest.test_case "miss factor monotone" `Quick test_miss_factor_monotone;
    Alcotest.test_case "barrier cost grows with team" `Quick
      test_barrier_cost_grows;
  ]

(* Bit-exact tests of the packed 32-bit clause encodings (paper III-A2),
   including qcheck round trips over the whole representable domain. *)

open Ompfront

let all_kinds =
  [ Packed.Sched_none; Packed.Sched_static; Packed.Sched_dynamic;
    Packed.Sched_guided; Packed.Sched_runtime; Packed.Sched_auto ]

let test_schedule_layout () =
  (* 3-bit kind in the low bits, 29-bit chunk above. *)
  let w = Packed.encode_schedule Packed.Sched_dynamic 5 in
  Alcotest.(check int) "kind bits" 2 (w land 0x7);
  Alcotest.(check int) "chunk bits" 5 (w lsr 3);
  (* maximum chunk from the paper: 536870911 iterations representable,
     536870912 quoted as the limit (2^29). *)
  Alcotest.(check int) "max chunk" ((1 lsl 29) - 1) Packed.max_chunk;
  let w = Packed.encode_schedule Packed.Sched_static Packed.max_chunk in
  Alcotest.(check bool) "fits in 32 bits" true (Packed.fits_u32 w)

let test_schedule_roundtrip_cases () =
  List.iter
    (fun kind ->
      List.iter
        (fun chunk ->
          let k, c = Packed.decode_schedule (Packed.encode_schedule kind chunk) in
          Alcotest.(check bool) "kind" true (k = kind);
          Alcotest.(check int) "chunk" chunk c)
        [ 0; 1; 7; 4096; Packed.max_chunk ])
    all_kinds

let test_schedule_rejects_oversize () =
  Alcotest.check_raises "chunk too large"
    (Invalid_argument "Packed.encode_schedule: chunk out of the 29-bit range")
    (fun () -> ignore (Packed.encode_schedule Packed.Sched_static (1 lsl 29)))

let test_zero_chunk_means_unspecified () =
  (* chunk 0 encodes "no chunk given" because a real chunk must be > 0 *)
  Alcotest.(check bool) "static w/o chunk" true
    (Packed.schedule_to_sched
       (Packed.encode_schedule Packed.Sched_static 0)
     = Some (Omp_model.Sched.Static None));
  Alcotest.(check bool) "static with chunk" true
    (Packed.schedule_to_sched
       (Packed.encode_schedule Packed.Sched_static 8)
     = Some (Omp_model.Sched.Static (Some 8)));
  Alcotest.(check bool) "no schedule clause" true
    (Packed.schedule_to_sched (Packed.encode_schedule Packed.Sched_none 0)
     = None)

let test_flags_layout () =
  (* default 2 bits | nowait 1 bit | collapse 4 bits *)
  let f = { Packed.default = Packed.Default_none; nowait = true; collapse = 9 } in
  let w = Packed.encode_flags f in
  Alcotest.(check int) "default bits" 2 (w land 0x3);
  Alcotest.(check int) "nowait bit" 1 ((w lsr 2) land 1);
  Alcotest.(check int) "collapse bits" 9 ((w lsr 3) land 0xf);
  Alcotest.(check bool) "word fits 32 bits" true (Packed.fits_u32 w)

let test_flags_collapse_limit () =
  (* 4 bits: "unlikely that a user would wish to collapse more than 16
     loops" *)
  Alcotest.(check int) "max collapse" 15 Packed.max_collapse;
  Alcotest.check_raises "collapse too large"
    (Invalid_argument "Packed.encode_flags: collapse out of the 4-bit range")
    (fun () ->
      ignore
        (Packed.encode_flags { Packed.no_flags with collapse = 16 }))

(* ---- property tests ---- *)

let sched_gen =
  QCheck2.Gen.(
    pair (oneofl all_kinds) (int_range 0 Packed.max_chunk))

let prop_schedule_roundtrip =
  QCheck2.Test.make ~name:"schedule encode/decode round trip" ~count:500
    sched_gen
    (fun (kind, chunk) ->
      let k, c = Packed.decode_schedule (Packed.encode_schedule kind chunk) in
      k = kind && c = chunk
      && Packed.fits_u32 (Packed.encode_schedule kind chunk))

let flags_gen =
  QCheck2.Gen.(
    let* d =
      oneofl
        [ Packed.Default_unspecified; Packed.Default_shared;
          Packed.Default_none ]
    in
    let* nw = bool in
    let* col = int_range 0 Packed.max_collapse in
    return { Packed.default = d; nowait = nw; collapse = col })

let prop_flags_roundtrip =
  QCheck2.Test.make ~name:"flags encode/decode round trip" ~count:500
    flags_gen
    (fun f ->
      let f' = Packed.decode_flags (Packed.encode_flags f) in
      f' = f && Packed.fits_u32 (Packed.encode_flags f))

let suite =
  [ Alcotest.test_case "schedule bit layout" `Quick test_schedule_layout;
    Alcotest.test_case "schedule round trips" `Quick
      test_schedule_roundtrip_cases;
    Alcotest.test_case "oversize chunk rejected" `Quick
      test_schedule_rejects_oversize;
    Alcotest.test_case "zero chunk = unspecified" `Quick
      test_zero_chunk_means_unspecified;
    Alcotest.test_case "flags bit layout" `Quick test_flags_layout;
    Alcotest.test_case "collapse 4-bit limit" `Quick
      test_flags_collapse_limit;
    QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
    QCheck_alcotest.to_alcotest prop_flags_roundtrip;
  ]

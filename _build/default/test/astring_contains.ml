(* Substring search shared by the test modules. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

(* Differential tests for the staged compiler: randomly generated Zr
   programs are executed by both engines — the tree walker
   ([Interp.call]) and the closure compiler ([Interp.Compile.call]) —
   and must agree on results, raised errors, and (for OpenMP programs)
   the per-construct profile counts.  A small set of slot-layout
   goldens pins the compiler's frame assignment. *)

module V = Interp.Value
module G = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Random sequential programs: integer statements and expressions over
   a function [fn f(a: i64, b: i64) i64].                              *)

type env = {
  readable : string list;    (* in scope, usable in expressions *)
  assignable : string list;  (* readable minus loop counters *)
  fresh : int;               (* next fresh variable suffix *)
}

let fresh_var env =
  let name = Printf.sprintf "v%d" env.fresh in
  (name, { env with fresh = env.fresh + 1 })

(* Integer expression over the in-scope variables.  Division and modulo
   only ever use literal denominators, so generated programs cannot
   fault at runtime. *)
let rec expr_gen env depth =
  let leaf =
    G.oneof
      (G.map string_of_int (G.int_range (-9) 9)
      :: (if env.readable = [] then [] else [ G.oneofl env.readable ]))
  in
  if depth <= 0 then leaf
  else
    let sub = expr_gen env (depth - 1) in
    G.oneof
      [ leaf;
        G.map2 (Printf.sprintf "(%s + %s)") sub sub;
        G.map2 (Printf.sprintf "(%s - %s)") sub sub;
        G.map2 (Printf.sprintf "(%s * %s)") sub sub;
        G.map2 (fun e k -> Printf.sprintf "(%s / %d)" e k) sub
          (G.int_range 2 7);
        G.map2 (fun e k -> Printf.sprintf "(%s %% %d)" e k) sub
          (G.int_range 2 7);
      ]

let cond_gen env =
  G.map3
    (fun l op r -> Printf.sprintf "%s %s %s" l op r)
    (expr_gen env 1)
    (G.oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ])
    (expr_gen env 1)

let indent lines = List.map (fun l -> "    " ^ l) lines

(* One random statement; returns its lines and the environment visible
   to the following statements.  [allow_decl] is off inside loop bodies
   so re-executed blocks never declare (the compiler's compile-time
   scoping of such blocks is a documented divergence); [allow_shadow]
   is on only inside nested blocks. *)
let rec stmt_gen env depth ~allow_decl ~allow_shadow =
  let assign =
    match env.assignable with
    | [] -> []
    | vs ->
        [ (let open G in
           let* v = oneofl vs in
           let* op = oneofl [ "="; "+="; "-="; "*=" ] in
           let* e = expr_gen env 2 in
           return ([ Printf.sprintf "%s %s %s;" v op e ], env)) ]
  in
  let decl =
    if not allow_decl then []
    else
      [ (let open G in
         let* shadow = bool in
         let* name, env =
           if shadow && allow_shadow && env.assignable <> [] then
             let* n = oneofl env.assignable in
             return (n, env)
           else
             let n, env = fresh_var env in
             return (n, env)
         in
         let* e = expr_gen env 2 in
         let env =
           if List.mem name env.readable then env
           else
             { env with
               readable = name :: env.readable;
               assignable = name :: env.assignable }
         in
         return ([ Printf.sprintf "var %s: i64 = %s;" name e ], env)) ]
  in
  let if_stmt =
    if depth <= 0 then []
    else
      [ (let open G in
         let* c = cond_gen env in
         let* then_lines, _ =
           block_gen env (depth - 1) ~allow_decl:true ~allow_shadow:true
         in
         let* has_else = bool in
         let* else_lines, _ =
           if has_else then
             block_gen env (depth - 1) ~allow_decl:true ~allow_shadow:true
           else return ([], env)
         in
         let lines =
           (Printf.sprintf "if (%s) {" c :: indent then_lines)
           @
           if has_else then ("} else {" :: indent else_lines) @ [ "}" ]
           else [ "}" ]
         in
         return (lines, env)) ]
  in
  let while_stmt =
    if depth <= 0 then []
    else
      [ (let open G in
         let cname, env' = fresh_var env in
         let* k = int_range 1 4 in
         (* the counter is readable inside and after the loop, but never
            assignable: only the continue expression advances it *)
         let inner = { env' with readable = cname :: env'.readable } in
         let* body, _ =
           block_gen inner (depth - 1) ~allow_decl:false ~allow_shadow:false
         in
         let lines =
           Printf.sprintf "var %s: i64 = 0;" cname
           :: Printf.sprintf "while (%s < %d) : (%s += 1) {" cname k cname
           :: indent body
           @ [ "}" ]
         in
         return (lines, { env' with readable = cname :: env'.readable })) ]
  in
  G.oneof (assign @ decl @ decl @ if_stmt @ while_stmt)

(* A short sequence of statements; declarations thread through, block
   structure restores the outer scope on exit. *)
and block_gen env depth ~allow_decl ~allow_shadow =
  let open G in
  let* n = int_range 1 3 in
  let rec go env acc i =
    if i = 0 then return (List.concat (List.rev acc), env)
    else
      let* lines, env = stmt_gen env depth ~allow_decl ~allow_shadow in
      go env (lines :: acc) (i - 1)
  in
  go env [] n

let seq_program_gen =
  let open G in
  let env =
    { readable = [ "a"; "b" ]; assignable = [ "a"; "b" ]; fresh = 0 }
  in
  let* body, env' = block_gen env 3 ~allow_decl:true ~allow_shadow:false in
  let* ret = expr_gen env' 2 in
  let src =
    String.concat "\n"
      ([ "fn f(a: i64, b: i64) i64 {" ]
      @ indent body
      @ indent [ Printf.sprintf "return %s;" ret ]
      @ [ "}" ])
  in
  let* a = int_range (-20) 20 in
  let* b = int_range (-20) 20 in
  return (src, a, b)

(* Both engines on the same program: result or error string. *)
let run_engines src fname args =
  let p = Interp.load ~name:"diff.zr" src in
  let walker =
    try Ok (Interp.call p fname args)
    with e -> Error (Printexc.to_string e)
  in
  let compiled =
    try
      let cc = Interp.Compile.compile p in
      Ok (Interp.Compile.call cc fname args)
    with e -> Error (Printexc.to_string e)
  in
  (walker, compiled)

let prop_sequential =
  QCheck2.Test.make
    ~name:"random sequential programs: compiled = walker" ~count:500
    ~print:(fun (src, a, b) -> Printf.sprintf "a=%d b=%d\n%s" a b src)
    seq_program_gen
    (fun (src, a, b) ->
      let walker, compiled = run_engines src "f" [ V.VInt a; V.VInt b ] in
      walker = compiled)

(* ------------------------------------------------------------------ *)
(* Random OpenMP programs: the pipeline-property reduce template with
   random schedule, team size and inputs, executed by both engines.    *)

let all_schedules =
  [ ""; "schedule(static)"; "schedule(static, 3)"; "schedule(static, 7)";
    "schedule(dynamic, 1)"; "schedule(dynamic, 5)"; "schedule(guided, 2)";
    "schedule(runtime)"; "schedule(auto)" ]

(* Schedules whose per-construct claim counts do not depend on thread
   interleaving: static splits are a pure function of (trips, chunk,
   nthreads), and dynamic with a fixed chunk claims exactly
   ceil(trips/chunk) chunks in total.  Guided chunk sizes shrink with
   the remaining count at claim time, so its claim count is racy by
   design and excluded from the count-parity property. *)
let deterministic_schedules =
  [ ""; "schedule(static)"; "schedule(static, 3)"; "schedule(static, 7)";
    "schedule(dynamic, 1)"; "schedule(dynamic, 5)" ]

let omp_program ~op ~sched =
  Printf.sprintf
    {|
fn reduce(n: i64, x: []f64) f64 {
    var acc: f64 = %s;
    var i: i64 = 0;
    //$omp parallel for reduction(%s: acc) shared(x) %s
    while (i < n) : (i += 1) {
        acc %s= x[i];
    }
    return acc;
}
|}
    (match op with `Add -> "0.0" | `Mul -> "1.0")
    (match op with `Add -> "+" | `Mul -> "*")
    sched
    (match op with `Add -> "+" | `Mul -> "*")

(* exact-float value pools, as in the pipeline properties *)
let add_val_gen = G.map float_of_int (G.int_range (-8) 8)
let mul_val_gen = G.oneofl [ 0.5; 1.0; 2.0 ]

let omp_case_gen scheds =
  let open G in
  let* op = oneofl [ `Add; `Mul ] in
  let* sched = oneofl scheds in
  let* threads = int_range 1 4 in
  let* values =
    list_size (int_range 0 24)
      (match op with `Add -> add_val_gen | `Mul -> mul_val_gen)
  in
  return (op, sched, threads, values)

let omp_args values =
  let x = Array.of_list values in
  [ V.VInt (Array.length x); V.VFloatArr x ]

let prop_omp_outputs =
  QCheck2.Test.make
    ~name:"random parallel reductions: compiled = walker (any schedule)"
    ~count:500
    ~print:(fun (op, sched, threads, values) ->
      Printf.sprintf "%s threads=%d values=[%s]\n%s"
        (match op with `Add -> "+" | `Mul -> "*")
        threads
        (String.concat "; " (List.map string_of_float values))
        (omp_program ~op ~sched))
    (omp_case_gen all_schedules)
    (fun (op, sched, threads, values) ->
      Omprt.Api.set_num_threads threads;
      let walker, compiled =
        run_engines (omp_program ~op ~sched) "reduce" (omp_args values)
      in
      let expected =
        match op with
        | `Add -> List.fold_left ( +. ) 0. values
        | `Mul -> List.fold_left ( *. ) 1. values
      in
      walker = compiled && walker = Ok (V.VFloat expected))

(* One engine under the profiler: result plus per-construct counts. *)
let run_counted run =
  Omprt.Profile.reset ();
  Omprt.Profile.enable ();
  let res = try Ok (run ()) with e -> Error (Printexc.to_string e) in
  Omprt.Profile.disable ();
  let counts =
    List.map
      (fun (s : Omprt.Profile.snapshot) ->
        (Omprt.Profile.construct_name s.construct, s.count))
      (Omprt.Profile.snapshot ())
  in
  Omprt.Profile.reset ();
  (res, counts)

let prop_omp_profile_counts =
  QCheck2.Test.make
    ~name:
      "random parallel reductions: identical profile construct counts"
    ~count:500
    ~print:(fun (op, sched, threads, values) ->
      Printf.sprintf "%s threads=%d values=[%s]\n%s"
        (match op with `Add -> "+" | `Mul -> "*")
        threads
        (String.concat "; " (List.map string_of_float values))
        (omp_program ~op ~sched))
    (omp_case_gen deterministic_schedules)
    (fun (op, sched, threads, values) ->
      Omprt.Api.set_num_threads threads;
      let p = Interp.load ~name:"diff.zr" (omp_program ~op ~sched) in
      let args = omp_args values in
      let walker = run_counted (fun () -> Interp.call p "reduce" args) in
      let compiled =
        run_counted (fun () ->
            Interp.Compile.call (Interp.Compile.compile p) "reduce" args)
      in
      walker = compiled)

(* ------------------------------------------------------------------ *)
(* Slot-layout goldens: the frame assignment is part of the compiler's
   contract (parameters first, then locals in lexical order; shadowing
   burns a fresh slot).                                                *)

let layout_of src fname =
  let cc = Interp.Compile.compile (Interp.load ~name:"layout.zr" src) in
  match Interp.Compile.slot_layout cc fname with
  | Some l -> l
  | None -> Alcotest.failf "no layout for %s" fname

let layout_t = Alcotest.(list (pair int string))

let golden_params_then_locals () =
  let src =
    {|
fn f(a: i64, b: i64) i64 {
    var x: i64 = a;
    var y: f64 = 1.0;
    return x + b;
}
|}
  in
  Alcotest.(check layout_t)
    "params then locals, declaration order"
    [ (0, "a"); (1, "b"); (2, "x"); (3, "y") ]
    (layout_of src "f")

let golden_shadowing_fresh_slot () =
  let src =
    {|
fn g(n: i64) i64 {
    var x: i64 = 1;
    if (n > 0) {
        var x: i64 = 2;
        n = x;
    }
    return x + n;
}
|}
  in
  Alcotest.(check layout_t)
    "inner x burns a fresh slot"
    [ (0, "n"); (1, "x"); (2, "x") ]
    (layout_of src "g");
  (* and the program still sees the right binding at each point *)
  let walker, compiled = run_engines src "g" [ V.VInt 5 ] in
  Alcotest.(check bool) "engines agree" true (walker = compiled);
  Alcotest.(check bool) "outer x survives" true (walker = Ok (V.VInt 3))

let golden_omp_handles_in_frame () =
  let src =
    {|
fn s(n: i64) i64 {
    var total: i64 = 0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: total)
    while (i < n) : (i += 1) {
        total += 1;
    }
    return total;
}
|}
  in
  let layout = layout_of src "s" in
  let has_prefix p (_, name) =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  Alcotest.(check bool)
    "preprocessor worksharing handles live in the frame" true
    (List.exists (has_prefix "__omp") layout)

let suite =
  [ QCheck_alcotest.to_alcotest prop_sequential;
    QCheck_alcotest.to_alcotest prop_omp_outputs;
    QCheck_alcotest.to_alcotest prop_omp_profile_counts;
    Alcotest.test_case "layout: params then locals" `Quick
      golden_params_then_locals;
    Alcotest.test_case "layout: shadowing burns a fresh slot" `Quick
      golden_shadowing_fresh_slot;
    Alcotest.test_case "layout: omp handles in frame" `Quick
      golden_omp_handles_in_frame;
  ]

(* Tests of the public Zigomp API — the surface a downstream user sees,
   including the exact example from the library's documentation. *)

module V = Zigomp.Value

let test_doc_example () =
  (* the quick-start example from zigomp.ml's documentation *)
  let program = {|
fn dot(n: i64, x: []f64, y: []f64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: s) shared(x, y)
    while (i < n) : (i += 1) {
        s += x[i] * y[i];
    }
    return s;
}
|} in
  Zigomp.set_num_threads 4;
  let compiled = Zigomp.compile ~name:"dot.zr" program in
  let result =
    Zigomp.call compiled "dot"
      [ V.VInt 3; V.VFloatArr [| 1.; 2.; 3. |];
        V.VFloatArr [| 4.; 5.; 6. |] ]
  in
  Alcotest.(check bool) "documented result" true (result = V.VFloat 32.)

let test_preprocess_entry_point () =
  let out =
    Zigomp.preprocess ~name:"p.zr"
      "fn f() void {\n//$omp parallel\n{ }\n}"
  in
  Alcotest.(check bool) "lowered to a fork" true
    (Astring_contains.contains out "__kmpc_fork_call")

let test_preprocessed_source_accessor () =
  let p =
    Zigomp.compile ~name:"q.zr" "fn f() void {\n//$omp barrier\n}"
  in
  Alcotest.(check bool) "synthesised source retained" true
    (Astring_contains.contains (Zigomp.preprocessed_source p)
       "__kmpc_barrier")

let test_run_main () =
  let p = Zigomp.compile ~name:"m.zr" "fn main() i64 { return 7; }" in
  Alcotest.(check bool) "main result" true (Zigomp.run_main p = V.VInt 7)

let test_compile_plain_keeps_pragmas () =
  let p =
    Zigomp.compile_plain ~name:"r.zr"
      "fn f() void {\n//$omp barrier\n}"
  in
  Alcotest.(check bool) "pragma survives plain compilation" true
    (Astring_contains.contains (Zigomp.preprocessed_source p) "//$omp")

let test_max_threads_roundtrip () =
  let saved = Zigomp.get_max_threads () in
  Zigomp.set_num_threads 3;
  Alcotest.(check int) "set/get" 3 (Zigomp.get_max_threads ());
  Zigomp.set_num_threads saved

let suite =
  [ Alcotest.test_case "documentation example" `Quick test_doc_example;
    Alcotest.test_case "preprocess entry point" `Quick
      test_preprocess_entry_point;
    Alcotest.test_case "preprocessed source accessor" `Quick
      test_preprocessed_source_accessor;
    Alcotest.test_case "run_main" `Quick test_run_main;
    Alcotest.test_case "compile_plain keeps pragmas" `Quick
      test_compile_plain_keeps_pragmas;
    Alcotest.test_case "max threads round trip" `Quick
      test_max_threads_roundtrip;
  ]

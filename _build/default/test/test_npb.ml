(* NPB kernel tests: the random-number generator against its published
   invariants, matrix construction, official verification values at the
   small classes on the real engine, and serial/parallel agreement. *)

let () = Omprt.Api.set_num_threads 4

(* ---- randlc ---- *)

let test_randlc_range_and_determinism () =
  let rng = Npb.Randlc.create 314159265.0 in
  let xs = List.init 1000 (fun _ -> Npb.Randlc.draw rng) in
  List.iter
    (fun x ->
      Alcotest.(check bool) "in (0,1)" true (x > 0. && x < 1.))
    xs;
  let rng2 = Npb.Randlc.create 314159265.0 in
  let ys = List.init 1000 (fun _ -> Npb.Randlc.draw rng2) in
  Alcotest.(check bool) "deterministic" true (xs = ys)

let test_randlc_period_structure () =
  (* x_{k+1} = a * x_k mod 2^46: seeds stay odd integers < 2^46 *)
  let rng = Npb.Randlc.create 314159265.0 in
  for _ = 1 to 100 do ignore (Npb.Randlc.draw rng) done;
  let s = rng.Npb.Randlc.seed in
  Alcotest.(check bool) "seed is an integer" true (Float.of_int (Float.to_int s) = s);
  Alcotest.(check bool) "seed below 2^46" true (s < 2. ** 46.);
  Alcotest.(check bool) "seed odd (a and x0 odd)" true
    (Float.to_int s land 1 = 1)

let test_randlc_power_jumps () =
  (* power a n must equal n sequential multiplier applications *)
  let a = Npb.Randlc.a_default in
  let seed = 271828183.0 in
  let jump n =
    let an = Npb.Randlc.power a n in
    fst (Npb.Randlc.next seed an)
  in
  let walk n =
    let s = ref seed in
    for _ = 1 to n do s := fst (Npb.Randlc.next !s a) done;
    !s
  in
  List.iter
    (fun n ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "jump %d = walk %d" n n)
        (walk n) (jump n))
    [ 1; 2; 3; 7; 64; 1000 ]

let test_vranlc_matches_draws () =
  let r1 = Npb.Randlc.create 271828183.0 in
  let buf = Array.make 64 0. in
  Npb.Randlc.vranlc r1 64 buf 0;
  let r2 = Npb.Randlc.create 271828183.0 in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.)) (Printf.sprintf "elt %d" i)
        (Npb.Randlc.draw r2) v)
    buf

(* ---- CG ---- *)

let test_cg_matrix_structure () =
  let p = Npb.Classes.Cg.params Npb.Classes.S in
  let rng = Npb.Randlc.create 314159265.0 in
  let _zeta0 = Npb.Randlc.draw rng in
  let m = Npb.Cg.make_matrix p rng in
  Alcotest.(check int) "order" p.na m.Npb.Cg.n;
  Alcotest.(check int) "rowstr closes at nnz" m.Npb.Cg.nnz
    m.Npb.Cg.rowstr.(p.na);
  Alcotest.(check bool) "nnz within the allocation bound" true
    (m.Npb.Cg.nnz <= Npb.Classes.Cg.nz_bound p);
  (* rows sorted by column, no duplicates, indices in range *)
  let sorted_ok = ref true and range_ok = ref true in
  for j = 0 to p.na - 1 do
    for k = m.Npb.Cg.rowstr.(j) to m.Npb.Cg.rowstr.(j + 1) - 1 do
      let c = m.Npb.Cg.colidx.(k) in
      if c < 0 || c >= p.na then range_ok := false;
      if k > m.Npb.Cg.rowstr.(j) && m.Npb.Cg.colidx.(k - 1) >= c then
        sorted_ok := false
    done
  done;
  Alcotest.(check bool) "columns sorted and unique per row" true !sorted_ok;
  Alcotest.(check bool) "column indices in range" true !range_ok;
  (* the generated matrix is structurally symmetric enough to be SPD by
     construction; check the diagonal is present and dominant-signed *)
  let diag_present = ref true in
  for j = 0 to p.na - 1 do
    let found = ref false in
    for k = m.Npb.Cg.rowstr.(j) to m.Npb.Cg.rowstr.(j + 1) - 1 do
      if m.Npb.Cg.colidx.(k) = j then found := true
    done;
    if not !found then diag_present := false
  done;
  Alcotest.(check bool) "diagonal present in every row" true !diag_present

let test_cg_class_s_verifies_serial () =
  let r = Npb.Cg.run_serial ~cls:Npb.Classes.S () in
  Alcotest.(check bool)
    (Format.asprintf "CG S serial: %a" Npb.Result.pp r)
    true (Npb.Result.verified r)

let test_cg_class_s_verifies_parallel () =
  let r = Npb.Cg.run (module Omprt.Omp) ~cls:Npb.Classes.S () in
  Alcotest.(check bool) "CG S on 4 threads hits the official zeta" true
    (Npb.Result.verified r)

let test_cg_class_w_verifies_parallel () =
  let r = Npb.Cg.run (module Omprt.Omp) ~cls:Npb.Classes.W () in
  Alcotest.(check bool) "CG W on 4 threads hits the official zeta" true
    (Npb.Result.verified r)

let test_cg_class_a_verifies_parallel () =
  let r = Npb.Cg.run (module Omprt.Omp) ~cls:Npb.Classes.A () in
  Alcotest.(check bool) "CG A on 4 threads hits the official zeta" true
    (Npb.Result.verified r)

let test_ep_class_w_verifies () =
  let r = Npb.Ep.run (module Omprt.Omp) ~cls:Npb.Classes.W () in
  Alcotest.(check bool) "EP W on 4 threads hits the official sums" true
    (Npb.Result.verified r)

(* ---- EP ---- *)

let test_ep_class_s_verifies () =
  let serial = Npb.Ep.run_serial ~cls:Npb.Classes.S () in
  Alcotest.(check bool) "EP S serial verifies" true
    (Npb.Result.verified serial);
  let par = Npb.Ep.run (module Omprt.Omp) ~cls:Npb.Classes.S () in
  Alcotest.(check bool) "EP S on 4 threads verifies" true
    (Npb.Result.verified par);
  (* the Gaussian counts must agree exactly between serial and parallel *)
  let gc r = List.assoc "gc" r.Npb.Result.detail in
  Alcotest.(check (float 0.)) "identical pair counts" (gc serial) (gc par)

let test_ep_partials_independent_of_partition () =
  (* batches are independent: summing batch partials in any grouping
     gives the same totals *)
  let x = Array.make (2 * Npb.Ep.nk) 0. in
  let one = Npb.Ep.fresh_partial () in
  List.iter (Npb.Ep.process_batch x one) [ 0; 1; 2; 3 ];
  let split = Npb.Ep.fresh_partial () in
  List.iter (Npb.Ep.process_batch x split) [ 2; 0; 3; 1 ];
  (* batch partials are identical; only the final 4-term accumulation
     order differs, so agreement is to float rounding, not bitwise *)
  Alcotest.(check (float 1e-9)) "sx order-independent" one.Npb.Ep.sx
    split.Npb.Ep.sx;
  Alcotest.(check (float 1e-9)) "sy order-independent" one.Npb.Ep.sy
    split.Npb.Ep.sy;
  Alcotest.(check (array (float 0.))) "annulus counts identical"
    one.Npb.Ep.q split.Npb.Ep.q

(* ---- IS ---- *)

let test_is_class_s_verifies () =
  let r = Npb.Is.run (module Omprt.Omp) ~cls:Npb.Classes.S () in
  Alcotest.(check bool) "IS S on 4 threads full-verifies" true
    (Npb.Result.verified r)

let test_is_class_w_verifies () =
  let r = Npb.Is.run (module Omprt.Omp) ~cls:Npb.Classes.W () in
  Alcotest.(check bool) "IS W on 4 threads full-verifies" true
    (Npb.Result.verified r)

let test_is_ranks_match_serial () =
  (* probe five keys: parallel bucketised ranks = serial counting ranks *)
  let cls = Npb.Classes.S in
  let p = Npb.Classes.Is.params cls in
  let st = Npb.Is.make_state (module Omprt.Omp) p in
  Omprt.Omp.parallel (fun () ->
      for it = 1 to p.max_iterations do
        Npb.Is.rank (module Omprt.Omp) st it
      done);
  let probes = [ 0; 1; 77; 1024; Npb.Classes.Is.max_key p - 1 ] in
  let parallel_ranks = List.map (Npb.Is.rank_of st) probes in
  let serial_ranks = Npb.Is.serial_ranks ~cls probes in
  Alcotest.(check (list int)) "ranks agree with the serial reference"
    serial_ranks parallel_ranks

let test_is_key_sequence_deterministic () =
  let k1 = Npb.Is.create_seq (Npb.Classes.Is.params Npb.Classes.S) in
  let k2 = Npb.Is.create_seq (Npb.Classes.Is.params Npb.Classes.S) in
  Alcotest.(check bool) "same seed, same keys" true (k1 = k2);
  let max_key = Npb.Classes.Is.max_key (Npb.Classes.Is.params Npb.Classes.S) in
  Alcotest.(check bool) "keys in range" true
    (Array.for_all (fun k -> k >= 0 && k < max_key) k1)

(* helper used above *)

let suite =
  [ Alcotest.test_case "randlc range/determinism" `Quick
      test_randlc_range_and_determinism;
    Alcotest.test_case "randlc modular structure" `Quick
      test_randlc_period_structure;
    Alcotest.test_case "randlc power jumps" `Quick test_randlc_power_jumps;
    Alcotest.test_case "vranlc = repeated draws" `Quick
      test_vranlc_matches_draws;
    Alcotest.test_case "CG matrix structure" `Quick test_cg_matrix_structure;
    Alcotest.test_case "CG class S serial verification" `Quick
      test_cg_class_s_verifies_serial;
    Alcotest.test_case "CG class S parallel verification" `Quick
      test_cg_class_s_verifies_parallel;
    Alcotest.test_case "CG class W parallel verification" `Slow
      test_cg_class_w_verifies_parallel;
    Alcotest.test_case "CG class A parallel verification" `Slow
      test_cg_class_a_verifies_parallel;
    Alcotest.test_case "EP class W parallel verification" `Slow
      test_ep_class_w_verifies;
    Alcotest.test_case "EP class S verification" `Slow
      test_ep_class_s_verifies;
    Alcotest.test_case "EP batch independence" `Quick
      test_ep_partials_independent_of_partition;
    Alcotest.test_case "IS class S verification" `Quick
      test_is_class_s_verifies;
    Alcotest.test_case "IS class W verification" `Quick
      test_is_class_w_verifies;
    Alcotest.test_case "IS ranks match serial" `Quick
      test_is_ranks_match_serial;
    Alcotest.test_case "IS key sequence" `Quick
      test_is_key_sequence_deterministic;
  ]

(* Preprocessor tests: the multi-pass replacement (paper Listing 5),
   outlining, the three argument groups, variable rewriting, loop
   lowering per schedule, reductions and the sync constructs.  Checks
   are structural — the synthesised source must parse and contain the
   expected runtime calls — with end-to-end value checks in
   test_interp.ml. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let count ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then scan (i + 1) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

let check_has name needle out =
  Alcotest.(check bool) (name ^ ": contains " ^ needle) true
    (contains ~needle out)

let check_not name needle out =
  Alcotest.(check bool) (name ^ ": free of " ^ needle) false
    (contains ~needle out)

let pp src = Preproc.Preprocess.run ~name:"t.zr" src

(* every output must re-parse cleanly *)
let pp_checked src = fst (Preproc.Preprocess.run_checked ~name:"t.zr" src)

let region_src = {|
fn f(n: i64, x: []f64) f64 {
    var s: f64 = 0.0;
    var c: f64 = 1.0;
    //$omp parallel shared(x) firstprivate(n) private(t) reduction(+: s)
    {
        var t = 0.0;
        t = x[0] + float_of(n);
        s += t;
    }
    return s + c;
}
|}

let test_outlining_basics () =
  let out = pp_checked region_src in
  check_has "fork" "__kmpc_fork_call(__omp_outlined_0" out;
  check_has "outlined fn" "fn __omp_outlined_0(fp: anytype, sh: anytype, red: anytype) void" out;
  check_has "firstprivate group" ".n = n" out;
  check_has "shared group passes a pointer" ".x = &x" out;
  check_has "reduction cell created" "var __omp_red_s = __omp_atomic_new(s);" out;
  check_has "reduction written back" "s = __omp_atomic_load(__omp_red_s);" out;
  check_has "fp unpacked under original name" "var n = fp.n;" out;
  check_has "shared unpacked as pointer" "var x__ptr = sh.x;" out;
  check_has "reduction identity" "var s = 0.0;" out;
  check_has "atomic combine on exit" "__omp_atomic_combine_add(red.s, s);" out;
  check_not "no pragma left" "//$omp" out

let test_shared_access_rewritten () =
  let out =
    pp_checked
      {|
fn f(a: f64) f64 {
    var total: f64 = 0.0;
    //$omp parallel shared(total) firstprivate(a)
    {
        //$omp critical
        {
            total = total + a;
        }
    }
    return total;
}
|}
  in
  check_has "shared scalar accessed through pointer" "total__ptr.* = total__ptr.* + a" out

let test_default_shared_capture () =
  (* a variable with no clause defaults to shared capture *)
  let out =
    pp_checked
      {|
fn f() f64 {
    var acc: f64 = 0.0;
    //$omp parallel
    {
        //$omp atomic
        acc += 1.0;
    }
    return acc;
}
|}
  in
  check_has "implicitly shared" ".acc = &acc" out;
  check_has "rewritten access" "acc__ptr.* += 1.0" out

let test_default_none_rejects_implicit () =
  Alcotest.(check bool) "default(none) with an unlisted variable errors"
    true
    (try
       ignore
         (pp
            {|
fn f() f64 {
    var acc: f64 = 0.0;
    //$omp parallel default(none)
    {
        acc += 1.0;
    }
    return acc;
}
|});
       false
     with Zr.Source.Error _ -> true)

let test_globals_not_captured () =
  let out =
    pp_checked
      {|
var g: f64 = 1.0;
fn f() f64 {
    //$omp parallel
    {
        g += 1.0;
    }
    return g;
}
|}
  in
  (* globals stay globals: no capture group mentions g *)
  check_not "global not in shared group" ".g = &g" out;
  check_has "global accessed directly" "g += 1.0" out

let loop_src sched = Printf.sprintf {|
fn f(n: i64) f64 {
    var s: f64 = 0.0;
    //$omp parallel reduction(+: s)
    {
        var i: i64 = 0;
        //$omp for %s
        while (i < n) : (i += 1) {
            s += 1.0;
        }
    }
    return s;
}
|} sched

let test_static_loop_lowering () =
  let out = pp_checked (loop_src "schedule(static)") in
  check_has "static init" "__kmpc_for_static_init(" out;
  check_has "static fini" "__kmpc_for_static_fini();" out;
  check_has "joining barrier" "__kmpc_barrier();" out;
  check_has "counter privatised" "__omp_iv" out

let test_dynamic_loop_lowering () =
  let out = pp_checked (loop_src "schedule(dynamic, 4)") in
  check_has "dispatch init" "__kmpc_dispatch_init_dynamic(" out;
  check_has "dispatch next" "__kmpc_dispatch_next(__omp_h)" out

let test_guided_runtime_chunked_lowering () =
  check_has "guided" "__kmpc_dispatch_init_guided("
    (pp_checked (loop_src "schedule(guided, 2)"));
  check_has "runtime" "__kmpc_dispatch_init_runtime("
    (pp_checked (loop_src "schedule(runtime)"));
  check_has "static chunked" "__kmpc_static_chunked_init("
    (pp_checked (loop_src "schedule(static, 8)"))

let test_nowait_suppresses_barrier () =
  let with_wait = pp_checked (loop_src "schedule(static)") in
  let without = pp_checked (loop_src "schedule(static) nowait") in
  Alcotest.(check int) "nowait removes exactly one barrier"
    (count ~needle:"__kmpc_barrier();" with_wait - 1)
    (count ~needle:"__kmpc_barrier();" without)

let test_loop_reduction_temporary () =
  let out = pp_checked (loop_src "schedule(static) reduction(+: s)") in
  (* loop-level reduction into the region-level private s *)
  check_has "temp accumulator" "var __omp_red_s = 0.0;" out;
  check_has "guarded combine" "__kmpc_critical(\"__omp_reduction\");" out;
  check_has "combine adds temp" "s = s + __omp_red_s;" out;
  check_has "body updates the temp" "__omp_red_s += 1.0;" out

let test_combined_parallel_for_split () =
  let out =
    pp_checked
      {|
fn f(n: i64) f64 {
    var s: f64 = 0.0;
    var i: i64 = 0;
    //$omp parallel for reduction(+: s) schedule(dynamic, 2) num_threads(3)
    while (i < n) : (i += 1) {
        s += 1.0;
    }
    return s;
}
|}
  in
  check_has "fork with num_threads" ", 3);" out;
  check_has "loop went dynamic" "__kmpc_dispatch_init_dynamic(" out;
  check_has "region-level reduction" "__omp_atomic_combine_add(red.s, s);" out

let test_sync_lowering () =
  let out =
    pp_checked
      {|
fn f() void {
    //$omp parallel
    {
        //$omp barrier
        //$omp master
        { var a: i64 = 0; a += 1; }
        //$omp single nowait
        { var b: i64 = 0; b += 1; }
        //$omp critical(update)
        { var c: i64 = 0; c += 1; }
    }
}
|}
  in
  check_has "barrier" "__kmpc_barrier();" out;
  check_has "master guard" "if (__omp_get_thread_num() == 0)" out;
  check_has "single claim" "if (__kmpc_single())" out;
  check_has "single end" "__kmpc_end_single();" out;
  check_has "named critical" "__kmpc_critical(\"update\");" out;
  check_has "named critical end" "__kmpc_end_critical(\"update\");" out

let test_two_regions_get_distinct_functions () =
  let out =
    pp_checked
      {|
fn f() void {
    //$omp parallel
    { }
    //$omp parallel
    { }
}
|}
  in
  check_has "first" "__omp_outlined_0" out;
  check_has "second" "__omp_outlined_1" out

let test_nested_parallel_regions () =
  let out =
    pp_checked
      {|
fn f() f64 {
    var s: f64 = 0.0;
    //$omp parallel
    {
        //$omp parallel
        {
            //$omp atomic
            s += 1.0;
        }
    }
    return s;
}
|}
  in
  (* fixpoint: the inner region inside the outlined function is outlined
     by a later round *)
  check_has "outer" "__omp_outlined_0" out;
  check_has "inner" "__omp_outlined_1" out;
  check_not "no pragma left" "//$omp" out

let test_offset_adjustment_multiple_directives () =
  (* several directives in one function: replacements must not tread on
     each other (the paper's "adjust source offset") *)
  let out =
    pp_checked
      {|
fn f(n: i64) f64 {
    var s: f64 = 0.0;
    //$omp parallel reduction(+: s)
    {
        var i: i64 = 0;
        //$omp for nowait
        while (i < n) : (i += 1) { s += 1.0; }
        //$omp barrier
        var j: i64 = 0;
        //$omp for schedule(dynamic, 1)
        while (j < n) : (j += 1) { s += 2.0; }
    }
    return s;
}
|}
  in
  Alcotest.(check int) "both loops lowered" 1
    (count ~needle:"__kmpc_for_static_init(" out);
  Alcotest.(check int) "one dynamic" 1
    (count ~needle:"__kmpc_dispatch_init_dynamic(" out);
  check_not "no pragma left" "//$omp" out

let test_idempotent_on_plain_source () =
  let plain = "fn f(a: i64) i64 { return a * 2; }\n" in
  Alcotest.(check string) "no pragmas, no changes" plain (pp plain)

let suite =
  [ Alcotest.test_case "outlining basics" `Quick test_outlining_basics;
    Alcotest.test_case "shared accesses rewritten" `Quick
      test_shared_access_rewritten;
    Alcotest.test_case "implicit capture defaults to shared" `Quick
      test_default_shared_capture;
    Alcotest.test_case "default(none) enforcement" `Quick
      test_default_none_rejects_implicit;
    Alcotest.test_case "globals not captured" `Quick test_globals_not_captured;
    Alcotest.test_case "static loop lowering" `Quick test_static_loop_lowering;
    Alcotest.test_case "dynamic loop lowering" `Quick
      test_dynamic_loop_lowering;
    Alcotest.test_case "guided/runtime/chunked lowering" `Quick
      test_guided_runtime_chunked_lowering;
    Alcotest.test_case "nowait suppresses the barrier" `Quick
      test_nowait_suppresses_barrier;
    Alcotest.test_case "loop reduction temporary" `Quick
      test_loop_reduction_temporary;
    Alcotest.test_case "combined construct split" `Quick
      test_combined_parallel_for_split;
    Alcotest.test_case "sync constructs" `Quick test_sync_lowering;
    Alcotest.test_case "distinct outlined names" `Quick
      test_two_regions_get_distinct_functions;
    Alcotest.test_case "nested parallel regions" `Quick
      test_nested_parallel_regions;
    Alcotest.test_case "offset adjustment across directives" `Quick
      test_offset_adjustment_multiple_directives;
    Alcotest.test_case "idempotent without pragmas" `Quick
      test_idempotent_on_plain_source;
  ]

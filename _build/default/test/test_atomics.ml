(* Atomics and reductions: the CAS-loop implementations of the paper's
   Listing 6 (multiplication and friends), exercised both sequentially
   and under real contention from a thread team. *)

open Omprt

let test_cas_loop_basic () =
  let a = Atomic.make 10 in
  Atomics.cas_loop a (fun x -> x * 3);
  Alcotest.(check int) "multiplied" 30 (Atomic.get a);
  let old = Atomics.cas_loop_fetch a (fun x -> x + 1) in
  Alcotest.(check int) "fetch returns pre-value" 30 old;
  Alcotest.(check int) "updated" 31 (Atomic.get a)

let test_int_ops () =
  let a = Atomics.Int.make 12 in
  Atomics.Int.add a 5;
  Alcotest.(check int) "add" 17 (Atomics.Int.get a);
  Atomics.Int.sub a 2;
  Alcotest.(check int) "sub" 15 (Atomics.Int.get a);
  Atomics.Int.mul a 2;
  Alcotest.(check int) "mul (CAS loop)" 30 (Atomics.Int.get a);
  Atomics.Int.min a 7;
  Alcotest.(check int) "min" 7 (Atomics.Int.get a);
  Atomics.Int.max a 21;
  Alcotest.(check int) "max" 21 (Atomics.Int.get a);
  Atomics.Int.band a 0b10101;
  Alcotest.(check int) "band" (21 land 0b10101) (Atomics.Int.get a);
  Atomics.Int.bor a 0b01000;
  Atomics.Int.bxor a 0b00001;
  Alcotest.(check int) "bor/bxor"
    (((21 land 0b10101) lor 0b01000) lxor 1)
    (Atomics.Int.get a)

let test_float_ops () =
  let a = Atomics.Float.make 2.0 in
  Atomics.Float.add a 0.5;
  Alcotest.(check (float 1e-12)) "add" 2.5 (Atomics.Float.get a);
  Atomics.Float.mul a 4.0;
  Alcotest.(check (float 1e-12)) "mul" 10.0 (Atomics.Float.get a);
  Atomics.Float.min a 3.5;
  Alcotest.(check (float 1e-12)) "min" 3.5 (Atomics.Float.get a);
  Atomics.Float.max a 8.25;
  Alcotest.(check (float 1e-12)) "max" 8.25 (Atomics.Float.get a)

let test_bool_ops () =
  let a = Atomics.Bool.make true in
  Atomics.Bool.logical_and a true;
  Alcotest.(check bool) "and true" true (Atomics.Bool.get a);
  Atomics.Bool.logical_and a false;
  Alcotest.(check bool) "and false" false (Atomics.Bool.get a);
  Atomics.Bool.logical_or a true;
  Alcotest.(check bool) "or true" true (Atomics.Bool.get a)

(* contention tests: many threads hammer one cell; the CAS loop must not
   lose updates *)

let contended_int op expected () =
  let a = Atomics.Int.make 0 in
  Omp.parallel ~num_threads:4 (fun () ->
      for _ = 1 to 2500 do op a done);
  Alcotest.(check int) "no lost updates" expected (Atomics.Int.get a)

let test_contended_add =
  contended_int (fun a -> Atomics.Int.add a 1) 10000

let test_contended_sub =
  contended_int (fun a -> Atomics.Int.sub a 1) (-10000)

let test_contended_float_add () =
  let a = Atomics.Float.make 0. in
  Omp.parallel ~num_threads:4 (fun () ->
      for _ = 1 to 2500 do Atomics.Float.add a 1.0 done);
  Alcotest.(check (float 1e-9)) "float adds of 1.0 are exact" 10000.
    (Atomics.Float.get a)

let test_contended_mul () =
  (* multiplication is the paper's flagship CAS-loop case: use values
     whose product is exact and order-independent *)
  let a = Atomics.Float.make 1.0 in
  Omp.parallel ~num_threads:4 (fun () ->
      for _ = 1 to 30 do Atomics.Float.mul a 2.0 done);
  Alcotest.(check (float 1e-9)) "2^120" (2. ** 120.) (Atomics.Float.get a)

let test_contended_min_max () =
  let mn = Atomics.Int.make max_int and mx = Atomics.Int.make min_int in
  Omp.parallel ~num_threads:4 (fun () ->
      let tid = Omp.thread_num () in
      for i = 0 to 999 do
        let v = (i * 7919) lxor (tid * 104729) in
        Atomics.Int.min mn v;
        Atomics.Int.max mx v
      done);
  (* recompute serially *)
  let smn = ref max_int and smx = ref min_int in
  for tid = 0 to 3 do
    for i = 0 to 999 do
      let v = (i * 7919) lxor (tid * 104729) in
      smn := min !smn v;
      smx := max !smx v
    done
  done;
  Alcotest.(check int) "min agrees with serial" !smn (Atomics.Int.get mn);
  Alcotest.(check int) "max agrees with serial" !smx (Atomics.Int.get mx)

(* reduction op metadata *)

let test_identities () =
  Alcotest.(check (float 0.)) "+ identity" 0. (Reduction.float_init Reduction.Add);
  Alcotest.(check (float 0.)) "* identity" 1. (Reduction.float_init Reduction.Mul);
  Alcotest.(check bool) "min identity" true
    (Reduction.float_init Reduction.Min = infinity);
  Alcotest.(check bool) "max identity" true
    (Reduction.float_init Reduction.Max = neg_infinity);
  Alcotest.(check int) "int band identity" (-1)
    (Reduction.int_init Reduction.Band);
  Alcotest.(check bool) "land identity" true (Reduction.bool_init Reduction.Land);
  Alcotest.(check bool) "lor identity" false (Reduction.bool_init Reduction.Lor)

let test_reduction_roundtrip_ops () =
  List.iter
    (fun op ->
      match Reduction.of_string (Reduction.to_string op) with
      | Some op' ->
          Alcotest.(check bool)
            ("op round trip " ^ Reduction.to_string op)
            true (op = op')
      | None -> Alcotest.failf "op %s did not parse" (Reduction.to_string op))
    Reduction.all_ops

let prop_atomic_int_combine_matches_sequential =
  QCheck2.Test.make
    ~name:"atomic combine equals sequential fold (int ops)" ~count:200
    QCheck2.Gen.(
      let* op =
        oneofl Reduction.[ Add; Sub; Mul; Min; Max; Band; Bor; Bxor ]
      in
      let* vals = list_size (int_range 1 12) (int_range (-50) 50) in
      return (op, vals))
    (fun (op, vals) ->
      (* multiplication overflows are still deterministic in int *)
      let cell = Atomics.Int.make (Reduction.int_init op) in
      List.iter (fun v -> Reduction.atomic_combine_int op cell v) vals;
      let expected =
        List.fold_left (Reduction.combine_int op) (Reduction.int_init op) vals
      in
      Atomics.Int.get cell = expected)

let suite =
  [ Alcotest.test_case "cas_loop basics" `Quick test_cas_loop_basic;
    Alcotest.test_case "int ops" `Quick test_int_ops;
    Alcotest.test_case "float ops" `Quick test_float_ops;
    Alcotest.test_case "bool ops" `Quick test_bool_ops;
    Alcotest.test_case "contended add" `Quick test_contended_add;
    Alcotest.test_case "contended sub" `Quick test_contended_sub;
    Alcotest.test_case "contended float add" `Quick test_contended_float_add;
    Alcotest.test_case "contended CAS-loop multiply" `Quick
      test_contended_mul;
    Alcotest.test_case "contended min/max" `Quick test_contended_min_max;
    Alcotest.test_case "reduction identities" `Quick test_identities;
    Alcotest.test_case "reduction op strings" `Quick
      test_reduction_roundtrip_ops;
    QCheck_alcotest.to_alcotest prop_atomic_int_combine_matches_sequential;
  ]

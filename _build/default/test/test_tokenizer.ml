(* Tokeniser tests: ordinary Zr tokens, comments, and the paper's
   pragma-as-special-comment scheme (sentinel token + regular tokens +
   end-of-pragma marker). *)

open Zr

let tags text =
  let src = Source.of_string text in
  Tokenizer.tokenize src
  |> Array.to_list
  |> List.map (fun (t : Token.t) -> t.tag)

let texts text =
  let src = Source.of_string text in
  Tokenizer.tokenize src
  |> Array.to_list
  |> List.filter_map (fun (t : Token.t) ->
         match t.tag with
         | Token.Identifier -> Some (Tokenizer.text src t)
         | _ -> None)

let check_tags name expected text =
  Alcotest.(check (list string))
    name
    (List.map Token.tag_to_string expected)
    (List.map Token.tag_to_string (tags text))

let test_simple () =
  check_tags "var decl"
    [ Token.Kw_var; Token.Identifier; Token.Colon; Token.Identifier;
      Token.Eq; Token.Int_literal; Token.Semicolon; Token.Eof ]
    "var x: i64 = 42;"

let test_operators () =
  check_tags "compound ops"
    [ Token.Identifier; Token.Plus_eq; Token.Int_literal; Token.Semicolon;
      Token.Identifier; Token.Star_eq; Token.Int_literal; Token.Semicolon;
      Token.Eof ]
    "a += 1; b *= 2;";
  check_tags "comparisons"
    [ Token.Identifier; Token.Lt_eq; Token.Identifier;
      Token.Identifier; Token.Eq_eq; Token.Identifier;
      Token.Identifier; Token.Bang_eq; Token.Identifier; Token.Eof ]
    "a <= b c == d e != f"

let test_deref_and_struct () =
  check_tags "postfix deref and struct literal"
    [ Token.Identifier; Token.Dot_star; Token.Eq; Token.Dot_brace;
      Token.Dot; Token.Identifier; Token.Eq; Token.Int_literal;
      Token.R_brace; Token.Semicolon; Token.Eof ]
    "p.* = .{ .x = 1 };"

let test_float_literals () =
  check_tags "floats vs ints"
    [ Token.Float_literal; Token.Float_literal; Token.Int_literal;
      Token.Float_literal; Token.Eof ]
    "1.5 0.0 3 2e10"

let test_comment_skipped () =
  check_tags "plain comments vanish"
    [ Token.Kw_var; Token.Identifier; Token.Eq; Token.Int_literal;
      Token.Semicolon; Token.Eof ]
    "// a comment\nvar x = 1; // trailing"

let test_pragma_tokens () =
  (* The sentinel becomes one token; the pragma's interior is ordinary
     tokens; the line end is marked. *)
  check_tags "pragma line"
    [ Token.Pragma_sentinel; Token.Identifier; Token.Identifier;
      Token.L_paren; Token.Identifier; Token.R_paren; Token.Pragma_end;
      Token.Kw_while; Token.Eof ]
    "//$omp parallel private(x)\nwhile"

let test_pragma_at_eof () =
  check_tags "pragma terminated by eof"
    [ Token.Pragma_sentinel; Token.Identifier; Token.Pragma_end; Token.Eof ]
    "//$omp barrier"

let test_omp_names_are_identifiers () =
  (* OpenMP keywords are not reserved: they tokenise as identifiers and
     remain usable as variable names (the paper's compatibility
     requirement). *)
  Alcotest.(check (list string))
    "omp names usable as identifiers"
    [ "parallel"; "schedule"; "x" ]
    (texts "var parallel = 1; var schedule = 2; var x = parallel;"
     |> List.sort_uniq compare |> List.sort compare
     |> fun l -> List.sort compare l |> fun l ->
        (* keep original check order-insensitive *)
        List.filter (fun s -> List.mem s [ "parallel"; "schedule"; "x" ]) l)

let test_omp_keyword_table () =
  Alcotest.(check bool) "parallel maps" true
    (Token.omp_keyword_of_string "parallel" = Some Token.Omp_parallel);
  Alcotest.(check bool) "nowait maps" true
    (Token.omp_keyword_of_string "nowait" = Some Token.Omp_nowait);
  Alcotest.(check bool) "unknown name does not map" true
    (Token.omp_keyword_of_string "banana" = None);
  (* round trip over the whole table *)
  List.iter
    (fun (s, kw) ->
      Alcotest.(check string) ("round trip " ^ s) s
        (Token.omp_kw_to_string kw))
    Token.omp_keywords

let test_string_literal () =
  check_tags "string"
    [ Token.String_literal; Token.Eof ] "\"hello world\""

let test_error_unterminated_string () =
  Alcotest.check_raises "unterminated string"
    (Source.Error "<input>:1:1: unterminated string literal")
    (fun () -> ignore (tags "\"oops"))

let test_positions () =
  let src = Source.of_string "ab\ncd\nef" in
  Alcotest.(check (pair int int)) "line 1" (1, 1) (Source.position src 0);
  Alcotest.(check (pair int int)) "line 2" (2, 1) (Source.position src 3);
  Alcotest.(check (pair int int)) "line 3 col 2" (3, 2) (Source.position src 7)

let suite =
  [ Alcotest.test_case "simple declaration" `Quick test_simple;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "deref and struct literal" `Quick test_deref_and_struct;
    Alcotest.test_case "float literals" `Quick test_float_literals;
    Alcotest.test_case "comments skipped" `Quick test_comment_skipped;
    Alcotest.test_case "pragma tokenisation" `Quick test_pragma_tokens;
    Alcotest.test_case "pragma at eof" `Quick test_pragma_at_eof;
    Alcotest.test_case "omp names stay identifiers" `Quick
      test_omp_names_are_identifiers;
    Alcotest.test_case "omp keyword hash map" `Quick test_omp_keyword_table;
    Alcotest.test_case "string literal" `Quick test_string_literal;
    Alcotest.test_case "unterminated string error" `Quick
      test_error_unterminated_string;
    Alcotest.test_case "source positions" `Quick test_positions;
  ]

(* Parser tests: AST shapes, extra_data clause blocks, and the OpenMP
   keyword-as-identifier discrimination. *)

open Zr

let parse text = fst (Parser.parse_string text)

let find_tag ast tag =
  let found = ref [] in
  Array.iteri
    (fun i (n : Ast.node) -> if n.tag = tag then found := i :: !found)
    ast.Ast.nodes;
  List.rev !found

let test_fn_decl () =
  let ast = parse "fn add(a: i64, b: i64) i64 { return a + b; }" in
  match find_tag ast Ast.Fn_decl with
  | [ fn ] ->
      let n = Ast.node ast fn in
      Alcotest.(check string) "name" "add" (Ast.token_text ast n.main_token);
      Alcotest.(check int) "param count" 2 (Ast.extra ast n.lhs)
  | l -> Alcotest.failf "expected 1 fn, found %d" (List.length l)

let test_while_with_continuation () =
  let ast = parse "fn f(n: i64) void { var i: i64 = 0; while (i < n) : (i += 1) { } }" in
  match find_tag ast Ast.While with
  | [ w ] ->
      let n = Ast.node ast w in
      let cont = Ast.extra ast n.rhs in
      let body = Ast.extra ast (n.rhs + 1) in
      Alcotest.(check bool) "has continuation" true (cont <> 0);
      Alcotest.(check bool) "continuation is an assignment" true
        ((Ast.node ast cont).tag = Ast.Assign);
      Alcotest.(check bool) "body is a block" true
        ((Ast.node ast body).tag = Ast.Block)
  | _ -> Alcotest.fail "expected one while"

let test_precedence () =
  (* a + b * c parses as a + (b * c) *)
  let ast = parse "fn f(a: i64, b: i64, c: i64) i64 { return a + b * c; }" in
  let tops =
    List.filter
      (fun i ->
        let n = Ast.node ast i in
        n.Ast.tag = Ast.Bin_op
        && (Ast.token ast n.main_token).Token.tag = Token.Plus)
      (find_tag ast Ast.Bin_op)
  in
  match tops with
  | [ plus ] ->
      let n = Ast.node ast plus in
      Alcotest.(check bool) "rhs of + is the *" true
        ((Ast.node ast n.rhs).tag = Ast.Bin_op)
  | _ -> Alcotest.fail "expected one + node"

let test_parallel_clause_block () =
  let ast =
    parse
      "fn f(n: i64, x: []f64) void {\n\
       var s: f64 = 0.0;\n\
       //$omp parallel private(a, b) firstprivate(n) shared(x) \
       reduction(+: s) num_threads(4) default(shared)\n\
       { }\n\
       }"
  in
  match find_tag ast Ast.Omp_parallel with
  | [ d ] ->
      let cl = Ast.clauses ast d in
      let names = List.map (fun i -> Ast.token_text ast (Ast.node ast i).Ast.main_token) in
      Alcotest.(check (list string)) "private" [ "a"; "b" ] (names cl.private_);
      Alcotest.(check (list string)) "firstprivate" [ "n" ]
        (names cl.firstprivate);
      Alcotest.(check (list string)) "shared" [ "x" ] (names cl.shared);
      Alcotest.(check int) "one reduction" 1 (List.length cl.reductions);
      (match cl.reductions with
       | [ (op, id) ] ->
           Alcotest.(check string) "reduction op" "+"
             (Ompfront.Directive.red_op_to_string op);
           Alcotest.(check string) "reduction var" "s"
             (Ast.token_text ast (Ast.node ast id).Ast.main_token)
       | _ -> Alcotest.fail "reductions");
      Alcotest.(check bool) "num_threads expr present" true
        (cl.num_threads <> 0);
      Alcotest.(check bool) "default shared" true
        (cl.flags.Ompfront.Packed.default = Ompfront.Packed.Default_shared)
  | l -> Alcotest.failf "expected 1 parallel directive, found %d" (List.length l)

let test_for_schedule_clause () =
  let ast =
    parse
      "fn f(n: i64) void {\n\
       var i: i64 = 0;\n\
       //$omp parallel\n{\n\
       //$omp for schedule(dynamic, 64) nowait\n\
       while (i < n) : (i += 1) { }\n}\n}"
  in
  match find_tag ast Ast.Omp_for with
  | [ d ] ->
      let cl = Ast.clauses ast d in
      Alcotest.(check bool) "schedule dynamic,64" true
        (cl.schedule = Some (Omp_model.Sched.Dynamic 64));
      Alcotest.(check bool) "nowait" true cl.flags.Ompfront.Packed.nowait;
      (* the directive governs the while loop *)
      let n = Ast.node ast d in
      Alcotest.(check bool) "governs a while" true
        ((Ast.node ast n.rhs).tag = Ast.While)
  | l -> Alcotest.failf "expected 1 for directive, found %d" (List.length l)

let test_combined_directive () =
  let ast =
    parse
      "fn f(n: i64) void { var i: i64 = 0;\n\
       //$omp parallel for schedule(static) reduction(max: i)\n\
       while (i < n) : (i += 1) { } }"
  in
  Alcotest.(check int) "one parallel-for node" 1
    (List.length (find_tag ast Ast.Omp_parallel_for))

let test_omp_names_as_variables () =
  (* 'parallel' used as a variable must still parse: keywords are only
     special inside pragmas *)
  let ast = parse "fn f() i64 { var parallel: i64 = 3; return parallel; }" in
  Alcotest.(check int) "no directive nodes" 0
    (List.length (find_tag ast Ast.Omp_parallel))

let test_critical_name () =
  let ast =
    parse "fn f() void {\n//$omp critical(mylock)\n{ }\n}"
  in
  match find_tag ast Ast.Omp_critical with
  | [ d ] ->
      let cl = Ast.clauses ast d in
      Alcotest.(check string) "critical name" "mylock"
        (Ast.token_text ast cl.critical_name)
  | _ -> Alcotest.fail "expected one critical"

let test_barrier_standalone () =
  let ast = parse "fn f() void {\n//$omp barrier\n}" in
  match find_tag ast Ast.Omp_barrier with
  | [ d ] ->
      Alcotest.(check int) "no governed statement" 0 (Ast.node ast d).Ast.rhs
  | _ -> Alcotest.fail "expected one barrier"

let test_for_requires_while () =
  Alcotest.(check bool) "for before non-loop rejected" true
    (try
       ignore (parse "fn f() void {\n//$omp for\nreturn;\n}");
       false
     with Source.Error _ -> true)

let test_list_clause_slices_in_extra_data () =
  (* the paper's Fig. 2: list clauses live as contiguous slices in
     extra_data, referenced by begin/end indices in the clause block *)
  let ast =
    parse
      "fn f(a: i64, b: i64, c: i64) void {\n\
       //$omp parallel private(a, b, c)\n{ }\n}"
  in
  match find_tag ast Ast.Omp_parallel with
  | [ d ] ->
      let n = Ast.node ast d in
      let base = n.Ast.lhs in
      let b = Ast.extra ast (base + 3) and e = Ast.extra ast (base + 4) in
      Alcotest.(check int) "slice length 3" 3 (e - b);
      let names =
        List.map
          (fun i -> Ast.token_text ast (Ast.node ast i).Ast.main_token)
          (Ast.extra_slice ast b e)
      in
      Alcotest.(check (list string)) "contiguous idents" [ "a"; "b"; "c" ]
        names
  | _ -> Alcotest.fail "expected one parallel"

let test_struct_literal_and_deref () =
  let ast =
    parse "fn f(p: *f64) void { var s = .{ .a = 1, .b = 2.0 }; p.* = s.b; }"
  in
  Alcotest.(check int) "struct literal" 1
    (List.length (find_tag ast Ast.Struct_lit));
  Alcotest.(check int) "deref" 1 (List.length (find_tag ast Ast.Deref))

let test_parse_error_located () =
  match parse "fn f() void { var = 3; }" with
  | exception Source.Error msg ->
      Alcotest.(check bool) "location present" true
        (String.length msg > 0 && String.contains msg ':')
  | _ -> Alcotest.fail "expected a parse error"

let suite =
  [ Alcotest.test_case "fn decl" `Quick test_fn_decl;
    Alcotest.test_case "while with continuation" `Quick
      test_while_with_continuation;
    Alcotest.test_case "operator precedence" `Quick test_precedence;
    Alcotest.test_case "parallel clause block" `Quick
      test_parallel_clause_block;
    Alcotest.test_case "for schedule clause" `Quick test_for_schedule_clause;
    Alcotest.test_case "combined parallel for" `Quick test_combined_directive;
    Alcotest.test_case "omp names usable as variables" `Quick
      test_omp_names_as_variables;
    Alcotest.test_case "named critical" `Quick test_critical_name;
    Alcotest.test_case "standalone barrier" `Quick test_barrier_standalone;
    Alcotest.test_case "for requires a while loop" `Quick
      test_for_requires_while;
    Alcotest.test_case "list clauses are extra_data slices" `Quick
      test_list_clause_slices_in_extra_data;
    Alcotest.test_case "struct literal and deref" `Quick
      test_struct_literal_and_deref;
    Alcotest.test_case "parse errors carry locations" `Quick
      test_parse_error_located;
  ]
